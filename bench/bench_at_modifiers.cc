// Cost of each AT context modifier (paper table 3) at a grouped call site,
// relative to the bare measure. The shape claim: with memoization, ALL/SET
// contexts that repeat across groups cost O(1) probes after the first
// evaluation; WHERE contexts with per-group correlations cost one source
// selection per group; VISIBLE additionally collects the group's row ids.
//
// Args: {rows, products}.

#include "benchmark/benchmark.h"
#include "workload.h"

namespace {

using msql::Engine;
using msql::ResultSet;
using msql::bench::CheckResult;
using msql::bench::LoadOrders;

void RunQuery(benchmark::State& state, const std::string& select_item) {
  Engine db;
  LoadOrders(&db, static_cast<int>(state.range(0)),
             static_cast<int>(state.range(1)), /*customers=*/50);
  std::string query = "SELECT prodName, " + select_item +
                      " AS v FROM EO GROUP BY prodName";
  std::shared_ptr<const msql::QueryStats> stats;
  for (auto _ : state) {
    ResultSet rs = CheckResult(db.Query(query), "query");
    stats = rs.stats();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["source_scans"] =
      static_cast<double>(stats == nullptr ? 0 : stats->measure_source_scans);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BareMeasure(benchmark::State& state) {
  RunQuery(state, "sumRevenue");
}
void BM_Aggregate(benchmark::State& state) {
  RunQuery(state, "AGGREGATE(sumRevenue)");
}
void BM_Visible(benchmark::State& state) {
  RunQuery(state, "sumRevenue AT (VISIBLE)");
}
void BM_AllDim(benchmark::State& state) {
  RunQuery(state, "sumRevenue AT (ALL prodName)");
}
void BM_AllEverything(benchmark::State& state) {
  RunQuery(state, "sumRevenue AT (ALL)");
}
void BM_SetConstant(benchmark::State& state) {
  RunQuery(state, "sumRevenue AT (SET prodName = 'P0')");
}
void BM_SetCurrent(benchmark::State& state) {
  RunQuery(state, "sumRevenue AT (SET orderYear = CURRENT orderYear - 1)");
}
void BM_WhereModifier(benchmark::State& state) {
  RunQuery(state, "sumRevenue AT (WHERE revenue > 250)");
}
void BM_ShareOfTotal(benchmark::State& state) {
  RunQuery(state, "sumRevenue * 1.0 / sumRevenue AT (ALL prodName)");
}

#define SIZES                                            \
  Args({4000, 16})->Args({4000, 256})->Args({32000, 256}) \
      ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_BareMeasure)->SIZES;
BENCHMARK(BM_Aggregate)->SIZES;
BENCHMARK(BM_Visible)->SIZES;
BENCHMARK(BM_AllDim)->SIZES;
BENCHMARK(BM_AllEverything)->SIZES;
BENCHMARK(BM_SetConstant)->SIZES;
BENCHMARK(BM_SetCurrent)->SIZES;
BENCHMARK(BM_WhereModifier)->SIZES;
BENCHMARK(BM_ShareOfTotal)->SIZES;

}  // namespace

// Paper section 5.7: conciseness. A measure query referencing k evaluation
// contexts stays O(k) tokens, while its plain-SQL expansion repeats a
// correlated subquery (with the full formula and filter set) per context.
// This harness reports the sizes side by side and times the expansion
// itself. Shape claim: expanded/measure size ratio grows roughly linearly
// in k and with the formula length.
//
// Args: {contexts}.

#include "benchmark/benchmark.h"
#include "parser/lexer.h"
#include "workload.h"

namespace {

using msql::Engine;
using msql::Lexer;
using msql::bench::CheckResult;
using msql::bench::LoadOrders;

size_t CountTokens(const std::string& sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  return tokens.ok() ? tokens.value().size() - 1 : 0;  // minus EOF
}

// A query family: compare this year's revenue to each of the k previous
// years (k distinct evaluation contexts).
std::string MakeMeasureQuery(int contexts) {
  std::string q = "SELECT prodName, orderYear, AGGREGATE(sumRevenue) AS rev";
  for (int k = 1; k <= contexts; ++k) {
    q += ", sumRevenue AT (SET orderYear = CURRENT orderYear - " +
         std::to_string(k) + ") AS rev_minus_" + std::to_string(k);
  }
  q += " FROM EO GROUP BY prodName, orderYear";
  return q;
}

void BM_Conciseness(benchmark::State& state) {
  Engine db;
  LoadOrders(&db, 100, 8, 8);
  std::string measure_query = MakeMeasureQuery(static_cast<int>(state.range(0)));
  std::string expanded;
  for (auto _ : state) {
    expanded = CheckResult(db.ExpandSql(measure_query), "expansion");
    benchmark::DoNotOptimize(expanded);
  }
  state.counters["measure_chars"] =
      static_cast<double>(measure_query.size());
  state.counters["expanded_chars"] = static_cast<double>(expanded.size());
  state.counters["measure_tokens"] =
      static_cast<double>(CountTokens(measure_query));
  state.counters["expanded_tokens"] =
      static_cast<double>(CountTokens(expanded));
  state.counters["token_ratio"] =
      static_cast<double>(CountTokens(expanded)) /
      static_cast<double>(CountTokens(measure_query));
}

// Both forms must agree; correctness gate for the family above.
void BM_ConcisenessEquivalence(benchmark::State& state) {
  Engine db;
  LoadOrders(&db, 500, 8, 8);
  std::string measure_query = MakeMeasureQuery(2);
  std::string expanded = CheckResult(db.ExpandSql(measure_query), "expansion");
  for (auto _ : state) {
    auto native = CheckResult(db.Query(measure_query), "native");
    auto plain = CheckResult(db.Query(expanded), "plain");
    if (native.num_rows() != plain.num_rows()) {
      state.SkipWithError("expansion changed the result");
      return;
    }
    benchmark::DoNotOptimize(plain);
  }
}

BENCHMARK(BM_Conciseness)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_ConcisenessEquivalence)->Unit(benchmark::kMillisecond);

}  // namespace

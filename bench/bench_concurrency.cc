// Concurrency benchmark: queries/sec for a read-only paper-listing
// workload at 1/2/4/8 sessions, with a cold and a warm shared measure
// cache. Emits BENCH_concurrency.json via bench/json_writer.h.
//
// Unlike the other benches this binary has its own main (the run shape —
// one timed region spanning N threads — does not fit the per-iteration
// google-benchmark model). Unknown flags such as --benchmark_min_time
// are ignored so the CI smoke-run can invoke every bench uniformly.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "json_writer.h"
#include "runtime/session.h"
#include "workload.h"

namespace msql::bench {
namespace {

// Measure-heavy read-only shapes from the paper's listings: grand-total
// ratios, AT (ALL dim), year-over-year AT (SET ...) and a plain grouped
// AGGREGATE. The first three force per-context source evaluations, which
// is exactly the work the shared cache elides when warm.
const char* const kWorkload[] = {
    "SELECT prodName, AGGREGATE(sumRevenue) * 1.0 / (sumRevenue AT (ALL)) "
    "AS share FROM EO GROUP BY prodName ORDER BY prodName",
    "SELECT prodName, orderYear, AGGREGATE(sumRevenue) AS rev, "
    "sumRevenue AT (ALL orderYear) AS product_total "
    "FROM EO GROUP BY prodName, orderYear ORDER BY prodName, orderYear",
    "SELECT custName, orderYear, AGGREGATE(sumRevenue) AS rev, "
    "AGGREGATE(sumRevenue AT (SET orderYear = orderYear - 1)) AS prev "
    "FROM EO GROUP BY custName, orderYear ORDER BY custName, orderYear",
    "SELECT custName, orderYear, AGGREGATE(margin) AS margin, "
    "sumRevenue AT (ALL orderYear) AS cust_total "
    "FROM EO GROUP BY custName, orderYear ORDER BY custName, orderYear",
};
constexpr int kWorkloadSize = static_cast<int>(std::size(kWorkload));

struct RunResult {
  int sessions = 0;
  bool warm = false;
  int queries = 0;
  double seconds = 0;
  double qps = 0;
};

// Runs the whole workload `passes` times on each of `n` concurrent
// sessions and returns the aggregate queries/sec.
RunResult TimeRun(Engine* db, int n, int passes, bool warm) {
  std::vector<SessionPtr> sessions;
  sessions.reserve(n);
  for (int i = 0; i < n; ++i) sessions.push_back(db->CreateSession());

  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int p = 0; p < passes; ++p) {
        for (int q = 0; q < kWorkloadSize; ++q) {
          // Stagger starting offsets so sessions are not in lockstep.
          auto r = sessions[i]->Query(kWorkload[(q + i) % kWorkloadSize]);
          if (!r.ok()) failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  if (failures.load() != 0) {
    std::fprintf(stderr, "bench_concurrency: %d queries failed\n",
                 failures.load());
    std::abort();
  }

  RunResult res;
  res.sessions = n;
  res.warm = warm;
  res.queries = n * passes * kWorkloadSize;
  res.seconds = elapsed.count();
  res.qps = res.queries / res.seconds;
  return res;
}

int Main(int argc, char** argv) {
  int rows = 6000;
  int warm_passes = 3;
  for (int i = 1; i < argc; ++i) {
    // Unknown flags (e.g. google-benchmark's) are silently ignored.
    if (std::strncmp(argv[i], "--rows=", 7) == 0) rows = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--passes=", 9) == 0)
      warm_passes = std::atoi(argv[i] + 9);
  }

  Engine db;
  LoadOrders(&db, rows, /*products=*/50, /*customers=*/200);
  LoadCustomers(&db, /*customers=*/200);

  std::vector<RunResult> runs;
  for (int n : {1, 2, 4, 8}) {
    // Cold: empty shared cache, one pass — fills are part of the cost.
    db.shared_cache().Clear();
    runs.push_back(TimeRun(&db, n, /*passes=*/1, /*warm=*/false));
    // Warm: the cache the cold run just filled stays in place.
    runs.push_back(TimeRun(&db, n, warm_passes, /*warm=*/true));
  }

  double cold1_qps = 0, warm8_qps = 0;
  std::printf("%-10s %-6s %10s %10s %12s\n", "sessions", "cache", "queries",
              "seconds", "queries/sec");
  for (const RunResult& r : runs) {
    std::printf("%-10d %-6s %10d %10.3f %12.1f\n", r.sessions,
                r.warm ? "warm" : "cold", r.queries, r.seconds, r.qps);
    if (r.sessions == 1 && !r.warm) cold1_qps = r.qps;
    if (r.sessions == 8 && r.warm) warm8_qps = r.qps;
  }
  const double speedup = cold1_qps > 0 ? warm8_qps / cold1_qps : 0;
  std::printf("8-session warm vs 1-session cold: %.2fx\n", speedup);

  const EngineStats stats = db.stats();
  std::ofstream out("BENCH_concurrency.json");
  JsonWriter w(out);
  w.BeginObject();
  w.Key("bench");
  w.String("concurrency");
  w.Key("rows");
  w.Int(rows);
  w.Key("workload_queries");
  w.Int(kWorkloadSize);
  w.Key("runs");
  w.BeginArray();
  for (const RunResult& r : runs) {
    w.BeginObject();
    w.Key("sessions");
    w.Int(r.sessions);
    w.Key("cache");
    w.String(r.warm ? "warm" : "cold");
    w.Key("queries");
    w.Int(r.queries);
    w.Key("seconds");
    w.Double(r.seconds);
    w.Key("qps");
    w.Double(r.qps);
    w.EndObject();
  }
  w.EndArray();
  w.Key("speedup_8_sessions_warm_vs_1_cold");
  w.Double(speedup);
  w.Key("shared_cache");
  w.BeginObject();
  w.Key("hits");
  w.Int(static_cast<int64_t>(stats.shared_cache_hits));
  w.Key("misses");
  w.Int(static_cast<int64_t>(stats.shared_cache_misses));
  w.Key("insertions");
  w.Int(static_cast<int64_t>(stats.shared_cache_insertions));
  w.Key("evictions");
  w.Int(static_cast<int64_t>(stats.shared_cache_evictions));
  w.Key("entries");
  w.Int(static_cast<int64_t>(stats.shared_cache_entries));
  w.Key("bytes");
  w.Int(static_cast<int64_t>(stats.shared_cache_bytes));
  w.EndObject();
  w.EndObject();
  out << "\n";
  std::printf("wrote BENCH_concurrency.json\n");
  return 0;
}

}  // namespace
}  // namespace msql::bench

int main(int argc, char** argv) { return msql::bench::Main(argc, argv); }

// Paper listing 12 / section 5.1: four semantically equivalent formulations
// of "orders with revenue above their product's average" — correlated
// subquery, self-join, window aggregate, and measure. The shape claim: the
// window and measure forms scan Orders once; the correlated-subquery form is
// only competitive with result memoization (the WinMagic observation); the
// self-join pays a second scan plus the join.
// Emits BENCH_equivalent_queries.json (bench_reporter.h).
//
// Args: {rows, products}.

#include "bench_reporter.h"
#include "benchmark/benchmark.h"
#include "workload.h"

namespace {

using msql::Engine;
using msql::ResultSet;
using msql::bench::CheckResult;
using msql::bench::LoadOrders;

const char* kCorrelatedSubquery = R"sql(
  SELECT o.prodName, o.orderDate
  FROM Orders AS o
  WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
                     WHERE o1.prodName = o.prodName)
)sql";

const char* kSelfJoin = R"sql(
  SELECT o.prodName, o.orderDate
  FROM Orders AS o
  LEFT JOIN (SELECT prodName, AVG(revenue) AS avgRevenue
             FROM Orders GROUP BY prodName) AS o2
    ON o.prodName = o2.prodName
  WHERE o.revenue > o2.avgRevenue
)sql";

const char* kWindowAggregate = R"sql(
  SELECT o.prodName, o.orderDate
  FROM (SELECT prodName, revenue, orderDate,
               AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
        FROM Orders) AS o
  WHERE o.revenue > o.avgRevenue
)sql";

const char* kMeasure = R"sql(
  SELECT o.prodName, o.orderDate
  FROM (SELECT prodName, orderDate, revenue,
               AVG(revenue) AS MEASURE avgRevenue FROM Orders) AS o
  WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)
)sql";

void RunFormulation(benchmark::State& state, const char* query) {
  Engine db;
  LoadOrders(&db, static_cast<int>(state.range(0)),
             static_cast<int>(state.range(1)), /*customers=*/50);
  size_t rows = 0;
  std::shared_ptr<const msql::QueryStats> stats;
  for (auto _ : state) {
    ResultSet rs = CheckResult(db.Query(query), "query");
    rows = rs.num_rows();
    stats = rs.stats();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  state.counters["subq_execs"] =
      static_cast<double>(stats == nullptr ? 0 : stats->subquery_execs);
  state.counters["measure_scans"] =
      static_cast<double>(stats == nullptr ? 0 : stats->measure_source_scans);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CorrelatedSubquery(benchmark::State& state) {
  RunFormulation(state, kCorrelatedSubquery);
}
void BM_SelfJoin(benchmark::State& state) { RunFormulation(state, kSelfJoin); }
void BM_WindowAggregate(benchmark::State& state) {
  RunFormulation(state, kWindowAggregate);
}
void BM_Measure(benchmark::State& state) { RunFormulation(state, kMeasure); }

void EquivalenceCheck(benchmark::State& state) {
  // Sanity pass executed once under the benchmark harness: the four
  // formulations must return the same number of rows.
  Engine db;
  LoadOrders(&db, 2000, 20, 50);
  size_t n = CheckResult(db.Query(kCorrelatedSubquery), "q1").num_rows();
  for (auto _ : state) {
    for (const char* q : {kSelfJoin, kWindowAggregate, kMeasure}) {
      size_t m = CheckResult(db.Query(q), "q").num_rows();
      if (m != n) {
        state.SkipWithError("formulations disagree!");
        return;
      }
    }
  }
  state.counters["rows_above_avg"] = static_cast<double>(n);
}

#define SIZES                                       \
  Args({1000, 10})->Args({1000, 100})->Args({8000, 10}) \
      ->Args({8000, 100})->Args({32000, 100})->Unit(benchmark::kMillisecond)

BENCHMARK(BM_CorrelatedSubquery)->SIZES;
BENCHMARK(BM_SelfJoin)->SIZES;
BENCHMARK(BM_WindowAggregate)->SIZES;
BENCHMARK(BM_Measure)->SIZES;
BENCHMARK(EquivalenceCheck)->Unit(benchmark::kMillisecond);

}  // namespace

MSQL_BENCH_REPORTER_MAIN("equivalent_queries")

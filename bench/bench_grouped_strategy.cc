// Grouped-strategy speedup gate: a bare measure under GROUP BY produces
// one all-dimension context per group; the memoized strategy answers each
// with its own scan of the measure source (O(G x R) row visits), while the
// grouped strategy partitions the source ONCE into a hash index keyed on
// the dimension tuple and answers every context with an O(1) probe
// (O(R + G)). See docs/PERFORMANCE.md.
//
// Times the two strategies on the same engine with rounds interleaved
// round-robin (machine-wide drift cancels out of the paired ratio, the
// same trick as bench_obs_overhead). The shared measure cache is cleared
// before every timed query so each run pays the full cold-cache evaluation
// the strategies actually differ on.
//
// Gate (full runs only): grouped must be >= 5x faster than memoized on the
// 100-group x 100k-row workload. Emits BENCH_grouped_strategy.json.
//
// Own-main bench: the interleaved round structure and the process-exit
// gate do not fit the per-iteration google-benchmark model. `--smoke` or
// any --benchmark* flag shrinks the run and skips the gate.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "json_writer.h"
#include "workload.h"

namespace msql::bench {
namespace {

// Two bare measures per product group: 2 x `products` all-dimension
// contexts, all sharing one context shape, over one measure source.
const char* const kGroupedQuery =
    "SELECT prodName, sumRevenue AS rev, orderCount AS cnt "
    "FROM EO GROUP BY prodName ORDER BY prodName";

struct StrategyResult {
  std::string name;
  double median_qps = 0;
  double best_qps = 0;
  uint64_t source_scans = 0;
  uint64_t grouped_builds = 0;
  uint64_t grouped_probes = 0;
  uint64_t parallel_tasks = 0;
  std::vector<double> round_qps;
};

// Queries/sec for `passes` cold-cache executions, recording the last
// run's evaluation counters into `res`.
double TimeRound(Engine* db, int passes, StrategyResult* res) {
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    db->shared_cache().Clear();
    ResultSet rs = CheckResult(db->Query(kGroupedQuery), "grouped workload");
    if (const auto& stats = rs.stats(); stats != nullptr) {
      res->source_scans = stats->measure_source_scans;
      res->grouped_builds = stats->measure_grouped_builds;
      res->grouped_probes = stats->measure_grouped_probes;
      res->parallel_tasks = stats->measure_parallel_tasks;
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return passes / elapsed.count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Median of the per-round grouped/memoized qps ratios. Rounds are paired
// in time, so the ratio cancels drift that absolute medians would not.
double PairedSpeedup(const StrategyResult& memoized,
                     const StrategyResult& grouped) {
  std::vector<double> ratios;
  for (size_t i = 0; i < memoized.round_qps.size(); ++i) {
    if (memoized.round_qps[i] > 0) {
      ratios.push_back(grouped.round_qps[i] / memoized.round_qps[i]);
    }
  }
  return Median(ratios);
}

int Main(int argc, char** argv) {
  int rows = 100000;
  int groups = 100;
  int rounds = 7;
  int passes = 1;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strncmp(argv[i], "--benchmark", 11) == 0) {
      smoke = true;
    }
    if (std::strncmp(argv[i], "--rows=", 7) == 0) rows = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--rounds=", 9) == 0)
      rounds = std::atoi(argv[i] + 9);
  }
  if (smoke) {
    rows = std::min(rows, 2000);
    groups = 20;
    rounds = 2;
  }

  Engine db;
  LoadOrders(&db, rows, /*products=*/groups, /*customers=*/100);

  StrategyResult memoized{.name = "memoized"};
  StrategyResult grouped{.name = "grouped"};
  {  // warmup, untimed
    StrategyResult scratch;
    db.options().measure_strategy = MeasureStrategy::kGrouped;
    TimeRound(&db, 1, &scratch);
  }
  for (int r = 0; r < rounds; ++r) {
    db.options().measure_strategy = MeasureStrategy::kMemoized;
    memoized.round_qps.push_back(TimeRound(&db, passes, &memoized));
    db.options().measure_strategy = MeasureStrategy::kGrouped;
    grouped.round_qps.push_back(TimeRound(&db, passes, &grouped));
  }
  for (StrategyResult* res : {&memoized, &grouped}) {
    res->median_qps = Median(res->round_qps);
    res->best_qps =
        *std::max_element(res->round_qps.begin(), res->round_qps.end());
    std::printf("%-9s best %8.2f qps  median %8.2f qps  "
                "(scans=%llu builds=%llu probes=%llu parallel_tasks=%llu)\n",
                res->name.c_str(), res->best_qps, res->median_qps,
                static_cast<unsigned long long>(res->source_scans),
                static_cast<unsigned long long>(res->grouped_builds),
                static_cast<unsigned long long>(res->grouped_probes),
                static_cast<unsigned long long>(res->parallel_tasks));
  }

  const double speedup = PairedSpeedup(memoized, grouped);
  std::printf("grouped speedup over memoized: %.2fx "
              "(gate: >= 5x on the full run)\n",
              speedup);

  std::ofstream out("BENCH_grouped_strategy.json");
  JsonWriter w(out);
  w.BeginObject();
  w.Key("bench");
  w.String("grouped_strategy");
  w.Key("rows");
  w.Int(rows);
  w.Key("groups");
  w.Int(groups);
  w.Key("rounds");
  w.Int(rounds);
  w.Key("smoke");
  w.Bool(smoke);
  w.Key("strategies");
  w.BeginArray();
  for (const StrategyResult* res : {&memoized, &grouped}) {
    w.BeginObject();
    w.Key("strategy");
    w.String(res->name);
    w.Key("best_qps");
    w.Double(res->best_qps);
    w.Key("median_qps");
    w.Double(res->median_qps);
    w.Key("source_scans");
    w.Int(static_cast<int64_t>(res->source_scans));
    w.Key("grouped_builds");
    w.Int(static_cast<int64_t>(res->grouped_builds));
    w.Key("grouped_probes");
    w.Int(static_cast<int64_t>(res->grouped_probes));
    w.Key("parallel_tasks");
    w.Int(static_cast<int64_t>(res->parallel_tasks));
    w.Key("round_qps");
    w.BeginArray();
    for (double q : res->round_qps) w.Double(q);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("speedup");
  w.Double(speedup);
  w.Key("gate_speedup");
  w.Double(5.0);
  w.EndObject();
  out << "\n";
  std::printf("wrote BENCH_grouped_strategy.json\n");

  if (!smoke && speedup < 5.0) {
    std::fprintf(stderr,
                 "GATE FAILED: grouped speedup %.2fx is below the 5x gate\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace msql::bench

int main(int argc, char** argv) { return msql::bench::Main(argc, argv); }

// Grouped-strategy speedup gate: a bare measure under GROUP BY produces
// one all-dimension context per group; the memoized strategy answers each
// with its own scan of the measure source (O(G x R) row visits), while the
// grouped strategy partitions the source ONCE into a hash index keyed on
// the dimension tuple and answers every context with an O(1) probe
// (O(R + G)). See docs/PERFORMANCE.md.
//
// Times the two strategies on the same engine with rounds interleaved
// round-robin (machine-wide drift cancels out of the paired ratio, the
// same trick as bench_obs_overhead). The shared measure cache is cleared
// before every timed query so each run pays the full cold-cache evaluation
// the strategies actually differ on.
//
// A second pair of legs times the execution modes: the same grouped
// strategy with ExecMode::kVectorized vs ExecMode::kRow on a plain
// aggregation over the 100k-row table, where the row leg pays per-row
// expression interpretation (frame setup, Value construction, dynamic
// dispatch) that the vectorized leg replaces with typed column loops
// (exec/vector_eval.cc, docs/PERFORMANCE.md).
//
// Gates (full runs only), both on the 100-group x 100k-row workload:
// grouped must be >= 5x faster than memoized, and vectorized must be
// >= 10x faster than row. Emits BENCH_grouped_strategy.json.
//
// Own-main bench: the interleaved round structure and the process-exit
// gate do not fit the per-iteration google-benchmark model. `--smoke` or
// any --benchmark* flag shrinks the run and skips the gate.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "json_writer.h"
#include "workload.h"

namespace msql::bench {
namespace {

// Two bare measures per product group: 2 x `products` all-dimension
// contexts, all sharing one context shape, over one measure source.
const char* const kGroupedQuery =
    "SELECT prodName, sumRevenue AS rev, orderCount AS cnt "
    "FROM EO GROUP BY prodName ORDER BY prodName";

// Plain-SQL aggregation for the execution-mode legs: no measure machinery,
// so the timed work is exactly what the exec modes differ on (scan,
// group-key eval, accumulation over 100k rows).
const char* const kAggQuery =
    "SELECT prodName, SUM(revenue) AS rev, COUNT(*) AS cnt, "
    "AVG(revenue) AS avg_rev, MIN(revenue) AS lo, MAX(revenue) AS hi "
    "FROM Orders GROUP BY prodName ORDER BY prodName";

struct StrategyResult {
  std::string name;
  std::string exec_mode;
  double median_qps = 0;
  double best_qps = 0;
  uint64_t source_scans = 0;
  uint64_t grouped_builds = 0;
  uint64_t grouped_probes = 0;
  uint64_t parallel_tasks = 0;
  uint64_t vectorized_batches = 0;
  uint64_t row_fallbacks = 0;
  std::vector<double> round_qps;
};

// Queries/sec for `passes` cold-cache executions of `query`, recording the
// last run's evaluation counters into `res`.
double TimeRound(Engine* db, const char* query, int passes,
                 StrategyResult* res) {
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    db->shared_cache().Clear();
    ResultSet rs = CheckResult(db->Query(query), "grouped workload");
    if (const auto& stats = rs.stats(); stats != nullptr) {
      res->source_scans = stats->measure_source_scans;
      res->grouped_builds = stats->measure_grouped_builds;
      res->grouped_probes = stats->measure_grouped_probes;
      res->parallel_tasks = stats->measure_parallel_tasks;
      res->vectorized_batches = stats->exec_vectorized_batches;
      res->row_fallbacks = stats->exec_row_fallbacks;
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return passes / elapsed.count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Median of the per-round fast/slow qps ratios. Rounds are paired in
// time, so the ratio cancels drift that absolute medians would not.
double PairedSpeedup(const StrategyResult& slow, const StrategyResult& fast) {
  std::vector<double> ratios;
  for (size_t i = 0; i < slow.round_qps.size(); ++i) {
    if (slow.round_qps[i] > 0) {
      ratios.push_back(fast.round_qps[i] / slow.round_qps[i]);
    }
  }
  return Median(ratios);
}

int Main(int argc, char** argv) {
  int rows = 100000;
  int groups = 100;
  int rounds = 7;
  int passes = 1;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strncmp(argv[i], "--benchmark", 11) == 0) {
      smoke = true;
    }
    if (std::strncmp(argv[i], "--rows=", 7) == 0) rows = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--rounds=", 9) == 0)
      rounds = std::atoi(argv[i] + 9);
  }
  if (smoke) {
    rows = std::min(rows, 2000);
    groups = 20;
    rounds = 2;
  }

  Engine db;
  LoadOrders(&db, rows, /*products=*/groups, /*customers=*/100);

  StrategyResult memoized{.name = "memoized", .exec_mode = "vectorized"};
  StrategyResult grouped{.name = "grouped", .exec_mode = "vectorized"};
  StrategyResult row_exec{.name = "grouped", .exec_mode = "row"};
  StrategyResult vec_exec{.name = "grouped", .exec_mode = "vectorized"};
  {  // warmup, untimed
    StrategyResult scratch;
    db.options().measure_strategy = MeasureStrategy::kGrouped;
    TimeRound(&db, kGroupedQuery, 1, &scratch);
    TimeRound(&db, kAggQuery, 1, &scratch);
  }
  for (int r = 0; r < rounds; ++r) {
    db.options().exec_mode = ExecMode::kVectorized;
    db.options().measure_strategy = MeasureStrategy::kMemoized;
    memoized.round_qps.push_back(
        TimeRound(&db, kGroupedQuery, passes, &memoized));
    db.options().measure_strategy = MeasureStrategy::kGrouped;
    grouped.round_qps.push_back(TimeRound(&db, kGroupedQuery, passes, &grouped));
    // Execution-mode pair: same strategy, same plain-SQL aggregation, the
    // interpreter flipped between row-at-a-time and vectorized.
    db.options().exec_mode = ExecMode::kRow;
    row_exec.round_qps.push_back(TimeRound(&db, kAggQuery, passes, &row_exec));
    db.options().exec_mode = ExecMode::kVectorized;
    vec_exec.round_qps.push_back(TimeRound(&db, kAggQuery, passes, &vec_exec));
  }
  for (StrategyResult* res : {&memoized, &grouped, &row_exec, &vec_exec}) {
    res->median_qps = Median(res->round_qps);
    res->best_qps =
        *std::max_element(res->round_qps.begin(), res->round_qps.end());
    std::printf(
        "%-9s/%-10s best %8.2f qps  median %8.2f qps  "
        "(scans=%llu builds=%llu probes=%llu parallel_tasks=%llu "
        "batches=%llu fallbacks=%llu)\n",
        res->name.c_str(), res->exec_mode.c_str(), res->best_qps,
        res->median_qps, static_cast<unsigned long long>(res->source_scans),
        static_cast<unsigned long long>(res->grouped_builds),
        static_cast<unsigned long long>(res->grouped_probes),
        static_cast<unsigned long long>(res->parallel_tasks),
        static_cast<unsigned long long>(res->vectorized_batches),
        static_cast<unsigned long long>(res->row_fallbacks));
  }

  const double speedup = PairedSpeedup(memoized, grouped);
  std::printf("grouped speedup over memoized: %.2fx "
              "(gate: >= 5x on the full run)\n",
              speedup);
  const double vec_speedup = PairedSpeedup(row_exec, vec_exec);
  std::printf("vectorized speedup over row: %.2fx "
              "(gate: >= 10x on the full run)\n",
              vec_speedup);

  std::ofstream out("BENCH_grouped_strategy.json");
  JsonWriter w(out);
  w.BeginObject();
  w.Key("bench");
  w.String("grouped_strategy");
  w.Key("rows");
  w.Int(rows);
  w.Key("groups");
  w.Int(groups);
  w.Key("rounds");
  w.Int(rounds);
  w.Key("smoke");
  w.Bool(smoke);
  w.Key("strategies");
  w.BeginArray();
  for (const StrategyResult* res : {&memoized, &grouped, &row_exec, &vec_exec}) {
    w.BeginObject();
    w.Key("strategy");
    w.String(res->name);
    w.Key("exec_mode");
    w.String(res->exec_mode);
    w.Key("best_qps");
    w.Double(res->best_qps);
    w.Key("median_qps");
    w.Double(res->median_qps);
    w.Key("source_scans");
    w.Int(static_cast<int64_t>(res->source_scans));
    w.Key("grouped_builds");
    w.Int(static_cast<int64_t>(res->grouped_builds));
    w.Key("grouped_probes");
    w.Int(static_cast<int64_t>(res->grouped_probes));
    w.Key("parallel_tasks");
    w.Int(static_cast<int64_t>(res->parallel_tasks));
    w.Key("vectorized_batches");
    w.Int(static_cast<int64_t>(res->vectorized_batches));
    w.Key("row_fallbacks");
    w.Int(static_cast<int64_t>(res->row_fallbacks));
    w.Key("round_qps");
    w.BeginArray();
    for (double q : res->round_qps) w.Double(q);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("speedup");
  w.Double(speedup);
  w.Key("gate_speedup");
  w.Double(5.0);
  w.Key("vec_speedup");
  w.Double(vec_speedup);
  w.Key("gate_vec_speedup");
  w.Double(10.0);
  w.EndObject();
  out << "\n";
  std::printf("wrote BENCH_grouped_strategy.json\n");

  if (!smoke && speedup < 5.0) {
    std::fprintf(stderr,
                 "GATE FAILED: grouped speedup %.2fx is below the 5x gate\n",
                 speedup);
    return 1;
  }
  if (!smoke && vec_speedup < 10.0) {
    std::fprintf(stderr,
                 "GATE FAILED: vectorized speedup %.2fx is below the 10x gate\n",
                 vec_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace msql::bench

int main(int argc, char** argv) { return msql::bench::Main(argc, argv); }

// Resource-governor overhead: the same scan/filter/group/measure workload
// with the guard effectively idle (no limits set — the default) versus
// armed with generous, never-tripping limits. The claim: the per-row
// Check() / ChargeRows() hot path costs under ~2%, so guard rails are safe
// to leave on in production.
//
// Args: {rows, products}.

#include "benchmark/benchmark.h"
#include "workload.h"

namespace {

using msql::Engine;
using msql::EngineOptions;
using msql::ResultSet;
using msql::bench::CheckResult;
using msql::bench::LoadOrders;

// A mix that exercises every guarded loop: base scan, filter, aggregation
// with grouping, measure evaluation with AT modifiers, sort.
const char* kWorkloadQuery = R"sql(
  SELECT prodName, orderYear,
         AGGREGATE(sumRevenue) AS rev,
         sumRevenue AT (ALL) AS grand_total
  FROM EO
  WHERE revenue > 10
  GROUP BY prodName, orderYear
  ORDER BY prodName, orderYear
)sql";

void RunWithOptions(benchmark::State& state, const EngineOptions& options) {
  Engine db(options);
  LoadOrders(&db, static_cast<int>(state.range(0)),
             static_cast<int>(state.range(1)), /*customers=*/50);
  std::shared_ptr<const msql::QueryStats> stats;
  for (auto _ : state) {
    ResultSet rs = CheckResult(db.Query(kWorkloadQuery), "query");
    stats = rs.stats();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["rows_charged"] =
      static_cast<double>(stats == nullptr ? 0 : stats->rows_charged);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// Baseline: default options — no limits, guard checks reduce to their
// cheapest form.
void BM_GuardUnlimited(benchmark::State& state) {
  RunWithOptions(state, EngineOptions{});
}

// All guard rails on, set high enough that nothing ever trips: measures
// the full Check()/ChargeRows() bookkeeping cost.
void BM_GuardArmed(benchmark::State& state) {
  EngineOptions options;
  options.timeout_ms = 10 * 60 * 1000;
  options.max_memory_bytes = uint64_t{64} << 30;
  options.max_result_rows = uint64_t{1} << 40;
  RunWithOptions(state, options);
}

BENCHMARK(BM_GuardUnlimited)->Args({20000, 50})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GuardArmed)->Args({20000, 50})->Unit(benchmark::kMillisecond);

}  // namespace

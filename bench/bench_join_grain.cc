// Paper sections 3.6 / 6.3: grain preservation under one-to-many joins.
// Computing a customer-grain statistic through an order join:
//   * measure     — AGGREGATE(customer measure): the engine deduplicates via
//                   source row ids;
//   * dedup SQL   — the classic workaround: join, project the customer key,
//                   DISTINCT, re-join/aggregate;
//   * naive SQL   — plain SUM over the joined rows (WRONG result, shown for
//                   the cost of the error).
// Shape claim: the measure's cost tracks the dedup query while staying as
// simple to write as the naive one; the gap to naive grows with fan-out.
//
// Args: {orders_per_customer, customers}.

#include "benchmark/benchmark.h"
#include "workload.h"

namespace {

using msql::Engine;
using msql::ResultSet;
using msql::bench::CheckResult;
using msql::bench::LoadCustomers;
using msql::bench::LoadOrders;

void Setup(Engine* db, benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const int customers = static_cast<int>(state.range(1));
  LoadOrders(db, fanout * customers, /*products=*/32, customers);
  LoadCustomers(db, customers);
}

void BM_MeasureGrain(benchmark::State& state) {
  Engine db;
  Setup(&db, state);
  const char* query = R"sql(
    SELECT o.prodName, AGGREGATE(c.avgAge) AS avg_age,
           AGGREGATE(c.custCount) AS customers
    FROM Orders AS o JOIN EC AS c USING (custName)
    GROUP BY o.prodName
  )sql";
  for (auto _ : state) {
    ResultSet rs = CheckResult(db.Query(query), "measure grain");
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}

void BM_DedupSql(benchmark::State& state) {
  Engine db;
  Setup(&db, state);
  // The manual workaround: distinct (product, customer) pairs first.
  const char* query = R"sql(
    SELECT d.prodName, AVG(c.custAge) AS avg_age, COUNT(*) AS customers
    FROM (SELECT DISTINCT o.prodName, o.custName
          FROM Orders AS o) AS d
    JOIN Customers AS c ON d.custName = c.custName
    GROUP BY d.prodName
  )sql";
  for (auto _ : state) {
    ResultSet rs = CheckResult(db.Query(query), "dedup sql");
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}

void BM_NaiveWeightedSql(benchmark::State& state) {
  Engine db;
  Setup(&db, state);
  // The tempting-but-wrong query: fan-out weighted average.
  const char* query = R"sql(
    SELECT o.prodName, AVG(c.custAge) AS avg_age, COUNT(*) AS joined_rows
    FROM Orders AS o JOIN Customers AS c ON o.custName = c.custName
    GROUP BY o.prodName
  )sql";
  for (auto _ : state) {
    ResultSet rs = CheckResult(db.Query(query), "naive weighted");
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}

// Correctness gate: the measure answer equals the dedup answer and differs
// from the naive one once fan-out is uneven.
void GrainCheck(benchmark::State& state) {
  Engine db;
  LoadOrders(&db, 4000, 32, 100);
  LoadCustomers(&db, 100);
  ResultSet m = CheckResult(db.Query(R"sql(
    SELECT o.prodName, AGGREGATE(c.custCount) AS n
    FROM Orders AS o JOIN EC AS c USING (custName)
    GROUP BY o.prodName ORDER BY o.prodName
  )sql"),
                            "measure");
  ResultSet d = CheckResult(db.Query(R"sql(
    SELECT prodName, COUNT(*) AS n
    FROM (SELECT DISTINCT o.prodName, o.custName FROM Orders AS o) AS x
    GROUP BY prodName ORDER BY prodName
  )sql"),
                            "dedup");
  for (auto _ : state) {
    for (size_t i = 0; i < m.num_rows(); ++i) {
      if (!msql::Value::NotDistinct(m.Get(i, "n"), d.Get(i, "n"))) {
        state.SkipWithError("measure grain disagrees with dedup SQL");
        return;
      }
    }
  }
  state.counters["groups"] = static_cast<double>(m.num_rows());
}

#define FANOUTS                                     \
  Args({1, 512})->Args({4, 512})->Args({16, 512})   \
      ->Args({64, 512})->Unit(benchmark::kMillisecond)

BENCHMARK(BM_MeasureGrain)->FANOUTS;
BENCHMARK(BM_DedupSql)->FANOUTS;
BENCHMARK(BM_NaiveWeightedSql)->FANOUTS;
BENCHMARK(GrainCheck)->Unit(benchmark::kMillisecond);

}  // namespace

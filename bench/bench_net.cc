// Network front-end benchmark: an in-process msqld serving a large pool of
// concurrent client connections over loopback, comparing cold plan-cache
// traffic (every statement text unique, so every request pays parse + bind
// + measure expansion) against warm traffic (one hot statement, served
// from the bound-plan cache). Reports qps and client-observed p50/p99 per
// phase and emits BENCH_net.json.
//
// A third phase re-runs the warm traffic while one admin client scrapes
// GET /metrics at 10 Hz — the observability plane must be invisible to
// the data path.
//
// Gates (full runs only): warm qps must be >= 3x cold qps — the plan cache
// must actually delete the prepare cost from the hot path, through the
// whole network stack — and warm qps under scrape must stay >= 95% of
// undisturbed warm qps. `--smoke` or any --benchmark* flag shrinks the run
// (fewer connections, shorter phases) and skips the gates.
//
// Own-main bench: the timed multi-connection phases don't fit the
// per-iteration google-benchmark model.

#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "json_writer.h"
#include "net/client.h"
#include "net/server.h"
#include "workload.h"

namespace msql::bench {
namespace {

// A semantic-layer statement: the query reads the top of a stack of
// measure views (L24 -> ... -> EO -> Orders), so binding re-expands the
// whole layer cake — exactly the repeated-dashboard cost the plan cache
// exists to delete. Execution itself is cheap (small table), so the
// cold/warm gap isolates prepare cost.
const char* const kHotQuery =
    "SELECT prodName, AGGREGATE(sumRevenue) AS rev, "
    "AGGREGATE(sumRevenue) / (sumRevenue AT (ALL)) AS frac, "
    "AGGREGATE(margin) AS m, "
    "AGGREGATE(margin) / (margin AT (ALL)) AS mfrac, "
    "AGGREGATE(orderCount) AS n, "
    "AGGREGATE(orderCount) / (orderCount AT (ALL)) AS share, "
    "AGGREGATE(sumRevenue) - AGGREGATE(margin) AS c, "
    "(sumRevenue AT (ALL)) - (margin AT (ALL)) AS tc, "
    "AGGREGATE(sumRevenue) / AGGREGATE(orderCount) AS avg_rev, "
    "AGGREGATE(margin) / AGGREGATE(orderCount) AS avg_m "
    "FROM L24 GROUP BY prodName ORDER BY prodName";

struct Phase {
  std::string name;  // "cold" | "warm"
  int64_t ok = 0;
  int64_t failed = 0;
  double duration_s = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  // Server-side execution time from the ResultBatch trailer: splits engine
  // cost from wire + dispatch overhead in the latency numbers.
  double engine_p50_ms = 0;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

// One Prometheus-style scrape: GET /metrics, read until the server closes.
// Returns true when a complete 200 response arrived.
bool ScrapeMetrics(uint16_t admin_port) {
  auto sock = net::ConnectTo("127.0.0.1", admin_port, 2000);
  if (!sock.ok()) return false;
  const char request[] = "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (!net::WriteAll(sock.value().fd(), request, sizeof(request) - 1, 2000)
           .ok()) {
    return false;
  }
  std::string response;
  char buf[8192];
  while (true) {
    pollfd pfd{sock.value().fd(), POLLIN, 0};
    if (poll(&pfd, 1, 2000) <= 0) break;
    const ssize_t got = ::recv(sock.value().fd(), buf, sizeof(buf), 0);
    if (got <= 0) break;
    response.append(buf, static_cast<size_t>(got));
  }
  return response.find("200 OK") != std::string::npos;
}

// Raise the fd ceiling: the bench holds client and server ends of every
// connection in one process, so 1k connections need >2k descriptors.
void RaiseNofile() {
  rlimit lim;
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    setrlimit(RLIMIT_NOFILE, &lim);
  }
}

// Drives one phase: `drivers` threads round-robin over the (already
// connected) client pool, each issuing blocking request/response queries
// for `duration_s`. Every connection stays established for the whole
// phase, so the server sustains the full pool concurrently.
Phase RunPhase(const std::string& name,
               std::vector<std::unique_ptr<net::Client>>* clients,
               int drivers, double duration_s, bool unique_texts) {
  Phase phase;
  phase.name = name;
  phase.duration_s = duration_s;

  std::mutex mu;
  std::vector<double> latencies_ms;
  std::vector<double> engine_ms;
  std::atomic<int64_t> ok{0}, failed{0};
  std::atomic<int64_t> text_counter{0};

  const auto start = std::chrono::steady_clock::now();
  const auto stop =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_s));
  std::vector<std::thread> threads;
  const size_t n = clients->size();
  for (int d = 0; d < drivers; ++d) {
    threads.emplace_back([&, d] {
      std::vector<double> local;
      std::vector<double> local_engine;
      size_t next = static_cast<size_t>(d);
      while (std::chrono::steady_clock::now() < stop) {
        net::Client& client = *(*clients)[next % n];
        next += static_cast<size_t>(drivers);
        std::string sql = kHotQuery;
        if (unique_texts) {
          // A fresh LIMIT literal (always larger than the result) per
          // request defeats the text-keyed cache: every statement is a
          // guaranteed miss with identical semantics.
          sql += " LIMIT " +
                 std::to_string(1000000 + text_counter.fetch_add(1));
        }
        const auto t0 = std::chrono::steady_clock::now();
        auto r = client.Query(sql);
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - t0;
        if (r.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          local.push_back(elapsed.count());
          if (r.value().stats() != nullptr) {
            local_engine.push_back(
                static_cast<double>(r.value().stats()->total_us) / 1000.0);
          }
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
      engine_ms.insert(engine_ms.end(), local_engine.begin(),
                       local_engine.end());
    });
  }
  for (auto& t : threads) t.join();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  phase.ok = ok.load();
  phase.failed = failed.load();
  phase.qps = static_cast<double>(phase.ok) / wall.count();
  phase.p50_ms = Percentile(latencies_ms, 0.50);
  phase.p99_ms = Percentile(latencies_ms, 0.99);
  phase.engine_p50_ms = Percentile(engine_ms, 0.50);
  return phase;
}

int Main(int argc, char** argv) {
  int connections = 1000;
  // More drivers than ~4x the cores just adds scheduler contention, which
  // inflates the cheap (warm) requests far more than the cold ones.
  const int cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  int drivers = std::min(16, 4 * cores);
  int rows = 50;
  double duration_s = 2.0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strncmp(argv[i], "--benchmark", 11) == 0) {
      smoke = true;
    }
    if (std::strncmp(argv[i], "--connections=", 14) == 0)
      connections = std::atoi(argv[i] + 14);
    if (std::strncmp(argv[i], "--duration=", 11) == 0)
      duration_s = std::atof(argv[i] + 11);
    if (std::strncmp(argv[i], "--drivers=", 10) == 0)
      drivers = std::atoi(argv[i] + 10);
  }
  if (smoke) {
    connections = std::min(connections, 32);
    duration_s = 0.3;
    drivers = std::min(drivers, 4);
  }
  RaiseNofile();

  EngineOptions engine_options;
  engine_options.enable_plan_cache = true;
  // Tiny per-group workloads: parallel morsel dispatch would cost more
  // than it saves and only add latency noise to both phases.
  engine_options.measure_parallelism = 1;
  Engine db(engine_options);
  LoadOrders(&db, rows, /*products=*/8, /*customers=*/25);
  // Semantic-layer stack: each level re-exports the measure view below.
  Check(db.Execute("CREATE VIEW L1 AS SELECT * FROM EO"), "create L1");
  for (int level = 2; level <= 24; ++level) {
    Check(db.Execute("CREATE VIEW L" + std::to_string(level) +
                     " AS SELECT * FROM L" + std::to_string(level - 1)),
          "create view stack");
  }

  net::ServerOptions server_options;
  server_options.admin_port = 0;  // ephemeral; scraped in the third phase
  server_options.num_handler_threads = 2;
  server_options.num_worker_threads =
      std::max(2u, std::thread::hardware_concurrency());
  server_options.max_connections = static_cast<size_t>(connections) + 64;
  net::MsqldServer server(&db, server_options);
  Check(server.Start(), "server start");

  std::vector<std::unique_ptr<net::Client>> clients;
  clients.reserve(connections);
  for (int i = 0; i < connections; ++i) {
    auto client = std::make_unique<net::Client>();
    net::ClientOptions copts;
    copts.user = "bench";
    Check(client->Connect("127.0.0.1", server.port(), copts),
          "client connect");
    clients.push_back(std::move(client));
  }
  std::printf("%d connections established (server reports %d active)\n",
              connections, server.active_connections());

  {  // warmup, untimed: one round through the hot statement
    CheckResult(clients[0]->Query(kHotQuery), "warmup query");
  }

  Phase cold = RunPhase("cold", &clients, drivers, duration_s,
                        /*unique_texts=*/true);
  Phase warm = RunPhase("warm", &clients, drivers, duration_s,
                        /*unique_texts=*/false);

  // Warm traffic again, now with a Prometheus-style scraper hitting the
  // admin endpoint at 10 Hz for the whole phase.
  std::atomic<bool> scraping{true};
  std::atomic<int64_t> scrapes_ok{0}, scrapes_failed{0};
  std::thread scraper([&] {
    while (scraping.load(std::memory_order_acquire)) {
      if (ScrapeMetrics(server.admin_port())) {
        scrapes_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        scrapes_failed.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  Phase warm_scrape = RunPhase("warm_scrape", &clients, drivers, duration_s,
                               /*unique_texts=*/false);
  scraping.store(false, std::memory_order_release);
  scraper.join();

  for (const Phase* p : {&cold, &warm, &warm_scrape}) {
    std::printf("%-5s %8.1f qps  p50 %7.3f ms (engine %6.3f)  p99 %7.3f ms  "
                "ok=%lld failed=%lld\n",
                p->name.c_str(), p->qps, p->p50_ms, p->engine_p50_ms,
                p->p99_ms, static_cast<long long>(p->ok),
                static_cast<long long>(p->failed));
  }
  const double speedup = cold.qps > 0 ? warm.qps / cold.qps : 0;
  std::printf("warm/cold speedup: %.2fx (gate: >= 3x on the full run)\n",
              speedup);
  const double scrape_impact =
      warm.qps > 0 ? warm_scrape.qps / warm.qps : 0;
  std::printf("qps under 10 Hz /metrics scrape: %.2fx of warm "
              "(%lld scrapes ok, %lld failed; gate: >= 0.95x)\n",
              scrape_impact, static_cast<long long>(scrapes_ok.load()),
              static_cast<long long>(scrapes_failed.load()));

  for (auto& client : clients) client->Disconnect();
  server.Stop();

  std::ofstream out("BENCH_net.json");
  JsonWriter w(out);
  w.BeginObject();
  w.Key("bench");
  w.String("net");
  w.Key("connections");
  w.Int(connections);
  w.Key("drivers");
  w.Int(drivers);
  w.Key("rows");
  w.Int(rows);
  w.Key("duration_s");
  w.Double(duration_s);
  w.Key("smoke");
  w.Bool(smoke);
  w.Key("phases");
  w.BeginArray();
  for (const Phase* p : {&cold, &warm, &warm_scrape}) {
    w.BeginObject();
    w.Key("name");
    w.String(p->name);
    w.Key("ok");
    w.Int(p->ok);
    w.Key("failed");
    w.Int(p->failed);
    w.Key("qps");
    w.Double(p->qps);
    w.Key("p50_ms");
    w.Double(p->p50_ms);
    w.Key("p99_ms");
    w.Double(p->p99_ms);
    w.Key("engine_p50_ms");
    w.Double(p->engine_p50_ms);
    w.EndObject();
  }
  w.EndArray();
  w.Key("warm_over_cold_speedup");
  w.Double(speedup);
  w.Key("scrape_impact");
  w.Double(scrape_impact);
  w.Key("scrapes_ok");
  w.Int(scrapes_ok.load());
  w.Key("scrapes_failed");
  w.Int(scrapes_failed.load());
  w.EndObject();
  out << "\n";

  if (cold.failed + warm.failed + warm_scrape.failed > 0) {
    std::fprintf(stderr, "bench_net: %lld requests failed\n",
                 static_cast<long long>(cold.failed + warm.failed +
                                        warm_scrape.failed));
    return 1;
  }
  if (scrapes_ok.load() == 0) {
    std::fprintf(stderr, "bench_net: no successful /metrics scrape\n");
    return 1;
  }
  if (!smoke && speedup < 3.0) {
    std::fprintf(stderr,
                 "bench_net gate FAILED: warm qps %.1f < 3x cold qps %.1f\n",
                 warm.qps, cold.qps);
    return 1;
  }
  if (!smoke && scrape_impact < 0.95) {
    std::fprintf(stderr,
                 "bench_net gate FAILED: qps under scrape %.1f < 95%% of "
                 "warm qps %.1f\n",
                 warm_scrape.qps, warm.qps);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace msql::bench

int main(int argc, char** argv) { return msql::bench::Main(argc, argv); }

// Observability overhead gate: the tracing/metrics layer must be (near)
// zero-cost when no trace sinks consume it. Times a measure-heavy
// read-only workload in four configurations:
//
//   baseline  tracing disabled (the default)       — reference
//   off2      tracing disabled, second round        — gate comparand
//   ring      tracing on, ring-buffer sink only
//   slowlog   tracing on + slow-query log at threshold 0 (logs everything)
//
// Comparing two *disabled* rounds bounds the measurement noise the gate
// tolerates; the <3% acceptance criterion applies to |baseline - off2|,
// i.e. the disabled path must be statistically indistinguishable from
// itself. The ring/slowlog rows quantify the cost of turning tracing on
// (informational, not gated). Emits BENCH_obs_overhead.json.
//
// Own-main bench (round structure and a process-exit gate do not fit the
// per-iteration google-benchmark model). `--smoke` or any --benchmark*
// flag (CI passes --benchmark_min_time) shrinks the run and skips the
// gate so smoke runs stay fast and never flake.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "json_writer.h"
#include "workload.h"

namespace msql::bench {
namespace {

const char* const kWorkload[] = {
    "SELECT prodName, AGGREGATE(sumRevenue) AS rev FROM EO "
    "GROUP BY prodName ORDER BY prodName",
    "SELECT prodName, AGGREGATE(sumRevenue) * 1.0 / (sumRevenue AT (ALL)) "
    "AS share FROM EO GROUP BY prodName ORDER BY prodName",
    "SELECT custName, orderYear, AGGREGATE(margin) AS margin "
    "FROM EO GROUP BY custName, orderYear ORDER BY custName, orderYear",
};
constexpr int kWorkloadSize = static_cast<int>(std::size(kWorkload));

struct Mode {
  const char* name;
  bool tracing;
  bool slowlog;
};

constexpr Mode kModes[] = {
    {"baseline", false, false},
    {"off2", false, false},
    {"ring", true, false},
    {"slowlog", true, true},
};

struct ModeResult {
  std::string name;
  int queries = 0;
  double median_qps = 0;
  double best_qps = 0;
  std::vector<double> round_qps;
};

// Queries/sec for `passes` full workload passes on a fresh engine.
double TimeRound(Engine* db, int passes) {
  const auto start = std::chrono::steady_clock::now();
  int queries = 0;
  for (int p = 0; p < passes; ++p) {
    for (const char* sql : kWorkload) {
      auto r = db->Query(sql);
      Check(r.status(), sql);
      ++queries;
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return queries / elapsed.count();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Overhead of `mode` relative to `base` as a percentage. Each round of a
// mode runs back-to-back with the same round of the baseline (see
// RunInterleaved), so the per-round qps ratio is a paired sample that
// cancels machine-wide drift; the median of those ratios is stable to ~1%
// even when absolute round qps swings by 25%.
double PairedOverheadPct(const ModeResult& base, const ModeResult& mode) {
  std::vector<double> ratios;
  for (size_t i = 0; i < base.round_qps.size(); ++i) {
    if (base.round_qps[i] > 0) {
      ratios.push_back(mode.round_qps[i] / base.round_qps[i]);
    }
  }
  return (1.0 - Median(ratios)) * 100.0;
}

// Runs all modes with their rounds interleaved round-robin: round r of
// every mode executes inside the same wall-clock window, so machine-wide
// drift (CPU frequency, noisy neighbours) cancels out of the mode-to-mode
// comparison instead of biasing whichever mode ran last.
//
// baseline / off2 / ring share ONE engine, toggling enable_tracing per
// round: two engine instances with identical configs can genuinely differ
// by a few percent from heap-layout luck alone, which would drown the
// signal the gate looks for. Only slowlog needs its own engine (the log
// sink is installed at construction).
std::vector<ModeResult> RunInterleaved(int rows, int rounds, int passes,
                                       const std::string& slowlog_path) {
  Engine main_db;
  LoadOrders(&main_db, rows, /*products=*/40, /*customers=*/100);

  EngineOptions slow_options;
  slow_options.enable_tracing = true;
  slow_options.slow_query_log_ms = 0;  // log every query: worst case
  slow_options.slow_query_log_path = slowlog_path;
  Engine slow_db(slow_options);
  LoadOrders(&slow_db, rows, /*products=*/40, /*customers=*/100);

  TimeRound(&main_db, 1);  // warmup, untimed
  TimeRound(&slow_db, 1);

  std::vector<ModeResult> results;
  for (const Mode& mode : kModes) {
    ModeResult res;
    res.name = mode.name;
    res.queries = rounds * passes * kWorkloadSize;
    results.push_back(std::move(res));
  }
  for (int r = 0; r < rounds; ++r) {
    for (size_t m = 0; m < std::size(kModes); ++m) {
      Engine* db = kModes[m].slowlog ? &slow_db : &main_db;
      db->options().enable_tracing = kModes[m].tracing;
      // Clear the shared cache so every round pays the same fills.
      db->shared_cache().Clear();
      results[m].round_qps.push_back(TimeRound(db, passes));
    }
  }
  for (ModeResult& res : results) {
    res.median_qps = Median(res.round_qps);
    res.best_qps = *std::max_element(res.round_qps.begin(),
                                     res.round_qps.end());
  }
  return results;
}

int Main(int argc, char** argv) {
  int rows = 4000;
  int rounds = 31;
  int passes = 3;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strncmp(argv[i], "--benchmark", 11) == 0) {
      smoke = true;
    }
    if (std::strncmp(argv[i], "--rows=", 7) == 0) rows = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--rounds=", 9) == 0)
      rounds = std::atoi(argv[i] + 9);
  }
  if (smoke) {
    rows = std::min(rows, 500);
    rounds = 2;
    passes = 2;
  }

  const std::string slowlog_path = "bench_obs_overhead_slow.jsonl";
  std::vector<ModeResult> results =
      RunInterleaved(rows, rounds, passes, slowlog_path);
  for (const ModeResult& r : results) {
    std::printf("%-10s best %10.1f qps  median %10.1f qps  "
                "(%d queries/round)\n",
                r.name.c_str(), r.best_qps, r.median_qps,
                passes * kWorkloadSize);
  }
  std::remove(slowlog_path.c_str());

  const double disabled_overhead_pct =
      PairedOverheadPct(results[0], results[1]);
  const double ring_overhead_pct = PairedOverheadPct(results[0], results[2]);
  const double slowlog_overhead_pct =
      PairedOverheadPct(results[0], results[3]);
  std::printf("disabled-path delta: %+.2f%% (gate: |delta| < 3%%)\n",
              disabled_overhead_pct);
  std::printf("ring sink overhead: %+.2f%% (informational)\n",
              ring_overhead_pct);
  std::printf("slow-log overhead:  %+.2f%% (informational)\n",
              slowlog_overhead_pct);

  std::ofstream out("BENCH_obs_overhead.json");
  JsonWriter w(out);
  w.BeginObject();
  w.Key("bench");
  w.String("obs_overhead");
  w.Key("rows");
  w.Int(rows);
  w.Key("rounds");
  w.Int(rounds);
  w.Key("smoke");
  w.Bool(smoke);
  w.Key("modes");
  w.BeginArray();
  for (const ModeResult& r : results) {
    w.BeginObject();
    w.Key("mode");
    w.String(r.name);
    w.Key("best_qps");
    w.Double(r.best_qps);
    w.Key("median_qps");
    w.Double(r.median_qps);
    w.Key("round_qps");
    w.BeginArray();
    for (double q : r.round_qps) w.Double(q);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("disabled_overhead_pct");
  w.Double(disabled_overhead_pct);
  w.Key("ring_overhead_pct");
  w.Double(ring_overhead_pct);
  w.Key("slowlog_overhead_pct");
  w.Double(slowlog_overhead_pct);
  w.Key("gate_pct");
  w.Double(3.0);
  w.EndObject();
  out << "\n";
  std::printf("wrote BENCH_obs_overhead.json\n");

  if (!smoke && std::fabs(disabled_overhead_pct) >= 3.0) {
    std::fprintf(stderr,
                 "GATE FAILED: disabled-path tracing overhead %.2f%% "
                 "exceeds 3%%\n",
                 disabled_overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace msql::bench

int main(int argc, char** argv) { return msql::bench::Main(argc, argv); }

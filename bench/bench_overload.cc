// Overload goodput/latency benchmark: closed-loop clients drive a small
// scheduler at 1x / 2x / 4x of its worker capacity, once with
// instant-reject admission (max_admission_wait_ms=0, the pre-bounded-wait
// behavior) and once with bounded-wait admission. Every client uses
// SubmitWithRetry, so shed submissions burn client time in retry backoff;
// bounded-wait instead holds the submission at admission until a slot
// frees, keeping workers saturated across completion/retry gaps. Reports
// goodput (completed queries/sec) and p50/p99 client-observed latency per
// cell, and emits BENCH_overload.json.
//
// Gate (full runs only): at 2x offered load, bounded-wait goodput must be
// >= instant-reject goodput (docs/ROBUSTNESS.md). `--smoke` or any
// --benchmark* flag shrinks the run and skips the gate.
//
// Own-main bench: the timed multi-client phases don't fit the
// per-iteration google-benchmark model.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "json_writer.h"
#include "runtime/retry.h"
#include "runtime/scheduler.h"
#include "runtime/session.h"
#include "workload.h"

namespace msql::bench {
namespace {

// Plain aggregation (no measure cache): every execution pays the scan, so
// a query occupies a worker for a stable, non-trivial slice of time.
const char* const kQuery =
    "SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName "
    "ORDER BY prodName";

struct Cell {
  std::string mode;       // "instant_reject" | "bounded_wait"
  int load_multiple = 0;  // clients = load_multiple * worker threads
  int clients = 0;
  int64_t ok = 0;
  int64_t shed = 0;  // kResourceExhausted after retries
  int64_t other = 0;
  double duration_s = 0;
  double goodput_qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

Cell RunCell(Engine* db, const std::string& mode, int workers,
             int load_multiple, double duration_s) {
  Cell cell;
  cell.mode = mode;
  cell.load_multiple = load_multiple;
  cell.clients = workers * load_multiple;
  cell.duration_s = duration_s;

  SchedulerOptions sopts;
  sopts.num_threads = workers;
  // Admitted work is capped at the worker count: overload must be absorbed
  // at admission (wait or shed), not by an elastic queue.
  sopts.max_pending = static_cast<size_t>(workers);
  sopts.max_admission_wait_ms = mode == "bounded_wait" ? 100 : 0;
  QueryScheduler scheduler(sopts);

  std::mutex mu;
  std::vector<double> latencies_ms;
  std::atomic<int64_t> ok{0}, shed{0}, other{0};

  const auto start = std::chrono::steady_clock::now();
  const auto stop =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_s));
  std::vector<std::thread> threads;
  for (int c = 0; c < cell.clients; ++c) {
    threads.emplace_back([&, c] {
      SessionPtr session = db->CreateSession();
      RetryPolicy policy;
      policy.max_attempts = 4;
      policy.initial_backoff_ms = 2;
      policy.max_backoff_ms = 16;
      policy.jitter_seed = static_cast<uint64_t>(c) + 1;
      std::vector<double> local;
      while (std::chrono::steady_clock::now() < stop) {
        const auto t0 = std::chrono::steady_clock::now();
        Result<ResultSet> r = scheduler.SubmitWithRetry(session, kQuery,
                                                        policy);
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - t0;
        if (r.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          local.push_back(elapsed.count());
        } else if (r.status().code() == ErrorCode::kResourceExhausted) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  scheduler.Drain();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  cell.ok = ok.load();
  cell.shed = shed.load();
  cell.other = other.load();
  cell.goodput_qps = static_cast<double>(cell.ok) / wall.count();
  cell.p50_ms = Percentile(latencies_ms, 0.50);
  cell.p99_ms = Percentile(latencies_ms, 0.99);
  return cell;
}

int Main(int argc, char** argv) {
  int rows = 50000;
  int workers = 2;
  double duration_s = 1.5;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strncmp(argv[i], "--benchmark", 11) == 0) {
      smoke = true;
    }
    if (std::strncmp(argv[i], "--rows=", 7) == 0) rows = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--duration=", 11) == 0)
      duration_s = std::atof(argv[i] + 11);
  }
  if (smoke) {
    rows = std::min(rows, 5000);
    duration_s = 0.25;
  }

  Engine db;
  LoadOrders(&db, rows, /*products=*/50, /*customers=*/100);
  {  // warmup, untimed
    CheckResult(db.Query(kQuery), "warmup query");
  }

  const int multiples[] = {1, 2, 4};
  std::vector<Cell> cells;
  for (const char* mode : {"instant_reject", "bounded_wait"}) {
    for (int m : multiples) {
      cells.push_back(RunCell(&db, mode, workers, m, duration_s));
      const Cell& c = cells.back();
      std::printf(
          "%-14s %dx (%d clients): goodput %8.2f qps  p50 %7.2f ms  "
          "p99 %7.2f ms  ok=%lld shed=%lld other=%lld\n",
          c.mode.c_str(), c.load_multiple, c.clients, c.goodput_qps,
          c.p50_ms, c.p99_ms, static_cast<long long>(c.ok),
          static_cast<long long>(c.shed), static_cast<long long>(c.other));
    }
  }

  auto find_cell = [&](const std::string& mode, int m) -> const Cell& {
    for (const Cell& c : cells) {
      if (c.mode == mode && c.load_multiple == m) return c;
    }
    std::abort();
  };
  const double instant_2x = find_cell("instant_reject", 2).goodput_qps;
  const double bounded_2x = find_cell("bounded_wait", 2).goodput_qps;
  std::printf("bounded-wait goodput at 2x: %.2f qps vs instant-reject "
              "%.2f qps (gate: bounded >= instant on the full run)\n",
              bounded_2x, instant_2x);

  std::ofstream out("BENCH_overload.json");
  JsonWriter w(out);
  w.BeginObject();
  w.Key("bench");
  w.String("overload");
  w.Key("rows");
  w.Int(rows);
  w.Key("workers");
  w.Int(workers);
  w.Key("duration_s");
  w.Double(duration_s);
  w.Key("smoke");
  w.Bool(smoke);
  w.Key("cells");
  w.BeginArray();
  for (const Cell& c : cells) {
    w.BeginObject();
    w.Key("mode");
    w.String(c.mode);
    w.Key("load_multiple");
    w.Int(c.load_multiple);
    w.Key("clients");
    w.Int(c.clients);
    w.Key("ok");
    w.Int(c.ok);
    w.Key("shed");
    w.Int(c.shed);
    w.Key("other");
    w.Int(c.other);
    w.Key("goodput_qps");
    w.Double(c.goodput_qps);
    w.Key("p50_ms");
    w.Double(c.p50_ms);
    w.Key("p99_ms");
    w.Double(c.p99_ms);
    w.EndObject();
  }
  w.EndArray();
  w.Key("bounded_2x_goodput_qps");
  w.Double(bounded_2x);
  w.Key("instant_2x_goodput_qps");
  w.Double(instant_2x);
  w.EndObject();
  out << "\n";
  std::printf("wrote BENCH_overload.json\n");

  if (!smoke && bounded_2x < instant_2x) {
    std::fprintf(stderr,
                 "GATE FAILED: bounded-wait goodput at 2x (%.2f qps) is "
                 "below instant-reject (%.2f qps)\n",
                 bounded_2x, instant_2x);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace msql::bench

int main(int argc, char** argv) { return msql::bench::Main(argc, argv); }

// Front-end throughput: lexing + parsing + (separately) binding of measure
// queries, as a function of query size. Establishes that the AT/MEASURE
// extensions do not make the grammar pathological.

#include "benchmark/benchmark.h"
#include "binder/binder.h"
#include "parser/parser.h"
#include "workload.h"

namespace {

using msql::Binder;
using msql::Engine;
using msql::Parser;
using msql::StmtPtr;
using msql::bench::CheckResult;
using msql::bench::LoadOrders;

// Builds a SELECT with `n` measure expressions of mixed modifier shapes.
std::string MakeQuery(int n) {
  std::string q = "SELECT prodName";
  for (int i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0:
        q += ", AGGREGATE(sumRevenue) AS a" + std::to_string(i);
        break;
      case 1:
        q += ", sumRevenue AT (ALL prodName) AS a" + std::to_string(i);
        break;
      case 2:
        q += ", sumRevenue AT (SET orderYear = CURRENT orderYear - " +
             std::to_string(i) + ") AS a" + std::to_string(i);
        break;
      case 3:
        q += ", sumRevenue AT (WHERE revenue > " + std::to_string(i) +
             ") AS a" + std::to_string(i);
        break;
    }
  }
  q += " FROM EO GROUP BY prodName, orderYear";
  return q;
}

void BM_Parse(benchmark::State& state) {
  std::string query = MakeQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    StmtPtr stmt = CheckResult(Parser::Parse(query), "parse");
    benchmark::DoNotOptimize(stmt);
  }
  state.SetBytesProcessed(state.iterations() * query.size());
}

void BM_ParseAndBind(benchmark::State& state) {
  Engine db;
  LoadOrders(&db, 10, 4, 4);
  std::string query = MakeQuery(static_cast<int>(state.range(0)));
  StmtPtr stmt = CheckResult(Parser::Parse(query), "parse");
  for (auto _ : state) {
    Binder binder(&db.catalog(), "");
    auto plan = CheckResult(binder.Bind(*stmt->select), "bind");
    benchmark::DoNotOptimize(plan);
  }
  state.SetBytesProcessed(state.iterations() * query.size());
}

void BM_RoundTripPrint(benchmark::State& state) {
  std::string query = MakeQuery(static_cast<int>(state.range(0)));
  StmtPtr stmt = CheckResult(Parser::Parse(query), "parse");
  for (auto _ : state) {
    std::string printed = stmt->ToString();
    benchmark::DoNotOptimize(printed);
  }
}

BENCHMARK(BM_Parse)->Arg(1)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_ParseAndBind)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_RoundTripPrint)->Arg(8)->Arg(64);

}  // namespace

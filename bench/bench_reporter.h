#ifndef MSQL_BENCH_BENCH_REPORTER_H_
#define MSQL_BENCH_BENCH_REPORTER_H_

// Custom google-benchmark main that keeps the normal console output but
// also emits a machine-readable BENCH_<name>.json result file via
// json_writer.h — the same family of artifacts the own-main benches
// (bench_concurrency, bench_obs_overhead, bench_grouped_strategy)
// produce. Benches opt in by ending the file with
//
//   MSQL_BENCH_REPORTER_MAIN("strategies")
//
// and linking benchmark::benchmark WITHOUT benchmark_main (see
// REPORTER_BENCHES in bench/CMakeLists.txt).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "json_writer.h"

namespace msql::bench {

// Console reporter that also records every finished run so the JSON file
// can be written once all benchmarks have executed.
class JsonEmittingReporter : public ::benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) runs_.push_back(run);
    ConsoleReporter::ReportRuns(runs);
  }

  void WriteJson(const std::string& bench_name) const {
    const std::string path = "BENCH_" + bench_name + ".json";
    std::ofstream out(path);
    JsonWriter w(out);
    w.BeginObject();
    w.Key("bench");
    w.String(bench_name);
    w.Key("runs");
    w.BeginArray();
    for (const Run& run : runs_) {
      w.BeginObject();
      w.Key("name");
      w.String(run.benchmark_name());
      w.Key("iterations");
      w.Int(static_cast<int64_t>(run.iterations));
      w.Key("real_time");
      w.Double(run.GetAdjustedRealTime());
      w.Key("cpu_time");
      w.Double(run.GetAdjustedCPUTime());
      w.Key("time_unit");
      w.String(::benchmark::GetTimeUnitString(run.time_unit));
      w.Key("error");
      w.Bool(run.error_occurred);
      for (const auto& [counter_name, counter] : run.counters) {
        w.Key(counter_name);
        w.Double(counter.value);
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    out << "\n";
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::vector<Run> runs_;
};

inline int ReporterMain(int argc, char** argv, const char* bench_name) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonEmittingReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.WriteJson(bench_name);
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace msql::bench

#define MSQL_BENCH_REPORTER_MAIN(name)                    \
  int main(int argc, char** argv) {                       \
    return ::msql::bench::ReporterMain(argc, argv, name); \
  }

#endif  // MSQL_BENCH_BENCH_REPORTER_H_

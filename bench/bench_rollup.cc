// Grouping sets with measures: cost of ROLLUP / CUBE subtotal reports when
// each grouping set evaluates measures in its own contexts. Shape claim:
// cost grows with the number of grouping sets, and the memoized strategy
// reuses coarse contexts across sets (the grand total is computed once).
//
// Args: {rows}.

#include "benchmark/benchmark.h"
#include "workload.h"

namespace {

using msql::Engine;
using msql::ResultSet;
using msql::bench::CheckResult;
using msql::bench::LoadOrders;

void RunGrouped(benchmark::State& state, const std::string& group_clause) {
  Engine db;
  LoadOrders(&db, static_cast<int>(state.range(0)), /*products=*/24,
             /*customers=*/12);
  std::string query =
      "SELECT prodName, custName, orderYear, AGGREGATE(sumRevenue) AS rev "
      "FROM EO GROUP BY " + group_clause;
  size_t out_rows = 0;
  std::shared_ptr<const msql::QueryStats> stats;
  for (auto _ : state) {
    ResultSet rs = CheckResult(db.Query(query), "rollup query");
    out_rows = rs.num_rows();
    stats = rs.stats();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.counters["source_scans"] =
      static_cast<double>(stats == nullptr ? 0 : stats->measure_source_scans);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PlainGroupBy(benchmark::State& state) {
  RunGrouped(state, "prodName, custName, orderYear");
}
void BM_Rollup3(benchmark::State& state) {
  RunGrouped(state, "ROLLUP(prodName, custName, orderYear)");
}
void BM_Cube3(benchmark::State& state) {
  RunGrouped(state, "CUBE(prodName, custName, orderYear)");
}
void BM_GroupingSets(benchmark::State& state) {
  RunGrouped(state,
             "GROUPING SETS ((prodName), (custName), (orderYear), ())");
}

#define SIZES Args({2000})->Args({16000})->Unit(benchmark::kMillisecond)

BENCHMARK(BM_PlainGroupBy)->SIZES;
BENCHMARK(BM_Rollup3)->SIZES;
BENCHMARK(BM_Cube3)->SIZES;
BENCHMARK(BM_GroupingSets)->SIZES;

}  // namespace

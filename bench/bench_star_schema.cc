// End-to-end dashboard workload over a star schema published as a wide
// measure view (paper section 5.3's recommended practice). Measures a
// realistic mixed query set — top-line KPIs, grouped breakdowns with shares,
// subtotal reports, and period comparisons — at growing fact sizes, and the
// cost of the semantic layer relative to hand-written SQL over the base
// tables.
//
// Args: {fact_rows}.

#include "benchmark/benchmark.h"
#include "workload.h"

namespace {

using msql::Engine;
using msql::ResultSet;
using msql::Row;
using msql::Value;
using msql::bench::Check;
using msql::bench::CheckResult;

void LoadStarSchema(Engine* db, int fact_rows) {
  Check(db->Execute(R"sql(
    CREATE TABLE Products (productId INTEGER, category VARCHAR,
                           brand VARCHAR);
    CREATE TABLE Stores (storeId INTEGER, region VARCHAR, city VARCHAR);
    CREATE TABLE Sales (productId INTEGER, storeId INTEGER, saleDate DATE,
                        units INTEGER, amount INTEGER);
  )sql"),
        "create star schema");

  const int kProducts = 200, kStores = 40;
  std::vector<Row> products;
  for (int p = 0; p < kProducts; ++p) {
    products.push_back({Value::Int(p),
                        Value::String(msql::StrCat("cat", p % 12)),
                        Value::String(msql::StrCat("brand", p % 30))});
  }
  Check(db->InsertRows("Products", std::move(products)), "load Products");
  std::vector<Row> stores;
  for (int s = 0; s < kStores; ++s) {
    stores.push_back({Value::Int(s),
                      Value::String(msql::StrCat("region", s % 5)),
                      Value::String(msql::StrCat("city", s))});
  }
  Check(db->InsertRows("Stores", std::move(stores)), "load Stores");

  std::mt19937 rng(99);
  std::uniform_int_distribution<int> product(0, kProducts - 1);
  std::uniform_int_distribution<int> store(0, kStores - 1);
  std::uniform_int_distribution<int64_t> day(msql::DaysFromCivil(2023, 1, 1),
                                             msql::DaysFromCivil(2024, 12, 31));
  std::uniform_int_distribution<int> units(1, 20);
  std::uniform_int_distribution<int> price(3, 80);
  std::vector<Row> facts;
  facts.reserve(fact_rows);
  for (int i = 0; i < fact_rows; ++i) {
    int u = units(rng);
    facts.push_back({Value::Int(product(rng)), Value::Int(store(rng)),
                     Value::Date(day(rng)), Value::Int(u),
                     Value::Int(u * price(rng))});
  }
  Check(db->InsertRows("Sales", std::move(facts)), "load Sales");

  Check(db->Execute(R"sql(
    CREATE VIEW FactSales AS
      SELECT *, SUM(amount) AS MEASURE revenue,
             SUM(units) AS MEASURE totalUnits,
             COUNT(*) AS MEASURE txns,
             YEAR(saleDate) AS saleYear
      FROM Sales;
    CREATE VIEW Mart AS
      SELECT f.saleDate, f.saleYear, f.units, f.amount,
             f.revenue, f.totalUnits, f.txns,
             p.category, p.brand, s.region, s.city
      FROM FactSales AS f
      JOIN Products AS p ON f.productId = p.productId
      JOIN Stores AS s ON f.storeId = s.storeId;
  )sql"),
        "create mart");
}

const char* kDashboardQueries[] = {
    // KPI strip.
    "SELECT AGGREGATE(revenue) AS rev, AGGREGATE(totalUnits) AS units, "
    "AGGREGATE(txns) AS txns FROM Mart",
    // Breakdown with share-of-total.
    "SELECT region, AGGREGATE(revenue) AS rev, "
    "revenue * 1.0 / revenue AT (ALL region) AS share "
    "FROM Mart GROUP BY region ORDER BY rev DESC",
    // Subtotal report.
    "SELECT category, region, AGGREGATE(revenue) AS rev "
    "FROM Mart GROUP BY ROLLUP(category, region)",
    // Period comparison escaping the dashboard filter.
    "SELECT category, AGGREGATE(revenue) AS rev2024, "
    "revenue AT (SET saleYear = 2023) AS rev2023 "
    "FROM Mart WHERE saleYear = 2024 GROUP BY category",
};

void BM_DashboardOverMart(benchmark::State& state) {
  Engine db;
  LoadStarSchema(&db, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const char* q : kDashboardQueries) {
      ResultSet rs = CheckResult(db.Query(q), "dashboard query");
      benchmark::DoNotOptimize(rs);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<int64_t>(std::size(kDashboardQueries)));
}

// The same four questions hand-written against the base tables (what a user
// without the semantic layer must maintain).
const char* kHandwrittenQueries[] = {
    "SELECT SUM(amount) AS rev, SUM(units) AS units, COUNT(*) AS txns "
    "FROM Sales",
    "SELECT s.region, SUM(f.amount) AS rev, "
    "SUM(f.amount) * 1.0 / (SELECT SUM(amount) FROM Sales) AS share "
    "FROM Sales AS f JOIN Stores AS s ON f.storeId = s.storeId "
    "GROUP BY s.region ORDER BY rev DESC",
    "SELECT p.category, s.region, SUM(f.amount) AS rev "
    "FROM Sales AS f JOIN Products AS p ON f.productId = p.productId "
    "JOIN Stores AS s ON f.storeId = s.storeId "
    "GROUP BY ROLLUP(p.category, s.region)",
    "SELECT p.category, "
    "SUM(f.amount) FILTER (WHERE YEAR(f.saleDate) = 2024) AS rev2024, "
    "SUM(f.amount) FILTER (WHERE YEAR(f.saleDate) = 2023) AS rev2023 "
    "FROM Sales AS f JOIN Products AS p ON f.productId = p.productId "
    "GROUP BY p.category",
};

void BM_DashboardHandwritten(benchmark::State& state) {
  Engine db;
  LoadStarSchema(&db, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const char* q : kHandwrittenQueries) {
      ResultSet rs = CheckResult(db.Query(q), "handwritten query");
      benchmark::DoNotOptimize(rs);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<int64_t>(std::size(kHandwrittenQueries)));
}

BENCHMARK(BM_DashboardOverMart)
    ->Arg(2000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DashboardHandwritten)
    ->Arg(2000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

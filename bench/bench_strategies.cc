// Paper section 5.1 ("localized self-join"): measure evaluation strategies.
//   * naive      — every evaluation re-scans the measure source;
//   * memoized   — evaluations are cached by context signature, so each
//                  distinct group probes an in-memory result once;
//   * grouped    — all-dimension contexts share one hash partition of the
//                  source and answer with O(1) probes (docs/PERFORMANCE.md;
//                  bench_grouped_strategy holds the dedicated speedup gate);
//   * expanded   — the section 4.2 rewrite executed as plain SQL with
//                  correlated scalar subqueries (subquery memoization on).
// The shape claim: memoized ≪ naive as soon as a context repeats, and the
// measure engine matches the expanded form without any textual rewriting.
// Emits BENCH_strategies.json (bench_reporter.h).
//
// Args: {rows, products}.

#include "bench_reporter.h"
#include "benchmark/benchmark.h"
#include "workload.h"

namespace {

using msql::Engine;
using msql::EngineOptions;
using msql::MeasureStrategy;
using msql::ResultSet;
using msql::bench::CheckResult;
using msql::bench::LoadOrders;

// Every product row evaluates the same per-product context repeatedly: the
// query compares each group's revenue to its own product total and to the
// grand total.
const char* kMeasureQuery = R"sql(
  SELECT prodName, orderYear,
         AGGREGATE(sumRevenue) AS rev,
         sumRevenue AT (ALL orderYear) AS product_total,
         sumRevenue AT (ALL) AS grand_total
  FROM EO
  GROUP BY prodName, orderYear
)sql";

void RunWithStrategy(benchmark::State& state, MeasureStrategy strategy) {
  EngineOptions options;
  options.measure_strategy = strategy;
  Engine db(options);
  LoadOrders(&db, static_cast<int>(state.range(0)),
             static_cast<int>(state.range(1)), /*customers=*/50);
  std::shared_ptr<const msql::QueryStats> stats;
  for (auto _ : state) {
    ResultSet rs = CheckResult(db.Query(kMeasureQuery), "query");
    stats = rs.stats();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["measure_evals"] =
      static_cast<double>(stats == nullptr ? 0 : stats->measure_evals);
  state.counters["cache_hits"] =
      static_cast<double>(stats == nullptr ? 0 : stats->measure_cache_hits);
  state.counters["source_scans"] =
      static_cast<double>(stats == nullptr ? 0 : stats->measure_source_scans);
  state.counters["grouped_probes"] =
      static_cast<double>(stats == nullptr ? 0 : stats->measure_grouped_probes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StrategyNaive(benchmark::State& state) {
  RunWithStrategy(state, MeasureStrategy::kNaive);
}
void BM_StrategyMemoized(benchmark::State& state) {
  RunWithStrategy(state, MeasureStrategy::kMemoized);
}
void BM_StrategyGrouped(benchmark::State& state) {
  RunWithStrategy(state, MeasureStrategy::kGrouped);
}

// Ablation of the section 6.4 inline fast path on the AGGREGATE-only query
// (the overwhelmingly common BI shape): with the fast path, each group's
// measure is computed over exactly its own rows, no source scan at all.
void RunAggregateOnly(benchmark::State& state, bool inline_fastpath) {
  EngineOptions options;
  options.inline_visible_contexts = inline_fastpath;
  Engine db(options);
  LoadOrders(&db, static_cast<int>(state.range(0)),
             static_cast<int>(state.range(1)), /*customers=*/50);
  const char* query =
      "SELECT prodName, AGGREGATE(sumRevenue) AS rev, "
      "AGGREGATE(margin) AS margin FROM EO GROUP BY prodName";
  std::shared_ptr<const msql::QueryStats> stats;
  for (auto _ : state) {
    ResultSet rs = CheckResult(db.Query(query), "aggregate-only query");
    stats = rs.stats();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["source_scans"] =
      static_cast<double>(stats == nullptr ? 0 : stats->measure_source_scans);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_AggregateInlineFastpath(benchmark::State& state) {
  RunAggregateOnly(state, /*inline_fastpath=*/true);
}
void BM_AggregateContextScan(benchmark::State& state) {
  RunAggregateOnly(state, /*inline_fastpath=*/false);
}

void BM_StrategyExpandedSql(benchmark::State& state) {
  Engine db;
  LoadOrders(&db, static_cast<int>(state.range(0)),
             static_cast<int>(state.range(1)), /*customers=*/50);
  std::string expanded =
      CheckResult(db.ExpandSql(kMeasureQuery), "expansion of strategy query");
  std::shared_ptr<const msql::QueryStats> stats;
  for (auto _ : state) {
    ResultSet rs = CheckResult(db.Query(expanded), "expanded query");
    stats = rs.stats();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["subq_execs"] =
      static_cast<double>(stats == nullptr ? 0 : stats->subquery_execs);
  state.counters["subq_hits"] =
      static_cast<double>(stats == nullptr ? 0 : stats->subquery_cache_hits);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

#define SIZES                                                 \
  Args({2000, 16})->Args({2000, 256})->Args({16000, 16})      \
      ->Args({16000, 256})->Unit(benchmark::kMillisecond)

BENCHMARK(BM_StrategyNaive)->SIZES;
BENCHMARK(BM_StrategyMemoized)->SIZES;
BENCHMARK(BM_StrategyGrouped)->SIZES;
BENCHMARK(BM_StrategyExpandedSql)->SIZES;
BENCHMARK(BM_AggregateInlineFastpath)->SIZES;
BENCHMARK(BM_AggregateContextScan)->SIZES;

}  // namespace

MSQL_BENCH_REPORTER_MAIN("strategies")

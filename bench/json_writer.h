#ifndef MSQL_BENCH_JSON_WRITER_H_
#define MSQL_BENCH_JSON_WRITER_H_

// Minimal streaming JSON writer for benchmark result files
// (BENCH_*.json). Comma placement is handled by a scope stack, so call
// sites just open scopes and emit key/value pairs:
//
//   JsonWriter w(out);
//   w.BeginObject();
//   w.Key("bench"); w.String("concurrency");
//   w.Key("runs"); w.BeginArray();
//   ...
//   w.EndArray();
//   w.EndObject();

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace msql::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(const std::string& name) {
    Separate();
    WriteEscaped(name);
    out_ << ": ";
    have_key_ = true;
  }

  void String(const std::string& v) {
    Separate();
    WriteEscaped(v);
  }
  void Int(int64_t v) {
    Separate();
    out_ << v;
  }
  void Double(double v) {
    Separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ << buf;
  }
  void Bool(bool v) {
    Separate();
    out_ << (v ? "true" : "false");
  }

 private:
  void Open(char c) {
    Separate();
    out_ << c;
    needs_comma_.push_back(false);
  }
  void Close(char c) {
    if (!needs_comma_.empty()) needs_comma_.pop_back();
    out_ << c;
    if (!needs_comma_.empty()) needs_comma_.back() = true;
  }
  // Emits the separator a value/key needs in the current scope.
  void Separate() {
    if (have_key_) {
      have_key_ = false;  // value directly after its key
      return;
    }
    if (!needs_comma_.empty()) {
      if (needs_comma_.back()) out_ << ", ";
      needs_comma_.back() = true;
    }
  }
  void WriteEscaped(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<bool> needs_comma_;
  bool have_key_ = false;
};

}  // namespace msql::bench

#endif  // MSQL_BENCH_JSON_WRITER_H_

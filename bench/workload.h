#ifndef MSQL_BENCH_WORKLOAD_H_
#define MSQL_BENCH_WORKLOAD_H_

// Shared workload generators for the benchmark harness. All generators are
// deterministic (seeded) so runs are comparable.

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>

#include "common/date.h"
#include "common/string_util.h"
#include "engine/engine.h"

namespace msql::bench {

inline void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

template <typename T>
inline T CheckResult(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    std::abort();
  }
  return r.take();
}

// Creates an Orders table with `rows` rows spread over `products` products,
// `customers` customers and three years, plus the standard measure view EO
// (sumRevenue / margin / orderCount measures and an orderYear column).
inline void LoadOrders(Engine* db, int rows, int products, int customers,
                       uint32_t seed = 42) {
  Check(db->Execute(
            "CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR, "
            "orderDate DATE, revenue INTEGER, cost INTEGER)"),
        "create Orders");
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> prod(0, products - 1);
  std::uniform_int_distribution<int> cust(0, customers - 1);
  std::uniform_int_distribution<int64_t> day(DaysFromCivil(2022, 1, 1),
                                             DaysFromCivil(2024, 12, 31));
  std::uniform_int_distribution<int> revenue(2, 500);
  std::vector<Row> data;
  data.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    int rev = revenue(rng);
    data.push_back({Value::String(StrCat("P", prod(rng))),
                    Value::String(StrCat("C", cust(rng))),
                    Value::Date(day(rng)), Value::Int(rev),
                    Value::Int(rev / 2 + 1)});
  }
  Check(db->InsertRows("Orders", std::move(data)), "load Orders");
  Check(db->Execute(R"sql(
    CREATE VIEW EO AS
    SELECT *, SUM(revenue) AS MEASURE sumRevenue,
           (SUM(revenue) - SUM(cost)) * 1.0 / SUM(revenue) AS MEASURE margin,
           COUNT(*) AS MEASURE orderCount,
           YEAR(orderDate) AS orderYear
    FROM Orders
  )sql"),
        "create EO");
}

// Creates Customers (one row per customer) for join benchmarks, plus the EC
// measure view (avgAge / custCount).
inline void LoadCustomers(Engine* db, int customers, uint32_t seed = 7) {
  Check(db->Execute(
            "CREATE TABLE Customers (custName VARCHAR, custAge INTEGER, "
            "segment VARCHAR)"),
        "create Customers");
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> age(16, 80);
  std::vector<Row> data;
  data.reserve(customers);
  for (int i = 0; i < customers; ++i) {
    data.push_back({Value::String(StrCat("C", i)), Value::Int(age(rng)),
                    Value::String(i % 3 == 0 ? "retail" : "pro")});
  }
  Check(db->InsertRows("Customers", std::move(data)), "load Customers");
  Check(db->Execute(R"sql(
    CREATE VIEW EC AS
    SELECT *, AVG(custAge) AS MEASURE avgAge, COUNT(*) AS MEASURE custCount
    FROM Customers
  )sql"),
        "create EC");
}

}  // namespace msql::bench

#endif  // MSQL_BENCH_WORKLOAD_H_

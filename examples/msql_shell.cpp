// An interactive shell for the msql engine. Reads ';'-terminated statements
// from stdin and prints result tables. Meta commands:
//   \q            quit
//   \d            list catalog objects
//   \d NAME       describe a table or view
//   \explain SQL  show the logical plan
//   \expand SQL   show the section-4.2 measure expansion
//   \stats        engine-wide execution statistics
//   \metrics      Prometheus-style metrics exposition
//
//   build/examples/msql_shell [file.sql ...]
// Files given on the command line are executed before the prompt starts.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "engine/engine.h"

namespace {

void PrintStats(const msql::EngineStats& stats) {
  std::printf(
      "measure evals: %llu (cache hits %llu, source scans %llu); "
      "subqueries: %llu (cache hits %llu)\n",
      static_cast<unsigned long long>(stats.measure_evals),
      static_cast<unsigned long long>(stats.measure_cache_hits),
      static_cast<unsigned long long>(stats.measure_source_scans),
      static_cast<unsigned long long>(stats.subquery_execs),
      static_cast<unsigned long long>(stats.subquery_cache_hits));
}

void RunStatement(msql::Engine* db, const std::string& sql) {
  auto result = db->Query(sql);
  if (!result.ok()) {
    std::printf("%s\n", result.status().ToString().c_str());
    return;
  }
  if (result.value().num_columns() > 0) {
    std::printf("%s(%zu row%s)\n", result.value().ToString().c_str(),
                result.value().num_rows(),
                result.value().num_rows() == 1 ? "" : "s");
  } else {
    std::printf("OK\n");
  }
}

bool HandleMetaCommand(msql::Engine* db, const std::string& line) {
  if (line == "\\q" || line == "\\quit") return false;
  if (line == "\\d") {
    for (const std::string& name : db->catalog().ListNames()) {
      std::printf("%s\n", name.c_str());
    }
    return true;
  }
  if (line.rfind("\\d ", 0) == 0) {
    RunStatement(db, "DESCRIBE " + line.substr(3));
    return true;
  }
  if (line.rfind("\\explain ", 0) == 0) {
    auto plan = db->Explain(line.substr(9));
    std::printf("%s\n", plan.ok() ? plan.value().c_str()
                                  : plan.status().ToString().c_str());
    return true;
  }
  if (line.rfind("\\expand ", 0) == 0) {
    auto expanded = db->ExpandSql(line.substr(8));
    std::printf("%s\n", expanded.ok() ? expanded.value().c_str()
                                      : expanded.status().ToString().c_str());
    return true;
  }
  if (line == "\\stats") {
    PrintStats(db->stats());
    return true;
  }
  if (line == "\\metrics") {
    std::printf("%s", db->MetricsText().c_str());
    return true;
  }
  std::printf("unknown meta command: %s\n", line.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  msql::Engine db;

  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    msql::Status st = db.Execute(buffer.str());
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i], st.ToString().c_str());
      return 1;
    }
  }

  std::printf("msql shell — Measures in SQL. \\q quits, \\d lists objects.\n");
  std::string pending;
  std::string line;
  std::printf("msql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed = msql::Trim(line);
    if (pending.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (!HandleMetaCommand(&db, trimmed)) break;
      std::printf("msql> ");
      std::fflush(stdout);
      continue;
    }
    pending += line + "\n";
    // Execute once the buffer ends with ';'.
    std::string t = msql::Trim(pending);
    if (!t.empty() && t.back() == ';') {
      RunStatement(&db, t);
      pending.clear();
    }
    std::printf(pending.empty() ? "msql> " : "  ... ");
    std::fflush(stdout);
  }
  return 0;
}

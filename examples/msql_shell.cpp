// An interactive shell for the msql engine. Reads ';'-terminated statements
// from stdin and prints result tables. Meta commands:
//   \q            quit
//   \d            list catalog objects
//   \d NAME       describe a table or view
//   \explain SQL  show the logical plan
//   \expand SQL   show the section-4.2 measure expansion
//   \stats        engine-wide execution statistics
//   \metrics      Prometheus-style metrics exposition
//   \timing verbose | off
//                 per-statement phase breakdown (parse/bind/measure-expand/
//                 plan/execute/render µs and guard bytes); over --connect
//                 this turns on the wire trace footer
//
//   build/examples/msql_shell [file.sql ...]
//   build/examples/msql_shell --connect host:port [--user NAME]
//
// Files given on the command line are executed before the prompt starts.
// With --connect the shell speaks the msqld wire protocol instead of
// running an in-process engine; catalog meta commands (\d, \explain,
// \expand) travel as SQL, while \stats and \metrics are local-engine only.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "engine/engine.h"
#include "net/client.h"
#include "runtime/session.h"

namespace {

void PrintStats(const msql::EngineStats& stats) {
  std::printf(
      "measure evals: %llu (cache hits %llu, source scans %llu); "
      "subqueries: %llu (cache hits %llu)\n",
      static_cast<unsigned long long>(stats.measure_evals),
      static_cast<unsigned long long>(stats.measure_cache_hits),
      static_cast<unsigned long long>(stats.measure_source_scans),
      static_cast<unsigned long long>(stats.subquery_execs),
      static_cast<unsigned long long>(stats.subquery_cache_hits));
}

// Renders the per-statement footer from ResultSet::stats() — the single
// source of execution timing, local or remote, so both modes report the
// same numbers the engine measured (not a wall clock around the call).
std::string StatsFooter(const msql::ResultSet& result) {
  const std::shared_ptr<const msql::QueryStats>& stats = result.stats();
  if (stats == nullptr) return "";
  std::string footer =
      msql::StrCat(", ", stats->total_us / 1000, ".",
                   (stats->total_us % 1000) / 100, " ms");
  switch (stats->plan_cache) {
    case msql::QueryStats::PlanCacheOutcome::kOff:
      break;
    case msql::QueryStats::PlanCacheOutcome::kMiss:
      footer += ", plan cache miss";
      break;
    case msql::QueryStats::PlanCacheOutcome::kHit:
      footer += ", plan cache hit";
      break;
  }
  return footer;
}

// \timing verbose: print the server-side phase breakdown after each
// statement. The numbers come from QueryStats whether the statement ran
// in-process (session tracing) or over the wire (response footer).
bool g_timing_verbose = false;

void PrintVerboseTiming(const msql::ResultSet& result) {
  const std::shared_ptr<const msql::QueryStats>& stats = result.stats();
  if (!g_timing_verbose || stats == nullptr) return;
  std::printf(
      "timing: admission %lld us, queue %lld us, parse %lld us, "
      "bind %lld us, measure-expand %lld us, plan %lld us, "
      "execute %lld us, render %lld us; guard %llu bytes\n",
      static_cast<long long>(stats->admission_wait_us),
      static_cast<long long>(stats->queue_wait_us),
      static_cast<long long>(stats->parse_us),
      static_cast<long long>(stats->bind_us),
      static_cast<long long>(stats->measure_expand_us),
      static_cast<long long>(stats->plan_us),
      static_cast<long long>(stats->execute_us),
      static_cast<long long>(stats->render_us),
      static_cast<unsigned long long>(stats->bytes_charged));
}

void PrintResult(const msql::ResultSet& result) {
  if (result.num_columns() > 0) {
    std::printf("%s(%zu row%s%s)\n", result.ToString().c_str(),
                result.num_rows(), result.num_rows() == 1 ? "" : "s",
                StatsFooter(result).c_str());
  } else {
    std::printf("OK%s\n", StatsFooter(result).c_str());
  }
  PrintVerboseTiming(result);
}

// The two shell backends: an in-process engine or an msqld connection.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual msql::Result<msql::ResultSet> Query(const std::string& sql) = 0;
  // Enables or disables per-statement phase timing in the backend (session
  // tracing locally, the wire trace footer remotely).
  virtual void SetTiming(bool verbose) = 0;

  // Returns true when the meta command was handled; `quit` signals \q.
  bool Meta(const std::string& line, bool* quit) {
    if (line == "\\timing verbose" || line == "\\timing off") {
      g_timing_verbose = line == "\\timing verbose";
      SetTiming(g_timing_verbose);
      std::printf("timing %s\n", g_timing_verbose ? "verbose" : "off");
      return true;
    }
    return MetaImpl(line, quit);
  }

 protected:
  virtual bool MetaImpl(const std::string& line, bool* quit) = 0;
};

class LocalBackend : public Backend {
 public:
  LocalBackend() : session_(db_.CreateSession()) {}

  msql::Result<msql::ResultSet> Query(const std::string& sql) override {
    // Through a session so \timing verbose can toggle tracing per shell.
    return session_->Query(sql);
  }

  void SetTiming(bool verbose) override {
    session_->options().enable_tracing = verbose;
  }

 protected:
  bool MetaImpl(const std::string& line, bool* quit) override {
    if (line == "\\q" || line == "\\quit") {
      *quit = true;
      return true;
    }
    if (line == "\\d") {
      for (const std::string& name : db_.catalog().ListNames()) {
        std::printf("%s\n", name.c_str());
      }
      return true;
    }
    if (line.rfind("\\d ", 0) == 0) {
      auto result = Query("DESCRIBE " + line.substr(3));
      if (result.ok()) {
        PrintResult(result.value());
      } else {
        std::printf("%s\n", result.status().ToString().c_str());
      }
      return true;
    }
    if (line.rfind("\\explain ", 0) == 0) {
      auto plan = db_.Explain(line.substr(9));
      std::printf("%s\n", plan.ok() ? plan.value().c_str()
                                    : plan.status().ToString().c_str());
      return true;
    }
    if (line.rfind("\\expand ", 0) == 0) {
      auto expanded = db_.ExpandSql(line.substr(8));
      std::printf("%s\n", expanded.ok()
                              ? expanded.value().c_str()
                              : expanded.status().ToString().c_str());
      return true;
    }
    if (line == "\\stats") {
      PrintStats(db_.stats());
      return true;
    }
    if (line == "\\metrics") {
      std::printf("%s", db_.MetricsText().c_str());
      return true;
    }
    return false;
  }

 public:
  msql::Engine* engine() { return &db_; }

 private:
  msql::Engine db_;
  msql::SessionPtr session_;
};

class RemoteBackend : public Backend {
 public:
  msql::Status Connect(const std::string& host, uint16_t port,
                       const std::string& user) {
    msql::net::ClientOptions options;
    options.user = user;
    return client_.Connect(host, port, options);
  }

  msql::Result<msql::ResultSet> Query(const std::string& sql) override {
    return client_.Query(sql);
  }

  void SetTiming(bool verbose) override { client_.SetTrace(verbose); }

 protected:
  bool MetaImpl(const std::string& line, bool* quit) override {
    if (line == "\\q" || line == "\\quit") {
      *quit = true;
      return true;
    }
    // Catalog meta commands work remotely because they are plain SQL.
    if (line.rfind("\\d ", 0) == 0) {
      auto result = Query("DESCRIBE " + line.substr(3));
      if (result.ok()) {
        PrintResult(result.value());
      } else {
        std::printf("%s\n", result.status().ToString().c_str());
      }
      return true;
    }
    if (line == "\\d" || line == "\\stats" || line == "\\metrics" ||
        line.rfind("\\explain ", 0) == 0 || line.rfind("\\expand ", 0) == 0) {
      std::printf("%s is not available over --connect\n",
                  line.substr(0, line.find(' ')).c_str());
      return true;
    }
    return false;
  }

 private:
  msql::net::Client client_;
};

void RunStatement(Backend* backend, const std::string& sql) {
  auto result = backend->Query(sql);
  if (!result.ok()) {
    std::printf("%s\n", result.status().ToString().c_str());
    return;
  }
  PrintResult(result.value());
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_to;
  std::string user = "shell";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_to = argv[++i];
    } else if (arg == "--user" && i + 1 < argc) {
      user = argv[++i];
    } else {
      files.push_back(arg);
    }
  }

  std::unique_ptr<Backend> backend;
  if (!connect_to.empty()) {
    const size_t colon = connect_to.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect expects host:port, got %s\n",
                   connect_to.c_str());
      return 1;
    }
    auto remote = std::make_unique<RemoteBackend>();
    const std::string host = connect_to.substr(0, colon);
    const int port = std::atoi(connect_to.c_str() + colon + 1);
    msql::Status st =
        remote->Connect(host, static_cast<uint16_t>(port), user);
    if (!st.ok()) {
      std::fprintf(stderr, "connect %s failed: %s\n", connect_to.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    backend = std::move(remote);
  } else {
    backend = std::make_unique<LocalBackend>();
  }

  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (auto* local = dynamic_cast<LocalBackend*>(backend.get())) {
      msql::Status st = local->engine()->Execute(buffer.str());
      if (!st.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     st.ToString().c_str());
        return 1;
      }
    } else {
      auto result = backend->Query(buffer.str());
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
    }
  }

  std::printf("msql shell — Measures in SQL. \\q quits, \\d lists objects.\n");
  if (!connect_to.empty()) {
    std::printf("connected to msqld at %s as '%s'\n", connect_to.c_str(),
                user.c_str());
  }
  std::string pending;
  std::string line;
  std::printf("msql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string trimmed = msql::Trim(line);
    if (pending.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      bool quit = false;
      if (!backend->Meta(trimmed, &quit)) {
        std::printf("unknown meta command: %s\n", trimmed.c_str());
      }
      if (quit) break;
      std::printf("msql> ");
      std::fflush(stdout);
      continue;
    }
    pending += line + "\n";
    // Execute once the buffer ends with ';'.
    std::string t = msql::Trim(pending);
    if (!t.empty() && t.back() == ';') {
      RunStatement(backend.get(), t);
      pending.clear();
    }
    std::printf(pending.empty() ? "msql> " : "  ... ");
    std::fflush(stdout);
  }
  return 0;
}

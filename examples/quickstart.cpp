// Quickstart: the paper's running example end to end — create the Orders
// table, define a measure view, and query it with AGGREGATE and AT.
//
//   build/examples/quickstart

#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/engine.h"

namespace {

void Run(msql::Engine* db, const std::string& sql) {
  std::printf("msql> %s\n", sql.c_str());
  auto result = db->Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s\n", result.value().ToString().c_str());
}

}  // namespace

int main() {
  msql::Engine db;

  msql::Status st = db.Execute(R"sql(
    CREATE TABLE Orders (prodName VARCHAR, custName VARCHAR,
                         orderDate DATE, revenue INTEGER, cost INTEGER);
    INSERT INTO Orders VALUES
      ('Happy', 'Alice', DATE '2023-11-28', 6, 4),
      ('Acme',  'Bob',   DATE '2023-11-27', 5, 2),
      ('Happy', 'Alice', DATE '2024-11-28', 7, 4),
      ('Whizz', 'Celia', DATE '2023-11-25', 3, 1),
      ('Happy', 'Bob',   DATE '2022-11-27', 4, 1);

    -- A measure attaches a calculation to the table (paper listing 3).
    CREATE VIEW EnhancedOrders AS
    SELECT orderDate, prodName, custName, revenue,
           (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
           SUM(revenue) AS MEASURE sumRevenue
    FROM Orders;
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // The paper's listing 4: the measure recomputes the margin per group —
  // no average-of-averages bug.
  Run(&db, "SELECT prodName, AGGREGATE(profitMargin) AS profitMargin, "
           "COUNT(*) AS c FROM EnhancedOrders GROUP BY prodName "
           "ORDER BY prodName");

  // Listing 6: share of total via a context modifier.
  Run(&db, "SELECT prodName, AGGREGATE(sumRevenue) AS revenue, "
           "sumRevenue / sumRevenue AT (ALL prodName) AS share "
           "FROM EnhancedOrders GROUP BY prodName ORDER BY prodName");

  // Section 4.2: every measure query expands to plain SQL.
  auto expanded = db.ExpandSql(
      "SELECT prodName, AGGREGATE(profitMargin) AS pm "
      "FROM EnhancedOrders GROUP BY prodName");
  if (expanded.ok()) {
    std::printf("-- expansion of the first query:\n%s\n\n",
                expanded.value().c_str());
  }

  // EXPLAIN shows the logical plan with the measure bindings.
  auto plan = db.Explain(
      "SELECT prodName, AGGREGATE(profitMargin) FROM EnhancedOrders "
      "GROUP BY prodName");
  if (plan.ok()) {
    std::printf("-- logical plan:\n%s\n", plan.value().c_str());
  }
  return 0;
}

// Sales analysis: the BI-style workload the paper's introduction motivates —
// year-over-year comparisons, shares of total, subtotal reports with ROLLUP,
// and "visible vs all" totals, all from one measure view with no repeated
// filter predicates.

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>

#include "common/string_util.h"
#include "engine/engine.h"

namespace {

void Run(msql::Engine* db, const char* title, const std::string& sql) {
  std::printf("--- %s\n%s\n", title, sql.c_str());
  auto result = db->Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s\n", result.value().ToString().c_str());
}

// Generates a deterministic synthetic sales history.
void LoadSales(msql::Engine* db) {
  std::mt19937 rng(2024);
  const char* regions[] = {"AMER", "EMEA", "APAC"};
  const char* products[] = {"Pen", "Book", "Lamp", "Desk"};
  std::uniform_int_distribution<int> month(1, 12);
  std::uniform_int_distribution<int> day(1, 28);
  std::uniform_int_distribution<int> qty(1, 9);
  std::uniform_int_distribution<int> price(5, 60);

  msql::Status st = db->Execute(
      "CREATE TABLE Sales (region VARCHAR, product VARCHAR, saleDate DATE, "
      "qty INTEGER, unitPrice INTEGER, unitCost INTEGER)");
  if (!st.ok()) std::exit(1);
  std::string insert = "INSERT INTO Sales VALUES ";
  bool first = true;
  for (int year = 2022; year <= 2024; ++year) {
    for (int i = 0; i < 150; ++i) {
      int p = price(rng);
      int m = month(rng);
      int d = day(rng);
      if (!first) insert += ", ";
      first = false;
      insert += msql::StrCat("('", regions[i % 3], "', '", products[i % 4],
                             "', DATE '", year, "-", m < 10 ? "0" : "", m, "-",
                             d < 10 ? "0" : "", d, "', ", qty(rng), ", ", p,
                             ", ", p / 2 + 1, ")");
    }
  }
  st = db->Execute(insert);
  if (!st.ok()) std::exit(1);
}

}  // namespace

int main() {
  msql::Engine db;
  LoadSales(&db);

  // The semantic layer: one view defines the business calculations once.
  msql::Status st = db.Execute(R"sql(
    CREATE VIEW SalesModel AS
    SELECT *,
           YEAR(saleDate) AS saleYear,
           QUARTER(saleDate) AS saleQuarter,
           SUM(qty * unitPrice) AS MEASURE revenue,
           SUM(qty * unitCost) AS MEASURE cost,
           (revenue - cost) * 1.0 / revenue AS MEASURE margin,
           COUNT(*) AS MEASURE orders
    FROM Sales
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  Run(&db, "revenue and margin by region (2024)", R"sql(
    SELECT region, AGGREGATE(revenue) AS revenue, AGGREGATE(margin) AS margin
    FROM SalesModel WHERE saleYear = 2024
    GROUP BY region ORDER BY region
  )sql");

  Run(&db, "year-over-year growth per product "
           "(SET reaches data removed by WHERE)", R"sql(
    SELECT product, saleYear,
           revenue AS rev,
           revenue AT (SET saleYear = CURRENT saleYear - 1) AS prevRev,
           revenue * 1.0 / revenue AT (SET saleYear = CURRENT saleYear - 1) - 1
             AS growth
    FROM SalesModel WHERE saleYear = 2024
    GROUP BY product, saleYear ORDER BY product
  )sql");

  Run(&db, "share of total revenue by region", R"sql(
    SELECT region, AGGREGATE(revenue) AS revenue,
           revenue * 1.0 / revenue AT (ALL region) AS share
    FROM SalesModel GROUP BY region ORDER BY share DESC
  )sql");

  Run(&db, "subtotal report (ROLLUP + visible/all totals)", R"sql(
    SELECT region, product,
           AGGREGATE(revenue) AS rev2024,
           revenue AS revAllYears
    FROM SalesModel WHERE saleYear = 2024
    GROUP BY ROLLUP(region, product)
    ORDER BY region NULLS LAST, product NULLS LAST
    LIMIT 10
  )sql");

  Run(&db, "products beating their region's average margin", R"sql(
    SELECT region, product, AGGREGATE(margin) AS productMargin,
           margin AT (ALL product) AS regionMargin
    FROM SalesModel
    GROUP BY region, product
    HAVING AGGREGATE(margin) > margin AT (ALL product)
    ORDER BY region, product
  )sql");

  Run(&db, "quarter-over-quarter revenue, 2024", R"sql(
    SELECT saleYear, saleQuarter, AGGREGATE(revenue) AS rev,
           revenue AT (SET saleQuarter = CURRENT saleQuarter - 1) AS prevQ
    FROM SalesModel WHERE saleYear = 2024
    GROUP BY saleYear, saleQuarter ORDER BY saleQuarter
  )sql");
  return 0;
}

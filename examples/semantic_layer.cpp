// Semantic layer: demonstrates paper sections 5.5 and 5.6 — a data owner
// publishes a governed measure view (like a Looker Explore exposed through
// the Open SQL Interface); analysts query it without any access to the
// underlying fact tables, and every calculation stays consistent.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/engine.h"

namespace {

void Expect(const msql::Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

void Show(msql::Engine* db, const char* who, const std::string& sql) {
  std::printf("[%s] %s\n", who, sql.c_str());
  auto result = db->Query(sql);
  if (!result.ok()) {
    std::printf("  -> %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result.value().ToString().c_str());
}

}  // namespace

int main() {
  msql::Engine db;

  // --- the data owner builds the model -----------------------------------
  db.SetUser("data_owner");
  Expect(db.Execute(R"sql(
    CREATE TABLE Salaries (dept VARCHAR, employee VARCHAR, salary INTEGER,
                           level VARCHAR);
    INSERT INTO Salaries VALUES
      ('eng',   'ann', 150, 'senior'),
      ('eng',   'bob', 120, 'junior'),
      ('eng',   'cat', 180, 'staff'),
      ('sales', 'dan', 100, 'senior'),
      ('sales', 'eve',  90, 'junior');

    -- The governed interface: department-level payroll measures. Individual
    -- employees and their salaries are NOT exposed; the measures answer
    -- questions only along the dept/level dimensions (the paper's
    -- "hologram" security argument, section 5.5).
    CREATE VIEW Payroll AS
    SELECT dept, level,
           SUM(salary) AS MEASURE totalComp,
           AVG(salary) AS MEASURE avgComp,
           COUNT(*) AS MEASURE headcount
    FROM Salaries
  )sql"));
  Expect(db.Grant("Payroll", "analyst"));

  // --- the analyst explores ------------------------------------------------
  db.SetUser("analyst");

  std::printf("== The analyst cannot touch the fact table:\n");
  Show(&db, "analyst", "SELECT * FROM Salaries");

  std::printf("== ... but can ask dimensional questions of the measures:\n");
  Show(&db, "analyst", R"sql(
    SELECT dept, AGGREGATE(headcount) AS n, AGGREGATE(avgComp) AS avg_comp,
           totalComp * 1.0 / totalComp AT (ALL dept) AS payroll_share
    FROM Payroll GROUP BY dept ORDER BY dept
  )sql");

  Show(&db, "analyst", R"sql(
    SELECT level, AGGREGATE(totalComp) AS comp
    FROM Payroll GROUP BY ROLLUP(level) ORDER BY level NULLS LAST
  )sql");

  std::printf("== Hidden columns stay hidden (employee, salary):\n");
  Show(&db, "analyst", "SELECT employee FROM Payroll");

  std::printf("== The analyst can publish derived views (closure):\n");
  Expect(db.Execute(R"sql(
    CREATE VIEW EngPayroll AS
    SELECT level, totalComp FROM Payroll WHERE dept = 'eng'
  )sql"));
  Show(&db, "analyst", R"sql(
    SELECT level, AGGREGATE(totalComp) AS comp FROM EngPayroll
    GROUP BY level ORDER BY level
  )sql");

  std::printf("== A third user is denied everything:\n");
  db.SetUser("intern");
  Show(&db, "intern", "SELECT dept FROM Payroll");
  Show(&db, "intern", "SELECT level FROM EngPayroll");
  return 0;
}

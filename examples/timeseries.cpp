// Time series (paper section 6.5): an expert encapsulates the calculations
// — moving averages, period-over-period deltas, gap-aware counts — in a
// model view as measures; a user then asks questions at any grain without
// knowing the formulas. Demonstrates the SET/CURRENT navigation pattern as a
// declarative alternative to window-frame arithmetic.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>

#include "common/string_util.h"
#include "engine/engine.h"

namespace {

void Run(msql::Engine* db, const char* title, const std::string& sql) {
  std::printf("--- %s\n", title);
  auto result = db->Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s\n", result.value().ToString().c_str());
}

// Hourly sensor readings over four days, with a gap (sensor offline).
void LoadReadings(msql::Engine* db) {
  msql::Status st = db->Execute(
      "CREATE TABLE Readings (sensor VARCHAR, day DATE, hour INTEGER, "
      "temperature DOUBLE)");
  if (!st.ok()) std::exit(1);
  std::mt19937 rng(11);
  std::normal_distribution<double> noise(0.0, 0.8);
  std::string insert = "INSERT INTO Readings VALUES ";
  bool first = true;
  for (int d = 0; d < 4; ++d) {
    for (int h = 0; h < 24; ++h) {
      if (d == 2 && h >= 6 && h < 18) continue;  // offline: the gap
      double base = 15 + 8 * std::sin((h - 6) * 3.14159 / 12) + d * 0.5;
      for (const char* sensor : {"roof", "cellar"}) {
        double t = base + (sensor[0] == 'c' ? -6 : 0) + noise(rng);
        if (!first) insert += ", ";
        first = false;
        insert += msql::StrCat("('", sensor, "', DATE '2024-06-0", d + 1,
                               "', ", h, ", ", t, ")");
      }
    }
  }
  st = db->Execute(insert);
  if (!st.ok()) std::exit(1);
}

}  // namespace

int main() {
  msql::Engine db;
  LoadReadings(&db);

  // The model: the expert's measures, defined once.
  msql::Status st = db.Execute(R"sql(
    CREATE VIEW Climate AS
    SELECT *,
           AVG(temperature) AS MEASURE avgTemp,
           MAX(temperature) AS MEASURE maxTemp,
           MIN(temperature) AS MEASURE minTemp,
           COUNT(*) AS MEASURE readings
    FROM Readings
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  Run(&db, "daily summary per sensor (the user picks the grain)", R"sql(
    SELECT sensor, day, AGGREGATE(avgTemp) AS avg_t,
           AGGREGATE(minTemp) AS min_t, AGGREGATE(maxTemp) AS max_t,
           AGGREGATE(readings) AS n
    FROM Climate GROUP BY sensor, day ORDER BY sensor, day
  )sql");

  Run(&db, "day-over-day delta via SET/CURRENT (no self-join)", R"sql(
    SELECT sensor, day,
           AGGREGATE(avgTemp) AS avg_t,
           avgTemp AT (SET day = CURRENT day - 1) AS prev_avg,
           AGGREGATE(avgTemp) - avgTemp AT (SET day = CURRENT day - 1)
             AS delta
    FROM Climate GROUP BY sensor, day ORDER BY sensor, day
  )sql");

  Run(&db, "gap detection: the offline day stands out against the total",
      R"sql(
    SELECT day, AGGREGATE(readings) AS n,
           readings AT (ALL day) AS all_days,
           AGGREGATE(readings) * 1.0 / readings AT (ALL day) AS share
    FROM Climate GROUP BY day ORDER BY day
  )sql");

  Run(&db, "centered 3-hour smoothing via context navigation", R"sql(
    SELECT hour,
           (COALESCE(avgTemp AT (SET hour = CURRENT hour - 1), AGGREGATE(avgTemp))
            + AGGREGATE(avgTemp)
            + COALESCE(avgTemp AT (SET hour = CURRENT hour + 1), AGGREGATE(avgTemp)))
           / 3 AS smoothed,
           AGGREGATE(avgTemp) AS raw
    FROM Climate WHERE sensor = 'roof' AND day = DATE '2024-06-01'
    GROUP BY sensor, day, hour ORDER BY hour LIMIT 8
  )sql");

  Run(&db, "hottest hour per sensor (MAX_BY measure)", R"sql(
    SELECT sensor, AGGREGATE(peakHour) AS hottest_hour
    FROM (SELECT *, MAX_BY(hour, temperature) AS MEASURE peakHour
          FROM Readings) AS p
    GROUP BY sensor ORDER BY sensor
  )sql");
  return 0;
}

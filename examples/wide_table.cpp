// Wide tables (paper section 5.3): a fact table joined to two dimension
// tables, published as a single wide view. Measures keep their grain, so the
// denormalization cannot double-count — the practice the paper recommends.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/engine.h"

namespace {

void Run(msql::Engine* db, const char* title, const std::string& sql) {
  std::printf("--- %s\n", title);
  auto result = db->Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s\n", result.value().ToString().c_str());
}

}  // namespace

int main() {
  msql::Engine db;
  msql::Status st = db.Execute(R"sql(
    CREATE TABLE Shipments (orderId INTEGER, productId INTEGER,
                            storeId INTEGER, units INTEGER);
    INSERT INTO Shipments VALUES
      (1, 1, 1, 10), (2, 1, 2, 5), (3, 2, 1, 8), (4, 3, 2, 2), (5, 2, 2, 7);

    CREATE TABLE Products (productId INTEGER, productName VARCHAR,
                           category VARCHAR, listPrice INTEGER);
    INSERT INTO Products VALUES
      (1, 'Pen', 'stationery', 2),
      (2, 'Book', 'media', 12),
      (3, 'Lamp', 'home', 30);

    CREATE TABLE Stores (storeId INTEGER, city VARCHAR, sqft INTEGER);
    INSERT INTO Stores VALUES (1, 'Lyon', 900), (2, 'Nice', 400);

    -- Measures at each table's own grain.
    CREATE VIEW FactShipments AS
      SELECT *, SUM(units) AS MEASURE totalUnits,
             COUNT(*) AS MEASURE shipments
      FROM Shipments;
    CREATE VIEW DimStores AS
      SELECT *, SUM(sqft) AS MEASURE totalSqft,
             COUNT(*) AS MEASURE storeCount
      FROM Stores;

    -- The wide table: one flat relation for end users, no joins to write.
    CREATE VIEW WideSales AS
      SELECT f.orderId, f.units, f.totalUnits, f.shipments,
             p.productName, p.category, p.listPrice,
             s.city, s.sqft, s.totalSqft, s.storeCount
      FROM FactShipments AS f
      JOIN Products AS p ON f.productId = p.productId
      JOIN DimStores AS s ON f.storeId = s.storeId;
  )sql");
  if (!st.ok()) {
    std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
    return 1;
  }

  Run(&db, "units by category (fact grain preserved)", R"sql(
    SELECT category, AGGREGATE(totalUnits) AS units,
           AGGREGATE(shipments) AS n
    FROM WideSales GROUP BY category ORDER BY category
  )sql");

  Run(&db,
      "store floor space by city: the naive SUM(sqft) double-counts the "
      "store once per shipment; the measure does not",
      R"sql(
    SELECT city,
           SUM(sqft) AS naive_sqft_sum,
           AGGREGATE(totalSqft) AS true_sqft,
           AGGREGATE(storeCount) AS stores
    FROM WideSales GROUP BY city ORDER BY city
  )sql");

  Run(&db, "share of units per city within each category", R"sql(
    SELECT category, city, AGGREGATE(totalUnits) AS units,
           totalUnits AT (VISIBLE) * 1.0 / totalUnits AT (ALL) AS share_of_all
    FROM WideSales GROUP BY category, city ORDER BY category, city
  )sql");

  Run(&db, "grand total with subtotals over the wide table", R"sql(
    SELECT category, city, AGGREGATE(totalUnits) AS units
    FROM WideSales GROUP BY ROLLUP(category, city)
    ORDER BY category NULLS LAST, city NULLS LAST
  )sql");
  return 0;
}

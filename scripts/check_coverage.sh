#!/usr/bin/env bash
# Line-coverage gate for src/. Builds are expected to be compiled with
# --coverage and to have run the test suite already (so .gcda files exist);
# this script only aggregates and enforces the threshold.
#
# Usage: scripts/check_coverage.sh [build-dir]
#
# Aggregation prefers gcovr, then lcov, then falls back to raw gcov (always
# shipped with the compiler), so the gate runs identically in CI and in a
# bare container. The measured percentage is compared against
# ci/coverage_baseline.txt: the gate fails when coverage drops more than
# the slack below the recorded baseline, and prints a reminder to ratchet
# the baseline when it rises well above it.
set -euo pipefail

BUILD_DIR="${1:-build-cov}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE_FILE="$ROOT/ci/coverage_baseline.txt"
# Allow small drift from refactors before the gate trips.
SLACK_PCT=2

if [ ! -d "$BUILD_DIR" ]; then
  echo "check_coverage: build dir '$BUILD_DIR' not found" >&2
  exit 2
fi
if ! find "$BUILD_DIR" -name '*.gcda' -print -quit | grep -q .; then
  echo "check_coverage: no .gcda files under $BUILD_DIR — run the tests" >&2
  exit 2
fi

percent=""
if command -v gcovr >/dev/null 2>&1; then
  # gcovr prints "lines: NN.N% (covered out of total)".
  percent=$(gcovr -r "$ROOT" --object-directory "$BUILD_DIR" \
      --filter "$ROOT/src/" --print-summary -o /dev/null 2>/dev/null |
    awk '/^lines:/ { sub(/%.*/, "", $2); print $2 }')
elif command -v lcov >/dev/null 2>&1; then
  info=$(mktemp)
  lcov --capture --directory "$BUILD_DIR" --output-file "$info" \
       --quiet >/dev/null 2>&1
  lcov --extract "$info" "$ROOT/src/*" --output-file "$info" \
       --quiet >/dev/null 2>&1
  percent=$(lcov --summary "$info" 2>&1 |
    awk '/lines\.+:/ { sub(/%.*/, "", $2); print $2 }')
  rm -f "$info"
else
  # Raw-gcov fallback: render every .gcda into .gcov text and count
  # executable lines for sources under src/. "#####"/"=====" mark
  # never-executed lines; "-" marks non-executable ones.
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  build_abs=$(cd "$BUILD_DIR" && pwd)
  # gcov writes its .gcov renderings into the CWD.
  ( cd "$tmp" && find "$build_abs" -name '*.gcda' -exec \
      gcov --preserve-paths --object-file {} + >/dev/null 2>&1 ) || true
  percent=$(awk -F: '
    FNR == 1 { keep = 0 }
    /0:Source:/ { keep = ($0 ~ /src\//) }
    keep && $1 ~ /^[ \t]*[0-9]+$/   { covered++; total++ }
    keep && $1 ~ /^[ \t]*(#####|=====)$/ { total++ }
    END { if (total) printf "%.1f", 100 * covered / total }
  ' "$tmp"/*.gcov 2>/dev/null || true)
fi

if [ -z "$percent" ]; then
  echo "check_coverage: could not compute a coverage percentage" >&2
  exit 2
fi

baseline=$(grep -Eo '^[0-9]+(\.[0-9]+)?' "$BASELINE_FILE" | head -1)
echo "line coverage (src/): ${percent}%  baseline: ${baseline}% (slack ${SLACK_PCT}%)"
awk -v p="$percent" -v b="$baseline" -v s="$SLACK_PCT" 'BEGIN {
  if (p + s < b) {
    printf "FAIL: coverage %.1f%% fell more than %.0f%% below the %.1f%% baseline\n", p, s, b
    exit 1
  }
  if (p > b + 2 * s) {
    printf "NOTE: coverage %.1f%% is well above the baseline — ratchet ci/coverage_baseline.txt\n", p
  }
}'

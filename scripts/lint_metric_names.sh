#!/usr/bin/env bash
# Lints every metric name registered against obs::MetricsRegistry
# (GetCounter / GetGauge / GetHistogram call sites in src/, bench/,
# tools/ and examples/) for the naming conventions documented in
# docs/OBSERVABILITY.md:
#
#   - every name matches ^msql_[a-z][a-z0-9_]*$ (prometheus-safe, one
#     namespace prefix, no camelCase)
#   - counters end in _total
#   - histograms end in a unit suffix: _ms, _seconds, _bytes, _rows or
#     _depth
#   - gauges end in _active, _entries, _bytes, _ratio, _pending or _state
#   - every name belongs to a known family prefix (msql_query_,
#     msql_measure_, msql_net_, msql_plan_cache_, ... below) so new
#     subsystems register their namespace here before inventing one
#   - every name is mentioned in docs/OBSERVABILITY.md — the metrics
#     reference must not drift behind the code
#
# Exits non-zero listing every violation. Run from the repository root.
set -u

cd "$(dirname "$0")/.."

fail=0

# Extracts the first string literal of every Get<Kind>( call. Multiline
# call sites put the name on the line after the open paren, so flatten
# each file to one line before matching.
extract() { # $1 = method name
  find src bench tools examples \
      -name '*.cc' -o -name '*.h' -o -name '*.cpp' | while read -r f; do
    tr '\n' ' ' < "$f"
    echo
  done |
    grep -oE "$1\\( *\"[^\"]+\"" |
    sed -E 's/.*"([^"]+)"/\1/' | sort -u
}

check() { # $1 = kind, $2 = suffix regex, $3..$n = names
  local kind="$1" suffix="$2"
  shift 2
  for name in "$@"; do
    if ! [[ "$name" =~ ^msql_[a-z][a-z0-9_]*$ ]]; then
      echo "BAD NAME  ($kind): '$name' does not match ^msql_[a-z][a-z0-9_]*$"
      fail=1
    elif ! [[ "$name" =~ $suffix ]]; then
      echo "BAD SUFFIX ($kind): '$name' must match $suffix"
      fail=1
    fi
  done
}

mapfile -t counters < <(extract GetCounter)
mapfile -t gauges < <(extract GetGauge)
mapfile -t histograms < <(extract GetHistogram)

if [ "${#counters[@]}" -eq 0 ] || [ "${#gauges[@]}" -eq 0 ] ||
   [ "${#histograms[@]}" -eq 0 ]; then
  echo "lint_metric_names: found no registrations — extraction broken?"
  exit 1
fi

check counter '_total$' "${counters[@]}"
check gauge '(_active|_entries|_bytes|_ratio|_pending|_state)$' "${gauges[@]}"
check histogram '(_ms|_seconds|_bytes|_rows|_depth)$' "${histograms[@]}"

# One namespace per subsystem: a metric must extend a registered family.
families='^msql_(queries|query_|measure_|subquery_|shared_cache_|sessions_|scheduler_|admission_|rate_limited|retries_|circuit_|breaker_|slow_queries|obs_|net_|plan_cache_|exec_)'
for name in "${counters[@]}" "${gauges[@]}" "${histograms[@]}"; do
  if ! [[ "$name" =~ $families ]]; then
    echo "BAD FAMILY: '$name' is outside the registered prefixes ($families)"
    fail=1
  fi
done

# Doc drift: every registered metric must appear in the observability
# reference (docs/OBSERVABILITY.md tabulates all families).
for name in "${counters[@]}" "${gauges[@]}" "${histograms[@]}"; do
  if ! grep -q "$name" docs/OBSERVABILITY.md; then
    echo "UNDOCUMENTED: '$name' is not mentioned in docs/OBSERVABILITY.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "lint_metric_names: FAILED"
  exit 1
fi
total=$(( ${#counters[@]} + ${#gauges[@]} + ${#histograms[@]} ))
echo "lint_metric_names: OK ($total metric names checked)"

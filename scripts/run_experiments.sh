#!/usr/bin/env bash
# Regenerates every artifact recorded in EXPERIMENTS.md:
#   - builds the project,
#   - runs the full test suite (paper listings, table 3, properties, ...),
#   - runs every benchmark binary,
# leaving test_output.txt and bench_output.txt in the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "==== $b ====" | tee -a bench_output.txt
    "$b" ${BENCH_ARGS:-} 2>&1 | tee -a bench_output.txt
  fi
done

echo "done: test_output.txt, bench_output.txt"

#include "binder/binder.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/string_util.h"

namespace msql {

namespace {

// Derives a display name for an unaliased select item.
std::string DeriveName(const Expr& e, size_t position) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return e.parts.back();
    case ExprKind::kFuncCall:
      return ToLower(e.func_name);
    case ExprKind::kCurrent:
      return e.current_dim;
    case ExprKind::kAt:
      return DeriveName(*e.left, position);
    default:
      return StrCat("col", position + 1);
  }
}

// Group-key lookup used while remapping correlated subqueries: the printed
// forms of the aggregate's group expressions (over the pre-aggregation
// child scope).
struct AggKeys {
  const std::vector<std::string>* prints;
  const std::vector<DataType>* types;
};

// Remaps correlated references inside a subquery plan when the enclosing
// select becomes an aggregate query: any maximal subexpression whose column
// references all point at the (pre-aggregation) child scope and that equals
// a GROUP BY key is rewritten to that key's slot in the aggregate output.
Status RemapExprIntoAgg(BoundExpr* e, int target_depth, const AggKeys& keys);

// If every column reference in `e` has depth `target_depth` and `e` is a
// pure scalar expression, returns its print with those references lowered
// to depth 0 (the form group keys are printed in); otherwise nullopt.
std::optional<std::string> LoweredOuterPrint(const BoundExpr& e,
                                             int target_depth) {
  bool eligible = true;
  bool any_ref = false;
  VisitNodes(e, [&](const BoundExpr& n) {
    switch (n.kind) {
      case BoundExprKind::kColumnRef:
        any_ref = true;
        if (n.depth != target_depth) eligible = false;
        break;
      case BoundExprKind::kAgg:
      case BoundExprKind::kSubquery:
      case BoundExprKind::kInSubquery:
      case BoundExprKind::kExists:
      case BoundExprKind::kMeasureEval:
      case BoundExprKind::kCurrent:
      case BoundExprKind::kRowIndex:
      case BoundExprKind::kGroupingBit:
        eligible = false;
        break;
      default:
        break;
    }
  });
  if (!eligible || !any_ref) return std::nullopt;
  BoundExprPtr lowered = e.Clone();
  VisitNodes(lowered.get(), [&](BoundExpr* n) {
    if (n->kind == BoundExprKind::kColumnRef) n->depth = 0;
  });
  return lowered->ToString();
}

Status RemapPlanIntoAgg(LogicalPlan* plan, int target_depth,
                        const AggKeys& keys) {
  auto remap = [&](BoundExprPtr& p) -> Status {
    if (p == nullptr) return Status::Ok();
    return RemapExprIntoAgg(p.get(), target_depth, keys);
  };
  for (auto& e : plan->exprs) MSQL_RETURN_IF_ERROR(remap(e));
  MSQL_RETURN_IF_ERROR(remap(plan->predicate));
  MSQL_RETURN_IF_ERROR(remap(plan->join_condition));
  for (auto& g : plan->group_exprs) MSQL_RETURN_IF_ERROR(remap(g));
  for (auto& a : plan->agg_calls) {
    for (auto& arg : a.args) MSQL_RETURN_IF_ERROR(remap(arg));
    MSQL_RETURN_IF_ERROR(remap(a.filter));
  }
  for (auto& me : plan->measure_evals) {
    for (auto& m : me.modifiers) {
      for (auto& d : m.dims) MSQL_RETURN_IF_ERROR(remap(d));
      if (m.set_dim) MSQL_RETURN_IF_ERROR(remap(m.set_dim));
      if (m.set_value) MSQL_RETURN_IF_ERROR(remap(m.set_value));
      if (m.predicate) {
        MSQL_RETURN_IF_ERROR(
            RemapExprIntoAgg(m.predicate.get(), target_depth + 1, keys));
      }
    }
  }
  for (auto& k : plan->sort_keys) MSQL_RETURN_IF_ERROR(remap(k.expr));
  MSQL_RETURN_IF_ERROR(remap(plan->limit_expr));
  MSQL_RETURN_IF_ERROR(remap(plan->offset_expr));
  for (auto& w : plan->windows) {
    for (auto& a : w.args) MSQL_RETURN_IF_ERROR(remap(a));
    for (auto& p : w.partition_by) MSQL_RETURN_IF_ERROR(remap(p));
    for (auto& [o, d] : w.order_by) MSQL_RETURN_IF_ERROR(remap(o));
  }
  for (auto& row : plan->values_rows) {
    for (auto& v : row) MSQL_RETURN_IF_ERROR(remap(v));
  }
  for (auto& pm : plan->measures) {
    if (pm.formula != nullptr) {
      MSQL_RETURN_IF_ERROR(RemapExprIntoAgg(
          const_cast<BoundExpr*>(pm.formula.get()), target_depth, keys));
    }
  }
  for (auto& child : plan->children) {
    MSQL_RETURN_IF_ERROR(RemapPlanIntoAgg(child.get(), target_depth, keys));
  }
  return Status::Ok();
}

Status RemapExprIntoAgg(BoundExpr* e, int target_depth, const AggKeys& keys) {
  // Whole-subtree group-key match (covers plain columns as well as
  // expressions like YEAR(o.orderDate) when grouping by YEAR(orderDate)).
  if (auto lowered = LoweredOuterPrint(*e, target_depth)) {
    for (size_t i = 0; i < keys.prints->size(); ++i) {
      if ((*keys.prints)[i] == *lowered) {
        BoundExpr replacement;
        replacement.kind = BoundExprKind::kColumnRef;
        replacement.depth = target_depth;
        replacement.column = static_cast<int>(i);
        replacement.name = *lowered;
        replacement.type = (*keys.types)[i];
        *e = std::move(replacement);
        return Status::Ok();
      }
    }
    if (e->kind == BoundExprKind::kColumnRef) {
      return Status(
          ErrorCode::kBind,
          StrCat("correlated reference to '", e->name,
                 "' must be a GROUP BY key of the enclosing query"));
    }
    // Fall through: inner pieces may still match.
  }
  if ((e->kind == BoundExprKind::kSubquery ||
       e->kind == BoundExprKind::kInSubquery ||
       e->kind == BoundExprKind::kExists) &&
      e->subplan != nullptr) {
    MSQL_RETURN_IF_ERROR(
        RemapPlanIntoAgg(e->subplan.get(), target_depth + 1, keys));
  }
  for (auto& a : e->args) {
    MSQL_RETURN_IF_ERROR(RemapExprIntoAgg(a.get(), target_depth, keys));
  }
  if (e->filter) {
    MSQL_RETURN_IF_ERROR(
        RemapExprIntoAgg(e->filter.get(), target_depth, keys));
  }
  for (auto& [w, t] : e->when_clauses) {
    MSQL_RETURN_IF_ERROR(RemapExprIntoAgg(w.get(), target_depth, keys));
    MSQL_RETURN_IF_ERROR(RemapExprIntoAgg(t.get(), target_depth, keys));
  }
  if (e->else_expr) {
    MSQL_RETURN_IF_ERROR(
        RemapExprIntoAgg(e->else_expr.get(), target_depth, keys));
  }
  if (e->operand) {
    MSQL_RETURN_IF_ERROR(
        RemapExprIntoAgg(e->operand.get(), target_depth, keys));
  }
  for (auto& f : e->free_vars) {
    MSQL_RETURN_IF_ERROR(RemapExprIntoAgg(f.get(), target_depth, keys));
  }
  for (auto& m : e->modifiers) {
    for (auto& d : m.dims) {
      MSQL_RETURN_IF_ERROR(RemapExprIntoAgg(d.get(), target_depth, keys));
    }
    if (m.set_dim) {
      MSQL_RETURN_IF_ERROR(
          RemapExprIntoAgg(m.set_dim.get(), target_depth, keys));
    }
    if (m.set_value) {
      MSQL_RETURN_IF_ERROR(
          RemapExprIntoAgg(m.set_value.get(), target_depth, keys));
    }
    if (m.predicate) {
      MSQL_RETURN_IF_ERROR(
          RemapExprIntoAgg(m.predicate.get(), target_depth + 1, keys));
    }
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Relations
// ---------------------------------------------------------------------------

std::vector<PlanMeasure> Binder::PropagateSameSchema(const LogicalPlan& child) {
  std::vector<PlanMeasure> out;
  for (size_t i = 0; i < child.measures.size(); ++i) {
    const PlanMeasure& cm = child.measures[i];
    PlanMeasure pm;
    pm.define = false;
    pm.child_index = 0;
    pm.child_slot = static_cast<int>(i);
    pm.name = cm.name;
    pm.value_type = cm.value_type;
    pm.column = cm.column;
    pm.rowid_col = cm.rowid_col;
    pm.provenance = cm.provenance;
    out.push_back(std::move(pm));
  }
  return out;
}

Status Binder::CheckAccessAndGet(const std::string& name,
                                 const CatalogEntry** out) {
  Catalog::EntryPtr entry = catalog_->Find(name);
  if (entry == nullptr) {
    return Status(ErrorCode::kCatalog, "table or view '" + name +
                                           "' does not exist");
  }
  MSQL_RETURN_IF_ERROR(catalog_->CheckAccess(*entry, user_));
  // Pin the snapshot for the binder's lifetime so the raw pointer survives
  // a concurrent DROP / CREATE OR REPLACE.
  pinned_entries_.push_back(entry);
  *out = entry.get();
  return Status::Ok();
}

Result<PlanPtr> Binder::BindBaseTable(const std::string& name,
                                      const std::string& alias, Scope* outer) {
  // CTEs shadow catalog objects; innermost frame wins.
  for (auto it = cte_stack_.rbegin(); it != cte_stack_.rend(); ++it) {
    auto cte = it->find(ToLower(name));
    if (cte != it->end()) {
      // CTEs are not correlated with the enclosing query.
      MSQL_ASSIGN_OR_RETURN(PlanPtr plan,
                            BindSelectStmt(*cte->second, nullptr));
      plan->schema.SetAlias(alias.empty() ? name : alias);
      (void)outer;
      return plan;
    }
  }

  // Reserved introspection namespace: resolved through the system-table
  // registry (when the engine enabled it), never the user catalog. The
  // provider builds a fresh snapshot table that the plan owns; see
  // catalog/system_tables.h for the cache-safety contract.
  if (SystemTableRegistry::IsSystemName(name)) {
    if (system_tables_ == nullptr) {
      return Status(ErrorCode::kCatalog,
                    "system tables are disabled "
                    "(EngineOptions::enable_system_tables)");
    }
    std::shared_ptr<Table> table = system_tables_->Build(name);
    if (table == nullptr) {
      return Status(ErrorCode::kCatalog,
                    "system table '" + name + "' does not exist");
    }
    used_system_tables_ = true;
    auto plan = std::make_shared<LogicalPlan>();
    plan->kind = PlanKind::kScanTable;
    plan->table = table;
    plan->schema = table->schema();
    // Default alias: the unqualified part, so `connections.user` resolves.
    plan->schema.SetAlias(alias.empty() ? name.substr(name.rfind('.') + 1)
                                        : alias);
    return plan;
  }

  const CatalogEntry* entry = nullptr;
  MSQL_RETURN_IF_ERROR(CheckAccessAndGet(name, &entry));

  if (entry->kind == CatalogEntry::Kind::kTable) {
    auto plan = std::make_shared<LogicalPlan>();
    plan->kind = PlanKind::kScanTable;
    plan->table = entry->table;
    plan->schema = entry->table->schema();
    plan->schema.SetAlias(alias.empty() ? name : alias);
    return plan;
  }

  // View: expand with definer's rights (paper section 5.5 — users granted
  // the view need no access to the underlying tables).
  if (++view_depth_ > max_recursion_depth_) {
    --view_depth_;
    return RecursionLimitExceeded("view expansion", max_recursion_depth_);
  }
  Binder view_binder(catalog_, entry->owner, max_recursion_depth_,
                     system_tables_);
  view_binder.view_depth_ = view_depth_;
  // Measure expansion inside the view counts toward the outer query's
  // measure-expand trace span.
  view_binder.measure_expand_us_ = measure_expand_us_;
  auto result = view_binder.BindSelectStmt(*entry->view_ast, nullptr);
  --view_depth_;
  // A view over a system table makes the whole statement cache-unsafe.
  used_system_tables_ |= view_binder.used_system_tables_;
  if (!result.ok()) return result.status();
  PlanPtr plan = result.take();
  plan->schema.SetAlias(alias.empty() ? name : alias);
  return plan;
}

Result<PlanPtr> Binder::BindTableRef(const TableRef& ref, Scope* outer) {
  switch (ref.kind) {
    case TableRefKind::kBaseTable:
      return BindBaseTable(ref.table_name, ref.alias, outer);
    case TableRefKind::kSubquery: {
      MSQL_ASSIGN_OR_RETURN(PlanPtr plan, BindSelectStmt(*ref.subquery, outer));
      if (!ref.alias.empty()) plan->schema.SetAlias(ref.alias);
      return plan;
    }
    case TableRefKind::kJoin: {
      MSQL_ASSIGN_OR_RETURN(PlanPtr left, BindTableRef(*ref.left, outer));
      MSQL_ASSIGN_OR_RETURN(PlanPtr right, BindTableRef(*ref.right, outer));

      auto plan = std::make_shared<LogicalPlan>();
      plan->kind = PlanKind::kJoin;
      plan->join_type = ref.join_type;
      plan->children = {left, right};

      const size_t lv = left->schema.num_visible();
      const size_t rv = right->schema.num_visible();
      // Combined layout: left visible, right visible, left hidden, right
      // hidden.
      for (size_t i = 0; i < lv; ++i) {
        plan->schema.AddColumn(left->schema.column(i));
      }
      for (size_t i = 0; i < rv; ++i) {
        plan->schema.AddColumn(right->schema.column(i));
      }
      for (size_t i = lv; i < left->schema.size(); ++i) {
        plan->schema.AddColumn(left->schema.column(i));
      }
      for (size_t i = rv; i < right->schema.size(); ++i) {
        plan->schema.AddColumn(right->schema.column(i));
      }

      // Measures from both sides, re-indexed into the combined layout.
      const size_t lh = left->schema.size() - lv;
      for (size_t i = 0; i < left->measures.size(); ++i) {
        const PlanMeasure& cm = left->measures[i];
        PlanMeasure pm;
        pm.define = false;
        pm.child_index = 0;
        pm.child_slot = static_cast<int>(i);
        pm.name = cm.name;
        pm.value_type = cm.value_type;
        pm.column = cm.column;  // left visible: unchanged
        pm.rowid_col = cm.rowid_col + static_cast<int>(rv);
        pm.provenance = cm.provenance;
        plan->measures.push_back(std::move(pm));
      }
      for (size_t i = 0; i < right->measures.size(); ++i) {
        const PlanMeasure& cm = right->measures[i];
        PlanMeasure pm;
        pm.define = false;
        pm.child_index = 1;
        pm.child_slot = static_cast<int>(i);
        pm.name = cm.name;
        pm.value_type = cm.value_type;
        pm.column = cm.column + static_cast<int>(lv);
        pm.rowid_col = cm.rowid_col + static_cast<int>(lv + lh);
        for (const auto& [col, expr] : cm.provenance) {
          pm.provenance[col + static_cast<int>(lv)] = expr;
        }
        plan->measures.push_back(std::move(pm));
      }

      // Join condition.
      Scope join_scope;
      join_scope.parent = outer;
      join_scope.schema = &plan->schema;
      join_scope.measures = &plan->measures;
      if (ref.on_condition != nullptr) {
        MSQL_ASSIGN_OR_RETURN(plan->join_condition,
                              BindExpr(*ref.on_condition, &join_scope));
      } else if (!ref.using_cols.empty()) {
        BoundExprPtr cond;
        for (const std::string& col : ref.using_cols) {
          auto lmatches = left->schema.Find("", col);
          auto rmatches = right->schema.Find("", col);
          if (lmatches.size() != 1 || rmatches.size() != 1) {
            return Status(ErrorCode::kBind,
                          "USING column '" + col +
                              "' must appear exactly once on each side");
          }
          auto lref = BColumnRef(0, static_cast<int>(lmatches[0]), col,
                                 left->schema.column(lmatches[0]).type);
          auto rref =
              BColumnRef(0, static_cast<int>(lv + rmatches[0]), col,
                         right->schema.column(rmatches[0]).type);
          std::vector<BoundExprPtr> eq_args;
          eq_args.push_back(std::move(lref));
          eq_args.push_back(std::move(rref));
          auto eq = BFunc(FunctionId::kOpEq, "=", DataType::Bool(),
                          std::move(eq_args));
          if (cond == nullptr) {
            cond = std::move(eq);
          } else {
            std::vector<BoundExprPtr> and_args;
            and_args.push_back(std::move(cond));
            and_args.push_back(std::move(eq));
            cond = BFunc(FunctionId::kOpAnd, "AND", DataType::Bool(),
                         std::move(and_args));
          }
          pending_using_.push_back(col);
        }
        plan->join_condition = std::move(cond);
      } else if (ref.join_type != JoinType::kCross) {
        return Status(ErrorCode::kBind, "JOIN requires ON or USING");
      }
      return plan;
    }
  }
  return Status(ErrorCode::kBind, "unsupported table reference");
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Result<PlanPtr> Binder::Bind(const SelectStmt& stmt) {
  return BindSelectStmt(stmt, nullptr);
}

Result<PlanPtr> Binder::BindSelectStmt(const SelectStmt& stmt, Scope* outer) {
  // Register CTEs.
  cte_stack_.emplace_back();
  for (const CteDef& cte : stmt.ctes) {
    cte_stack_.back()[ToLower(cte.name)] = cte.select.get();
  }
  struct CtePop {
    Binder* b;
    ~CtePop() { b->cte_stack_.pop_back(); }
  } pop{this};

  MSQL_ASSIGN_OR_RETURN(PlanPtr plan, BindSelectCore(stmt, outer));

  // Set operations.
  if (stmt.set_op != SetOpKind::kNone) {
    MSQL_ASSIGN_OR_RETURN(PlanPtr rhs, BindSelectStmt(*stmt.set_rhs, outer));
    if (rhs->schema.num_visible() != plan->schema.num_visible()) {
      return Status(ErrorCode::kBind,
                    "set operation inputs have different column counts");
    }
    auto setop = std::make_shared<LogicalPlan>();
    setop->kind = PlanKind::kSetOp;
    setop->set_op = stmt.set_op;
    setop->children = {plan, rhs};
    for (size_t i = 0; i < plan->schema.num_visible(); ++i) {
      Column c = plan->schema.column(i);
      c.type = CommonType(c.type, rhs->schema.column(i).type);
      setop->schema.AddColumn(std::move(c));
    }
    plan = setop;

    // ORDER BY over the set result: ordinals and output names only.
    if (!stmt.order_by.empty()) {
      auto sort = std::make_shared<LogicalPlan>();
      sort->kind = PlanKind::kSort;
      sort->children = {plan};
      sort->schema = plan->schema;
      for (const OrderItem& item : stmt.order_by) {
        SortKeyDef key;
        if (item.expr->kind == ExprKind::kLiteral &&
            item.expr->literal.kind() == TypeKind::kInt64) {
          int64_t pos = item.expr->literal.int_val();
          if (pos < 1 ||
              pos > static_cast<int64_t>(plan->schema.num_visible())) {
            return Status(ErrorCode::kBind, "ORDER BY position out of range");
          }
          key.expr = BColumnRef(0, static_cast<int>(pos - 1),
                                plan->schema.column(pos - 1).name,
                                plan->schema.column(pos - 1).type);
        } else if (item.expr->kind == ExprKind::kColumnRef) {
          auto matches =
              plan->schema.Find("", item.expr->parts.back());
          if (matches.size() != 1) {
            return Status(ErrorCode::kBind,
                          "cannot resolve ORDER BY column over set operation");
          }
          key.expr = BColumnRef(0, static_cast<int>(matches[0]),
                                plan->schema.column(matches[0]).name,
                                plan->schema.column(matches[0]).type);
        } else {
          return Status(ErrorCode::kBind,
                        "ORDER BY over set operations supports only column "
                        "names and ordinals");
        }
        key.desc = item.desc;
        key.nulls_first = item.nulls_first.value_or(!item.desc);
        sort->sort_keys.push_back(std::move(key));
      }
      plan = sort;
    }
  }

  // LIMIT / OFFSET.
  if (stmt.limit != nullptr || stmt.offset != nullptr) {
    auto limit = std::make_shared<LogicalPlan>();
    limit->kind = PlanKind::kLimit;
    limit->children = {plan};
    limit->schema = plan->schema;
    Scope dummy;  // LIMIT expressions must be constant
    if (stmt.limit) {
      MSQL_ASSIGN_OR_RETURN(limit->limit_expr, BindExpr(*stmt.limit, &dummy));
    }
    if (stmt.offset) {
      MSQL_ASSIGN_OR_RETURN(limit->offset_expr,
                            BindExpr(*stmt.offset, &dummy));
    }
    limit->measures = PropagateSameSchema(*plan);
    plan = limit;
  }
  return plan;
}

Result<PlanPtr> Binder::BindSelectCore(const SelectStmt& stmt, Scope* outer) {
  // ---- FROM ----
  PlanPtr plan;
  pending_using_.clear();
  if (stmt.from != nullptr) {
    MSQL_ASSIGN_OR_RETURN(plan, BindTableRef(*stmt.from, outer));
  } else {
    plan = std::make_shared<LogicalPlan>();
    plan->kind = PlanKind::kValues;
    plan->values_rows.emplace_back();  // a single empty row
  }

  Scope scope;
  scope.parent = outer;
  scope.schema = &plan->schema;
  scope.measures = &plan->measures;
  scope.using_cols = pending_using_;
  pending_using_.clear();

  // Select aliases, available to AT modifiers as ad-hoc dimensions.
  {
    std::map<std::string, const Expr*> aliases;
    for (const SelectItem& sel : stmt.select_list) {
      if (!sel.is_star && !sel.alias.empty() && !sel.is_measure) {
        aliases[ToLower(sel.alias)] = sel.expr.get();
      }
    }
    select_alias_stack_.push_back(std::move(aliases));
  }
  struct AliasPop {
    Binder* b;
    ~AliasPop() { b->select_alias_stack_.pop_back(); }
  } alias_pop{this};

  // ---- WHERE ----
  if (stmt.where != nullptr) {
    MSQL_ASSIGN_OR_RETURN(BoundExprPtr pred, BindExpr(*stmt.where, &scope));
    bool has_agg = ContainsNode(
        *pred, [](const BoundExpr& n) { return n.kind == BoundExprKind::kAgg; });
    if (has_agg) {
      return Status(ErrorCode::kBind,
                    "aggregate functions are not allowed in WHERE");
    }
    auto filter = std::make_shared<LogicalPlan>();
    filter->kind = PlanKind::kFilter;
    filter->children = {plan};
    filter->schema = plan->schema;
    filter->predicate = std::move(pred);
    filter->measures = PropagateSameSchema(*plan);
    plan = filter;
    scope.schema = &plan->schema;
    scope.measures = &plan->measures;
  }

  // ---- bind select list ----
  const bool saved_saw_agg = saw_agg_;
  saw_agg_ = false;
  std::vector<WindowDef> saved_windows = std::move(pending_windows_);
  std::vector<std::string> saved_window_prints = std::move(window_prints_);
  pending_windows_.clear();
  window_prints_.clear();
  window_base_visible_ = static_cast<int>(plan->schema.num_visible());
  peer_measures_.clear();

  struct Item {
    std::string name;
    BoundExprPtr bound;
    bool is_measure_def = false;
  };
  std::vector<Item> items;

  for (size_t idx = 0; idx < stmt.select_list.size(); ++idx) {
    const SelectItem& sel = stmt.select_list[idx];
    if (sel.is_star) {
      bool any = false;
      for (size_t c = 0; c < scope.schema->num_visible(); ++c) {
        const Column& col = scope.schema->column(c);
        if (!sel.star_table.empty() &&
            !EqualsIgnoreCase(sel.star_table, col.table_alias)) {
          continue;
        }
        any = true;
        Item item;
        item.name = col.name;
        if (col.type.is_measure) {
          auto me = std::make_unique<BoundExpr>();
          me->kind = BoundExprKind::kMeasureEval;
          me->type = col.type;
          me->name = col.name;
          me->depth = 0;
          for (size_t s = 0; s < scope.measures->size(); ++s) {
            if ((*scope.measures)[s].column == static_cast<int>(c)) {
              me->measure_slot = static_cast<int>(s);
            }
          }
          item.bound = std::move(me);
        } else {
          item.bound =
              BColumnRef(0, static_cast<int>(c), col.name, col.type);
        }
        items.push_back(std::move(item));
      }
      if (!any) {
        return Status(ErrorCode::kBind,
                      "'" + sel.star_table + ".*' matches no columns");
      }
      continue;
    }
    Item item;
    item.name = sel.alias.empty() ? DeriveName(*sel.expr, idx) : sel.alias;
    item.is_measure_def = sel.is_measure;
    if (sel.is_measure) {
      // Aggregates inside a measure formula do not make the defining query
      // an aggregate query (paper section 3.2: the defining view has no
      // GROUP BY and keeps the source's rows).
      const bool formula_saved_saw_agg = saw_agg_;
      in_measure_formula_ = true;
      auto bound = BindExpr(*sel.expr, &scope);
      in_measure_formula_ = false;
      saw_agg_ = formula_saved_saw_agg;
      if (!bound.ok()) return bound.status();
      item.bound = bound.take();
      MSQL_RETURN_IF_ERROR(ValidateMeasureFormula(*item.bound, item.name));
    } else {
      MSQL_ASSIGN_OR_RETURN(item.bound, BindExpr(*sel.expr, &scope));
    }
    if (item.is_measure_def) {
      peer_measures_[ToLower(item.name)] = item.bound.get();
    }
    items.push_back(std::move(item));
  }

  // ---- HAVING ----
  BoundExprPtr having;
  if (stmt.having != nullptr) {
    MSQL_ASSIGN_OR_RETURN(having, BindExpr(*stmt.having, &scope));
  }

  // ---- ORDER BY (alias / ordinal substitution, bound over the scope) ----
  struct OrderBound {
    BoundExprPtr expr;
    bool desc = false;
    bool nulls_first = true;
  };
  std::vector<OrderBound> order_bound;
  for (const OrderItem& o : stmt.order_by) {
    const Expr* ast = o.expr.get();
    if (ast->kind == ExprKind::kLiteral &&
        ast->literal.kind() == TypeKind::kInt64) {
      int64_t pos = ast->literal.int_val();
      if (pos < 1 || pos > static_cast<int64_t>(stmt.select_list.size()) ||
          stmt.select_list[pos - 1].is_star) {
        return Status(ErrorCode::kBind, "ORDER BY position out of range");
      }
      ast = stmt.select_list[pos - 1].expr.get();
    } else if (ast->kind == ExprKind::kColumnRef && ast->parts.size() == 1) {
      // SQL resolves ORDER BY names against the output columns first
      // (select aliases and derived names), then the FROM scope.
      const Expr* output_match = nullptr;
      int matches = 0;
      for (size_t si = 0; si < stmt.select_list.size(); ++si) {
        const SelectItem& sel = stmt.select_list[si];
        if (sel.is_star) continue;
        std::string out_name =
            sel.alias.empty() ? DeriveName(*sel.expr, si) : sel.alias;
        if (EqualsIgnoreCase(out_name, ast->parts[0])) {
          output_match = sel.expr.get();
          ++matches;
        }
      }
      if (matches == 1) ast = output_match;
    }
    OrderBound ob;
    MSQL_ASSIGN_OR_RETURN(ob.expr, BindExpr(*ast, &scope));
    ob.desc = o.desc;
    ob.nulls_first = o.nulls_first.value_or(!o.desc);
    order_bound.push_back(std::move(ob));
  }

  const bool grouped = !stmt.group_by.empty() || saw_agg_;
  saw_agg_ = saved_saw_agg;
  peer_measures_.clear();

  // ---- window functions ----
  if (!pending_windows_.empty()) {
    if (grouped) {
      return Status(ErrorCode::kBind,
                    "window functions cannot be combined with GROUP BY in the "
                    "same query block");
    }
    auto window = std::make_shared<LogicalPlan>();
    window->kind = PlanKind::kWindow;
    window->children = {plan};
    const size_t cv = plan->schema.num_visible();
    const size_t w_count = pending_windows_.size();
    for (size_t i = 0; i < cv; ++i) {
      window->schema.AddColumn(plan->schema.column(i));
    }
    for (size_t w = 0; w < w_count; ++w) {
      window->schema.AddColumn(Column(StrCat("__win", w),
                                      pending_windows_[w].type));
    }
    for (size_t i = cv; i < plan->schema.size(); ++i) {
      window->schema.AddColumn(plan->schema.column(i));
    }
    window->windows = std::move(pending_windows_);
    // Measures survive; hidden columns shift by the window column count.
    for (size_t i = 0; i < plan->measures.size(); ++i) {
      const PlanMeasure& cm = plan->measures[i];
      PlanMeasure pm;
      pm.define = false;
      pm.child_index = 0;
      pm.child_slot = static_cast<int>(i);
      pm.name = cm.name;
      pm.value_type = cm.value_type;
      pm.column = cm.column;
      pm.rowid_col = cm.rowid_col + static_cast<int>(w_count);
      pm.provenance = cm.provenance;
      window->measures.push_back(std::move(pm));
    }
    plan = window;
    scope.schema = &plan->schema;
    scope.measures = &plan->measures;
  }
  pending_windows_ = std::move(saved_windows);
  window_prints_ = std::move(saved_window_prints);

  if (grouped) {
    for (const Item& item : items) {
      if (item.is_measure_def) {
        return Status(ErrorCode::kBind,
                      "AS MEASURE is not allowed in an aggregate query; "
                      "define measures in a non-aggregating SELECT");
      }
    }

    AggState st;
    MSQL_RETURN_IF_ERROR(BindGroupBy(stmt, &scope, &st));
    for (const Item& item : items) {
      MSQL_RETURN_IF_ERROR(CollectAggregates(*item.bound, &st));
    }
    if (having != nullptr) {
      MSQL_RETURN_IF_ERROR(CollectAggregates(*having, &st));
    }
    for (const OrderBound& ob : order_bound) {
      MSQL_RETURN_IF_ERROR(CollectAggregates(*ob.expr, &st));
    }

    auto agg = std::make_shared<LogicalPlan>();
    agg->kind = PlanKind::kAggregate;
    agg->children = {plan};
    for (size_t i = 0; i < st.group_exprs.size(); ++i) {
      agg->schema.AddColumn(Column(st.group_names[i], st.group_types[i]));
    }
    for (size_t i = 0; i < st.agg_calls.size(); ++i) {
      agg->schema.AddColumn(Column(st.agg_prints[i], st.agg_calls[i].type));
    }
    for (size_t i = 0; i < st.measure_evals.size(); ++i) {
      agg->schema.AddColumn(Column(st.measure_evals[i].display,
                                   st.measure_evals[i].type.ValueType()));
    }
    agg->schema.AddColumn(
        Column("__grouping_id", DataType::Int64(), "", /*hidden=*/true));

    // Correlated subqueries bound against the pre-aggregation scope must be
    // re-pointed at the aggregate output's group key slots.
    AggKeys agg_keys{&st.group_prints, &st.group_types};
    auto remap_subqueries = [&](BoundExpr* e) -> Status {
      Status status = Status::Ok();
      VisitNodes(e, [&](BoundExpr* n) {
        if (!status.ok()) return;
        if ((n->kind == BoundExprKind::kSubquery ||
             n->kind == BoundExprKind::kInSubquery ||
             n->kind == BoundExprKind::kExists) &&
            n->subplan != nullptr) {
          Status s = RemapPlanIntoAgg(n->subplan.get(), 1, agg_keys);
          if (!s.ok()) status = s;
        }
      });
      return status;
    };

    plan = agg;

    // HAVING above the aggregate.
    if (having != nullptr) {
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr transformed,
                            TransformForAggregate(*having, st));
      MSQL_RETURN_IF_ERROR(remap_subqueries(transformed.get()));
      auto filter = std::make_shared<LogicalPlan>();
      filter->kind = PlanKind::kFilter;
      filter->children = {plan};
      filter->schema = plan->schema;
      filter->predicate = std::move(transformed);
      plan = filter;
    }

    // ORDER BY between aggregation and projection.
    if (!order_bound.empty()) {
      auto sort = std::make_shared<LogicalPlan>();
      sort->kind = PlanKind::kSort;
      sort->children = {plan};
      sort->schema = plan->schema;
      for (OrderBound& ob : order_bound) {
        SortKeyDef key;
        MSQL_ASSIGN_OR_RETURN(key.expr, TransformForAggregate(*ob.expr, st));
        MSQL_RETURN_IF_ERROR(remap_subqueries(key.expr.get()));
        key.desc = ob.desc;
        key.nulls_first = ob.nulls_first;
        sort->sort_keys.push_back(std::move(key));
      }
      plan = sort;
    }

    // Final projection.
    auto project = std::make_shared<LogicalPlan>();
    project->kind = PlanKind::kProject;
    project->children = {plan};
    for (Item& item : items) {
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr transformed,
                            TransformForAggregate(*item.bound, st));
      MSQL_RETURN_IF_ERROR(remap_subqueries(transformed.get()));
      project->schema.AddColumn(
          Column(item.name, transformed->type.ValueType()));
      project->exprs.push_back(std::move(transformed));
    }
    // The transforms above only read the AggState; now hand its pieces to
    // the Aggregate node.
    agg->group_exprs = std::move(st.group_exprs);
    agg->grouping_sets = std::move(st.grouping_sets);
    agg->agg_calls = std::move(st.agg_calls);
    agg->measure_evals = std::move(st.measure_evals);
    plan = project;
  } else {
    // ---- non-aggregate SELECT ----
    if (!order_bound.empty()) {
      auto sort = std::make_shared<LogicalPlan>();
      sort->kind = PlanKind::kSort;
      sort->children = {plan};
      sort->schema = plan->schema;
      for (OrderBound& ob : order_bound) {
        SortKeyDef key;
        key.expr = std::move(ob.expr);
        key.desc = ob.desc;
        key.nulls_first = ob.nulls_first;
        sort->sort_keys.push_back(std::move(key));
      }
      sort->measures = PropagateSameSchema(*plan);
      plan = sort;
      scope.schema = &plan->schema;
      scope.measures = &plan->measures;
    }

    auto project = std::make_shared<LogicalPlan>();
    project->kind = PlanKind::kProject;
    project->children = {plan};

    const size_t n_items = items.size();
    bool any_measure_def = false;
    for (const Item& item : items) {
      if (item.is_measure_def) any_measure_def = true;
    }

    // Visible columns.
    struct MeasureOut {
      bool define = false;
      int child_slot = -1;          // propagate
      const BoundExpr* formula = nullptr;  // define (owned by items)
      int column = -1;
      DataType value_type;
      std::string name;
    };
    std::vector<MeasureOut> measure_outs;

    for (size_t i = 0; i < n_items; ++i) {
      Item& item = items[i];
      if (item.is_measure_def) {
        MeasureOut mo;
        mo.define = true;
        mo.formula = item.bound.get();
        mo.column = static_cast<int>(i);
        mo.value_type = item.bound->type.ValueType();
        mo.name = item.name;
        measure_outs.push_back(mo);
        project->schema.AddColumn(
            Column(item.name, mo.value_type.AsMeasure()));
        // Measure cells hold NULL placeholders.
        auto null_lit = BLiteral(Value::Null());
        null_lit->type = mo.value_type.AsMeasure();
        project->exprs.push_back(std::move(null_lit));
      } else if (item.bound->kind == BoundExprKind::kMeasureEval &&
                 item.bound->depth == 0 && item.bound->modifiers.empty()) {
        // Bare reference to an input measure: the measure passes through
        // (closure property, paper section 5.4).
        MeasureOut mo;
        mo.define = false;
        mo.child_slot = item.bound->measure_slot;
        mo.column = static_cast<int>(i);
        mo.value_type = item.bound->type.ValueType();
        mo.name = item.name;
        measure_outs.push_back(mo);
        project->schema.AddColumn(
            Column(item.name, mo.value_type.AsMeasure()));
        const PlanMeasure& cm = (*scope.measures)[mo.child_slot];
        project->exprs.push_back(BColumnRef(0, cm.column, item.name,
                                            mo.value_type.AsMeasure()));
      } else {
        project->schema.AddColumn(
            Column(item.name, item.bound->type.ValueType()));
        project->exprs.push_back(std::move(item.bound));
      }
    }

    // Hidden passthrough of the child's hidden columns.
    const size_t cv = scope.schema->num_visible();
    std::unordered_map<int, int> hidden_map;  // child hidden idx -> out idx
    for (size_t h = cv; h < scope.schema->size(); ++h) {
      hidden_map[static_cast<int>(h)] =
          static_cast<int>(project->schema.size());
      project->schema.AddColumn(Column(scope.schema->column(h).name,
                                       scope.schema->column(h).type, "",
                                       /*hidden=*/true));
      project->exprs.push_back(BColumnRef(0, static_cast<int>(h),
                                          scope.schema->column(h).name,
                                          scope.schema->column(h).type));
    }
    // New row-id column for measures defined here.
    int new_rowid_col = -1;
    if (any_measure_def) {
      new_rowid_col = static_cast<int>(project->schema.size());
      project->schema.AddColumn(Column(StrCat("__rowid", new_rowid_col),
                                       DataType::Int64(), "",
                                       /*hidden=*/true));
      project->exprs.push_back(BRowIndex());
    }

    // Measure descriptors. Timed into the measure-expand trace span when
    // the engine is tracing this bind (and only if measures are involved).
    ExpandTimer expand_timer(measure_outs.empty() ? nullptr
                                                  : measure_expand_us_);
    for (const MeasureOut& mo : measure_outs) {
      PlanMeasure pm;
      pm.name = mo.name;
      pm.value_type = mo.value_type;
      pm.column = mo.column;
      if (mo.define) {
        pm.define = true;
        pm.formula = std::shared_ptr<BoundExpr>(mo.formula->Clone().release());
        pm.rowid_col = new_rowid_col;
        // Provenance: pure scalar projections over the source (the child).
        for (size_t j = 0; j < n_items; ++j) {
          const BoundExpr& pe = *project->exprs[j];
          if (IsPureScalar(pe)) {
            pm.provenance[static_cast<int>(j)] =
                std::shared_ptr<BoundExpr>(pe.Clone().release());
          }
        }
      } else {
        const PlanMeasure& cm = (*scope.measures)[mo.child_slot];
        pm.define = false;
        pm.child_index = 0;
        pm.child_slot = mo.child_slot;
        auto it = hidden_map.find(cm.rowid_col);
        if (it == hidden_map.end()) {
          return Status(ErrorCode::kBind,
                        "internal: measure row-id column lost in projection");
        }
        pm.rowid_col = it->second;
        // Compose provenance: output col j = expr over child; child col ->
        // source expr via the child's provenance.
        for (size_t j = 0; j < n_items; ++j) {
          const BoundExpr& pe = *project->exprs[j];
          auto translated = RewriteThroughProvenance(pe, cm.provenance);
          if (translated.ok()) {
            pm.provenance[static_cast<int>(j)] = std::shared_ptr<BoundExpr>(
                translated.value().release());
          }
        }
      }
      project->measures.push_back(std::move(pm));
    }
    plan = project;
  }

  // ---- DISTINCT ----
  if (stmt.distinct) {
    auto distinct = std::make_shared<LogicalPlan>();
    distinct->kind = PlanKind::kDistinct;
    distinct->children = {plan};
    for (size_t i = 0; i < plan->schema.num_visible(); ++i) {
      const Column& c = plan->schema.column(i);
      if (c.type.is_measure) {
        return Status(ErrorCode::kBind,
                      "SELECT DISTINCT cannot project measure columns");
      }
      distinct->schema.AddColumn(c);
    }
    plan = distinct;
  }
  return plan;
}

// ---------------------------------------------------------------------------
// GROUP BY
// ---------------------------------------------------------------------------

Status Binder::BindGroupBy(const SelectStmt& stmt, Scope* scope,
                           AggState* st) {
  // Registers a group expression (dedicated by print); returns its index.
  auto register_expr = [&](BoundExprPtr e,
                           const std::string& name) -> Result<int> {
    std::string print = e->ToString();
    for (size_t i = 0; i < st->group_prints.size(); ++i) {
      if (st->group_prints[i] == print) return static_cast<int>(i);
    }
    st->group_prints.push_back(print);
    st->group_names.push_back(name.empty() ? print : name);
    st->group_types.push_back(e->type.ValueType());
    st->group_exprs.push_back(std::move(e));
    return static_cast<int>(st->group_exprs.size() - 1);
  };

  // Resolves a GROUP BY item AST: ordinals and select aliases.
  auto resolve_ast = [&](const Expr& e) -> const Expr* {
    if (e.kind == ExprKind::kLiteral &&
        e.literal.kind() == TypeKind::kInt64) {
      int64_t pos = e.literal.int_val();
      if (pos >= 1 && pos <= static_cast<int64_t>(stmt.select_list.size()) &&
          !stmt.select_list[pos - 1].is_star) {
        return stmt.select_list[pos - 1].expr.get();
      }
    }
    if (e.kind == ExprKind::kColumnRef && e.parts.size() == 1) {
      if (scope->schema->Find("", e.parts[0]).empty()) {
        for (const SelectItem& sel : stmt.select_list) {
          if (!sel.is_star && EqualsIgnoreCase(sel.alias, e.parts[0])) {
            return sel.expr.get();
          }
        }
      }
    }
    return &e;
  };

  auto bind_group_expr = [&](const Expr& raw) -> Result<int> {
    const Expr* ast = resolve_ast(raw);
    MSQL_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*ast, scope));
    if (bound->type.is_measure) {
      return Status(ErrorCode::kBind, "cannot GROUP BY a measure");
    }
    std::string name =
        ast->kind == ExprKind::kColumnRef ? ast->parts.back() : "";
    if (name.empty() && raw.kind == ExprKind::kColumnRef) {
      name = raw.parts.back();
    }
    return register_expr(std::move(bound), name);
  };

  // Each GROUP BY item yields a list of index sets; the final grouping sets
  // are the cross-product concatenation across items (SQL semantics).
  std::vector<std::vector<std::vector<int>>> per_item;
  for (const GroupItem& item : stmt.group_by) {
    std::vector<std::vector<int>> sets;
    switch (item.kind) {
      case GroupItem::Kind::kExpr: {
        MSQL_ASSIGN_OR_RETURN(int idx, bind_group_expr(*item.expr));
        sets.push_back({idx});
        break;
      }
      case GroupItem::Kind::kRollup: {
        std::vector<int> ids;
        for (const ExprPtr& e : item.exprs) {
          MSQL_ASSIGN_OR_RETURN(int idx, bind_group_expr(*e));
          ids.push_back(idx);
        }
        for (size_t k = ids.size() + 1; k-- > 0;) {
          sets.emplace_back(ids.begin(), ids.begin() + k);
        }
        break;
      }
      case GroupItem::Kind::kCube: {
        std::vector<int> ids;
        for (const ExprPtr& e : item.exprs) {
          MSQL_ASSIGN_OR_RETURN(int idx, bind_group_expr(*e));
          ids.push_back(idx);
        }
        size_t n = ids.size();
        for (size_t mask = (1u << n); mask-- > 0;) {
          std::vector<int> set;
          for (size_t b = 0; b < n; ++b) {
            if (mask & (1u << b)) set.push_back(ids[b]);
          }
          sets.push_back(std::move(set));
        }
        break;
      }
      case GroupItem::Kind::kGroupingSets: {
        for (const auto& group : item.sets) {
          std::vector<int> set;
          for (const ExprPtr& e : group) {
            MSQL_ASSIGN_OR_RETURN(int idx, bind_group_expr(*e));
            set.push_back(idx);
          }
          sets.push_back(std::move(set));
        }
        break;
      }
    }
    per_item.push_back(std::move(sets));
  }

  // Cross product.
  st->grouping_sets = {{}};
  for (const auto& sets : per_item) {
    std::vector<std::vector<int>> next;
    for (const auto& acc : st->grouping_sets) {
      for (const auto& s : sets) {
        std::vector<int> merged = acc;
        for (int idx : s) {
          if (std::find(merged.begin(), merged.end(), idx) == merged.end()) {
            merged.push_back(idx);
          }
        }
        next.push_back(std::move(merged));
      }
    }
    st->grouping_sets = std::move(next);
  }
  return Status::Ok();
}

Status Binder::CollectAggregates(const BoundExpr& e, AggState* st) {
  // A subtree equal to a group key is opaque (it will be replaced wholesale).
  std::string print = e.ToString();
  for (const std::string& gp : st->group_prints) {
    if (gp == print) return Status::Ok();
  }
  switch (e.kind) {
    case BoundExprKind::kAgg: {
      for (const auto& a : e.args) {
        bool nested = ContainsNode(*a, [](const BoundExpr& n) {
          return n.kind == BoundExprKind::kAgg;
        });
        if (nested) {
          return Status(ErrorCode::kBind,
                        "aggregate calls cannot be nested");
        }
      }
      for (const std::string& ap : st->agg_prints) {
        if (ap == print) return Status::Ok();
      }
      AggCallDef def;
      def.agg = e.agg;
      for (const auto& a : e.args) def.args.push_back(a->Clone());
      def.distinct = e.distinct;
      if (e.filter) def.filter = e.filter->Clone();
      def.type = e.type;
      st->agg_prints.push_back(print);
      st->agg_calls.push_back(std::move(def));
      return Status::Ok();
    }
    case BoundExprKind::kMeasureEval: {
      if (e.depth != 0) return Status::Ok();  // correlated; left in place
      for (const std::string& mp : st->meval_prints) {
        if (mp == print) return Status::Ok();
      }
      MeasureEvalDef def;
      def.measure_slot = e.measure_slot;
      for (const auto& m : e.modifiers) {
        BoundAtModifier mc;
        mc.kind = m.kind;
        for (const auto& d : m.dims) mc.dims.push_back(d->Clone());
        if (m.set_dim) mc.set_dim = m.set_dim->Clone();
        if (m.set_value) mc.set_value = m.set_value->Clone();
        if (m.predicate) mc.predicate = m.predicate->Clone();
        def.modifiers.push_back(std::move(mc));
      }
      def.type = e.type;
      def.display = print;
      st->meval_prints.push_back(print);
      st->measure_evals.push_back(std::move(def));
      return Status::Ok();
    }
    case BoundExprKind::kSubquery:
    case BoundExprKind::kInSubquery:
    case BoundExprKind::kExists:
      // Subquery internals are independent; only the operand participates.
      if (e.operand) MSQL_RETURN_IF_ERROR(CollectAggregates(*e.operand, st));
      return Status::Ok();
    default:
      break;
  }
  Status status = Status::Ok();
  auto walk = [&](const BoundExprPtr& child) {
    if (child && status.ok()) status = CollectAggregates(*child, st);
  };
  for (const auto& a : e.args) walk(a);
  walk(e.filter);
  for (const auto& [w, t] : e.when_clauses) {
    walk(w);
    walk(t);
  }
  walk(e.else_expr);
  walk(e.operand);
  return status;
}

Result<BoundExprPtr> Binder::TransformForAggregate(const BoundExpr& e,
                                                   const AggState& st) {
  const size_t num_keys = st.group_exprs.size();
  const size_t num_aggs = st.agg_calls.size();
  std::string print = e.ToString();

  // GROUPING(expr) / GROUPING_ID(e1, e2, ...).
  if (e.kind == BoundExprKind::kFunc && e.func == FunctionId::kInvalid &&
      EqualsIgnoreCase(e.func_name, "GROUPING")) {
    const int gid_col =
        static_cast<int>(num_keys + num_aggs + st.measure_evals.size());
    BoundExprPtr combined;
    for (const auto& arg : e.args) {
      std::string ap = arg->ToString();
      int bit = -1;
      for (size_t i = 0; i < st.group_prints.size(); ++i) {
        if (st.group_prints[i] == ap) bit = static_cast<int>(i);
      }
      if (bit < 0) {
        return Status(ErrorCode::kBind,
                      "GROUPING argument must be a GROUP BY expression");
      }
      auto gb = std::make_unique<BoundExpr>();
      gb->kind = BoundExprKind::kGroupingBit;
      gb->type = DataType::Int64();
      gb->grouping_bit = bit;
      gb->grouping_col = gid_col;
      if (combined == nullptr) {
        combined = std::move(gb);
      } else {
        // GROUPING_ID semantics: shift previous bits left and add.
        std::vector<BoundExprPtr> mul_args;
        mul_args.push_back(std::move(combined));
        mul_args.push_back(BLiteral(Value::Int(2)));
        auto shifted = BFunc(FunctionId::kOpMul, "*", DataType::Int64(),
                             std::move(mul_args));
        std::vector<BoundExprPtr> add_args;
        add_args.push_back(std::move(shifted));
        add_args.push_back(std::move(gb));
        combined = BFunc(FunctionId::kOpAdd, "+", DataType::Int64(),
                         std::move(add_args));
      }
    }
    if (combined == nullptr) {
      return Status(ErrorCode::kBind, "GROUPING requires arguments");
    }
    return combined;
  }

  // Group-key match (whole subtree).
  for (size_t i = 0; i < st.group_prints.size(); ++i) {
    if (st.group_prints[i] == print) {
      return BColumnRef(0, static_cast<int>(i), st.group_names[i],
                        st.group_types[i]);
    }
  }
  if (e.kind == BoundExprKind::kAgg) {
    for (size_t i = 0; i < st.agg_prints.size(); ++i) {
      if (st.agg_prints[i] == print) {
        return BColumnRef(0, static_cast<int>(num_keys + i), print,
                          st.agg_calls[i].type);
      }
    }
    return Status(ErrorCode::kBind, "internal: aggregate call not collected");
  }
  if (e.kind == BoundExprKind::kMeasureEval && e.depth == 0) {
    for (size_t i = 0; i < st.meval_prints.size(); ++i) {
      if (st.meval_prints[i] == print) {
        return BColumnRef(0, static_cast<int>(num_keys + num_aggs + i), print,
                          st.measure_evals[i].type.ValueType());
      }
    }
    return Status(ErrorCode::kBind,
                  "internal: measure evaluation not collected");
  }
  if (e.kind == BoundExprKind::kColumnRef && e.depth == 0) {
    return Status(
        ErrorCode::kBind,
        StrCat("column '", e.name,
               "' must appear in GROUP BY or inside an aggregate function"));
  }
  if (e.kind == BoundExprKind::kSubquery ||
      e.kind == BoundExprKind::kInSubquery ||
      e.kind == BoundExprKind::kExists) {
    BoundExprPtr clone = e.Clone();
    if (clone->operand) {
      MSQL_ASSIGN_OR_RETURN(clone->operand,
                            TransformForAggregate(*clone->operand, st));
    }
    // free_vars are memoization keys relative to this scope. Keys that are
    // group columns transform directly; any other depth-0 reference (e.g.
    // orderDate when grouping by YEAR(orderDate)) is subsumed by the group
    // keys themselves, since after remapping the subplan only sees group
    // slots of this scope.
    std::vector<BoundExprPtr> new_free_vars;
    bool need_all_keys = false;
    for (auto& fv : clone->free_vars) {
      auto transformed = TransformForAggregate(*fv, st);
      if (transformed.ok()) {
        new_free_vars.push_back(transformed.take());
      } else {
        need_all_keys = true;
      }
    }
    if (need_all_keys) {
      for (size_t i = 0; i < st.group_exprs.size(); ++i) {
        new_free_vars.push_back(BColumnRef(0, static_cast<int>(i),
                                           st.group_names[i],
                                           st.group_types[i]));
      }
    }
    clone->free_vars = std::move(new_free_vars);
    return clone;
  }

  // Structural recursion.
  BoundExprPtr clone = e.Clone();
  Status status = Status::Ok();
  auto transform_child = [&](BoundExprPtr& child) {
    if (child == nullptr || !status.ok()) return;
    auto r = TransformForAggregate(*child, st);
    if (!r.ok()) {
      status = r.status();
      return;
    }
    child = std::move(r.value());
  };
  for (auto& a : clone->args) transform_child(a);
  transform_child(clone->filter);
  for (auto& [w, t] : clone->when_clauses) {
    transform_child(w);
    transform_child(t);
  }
  transform_child(clone->else_expr);
  transform_child(clone->operand);
  MSQL_RETURN_IF_ERROR(status);
  return clone;
}

// ---------------------------------------------------------------------------
// Measure helpers
// ---------------------------------------------------------------------------

Status Binder::ValidateMeasureFormula(const BoundExpr& e,
                                      const std::string& name) {
  // Every depth-0 column reference must be inside an aggregate argument.
  std::function<Status(const BoundExpr&, bool)> walk =
      [&](const BoundExpr& n, bool inside_agg) -> Status {
    switch (n.kind) {
      case BoundExprKind::kColumnRef:
        if (n.depth == 0 && !inside_agg) {
          return Status(
              ErrorCode::kBind,
              StrCat("measure '", name, "': column '", n.name,
                     "' must appear inside an aggregate function (measures "
                     "must be aggregatable; see paper section 3.2)"));
        }
        return Status::Ok();
      case BoundExprKind::kAgg:
        if (inside_agg) {
          return Status(ErrorCode::kBind,
                        StrCat("measure '", name,
                               "': nested aggregate functions"));
        }
        for (const auto& a : n.args) MSQL_RETURN_IF_ERROR(walk(*a, true));
        if (n.filter) MSQL_RETURN_IF_ERROR(walk(*n.filter, true));
        return Status::Ok();
      case BoundExprKind::kSubquery:
      case BoundExprKind::kInSubquery:
      case BoundExprKind::kExists:
        return Status(ErrorCode::kBind,
                      StrCat("measure '", name,
                             "': subqueries are not supported in measure "
                             "formulas"));
      case BoundExprKind::kMeasureEval:
        return Status::Ok();
      default:
        break;
    }
    for (const auto& a : n.args) MSQL_RETURN_IF_ERROR(walk(*a, inside_agg));
    if (n.filter) MSQL_RETURN_IF_ERROR(walk(*n.filter, inside_agg));
    for (const auto& [w, t] : n.when_clauses) {
      MSQL_RETURN_IF_ERROR(walk(*w, inside_agg));
      MSQL_RETURN_IF_ERROR(walk(*t, inside_agg));
    }
    if (n.else_expr) MSQL_RETURN_IF_ERROR(walk(*n.else_expr, inside_agg));
    if (n.operand) MSQL_RETURN_IF_ERROR(walk(*n.operand, inside_agg));
    return Status::Ok();
  };
  return walk(e, false);
}

bool Binder::IsPureScalar(const BoundExpr& e) {
  bool pure = true;
  VisitNodes(e, [&](const BoundExpr& n) {
    switch (n.kind) {
      case BoundExprKind::kAgg:
      case BoundExprKind::kMeasureEval:
      case BoundExprKind::kSubquery:
      case BoundExprKind::kInSubquery:
      case BoundExprKind::kExists:
      case BoundExprKind::kCurrent:
      case BoundExprKind::kRowIndex:
      case BoundExprKind::kGroupingBit:
        pure = false;
        break;
      case BoundExprKind::kColumnRef:
        if (n.depth != 0) pure = false;
        break;
      default:
        break;
    }
  });
  return pure;
}

Result<BoundExprPtr> Binder::RewriteThroughProvenance(
    const BoundExpr& e,
    const std::unordered_map<int, std::shared_ptr<BoundExpr>>& map) {
  if (e.kind == BoundExprKind::kColumnRef) {
    if (e.depth != 0) {
      return Status(ErrorCode::kBind, "correlated reference in provenance");
    }
    auto it = map.find(e.column);
    if (it == map.end()) {
      return Status(ErrorCode::kBind, "no provenance for column");
    }
    return it->second->Clone();
  }
  if (!IsPureScalar(e)) {
    return Status(ErrorCode::kBind, "impure expression in provenance");
  }
  BoundExprPtr clone = e.Clone();
  Status status = Status::Ok();
  auto rewrite_child = [&](BoundExprPtr& child) {
    if (child == nullptr || !status.ok()) return;
    auto r = RewriteThroughProvenance(*child, map);
    if (!r.ok()) {
      status = r.status();
      return;
    }
    child = std::move(r.value());
  };
  for (auto& a : clone->args) rewrite_child(a);
  for (auto& [w, t] : clone->when_clauses) {
    rewrite_child(w);
    rewrite_child(t);
  }
  rewrite_child(clone->else_expr);
  rewrite_child(clone->operand);
  MSQL_RETURN_IF_ERROR(status);
  return clone;
}

}  // namespace msql

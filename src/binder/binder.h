#ifndef MSQL_BINDER_BINDER_H_
#define MSQL_BINDER_BINDER_H_

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "binder/bound_expr.h"
#include "catalog/catalog.h"
#include "catalog/system_tables.h"
#include "common/status.h"
#include "parser/ast.h"
#include "plan/plan.h"

namespace msql {

// Resolves a parsed SELECT into a logical plan: name resolution across
// nested scopes (with correlation depths), type checking, view and CTE
// inlining (with definer's-rights security), measure binding (kMeasureEval
// nodes and PlanMeasure descriptors), aggregate extraction and grouping-set
// construction.
class Binder {
 public:
  // `max_recursion_depth` drives the view-expansion depth guard; it is the
  // same EngineOptions::max_recursion_depth that bounds plan execution and
  // measure evaluation, so every layer trips the same kResourceExhausted.
  // `system_tables` (optional) resolves the reserved `msql_system.` name
  // space; null (the default, and whenever
  // EngineOptions::enable_system_tables is off) keeps those names ordinary
  // catalog misses.
  Binder(const Catalog* catalog, std::string user,
         int max_recursion_depth = 64,
         const SystemTableRegistry* system_tables = nullptr)
      : catalog_(catalog),
        user_(std::move(user)),
        max_recursion_depth_(max_recursion_depth),
        system_tables_(system_tables) {}

  // Binds a full query (WITH / set ops / ORDER BY / LIMIT).
  Result<PlanPtr> Bind(const SelectStmt& stmt);

  // Declares the types of the statement's positional `?` parameters, in
  // ordinal order. Without a declaration, any `?` in the statement is a
  // bind error (ad-hoc Engine::Query has no parameter row to read from).
  void set_param_types(std::vector<TypeKind> types) {
    param_types_ = std::move(types);
    has_param_types_ = true;
  }

  // Highest parameter ordinal seen during Bind() + 1 (0 when the statement
  // has no parameters).
  int param_count() const { return param_count_; }

  // Tracing hook (docs/OBSERVABILITY.md): accumulates microseconds spent in
  // measure binding/expansion (PlanMeasure construction, AT-modifier
  // binding) into `*us`. The caller initializes `*us` to a negative
  // sentinel; it stays negative when no measure work happened, so the
  // trace only gets a measure-expand span for queries that expand measures.
  void set_measure_expand_accumulator(int64_t* us) {
    measure_expand_us_ = us;
  }

  // True when this bind (including nested view expansion) scanned a
  // msql_system table. Such plans embed a point-in-time data snapshot that
  // the catalog generation does not version, so the engine must keep them
  // out of the bound-plan and shared-measure caches.
  bool used_system_tables() const { return used_system_tables_; }

 private:
  // One name-resolution scope: the FROM relation of a SELECT (or a pseudo
  // scope for AT-modifier dimension binding).
  struct Scope {
    Scope* parent = nullptr;
    const Schema* schema = nullptr;
    const std::vector<PlanMeasure>* measures = nullptr;
    std::vector<std::string> using_cols;  // ambiguity exemption (USING)
  };

  struct FreeVarRec {
    Scope* boundary;  // the scope the subquery was bound against
    // Raw matches: (scope, column) pairs resolved outside the subquery.
    std::vector<std::tuple<Scope*, int, std::string, DataType>> vars;
  };

  // --- statements / relations ---
  Result<PlanPtr> BindSelectStmt(const SelectStmt& stmt, Scope* outer);
  Result<PlanPtr> BindSelectCore(const SelectStmt& stmt, Scope* outer);
  Result<PlanPtr> BindTableRef(const TableRef& ref, Scope* outer);
  Result<PlanPtr> BindBaseTable(const std::string& name,
                                const std::string& alias, Scope* outer);

  // --- expressions ---
  Result<BoundExprPtr> BindExpr(const Expr& e, Scope* scope);
  Result<BoundExprPtr> ResolveColumn(const std::vector<std::string>& parts,
                                     Scope* scope);
  Result<BoundExprPtr> BindFuncCall(const Expr& e, Scope* scope);
  Result<BoundExprPtr> BindAt(const Expr& e, Scope* scope);
  Result<std::vector<BoundAtModifier>> BindAtModifiers(
      const std::vector<AtModifier>& mods, Scope* scope);
  // Binds an AT dimension: a column of the measure provider, or a select
  // alias of the current SELECT used as an ad-hoc dimension (listing 10's
  // `SET orderYear = ...` where orderYear aliases YEAR(orderDate)).
  Result<BoundExprPtr> BindAtDim(const Expr& ast, Scope* dims_scope);
  Result<BoundExprPtr> BindSubqueryExpr(const Expr& e, Scope* scope,
                                        BoundExprKind kind);

  // Validates an AS MEASURE formula: depth-0 column references only inside
  // aggregate arguments; no subqueries.
  Status ValidateMeasureFormula(const BoundExpr& e, const std::string& name);

  // Translation of an expression through a provenance map at bind time
  // (composing provenance across projections). Fails when the expression
  // touches non-dimension columns, correlations, aggregates or measures.
  static Result<BoundExprPtr> RewriteThroughProvenance(
      const BoundExpr& e,
      const std::unordered_map<int, std::shared_ptr<BoundExpr>>& map);

  // True if the expression can serve as provenance (pure scalar over
  // depth-0 columns).
  static bool IsPureScalar(const BoundExpr& e);

  // --- aggregation support ---
  struct AggState {
    std::vector<BoundExprPtr> group_exprs;
    std::vector<std::string> group_names;
    std::vector<DataType> group_types;
    std::vector<std::string> group_prints;
    std::vector<std::vector<int>> grouping_sets;
    std::vector<AggCallDef> agg_calls;
    std::vector<std::string> agg_prints;
    std::vector<MeasureEvalDef> measure_evals;
    std::vector<std::string> meval_prints;
  };

  // First pass: collect aggregate calls and depth-0 measure evaluations.
  Status CollectAggregates(const BoundExpr& e, AggState* st);
  // Second pass: rewrite an expression over the Aggregate node's output.
  Result<BoundExprPtr> TransformForAggregate(const BoundExpr& e,
                                             const AggState& st);

  Status BindGroupBy(const SelectStmt& stmt, Scope* scope, AggState* st);

  // --- helpers ---
  // RAII accumulator feeding the measure-expand trace span: adds the scope's
  // elapsed microseconds to `*out` on destruction, clearing the negative
  // "never ran" sentinel first. Null-safe, so untraced binds pay only the
  // null check.
  class ExpandTimer {
   public:
    explicit ExpandTimer(int64_t* out)
        : out_(out),
          start_(out == nullptr ? std::chrono::steady_clock::time_point()
                                : std::chrono::steady_clock::now()) {}
    ~ExpandTimer() {
      if (out_ == nullptr) return;
      if (*out_ < 0) *out_ = 0;
      *out_ += std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
    }
    ExpandTimer(const ExpandTimer&) = delete;
    ExpandTimer& operator=(const ExpandTimer&) = delete;

   private:
    int64_t* out_;
    std::chrono::steady_clock::time_point start_;
  };

  static std::vector<PlanMeasure> PropagateSameSchema(const LogicalPlan& child);
  Status CheckAccessAndGet(const std::string& name, const CatalogEntry** out);

  const Catalog* catalog_;
  std::string user_;

  // Catalog entries resolved during this bind, pinned so the raw pointers
  // handed around the binder stay valid even if a concurrent DROP/REPLACE
  // republishes the registry mid-bind (entries are immutable snapshots).
  std::vector<Catalog::EntryPtr> pinned_entries_;

  // CTEs visible during binding, innermost last.
  std::vector<std::map<std::string, const SelectStmt*>> cte_stack_;

  // Correlation recorders for subquery free-variable analysis.
  std::vector<FreeVarRec> recorders_;

  // Set while binding the expressions of one SELECT core: did we see an
  // aggregate function (incl. AGGREGATE), making the query an aggregate
  // query?
  bool saw_agg_ = false;

  // Dimension scope for CURRENT binding inside AT modifiers.
  Scope* at_dims_scope_ = nullptr;

  // Measures defined earlier in the same SELECT (peer inlining); only
  // consulted while binding another measure formula.
  std::map<std::string, const BoundExpr*> peer_measures_;
  bool in_measure_formula_ = false;

  // View-expansion depth guard, bounded by max_recursion_depth_.
  int max_recursion_depth_ = 64;
  int view_depth_ = 0;

  // USING column names collected while binding the current FROM clause.
  std::vector<std::string> pending_using_;

  // Select aliases of the SELECT cores currently being bound (innermost
  // last); consulted for ad-hoc dimensions in AT modifiers.
  std::vector<std::map<std::string, const Expr*>> select_alias_stack_;

  // Measure-expansion time accumulator; null unless the engine is tracing
  // this bind.
  int64_t* measure_expand_us_ = nullptr;

  // Reserved-namespace resolver (null = feature off) and whether this bind
  // touched it.
  const SystemTableRegistry* system_tables_ = nullptr;
  bool used_system_tables_ = false;

  // Declared positional parameter types (prepared statements) and the
  // number of distinct ordinals actually bound.
  std::vector<TypeKind> param_types_;
  bool has_param_types_ = false;
  int param_count_ = 0;

  // Window calls collected while binding the current SELECT core.
  std::vector<WindowDef> pending_windows_;
  std::vector<std::string> window_prints_;
  int window_base_visible_ = 0;
};

}  // namespace msql

#endif  // MSQL_BINDER_BINDER_H_

#include <algorithm>

#include "binder/binder.h"
#include "common/string_util.h"

namespace msql {

// ---------------------------------------------------------------------------
// Name resolution
// ---------------------------------------------------------------------------

Result<BoundExprPtr> Binder::ResolveColumn(
    const std::vector<std::string>& parts, Scope* scope) {
  if (parts.empty() || parts.size() > 2) {
    return Status(ErrorCode::kBind,
                  "column references support at most one qualifier");
  }
  const std::string alias = parts.size() == 2 ? parts[0] : "";
  const std::string& name = parts.back();

  int depth = 0;
  for (Scope* s = scope; s != nullptr; s = s->parent, ++depth) {
    if (s->schema == nullptr) continue;
    std::vector<size_t> matches = s->schema->Find(alias, name);
    if (matches.size() > 1) {
      // USING columns prefer the left side.
      bool is_using = false;
      for (const std::string& u : s->using_cols) {
        if (EqualsIgnoreCase(u, name)) is_using = true;
      }
      if (is_using && matches.size() == 2) {
        matches.resize(1);
      } else {
        return Status(ErrorCode::kBind,
                      "column reference '" + name + "' is ambiguous");
      }
    }
    if (matches.size() == 1) {
      const size_t col = matches[0];
      const Column& c = s->schema->column(col);
      // Record correlations for active subquery recorders whose boundary
      // chain contains this scope.
      for (FreeVarRec& rec : recorders_) {
        for (Scope* b = rec.boundary; b != nullptr; b = b->parent) {
          if (b == s) {
            rec.vars.emplace_back(s, static_cast<int>(col), c.name, c.type);
            break;
          }
        }
      }
      if (c.type.is_measure) {
        if (s->measures == nullptr) {
          return Status(ErrorCode::kBind,
                        "measure '" + name +
                            "' cannot be used in a dimension context");
        }
        int slot = -1;
        for (size_t m = 0; m < s->measures->size(); ++m) {
          if ((*s->measures)[m].column == static_cast<int>(col)) {
            slot = static_cast<int>(m);
          }
        }
        if (slot < 0) {
          return Status(ErrorCode::kBind,
                        "internal: measure column without descriptor");
        }
        auto e = std::make_unique<BoundExpr>();
        e->kind = BoundExprKind::kMeasureEval;
        e->type = c.type;
        e->depth = depth;
        e->measure_slot = slot;
        e->name = c.name;
        return e;
      }
      return BColumnRef(depth, static_cast<int>(col), c.name, c.type);
    }
  }

  // Peer measures defined earlier in the same SELECT, visible only inside
  // another measure formula (paper section 5.4: measures can reference
  // measures in the same query); inlined by substitution.
  if (in_measure_formula_ && parts.size() == 1) {
    auto it = peer_measures_.find(ToLower(name));
    if (it != peer_measures_.end()) {
      return it->second->Clone();
    }
  }
  return Status(ErrorCode::kBind, "column '" + Join(parts, ".") +
                                      "' does not exist in this scope");
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<BoundExprPtr> Binder::BindExpr(const Expr& e, Scope* scope) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return BLiteral(e.literal);
    case ExprKind::kColumnRef:
      return ResolveColumn(e.parts, scope);
    case ExprKind::kStar:
      return Status(ErrorCode::kBind, "'*' is not valid in this context");
    case ExprKind::kParam: {
      if (!has_param_types_) {
        return Status(ErrorCode::kBind,
                      "positional parameter '?' requires a prepared "
                      "statement (use Prepare with declared parameter "
                      "types)");
      }
      if (e.param_index < 0 ||
          static_cast<size_t>(e.param_index) >= param_types_.size()) {
        return Status(
            ErrorCode::kBind,
            StrCat("parameter $", e.param_index + 1, " out of range: ",
                   param_types_.size(), " parameter type(s) declared"));
      }
      if (in_measure_formula_) {
        return Status(ErrorCode::kBind,
                      "positional parameters are not allowed inside AS "
                      "MEASURE formulas (measure expansion is "
                      "context-dependent, not parameter-dependent)");
      }
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExprKind::kParam;
      bound->param_index = e.param_index;
      bound->type = DataType(param_types_[e.param_index]);
      param_count_ = std::max(param_count_, e.param_index + 1);
      return bound;
    }
    case ExprKind::kFuncCall:
      return BindFuncCall(e, scope);
    case ExprKind::kUnary: {
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*e.left, scope));
      FunctionId id = e.unary_op == UnaryOp::kNeg ? FunctionId::kOpNeg
                                                  : FunctionId::kOpNot;
      std::vector<DataType> arg_types = {operand->type.ValueType()};
      MSQL_ASSIGN_OR_RETURN(
          DataType type,
          ScalarResultType(id, e.unary_op == UnaryOp::kNeg ? "-" : "NOT",
                           arg_types));
      std::vector<BoundExprPtr> args;
      args.push_back(std::move(operand));
      return BFunc(id, e.unary_op == UnaryOp::kNeg ? "-" : "NOT", type,
                   std::move(args));
    }
    case ExprKind::kBinary: {
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr left, BindExpr(*e.left, scope));
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr right, BindExpr(*e.right, scope));
      FunctionId id = FunctionId::kInvalid;
      switch (e.binary_op) {
        case BinaryOp::kAdd: id = FunctionId::kOpAdd; break;
        case BinaryOp::kSub: id = FunctionId::kOpSub; break;
        case BinaryOp::kMul: id = FunctionId::kOpMul; break;
        case BinaryOp::kDiv: id = FunctionId::kOpDiv; break;
        case BinaryOp::kMod: id = FunctionId::kOpMod; break;
        case BinaryOp::kConcat: id = FunctionId::kOpConcat; break;
        case BinaryOp::kEq: id = FunctionId::kOpEq; break;
        case BinaryOp::kNe: id = FunctionId::kOpNe; break;
        case BinaryOp::kLt: id = FunctionId::kOpLt; break;
        case BinaryOp::kLe: id = FunctionId::kOpLe; break;
        case BinaryOp::kGt: id = FunctionId::kOpGt; break;
        case BinaryOp::kGe: id = FunctionId::kOpGe; break;
        case BinaryOp::kAnd: id = FunctionId::kOpAnd; break;
        case BinaryOp::kOr: id = FunctionId::kOpOr; break;
        case BinaryOp::kIsDistinctFrom: id = FunctionId::kOpIsDistinctFrom; break;
        case BinaryOp::kIsNotDistinctFrom:
          id = FunctionId::kOpIsNotDistinctFrom;
          break;
      }
      std::vector<DataType> arg_types = {left->type.ValueType(),
                                         right->type.ValueType()};
      MSQL_ASSIGN_OR_RETURN(DataType type,
                            ScalarResultType(id, BinaryOpName(e.binary_op),
                                             arg_types));
      std::vector<BoundExprPtr> args;
      args.push_back(std::move(left));
      args.push_back(std::move(right));
      return BFunc(id, BinaryOpName(e.binary_op), type, std::move(args));
    }
    case ExprKind::kCase: {
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExprKind::kCase;
      BoundExprPtr operand;
      if (e.case_operand != nullptr) {
        MSQL_ASSIGN_OR_RETURN(operand, BindExpr(*e.case_operand, scope));
      }
      DataType result_type = DataType::Null();
      for (const auto& [when_ast, then_ast] : e.when_clauses) {
        MSQL_ASSIGN_OR_RETURN(BoundExprPtr when, BindExpr(*when_ast, scope));
        MSQL_ASSIGN_OR_RETURN(BoundExprPtr then, BindExpr(*then_ast, scope));
        if (operand != nullptr) {
          // Desugar `CASE x WHEN v` into `CASE WHEN x = v`.
          std::vector<BoundExprPtr> eq_args;
          eq_args.push_back(operand->Clone());
          eq_args.push_back(std::move(when));
          when = BFunc(FunctionId::kOpEq, "=", DataType::Bool(),
                       std::move(eq_args));
        }
        result_type = CommonType(result_type, then->type.ValueType());
        bound->when_clauses.emplace_back(std::move(when), std::move(then));
      }
      if (e.else_expr != nullptr) {
        MSQL_ASSIGN_OR_RETURN(bound->else_expr, BindExpr(*e.else_expr, scope));
        result_type = CommonType(result_type,
                                 bound->else_expr->type.ValueType());
      }
      bound->type = result_type;
      return bound;
    }
    case ExprKind::kCast: {
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExprKind::kCast;
      MSQL_ASSIGN_OR_RETURN(bound->operand, BindExpr(*e.left, scope));
      bound->cast_to = TypeKindFromName(e.cast_type);
      if (bound->cast_to == TypeKind::kNull) {
        return Status(ErrorCode::kBind, "unknown type '" + e.cast_type + "'");
      }
      bound->type = DataType(bound->cast_to);
      return bound;
    }
    case ExprKind::kIsNull: {
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExprKind::kIsNull;
      MSQL_ASSIGN_OR_RETURN(bound->operand, BindExpr(*e.left, scope));
      bound->negated = e.negated;
      bound->type = DataType::Bool();
      return bound;
    }
    case ExprKind::kInList: {
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExprKind::kInList;
      MSQL_ASSIGN_OR_RETURN(bound->operand, BindExpr(*e.left, scope));
      for (const auto& item : e.in_list) {
        MSQL_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*item, scope));
        bound->args.push_back(std::move(b));
      }
      bound->negated = e.negated;
      bound->type = DataType::Bool();
      return bound;
    }
    case ExprKind::kBetween: {
      // Desugar `x BETWEEN a AND b` into `x >= a AND x <= b`.
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr x, BindExpr(*e.left, scope));
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr low, BindExpr(*e.between_low, scope));
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr high,
                            BindExpr(*e.between_high, scope));
      std::vector<BoundExprPtr> ge_args;
      ge_args.push_back(x->Clone());
      ge_args.push_back(std::move(low));
      auto ge = BFunc(FunctionId::kOpGe, ">=", DataType::Bool(),
                      std::move(ge_args));
      std::vector<BoundExprPtr> le_args;
      le_args.push_back(std::move(x));
      le_args.push_back(std::move(high));
      auto le = BFunc(FunctionId::kOpLe, "<=", DataType::Bool(),
                      std::move(le_args));
      std::vector<BoundExprPtr> and_args;
      and_args.push_back(std::move(ge));
      and_args.push_back(std::move(le));
      auto result = BFunc(FunctionId::kOpAnd, "AND", DataType::Bool(),
                          std::move(and_args));
      if (!e.negated) return BoundExprPtr(std::move(result));
      std::vector<BoundExprPtr> not_args;
      not_args.push_back(std::move(result));
      return BFunc(FunctionId::kOpNot, "NOT", DataType::Bool(),
                   std::move(not_args));
    }
    case ExprKind::kLike: {
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExprKind::kLike;
      MSQL_ASSIGN_OR_RETURN(bound->operand, BindExpr(*e.left, scope));
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr pattern, BindExpr(*e.right, scope));
      bound->args.push_back(std::move(pattern));
      bound->negated = e.negated;
      bound->type = DataType::Bool();
      return bound;
    }
    case ExprKind::kExists:
      return BindSubqueryExpr(e, scope, BoundExprKind::kExists);
    case ExprKind::kSubquery:
      return BindSubqueryExpr(e, scope, BoundExprKind::kSubquery);
    case ExprKind::kInSubquery:
      return BindSubqueryExpr(e, scope, BoundExprKind::kInSubquery);
    case ExprKind::kAt:
      return BindAt(e, scope);
    case ExprKind::kCurrent: {
      if (at_dims_scope_ == nullptr) {
        return Status(ErrorCode::kBind,
                      "CURRENT is only valid inside an AT modifier");
      }
      auto bound = std::make_unique<BoundExpr>();
      bound->kind = BoundExprKind::kCurrent;
      Expr dim_ast;
      dim_ast.kind = ExprKind::kColumnRef;
      dim_ast.parts = {e.current_dim};
      MSQL_ASSIGN_OR_RETURN(bound->current_dim,
                            BindAtDim(dim_ast, at_dims_scope_));
      bound->type = bound->current_dim->type.ValueType();
      return bound;
    }
  }
  return Status(ErrorCode::kBind, "unsupported expression");
}

Result<BoundExprPtr> Binder::BindFuncCall(const Expr& e, Scope* scope) {
  const std::string upper = ToUpper(e.func_name);

  // EVAL(x): explicit evaluation marker, a no-op in expression position.
  if (upper == "EVAL") {
    if (e.args.size() != 1) {
      return Status(ErrorCode::kBind, "EVAL expects one argument");
    }
    MSQL_ASSIGN_OR_RETURN(BoundExprPtr inner, BindExpr(*e.args[0], scope));
    inner->type = inner->type.ValueType();
    return inner;
  }

  // AGGREGATE(m) expands to EVAL(m AT (VISIBLE)) — paper section 3.4 — and
  // marks the query as an aggregate query (section 3.3).
  if (upper == "AGGREGATE") {
    if (e.args.size() != 1) {
      return Status(ErrorCode::kBind, "AGGREGATE expects one argument");
    }
    MSQL_ASSIGN_OR_RETURN(BoundExprPtr inner, BindExpr(*e.args[0], scope));
    int measure_count = 0;
    VisitNodes(inner.get(), [&](BoundExpr* n) {
      if (n->kind == BoundExprKind::kMeasureEval) {
        ++measure_count;
        BoundAtModifier visible;
        visible.kind = AtModifier::Kind::kVisible;
        n->modifiers.insert(n->modifiers.begin(), std::move(visible));
      }
    });
    if (measure_count == 0) {
      return Status(ErrorCode::kBind,
                    "AGGREGATE requires a measure argument");
    }
    saw_agg_ = true;
    inner->type = inner->type.ValueType();
    return inner;
  }

  // GROUPING(expr...) is resolved during aggregate transformation; bind a
  // marker node here.
  if (upper == "GROUPING" || upper == "GROUPING_ID") {
    auto bound = std::make_unique<BoundExpr>();
    bound->kind = BoundExprKind::kFunc;
    bound->func = FunctionId::kInvalid;
    bound->func_name = "GROUPING";
    bound->type = DataType::Int64();
    for (const auto& arg : e.args) {
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*arg, scope));
      bound->args.push_back(std::move(b));
    }
    saw_agg_ = true;
    return bound;
  }

  // Aggregate (or window) functions.
  AggId agg = LookupAggFunction(e.func_name);
  if (agg != AggId::kInvalid) {
    if (agg == AggId::kCount && e.star_arg) agg = AggId::kCountStar;
    std::vector<BoundExprPtr> args;
    std::vector<DataType> arg_types;
    for (const auto& arg : e.args) {
      MSQL_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*arg, scope));
      if (b->type.is_measure) {
        return Status(
            ErrorCode::kBind,
            StrCat("measure '", b->name, "' cannot be an argument of ",
                   ToUpper(e.func_name),
                   "; use AGGREGATE(m) or m AT (...) instead"));
      }
      arg_types.push_back(b->type.ValueType());
      args.push_back(std::move(b));
    }
    MSQL_ASSIGN_OR_RETURN(DataType type,
                          AggResultType(agg, ToUpper(e.func_name), arg_types));
    if (e.over != nullptr) {
      // Window call: hoist into a Window node and reference its column.
      WindowDef def;
      def.agg = agg;
      def.args = std::move(args);
      def.type = type;
      for (const auto& p : e.over->partition_by) {
        MSQL_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*p, scope));
        def.partition_by.push_back(std::move(b));
      }
      for (const auto& [o, desc] : e.over->order_by) {
        MSQL_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*o, scope));
        def.order_by.emplace_back(std::move(b), desc);
      }
      // Dedupe identical window expressions (e.g. ORDER BY reuse).
      std::string print = e.ToString();
      for (size_t i = 0; i < window_prints_.size(); ++i) {
        if (window_prints_[i] == print) {
          return BColumnRef(0, window_base_visible_ + static_cast<int>(i),
                            StrCat("__win", i), type);
        }
      }
      window_prints_.push_back(print);
      pending_windows_.push_back(std::move(def));
      return BColumnRef(
          0, window_base_visible_ + static_cast<int>(window_prints_.size()) - 1,
          StrCat("__win", window_prints_.size() - 1), type);
    }
    if (IsWindowOnly(agg)) {
      return Status(ErrorCode::kBind,
                    StrCat(ToUpper(e.func_name),
                           " requires an OVER clause"));
    }
    auto bound = std::make_unique<BoundExpr>();
    bound->kind = BoundExprKind::kAgg;
    bound->agg = agg;
    bound->args = std::move(args);
    bound->distinct = e.distinct;
    if (e.filter != nullptr) {
      MSQL_ASSIGN_OR_RETURN(bound->filter, BindExpr(*e.filter, scope));
    }
    bound->type = type;
    saw_agg_ = true;
    return bound;
  }

  // Scalar functions.
  FunctionId id = LookupScalarFunction(e.func_name);
  if (id == FunctionId::kInvalid) {
    return Status(ErrorCode::kBind,
                  "unknown function '" + e.func_name + "'");
  }
  if (e.star_arg) {
    return Status(ErrorCode::kBind,
                  "'*' is only valid as the argument of COUNT");
  }
  std::vector<BoundExprPtr> args;
  std::vector<DataType> arg_types;
  for (const auto& arg : e.args) {
    MSQL_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*arg, scope));
    arg_types.push_back(b->type.ValueType());
    args.push_back(std::move(b));
  }
  MSQL_ASSIGN_OR_RETURN(
      DataType type, ScalarResultType(id, ToUpper(e.func_name), arg_types));
  return BFunc(id, ToUpper(e.func_name), type, std::move(args));
}

Result<BoundExprPtr> Binder::BindSubqueryExpr(const Expr& e, Scope* scope,
                                              BoundExprKind kind) {
  auto bound = std::make_unique<BoundExpr>();
  bound->kind = kind;
  bound->negated = e.negated;

  if (kind == BoundExprKind::kInSubquery) {
    MSQL_ASSIGN_OR_RETURN(bound->operand, BindExpr(*e.left, scope));
  }

  // Record free variables (correlations) resolved outside the subquery.
  recorders_.push_back(FreeVarRec{scope, {}});
  auto plan_result = BindSelectStmt(*e.subquery, scope);
  FreeVarRec rec = std::move(recorders_.back());
  recorders_.pop_back();
  if (!plan_result.ok()) return plan_result.status();
  bound->subplan = plan_result.take();

  if (kind == BoundExprKind::kSubquery) {
    if (bound->subplan->schema.num_visible() != 1) {
      return Status(ErrorCode::kBind,
                    "scalar subquery must return exactly one column");
    }
    bound->type = bound->subplan->schema.column(0).type.ValueType();
  } else {
    if (kind == BoundExprKind::kInSubquery &&
        bound->subplan->schema.num_visible() != 1) {
      return Status(ErrorCode::kBind,
                    "IN subquery must return exactly one column");
    }
    bound->type = DataType::Bool();
  }

  // Free variables relative to this expression's scope: depth measured by
  // walking from `scope` outward.
  std::set<std::pair<const void*, int>> seen;
  for (const auto& [var_scope, col, name, type] : rec.vars) {
    if (!seen.insert({var_scope, col}).second) continue;
    int depth = 0;
    bool found = false;
    for (Scope* s = scope; s != nullptr; s = s->parent, ++depth) {
      if (s == var_scope) {
        found = true;
        break;
      }
    }
    if (!found) continue;  // resolved beyond our own chain (outer recorder)
    bound->free_vars.push_back(BColumnRef(depth, col, name, type));
  }
  return bound;
}

Result<BoundExprPtr> Binder::BindAt(const Expr& e, Scope* scope) {
  ExpandTimer expand_timer(measure_expand_us_);
  MSQL_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*e.left, scope));
  int measure_count = 0;
  VisitNodes(operand.get(), [&](BoundExpr* n) {
    if (n->kind == BoundExprKind::kMeasureEval) ++measure_count;
  });
  if (measure_count == 0) {
    return Status(ErrorCode::kBind,
                  "AT requires a context-sensitive expression (a measure)");
  }
  MSQL_ASSIGN_OR_RETURN(std::vector<BoundAtModifier> mods,
                        BindAtModifiers(e.at_modifiers, scope));

  // Outer AT modifiers apply before inner ones (paper section 3.5:
  // cse AT (m1 m2) == (cse AT (m2)) AT (m1)), so prepend.
  VisitNodes(operand.get(), [&](BoundExpr* n) {
    if (n->kind != BoundExprKind::kMeasureEval) return;
    std::vector<BoundAtModifier> combined;
    for (const BoundAtModifier& m : mods) {
      BoundAtModifier mc;
      mc.kind = m.kind;
      for (const auto& d : m.dims) mc.dims.push_back(d->Clone());
      if (m.set_dim) mc.set_dim = m.set_dim->Clone();
      if (m.set_value) mc.set_value = m.set_value->Clone();
      if (m.predicate) mc.predicate = m.predicate->Clone();
      combined.push_back(std::move(mc));
    }
    for (BoundAtModifier& m : n->modifiers) combined.push_back(std::move(m));
    n->modifiers = std::move(combined);
  });
  return operand;
}

Result<BoundExprPtr> Binder::BindAtDim(const Expr& ast, Scope* dims_scope) {
  auto direct = BindExpr(ast, dims_scope);
  if (direct.ok()) return direct;
  if (ast.kind == ExprKind::kColumnRef && ast.parts.size() == 1 &&
      !select_alias_stack_.empty()) {
    const auto& aliases = select_alias_stack_.back();
    auto it = aliases.find(ToLower(ast.parts[0]));
    if (it != aliases.end()) {
      auto via_alias = BindExpr(*it->second, dims_scope);
      if (via_alias.ok()) return via_alias;
    }
  }
  return direct;
}

Result<std::vector<BoundAtModifier>> Binder::BindAtModifiers(
    const std::vector<AtModifier>& mods, Scope* scope) {
  // Dimension scope: the current FROM relation without outer chaining, so
  // AT dimensions always denote columns of the measure's table.
  Scope dims_scope;
  dims_scope.parent = nullptr;
  dims_scope.schema = scope->schema;
  dims_scope.measures = nullptr;  // measures are not dimensions

  // Predicate pseudo-scope: same columns with cleared qualifiers at depth 0
  // (so unqualified names denote source dimensions) chained onto the call
  // site (so qualified names like o.prodName correlate to the current row).
  Schema unqualified = *scope->schema;
  for (size_t i = 0; i < unqualified.size(); ++i) {
    unqualified.mutable_column(i).table_alias.clear();
  }
  Scope pred_scope;
  pred_scope.parent = scope;
  pred_scope.schema = &unqualified;
  pred_scope.measures = nullptr;

  Scope* saved_dims = at_dims_scope_;
  at_dims_scope_ = &dims_scope;
  struct Restore {
    Binder* b;
    Scope* saved;
    ~Restore() { b->at_dims_scope_ = saved; }
  } restore{this, saved_dims};

  std::vector<BoundAtModifier> bound;
  for (const AtModifier& mod : mods) {
    BoundAtModifier bm;
    bm.kind = mod.kind;
    switch (mod.kind) {
      case AtModifier::Kind::kAll:
      case AtModifier::Kind::kVisible:
        break;
      case AtModifier::Kind::kAllDims:
        for (const auto& dim : mod.dims) {
          MSQL_ASSIGN_OR_RETURN(BoundExprPtr b, BindAtDim(*dim, &dims_scope));
          bm.dims.push_back(std::move(b));
        }
        break;
      case AtModifier::Kind::kSet: {
        MSQL_ASSIGN_OR_RETURN(bm.set_dim, BindAtDim(*mod.set_dim, &dims_scope));
        // The value is evaluated at the call site (CURRENT allowed).
        MSQL_ASSIGN_OR_RETURN(bm.set_value, BindExpr(*mod.value, scope));
        break;
      }
      case AtModifier::Kind::kWhere:
        MSQL_ASSIGN_OR_RETURN(bm.predicate,
                              BindExpr(*mod.predicate, &pred_scope));
        break;
    }
    bound.push_back(std::move(bm));
  }
  return bound;
}

}  // namespace msql

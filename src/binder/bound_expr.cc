#include "binder/bound_expr.h"

#include "common/string_util.h"
#include "plan/plan.h"

namespace msql {

BoundExpr::BoundExpr() = default;
BoundExpr::~BoundExpr() = default;

namespace {

const char* FuncDisplayName(FunctionId id, const std::string& name) {
  switch (id) {
    case FunctionId::kOpAdd: return "+";
    case FunctionId::kOpSub: return "-";
    case FunctionId::kOpMul: return "*";
    case FunctionId::kOpDiv: return "/";
    case FunctionId::kOpMod: return "%";
    case FunctionId::kOpConcat: return "||";
    case FunctionId::kOpEq: return "=";
    case FunctionId::kOpNe: return "<>";
    case FunctionId::kOpLt: return "<";
    case FunctionId::kOpLe: return "<=";
    case FunctionId::kOpGt: return ">";
    case FunctionId::kOpGe: return ">=";
    case FunctionId::kOpAnd: return "AND";
    case FunctionId::kOpOr: return "OR";
    case FunctionId::kOpIsDistinctFrom: return "IS DISTINCT FROM";
    case FunctionId::kOpIsNotDistinctFrom: return "IS NOT DISTINCT FROM";
    default: return name.c_str();
  }
}

bool IsInfix(FunctionId id) {
  switch (id) {
    case FunctionId::kOpAdd:
    case FunctionId::kOpSub:
    case FunctionId::kOpMul:
    case FunctionId::kOpDiv:
    case FunctionId::kOpMod:
    case FunctionId::kOpConcat:
    case FunctionId::kOpEq:
    case FunctionId::kOpNe:
    case FunctionId::kOpLt:
    case FunctionId::kOpLe:
    case FunctionId::kOpGt:
    case FunctionId::kOpGe:
    case FunctionId::kOpAnd:
    case FunctionId::kOpOr:
    case FunctionId::kOpIsDistinctFrom:
    case FunctionId::kOpIsNotDistinctFrom:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string BoundExpr::ToString() const {
  switch (kind) {
    case BoundExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case BoundExprKind::kColumnRef: {
      std::string s = name.empty() ? StrCat("$", column) : name;
      if (depth > 0) s = StrCat("^", depth, ".", s);
      return s;
    }
    case BoundExprKind::kRowIndex:
      return "__rowid";
    case BoundExprKind::kFunc: {
      if (IsInfix(func) && args.size() == 2) {
        return StrCat("(", args[0]->ToString(), " ",
                      FuncDisplayName(func, func_name), " ",
                      args[1]->ToString(), ")");
      }
      if (func == FunctionId::kOpNot) {
        return "(NOT " + args[0]->ToString() + ")";
      }
      if (func == FunctionId::kOpNeg) {
        return "(-" + args[0]->ToString() + ")";
      }
      std::vector<std::string> parts;
      for (const auto& a : args) parts.push_back(a->ToString());
      return StrCat(FuncDisplayName(func, func_name), "(", Join(parts, ", "),
                    ")");
    }
    case BoundExprKind::kAgg: {
      std::string s = AggIdName(agg);
      s += "(";
      if (agg == AggId::kCountStar) {
        s += "*";
      } else {
        if (distinct) s += "DISTINCT ";
        std::vector<std::string> parts;
        for (const auto& a : args) parts.push_back(a->ToString());
        s += Join(parts, ", ");
      }
      s += ")";
      if (filter) s += " FILTER (WHERE " + filter->ToString() + ")";
      return s;
    }
    case BoundExprKind::kCase: {
      std::string s = "CASE";
      for (const auto& [w, t] : when_clauses) {
        s += " WHEN " + w->ToString() + " THEN " + t->ToString();
      }
      if (else_expr) s += " ELSE " + else_expr->ToString();
      return s + " END";
    }
    case BoundExprKind::kCast:
      return StrCat("CAST(", operand->ToString(), " AS ",
                    TypeKindName(cast_to), ")");
    case BoundExprKind::kIsNull:
      return StrCat("(", operand->ToString(),
                    negated ? " IS NOT NULL)" : " IS NULL)");
    case BoundExprKind::kInList: {
      std::vector<std::string> parts;
      for (const auto& a : args) parts.push_back(a->ToString());
      return StrCat("(", operand->ToString(), negated ? " NOT IN (" : " IN (",
                    Join(parts, ", "), "))");
    }
    case BoundExprKind::kLike:
      return StrCat("(", operand->ToString(), negated ? " NOT LIKE " : " LIKE ",
                    args[0]->ToString(), ")");
    case BoundExprKind::kSubquery:
      return "(<subquery>)";
    case BoundExprKind::kInSubquery:
      return StrCat("(", operand->ToString(),
                    negated ? " NOT IN (<subquery>))" : " IN (<subquery>))");
    case BoundExprKind::kExists:
      return negated ? "NOT EXISTS(<subquery>)" : "EXISTS(<subquery>)";
    case BoundExprKind::kMeasureEval: {
      std::string s = name.empty() ? StrCat("measure#", measure_slot) : name;
      if (!modifiers.empty()) {
        std::vector<std::string> mods;
        for (const auto& m : modifiers) {
          switch (m.kind) {
            case AtModifier::Kind::kAll:
              mods.push_back("ALL");
              break;
            case AtModifier::Kind::kAllDims: {
              std::string d = "ALL";
              for (const auto& e : m.dims) d += " " + e->ToString();
              mods.push_back(d);
              break;
            }
            case AtModifier::Kind::kSet:
              mods.push_back(StrCat("SET ", m.set_dim->ToString(), " = ",
                                    m.set_value->ToString()));
              break;
            case AtModifier::Kind::kVisible:
              mods.push_back("VISIBLE");
              break;
            case AtModifier::Kind::kWhere:
              mods.push_back("WHERE " + m.predicate->ToString());
              break;
          }
        }
        s += " AT (" + Join(mods, " ") + ")";
      }
      return s;
    }
    case BoundExprKind::kCurrent:
      return "CURRENT " + current_dim->ToString();
    case BoundExprKind::kGroupingBit:
      return StrCat("GROUPING_BIT(", grouping_bit, ")");
    case BoundExprKind::kParam:
      return StrCat("$", param_index + 1);
  }
  return "?";
}

BoundExprPtr BoundExpr::Clone() const {
  auto e = std::make_unique<BoundExpr>();
  e->kind = kind;
  e->type = type;
  e->literal = literal;
  e->depth = depth;
  e->column = column;
  e->name = name;
  e->func = func;
  e->func_name = func_name;
  for (const auto& a : args) e->args.push_back(a->Clone());
  e->agg = agg;
  e->distinct = distinct;
  if (filter) e->filter = filter->Clone();
  for (const auto& [w, t] : when_clauses) {
    e->when_clauses.emplace_back(w->Clone(), t->Clone());
  }
  if (else_expr) e->else_expr = else_expr->Clone();
  if (operand) e->operand = operand->Clone();
  e->cast_to = cast_to;
  e->negated = negated;
  e->subplan = subplan;  // plans are immutable after binding; share
  for (const auto& f : free_vars) e->free_vars.push_back(f->Clone());
  e->measure_slot = measure_slot;
  for (const auto& m : modifiers) {
    BoundAtModifier mc;
    mc.kind = m.kind;
    for (const auto& d : m.dims) mc.dims.push_back(d->Clone());
    if (m.set_dim) mc.set_dim = m.set_dim->Clone();
    if (m.set_value) mc.set_value = m.set_value->Clone();
    if (m.predicate) mc.predicate = m.predicate->Clone();
    e->modifiers.push_back(std::move(mc));
  }
  if (current_dim) e->current_dim = current_dim->Clone();
  e->grouping_bit = grouping_bit;
  e->grouping_col = grouping_col;
  e->param_index = param_index;
  return e;
}

BoundExprPtr BLiteral(Value v) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kLiteral;
  e->type = DataType(v.kind());
  e->literal = std::move(v);
  return e;
}

BoundExprPtr BColumnRef(int depth, int column, std::string name,
                        DataType type) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kColumnRef;
  e->depth = depth;
  e->column = column;
  e->name = std::move(name);
  e->type = type;
  return e;
}

BoundExprPtr BFunc(FunctionId id, std::string name, DataType type,
                   std::vector<BoundExprPtr> args) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kFunc;
  e->func = id;
  e->func_name = std::move(name);
  e->type = type;
  e->args = std::move(args);
  return e;
}

BoundExprPtr BRowIndex() {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kRowIndex;
  e->type = DataType::Int64();
  return e;
}

bool ContainsNode(const BoundExpr& e,
                  const std::function<bool(const BoundExpr&)>& pred) {
  bool found = false;
  VisitNodes(e, [&](const BoundExpr& n) {
    if (pred(n)) found = true;
  });
  return found;
}

void VisitNodes(BoundExpr* e, const std::function<void(BoundExpr*)>& fn) {
  fn(e);
  for (auto& a : e->args) VisitNodes(a.get(), fn);
  if (e->filter) VisitNodes(e->filter.get(), fn);
  for (auto& [w, t] : e->when_clauses) {
    VisitNodes(w.get(), fn);
    VisitNodes(t.get(), fn);
  }
  if (e->else_expr) VisitNodes(e->else_expr.get(), fn);
  if (e->operand) VisitNodes(e->operand.get(), fn);
  for (auto& f : e->free_vars) VisitNodes(f.get(), fn);
  for (auto& m : e->modifiers) {
    for (auto& d : m.dims) VisitNodes(d.get(), fn);
    if (m.set_dim) VisitNodes(m.set_dim.get(), fn);
    if (m.set_value) VisitNodes(m.set_value.get(), fn);
    if (m.predicate) VisitNodes(m.predicate.get(), fn);
  }
  if (e->current_dim) VisitNodes(e->current_dim.get(), fn);
}

void VisitNodes(const BoundExpr& e,
                const std::function<void(const BoundExpr&)>& fn) {
  fn(e);
  for (const auto& a : e.args) VisitNodes(*a, fn);
  if (e.filter) VisitNodes(*e.filter, fn);
  for (const auto& [w, t] : e.when_clauses) {
    VisitNodes(*w, fn);
    VisitNodes(*t, fn);
  }
  if (e.else_expr) VisitNodes(*e.else_expr, fn);
  if (e.operand) VisitNodes(*e.operand, fn);
  for (const auto& f : e.free_vars) VisitNodes(*f, fn);
  for (const auto& m : e.modifiers) {
    for (const auto& d : m.dims) VisitNodes(*d, fn);
    if (m.set_dim) VisitNodes(*m.set_dim, fn);
    if (m.set_value) VisitNodes(*m.set_value, fn);
    if (m.predicate) VisitNodes(*m.predicate, fn);
  }
  if (e.current_dim) VisitNodes(*e.current_dim, fn);
}

}  // namespace msql

#ifndef MSQL_BINDER_BOUND_EXPR_H_
#define MSQL_BINDER_BOUND_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "binder/functions.h"
#include "common/types.h"
#include "common/value.h"
#include "parser/ast.h"

namespace msql {

struct LogicalPlan;  // plan/plan.h; plans and bound expressions are mutually
                     // recursive (scalar subqueries hold plans).

struct BoundExpr;
using BoundExprPtr = std::unique_ptr<BoundExpr>;

// Bound (resolved, typed) expression kinds. Aggregate calls (kAgg) appear
// only inside Aggregate plan nodes, window definitions, and measure
// formulas, never in expressions evaluated row-at-a-time.
enum class BoundExprKind {
  kLiteral,
  kColumnRef,    // (depth, column): depth 0 = innermost row scope
  kRowIndex,     // index of the current depth-0 row within its relation;
                 // materializes the hidden row-id column of measure sources
  kFunc,         // scalar function / operator
  kAgg,          // aggregate call (SUM(revenue), COUNT(*), ...)
  kCase,
  kCast,
  kIsNull,
  kInList,
  kLike,
  kSubquery,     // scalar subquery
  kInSubquery,
  kExists,
  kMeasureEval,  // a context-sensitive measure evaluation (paper section 3.4)
  kCurrent,      // CURRENT dim inside an AT modifier
  kGroupingBit,  // GROUPING(expr) lowered to a bit of the grouping id column
  kParam,        // positional `?` parameter, read from ExecState::params
};

// A bound AT-modifier (paper table 3). Binding conventions:
//  * `dims` / `set_dim` are bound against the measure provider's scope
//    (depth 0 = the relation in FROM that carries the measure); at runtime
//    they are translated through the measure's provenance onto its source.
//  * `set_value` is bound against the call-site scope stack and may contain
//    kCurrent nodes, resolved against the incoming evaluation context.
//  * `predicate` is bound with depth 0 = the measure's *source* schema and
//    depth >= 1 = the call-site scopes (correlations), which are closed over
//    (replaced by literals) when the context is built.
struct BoundAtModifier {
  AtModifier::Kind kind = AtModifier::Kind::kAll;
  std::vector<BoundExprPtr> dims;
  BoundExprPtr set_dim;
  BoundExprPtr set_value;
  BoundExprPtr predicate;
};

struct BoundExpr {
  BoundExprKind kind = BoundExprKind::kLiteral;
  DataType type;

  // kLiteral
  Value literal;

  // kColumnRef
  int depth = 0;
  int column = -1;
  std::string name;  // for printing / signatures

  // kFunc
  FunctionId func = FunctionId::kInvalid;
  std::string func_name;
  std::vector<BoundExprPtr> args;  // also kAgg / kCase WHENs / kInList items

  // kAgg
  AggId agg = AggId::kInvalid;
  bool distinct = false;
  BoundExprPtr filter;  // FILTER (WHERE ...)

  // kCase: operand-less form only (the binder desugars the operand form).
  std::vector<std::pair<BoundExprPtr, BoundExprPtr>> when_clauses;
  BoundExprPtr else_expr;

  // kCast / kIsNull / kLike / kInList operand, kLike pattern is args[0].
  BoundExprPtr operand;
  TypeKind cast_to = TypeKind::kNull;
  bool negated = false;

  // kSubquery / kInSubquery / kExists
  std::shared_ptr<LogicalPlan> subplan;
  // Correlated column refs in the subplan, expressed relative to *this*
  // expression's scope stack (depth 0 = the row being evaluated). Used as
  // the memoization key for repeated correlated evaluations.
  std::vector<BoundExprPtr> free_vars;

  // kMeasureEval: measure `measure_slot` of the depth-`depth` scope's
  // relation, with `modifiers` applied left to right.
  int measure_slot = -1;
  std::vector<BoundAtModifier> modifiers;

  // kCurrent
  BoundExprPtr current_dim;  // dim handle, provider-scope expression

  // kGroupingBit
  int grouping_bit = 0;
  int grouping_col = -1;  // column holding the grouping id

  // kParam: zero-based index into the execution-time parameter row.
  int param_index = -1;

  BoundExpr();
  ~BoundExpr();
  BoundExpr(const BoundExpr&) = delete;
  BoundExpr& operator=(const BoundExpr&) = delete;
  BoundExpr(BoundExpr&&) = default;
  BoundExpr& operator=(BoundExpr&&) = default;

  BoundExprPtr Clone() const;

  // Canonical rendering. Used for EXPLAIN, group-key matching and evaluation
  // context signatures ("YEAR(orderDate)" etc.), so it must be deterministic.
  std::string ToString() const;
};

// Convenience constructors.
BoundExprPtr BLiteral(Value v);
BoundExprPtr BColumnRef(int depth, int column, std::string name, DataType type);
BoundExprPtr BFunc(FunctionId id, std::string name, DataType type,
                   std::vector<BoundExprPtr> args);
BoundExprPtr BRowIndex();

// True if the expression (recursively) contains a node satisfying `pred`.
bool ContainsNode(const BoundExpr& e,
                  const std::function<bool(const BoundExpr&)>& pred);

// Applies `fn` to every node (pre-order, mutable).
void VisitNodes(BoundExpr* e, const std::function<void(BoundExpr*)>& fn);
void VisitNodes(const BoundExpr& e,
                const std::function<void(const BoundExpr&)>& fn);

}  // namespace msql

#endif  // MSQL_BINDER_BOUND_EXPR_H_

#include "binder/functions.h"

#include <cmath>
#include <unordered_map>

#include "common/date.h"
#include "common/string_util.h"

namespace msql {

namespace {

Status WrongArity(const std::string& name, size_t got, const char* want) {
  return Status(ErrorCode::kBind,
                StrCat("function ", name, " expects ", want, " argument(s), got ",
                       got));
}

bool AllNumeric(const std::vector<DataType>& args) {
  for (const auto& t : args) {
    if (!t.is_numeric() && t.kind != TypeKind::kNull) return false;
  }
  return true;
}

}  // namespace

const char* AggIdName(AggId id) {
  switch (id) {
    case AggId::kSum: return "SUM";
    case AggId::kCount: return "COUNT";
    case AggId::kCountStar: return "COUNT";
    case AggId::kAvg: return "AVG";
    case AggId::kMin: return "MIN";
    case AggId::kMax: return "MAX";
    case AggId::kStddev: return "STDDEV";
    case AggId::kVariance: return "VARIANCE";
    case AggId::kMinBy: return "MIN_BY";
    case AggId::kMaxBy: return "MAX_BY";
    case AggId::kRowNumber: return "ROW_NUMBER";
    case AggId::kRank: return "RANK";
    default: return "?";
  }
}

FunctionId LookupScalarFunction(const std::string& name) {
  static const auto* kMap = new std::unordered_map<std::string, FunctionId>{
      {"YEAR", FunctionId::kYear},
      {"MONTH", FunctionId::kMonth},
      {"DAY", FunctionId::kDay},
      {"DAYOFMONTH", FunctionId::kDay},
      {"QUARTER", FunctionId::kQuarter},
      {"DAYOFWEEK", FunctionId::kDayOfWeek},
      {"FLOOR", FunctionId::kFloor},
      {"CEIL", FunctionId::kCeil},
      {"CEILING", FunctionId::kCeil},
      {"ABS", FunctionId::kAbs},
      {"ROUND", FunctionId::kRound},
      {"MOD", FunctionId::kMod},
      {"POWER", FunctionId::kPower},
      {"POW", FunctionId::kPower},
      {"SQRT", FunctionId::kSqrt},
      {"LN", FunctionId::kLn},
      {"EXP", FunctionId::kExp},
      {"LOG10", FunctionId::kLog10},
      {"SIGN", FunctionId::kSign},
      {"TRUNC", FunctionId::kTrunc},
      {"UPPER", FunctionId::kUpper},
      {"LOWER", FunctionId::kLower},
      {"LENGTH", FunctionId::kLength},
      {"SUBSTR", FunctionId::kSubstr},
      {"SUBSTRING", FunctionId::kSubstr},
      {"CONCAT", FunctionId::kConcat},
      {"TRIM", FunctionId::kTrimFn},
      {"REPLACE", FunctionId::kReplaceFn},
      {"COALESCE", FunctionId::kCoalesce},
      {"NULLIF", FunctionId::kNullIf},
      {"IF", FunctionId::kIf},
      {"IIF", FunctionId::kIf},
      {"GREATEST", FunctionId::kGreatest},
      {"LEAST", FunctionId::kLeast},
  };
  auto it = kMap->find(ToUpper(name));
  return it == kMap->end() ? FunctionId::kInvalid : it->second;
}

AggId LookupAggFunction(const std::string& name) {
  static const auto* kMap = new std::unordered_map<std::string, AggId>{
      {"SUM", AggId::kSum},           {"COUNT", AggId::kCount},
      {"AVG", AggId::kAvg},           {"MIN", AggId::kMin},
      {"MAX", AggId::kMax},           {"STDDEV", AggId::kStddev},
      {"STDDEV_SAMP", AggId::kStddev},{"VARIANCE", AggId::kVariance},
      {"VAR_SAMP", AggId::kVariance}, {"MIN_BY", AggId::kMinBy},
      {"MAX_BY", AggId::kMaxBy},      {"ARG_MIN", AggId::kMinBy},
      {"ARG_MAX", AggId::kMaxBy},     {"ROW_NUMBER", AggId::kRowNumber},
      {"RANK", AggId::kRank},
  };
  auto it = kMap->find(ToUpper(name));
  return it == kMap->end() ? AggId::kInvalid : it->second;
}

bool IsWindowOnly(AggId id) {
  return id == AggId::kRowNumber || id == AggId::kRank;
}

Result<DataType> ScalarResultType(FunctionId id, const std::string& name,
                                  const std::vector<DataType>& args) {
  auto require = [&](size_t n) -> Status {
    if (args.size() != n) {
      return WrongArity(name, args.size(), StrCat(n).c_str());
    }
    return Status::Ok();
  };
  switch (id) {
    case FunctionId::kOpAdd:
    case FunctionId::kOpSub:
    case FunctionId::kOpMul: {
      MSQL_RETURN_IF_ERROR(require(2));
      // DATE +/- INTEGER arithmetic.
      if (args[0].kind == TypeKind::kDate || args[1].kind == TypeKind::kDate) {
        if (id == FunctionId::kOpSub && args[0].kind == TypeKind::kDate &&
            args[1].kind == TypeKind::kDate) {
          return DataType::Int64();
        }
        return DataType::Date();
      }
      if (!AllNumeric(args)) {
        return Status(ErrorCode::kBind,
                      StrCat("operator ", name, " requires numeric operands"));
      }
      if (args[0].kind == TypeKind::kDouble || args[1].kind == TypeKind::kDouble)
        return DataType::Double();
      return DataType::Int64();
    }
    case FunctionId::kOpDiv:
      MSQL_RETURN_IF_ERROR(require(2));
      if (!AllNumeric(args)) {
        return Status(ErrorCode::kBind, "operator / requires numeric operands");
      }
      // SQL engines differ; like the paper's examples (profit margins from
      // integer columns), we use exact division producing DOUBLE.
      return DataType::Double();
    case FunctionId::kOpMod:
    case FunctionId::kMod:
      MSQL_RETURN_IF_ERROR(require(2));
      return DataType::Int64();
    case FunctionId::kOpConcat:
    case FunctionId::kConcat:
      if (args.empty()) return WrongArity(name, 0, ">=1");
      return DataType::String();
    case FunctionId::kOpEq:
    case FunctionId::kOpNe:
    case FunctionId::kOpLt:
    case FunctionId::kOpLe:
    case FunctionId::kOpGt:
    case FunctionId::kOpGe:
    case FunctionId::kOpIsDistinctFrom:
    case FunctionId::kOpIsNotDistinctFrom:
      MSQL_RETURN_IF_ERROR(require(2));
      return DataType::Bool();
    case FunctionId::kOpAnd:
    case FunctionId::kOpOr:
      MSQL_RETURN_IF_ERROR(require(2));
      return DataType::Bool();
    case FunctionId::kOpNot:
      MSQL_RETURN_IF_ERROR(require(1));
      return DataType::Bool();
    case FunctionId::kOpNeg:
      MSQL_RETURN_IF_ERROR(require(1));
      return args[0].ValueType();
    case FunctionId::kYear:
    case FunctionId::kMonth:
    case FunctionId::kDay:
    case FunctionId::kQuarter:
    case FunctionId::kDayOfWeek:
      MSQL_RETURN_IF_ERROR(require(1));
      if (args[0].kind != TypeKind::kDate && args[0].kind != TypeKind::kNull) {
        return Status(ErrorCode::kBind,
                      StrCat("function ", name, " requires a DATE argument"));
      }
      return DataType::Int64();
    case FunctionId::kFloor:
    case FunctionId::kCeil:
    case FunctionId::kRound:
    case FunctionId::kTrunc:
    case FunctionId::kSign:
      if (args.size() != 1 && !(args.size() == 2 && id == FunctionId::kRound)) {
        return WrongArity(name, args.size(), "1");
      }
      return args[0].kind == TypeKind::kDouble ? DataType::Double()
                                               : DataType::Int64();
    case FunctionId::kAbs:
      MSQL_RETURN_IF_ERROR(require(1));
      return args[0].ValueType();
    case FunctionId::kPower:
      MSQL_RETURN_IF_ERROR(require(2));
      return DataType::Double();
    case FunctionId::kSqrt:
    case FunctionId::kLn:
    case FunctionId::kExp:
    case FunctionId::kLog10:
      MSQL_RETURN_IF_ERROR(require(1));
      return DataType::Double();
    case FunctionId::kUpper:
    case FunctionId::kLower:
    case FunctionId::kTrimFn:
      MSQL_RETURN_IF_ERROR(require(1));
      return DataType::String();
    case FunctionId::kReplaceFn:
      MSQL_RETURN_IF_ERROR(require(3));
      return DataType::String();
    case FunctionId::kLength:
      MSQL_RETURN_IF_ERROR(require(1));
      return DataType::Int64();
    case FunctionId::kSubstr:
      if (args.size() != 2 && args.size() != 3) {
        return WrongArity(name, args.size(), "2 or 3");
      }
      return DataType::String();
    case FunctionId::kCoalesce:
    case FunctionId::kGreatest:
    case FunctionId::kLeast: {
      if (args.empty()) return WrongArity(name, 0, ">=1");
      DataType t = args[0];
      for (size_t i = 1; i < args.size(); ++i) t = CommonType(t, args[i]);
      return t;
    }
    case FunctionId::kNullIf:
      MSQL_RETURN_IF_ERROR(require(2));
      return args[0].ValueType();
    case FunctionId::kIf: {
      MSQL_RETURN_IF_ERROR(require(3));
      return CommonType(args[1], args[2]);
    }
    case FunctionId::kInvalid:
      break;
  }
  return Status(ErrorCode::kBind, "unknown function " + name);
}

Result<DataType> AggResultType(AggId id, const std::string& name,
                               const std::vector<DataType>& args) {
  switch (id) {
    case AggId::kCountStar:
      return DataType::Int64();
    case AggId::kCount:
      if (args.size() != 1) return WrongArity(name, args.size(), "1");
      return DataType::Int64();
    case AggId::kSum:
      if (args.size() != 1) return WrongArity(name, args.size(), "1");
      if (!AllNumeric(args)) {
        return Status(ErrorCode::kBind, "SUM requires a numeric argument");
      }
      return args[0].kind == TypeKind::kDouble ? DataType::Double()
                                               : DataType::Int64();
    case AggId::kAvg:
    case AggId::kStddev:
    case AggId::kVariance:
      if (args.size() != 1) return WrongArity(name, args.size(), "1");
      if (!AllNumeric(args)) {
        return Status(ErrorCode::kBind,
                      StrCat(name, " requires a numeric argument"));
      }
      return DataType::Double();
    case AggId::kMin:
    case AggId::kMax:
      if (args.size() != 1) return WrongArity(name, args.size(), "1");
      return args[0].ValueType();
    case AggId::kMinBy:
    case AggId::kMaxBy:
      if (args.size() != 2) return WrongArity(name, args.size(), "2");
      return args[0].ValueType();
    case AggId::kRowNumber:
    case AggId::kRank:
      if (!args.empty()) return WrongArity(name, args.size(), "0");
      return DataType::Int64();
    case AggId::kInvalid:
      break;
  }
  return Status(ErrorCode::kBind, "unknown aggregate function " + name);
}

Result<Value> EvalScalarFunction(FunctionId id,
                                 const std::vector<Value>& args) {
  // Functions that define their own NULL handling.
  switch (id) {
    case FunctionId::kOpAnd: {
      // Three-valued logic.
      const Value& a = args[0];
      const Value& b = args[1];
      if (!a.is_null() && !a.bool_val()) return Value::Bool(false);
      if (!b.is_null() && !b.bool_val()) return Value::Bool(false);
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value::Bool(true);
    }
    case FunctionId::kOpOr: {
      const Value& a = args[0];
      const Value& b = args[1];
      if (!a.is_null() && a.bool_val()) return Value::Bool(true);
      if (!b.is_null() && b.bool_val()) return Value::Bool(true);
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value::Bool(false);
    }
    case FunctionId::kOpNot:
      if (args[0].is_null()) return Value::Null();
      return Value::Bool(!args[0].bool_val());
    case FunctionId::kOpIsDistinctFrom:
      return Value::Bool(!Value::NotDistinct(args[0], args[1]));
    case FunctionId::kOpIsNotDistinctFrom:
      return Value::Bool(Value::NotDistinct(args[0], args[1]));
    case FunctionId::kCoalesce:
      for (const Value& v : args) {
        if (!v.is_null()) return v;
      }
      return Value::Null();
    case FunctionId::kIf:
      if (!args[0].is_null() && args[0].bool_val()) return args[1];
      return args[2];
    case FunctionId::kNullIf:
      if (!args[0].is_null() && !args[1].is_null() &&
          Value::NotDistinct(args[0], args[1])) {
        return Value::Null();
      }
      return args[0];
    default:
      break;
  }

  // Default NULL propagation.
  for (const Value& v : args) {
    if (v.is_null()) return Value::Null();
  }

  switch (id) {
    case FunctionId::kOpAdd:
      if (args[0].kind() == TypeKind::kDate) {
        return Value::Date(args[0].date_days() + args[1].int_val());
      }
      if (args[1].kind() == TypeKind::kDate) {
        return Value::Date(args[1].date_days() + args[0].int_val());
      }
      if (args[0].kind() == TypeKind::kInt64 &&
          args[1].kind() == TypeKind::kInt64) {
        return Value::Int(args[0].int_val() + args[1].int_val());
      }
      return Value::Double(args[0].AsDouble() + args[1].AsDouble());
    case FunctionId::kOpSub:
      if (args[0].kind() == TypeKind::kDate &&
          args[1].kind() == TypeKind::kDate) {
        return Value::Int(args[0].date_days() - args[1].date_days());
      }
      if (args[0].kind() == TypeKind::kDate) {
        return Value::Date(args[0].date_days() - args[1].int_val());
      }
      if (args[0].kind() == TypeKind::kInt64 &&
          args[1].kind() == TypeKind::kInt64) {
        return Value::Int(args[0].int_val() - args[1].int_val());
      }
      return Value::Double(args[0].AsDouble() - args[1].AsDouble());
    case FunctionId::kOpMul:
      if (args[0].kind() == TypeKind::kInt64 &&
          args[1].kind() == TypeKind::kInt64) {
        return Value::Int(args[0].int_val() * args[1].int_val());
      }
      return Value::Double(args[0].AsDouble() * args[1].AsDouble());
    case FunctionId::kOpDiv: {
      double divisor = args[1].AsDouble();
      if (divisor == 0) {
        return Status(ErrorCode::kExecution, "division by zero");
      }
      return Value::Double(args[0].AsDouble() / divisor);
    }
    case FunctionId::kOpMod:
    case FunctionId::kMod: {
      MSQL_ASSIGN_OR_RETURN(Value a, args[0].CastTo(TypeKind::kInt64));
      MSQL_ASSIGN_OR_RETURN(Value b, args[1].CastTo(TypeKind::kInt64));
      if (b.int_val() == 0) {
        return Status(ErrorCode::kExecution, "division by zero in MOD");
      }
      return Value::Int(a.int_val() % b.int_val());
    }
    case FunctionId::kOpConcat:
    case FunctionId::kConcat: {
      std::string s;
      for (const Value& v : args) s += v.ToString();
      return Value::String(s);
    }
    case FunctionId::kOpEq:
      return Value::Bool(Value::NotDistinct(args[0], args[1]));
    case FunctionId::kOpNe:
      return Value::Bool(!Value::NotDistinct(args[0], args[1]));
    case FunctionId::kOpLt:
      return Value::Bool(Value::Compare(args[0], args[1]) < 0);
    case FunctionId::kOpLe:
      return Value::Bool(Value::Compare(args[0], args[1]) <= 0);
    case FunctionId::kOpGt:
      return Value::Bool(Value::Compare(args[0], args[1]) > 0);
    case FunctionId::kOpGe:
      return Value::Bool(Value::Compare(args[0], args[1]) >= 0);
    case FunctionId::kOpNeg:
      if (args[0].kind() == TypeKind::kInt64) {
        return Value::Int(-args[0].int_val());
      }
      return Value::Double(-args[0].AsDouble());
    case FunctionId::kYear:
      return Value::Int(YearOfDate(args[0].date_days()));
    case FunctionId::kMonth:
      return Value::Int(MonthOfDate(args[0].date_days()));
    case FunctionId::kDay:
      return Value::Int(DayOfDate(args[0].date_days()));
    case FunctionId::kQuarter:
      return Value::Int(QuarterOfDate(args[0].date_days()));
    case FunctionId::kDayOfWeek:
      return Value::Int(DayOfWeek(args[0].date_days()));
    case FunctionId::kFloor:
      if (args[0].kind() == TypeKind::kInt64) return args[0];
      return Value::Double(std::floor(args[0].AsDouble()));
    case FunctionId::kCeil:
      if (args[0].kind() == TypeKind::kInt64) return args[0];
      return Value::Double(std::ceil(args[0].AsDouble()));
    case FunctionId::kAbs:
      if (args[0].kind() == TypeKind::kInt64) {
        return Value::Int(std::llabs(args[0].int_val()));
      }
      return Value::Double(std::fabs(args[0].AsDouble()));
    case FunctionId::kRound: {
      double scale = 1;
      if (args.size() == 2) scale = std::pow(10.0, args[1].AsDouble());
      if (args[0].kind() == TypeKind::kInt64 && args.size() == 1) {
        return args[0];
      }
      return Value::Double(std::round(args[0].AsDouble() * scale) / scale);
    }
    case FunctionId::kTrunc:
      if (args[0].kind() == TypeKind::kInt64) return args[0];
      return Value::Double(std::trunc(args[0].AsDouble()));
    case FunctionId::kSign: {
      double v = args[0].AsDouble();
      return Value::Int(v > 0 ? 1 : v < 0 ? -1 : 0);
    }
    case FunctionId::kPower:
      return Value::Double(std::pow(args[0].AsDouble(), args[1].AsDouble()));
    case FunctionId::kSqrt: {
      double v = args[0].AsDouble();
      if (v < 0) return Status(ErrorCode::kExecution, "SQRT of negative value");
      return Value::Double(std::sqrt(v));
    }
    case FunctionId::kLn: {
      double v = args[0].AsDouble();
      if (v <= 0) return Status(ErrorCode::kExecution, "LN of non-positive value");
      return Value::Double(std::log(v));
    }
    case FunctionId::kExp:
      return Value::Double(std::exp(args[0].AsDouble()));
    case FunctionId::kLog10: {
      double v = args[0].AsDouble();
      if (v <= 0) {
        return Status(ErrorCode::kExecution, "LOG10 of non-positive value");
      }
      return Value::Double(std::log10(v));
    }
    case FunctionId::kUpper:
      return Value::String(ToUpper(args[0].str()));
    case FunctionId::kLower:
      return Value::String(ToLower(args[0].str()));
    case FunctionId::kTrimFn:
      return Value::String(Trim(args[0].str()));
    case FunctionId::kReplaceFn: {
      std::string s = args[0].str();
      const std::string& from = args[1].str();
      const std::string& to = args[2].str();
      if (!from.empty()) {
        size_t pos = 0;
        while ((pos = s.find(from, pos)) != std::string::npos) {
          s.replace(pos, from.size(), to);
          pos += to.size();
        }
      }
      return Value::String(s);
    }
    case FunctionId::kLength:
      return Value::Int(static_cast<int64_t>(args[0].str().size()));
    case FunctionId::kSubstr: {
      const std::string& s = args[0].str();
      int64_t start = args[1].int_val();  // 1-based
      int64_t len = args.size() == 3 ? args[2].int_val()
                                     : static_cast<int64_t>(s.size());
      if (start < 1) start = 1;
      if (start > static_cast<int64_t>(s.size()) || len <= 0) {
        return Value::String("");
      }
      return Value::String(s.substr(static_cast<size_t>(start - 1),
                                    static_cast<size_t>(len)));
    }
    case FunctionId::kGreatest: {
      Value best = args[0];
      for (size_t i = 1; i < args.size(); ++i) {
        if (Value::Compare(args[i], best) > 0) best = args[i];
      }
      return best;
    }
    case FunctionId::kLeast: {
      Value best = args[0];
      for (size_t i = 1; i < args.size(); ++i) {
        if (Value::Compare(args[i], best) < 0) best = args[i];
      }
      return best;
    }
    default:
      break;
  }
  return Status(ErrorCode::kExecution, "unhandled scalar function");
}

Status AggAccumulator::Accumulate(const std::vector<Value>& args) {
  switch (id_) {
    case AggId::kCountStar:
      ++count_;
      return Status::Ok();
    case AggId::kCount:
      if (!args[0].is_null()) ++count_;
      return Status::Ok();
    case AggId::kSum:
      if (args[0].is_null()) return Status::Ok();
      has_value_ = true;
      if (args[0].kind() == TypeKind::kDouble) any_double_ = true;
      if (args[0].kind() == TypeKind::kInt64) {
        isum_ += args[0].int_val();
      }
      sum_ += args[0].AsDouble();
      return Status::Ok();
    case AggId::kAvg:
    case AggId::kStddev:
    case AggId::kVariance:
      if (args[0].is_null()) return Status::Ok();
      has_value_ = true;
      ++count_;
      sum_ += args[0].AsDouble();
      sum_sq_ += args[0].AsDouble() * args[0].AsDouble();
      return Status::Ok();
    case AggId::kMin:
      if (args[0].is_null()) return Status::Ok();
      if (!has_value_ || Value::Compare(args[0], extreme_) < 0) {
        extreme_ = args[0];
      }
      has_value_ = true;
      return Status::Ok();
    case AggId::kMax:
      if (args[0].is_null()) return Status::Ok();
      if (!has_value_ || Value::Compare(args[0], extreme_) > 0) {
        extreme_ = args[0];
      }
      has_value_ = true;
      return Status::Ok();
    case AggId::kMinBy:
    case AggId::kMaxBy: {
      if (args[1].is_null()) return Status::Ok();
      int cmp = has_value_ ? Value::Compare(args[1], extreme_) : 0;
      bool better = !has_value_ ||
                    (id_ == AggId::kMinBy ? cmp < 0 : cmp > 0);
      if (better) {
        extreme_ = args[1];
        extreme_val_ = args[0];
      }
      has_value_ = true;
      return Status::Ok();
    }
    default:
      return Status(ErrorCode::kExecution,
                    "window-only function used as aggregate");
  }
}

Value AggAccumulator::Finish() const {
  switch (id_) {
    case AggId::kCountStar:
    case AggId::kCount:
      return Value::Int(count_);
    case AggId::kSum:
      if (!has_value_) return Value::Null();
      return any_double_ ? Value::Double(sum_) : Value::Int(isum_);
    case AggId::kAvg:
      if (count_ == 0) return Value::Null();
      return Value::Double(sum_ / static_cast<double>(count_));
    case AggId::kStddev:
    case AggId::kVariance: {
      if (count_ < 2) return Value::Null();
      double n = static_cast<double>(count_);
      double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
      if (var < 0) var = 0;  // numerical noise
      return Value::Double(id_ == AggId::kStddev ? std::sqrt(var) : var);
    }
    case AggId::kMin:
    case AggId::kMax:
      return has_value_ ? extreme_ : Value::Null();
    case AggId::kMinBy:
    case AggId::kMaxBy:
      return has_value_ ? extreme_val_ : Value::Null();
    default:
      return Value::Null();
  }
}

}  // namespace msql

#ifndef MSQL_BINDER_FUNCTIONS_H_
#define MSQL_BINDER_FUNCTIONS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/value.h"

namespace msql {

// Built-in scalar operations. Binary/unary operators are lowered to these as
// well, so the evaluator has a single dispatch point.
enum class FunctionId {
  kInvalid = 0,
  // Operators.
  kOpAdd, kOpSub, kOpMul, kOpDiv, kOpMod, kOpConcat,
  kOpEq, kOpNe, kOpLt, kOpLe, kOpGt, kOpGe,
  kOpAnd, kOpOr, kOpNot, kOpNeg,
  kOpIsDistinctFrom, kOpIsNotDistinctFrom,
  // Date functions.
  kYear, kMonth, kDay, kQuarter, kDayOfWeek,
  // Math.
  kFloor, kCeil, kAbs, kRound, kMod, kPower, kSqrt, kLn, kExp, kLog10,
  kSign, kTrunc,
  // Strings.
  kUpper, kLower, kLength, kSubstr, kConcat, kTrimFn, kReplaceFn,
  // Conditionals.
  kCoalesce, kNullIf, kIf, kGreatest, kLeast,
};

// Aggregate functions (also usable as window functions over a partition).
enum class AggId {
  kInvalid = 0,
  kSum, kCount, kCountStar, kAvg, kMin, kMax,
  kStddev,    // sample standard deviation
  kVariance,  // sample variance
  kMinBy, kMaxBy,  // ARG_MIN / ARG_MAX: value of arg0 at the extremum of arg1
  // Pure window functions (invalid as plain aggregates).
  kRowNumber, kRank,
};

const char* AggIdName(AggId id);

// Resolves a scalar function by (case-insensitive) name; kInvalid if unknown.
FunctionId LookupScalarFunction(const std::string& name);

// Resolves an aggregate function by name; kInvalid if unknown.
AggId LookupAggFunction(const std::string& name);

// True for window-only functions (ROW_NUMBER, RANK).
bool IsWindowOnly(AggId id);

// Result type of a scalar function for the given argument types; checks
// arity. Operators are included.
Result<DataType> ScalarResultType(FunctionId id, const std::string& name,
                                  const std::vector<DataType>& args);

// Result type of an aggregate call.
Result<DataType> AggResultType(AggId id, const std::string& name,
                               const std::vector<DataType>& args);

// Evaluates a scalar function over already-computed argument values.
// SQL NULL propagation is applied here (except for the functions that
// handle NULLs themselves: COALESCE, IF, AND/OR, IS [NOT] DISTINCT FROM...).
Result<Value> EvalScalarFunction(FunctionId id, const std::vector<Value>& args);

// Incremental aggregate accumulator.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggId id) : id_(id) {}

  // arg values for this row (empty for COUNT(*)).
  Status Accumulate(const std::vector<Value>& args);

  Value Finish() const;

 private:
  AggId id_;
  int64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  bool any_double_ = false;
  int64_t isum_ = 0;
  Value extreme_;      // MIN / MAX / MIN_BY / MAX_BY key
  Value extreme_val_;  // MIN_BY / MAX_BY payload
  bool has_value_ = false;
};

}  // namespace msql

#endif  // MSQL_BINDER_FUNCTIONS_H_

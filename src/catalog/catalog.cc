#include "catalog/catalog.h"

#include <mutex>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace msql {

std::string Catalog::Key(const std::string& name) { return ToLower(name); }

Status Catalog::CreateTable(const std::string& name, Schema schema,
                            bool if_not_exists, const std::string& owner) {
  MSQL_FAULT_POINT("catalog.create_table");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Key(name));
  if (it != entries_.end()) {
    if (if_not_exists) return Status::Ok();
    return Status(ErrorCode::kCatalog, "object '" + name + "' already exists");
  }
  auto entry = std::make_shared<CatalogEntry>();
  entry->kind = CatalogEntry::Kind::kTable;
  entry->name = name;
  entry->table = std::make_shared<Table>(name, std::move(schema));
  entry->owner = owner;
  entries_.emplace(Key(name), std::move(entry));
  BumpGeneration();
  return Status::Ok();
}

Status Catalog::CreateView(const std::string& name, SelectStmtPtr ast,
                           bool or_replace, const std::string& owner) {
  MSQL_FAULT_POINT("catalog.create_view");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Key(name));
  if (it != entries_.end()) {
    if (!or_replace || it->second->kind != CatalogEntry::Kind::kView) {
      return Status(ErrorCode::kCatalog,
                    "object '" + name + "' already exists");
    }
    // Republish a fresh immutable entry; running queries keep the old one.
    auto entry = std::make_shared<CatalogEntry>(*it->second);
    entry->view_ast = std::move(ast);
    it->second = std::move(entry);
    BumpGeneration();
    return Status::Ok();
  }
  auto entry = std::make_shared<CatalogEntry>();
  entry->kind = CatalogEntry::Kind::kView;
  entry->name = name;
  entry->view_ast = std::move(ast);
  entry->owner = owner;
  entries_.emplace(Key(name), std::move(entry));
  BumpGeneration();
  return Status::Ok();
}

Status Catalog::Drop(const std::string& name, bool is_view, bool if_exists) {
  MSQL_FAULT_POINT("catalog.drop");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Key(name));
  if (it == entries_.end()) {
    if (if_exists) return Status::Ok();
    return Status(ErrorCode::kCatalog, "object '" + name + "' does not exist");
  }
  const bool entry_is_view = it->second->kind == CatalogEntry::Kind::kView;
  if (entry_is_view != is_view) {
    return Status(ErrorCode::kCatalog,
                  StrCat("'", name, "' is a ",
                         entry_is_view ? "view" : "table", ", not a ",
                         is_view ? "view" : "table"));
  }
  entries_.erase(it);
  BumpGeneration();
  return Status::Ok();
}

Catalog::EntryPtr Catalog::Find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Key(name));
  return it == entries_.end() ? nullptr : it->second;
}

Status Catalog::CheckAccess(const CatalogEntry& entry,
                            const std::string& user) const {
  if (user.empty() || entry.owner.empty() || entry.owner == user ||
      entry.grantees.count(user) > 0) {
    return Status::Ok();
  }
  return Status(ErrorCode::kPermission,
                StrCat("user '", user, "' may not access '", entry.name, "'"));
}

Status Catalog::Grant(const std::string& object, const std::string& user) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Key(object));
  if (it == entries_.end()) {
    return Status(ErrorCode::kCatalog,
                  "object '" + object + "' does not exist");
  }
  auto entry = std::make_shared<CatalogEntry>(*it->second);
  entry->grantees.insert(user);
  it->second = std::move(entry);
  BumpGeneration();
  return Status::Ok();
}

std::vector<std::string> Catalog::ListNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [key, entry] : entries_) names.push_back(entry->name);
  return names;
}

}  // namespace msql

#ifndef MSQL_CATALOG_CATALOG_H_
#define MSQL_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/status.h"
#include "parser/ast.h"

namespace msql {

// A catalog object is either a base table or a view (stored as its defining
// SELECT's AST; views are expanded at bind time, so views naturally carry
// measures).
struct CatalogEntry {
  enum class Kind { kTable, kView };
  Kind kind;
  std::string name;
  std::shared_ptr<Table> table;     // kTable
  SelectStmtPtr view_ast;           // kView
  std::string owner;                // creator; empty = no access control
  std::set<std::string> grantees;   // users allowed to reference the object
};

// Name -> object map with a minimal grant-based security model, enough to
// demonstrate the paper's section 5.5 claim: a user can be granted a view
// with measures without access to the underlying tables; the view executes
// with definer's rights.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status CreateTable(const std::string& name, Schema schema,
                     bool if_not_exists, const std::string& owner);
  Status CreateView(const std::string& name, SelectStmtPtr ast,
                    bool or_replace, const std::string& owner);
  Status Drop(const std::string& name, bool is_view, bool if_exists);

  // Looks the object up (case-insensitive). nullptr if missing.
  const CatalogEntry* Find(const std::string& name) const;
  CatalogEntry* FindMutable(const std::string& name);

  // Access check: succeeds when `user` is empty (access control off), the
  // object has no owner, the user is the owner, or the user was granted.
  Status CheckAccess(const CatalogEntry& entry, const std::string& user) const;

  // Grants `user` access to `object`.
  Status Grant(const std::string& object, const std::string& user);

  std::vector<std::string> ListNames() const;

 private:
  static std::string Key(const std::string& name);
  std::map<std::string, CatalogEntry> entries_;
};

}  // namespace msql

#endif  // MSQL_CATALOG_CATALOG_H_

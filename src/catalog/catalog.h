#ifndef MSQL_CATALOG_CATALOG_H_
#define MSQL_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/status.h"
#include "parser/ast.h"

namespace msql {

// A catalog object is either a base table or a view (stored as its defining
// SELECT's AST; views are expanded at bind time, so views naturally carry
// measures).
//
// Published entries are immutable: every catalog mutation (CREATE OR
// REPLACE, GRANT, DROP) builds a fresh entry and swaps the registry slot, so
// a reader holding a snapshot never observes a torn entry. Table *data* is
// the one shared mutable component; Table synchronizes internally and hands
// out copy-on-write row snapshots.
struct CatalogEntry {
  enum class Kind { kTable, kView };
  Kind kind;
  std::string name;
  std::shared_ptr<Table> table;                // kTable
  std::shared_ptr<const SelectStmt> view_ast;  // kView
  std::string owner;                // creator; empty = no access control
  std::set<std::string> grantees;   // users allowed to reference the object
};

// Name -> object map with a minimal grant-based security model, enough to
// demonstrate the paper's section 5.5 claim: a user can be granted a view
// with measures without access to the underlying tables; the view executes
// with definer's rights.
//
// Thread safety: all methods may be called concurrently. Lookups take a
// shared lock and return shared_ptr snapshots that stay valid after a
// concurrent DROP (the object dies when the last query using it finishes).
// The generation counter increments on every registry mutation and is also
// bumped by the engine on table-data mutations (INSERT/COPY), giving
// running queries a cheap staleness test for cross-query caches.
class Catalog {
 public:
  using EntryPtr = std::shared_ptr<const CatalogEntry>;

  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status CreateTable(const std::string& name, Schema schema,
                     bool if_not_exists, const std::string& owner);
  Status CreateView(const std::string& name, SelectStmtPtr ast,
                    bool or_replace, const std::string& owner);
  Status Drop(const std::string& name, bool is_view, bool if_exists);

  // Looks the object up (case-insensitive). nullptr if missing.
  EntryPtr Find(const std::string& name) const;

  // Access check: succeeds when `user` is empty (access control off), the
  // object has no owner, the user is the owner, or the user was granted.
  Status CheckAccess(const CatalogEntry& entry, const std::string& user) const;

  // Grants `user` access to `object` (copy-on-write republish).
  Status Grant(const std::string& object, const std::string& user);

  std::vector<std::string> ListNames() const;

  // Data/DDL version. Bumped on every registry mutation; the engine bumps
  // it additionally after DML so (generation, ...) cache keys can never
  // alias across data versions.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  static std::string Key(const std::string& name);

  mutable std::shared_mutex mu_;
  std::atomic<uint64_t> generation_{0};
  std::map<std::string, EntryPtr> entries_;
};

}  // namespace msql

#endif  // MSQL_CATALOG_CATALOG_H_

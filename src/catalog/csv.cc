#include "catalog/csv.h"

#include <cstdlib>
#include <fstream>

#include "common/date.h"
#include "common/fault_injection.h"
#include "common/string_util.h"

namespace msql {

namespace {

// One parsed CSV record plus the 1-based source line it starts on, so
// errors downstream (arity, cast) can cite the offending line.
struct CsvRecord {
  size_t line = 0;
  std::vector<std::string> fields;
};

// Parses the full CSV text into records of fields (RFC-4180-ish).
// Malformed input — an unterminated quoted field or an embedded NUL —
// fails with kIo and the source line of the defect.
Result<std::vector<CsvRecord>> ParseCsvText(const std::string& text) {
  std::vector<CsvRecord> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t line = 1;          // current 1-based source line
  size_t record_line = 1;   // line the current record started on
  size_t quote_line = 0;    // line the open quote was seen on
  size_t i = 0;
  auto end_field = [&]() {
    record.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    // Skip blank lines.
    if (!(record.size() == 1 && record[0].empty())) {
      records.push_back(CsvRecord{record_line, record});
    }
    record.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '\0') {
      return Status(ErrorCode::kIo,
                    StrCat("CSV line ", line,
                           ": embedded NUL byte (binary data?)"));
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field += c;
      }
    } else if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      quote_line = line;
    } else if (c == ',') {
      end_field();
    } else if (c == '\r') {
      // swallow
    } else if (c == '\n') {
      end_record();
      ++line;
      record_line = line;
    } else {
      field += c;
      field_started = true;
    }
    ++i;
  }
  if (in_quotes) {
    return Status(ErrorCode::kIo,
                  StrCat("CSV line ", quote_line,
                         ": unterminated quoted field"));
  }
  if (field_started || !record.empty() || !field.empty()) {
    if (!field.empty() || !record.empty()) end_record();
  }
  return records;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(ErrorCode::kIo, "cannot open file '" + path + "'");
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

bool LooksLikeInt(const std::string& s) {
  char* end = nullptr;
  std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool LooksLikeDouble(const std::string& s) {
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool LooksLikeDate(const std::string& s) { return ParseDate(s).ok(); }

}  // namespace

Status AppendCsv(const std::string& path, bool header, Table* table) {
  MSQL_FAULT_POINT("csv.append");
  MSQL_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  MSQL_ASSIGN_OR_RETURN(auto records, ParseCsvText(text));
  size_t start = header ? 1 : 0;
  for (size_t r = start; r < records.size(); ++r) {
    const auto& fields = records[r].fields;
    if (fields.size() != table->schema().size()) {
      return Status(ErrorCode::kIo,
                    StrCat("CSV line ", records[r].line, ": record has ",
                           fields.size(), " fields, expected ",
                           table->schema().size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      if (fields[c].empty()) {
        row.push_back(Value::Null());
        continue;
      }
      auto cast =
          Value::String(fields[c]).CastTo(table->schema().column(c).type.kind);
      if (!cast.ok()) {
        return Status(ErrorCode::kIo,
                      StrCat("CSV line ", records[r].line, ", column '",
                             table->schema().column(c).name,
                             "': ", cast.status().message()));
      }
      row.push_back(std::move(cast.value()));
    }
    MSQL_RETURN_IF_ERROR(table->AppendRow(std::move(row)));
  }
  return Status::Ok();
}

Result<Schema> InferCsvSchema(const std::string& path) {
  MSQL_FAULT_POINT("csv.infer");
  MSQL_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  MSQL_ASSIGN_OR_RETURN(auto records, ParseCsvText(text));
  if (records.empty()) {
    return Status(ErrorCode::kIo, "CSV file '" + path + "' is empty");
  }
  const auto& names = records[0].fields;
  Schema schema;
  for (size_t c = 0; c < names.size(); ++c) {
    bool all_int = true, all_double = true, all_date = true, any = false;
    for (size_t r = 1; r < records.size(); ++r) {
      const auto& fields = records[r].fields;
      if (c >= fields.size() || fields[c].empty()) continue;
      any = true;
      const std::string& s = fields[c];
      all_int = all_int && LooksLikeInt(s);
      all_double = all_double && LooksLikeDouble(s);
      all_date = all_date && LooksLikeDate(s);
    }
    DataType type = DataType::String();
    if (any && all_int) type = DataType::Int64();
    else if (any && all_double) type = DataType::Double();
    else if (any && all_date) type = DataType::Date();
    schema.AddColumn(Column(names[c], type));
  }
  return schema;
}

Status WriteCsv(const std::string& path, const Table& table) {
  MSQL_FAULT_POINT("csv.write");
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status(ErrorCode::kIo, "cannot write file '" + path + "'");
  }
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += "\"\"";
      else q += c;
    }
    return q + "\"";
  };
  for (size_t c = 0; c < table.schema().size(); ++c) {
    if (c > 0) out << ',';
    out << quote(table.schema().column(c).name);
  }
  out << '\n';
  const Table::RowsSnapshot rows = table.snapshot();
  for (const Row& row : *rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      if (!row[c].is_null()) out << quote(row[c].ToString());
    }
    out << '\n';
  }
  return Status::Ok();
}

}  // namespace msql

#ifndef MSQL_CATALOG_CSV_H_
#define MSQL_CATALOG_CSV_H_

#include <string>

#include "catalog/table.h"
#include "common/status.h"

namespace msql {

// Appends the rows of a CSV file to an existing table, coercing fields to
// the column types. Quoted fields with embedded commas/quotes/newlines are
// supported; empty fields become NULL.
Status AppendCsv(const std::string& path, bool header, Table* table);

// Infers a schema from a CSV file with a header row: a column is INTEGER if
// every non-empty value parses as an integer, else DOUBLE if numeric, else
// DATE if all values parse as dates, else VARCHAR.
Result<Schema> InferCsvSchema(const std::string& path);

// Writes rows to a CSV file with a header. Used by the benchmark harness to
// export generated workloads.
Status WriteCsv(const std::string& path, const Table& table);

}  // namespace msql

#endif  // MSQL_CATALOG_CSV_H_

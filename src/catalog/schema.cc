#include "catalog/schema.h"

#include "common/string_util.h"

namespace msql {

size_t Schema::num_visible() const {
  size_t n = 0;
  for (const Column& c : columns_) {
    if (!c.hidden) ++n;
  }
  return n;
}

std::vector<size_t> Schema::Find(const std::string& alias,
                                 const std::string& name) const {
  std::vector<size_t> matches;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (c.hidden) continue;
    if (!alias.empty() && !EqualsIgnoreCase(alias, c.table_alias)) continue;
    if (EqualsIgnoreCase(name, c.name)) matches.push_back(i);
  }
  return matches;
}

void Schema::SetAlias(const std::string& alias) {
  for (Column& c : columns_) c.table_alias = alias;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  for (const Column& c : columns_) {
    if (c.hidden) continue;
    std::string s;
    if (!c.table_alias.empty()) s += c.table_alias + ".";
    s += c.name + " " + c.type.ToString();
    parts.push_back(std::move(s));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace msql

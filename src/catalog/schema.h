#ifndef MSQL_CATALOG_SCHEMA_H_
#define MSQL_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace msql {

// One output column of a relation. `table_alias` is the binding qualifier
// ("o" in `Orders AS o`); `hidden` marks internal columns (measure source
// row-ids) that never appear in result sets but ride along through joins and
// projections.
struct Column {
  std::string name;
  DataType type;
  std::string table_alias;
  bool hidden = false;

  Column() = default;
  Column(std::string n, DataType t, std::string alias = "", bool h = false)
      : name(std::move(n)), type(t), table_alias(std::move(alias)), hidden(h) {}
};

// An ordered list of columns. Visible columns always precede hidden ones.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Number of leading non-hidden columns.
  size_t num_visible() const;

  // All column indices matching (alias, name); alias empty matches any
  // qualifier. Matching is case-insensitive. Hidden columns are not matched.
  std::vector<size_t> Find(const std::string& alias,
                           const std::string& name) const;

  // Re-qualifies every column with a new table alias (FROM (…) AS x).
  void SetAlias(const std::string& alias);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace msql

#endif  // MSQL_CATALOG_SCHEMA_H_

#include "catalog/system_tables.h"

#include "common/string_util.h"

namespace msql {

bool SystemTableRegistry::IsSystemName(const std::string& name) {
  const std::string lower = ToLower(name);
  return lower.rfind(kPrefix, 0) == 0;
}

void SystemTableRegistry::Register(const std::string& name,
                                   Provider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_[ToLower(name)] = std::move(provider);
}

std::shared_ptr<Table> SystemTableRegistry::Build(
    const std::string& name) const {
  Provider provider;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = providers_.find(ToLower(name));
    if (it == providers_.end()) return nullptr;
    provider = it->second;
  }
  // Run the provider outside the registry lock: providers snapshot live
  // server state and may take their own locks.
  return provider();
}

bool SystemTableRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return providers_.count(ToLower(name)) != 0;
}

std::vector<std::string> SystemTableRegistry::ListNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(providers_.size());
  for (const auto& [name, provider] : providers_) out.push_back(name);
  return out;
}

}  // namespace msql

#ifndef MSQL_CATALOG_SYSTEM_TABLES_H_
#define MSQL_CATALOG_SYSTEM_TABLES_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/table.h"

namespace msql {

// Virtual read-only introspection tables under the reserved
// `msql_system.` namespace (docs/OBSERVABILITY.md, "Operating msqld"):
// the engine registers `msql_system.metrics` and `msql_system.queries`,
// and msqld overrides `msql_system.connections` with a live provider
// while it is running. Gated behind EngineOptions::enable_system_tables
// (default off), so embedded engines pay nothing — the binder only
// consults the registry when the engine handed it one.
//
// A provider builds a *fresh* Table snapshot per reference: system-table
// contents change without bumping the catalog generation, so their plans
// must never enter the bound-plan or shared-measure caches (the binder
// reports `used_system_tables()` and the engine suppresses both). They
// are ordinary relations otherwise: SELECTs, joins, and measures over
// them all work — the paper's thesis applied to the engine's own
// telemetry.
//
// Thread safety: all methods may be called concurrently; providers must
// be thread-safe themselves (they run on query threads).
class SystemTableRegistry {
 public:
  // Builds the table's current contents. Must not return nullptr.
  using Provider = std::function<std::shared_ptr<Table>()>;

  static constexpr const char* kPrefix = "msql_system.";

  // True when `name` is inside the reserved namespace (case-insensitive).
  static bool IsSystemName(const std::string& name);

  // Registers (or replaces) the provider for a fully-qualified name
  // ("msql_system.connections"). Names are case-insensitive.
  void Register(const std::string& name, Provider provider);

  // Builds a fresh snapshot of the named table; nullptr when unknown.
  std::shared_ptr<Table> Build(const std::string& name) const;

  bool Contains(const std::string& name) const;
  std::vector<std::string> ListNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Provider> providers_;  // lowercase name -> provider
};

}  // namespace msql

#endif  // MSQL_CATALOG_SYSTEM_TABLES_H_

#include "catalog/table.h"

#include "common/string_util.h"

namespace msql {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.size()) {
    return Status(ErrorCode::kExecution,
                  StrCat("INSERT into ", name_, " expects ", schema_.size(),
                         " values, got ", row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    const TypeKind want = schema_.column(i).type.kind;
    if (row[i].kind() != want) {
      MSQL_ASSIGN_OR_RETURN(row[i], row[i].CastTo(want));
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

}  // namespace msql

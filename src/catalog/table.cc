#include "catalog/table.h"

#include "common/string_util.h"
#include "exec/column_vector.h"

namespace msql {

std::shared_ptr<const ColumnarRelation> Table::ColumnsFor(
    const RowsSnapshot& snap) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (columns_rows_ == snap) return columns_;
  }
  // Build outside the lock: the snapshot vector is immutable, and a writer
  // must never block behind columnarization. Concurrent scans of the same
  // fresh snapshot may build twice; last publish wins.
  auto arena = std::make_shared<Arena>();
  auto built = ColumnarizeRows(schema_.size(), *snap, arena);
  std::shared_ptr<const ColumnarRelation> cols =
      built.ok() ? built.take() : nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  columns_rows_ = snap;
  columns_ = cols;
  return cols;
}

Status Table::CoerceRow(Row* row) const {
  if (row->size() != schema_.size()) {
    return Status(ErrorCode::kExecution,
                  StrCat("INSERT into ", name_, " expects ", schema_.size(),
                         " values, got ", row->size()));
  }
  for (size_t i = 0; i < row->size(); ++i) {
    if ((*row)[i].is_null()) continue;
    const TypeKind want = schema_.column(i).type.kind;
    if ((*row)[i].kind() != want) {
      MSQL_ASSIGN_OR_RETURN((*row)[i], (*row)[i].CastTo(want));
    }
  }
  return Status::Ok();
}

std::vector<Row>* Table::MutableRowsLocked() {
  // Copy if the current vector was ever handed out via snapshot(). A
  // use_count() check would be cheaper but is not sound: use_count() is a
  // relaxed load, so observing 1 does not order this writer's mutation
  // after a dying reader's final buffer reads. The flag only changes
  // under mu_, so the (pessimistic) decision is race-free.
  if (snapshotted_) {
    rows_ = std::make_shared<std::vector<Row>>(*rows_);
    snapshotted_ = false;
  }
  return rows_.get();
}

Status Table::AppendRow(Row row) {
  MSQL_RETURN_IF_ERROR(CoerceRow(&row));
  std::lock_guard<std::mutex> lock(mu_);
  MutableRowsLocked()->push_back(std::move(row));
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Status Table::AppendRows(std::vector<Row> rows) {
  for (Row& row : rows) {
    MSQL_RETURN_IF_ERROR(CoerceRow(&row));
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Row>* storage = MutableRowsLocked();
  storage->reserve(storage->size() + rows.size());
  for (Row& row : rows) storage->push_back(std::move(row));
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

void Table::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rows_ = std::make_shared<std::vector<Row>>();
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace msql

#ifndef MSQL_CATALOG_TABLE_H_
#define MSQL_CATALOG_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"

namespace msql {

struct ColumnarRelation;  // exec/column_vector.h

// An in-memory base table: schema plus row storage. Row values are stored
// already coerced to the column types.
//
// Thread safety: writers and readers synchronize on an internal mutex;
// readers take an immutable copy-on-write snapshot of the row vector
// (a shared_ptr copy — O(1)), so a running scan never observes a
// concurrent INSERT and DML never blocks behind a long query. The
// generation counter increments on every data mutation and feeds the
// engine's cross-query cache invalidation.
class Table {
 public:
  using RowsSnapshot = std::shared_ptr<const std::vector<Row>>;

  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        rows_(std::make_shared<std::vector<Row>>()) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // Immutable snapshot of the current rows. Cheap; the data is shared until
  // the next write, which copies (never mutates) a vector that has
  // outstanding snapshots.
  RowsSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    snapshotted_ = true;
    return rows_;
  }

  size_t num_rows() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_->size();
  }

  // Data version: bumped on every append / clear.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // Columnar image of `snap`, built on first use and cached. Keyed by the
  // snapshot's identity (the shared row vector pointer), not the generation:
  // a hit is only possible when the cached image was built from exactly this
  // vector, so a scan can never pair a stale image with fresher rows. Like
  // the row snapshot it mirrors, the image is engine-resident and unguarded.
  // May be null (columnarization failed); callers then run row-at-a-time.
  std::shared_ptr<const ColumnarRelation> ColumnsFor(
      const RowsSnapshot& snap) const;

  // Appends rows, coercing each value to the column types. Fails (without
  // appending anything from the failing row on) if arity or types do not
  // match. AppendRows takes the write lock once for the whole batch.
  Status AppendRow(Row row);
  Status AppendRows(std::vector<Row> rows);

  void Clear();

 private:
  // Coerces one row to the schema; returns it via `row`.
  Status CoerceRow(Row* row) const;

  // Returns the storage vector, private to this writer. mu_ held. Copies
  // the rows first if the current vector was ever snapshotted.
  std::vector<Row>* MutableRowsLocked();

  std::string name_;
  Schema schema_;
  mutable std::mutex mu_;
  std::shared_ptr<std::vector<Row>> rows_;
  // True while `rows_` may be referenced outside mu_ (a snapshot was
  // handed out since the last copy). Guarded by mu_.
  mutable bool snapshotted_ = false;
  // Columnar cache: `columns_` was built from `columns_rows_` (identity
  // key). Both guarded by mu_; the build itself runs outside the lock.
  mutable RowsSnapshot columns_rows_;
  mutable std::shared_ptr<const ColumnarRelation> columns_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace msql

#endif  // MSQL_CATALOG_TABLE_H_

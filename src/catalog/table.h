#ifndef MSQL_CATALOG_TABLE_H_
#define MSQL_CATALOG_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"

namespace msql {

// An in-memory base table: schema plus row storage. Row values are stored
// already coerced to the column types.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  // Appends a row, coercing each value to the column type. Fails if arity or
  // types do not match.
  Status AppendRow(Row row);

  void Clear() { rows_.clear(); }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace msql

#endif  // MSQL_CATALOG_TABLE_H_

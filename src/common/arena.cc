#include "common/arena.h"

#include <algorithm>
#include <cstring>

namespace msql {

void* Arena::AllocateSlow(size_t bytes, size_t align) {
  if (!status_.ok()) return nullptr;
  // Geometric growth from kMinBlockBytes; oversized requests get their own
  // block. `align - 1` slack guarantees the aligned cursor still fits.
  size_t last = blocks_.empty() ? 0 : blocks_.back().size;
  size_t want = std::max(bytes + align, kMinBlockBytes);
  size_t block_size = std::max(want, last * 2);
  if (guard_ != nullptr) {
    Status s = guard_->ChargeBytes(block_size);
    if (!s.ok()) {
      status_ = std::move(s);
      return nullptr;
    }
  }
  Block b;
  b.data.reset(new char[block_size]);
  b.size = block_size;
  bytes_reserved_ += block_size;
  cursor_ = b.data.get();
  end_ = cursor_ + block_size;
  blocks_.push_back(std::move(b));
  char* p = AlignUp(cursor_, align);
  cursor_ = p + bytes;
  return p;
}

void Arena::Reset() {
  if (blocks_.empty()) {
    cursor_ = end_ = nullptr;
    return;
  }
  auto largest = std::max_element(
      blocks_.begin(), blocks_.end(),
      [](const Block& a, const Block& b) { return a.size < b.size; });
  Block keep = std::move(*largest);
  bytes_reserved_ = keep.size;
  blocks_.clear();
  cursor_ = keep.data.get();
  end_ = cursor_ + keep.size;
  blocks_.push_back(std::move(keep));
}

}  // namespace msql

#ifndef MSQL_COMMON_ARENA_H_
#define MSQL_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/query_guard.h"
#include "common/status.h"

namespace msql {

// Bump allocator backing the columnar execution layer (exec/column_vector.h).
// Column payload arrays (typed value arrays, validity bitmaps) are carved out
// of geometrically growing blocks, so building a batch costs one malloc per
// block instead of one per column, and tearing a whole columnar relation down
// is a handful of frees.
//
// Memory accounting: an arena may be attached to a QueryGuard, in which case
// every new block is charged against the query's memory budget *before* it is
// allocated. A rejected charge poisons the arena — Allocate() returns nullptr
// and status() carries the guard's kResourceExhausted — so a batch build can
// trip the budget deterministically mid-build. Arenas holding engine-resident
// data (the per-table columnar cache) run unguarded, like the row snapshots
// they mirror.
//
// Not thread-safe: one arena belongs to one building thread. Finished columns
// share the arena read-only via shared_ptr.
class Arena {
 public:
  static constexpr size_t kMinBlockBytes = 64 << 10;

  explicit Arena(QueryGuard* guard = nullptr) : guard_(guard) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two), or
  // nullptr when the attached guard rejected the block charge; status()
  // then holds the error. Zero-sized requests return a unique valid pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    char* p = AlignUp(cursor_, align);
    if (p != nullptr && static_cast<size_t>(end_ - p) >= bytes) {
      cursor_ = p + bytes;
      return p;
    }
    return AllocateSlow(bytes, align);
  }

  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Rewinds the arena for reuse: every block but the largest is freed, and
  // the survivor is recycled without a fresh guard charge (the bytes were
  // already accounted; ChargeBytes has no refund, so reuse is free while
  // shrinkage is conservative).
  void Reset();

  // Drops the guard reference. Call before publishing columns that outlive
  // the charging query (cross-query caches): the guard lives in a per-query
  // ExecState and must not dangle inside a cached arena.
  void DetachGuard() { guard_ = nullptr; }

  // Total block bytes reserved from the system (and charged to the guard,
  // when one is attached).
  uint64_t bytes_reserved() const { return bytes_reserved_; }

  // Ok until a guard charge fails; then the failing status, sticky.
  const Status& status() const { return status_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  static char* AlignUp(char* p, size_t align) {
    return reinterpret_cast<char*>(
        (reinterpret_cast<uintptr_t>(p) + align - 1) & ~(align - 1));
  }

  void* AllocateSlow(size_t bytes, size_t align);

  std::vector<Block> blocks_;
  char* cursor_ = nullptr;
  char* end_ = nullptr;
  uint64_t bytes_reserved_ = 0;
  QueryGuard* guard_ = nullptr;
  Status status_ = Status::Ok();
};

}  // namespace msql

#endif  // MSQL_COMMON_ARENA_H_

#include "common/date.h"

#include <cstdio>

namespace msql {

int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;   // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;     // [0, 399]
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                             // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                  // [1, 12]
  *y = yy + (*m <= 2);
}

int64_t YearOfDate(int64_t days) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return y;
}

int64_t MonthOfDate(int64_t days) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return m;
}

int64_t DayOfDate(int64_t days) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return d;
}

int64_t QuarterOfDate(int64_t days) { return (MonthOfDate(days) - 1) / 3 + 1; }

int64_t DayOfWeek(int64_t days) {
  // 1970-01-01 was a Thursday. SQL convention: 1 = Sunday .. 7 = Saturday.
  int64_t dow = (days % 7 + 7 + 4) % 7;  // 0 = Sunday
  return dow + 1;
}

Result<int64_t> ParseDate(const std::string& text) {
  int y = 0, m = 0, d = 0;
  char sep1 = 0, sep2 = 0;
  int consumed = 0;
  if (std::sscanf(text.c_str(), "%d%c%d%c%d%n", &y, &sep1, &m, &sep2, &d,
                  &consumed) != 5 ||
      consumed != static_cast<int>(text.size()) || sep1 != sep2 ||
      (sep1 != '-' && sep1 != '/')) {
    return Status(ErrorCode::kInvalidArgument,
                  "cannot parse date literal '" + text + "'");
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return Status(ErrorCode::kInvalidArgument,
                  "date field out of range in '" + text + "'");
  }
  // Round-trip to reject dates like Feb 30.
  int64_t days = DaysFromCivil(y, m, d);
  int64_t y2;
  unsigned m2, d2;
  CivilFromDays(days, &y2, &m2, &d2);
  if (y2 != y || m2 != static_cast<unsigned>(m) ||
      d2 != static_cast<unsigned>(d)) {
    return Status(ErrorCode::kInvalidArgument,
                  "invalid calendar date '" + text + "'");
  }
  return days;
}

std::string FormatDate(int64_t days) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u",
                static_cast<long long>(y), m, d);
  return buf;
}

}  // namespace msql

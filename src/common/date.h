#ifndef MSQL_COMMON_DATE_H_
#define MSQL_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace msql {

// Calendar support for the DATE type. Dates are stored as the number of days
// since the Unix epoch (1970-01-01) in the proleptic Gregorian calendar.
// The conversions use Howard Hinnant's public-domain civil-date algorithms.

// Days since epoch for a civil (year, month, day) triple.
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d);

// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int64_t* y, unsigned* m, unsigned* d);

// Extraction helpers on day counts.
int64_t YearOfDate(int64_t days);
int64_t MonthOfDate(int64_t days);     // 1..12
int64_t DayOfDate(int64_t days);       // 1..31
int64_t QuarterOfDate(int64_t days);   // 1..4
int64_t DayOfWeek(int64_t days);       // 1 = Sunday .. 7 = Saturday (SQL style)

// Parses 'YYYY-MM-DD' or 'YYYY/MM/DD'. Rejects out-of-range fields.
Result<int64_t> ParseDate(const std::string& text);

// Formats as 'YYYY-MM-DD'.
std::string FormatDate(int64_t days);

}  // namespace msql

#endif  // MSQL_COMMON_DATE_H_

#include "common/fault_injection.h"

#include "common/string_util.h"

namespace msql {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::ArmAt(int64_t fail_at, ErrorCode code) {
  {
    std::lock_guard<std::mutex> lock(site_mu_);
    site_.clear();
    fired_site_.clear();
  }
  code_ = code;
  fired_.store(false, std::memory_order_relaxed);
  fire_count_.store(0, std::memory_order_relaxed);
  fail_at_.store(fail_at, std::memory_order_relaxed);
  site_budget_.store(-1, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void FaultInjector::ArmSite(std::string site, int64_t times, ErrorCode code) {
  {
    std::lock_guard<std::mutex> lock(site_mu_);
    site_ = std::move(site);
    fired_site_.clear();
  }
  code_ = code;
  fired_.store(false, std::memory_order_relaxed);
  fire_count_.store(0, std::memory_order_relaxed);
  fail_at_.store(0, std::memory_order_relaxed);
  site_budget_.store(times, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void FaultInjector::Reset() {
  active_.store(false, std::memory_order_release);
  fired_.store(false, std::memory_order_relaxed);
  fire_count_.store(0, std::memory_order_relaxed);
  fail_at_.store(0, std::memory_order_relaxed);
  site_budget_.store(-1, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(site_mu_);
  site_.clear();
  fired_site_.clear();
}

std::string FaultInjector::fired_site() const {
  std::lock_guard<std::mutex> lock(site_mu_);
  return fired_site_;
}

Status FaultInjector::Checkpoint(const char* site) {
  int64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (site_budget_.load(std::memory_order_relaxed) >= 0) {
    // Site mode: fire on every hit of the named checkpoint while the fire
    // budget lasts. The name compare takes the mutex, but only checkpoints
    // reached while a chaos test is armed pay it.
    {
      std::lock_guard<std::mutex> lock(site_mu_);
      if (site_ != site) return Status::Ok();
    }
    if (site_budget_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      site_budget_.fetch_add(1, std::memory_order_relaxed);  // floor at 0
      return Status::Ok();
    }
    fired_.store(true, std::memory_order_relaxed);
    fire_count_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(site_mu_);
      if (fired_site_.empty()) fired_site_ = site;
    }
    return Status(code_,
                  StrCat("injected fault at checkpoint '", site, "'"));
  }
  // Ordinal mode: fire exactly once, at the fail_at_th checkpoint reached.
  if (hit != fail_at_.load(std::memory_order_relaxed)) return Status::Ok();
  fired_.store(true, std::memory_order_relaxed);
  fire_count_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(site_mu_);
    fired_site_ = site;
  }
  return Status(code_, StrCat("injected fault at checkpoint '", site,
                              "' (hit ", hit, ")"));
}

}  // namespace msql

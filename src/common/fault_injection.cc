#include "common/fault_injection.h"

#include "common/string_util.h"

namespace msql {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::ArmAt(int64_t fail_at, ErrorCode code) {
  active_ = true;
  fired_ = false;
  fail_at_ = fail_at;
  hits_ = 0;
  code_ = code;
  fired_site_.clear();
}

void FaultInjector::Reset() {
  active_ = false;
  fired_ = false;
  fail_at_ = 0;
  hits_ = 0;
  fired_site_.clear();
}

Status FaultInjector::Checkpoint(const char* site) {
  ++hits_;
  if (fired_ || fail_at_ <= 0 || hits_ != fail_at_) return Status::Ok();
  fired_ = true;
  fired_site_ = site;
  return Status(code_, StrCat("injected fault at checkpoint '", site,
                              "' (hit ", hits_, ")"));
}

}  // namespace msql

#ifndef MSQL_COMMON_FAULT_INJECTION_H_
#define MSQL_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace msql {

// Deterministic fault-injection harness. The engine is instrumented with
// named checkpoints (MSQL_FAULT_POINT) on its fallible paths: statement
// dispatch, binding, plan execution, subquery and measure evaluation,
// catalog mutation, CSV import/export, scheduler admission and retry
// backoff. The injector is compiled unconditionally but is a no-op (one
// predictable branch per checkpoint) until armed.
//
// Armed with ArmAt(n), the nth checkpoint reached (1-based) returns an
// injected non-OK Status exactly once; every other checkpoint passes.
// Armed with ArmAt(0) the injector only counts checkpoints, which lets a
// sweep test first measure how many checkpoints a workload crosses and then
// step the failure through every one of them:
//
//   auto& fi = FaultInjector::Instance();
//   fi.ArmAt(0); RunWorkload(); int64_t n = fi.hits(); fi.Reset();
//   for (int64_t i = 1; i <= n; ++i) {
//     fi.ArmAt(i);
//     RunWorkload();          // must fail cleanly, never crash
//     fi.Reset();
//     CheckEngineStillWorks();
//   }
//
// Armed with ArmSite(site, k), every checkpoint whose name equals `site`
// fires, up to k times total — the mode the overload chaos test uses to
// make a specific fault point (e.g. measure.grouped_index_build) fail
// repeatedly under concurrent load until a circuit breaker trips.
//
// The injector is a process-wide singleton. Arming/Reset are test-side
// control operations; Checkpoint() is safe to reach from many query
// threads at once (relaxed atomics — counting, not ordering), so sweep
// and chaos workloads may cross checkpoints on pool workers.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms the injector: fire at the `fail_at`th checkpoint (1-based) with
  // `code`. fail_at <= 0 counts checkpoints without ever firing.
  void ArmAt(int64_t fail_at, ErrorCode code = ErrorCode::kExecution);

  // Arms the injector on one named checkpoint: the next `times` hits of
  // `site` fire (other checkpoints pass and are counted as usual).
  void ArmSite(std::string site, int64_t times,
               ErrorCode code = ErrorCode::kExecution);

  // Disarms and zeroes the hit counter.
  void Reset();

  bool active() const { return active_.load(std::memory_order_acquire); }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  bool fired() const { return fired_.load(std::memory_order_relaxed); }
  // How many times the injector fired (ArmAt fires at most once; ArmSite up
  // to its `times` budget).
  int64_t fire_count() const {
    return fire_count_.load(std::memory_order_relaxed);
  }
  // Checkpoint name that fired first, for sweep diagnostics. Empty if none.
  std::string fired_site() const;

  // Called by MSQL_FAULT_POINT at each checkpoint while active.
  Status Checkpoint(const char* site);

 private:
  std::atomic<bool> active_{false};
  std::atomic<bool> fired_{false};
  std::atomic<int64_t> fail_at_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> fire_count_{0};
  // ArmSite state: remaining fire budget; negative = site mode disabled.
  std::atomic<int64_t> site_budget_{-1};
  ErrorCode code_ = ErrorCode::kExecution;  // written only while disarmed
  mutable std::mutex site_mu_;
  std::string site_;        // ArmSite target; empty in ArmAt mode
  std::string fired_site_;  // first checkpoint that fired
};

}  // namespace msql

// Names a fault-injection checkpoint on a fallible path. Expands to a
// single branch when the injector is disarmed (the default).
#define MSQL_FAULT_POINT(site)                                        \
  do {                                                                \
    if (::msql::FaultInjector::Instance().active()) {                 \
      MSQL_RETURN_IF_ERROR(                                           \
          ::msql::FaultInjector::Instance().Checkpoint(site));        \
    }                                                                 \
  } while (0)

#endif  // MSQL_COMMON_FAULT_INJECTION_H_

#ifndef MSQL_COMMON_FAULT_INJECTION_H_
#define MSQL_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace msql {

// Deterministic fault-injection harness. The engine is instrumented with
// named checkpoints (MSQL_FAULT_POINT) on its fallible paths: statement
// dispatch, binding, plan execution, subquery and measure evaluation,
// catalog mutation and CSV import/export. The injector is compiled
// unconditionally but is a no-op (one predictable branch per checkpoint)
// until armed.
//
// Armed with ArmAt(n), the nth checkpoint reached (1-based) returns an
// injected non-OK Status exactly once; every other checkpoint passes.
// Armed with ArmAt(0) the injector only counts checkpoints, which lets a
// sweep test first measure how many checkpoints a workload crosses and then
// step the failure through every one of them:
//
//   auto& fi = FaultInjector::Instance();
//   fi.ArmAt(0); RunWorkload(); int64_t n = fi.hits(); fi.Reset();
//   for (int64_t i = 1; i <= n; ++i) {
//     fi.ArmAt(i);
//     RunWorkload();          // must fail cleanly, never crash
//     fi.Reset();
//     CheckEngineStillWorks();
//   }
//
// The injector is a process-wide singleton intended for single-threaded
// test use; arming it while queries run on other threads is unsupported.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms the injector: fire at the `fail_at`th checkpoint (1-based) with
  // `code`. fail_at <= 0 counts checkpoints without ever firing.
  void ArmAt(int64_t fail_at, ErrorCode code = ErrorCode::kExecution);

  // Disarms and zeroes the hit counter.
  void Reset();

  bool active() const { return active_; }
  int64_t hits() const { return hits_; }
  bool fired() const { return fired_; }
  // Checkpoint name that fired, for sweep diagnostics. Empty if none.
  const std::string& fired_site() const { return fired_site_; }

  // Called by MSQL_FAULT_POINT at each checkpoint while active.
  Status Checkpoint(const char* site);

 private:
  bool active_ = false;
  bool fired_ = false;
  int64_t fail_at_ = 0;
  int64_t hits_ = 0;
  ErrorCode code_ = ErrorCode::kExecution;
  std::string fired_site_;
};

}  // namespace msql

// Names a fault-injection checkpoint on a fallible path. Expands to a
// single branch when the injector is disarmed (the default).
#define MSQL_FAULT_POINT(site)                                        \
  do {                                                                \
    if (::msql::FaultInjector::Instance().active()) {                 \
      MSQL_RETURN_IF_ERROR(                                           \
          ::msql::FaultInjector::Instance().Checkpoint(site));        \
    }                                                                 \
  } while (0)

#endif  // MSQL_COMMON_FAULT_INJECTION_H_

#include "common/query_guard.h"

#include "common/string_util.h"

namespace msql {

void QueryGuard::Arm(int64_t timeout_ms, uint64_t max_memory_bytes,
                     uint64_t max_result_rows, CancelTokenPtr token,
                     std::shared_ptr<std::atomic<uint64_t>> cancel_generation) {
  armed_ = true;
  ticks_ = 1;  // first Check() takes the slow path and seeds the cadence
  timeout_ms_ = timeout_ms;
  has_deadline_ = timeout_ms > 0;
  propagated_deadline_ = false;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(timeout_ms);
  }
  max_rows_ = max_result_rows;
  max_bytes_ = max_memory_bytes;
  rows_charged_ = 0;
  bytes_charged_ = 0;
  token_ = std::move(token);
  cancel_generation_ = std::move(cancel_generation);
  generation_snapshot_ =
      cancel_generation_ == nullptr
          ? 0
          : cancel_generation_->load(std::memory_order_relaxed);
}

Status QueryGuard::CheckSlow() {
  ticks_ = kCheckInterval;
  if (token_ != nullptr && token_->cancelled()) {
    return Status(ErrorCode::kCancelled, "query cancelled via cancel token");
  }
  if (cancel_generation_ != nullptr &&
      cancel_generation_->load(std::memory_order_relaxed) !=
          generation_snapshot_) {
    return Status(ErrorCode::kCancelled,
                  "query cancelled by Engine::CancelAll");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    if (propagated_deadline_) {
      return Status(ErrorCode::kDeadlineExceeded,
                    "query deadline exceeded (deadline set at admission)");
    }
    return Status(ErrorCode::kDeadlineExceeded,
                  StrCat("query deadline exceeded (timeout_ms=", timeout_ms_,
                         ")"));
  }
  return Status::Ok();
}

Status QueryGuard::BudgetExceeded() const {
  if (max_rows_ != 0 && rows_charged_ > max_rows_) {
    return Status(ErrorCode::kResourceExhausted,
                  StrCat("query materialized ", rows_charged_,
                         " rows, exceeding max_result_rows=", max_rows_));
  }
  return Status(ErrorCode::kResourceExhausted,
                StrCat("query materialized approximately ", bytes_charged_,
                       " bytes, exceeding max_memory_bytes=", max_bytes_));
}

}  // namespace msql

#ifndef MSQL_COMMON_QUERY_GUARD_H_
#define MSQL_COMMON_QUERY_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace msql {

// Cooperative cancellation handle shared between a query and the code that
// wants to stop it. Cancel() may be called from any thread; the running
// query observes it at its next guard checkpoint and unwinds with a clean
// kCancelled status.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

// Per-query resource governor: wall-clock deadline, memory budget, output
// row budget and cooperative cancellation. One guard lives inside each
// query's ExecState; every row loop in the executor, evaluator and measure
// engine calls Check(), and every relation / result-set materialization
// charges its rows.
//
// Check() is designed for hot loops: the unarmed path is a single branch,
// and the armed path reads the clock / cancellation atomics only once per
// kCheckInterval calls. Budget charging compares two integers per call, so
// budget trips are deterministic (independent of timing).
class QueryGuard {
 public:
  // Check() calls between deadline / cancellation polls. Row loops hit
  // Check() every iteration, so cancellation latency is a few hundred rows.
  static constexpr int32_t kCheckInterval = 256;

  // Flat per-value estimate used by the memory accountant. Values are a
  // tagged union (kind + int64 + double + inline std::string); the estimate
  // deliberately ignores string heap payloads to stay O(1) per row.
  static constexpr uint64_t kApproxValueBytes = sizeof(uint64_t) * 8;

  QueryGuard() = default;

  // Activates the guard. Zero limits mean unlimited; the guard still polls
  // `token` (may be null) and `cancel_generation` (may be null) so that
  // Engine::CancelAll and per-query tokens work without any limits set.
  void Arm(int64_t timeout_ms, uint64_t max_memory_bytes,
           uint64_t max_result_rows, CancelTokenPtr token,
           std::shared_ptr<std::atomic<uint64_t>> cancel_generation);

  // Deadline propagation (docs/ROBUSTNESS.md): lowers the guard's absolute
  // deadline to `deadline` if that is earlier than (or replaces a missing)
  // per-statement timeout. The scheduler stamps a query's deadline at
  // submission, so queue wait, measure expansion, grouped builds and
  // execution all charge against one budget instead of restarting the
  // clock at execution start. Call after Arm().
  void TightenDeadline(std::chrono::steady_clock::time_point deadline) {
    if (!has_deadline_ || deadline < deadline_) {
      has_deadline_ = true;
      deadline_ = deadline;
      propagated_deadline_ = true;
    }
  }

  void Disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  // Cheap cooperative checkpoint for row loops: polls cancellation and the
  // deadline every kCheckInterval calls.
  Status Check() {
    if (!armed_ || --ticks_ > 0) return Status::Ok();
    return CheckSlow();
  }

  // Charges `rows` materialized rows of `row_width` values against the row
  // and memory budgets. Called wherever a Relation or ResultSet gains rows.
  Status ChargeRows(uint64_t rows, size_t row_width) {
    if (!armed_) return Status::Ok();
    rows_charged_ += rows;
    bytes_charged_ += rows * (row_width * kApproxValueBytes + kRowOverhead);
    if ((max_rows_ != 0 && rows_charged_ > max_rows_) ||
        (max_bytes_ != 0 && bytes_charged_ > max_bytes_)) {
      return BudgetExceeded();
    }
    return Status::Ok();
  }

  // Charges raw bytes against the memory budget (cross-query cache fills,
  // out-of-row allocations).
  Status ChargeBytes(uint64_t bytes) {
    if (!armed_) return Status::Ok();
    bytes_charged_ += bytes;
    if (max_bytes_ != 0 && bytes_charged_ > max_bytes_) {
      return BudgetExceeded();
    }
    return Status::Ok();
  }

  // Worker-side guard for parallel measure evaluation: shares this guard's
  // deadline, limits and cancellation handles (token and CancelAll
  // generation, both already thread-safe) but starts with zero charges.
  // The guard itself is not thread-safe, so each worker thread owns its
  // fork; after the join, fold every fork back with MergeWorker.
  QueryGuard ForkWorker() const {
    QueryGuard g(*this);
    g.ticks_ = 1;  // workers poll cancellation on their first Check()
    g.rows_charged_ = 0;
    g.bytes_charged_ = 0;
    return g;
  }

  // Folds a joined worker fork's charges into this guard. Budgets are
  // enforced per worker during the parallel section (each fork carries the
  // full limits), so the merged total is where cross-worker overshoot
  // surfaces.
  Status MergeWorker(const QueryGuard& worker) {
    if (!armed_) return Status::Ok();
    rows_charged_ += worker.rows_charged_;
    bytes_charged_ += worker.bytes_charged_;
    if ((max_rows_ != 0 && rows_charged_ > max_rows_) ||
        (max_bytes_ != 0 && bytes_charged_ > max_bytes_)) {
      return BudgetExceeded();
    }
    return Status::Ok();
  }

  // Totals since Arm(); exposed for tests and diagnostics.
  uint64_t rows_charged() const { return rows_charged_; }
  uint64_t bytes_charged() const { return bytes_charged_; }

 private:
  static constexpr uint64_t kRowOverhead = sizeof(uint64_t) * 3;

  Status CheckSlow();
  Status BudgetExceeded() const;

  bool armed_ = false;
  int32_t ticks_ = 1;
  bool has_deadline_ = false;
  bool propagated_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  int64_t timeout_ms_ = 0;
  uint64_t max_rows_ = 0;
  uint64_t max_bytes_ = 0;
  uint64_t rows_charged_ = 0;
  uint64_t bytes_charged_ = 0;
  CancelTokenPtr token_;
  std::shared_ptr<std::atomic<uint64_t>> cancel_generation_;
  uint64_t generation_snapshot_ = 0;
};

}  // namespace msql

#endif  // MSQL_COMMON_QUERY_GUARD_H_

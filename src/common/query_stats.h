#ifndef MSQL_COMMON_QUERY_STATS_H_
#define MSQL_COMMON_QUERY_STATS_H_

#include <cstdint>

namespace msql {

// Immutable per-query execution statistics, snapshotted from the query's
// ExecState when it finishes. Returned on the result path
// (ResultSet::stats()) and attached to the query's trace: each concurrent
// query gets its own copy instead of clobbering shared mutable state.
struct QueryStats {
  // Measure evaluation (measure/cse.cc, measure/grouped.cc).
  uint64_t measure_evals = 0;        // evaluations requested
  uint64_t measure_cache_hits = 0;   // per-query memo hits
  uint64_t measure_source_scans = 0; // full passes over a measure source
  uint64_t measure_inline_evals = 0; // row-id-only fast-path evaluations
  uint64_t measure_grouped_builds = 0;     // dimension-index builds
  uint64_t measure_grouped_probes = 0;     // O(1) grouped-index probes
  uint64_t measure_grouped_fallbacks = 0;  // degraded builds (fault inject)
  uint64_t measure_parallel_tasks = 0;     // morsel-parallel worker tasks

  // Correlated scalar subqueries (exec/executor.cc).
  uint64_t subquery_execs = 0;
  uint64_t subquery_cache_hits = 0;

  // Cross-query SharedMeasureCache traffic attributable to this query.
  uint64_t shared_cache_hits = 0;
  uint64_t shared_cache_misses = 0;

  // Vectorized execution (exec/vector_eval.cc and friends): 1024-row
  // column batches processed by batch kernels, and operator invocations
  // that fell back to row-at-a-time (no kernel, or fault-injected).
  uint64_t exec_vectorized_batches = 0;
  uint64_t exec_row_fallbacks = 0;

  // Degradable operations skipped because a circuit breaker was open
  // (runtime/circuit_breaker.h); EXPLAIN ANALYZE surfaces these as a
  // "Breakers:" line.
  uint64_t breaker_short_circuits = 0;

  // Resource-governor charges (common/query_guard.h).
  uint64_t rows_charged = 0;
  uint64_t bytes_charged = 0;

  // Prepared-plan cache interaction of this statement (EXPLAIN ANALYZE's
  // "PlanCache:" line): kOff when the cache was not consulted, kMiss when
  // the statement was bound fresh (and published), kHit when a cached
  // bound plan skipped parse/bind/measure-expand.
  enum class PlanCacheOutcome { kOff = 0, kMiss = 1, kHit = 2 };
  PlanCacheOutcome plan_cache = PlanCacheOutcome::kOff;

  // Recursion depth at completion; 0 after a clean unwind.
  int depth = 0;

  // Wall time of the whole select pipeline (bind through render).
  int64_t total_us = 0;

  // Per-phase wall times, filled from the query's trace spans when tracing
  // was enabled for the statement (zero otherwise — the disabled path never
  // measures them). Names match the span names in docs/OBSERVABILITY.md;
  // these feed the wire response footer and msql_system.queries.
  int64_t admission_wait_us = 0;
  int64_t queue_wait_us = 0;
  int64_t parse_us = 0;
  int64_t bind_us = 0;
  int64_t measure_expand_us = 0;
  int64_t plan_us = 0;
  int64_t execute_us = 0;
  int64_t render_us = 0;
};

}  // namespace msql

#endif  // MSQL_COMMON_QUERY_STATS_H_

#include "common/status.h"

namespace msql {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kParse:
      return "parse error";
    case ErrorCode::kBind:
      return "bind error";
    case ErrorCode::kCatalog:
      return "catalog error";
    case ErrorCode::kExecution:
      return "execution error";
    case ErrorCode::kInvalidArgument:
      return "invalid argument";
    case ErrorCode::kNotImplemented:
      return "not implemented";
    case ErrorCode::kIo:
      return "io error";
    case ErrorCode::kPermission:
      return "permission denied";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kResourceExhausted:
      return "resource exhausted";
    case ErrorCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown error";
}

Status RecursionLimitExceeded(const char* what, int limit) {
  return Status(ErrorCode::kResourceExhausted,
                std::string(what) + " recursion limit exceeded (max depth " +
                    std::to_string(limit) + ")");
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = ErrorCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace msql

#ifndef MSQL_COMMON_STATUS_H_
#define MSQL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace msql {

// Error categories used throughout the engine. `kOk` is reserved for the
// success state; every other code identifies which layer rejected the query.
enum class ErrorCode {
  kOk = 0,
  kParse,           // lexer / parser errors
  kBind,            // name resolution / type checking errors
  kCatalog,         // unknown or duplicate tables, views, columns
  kExecution,       // runtime errors (division by zero, bad cast, ...)
  kInvalidArgument, // bad API usage
  kNotImplemented,
  kIo,              // CSV import/export failures
  kPermission,      // access denied (security model of paper section 5.5)
  kCancelled,       // cooperative cancellation (token / CancelAll)
  kResourceExhausted, // memory / row / recursion budget, admission shed
  kDeadlineExceeded,  // per-query deadline elapsed (queue wait + execution)
};

// Human-readable label for an error code ("parse error", ...).
const char* ErrorCodeName(ErrorCode code);

// Status carries success or an (ErrorCode, message) pair. The engine does not
// throw exceptions across API boundaries; all fallible paths return Status or
// Result<T>.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Retry classification (docs/ROBUSTNESS.md): true for failures caused by
  // transient pressure that a backoff may clear (admission sheds, rate
  // limits, resource budgets under contention). Deterministic failures —
  // parse/bind errors, cancellation, an elapsed deadline — are never
  // retryable: retrying them burns capacity without changing the outcome.
  bool IsRetryable() const {
    return code_ == ErrorCode::kResourceExhausted;
  }

  // "parse error: unexpected token ')'" or "OK".
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

// Uniform kResourceExhausted status for every recursion/depth guard in the
// engine (plan execution, measure evaluation, view expansion), so all
// layers trip with the same message shape.
Status RecursionLimitExceeded(const char* what, int limit);

// Result<T> is a Status plus, on success, a value of type T (a minimal
// StatusOr). Use `MSQL_ASSIGN_OR_RETURN` to unwrap.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T&& take() { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace msql

// Propagates a non-OK Status from the current function.
#define MSQL_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::msql::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

// Evaluates `rexpr` (a Result<T>), propagating errors, else assigns to lhs.
#define MSQL_ASSIGN_OR_RETURN(lhs, rexpr)   \
  MSQL_ASSIGN_OR_RETURN_IMPL(               \
      MSQL_CONCAT_NAME(_result_, __LINE__), lhs, rexpr)

#define MSQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp.value())

#define MSQL_CONCAT_NAME_INNER(x, y) x##y
#define MSQL_CONCAT_NAME(x, y) MSQL_CONCAT_NAME_INNER(x, y)

#endif  // MSQL_COMMON_STATUS_H_

#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace msql {

std::string ToUpper(const std::string& s) {
  std::string r = s;
  for (char& c : r) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return r;
}

std::string ToLower(const std::string& s) {
  std::string r = s;
  for (char& c : r) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return r;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string r;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) r += sep;
    r += parts[i];
  }
  return r;
}

std::string FormatDouble(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  if (d == static_cast<int64_t>(d) && std::fabs(d) < 1e15) {
    return StrCat(static_cast<int64_t>(d), ".0");
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Shorten if a lower precision round-trips.
  for (int prec = 1; prec <= 16; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
    double parsed = 0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == d) return shorter;
  }
  return buf;
}

std::string QuoteSqlString(const std::string& s) {
  std::string r = "'";
  for (char c : s) {
    if (c == '\'') r += "''";
    else r += c;
  }
  r += "'";
  return r;
}

}  // namespace msql

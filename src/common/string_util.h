#ifndef MSQL_COMMON_STRING_UTIL_H_
#define MSQL_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace msql {

std::string ToUpper(const std::string& s);
std::string ToLower(const std::string& s);
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

// Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Variadic streaming concatenation: StrCat("x=", 4, "!") == "x=4!".
namespace internal {
inline void StrCatImpl(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrCatImpl(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  StrCatImpl(os, rest...);
}
}  // namespace internal

template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrCatImpl(os, args...);
  return os.str();
}

// Formats a double the way the engine prints query results: integral values
// without trailing zeros, otherwise shortest round-trip representation.
std::string FormatDouble(double d);

// SQL single-quoted string literal with '' escaping.
std::string QuoteSqlString(const std::string& s);

}  // namespace msql

#endif  // MSQL_COMMON_STRING_UTIL_H_

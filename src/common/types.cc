#include "common/types.h"

#include "common/string_util.h"

namespace msql {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return "BOOLEAN";
    case TypeKind::kInt64:
      return "INTEGER";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kString:
      return "VARCHAR";
    case TypeKind::kDate:
      return "DATE";
  }
  return "?";
}

std::string DataType::ToString() const {
  std::string s = TypeKindName(kind);
  if (is_measure) s += " MEASURE";
  return s;
}

DataType CommonType(const DataType& a, const DataType& b) {
  if (a.kind == TypeKind::kNull) return b.ValueType();
  if (b.kind == TypeKind::kNull) return a.ValueType();
  if (a.kind == b.kind) return a.ValueType();
  if (a.is_numeric() && b.is_numeric()) return DataType::Double();
  return DataType::Null();  // incompatible
}

TypeKind TypeKindFromName(const std::string& name) {
  std::string n = ToUpper(name);
  if (n == "INTEGER" || n == "INT" || n == "BIGINT" || n == "SMALLINT") {
    return TypeKind::kInt64;
  }
  if (n == "DOUBLE" || n == "FLOAT" || n == "REAL" || n == "DECIMAL" ||
      n == "NUMERIC") {
    return TypeKind::kDouble;
  }
  if (n == "VARCHAR" || n == "STRING" || n == "TEXT" || n == "CHAR") {
    return TypeKind::kString;
  }
  if (n == "BOOLEAN" || n == "BOOL") return TypeKind::kBool;
  if (n == "DATE") return TypeKind::kDate;
  return TypeKind::kNull;
}

}  // namespace msql

#ifndef MSQL_COMMON_TYPES_H_
#define MSQL_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace msql {

// Scalar type tags. A DataType is a TypeKind plus the `is_measure` flag: the
// paper (section 3.4) gives measures the type `t MEASURE` for some value type
// t; evaluating the context-sensitive expression strips the wrapper.
enum class TypeKind : uint8_t {
  kNull = 0,  // the type of NULL literals before coercion
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,
};

const char* TypeKindName(TypeKind kind);

struct DataType {
  TypeKind kind = TypeKind::kNull;
  bool is_measure = false;

  DataType() = default;
  explicit DataType(TypeKind k, bool measure = false)
      : kind(k), is_measure(measure) {}

  static DataType Null() { return DataType(TypeKind::kNull); }
  static DataType Bool() { return DataType(TypeKind::kBool); }
  static DataType Int64() { return DataType(TypeKind::kInt64); }
  static DataType Double() { return DataType(TypeKind::kDouble); }
  static DataType String() { return DataType(TypeKind::kString); }
  static DataType Date() { return DataType(TypeKind::kDate); }

  // The same type with the MEASURE wrapper added / removed.
  DataType AsMeasure() const { return DataType(kind, true); }
  DataType ValueType() const { return DataType(kind, false); }

  bool is_numeric() const {
    return kind == TypeKind::kInt64 || kind == TypeKind::kDouble;
  }

  // "INTEGER", "DOUBLE MEASURE", ...
  std::string ToString() const;

  friend bool operator==(const DataType& a, const DataType& b) {
    return a.kind == b.kind && a.is_measure == b.is_measure;
  }
};

// Resolves the common type of two operands for comparisons and arithmetic
// (INT64 + DOUBLE -> DOUBLE, NULL is compatible with anything). Returns
// kNull kind if the types are incompatible.
DataType CommonType(const DataType& a, const DataType& b);

// Parses a type name from DDL ("INTEGER", "INT", "BIGINT", "DOUBLE", "FLOAT",
// "VARCHAR", "STRING", "TEXT", "BOOLEAN", "DATE"). Returns kNull on failure.
TypeKind TypeKindFromName(const std::string& name);

}  // namespace msql

#endif  // MSQL_COMMON_TYPES_H_

#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/date.h"
#include "common/string_util.h"

namespace msql {

double Value::AsDouble() const {
  switch (kind_) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return static_cast<double>(i_);
    case TypeKind::kDouble:
      return d_;
    default:
      return 0;
  }
}

Result<Value> Value::CastTo(TypeKind target) const {
  if (is_null() || kind_ == target) return *this;
  switch (target) {
    case TypeKind::kInt64:
      switch (kind_) {
        case TypeKind::kBool:
          return Value::Int(i_);
        case TypeKind::kDouble:
          return Value::Int(static_cast<int64_t>(d_));
        case TypeKind::kString: {
          char* end = nullptr;
          long long v = std::strtoll(s_.c_str(), &end, 10);
          if (end == nullptr || *end != '\0' || s_.empty()) {
            return Status(ErrorCode::kExecution,
                          "cannot cast '" + s_ + "' to INTEGER");
          }
          return Value::Int(v);
        }
        case TypeKind::kDate:
          return Value::Int(i_);
        default:
          break;
      }
      break;
    case TypeKind::kDouble:
      switch (kind_) {
        case TypeKind::kBool:
        case TypeKind::kInt64:
          return Value::Double(static_cast<double>(i_));
        case TypeKind::kString: {
          char* end = nullptr;
          double v = std::strtod(s_.c_str(), &end);
          if (end == nullptr || *end != '\0' || s_.empty()) {
            return Status(ErrorCode::kExecution,
                          "cannot cast '" + s_ + "' to DOUBLE");
          }
          return Value::Double(v);
        }
        default:
          break;
      }
      break;
    case TypeKind::kString:
      return Value::String(ToString());
    case TypeKind::kBool:
      switch (kind_) {
        case TypeKind::kInt64:
          return Value::Bool(i_ != 0);
        case TypeKind::kString:
          if (EqualsIgnoreCase(s_, "true")) return Value::Bool(true);
          if (EqualsIgnoreCase(s_, "false")) return Value::Bool(false);
          return Status(ErrorCode::kExecution,
                        "cannot cast '" + s_ + "' to BOOLEAN");
        default:
          break;
      }
      break;
    case TypeKind::kDate:
      if (kind_ == TypeKind::kString) {
        MSQL_ASSIGN_OR_RETURN(int64_t days, ParseDate(s_));
        return Value::Date(days);
      }
      if (kind_ == TypeKind::kInt64) return Value::Date(i_);
      break;
    default:
      break;
  }
  return Status(ErrorCode::kExecution,
                StrCat("cannot cast ", TypeKindName(kind_), " to ",
                       TypeKindName(target)));
}

bool Value::NotDistinct(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.kind_ == b.kind_) {
    switch (a.kind_) {
      case TypeKind::kBool:
      case TypeKind::kInt64:
      case TypeKind::kDate:
        return a.i_ == b.i_;
      case TypeKind::kDouble:
        return a.d_ == b.d_;
      case TypeKind::kString:
        return a.s_ == b.s_;
      default:
        return true;
    }
  }
  // Cross-type numeric equality (INT64 vs DOUBLE).
  if ((a.kind_ == TypeKind::kInt64 || a.kind_ == TypeKind::kDouble) &&
      (b.kind_ == TypeKind::kInt64 || b.kind_ == TypeKind::kDouble)) {
    return a.AsDouble() == b.AsDouble();
  }
  return false;
}

Value Value::SqlEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  return Value::Bool(NotDistinct(a, b));
}

int Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return -1;
  if (b.is_null()) return 1;
  if (a.kind_ == TypeKind::kString && b.kind_ == TypeKind::kString) {
    return a.s_.compare(b.s_);
  }
  if (a.kind_ == b.kind_ &&
      (a.kind_ == TypeKind::kInt64 || a.kind_ == TypeKind::kDate ||
       a.kind_ == TypeKind::kBool)) {
    return a.i_ < b.i_ ? -1 : a.i_ > b.i_ ? 1 : 0;
  }
  double x = a.AsDouble(), y = b.AsDouble();
  return x < y ? -1 : x > y ? 1 : 0;
}

size_t Value::Hash() const {
  switch (kind_) {
    case TypeKind::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      // Hash ints through double when integral so INT 2 and DOUBLE 2.0
      // agree (NotDistinct treats them as equal).
      return std::hash<double>()(static_cast<double>(i_));
    case TypeKind::kDouble:
      return std::hash<double>()(d_);
    case TypeKind::kString:
      return std::hash<std::string>()(s_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind_) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return i_ ? "true" : "false";
    case TypeKind::kInt64:
      return StrCat(i_);
    case TypeKind::kDouble:
      return FormatDouble(d_);
    case TypeKind::kString:
      return s_;
    case TypeKind::kDate:
      return FormatDate(i_);
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  switch (kind_) {
    case TypeKind::kString:
      return QuoteSqlString(s_);
    case TypeKind::kDate:
      return "DATE '" + FormatDate(i_) + "'";
    default:
      return ToString();
  }
}

size_t HashRow(const Row& row, size_t n) {
  size_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n && i < row.size(); ++i) {
    h ^= row[i].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool RowsNotDistinct(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!Value::NotDistinct(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace msql

#ifndef MSQL_COMMON_VALUE_H_
#define MSQL_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace msql {

// A dynamically typed SQL value. Values are small (kind tag + payload) and
// copyable; strings are stored inline. NULL is its own kind so that untyped
// NULLs flow through expressions before coercion.
class Value {
 public:
  Value() : kind_(TypeKind::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.kind_ = TypeKind::kBool;
    v.i_ = b ? 1 : 0;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.kind_ = TypeKind::kInt64;
    v.i_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.kind_ = TypeKind::kDouble;
    v.d_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.kind_ = TypeKind::kString;
    v.s_ = std::move(s);
    return v;
  }
  static Value Date(int64_t days) {
    Value v;
    v.kind_ = TypeKind::kDate;
    v.i_ = days;
    return v;
  }

  TypeKind kind() const { return kind_; }
  bool is_null() const { return kind_ == TypeKind::kNull; }

  bool bool_val() const { return i_ != 0; }
  int64_t int_val() const { return i_; }
  double double_val() const { return d_; }
  const std::string& str() const { return s_; }
  int64_t date_days() const { return i_; }

  // Numeric coercion (INT64 / DOUBLE / BOOL -> double). Callers must have
  // checked is_null() and numeric-ness.
  double AsDouble() const;

  // Casts to the requested kind; SQL CAST semantics (string parsing included).
  Result<Value> CastTo(TypeKind target) const;

  // SQL `IS NOT DISTINCT FROM`: NULL matches NULL; used for group keys and
  // evaluation-context dimension terms (paper footnote 1).
  static bool NotDistinct(const Value& a, const Value& b);

  // Three-valued `=`: returns Null if either side is NULL.
  static Value SqlEquals(const Value& a, const Value& b);

  // Total order for ORDER BY: NULLs first, numeric cross-type comparison.
  // Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  // Hash consistent with NotDistinct (for hash aggregation / joins).
  size_t Hash() const;

  // Rendering used in result sets ('NULL', 'Happy', 2023-11-28, 0.47, ...).
  std::string ToString() const;

  // Rendering as a SQL literal (strings quoted, DATE '...' prefix); used by
  // the measure-expansion module when it prints rewritten queries.
  std::string ToSqlLiteral() const;

 private:
  TypeKind kind_;
  int64_t i_ = 0;  // bool / int / date payload
  double d_ = 0;   // double payload
  std::string s_;  // string payload
};

using Row = std::vector<Value>;

// Hash of a row prefix (the first `n` values), used for group keys.
size_t HashRow(const Row& row, size_t n);

// NotDistinct over all values of two equal-length rows.
bool RowsNotDistinct(const Row& a, const Row& b);

}  // namespace msql

#endif  // MSQL_COMMON_VALUE_H_

#include "engine/engine.h"

#include <fstream>

#include "binder/binder.h"
#include "catalog/csv.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "exec/executor.h"
#include "measure/cse.h"
#include "measure/expand.h"
#include "parser/parser.h"

namespace msql {

Status Engine::Execute(const std::string& sql) {
  Parser parser(sql);
  MSQL_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, parser.ParseStatements());
  for (const StmtPtr& stmt : stmts) {
    ResultSet ignored;
    MSQL_RETURN_IF_ERROR(ExecuteStmt(*stmt, &ignored));
  }
  return Status::Ok();
}

Result<ResultSet> Engine::Query(const std::string& sql) {
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::Parse(sql));
  ResultSet out;
  MSQL_RETURN_IF_ERROR(ExecuteStmt(*stmt, &out));
  return out;
}

Result<ResultSet> Engine::Query(const std::string& sql,
                                CancelTokenPtr cancel) {
  // Install the token for the duration of this call; restore on exit so
  // Query-within-Query (COPY of a view) keeps its own scope.
  CancelTokenPtr saved = std::move(active_cancel_);
  active_cancel_ = std::move(cancel);
  Result<ResultSet> result = Query(sql);
  active_cancel_ = std::move(saved);
  return result;
}

Result<ResultSet> Engine::RunSelect(const SelectStmt& select) {
  MSQL_FAULT_POINT("engine.select");
  Binder binder(&catalog_, user_, options_.max_recursion_depth);
  MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(select));

  last_stats_ = ExecState{};
  last_stats_.options = options_;
  last_stats_.guard.Arm(options_.timeout_ms, options_.max_memory_bytes,
                        options_.max_result_rows, active_cancel_,
                        cancel_generation_);
  Executor executor(&last_stats_);
  MSQL_ASSIGN_OR_RETURN(RelationPtr rel, executor.Execute(*plan, {}));

  const size_t visible = rel->schema.num_visible();
  std::vector<std::string> names;
  std::vector<DataType> types;
  for (size_t i = 0; i < visible; ++i) {
    names.push_back(rel->schema.column(i).name);
    types.push_back(rel->schema.column(i).type);
  }
  MSQL_RETURN_IF_ERROR(last_stats_.guard.ChargeRows(rel->rows.size(), visible));
  std::vector<Row> rows;
  rows.reserve(rel->rows.size());
  for (const Row& r : rel->rows) {
    rows.emplace_back(r.begin(), r.begin() + visible);
  }

  // Measure columns surviving to the top level are rendered at the result's
  // own grain: each cell is the measure evaluated with every dimension
  // pinned to its row (the default per-row evaluation context). Inside
  // nested queries the placeholder NULLs are never read, preserving closure.
  for (const RtMeasure& m : rel->measures) {
    if (m.column < 0 || static_cast<size_t>(m.column) >= visible) continue;
    for (size_t r = 0; r < rel->rows.size(); ++r) {
      MSQL_RETURN_IF_ERROR(last_stats_.guard.Check());
      Frame frame{&rel->rows[r], static_cast<int64_t>(r), rel.get()};
      MSQL_ASSIGN_OR_RETURN(EvalContext ctx,
                            BuildRowContext(m, frame, &last_stats_));
      MSQL_ASSIGN_OR_RETURN(Value v, EvaluateMeasure(m, ctx, &last_stats_));
      rows[r][m.column] = std::move(v);
    }
  }
  return ResultSet(std::move(names), std::move(types), std::move(rows));
}

Status Engine::ExecuteStmt(const Stmt& stmt, ResultSet* out) {
  MSQL_FAULT_POINT("engine.stmt");
  switch (stmt.kind) {
    case StmtKind::kSelect: {
      MSQL_ASSIGN_OR_RETURN(*out, RunSelect(*stmt.select));
      return Status::Ok();
    }
    case StmtKind::kCreateTable: {
      Schema schema;
      for (const ColumnDef& col : stmt.columns) {
        TypeKind kind = TypeKindFromName(col.type_name);
        if (kind == TypeKind::kNull) {
          return Status(ErrorCode::kBind,
                        "unknown column type '" + col.type_name + "'");
        }
        schema.AddColumn(Column(col.name, DataType(kind)));
      }
      return catalog_.CreateTable(stmt.name, std::move(schema),
                                  stmt.if_not_exists, user_);
    }
    case StmtKind::kCreateView: {
      // Validate eagerly so errors surface at CREATE time.
      Binder binder(&catalog_, user_, options_.max_recursion_depth);
      MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*stmt.view_select));
      (void)plan;
      return catalog_.CreateView(stmt.name, stmt.view_select->Clone(),
                                 stmt.or_replace, user_);
    }
    case StmtKind::kDrop:
      return catalog_.Drop(stmt.name, stmt.drop_is_view, stmt.if_exists);
    case StmtKind::kInsert:
      return ExecuteInsert(stmt);
    case StmtKind::kExplain: {
      MSQL_ASSIGN_OR_RETURN(std::string text, Explain(stmt.select->ToString()));
      std::vector<Row> rows;
      for (const std::string& line : Split(text, '\n')) {
        if (!line.empty()) rows.push_back({Value::String(line)});
      }
      *out = ResultSet({"plan"}, {DataType::String()}, std::move(rows));
      return Status::Ok();
    }
    case StmtKind::kCopy: {
      if (stmt.copy_from) {
        return LoadCsv(stmt.name, stmt.copy_path);
      }
      // Export: base tables dump storage directly; views are materialized.
      const CatalogEntry* entry = catalog_.Find(stmt.name);
      if (entry == nullptr) {
        return Status(ErrorCode::kCatalog,
                      "object '" + stmt.name + "' does not exist");
      }
      MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, user_));
      if (entry->kind == CatalogEntry::Kind::kTable) {
        return WriteCsv(stmt.copy_path, *entry->table);
      }
      MSQL_ASSIGN_OR_RETURN(ResultSet rs,
                            Query("SELECT * FROM " + stmt.name));
      std::ofstream file(stmt.copy_path, std::ios::binary);
      if (!file) {
        return Status(ErrorCode::kIo,
                      "cannot write file '" + stmt.copy_path + "'");
      }
      file << rs.ToCsv();
      return Status::Ok();
    }
    case StmtKind::kDescribe: {
      const CatalogEntry* entry = catalog_.Find(stmt.name);
      if (entry == nullptr) {
        return Status(ErrorCode::kCatalog,
                      "object '" + stmt.name + "' does not exist");
      }
      MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, user_));
      std::vector<Row> rows;
      if (entry->kind == CatalogEntry::Kind::kTable) {
        for (const Column& c : entry->table->schema().columns()) {
          rows.push_back(
              {Value::String(c.name), Value::String(c.type.ToString())});
        }
      } else {
        Binder binder(&catalog_, user_, options_.max_recursion_depth);
        MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*entry->view_ast));
        for (size_t i = 0; i < plan->schema.num_visible(); ++i) {
          const Column& c = plan->schema.column(i);
          rows.push_back(
              {Value::String(c.name), Value::String(c.type.ToString())});
        }
      }
      *out = ResultSet({"column", "type"},
                       {DataType::String(), DataType::String()},
                       std::move(rows));
      return Status::Ok();
    }
  }
  return Status(ErrorCode::kInvalidArgument, "unsupported statement");
}

Status Engine::ExecuteInsert(const Stmt& stmt) {
  CatalogEntry* entry = catalog_.FindMutable(stmt.insert_table);
  if (entry == nullptr || entry->kind != CatalogEntry::Kind::kTable) {
    return Status(ErrorCode::kCatalog,
                  "table '" + stmt.insert_table + "' does not exist");
  }
  MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, user_));
  Table* table = entry->table.get();
  const Schema& schema = table->schema();

  // Map the insert column list onto the schema.
  std::vector<int> positions;
  if (stmt.insert_columns.empty()) {
    for (size_t i = 0; i < schema.size(); ++i) {
      positions.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt.insert_columns) {
      auto matches = schema.Find("", name);
      if (matches.size() != 1) {
        return Status(ErrorCode::kBind, "unknown column '" + name + "'");
      }
      positions.push_back(static_cast<int>(matches[0]));
    }
  }

  auto append = [&](const Row& values) -> Status {
    if (values.size() != positions.size()) {
      return Status(ErrorCode::kExecution,
                    StrCat("INSERT expects ", positions.size(),
                           " values, got ", values.size()));
    }
    Row row(schema.size(), Value::Null());
    for (size_t i = 0; i < positions.size(); ++i) {
      row[positions[i]] = values[i];
    }
    return table->AppendRow(std::move(row));
  };

  if (stmt.insert_select != nullptr) {
    MSQL_ASSIGN_OR_RETURN(ResultSet rs, RunSelect(*stmt.insert_select));
    for (const Row& r : rs.rows()) MSQL_RETURN_IF_ERROR(append(r));
    return Status::Ok();
  }

  // INSERT ... VALUES rows are constant expressions; evaluate each row by
  // reusing the FROM-less SELECT path.
  for (const auto& row_exprs : stmt.insert_rows) {
    SelectStmt values_select;
    for (const ExprPtr& e : row_exprs) {
      SelectItem item;
      item.expr = e->Clone();
      values_select.select_list.push_back(std::move(item));
    }
    MSQL_ASSIGN_OR_RETURN(ResultSet rs, RunSelect(values_select));
    if (rs.num_rows() != 1) {
      return Status(ErrorCode::kExecution, "VALUES row evaluation failed");
    }
    MSQL_RETURN_IF_ERROR(append(rs.rows()[0]));
  }
  return Status::Ok();
}

Status Engine::InsertRows(const std::string& table, std::vector<Row> rows) {
  CatalogEntry* entry = catalog_.FindMutable(table);
  if (entry == nullptr || entry->kind != CatalogEntry::Kind::kTable) {
    return Status(ErrorCode::kCatalog, "table '" + table + "' does not exist");
  }
  MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, user_));
  for (Row& row : rows) {
    MSQL_RETURN_IF_ERROR(entry->table->AppendRow(std::move(row)));
  }
  return Status::Ok();
}

Result<std::string> Engine::Explain(const std::string& sql) {
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::Parse(sql));
  const SelectStmt* select = nullptr;
  if (stmt->kind == StmtKind::kSelect || stmt->kind == StmtKind::kExplain) {
    select = stmt->select.get();
  } else {
    return Status(ErrorCode::kInvalidArgument, "EXPLAIN requires a SELECT");
  }
  Binder binder(&catalog_, user_, options_.max_recursion_depth);
  MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*select));
  return plan->ToString();
}

Result<std::string> Engine::ExpandSql(const std::string& sql) {
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::Parse(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status(ErrorCode::kInvalidArgument,
                  "measure expansion requires a SELECT");
  }
  return ExpandMeasures(*stmt->select, catalog_, user_);
}

Status Engine::LoadCsv(const std::string& table, const std::string& path,
                       bool header) {
  CatalogEntry* entry = catalog_.FindMutable(table);
  if (entry == nullptr || entry->kind != CatalogEntry::Kind::kTable) {
    return Status(ErrorCode::kCatalog, "table '" + table + "' does not exist");
  }
  MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, user_));
  return AppendCsv(path, header, entry->table.get());
}

Status Engine::ImportCsv(const std::string& table, const std::string& path) {
  MSQL_ASSIGN_OR_RETURN(Schema schema, InferCsvSchema(path));
  MSQL_RETURN_IF_ERROR(
      catalog_.CreateTable(table, schema, /*if_not_exists=*/false, user_));
  return LoadCsv(table, path, /*header=*/true);
}

Status Engine::Grant(const std::string& object, const std::string& user) {
  return catalog_.Grant(object, user);
}

}  // namespace msql

#include "engine/engine.h"

#include <fstream>

#include "binder/binder.h"
#include "catalog/csv.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "exec/executor.h"
#include "measure/cse.h"
#include "measure/expand.h"
#include "parser/parser.h"
#include "runtime/session.h"

namespace msql {

Status Engine::Execute(const std::string& sql) {
  return ExecuteWith(sql, DefaultContext(nullptr));
}

Status Engine::ExecuteWith(const std::string& sql, const QueryContext& ctx) {
  Parser parser(sql);
  MSQL_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, parser.ParseStatements());
  for (const StmtPtr& stmt : stmts) {
    ResultSet ignored;
    MSQL_RETURN_IF_ERROR(ExecuteStmt(*stmt, &ignored, ctx));
  }
  return Status::Ok();
}

Result<ResultSet> Engine::Query(const std::string& sql) {
  return QueryWith(sql, DefaultContext(nullptr));
}

Result<ResultSet> Engine::Query(const std::string& sql,
                                CancelTokenPtr cancel) {
  return QueryWith(sql, DefaultContext(std::move(cancel)));
}

Result<ResultSet> Engine::QueryWith(const std::string& sql,
                                    const QueryContext& ctx) {
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::Parse(sql));
  ResultSet out;
  MSQL_RETURN_IF_ERROR(ExecuteStmt(*stmt, &out, ctx));
  return out;
}

SessionPtr Engine::CreateSession() {
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return SessionPtr(new Session(this, id, options_, user_));
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.queries = stats_.queries.load(std::memory_order_relaxed);
  s.measure_evals = stats_.measure_evals.load(std::memory_order_relaxed);
  s.measure_cache_hits =
      stats_.measure_cache_hits.load(std::memory_order_relaxed);
  s.measure_source_scans =
      stats_.measure_source_scans.load(std::memory_order_relaxed);
  s.subquery_execs = stats_.subquery_execs.load(std::memory_order_relaxed);
  s.subquery_cache_hits =
      stats_.subquery_cache_hits.load(std::memory_order_relaxed);
  s.shared_cache_hits =
      stats_.shared_cache_hits.load(std::memory_order_relaxed);
  s.shared_cache_misses =
      stats_.shared_cache_misses.load(std::memory_order_relaxed);
  const SharedMeasureCache::Stats cache = shared_cache_.stats();
  s.shared_cache_insertions = cache.insertions;
  s.shared_cache_evictions = cache.evictions;
  s.shared_cache_entries = cache.entries;
  s.shared_cache_bytes = cache.bytes;
  return s;
}

void Engine::AccumulateStats(ExecState&& state) {
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  stats_.measure_evals.fetch_add(state.measure_evals,
                                 std::memory_order_relaxed);
  stats_.measure_cache_hits.fetch_add(state.measure_cache_hits,
                                      std::memory_order_relaxed);
  stats_.measure_source_scans.fetch_add(state.measure_source_scans,
                                        std::memory_order_relaxed);
  stats_.subquery_execs.fetch_add(state.subquery_execs,
                                  std::memory_order_relaxed);
  stats_.subquery_cache_hits.fetch_add(state.subquery_cache_hits,
                                       std::memory_order_relaxed);
  stats_.shared_cache_hits.fetch_add(state.shared_cache_hits,
                                     std::memory_order_relaxed);
  stats_.shared_cache_misses.fetch_add(state.shared_cache_misses,
                                       std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(last_stats_mu_);
  last_stats_ = std::move(state);
}

void Engine::NoteCatalogMutation() {
  catalog_.BumpGeneration();
  shared_cache_.InvalidateOlderThan(catalog_.generation());
}

Result<ResultSet> Engine::RunSelect(const SelectStmt& select,
                                    const QueryContext& ctx) {
  ExecState state;
  Result<ResultSet> result = RunSelectImpl(select, ctx, &state);
  AccumulateStats(std::move(state));
  return result;
}

Result<ResultSet> Engine::RunSelectImpl(const SelectStmt& select,
                                        const QueryContext& ctx,
                                        ExecState* state) {
  MSQL_FAULT_POINT("engine.select");
  Binder binder(&catalog_, ctx.user, ctx.options.max_recursion_depth);
  MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(select));

  state->options = ctx.options;
  if (ctx.options.measure_strategy == MeasureStrategy::kMemoized) {
    state->shared_cache = &shared_cache_;
    state->catalog_generation = catalog_.generation();
  }
  state->guard.Arm(ctx.options.timeout_ms, ctx.options.max_memory_bytes,
                   ctx.options.max_result_rows, ctx.cancel,
                   cancel_generation_);
  Executor executor(state);
  MSQL_ASSIGN_OR_RETURN(RelationPtr rel, executor.Execute(*plan, {}));

  const size_t visible = rel->schema.num_visible();
  std::vector<std::string> names;
  std::vector<DataType> types;
  for (size_t i = 0; i < visible; ++i) {
    names.push_back(rel->schema.column(i).name);
    types.push_back(rel->schema.column(i).type);
  }
  MSQL_RETURN_IF_ERROR(state->guard.ChargeRows(rel->rows.size(), visible));
  std::vector<Row> rows;
  rows.reserve(rel->rows.size());
  for (const Row& r : rel->rows) {
    rows.emplace_back(r.begin(), r.begin() + visible);
  }

  // Measure columns surviving to the top level are rendered at the result's
  // own grain: each cell is the measure evaluated with every dimension
  // pinned to its row (the default per-row evaluation context). Inside
  // nested queries the placeholder NULLs are never read, preserving closure.
  for (const RtMeasure& m : rel->measures) {
    if (m.column < 0 || static_cast<size_t>(m.column) >= visible) continue;
    for (size_t r = 0; r < rel->rows.size(); ++r) {
      MSQL_RETURN_IF_ERROR(state->guard.Check());
      Frame frame{&rel->rows[r], static_cast<int64_t>(r), rel.get()};
      MSQL_ASSIGN_OR_RETURN(EvalContext ctx2,
                            BuildRowContext(m, frame, state));
      MSQL_ASSIGN_OR_RETURN(Value v, EvaluateMeasure(m, ctx2, state));
      rows[r][m.column] = std::move(v);
    }
  }
  return ResultSet(std::move(names), std::move(types), std::move(rows));
}

Status Engine::ExecuteStmt(const Stmt& stmt, ResultSet* out,
                           const QueryContext& ctx) {
  MSQL_FAULT_POINT("engine.stmt");
  switch (stmt.kind) {
    case StmtKind::kSelect: {
      MSQL_ASSIGN_OR_RETURN(*out, RunSelect(*stmt.select, ctx));
      return Status::Ok();
    }
    case StmtKind::kCreateTable: {
      Schema schema;
      for (const ColumnDef& col : stmt.columns) {
        TypeKind kind = TypeKindFromName(col.type_name);
        if (kind == TypeKind::kNull) {
          return Status(ErrorCode::kBind,
                        "unknown column type '" + col.type_name + "'");
        }
        schema.AddColumn(Column(col.name, DataType(kind)));
      }
      MSQL_RETURN_IF_ERROR(catalog_.CreateTable(
          stmt.name, std::move(schema), stmt.if_not_exists, ctx.user));
      NoteCatalogMutation();
      return Status::Ok();
    }
    case StmtKind::kCreateView: {
      // Validate eagerly so errors surface at CREATE time.
      Binder binder(&catalog_, ctx.user, ctx.options.max_recursion_depth);
      MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*stmt.view_select));
      (void)plan;
      MSQL_RETURN_IF_ERROR(catalog_.CreateView(
          stmt.name, stmt.view_select->Clone(), stmt.or_replace, ctx.user));
      NoteCatalogMutation();
      return Status::Ok();
    }
    case StmtKind::kDrop: {
      MSQL_RETURN_IF_ERROR(
          catalog_.Drop(stmt.name, stmt.drop_is_view, stmt.if_exists));
      NoteCatalogMutation();
      return Status::Ok();
    }
    case StmtKind::kInsert:
      return ExecuteInsert(stmt, ctx);
    case StmtKind::kExplain: {
      MSQL_ASSIGN_OR_RETURN(std::string text, Explain(stmt.select->ToString()));
      std::vector<Row> rows;
      for (const std::string& line : Split(text, '\n')) {
        if (!line.empty()) rows.push_back({Value::String(line)});
      }
      *out = ResultSet({"plan"}, {DataType::String()}, std::move(rows));
      return Status::Ok();
    }
    case StmtKind::kCopy: {
      if (stmt.copy_from) {
        return LoadCsv(stmt.name, stmt.copy_path);
      }
      // Export: base tables dump storage directly; views are materialized.
      const auto entry = catalog_.Find(stmt.name);
      if (entry == nullptr) {
        return Status(ErrorCode::kCatalog,
                      "object '" + stmt.name + "' does not exist");
      }
      MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, ctx.user));
      if (entry->kind == CatalogEntry::Kind::kTable) {
        return WriteCsv(stmt.copy_path, *entry->table);
      }
      MSQL_ASSIGN_OR_RETURN(ResultSet rs,
                            QueryWith("SELECT * FROM " + stmt.name, ctx));
      std::ofstream file(stmt.copy_path, std::ios::binary);
      if (!file) {
        return Status(ErrorCode::kIo,
                      "cannot write file '" + stmt.copy_path + "'");
      }
      file << rs.ToCsv();
      return Status::Ok();
    }
    case StmtKind::kDescribe: {
      const auto entry = catalog_.Find(stmt.name);
      if (entry == nullptr) {
        return Status(ErrorCode::kCatalog,
                      "object '" + stmt.name + "' does not exist");
      }
      MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, ctx.user));
      std::vector<Row> rows;
      if (entry->kind == CatalogEntry::Kind::kTable) {
        for (const Column& c : entry->table->schema().columns()) {
          rows.push_back(
              {Value::String(c.name), Value::String(c.type.ToString())});
        }
      } else {
        Binder binder(&catalog_, ctx.user, ctx.options.max_recursion_depth);
        MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*entry->view_ast));
        for (size_t i = 0; i < plan->schema.num_visible(); ++i) {
          const Column& c = plan->schema.column(i);
          rows.push_back(
              {Value::String(c.name), Value::String(c.type.ToString())});
        }
      }
      *out = ResultSet({"column", "type"},
                       {DataType::String(), DataType::String()},
                       std::move(rows));
      return Status::Ok();
    }
  }
  return Status(ErrorCode::kInvalidArgument, "unsupported statement");
}

Status Engine::ExecuteInsert(const Stmt& stmt, const QueryContext& ctx) {
  const auto entry = catalog_.Find(stmt.insert_table);
  if (entry == nullptr || entry->kind != CatalogEntry::Kind::kTable) {
    return Status(ErrorCode::kCatalog,
                  "table '" + stmt.insert_table + "' does not exist");
  }
  MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, ctx.user));
  Table* table = entry->table.get();
  const Schema& schema = table->schema();

  // Map the insert column list onto the schema.
  std::vector<int> positions;
  if (stmt.insert_columns.empty()) {
    for (size_t i = 0; i < schema.size(); ++i) {
      positions.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt.insert_columns) {
      auto matches = schema.Find("", name);
      if (matches.size() != 1) {
        return Status(ErrorCode::kBind, "unknown column '" + name + "'");
      }
      positions.push_back(static_cast<int>(matches[0]));
    }
  }

  // Collect the full batch first so the table mutation is one locked
  // append and one generation bump.
  std::vector<Row> batch;
  auto stage = [&](const Row& values) -> Status {
    if (values.size() != positions.size()) {
      return Status(ErrorCode::kExecution,
                    StrCat("INSERT expects ", positions.size(),
                           " values, got ", values.size()));
    }
    Row row(schema.size(), Value::Null());
    for (size_t i = 0; i < positions.size(); ++i) {
      row[positions[i]] = values[i];
    }
    batch.push_back(std::move(row));
    return Status::Ok();
  };

  if (stmt.insert_select != nullptr) {
    MSQL_ASSIGN_OR_RETURN(ResultSet rs, RunSelect(*stmt.insert_select, ctx));
    for (const Row& r : rs.rows()) MSQL_RETURN_IF_ERROR(stage(r));
  } else {
    // INSERT ... VALUES rows are constant expressions; evaluate each row by
    // reusing the FROM-less SELECT path.
    for (const auto& row_exprs : stmt.insert_rows) {
      SelectStmt values_select;
      for (const ExprPtr& e : row_exprs) {
        SelectItem item;
        item.expr = e->Clone();
        values_select.select_list.push_back(std::move(item));
      }
      MSQL_ASSIGN_OR_RETURN(ResultSet rs, RunSelect(values_select, ctx));
      if (rs.num_rows() != 1) {
        return Status(ErrorCode::kExecution, "VALUES row evaluation failed");
      }
      MSQL_RETURN_IF_ERROR(stage(rs.rows()[0]));
    }
  }
  MSQL_RETURN_IF_ERROR(table->AppendRows(std::move(batch)));
  NoteCatalogMutation();
  return Status::Ok();
}

Status Engine::InsertRows(const std::string& table, std::vector<Row> rows) {
  const auto entry = catalog_.Find(table);
  if (entry == nullptr || entry->kind != CatalogEntry::Kind::kTable) {
    return Status(ErrorCode::kCatalog, "table '" + table + "' does not exist");
  }
  MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, user_));
  MSQL_RETURN_IF_ERROR(entry->table->AppendRows(std::move(rows)));
  NoteCatalogMutation();
  return Status::Ok();
}

Result<std::string> Engine::Explain(const std::string& sql) {
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::Parse(sql));
  const SelectStmt* select = nullptr;
  if (stmt->kind == StmtKind::kSelect || stmt->kind == StmtKind::kExplain) {
    select = stmt->select.get();
  } else {
    return Status(ErrorCode::kInvalidArgument, "EXPLAIN requires a SELECT");
  }
  Binder binder(&catalog_, user_, options_.max_recursion_depth);
  MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*select));
  return plan->ToString();
}

Result<std::string> Engine::ExpandSql(const std::string& sql) {
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::Parse(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status(ErrorCode::kInvalidArgument,
                  "measure expansion requires a SELECT");
  }
  return ExpandMeasures(*stmt->select, catalog_, user_);
}

Status Engine::LoadCsv(const std::string& table, const std::string& path,
                       bool header) {
  const auto entry = catalog_.Find(table);
  if (entry == nullptr || entry->kind != CatalogEntry::Kind::kTable) {
    return Status(ErrorCode::kCatalog, "table '" + table + "' does not exist");
  }
  MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, user_));
  MSQL_RETURN_IF_ERROR(AppendCsv(path, header, entry->table.get()));
  NoteCatalogMutation();
  return Status::Ok();
}

Status Engine::ImportCsv(const std::string& table, const std::string& path) {
  MSQL_ASSIGN_OR_RETURN(Schema schema, InferCsvSchema(path));
  MSQL_RETURN_IF_ERROR(
      catalog_.CreateTable(table, schema, /*if_not_exists=*/false, user_));
  NoteCatalogMutation();
  return LoadCsv(table, path, /*header=*/true);
}

Status Engine::Grant(const std::string& object, const std::string& user) {
  MSQL_RETURN_IF_ERROR(catalog_.Grant(object, user));
  NoteCatalogMutation();
  return Status::Ok();
}

}  // namespace msql

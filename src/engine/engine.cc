#include "engine/engine.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "binder/binder.h"
#include "catalog/csv.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "exec/executor.h"
#include "measure/cse.h"
#include "measure/expand.h"
#include "measure/grouped.h"
#include "parser/parser.h"
#include "parser/unparser.h"
#include "runtime/fingerprint.h"
#include "runtime/session.h"

namespace msql {

namespace {

int64_t ElapsedUsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Plan-cache text key normalization: strip surrounding whitespace and the
// trailing ';' so trivially different renderings of the same statement
// share one cache entry. Anything deeper (casing, internal spacing) is
// covered by the canonical-unparse alias key.
std::string TrimStatementText(const std::string& sql) {
  size_t begin = sql.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return std::string();
  size_t end = sql.find_last_not_of(" \t\r\n");
  while (end > begin && sql[end] == ';') {
    --end;
    while (end > begin && std::isspace(static_cast<unsigned char>(sql[end]))) {
      --end;
    }
  }
  return sql.substr(begin, end - begin + 1);
}

// Rendered parameter-value tuple, appended to cross-query shared-cache
// keys (ExecState::param_sig): `?` placeholders fingerprint structurally,
// so the bound values must join the key for it to stay injective.
std::string RenderParamSig(const Row& params) {
  std::string sig = "p[";
  for (const Value& v : params) {
    sig += v.ToSqlLiteral();
    sig += ',';
  }
  sig += ']';
  return sig;
}

}  // namespace

void Engine::InitObs() {
  ins_.queries = metrics_.GetCounter(
      "msql_queries_total", "SELECT statements executed");
  ins_.query_errors = metrics_.GetCounter(
      "msql_query_errors_total", "SELECT statements that returned an error");
  ins_.measure_evals = metrics_.GetCounter(
      "msql_measure_evals_total", "Measure evaluations requested");
  ins_.measure_cache_hits = metrics_.GetCounter(
      "msql_measure_cache_hits_total", "Measure evaluations served from the "
      "per-query context cache");
  ins_.measure_source_scans = metrics_.GetCounter(
      "msql_measure_source_scans_total",
      "Full passes over a measure's source relation");
  ins_.measure_inline_evals = metrics_.GetCounter(
      "msql_measure_inline_evals_total",
      "Measure evaluations taking the row-id inline fast path");
  ins_.measure_grouped_builds = metrics_.GetCounter(
      "msql_measure_grouped_builds_total",
      "Grouped-strategy dimension-index builds");
  ins_.measure_grouped_probes = metrics_.GetCounter(
      "msql_measure_grouped_probes_total",
      "Measure evaluations answered by a grouped-index probe");
  ins_.measure_grouped_fallbacks = metrics_.GetCounter(
      "msql_measure_grouped_fallbacks_total",
      "Grouped index builds degraded to the scan path (fault injection)");
  ins_.measure_parallel_tasks = metrics_.GetCounter(
      "msql_measure_parallel_tasks_total",
      "Morsel-parallel measure evaluation worker tasks dispatched");
  ins_.subquery_execs = metrics_.GetCounter(
      "msql_subquery_execs_total", "Correlated subquery executions");
  ins_.subquery_cache_hits = metrics_.GetCounter(
      "msql_subquery_cache_hits_total",
      "Correlated subquery results served from the memo cache");
  ins_.shared_cache_hits = metrics_.GetCounter(
      "msql_shared_cache_hits_total", "Cross-query shared cache hits");
  ins_.shared_cache_misses = metrics_.GetCounter(
      "msql_shared_cache_misses_total", "Cross-query shared cache misses");
  ins_.exec_vectorized_batches = metrics_.GetCounter(
      "msql_exec_vectorized_batches_total",
      "1024-row column batches processed by vectorized kernels");
  ins_.exec_row_fallbacks = metrics_.GetCounter(
      "msql_exec_row_fallbacks_total",
      "Operator invocations that fell back to row-at-a-time execution");
  ins_.shared_cache_insertions = metrics_.GetCounter(
      "msql_shared_cache_insertions_total", "Cross-query shared cache fills");
  ins_.shared_cache_evictions = metrics_.GetCounter(
      "msql_shared_cache_evictions_total",
      "Cross-query shared cache entries evicted (LRU or invalidation)");
  ins_.shared_cache_invalidations = metrics_.GetCounter(
      "msql_shared_cache_invalidations_total",
      "Generation invalidations of the cross-query shared cache");
  ins_.sessions_created = metrics_.GetCounter(
      "msql_sessions_created_total", "Sessions created over engine lifetime");
  ins_.breaker_short_circuits = metrics_.GetCounter(
      "msql_breaker_short_circuits_total",
      "Degradable operations skipped because a circuit breaker was open");
  ins_.slow_queries = metrics_.GetCounter(
      "msql_slow_queries_total",
      "Traced queries at or above the slow-query threshold");
  ins_.obs_sink_errors = metrics_.GetCounter(
      "msql_obs_sink_errors_total",
      "Trace sink emissions that failed (queries are unaffected)");
  ins_.plan_cache_hits = metrics_.GetCounter(
      "msql_plan_cache_hits_total",
      "Plan cache lookups that returned a fresh bound plan");
  ins_.plan_cache_misses = metrics_.GetCounter(
      "msql_plan_cache_misses_total",
      "Plan cache lookups that required a fresh parse + bind");
  ins_.plan_cache_evictions = metrics_.GetCounter(
      "msql_plan_cache_evictions_total",
      "Prepared plans evicted from the plan cache (LRU)");
  ins_.plan_cache_invalidations = metrics_.GetCounter(
      "msql_plan_cache_invalidations_total",
      "Cached plans dropped on probe because the catalog generation moved");
  ins_.sessions_active = metrics_.GetGauge(
      "msql_sessions_active", "Sessions currently alive");
  ins_.shared_cache_entries = metrics_.GetGauge(
      "msql_shared_cache_entries", "Cross-query shared cache entries");
  ins_.shared_cache_bytes = metrics_.GetGauge(
      "msql_shared_cache_bytes", "Cross-query shared cache approximate bytes");
  ins_.shared_cache_hit_ratio = metrics_.GetGauge(
      "msql_shared_cache_hit_ratio",
      "Cross-query shared cache hits / lookups over engine lifetime");
  ins_.plan_cache_entries = metrics_.GetGauge(
      "msql_plan_cache_entries",
      "Prepared plans currently cached (alias keys counted)");
  ins_.plan_cache_bytes = metrics_.GetGauge(
      "msql_plan_cache_bytes", "Plan cache approximate bytes");
  ins_.query_duration_ms = metrics_.GetHistogram(
      "msql_query_duration_ms", "SELECT wall time",
      obs::MetricsRegistry::LatencyBucketsMs());

  // Circuit breakers for the degradable fault points, mirrored into state
  // gauges (0 = closed, 1 = open, 2 = half-open).
  CircuitBreaker::Options bopts;
  bopts.window = options_.breaker_window;
  bopts.failure_ratio = options_.breaker_failure_ratio;
  bopts.min_samples = options_.breaker_min_samples;
  bopts.open_cooldown_ms = options_.breaker_open_cooldown_ms;
  bopts.half_open_probes = options_.breaker_half_open_probes;
  grouped_build_breaker_.Configure(bopts);
  cache_fill_breaker_.Configure(bopts);
  grouped_build_breaker_.set_state_gauge(metrics_.GetGauge(
      "msql_circuit_grouped_build_state",
      "Grouped-index build breaker state (0=closed, 1=open, 2=half-open)"));
  cache_fill_breaker_.set_state_gauge(metrics_.GetGauge(
      "msql_circuit_cache_fill_state",
      "Shared-cache fill breaker state (0=closed, 1=open, 2=half-open)"));

  // Built-in sinks. The ring buffer always exists (RecentTraces() reports
  // empty until tracing is enabled); the slow-query log only when asked.
  ring_sink_ =
      std::make_shared<obs::RingBufferSink>(options_.trace_ring_capacity);
  trace_collector_.AddSink(ring_sink_);
  slow_log_threshold_ms_ = options_.slow_query_log_ms;
  if (options_.slow_query_log_ms >= 0) {
    std::shared_ptr<obs::SlowQueryLogSink> slow;
    if (options_.slow_query_log_path.empty()) {
      slow = std::make_shared<obs::SlowQueryLogSink>(
          options_.slow_query_log_ms, &std::cerr);
    } else {
      slow = obs::SlowQueryLogSink::OpenFile(options_.slow_query_log_ms,
                                             options_.slow_query_log_path);
    }
    trace_collector_.AddSink(std::move(slow));
  }

  RegisterBuiltinSystemTables();
}

void Engine::RegisterBuiltinSystemTables() {
  // msql_system.metrics: one row per exported sample (histograms flattened
  // to _count/_sum), the SQL view of MetricsText().
  system_tables_.Register("msql_system.metrics", [this] {
    SyncCacheMetrics();
    Schema schema;
    schema.AddColumn(Column("name", DataType::String()));
    schema.AddColumn(Column("kind", DataType::String()));
    schema.AddColumn(Column("value", DataType::Double()));
    schema.AddColumn(Column("help", DataType::String()));
    auto table =
        std::make_shared<Table>("msql_system.metrics", std::move(schema));
    std::vector<Row> rows;
    for (const obs::MetricsRegistry::Sample& s : metrics_.Samples()) {
      rows.push_back({Value::String(s.name), Value::String(s.kind),
                      Value::Double(s.value), Value::String(s.help)});
    }
    (void)table->AppendRows(std::move(rows));
    return table;
  });

  // msql_system.queries: the trace ring flattened to one row per traced
  // statement, newest first, with the per-phase wall times FinishSelect
  // recorded. Queryable with plain SELECTs and with measures.
  system_tables_.Register("msql_system.queries", [this] {
    Schema schema;
    schema.AddColumn(Column("id", DataType::Int64()));
    schema.AddColumn(Column("trace_id", DataType::String()));
    schema.AddColumn(Column("user", DataType::String()));
    schema.AddColumn(Column("peer", DataType::String()));
    schema.AddColumn(Column("session_id", DataType::Int64()));
    schema.AddColumn(Column("sql", DataType::String()));
    schema.AddColumn(Column("status", DataType::String()));
    schema.AddColumn(Column("rows", DataType::Int64()));
    schema.AddColumn(Column("total_us", DataType::Int64()));
    schema.AddColumn(Column("admission_wait_us", DataType::Int64()));
    schema.AddColumn(Column("queue_wait_us", DataType::Int64()));
    schema.AddColumn(Column("parse_us", DataType::Int64()));
    schema.AddColumn(Column("bind_us", DataType::Int64()));
    schema.AddColumn(Column("measure_expand_us", DataType::Int64()));
    schema.AddColumn(Column("plan_us", DataType::Int64()));
    schema.AddColumn(Column("execute_us", DataType::Int64()));
    schema.AddColumn(Column("render_us", DataType::Int64()));
    schema.AddColumn(Column("plan_cache", DataType::String()));
    auto table =
        std::make_shared<Table>("msql_system.queries", std::move(schema));
    std::vector<Row> rows;
    for (const obs::TracePtr& t : RecentTraces()) {
      const QueryStats& qs = t->stats();
      const char* pc = "off";
      if (qs.plan_cache == QueryStats::PlanCacheOutcome::kMiss) pc = "miss";
      if (qs.plan_cache == QueryStats::PlanCacheOutcome::kHit) pc = "hit";
      rows.push_back({Value::Int(static_cast<int64_t>(t->id())),
                      Value::String(t->trace_id()), Value::String(t->user()),
                      Value::String(t->peer()),
                      Value::Int(static_cast<int64_t>(t->session_id())),
                      Value::String(t->sql()),
                      Value::String(t->ok() ? "ok"
                                            : ErrorCodeName(t->error_code())),
                      Value::Int(static_cast<int64_t>(t->rows_returned())),
                      Value::Int(t->total_us()),
                      Value::Int(qs.admission_wait_us),
                      Value::Int(qs.queue_wait_us), Value::Int(qs.parse_us),
                      Value::Int(qs.bind_us), Value::Int(qs.measure_expand_us),
                      Value::Int(qs.plan_us), Value::Int(qs.execute_us),
                      Value::Int(qs.render_us), Value::String(pc)});
    }
    (void)table->AppendRows(std::move(rows));
    return table;
  });
}

Status Engine::Execute(const std::string& sql) {
  return ExecuteWith(sql, DefaultContext(nullptr));
}

Status Engine::ExecuteWith(const std::string& sql, const QueryContext& ctx) {
  if (ctx.options.enable_tracing && ctx.trace == nullptr) {
    return ExecuteTraced(sql, ctx);
  }
  Parser parser(sql);
  MSQL_ASSIGN_OR_RETURN(std::vector<StmtPtr> stmts, parser.ParseStatements());
  for (const StmtPtr& stmt : stmts) {
    ResultSet ignored;
    MSQL_RETURN_IF_ERROR(ExecuteStmt(*stmt, &ignored, ctx));
  }
  return Status::Ok();
}

Result<ResultSet> Engine::Query(const std::string& sql) {
  return QueryWith(sql, DefaultContext(nullptr));
}

Result<ResultSet> Engine::Query(const std::string& sql,
                                CancelTokenPtr cancel) {
  return QueryWith(sql, DefaultContext(std::move(cancel)));
}

Result<ResultSet> Engine::QueryWith(const std::string& sql,
                                    const QueryContext& ctx) {
  QueryContext cctx = ctx;
  if (ctx.options.enable_plan_cache && ctx.plan_cache_text.empty()) {
    // Raw-text fast path: a repeated statement skips the parser entirely.
    // Misses remember the trimmed text so the fresh bind is indexed under
    // it (RunSelectImpl), warming the path for the next identical call.
    cctx.plan_cache_text = TrimStatementText(sql);
    if (PreparedPlanPtr cached = plan_cache_.Lookup(
            PlanCacheKey(ctx.user, cctx.plan_cache_text, {}),
            catalog_.generation())) {
      return QueryPlanned(cached, {}, ctx);
    }
  }
  if (ctx.options.enable_tracing && ctx.trace == nullptr) {
    return QueryTraced(sql, cctx);
  }
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::Parse(sql));
  ResultSet out;
  MSQL_RETURN_IF_ERROR(ExecuteStmt(*stmt, &out, cctx));
  return out;
}

Result<ResultSet> Engine::QueryTraced(const std::string& sql,
                                      const QueryContext& ctx) {
  auto trace = std::make_shared<obs::QueryTrace>(
      next_query_id_.fetch_add(1, std::memory_order_relaxed), sql,
      ctx.session_id, ctx.user);
  if (!ctx.trace_id.empty()) trace->set_trace_id(ctx.trace_id);
  if (!ctx.peer.empty()) trace->set_peer(ctx.peer);
  if (ctx.admission_wait_us > 0) {
    // Bounded-wait admission happened before the enqueue; render it as the
    // earliest negative-offset child of the root.
    trace->AddCompletedSpan("admission-wait",
                            -(ctx.admission_wait_us + ctx.queue_wait_us),
                            ctx.admission_wait_us);
  }
  if (ctx.queue_wait_us > 0) {
    // The wait happened before the trace clock started; render it as a
    // negative-offset child of the root.
    trace->set_queue_wait_us(ctx.queue_wait_us);
    trace->AddCompletedSpan("queue-wait", -ctx.queue_wait_us,
                            ctx.queue_wait_us);
  }
  QueryContext tctx = ctx;
  tctx.trace = trace.get();

  Result<ResultSet> result = [&]() -> Result<ResultSet> {
    StmtPtr stmt;
    {
      obs::ScopedSpan span(trace.get(), "parse");
      Result<StmtPtr> parsed = Parser::Parse(sql);
      if (!parsed.ok()) {
        span.set_status(parsed.status());
        return parsed.status();
      }
      stmt = parsed.take();
    }
    ResultSet out;
    MSQL_RETURN_IF_ERROR(ExecuteStmt(*stmt, &out, tctx));
    return out;
  }();

  FinishTrace(std::move(trace),
              result.ok() ? Status::Ok() : result.status(),
              result.ok() ? result.value().num_rows() : 0);
  return result;
}

Status Engine::ExecuteTraced(const std::string& sql, const QueryContext& ctx) {
  auto trace = std::make_shared<obs::QueryTrace>(
      next_query_id_.fetch_add(1, std::memory_order_relaxed), sql,
      ctx.session_id, ctx.user);
  if (!ctx.trace_id.empty()) trace->set_trace_id(ctx.trace_id);
  if (!ctx.peer.empty()) trace->set_peer(ctx.peer);
  if (ctx.admission_wait_us > 0) {
    trace->AddCompletedSpan("admission-wait",
                            -(ctx.admission_wait_us + ctx.queue_wait_us),
                            ctx.admission_wait_us);
  }
  if (ctx.queue_wait_us > 0) {
    trace->set_queue_wait_us(ctx.queue_wait_us);
    trace->AddCompletedSpan("queue-wait", -ctx.queue_wait_us,
                            ctx.queue_wait_us);
  }
  QueryContext tctx = ctx;
  tctx.trace = trace.get();

  uint64_t rows = 0;
  Status st = [&]() -> Status {
    std::vector<StmtPtr> stmts;
    {
      obs::ScopedSpan span(trace.get(), "parse");
      Parser parser(sql);
      Result<std::vector<StmtPtr>> parsed = parser.ParseStatements();
      if (!parsed.ok()) {
        span.set_status(parsed.status());
        return parsed.status();
      }
      stmts = parsed.take();
    }
    for (const StmtPtr& stmt : stmts) {
      ResultSet ignored;
      MSQL_RETURN_IF_ERROR(ExecuteStmt(*stmt, &ignored, tctx));
      rows += ignored.num_rows();
    }
    return Status::Ok();
  }();

  FinishTrace(std::move(trace), st, rows);
  return st;
}

void Engine::FinishTrace(std::shared_ptr<obs::QueryTrace> trace,
                         const Status& st, uint64_t rows_returned) {
  trace->Finish(st, rows_returned);
  if (slow_log_threshold_ms_ >= 0 &&
      trace->total_us() >= slow_log_threshold_ms_ * 1000) {
    ins_.slow_queries->Increment();
  }
  trace_collector_.Publish(std::move(trace), ins_.obs_sink_errors);
}

SessionPtr Engine::CreateSession() { return CreateSessionForUser(user_); }

SessionPtr Engine::CreateSessionForUser(std::string user) {
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  ins_.sessions_created->Increment();
  ins_.sessions_active->Add(1.0);
  {
    std::lock_guard<std::mutex> lock(session_users_mu_);
    ++session_users_[user];
  }
  return SessionPtr(new Session(this, id, options_, std::move(user)));
}

int Engine::ActiveSessionsForUser(const std::string& user) const {
  std::lock_guard<std::mutex> lock(session_users_mu_);
  auto it = session_users_.find(user);
  return it == session_users_.end() ? 0 : it->second;
}

void Engine::NoteSessionDestroyed(const std::string& user) {
  ins_.sessions_active->Add(-1.0);
  std::lock_guard<std::mutex> lock(session_users_mu_);
  auto it = session_users_.find(user);
  if (it != session_users_.end() && --it->second <= 0) {
    session_users_.erase(it);
  }
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.queries = ins_.queries->value();
  s.measure_evals = ins_.measure_evals->value();
  s.measure_cache_hits = ins_.measure_cache_hits->value();
  s.measure_source_scans = ins_.measure_source_scans->value();
  s.measure_grouped_builds = ins_.measure_grouped_builds->value();
  s.measure_grouped_probes = ins_.measure_grouped_probes->value();
  s.measure_grouped_fallbacks = ins_.measure_grouped_fallbacks->value();
  s.measure_parallel_tasks = ins_.measure_parallel_tasks->value();
  s.subquery_execs = ins_.subquery_execs->value();
  s.subquery_cache_hits = ins_.subquery_cache_hits->value();
  s.shared_cache_hits = ins_.shared_cache_hits->value();
  s.shared_cache_misses = ins_.shared_cache_misses->value();
  s.exec_vectorized_batches = ins_.exec_vectorized_batches->value();
  s.exec_row_fallbacks = ins_.exec_row_fallbacks->value();
  const SharedMeasureCache::Stats cache = shared_cache_.stats();
  s.shared_cache_insertions = cache.insertions;
  s.shared_cache_evictions = cache.evictions;
  s.shared_cache_entries = cache.entries;
  s.shared_cache_bytes = cache.bytes;
  s.breaker_short_circuits = ins_.breaker_short_circuits->value();
  return s;
}

std::string Engine::MetricsText() {
  SyncCacheMetrics();
  return metrics_.Text();
}

void Engine::SyncCacheMetrics() {
  // Fold the shared cache's internally-kept counters into the registry as
  // deltas since the last exposition, and refresh the gauges.
  const SharedMeasureCache::Stats cache = shared_cache_.stats();
  {
    std::lock_guard<std::mutex> lock(metrics_sync_mu_);
    ins_.shared_cache_insertions->Increment(cache.insertions -
                                            synced_cache_.insertions);
    ins_.shared_cache_evictions->Increment(cache.evictions -
                                           synced_cache_.evictions);
    ins_.shared_cache_invalidations->Increment(cache.invalidations -
                                               synced_cache_.invalidations);
    synced_cache_ = cache;
  }
  ins_.shared_cache_entries->Set(static_cast<double>(cache.entries));
  ins_.shared_cache_bytes->Set(static_cast<double>(cache.bytes));
  const uint64_t lookups = cache.hits + cache.misses;
  ins_.shared_cache_hit_ratio->Set(
      lookups == 0 ? 0.0 : static_cast<double>(cache.hits) / lookups);

  // Same folding pattern for the prepared-plan cache.
  const PlanCache::Stats pc = plan_cache_.stats();
  {
    std::lock_guard<std::mutex> lock(metrics_sync_mu_);
    ins_.plan_cache_hits->Increment(pc.hits - synced_plan_cache_.hits);
    ins_.plan_cache_misses->Increment(pc.misses - synced_plan_cache_.misses);
    ins_.plan_cache_evictions->Increment(pc.evictions -
                                         synced_plan_cache_.evictions);
    ins_.plan_cache_invalidations->Increment(
        pc.invalidations - synced_plan_cache_.invalidations);
    synced_plan_cache_ = pc;
  }
  ins_.plan_cache_entries->Set(static_cast<double>(pc.entries));
  ins_.plan_cache_bytes->Set(static_cast<double>(pc.bytes));
}

std::vector<obs::TracePtr> Engine::RecentTraces() const {
  return ring_sink_->Recent();
}

void Engine::AddTraceSink(std::shared_ptr<obs::TraceSink> sink) {
  trace_collector_.AddSink(std::move(sink));
}

void Engine::AccumulateStats(const ExecState& state) {
  ins_.queries->Increment();
  ins_.measure_evals->Increment(state.measure_evals);
  ins_.measure_cache_hits->Increment(state.measure_cache_hits);
  ins_.measure_source_scans->Increment(state.measure_source_scans);
  ins_.measure_inline_evals->Increment(state.measure_inline_evals);
  ins_.measure_grouped_builds->Increment(state.measure_grouped_builds);
  ins_.measure_grouped_probes->Increment(state.measure_grouped_probes);
  ins_.measure_grouped_fallbacks->Increment(state.measure_grouped_fallbacks);
  ins_.measure_parallel_tasks->Increment(state.measure_parallel_tasks);
  ins_.subquery_execs->Increment(state.subquery_execs);
  ins_.subquery_cache_hits->Increment(state.subquery_cache_hits);
  ins_.shared_cache_hits->Increment(state.shared_cache_hits);
  ins_.shared_cache_misses->Increment(state.shared_cache_misses);
  ins_.exec_vectorized_batches->Increment(state.exec_vectorized_batches);
  ins_.exec_row_fallbacks->Increment(state.exec_row_fallbacks);
  ins_.breaker_short_circuits->Increment(state.breaker_short_circuits);
}

ThreadPool* Engine::MeasurePool() {
  std::lock_guard<std::mutex> lock(measure_pool_mu_);
  if (measure_pool_ == nullptr) {
    // Pool threads serve workers 1..N-1; the querying thread is worker 0.
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 2;
    const int threads = static_cast<int>(std::min(hw, 8u)) - 1;
    measure_pool_ = std::make_unique<ThreadPool>(std::max(1, threads));
  }
  return measure_pool_.get();
}

void Engine::NoteCatalogMutation() {
  catalog_.BumpGeneration();
  shared_cache_.InvalidateOlderThan(catalog_.generation());
}

Result<ResultSet> Engine::RunSelect(const SelectStmt& select,
                                    const QueryContext& ctx, PlanPtr* plan_out,
                                    obs::PlanProfile* profile) {
  ExecState state;
  state.profile = profile;
  const auto start = std::chrono::steady_clock::now();
  Result<ResultSet> result = RunSelectImpl(select, ctx, &state, plan_out);
  return FinishSelect(ctx, state, ElapsedUsSince(start), std::move(result));
}

Result<ResultSet> Engine::FinishSelect(const QueryContext& ctx,
                                       const ExecState& state,
                                       int64_t total_us,
                                       Result<ResultSet> result) {
  // Per-query stats travel with the result (and the trace, when present),
  // so concurrent queries never clobber each other's statistics.
  auto stats = std::make_shared<QueryStats>();
  stats->measure_evals = state.measure_evals;
  stats->measure_cache_hits = state.measure_cache_hits;
  stats->measure_source_scans = state.measure_source_scans;
  stats->measure_inline_evals = state.measure_inline_evals;
  stats->measure_grouped_builds = state.measure_grouped_builds;
  stats->measure_grouped_probes = state.measure_grouped_probes;
  stats->measure_grouped_fallbacks = state.measure_grouped_fallbacks;
  stats->measure_parallel_tasks = state.measure_parallel_tasks;
  stats->subquery_execs = state.subquery_execs;
  stats->subquery_cache_hits = state.subquery_cache_hits;
  stats->shared_cache_hits = state.shared_cache_hits;
  stats->shared_cache_misses = state.shared_cache_misses;
  stats->exec_vectorized_batches = state.exec_vectorized_batches;
  stats->exec_row_fallbacks = state.exec_row_fallbacks;
  stats->breaker_short_circuits = state.breaker_short_circuits;
  stats->plan_cache =
      static_cast<QueryStats::PlanCacheOutcome>(state.plan_cache_outcome);
  stats->rows_charged = state.guard.rows_charged();
  stats->bytes_charged = state.guard.bytes_charged();
  stats->depth = state.depth;
  stats->total_us = total_us;
  if (ctx.trace != nullptr) {
    // Flatten the per-phase wall times out of the span tree (all phases
    // have closed by now and sit as direct children of the root). These
    // feed the wire response footer and msql_system.queries; untraced
    // statements leave them zero.
    for (const auto& span : ctx.trace->root().children) {
      if (span->name == "admission-wait") {
        stats->admission_wait_us += span->duration_us;
      } else if (span->name == "queue-wait") {
        stats->queue_wait_us += span->duration_us;
      } else if (span->name == "parse") {
        stats->parse_us += span->duration_us;
      } else if (span->name == "bind") {
        stats->bind_us += span->duration_us;
      } else if (span->name == "measure-expand") {
        stats->measure_expand_us += span->duration_us;
      } else if (span->name == "plan") {
        stats->plan_us += span->duration_us;
      } else if (span->name == "execute") {
        stats->execute_us += span->duration_us;
      } else if (span->name == "render") {
        stats->render_us += span->duration_us;
      }
    }
    ctx.trace->set_stats(*stats);
  }
  if (result.ok()) result.value().set_stats(std::move(stats));

  ins_.query_duration_ms->Observe(static_cast<double>(total_us) / 1000.0);
  if (!result.ok()) ins_.query_errors->Increment();
  AccumulateStats(state);
  return result;
}

Result<ResultSet> Engine::RunSelectImpl(const SelectStmt& select,
                                        const QueryContext& ctx,
                                        ExecState* state, PlanPtr* plan_out) {
  MSQL_FAULT_POINT("engine.select");

  // Plan-cache probe under the canonical (unparsed) statement text: two
  // textually different spellings of the same statement share one entry.
  // The generation is snapshotted *before* binding so an entry bound while
  // a catalog mutation is in flight records the older generation and
  // self-invalidates on its next probe.
  const uint64_t bind_generation = catalog_.generation();
  std::string canonical_key;
  if (ctx.options.enable_plan_cache) {
    canonical_key = PlanCacheKey(ctx.user, Unparse(select), {});
    if (PreparedPlanPtr cached =
            plan_cache_.Lookup(canonical_key, bind_generation)) {
      state->plan_cache_outcome = 2;
      if (plan_out != nullptr) *plan_out = cached->plan;
      if (!ctx.plan_cache_text.empty()) {
        // A differently-spelled statement canonicalized onto this entry:
        // alias its raw text too so the pre-parse fast path hits next time.
        plan_cache_.Insert(PlanCacheKey(ctx.user, ctx.plan_cache_text, {}),
                           cached);
      }
      return ExecutePlanImpl(cached->plan, ctx, state, nullptr);
    }
    state->plan_cache_outcome = 1;
  }

  Binder binder(&catalog_, ctx.user, ctx.options.max_recursion_depth,
                SystemTablesFor(ctx.options));
  PlanPtr plan;
  int64_t expand_us = -1;  // sentinel: no measure expansion happened
  {
    obs::ScopedSpan span(ctx.trace, "bind");
    if (ctx.trace != nullptr) {
      binder.set_measure_expand_accumulator(&expand_us);
    }
    Result<PlanPtr> bound = binder.Bind(select);
    if (!bound.ok()) {
      span.set_status(bound.status());
      return bound.status();
    }
    plan = bound.take();
  }
  if (ctx.trace != nullptr && expand_us >= 0) {
    // Measure expansion ran inside bind, which just closed; back-date the
    // span so it nests where it happened.
    ctx.trace->AddCompletedSpan("measure-expand",
                                ctx.trace->ElapsedUs() - expand_us, expand_us);
  }
  if (plan_out != nullptr) *plan_out = plan;

  // System-table scans embed a point-in-time snapshot that the catalog
  // generation does not version: the plan must never be published (a later
  // hit would replay stale telemetry) and the statement must not read or
  // fill the cross-query shared cache.
  if (binder.used_system_tables()) state->forbid_shared_cache = true;

  // On a miss, publish the freshly bound plan. The fill runs as the
  // `after_arm` hook so its memory footprint is charged against the armed
  // query guard (a cache fill must not dodge the query's byte budget).
  std::function<Status()> after_arm;
  if (ctx.options.enable_plan_cache && !binder.used_system_tables()) {
    auto entry = std::make_shared<PreparedPlan>();
    entry->sql = ctx.plan_cache_text;
    entry->canonical = Unparse(select);
    entry->user = ctx.user;
    entry->plan = plan;
    entry->param_count = 0;
    entry->generation = bind_generation;
    entry->fingerprint = FingerprintPlan(*plan);
    entry->approx_bytes = PlanCache::ApproxPlanBytes(*entry);
    after_arm = [this, state, entry, canonical_key,
                 raw_text = ctx.plan_cache_text]() -> Status {
      MSQL_RETURN_IF_ERROR(state->guard.ChargeBytes(entry->approx_bytes));
      plan_cache_.Insert(canonical_key, entry);
      if (!raw_text.empty()) {
        // Raw-text alias: the pre-parse fast path in QueryWith probes by
        // the trimmed statement text before a parser ever runs.
        plan_cache_.Insert(PlanCacheKey(entry->user, raw_text, {}), entry);
      }
      return Status::Ok();
    };
  }

  return ExecutePlanImpl(plan, ctx, state, after_arm);
}

Result<ResultSet> Engine::ExecutePlanImpl(
    const PlanPtr& plan, const QueryContext& ctx, ExecState* state,
    const std::function<Status()>& after_arm) {
  {
    obs::ScopedSpan span(ctx.trace, "plan");
    state->options = ctx.options;
    if ((ctx.options.measure_strategy == MeasureStrategy::kMemoized ||
         ctx.options.measure_strategy == MeasureStrategy::kGrouped) &&
        !state->forbid_shared_cache) {
      state->shared_cache = &shared_cache_;
      state->catalog_generation = catalog_.generation();
    }
    if (ctx.options.measure_strategy == MeasureStrategy::kGrouped &&
        ctx.options.measure_parallelism != 1) {
      state->measure_pool_provider = [this] { return MeasurePool(); };
    }
    state->grouped_build_breaker = &grouped_build_breaker_;
    state->cache_fill_breaker = &cache_fill_breaker_;
    state->guard.Arm(ctx.options.timeout_ms, ctx.options.max_memory_bytes,
                     ctx.options.max_result_rows, ctx.cancel,
                     cancel_generation_);
    if (ctx.has_deadline) state->guard.TightenDeadline(ctx.deadline);
    if (after_arm) {
      Status st = after_arm();
      if (!st.ok()) {
        span.set_status(st);
        return st;
      }
    }
  }

  RelationPtr rel;
  {
    obs::ScopedSpan span(ctx.trace, "execute", &state->guard);
    Executor executor(state);
    Result<RelationPtr> executed = executor.Execute(*plan, {});
    if (!executed.ok()) {
      span.set_status(executed.status());
      return executed.status();
    }
    rel = executed.take();
  }

  obs::ScopedSpan render_span(ctx.trace, "render", &state->guard);
  Result<ResultSet> rendered = [&]() -> Result<ResultSet> {
    const size_t visible = rel->schema.num_visible();
    std::vector<std::string> names;
    std::vector<DataType> types;
    for (size_t i = 0; i < visible; ++i) {
      names.push_back(rel->schema.column(i).name);
      types.push_back(rel->schema.column(i).type);
    }
    MSQL_RETURN_IF_ERROR(state->guard.ChargeRows(rel->rows.size(), visible));
    std::vector<Row> rows;
    rows.reserve(rel->rows.size());
    for (const Row& r : rel->rows) {
      rows.emplace_back(r.begin(), r.begin() + visible);
    }

    // Measure columns surviving to the top level are rendered at the
    // result's own grain: each cell is the measure evaluated with every
    // dimension pinned to its row (the default per-row evaluation context).
    // Inside nested queries the placeholder NULLs are never read,
    // preserving closure. One batch per measure column: every row's
    // context shares a shape, which the grouped strategy turns into one
    // index build plus a probe (possibly morsel-parallel) per row.
    for (const RtMeasure& m : rel->measures) {
      if (m.column < 0 || static_cast<size_t>(m.column) >= visible) continue;
      std::vector<EvalContext> contexts;
      contexts.reserve(rel->rows.size());
      for (size_t r = 0; r < rel->rows.size(); ++r) {
        MSQL_RETURN_IF_ERROR(state->guard.Check());
        Frame frame{&rel->rows[r], static_cast<int64_t>(r), rel.get()};
        MSQL_ASSIGN_OR_RETURN(EvalContext ctx2,
                              BuildRowContext(m, frame, state));
        contexts.push_back(std::move(ctx2));
      }
      MSQL_ASSIGN_OR_RETURN(std::vector<Value> vals,
                            EvaluateMeasureBatch(m, contexts, state));
      for (size_t r = 0; r < rel->rows.size(); ++r) {
        rows[r][m.column] = std::move(vals[r]);
      }
    }
    return ResultSet(std::move(names), std::move(types), std::move(rows));
  }();
  if (!rendered.ok()) render_span.set_status(rendered.status());
  return rendered;
}

Result<PreparedPlanPtr> Engine::PrepareSelect(
    const std::string& sql, std::vector<TypeKind> param_types,
    const QueryContext& ctx) {
  const std::string trimmed = TrimStatementText(sql);
  const std::string key = PlanCacheKey(ctx.user, trimmed, param_types);
  // Snapshot before binding: an entry bound during a concurrent catalog
  // mutation records the older generation and self-invalidates on probe.
  const uint64_t bind_generation = catalog_.generation();
  if (ctx.options.enable_plan_cache) {
    if (PreparedPlanPtr cached = plan_cache_.Lookup(key, bind_generation)) {
      return cached;
    }
  }

  Parser parser(sql);
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, parser.ParseSingleStatement());
  if (stmt->kind != StmtKind::kSelect || stmt->select == nullptr) {
    return Status(ErrorCode::kInvalidArgument,
                  "Prepare expects a single SELECT statement");
  }

  Binder binder(&catalog_, ctx.user, ctx.options.max_recursion_depth,
                SystemTablesFor(ctx.options));
  binder.set_param_types(param_types);
  MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*stmt->select));
  if (binder.used_system_tables()) {
    // A prepared plan over a system table would freeze one telemetry
    // snapshot and serve it forever (their contents change without a
    // catalog generation bump). Re-issue the SELECT as plain text instead.
    return Status(ErrorCode::kInvalidArgument,
                  "cannot prepare a statement over msql_system tables");
  }
  if (binder.param_count() != static_cast<int>(param_types.size())) {
    return Status(ErrorCode::kBind,
                  StrCat("statement references ", binder.param_count(),
                         " positional parameter(s) but ", param_types.size(),
                         " type(s) were declared"));
  }

  auto entry = std::make_shared<PreparedPlan>();
  entry->sql = trimmed;
  entry->canonical = Unparse(*stmt->select);
  entry->user = ctx.user;
  entry->plan = plan;
  entry->param_types = std::move(param_types);
  entry->param_count = entry->param_types.empty()
                           ? binder.param_count()
                           : static_cast<int>(entry->param_types.size());
  entry->generation = bind_generation;
  entry->fingerprint = FingerprintPlan(*plan);
  entry->approx_bytes = PlanCache::ApproxPlanBytes(*entry);

  if (ctx.options.enable_plan_cache) {
    MSQL_FAULT_POINT("net.plan_cache_fill");
    // Charge the fill against the preparing statement's memory budget so a
    // flood of prepares cannot dodge resource governance.
    QueryGuard guard;
    guard.Arm(ctx.options.timeout_ms, ctx.options.max_memory_bytes,
              ctx.options.max_result_rows, ctx.cancel, cancel_generation_);
    MSQL_RETURN_IF_ERROR(guard.ChargeBytes(entry->approx_bytes));
    plan_cache_.Insert(key, entry);
    // Canonical alias: a differently-spelled but structurally identical
    // Prepare from another connection reuses this bound plan.
    plan_cache_.Insert(
        PlanCacheKey(entry->user, entry->canonical, entry->param_types),
        entry);
  }
  return PreparedPlanPtr(std::move(entry));
}

Result<ResultSet> Engine::QueryPlanned(const PreparedPlanPtr& prepared,
                                       const Row& params,
                                       const QueryContext& ctx) {
  if (prepared == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "null prepared plan");
  }
  if (prepared->generation != catalog_.generation()) {
    return Status(ErrorCode::kCatalog,
                  "prepared plan is stale: the catalog changed since the "
                  "statement was bound; re-prepare");
  }
  if (params.size() != prepared->param_types.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  StrCat("expected ", prepared->param_types.size(),
                         " parameter value(s), got ", params.size()));
  }
  Row coerced;
  coerced.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    Result<Value> cast = params[i].CastTo(prepared->param_types[i]);
    if (!cast.ok()) {
      return Status(ErrorCode::kInvalidArgument,
                    StrCat("parameter $", i + 1, " type mismatch: expected ",
                           TypeKindName(prepared->param_types[i]), ", got ",
                           TypeKindName(params[i].kind())));
    }
    coerced.push_back(cast.take());
  }

  if (ctx.options.enable_tracing && ctx.trace == nullptr) {
    auto trace = std::make_shared<obs::QueryTrace>(
        next_query_id_.fetch_add(1, std::memory_order_relaxed), prepared->sql,
        ctx.session_id, ctx.user);
    if (!ctx.trace_id.empty()) trace->set_trace_id(ctx.trace_id);
    if (!ctx.peer.empty()) trace->set_peer(ctx.peer);
    if (ctx.admission_wait_us > 0) {
      trace->AddCompletedSpan("admission-wait",
                              -(ctx.admission_wait_us + ctx.queue_wait_us),
                              ctx.admission_wait_us);
    }
    if (ctx.queue_wait_us > 0) {
      trace->set_queue_wait_us(ctx.queue_wait_us);
      trace->AddCompletedSpan("queue-wait", -ctx.queue_wait_us,
                              ctx.queue_wait_us);
    }
    QueryContext tctx = ctx;
    tctx.trace = trace.get();
    Result<ResultSet> result = RunPlanned(prepared, coerced, tctx);
    FinishTrace(std::move(trace),
                result.ok() ? Status::Ok() : result.status(),
                result.ok() ? result.value().num_rows() : 0);
    return result;
  }
  return RunPlanned(prepared, coerced, ctx);
}

Result<ResultSet> Engine::RunPlanned(const PreparedPlanPtr& prepared,
                                     const Row& params,
                                     const QueryContext& ctx) {
  ExecState state;
  state.plan_cache_outcome = 2;  // a bound plan was reused, however obtained
  state.params = &params;
  if (!params.empty()) state.param_sig = RenderParamSig(params);
  const auto start = std::chrono::steady_clock::now();
  Result<ResultSet> result =
      ExecutePlanImpl(prepared->plan, ctx, &state, nullptr);
  return FinishSelect(ctx, state, ElapsedUsSince(start), std::move(result));
}

Status Engine::ExecuteStmt(const Stmt& stmt, ResultSet* out,
                           const QueryContext& ctx) {
  MSQL_FAULT_POINT("engine.stmt");
  switch (stmt.kind) {
    case StmtKind::kSelect: {
      MSQL_ASSIGN_OR_RETURN(*out, RunSelect(*stmt.select, ctx));
      return Status::Ok();
    }
    case StmtKind::kCreateTable: {
      Schema schema;
      for (const ColumnDef& col : stmt.columns) {
        TypeKind kind = TypeKindFromName(col.type_name);
        if (kind == TypeKind::kNull) {
          return Status(ErrorCode::kBind,
                        "unknown column type '" + col.type_name + "'");
        }
        schema.AddColumn(Column(col.name, DataType(kind)));
      }
      MSQL_RETURN_IF_ERROR(catalog_.CreateTable(
          stmt.name, std::move(schema), stmt.if_not_exists, ctx.user));
      NoteCatalogMutation();
      return Status::Ok();
    }
    case StmtKind::kCreateView: {
      // Validate eagerly so errors surface at CREATE time.
      Binder binder(&catalog_, ctx.user, ctx.options.max_recursion_depth,
                    SystemTablesFor(ctx.options));
      MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*stmt.view_select));
      (void)plan;
      MSQL_RETURN_IF_ERROR(catalog_.CreateView(
          stmt.name, stmt.view_select->Clone(), stmt.or_replace, ctx.user));
      NoteCatalogMutation();
      return Status::Ok();
    }
    case StmtKind::kDrop: {
      MSQL_RETURN_IF_ERROR(
          catalog_.Drop(stmt.name, stmt.drop_is_view, stmt.if_exists));
      NoteCatalogMutation();
      return Status::Ok();
    }
    case StmtKind::kInsert:
      return ExecuteInsert(stmt, ctx);
    case StmtKind::kExplain: {
      // The raw-text alias must not map "EXPLAIN ... <select>" to the inner
      // select's plan — a later fast-path hit on that text would return the
      // select's rows instead of the explain rendering.
      QueryContext ectx = ctx;
      ectx.plan_cache_text.clear();
      obs::ExplainOptions eopts;
      eopts.strategy = ctx.options.measure_strategy;
      eopts.inline_visible_contexts = ctx.options.inline_visible_contexts;
      std::string text;
      if (stmt.explain_analyze) {
        // EXPLAIN ANALYZE really runs the statement: the profile maps plan
        // nodes to observed rows/time/cache activity, and the summary is
        // the query's own stats. A statement that stops early — deadline,
        // cancellation, shed — still explains: the bound plan is rendered
        // with an Outcome: line instead of propagating the error, so the
        // operator can see where the budget went. Parse/bind failures
        // (no plan) still fail the EXPLAIN itself.
        obs::PlanProfile profile;
        PlanPtr plan;
        Result<ResultSet> rs = RunSelect(*stmt.select, ectx, &plan, &profile);
        if (!rs.ok() && plan == nullptr) return rs.status();
        eopts.profile = &profile;
        text = obs::RenderPlanTree(*plan, eopts);
        if (rs.ok() && rs.value().stats() != nullptr) {
          text += obs::RenderAnalyzeSummary(*rs.value().stats(), eopts);
        }
        if (!rs.ok()) text += obs::RenderAnalyzeOutcome(rs.status());
      } else {
        Binder binder(&catalog_, ctx.user, ctx.options.max_recursion_depth);
        MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*stmt.select));
        text = obs::RenderPlanTree(*plan, eopts);
      }
      std::vector<Row> rows;
      for (const std::string& line : Split(text, '\n')) {
        if (!line.empty()) rows.push_back({Value::String(line)});
      }
      *out = ResultSet({"plan"}, {DataType::String()}, std::move(rows));
      return Status::Ok();
    }
    case StmtKind::kCopy: {
      if (stmt.copy_from) {
        return LoadCsv(stmt.name, stmt.copy_path);
      }
      // Export: base tables dump storage directly; views are materialized.
      const auto entry = catalog_.Find(stmt.name);
      if (entry == nullptr) {
        return Status(ErrorCode::kCatalog,
                      "object '" + stmt.name + "' does not exist");
      }
      MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, ctx.user));
      if (entry->kind == CatalogEntry::Kind::kTable) {
        return WriteCsv(stmt.copy_path, *entry->table);
      }
      MSQL_ASSIGN_OR_RETURN(ResultSet rs,
                            QueryWith("SELECT * FROM " + stmt.name, ctx));
      std::ofstream file(stmt.copy_path, std::ios::binary);
      if (!file) {
        return Status(ErrorCode::kIo,
                      "cannot write file '" + stmt.copy_path + "'");
      }
      file << rs.ToCsv();
      return Status::Ok();
    }
    case StmtKind::kDescribe: {
      const auto entry = catalog_.Find(stmt.name);
      if (entry == nullptr) {
        return Status(ErrorCode::kCatalog,
                      "object '" + stmt.name + "' does not exist");
      }
      MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, ctx.user));
      std::vector<Row> rows;
      if (entry->kind == CatalogEntry::Kind::kTable) {
        for (const Column& c : entry->table->schema().columns()) {
          rows.push_back(
              {Value::String(c.name), Value::String(c.type.ToString())});
        }
      } else {
        Binder binder(&catalog_, ctx.user, ctx.options.max_recursion_depth,
                      SystemTablesFor(ctx.options));
        MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*entry->view_ast));
        for (size_t i = 0; i < plan->schema.num_visible(); ++i) {
          const Column& c = plan->schema.column(i);
          rows.push_back(
              {Value::String(c.name), Value::String(c.type.ToString())});
        }
      }
      *out = ResultSet({"column", "type"},
                       {DataType::String(), DataType::String()},
                       std::move(rows));
      return Status::Ok();
    }
  }
  return Status(ErrorCode::kInvalidArgument, "unsupported statement");
}

Status Engine::ExecuteInsert(const Stmt& stmt, const QueryContext& ctx) {
  const auto entry = catalog_.Find(stmt.insert_table);
  if (entry == nullptr || entry->kind != CatalogEntry::Kind::kTable) {
    return Status(ErrorCode::kCatalog,
                  "table '" + stmt.insert_table + "' does not exist");
  }
  MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, ctx.user));
  Table* table = entry->table.get();
  const Schema& schema = table->schema();

  // Map the insert column list onto the schema.
  std::vector<int> positions;
  if (stmt.insert_columns.empty()) {
    for (size_t i = 0; i < schema.size(); ++i) {
      positions.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt.insert_columns) {
      auto matches = schema.Find("", name);
      if (matches.size() != 1) {
        return Status(ErrorCode::kBind, "unknown column '" + name + "'");
      }
      positions.push_back(static_cast<int>(matches[0]));
    }
  }

  // Collect the full batch first so the table mutation is one locked
  // append and one generation bump.
  std::vector<Row> batch;
  auto stage = [&](const Row& values) -> Status {
    if (values.size() != positions.size()) {
      return Status(ErrorCode::kExecution,
                    StrCat("INSERT expects ", positions.size(),
                           " values, got ", values.size()));
    }
    Row row(schema.size(), Value::Null());
    for (size_t i = 0; i < positions.size(); ++i) {
      row[positions[i]] = values[i];
    }
    batch.push_back(std::move(row));
    return Status::Ok();
  };

  if (stmt.insert_select != nullptr) {
    MSQL_ASSIGN_OR_RETURN(ResultSet rs, RunSelect(*stmt.insert_select, ctx));
    for (const Row& r : rs.rows()) MSQL_RETURN_IF_ERROR(stage(r));
  } else {
    // INSERT ... VALUES rows are constant expressions; evaluate each row by
    // reusing the FROM-less SELECT path.
    for (const auto& row_exprs : stmt.insert_rows) {
      SelectStmt values_select;
      for (const ExprPtr& e : row_exprs) {
        SelectItem item;
        item.expr = e->Clone();
        values_select.select_list.push_back(std::move(item));
      }
      MSQL_ASSIGN_OR_RETURN(ResultSet rs, RunSelect(values_select, ctx));
      if (rs.num_rows() != 1) {
        return Status(ErrorCode::kExecution, "VALUES row evaluation failed");
      }
      MSQL_RETURN_IF_ERROR(stage(rs.rows()[0]));
    }
  }
  MSQL_RETURN_IF_ERROR(table->AppendRows(std::move(batch)));
  NoteCatalogMutation();
  return Status::Ok();
}

Status Engine::InsertRows(const std::string& table, std::vector<Row> rows) {
  const auto entry = catalog_.Find(table);
  if (entry == nullptr || entry->kind != CatalogEntry::Kind::kTable) {
    return Status(ErrorCode::kCatalog, "table '" + table + "' does not exist");
  }
  MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, user_));
  MSQL_RETURN_IF_ERROR(entry->table->AppendRows(std::move(rows)));
  NoteCatalogMutation();
  return Status::Ok();
}

Result<std::string> Engine::Explain(const std::string& sql) {
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::Parse(sql));
  const SelectStmt* select = nullptr;
  if (stmt->kind == StmtKind::kSelect || stmt->kind == StmtKind::kExplain) {
    select = stmt->select.get();
  } else {
    return Status(ErrorCode::kInvalidArgument, "EXPLAIN requires a SELECT");
  }
  Binder binder(&catalog_, user_, options_.max_recursion_depth,
                SystemTablesFor(options_));
  MSQL_ASSIGN_OR_RETURN(PlanPtr plan, binder.Bind(*select));
  obs::ExplainOptions eopts;
  eopts.strategy = options_.measure_strategy;
  eopts.inline_visible_contexts = options_.inline_visible_contexts;
  return obs::RenderPlanTree(*plan, eopts);
}

Result<std::string> Engine::ExpandSql(const std::string& sql) {
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::Parse(sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status(ErrorCode::kInvalidArgument,
                  "measure expansion requires a SELECT");
  }
  return ExpandMeasures(*stmt->select, catalog_, user_);
}

Status Engine::LoadCsv(const std::string& table, const std::string& path,
                       bool header) {
  const auto entry = catalog_.Find(table);
  if (entry == nullptr || entry->kind != CatalogEntry::Kind::kTable) {
    return Status(ErrorCode::kCatalog, "table '" + table + "' does not exist");
  }
  MSQL_RETURN_IF_ERROR(catalog_.CheckAccess(*entry, user_));
  MSQL_RETURN_IF_ERROR(AppendCsv(path, header, entry->table.get()));
  NoteCatalogMutation();
  return Status::Ok();
}

Status Engine::ImportCsv(const std::string& table, const std::string& path) {
  MSQL_ASSIGN_OR_RETURN(Schema schema, InferCsvSchema(path));
  MSQL_RETURN_IF_ERROR(
      catalog_.CreateTable(table, schema, /*if_not_exists=*/false, user_));
  NoteCatalogMutation();
  return LoadCsv(table, path, /*header=*/true);
}

Status Engine::Grant(const std::string& object, const std::string& user) {
  MSQL_RETURN_IF_ERROR(catalog_.Grant(object, user));
  NoteCatalogMutation();
  return Status::Ok();
}

}  // namespace msql

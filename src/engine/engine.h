#ifndef MSQL_ENGINE_ENGINE_H_
#define MSQL_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/system_tables.h"
#include "common/query_guard.h"
#include "common/query_stats.h"
#include "common/status.h"
#include "engine/result_set.h"
#include "exec/exec_state.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/circuit_breaker.h"
#include "runtime/plan_cache.h"
#include "runtime/shared_cache.h"
#include "runtime/thread_pool.h"

namespace msql {

class Session;
using SessionPtr = std::shared_ptr<Session>;

// Everything one statement needs from its caller: an option snapshot, the
// user it runs as, and its cancellation token. Sessions build one per
// query; the engine-level convenience API snapshots its own options/user.
// Taking options by value is what makes concurrent queries with different
// settings (strategy ablations, per-session budgets) race-free.
struct QueryContext {
  EngineOptions options;
  std::string user;
  CancelTokenPtr cancel;

  // Observability (docs/OBSERVABILITY.md). `session_id` labels traces (0 =
  // engine-level call); `queue_wait_us` is filled by the scheduler so the
  // trace records its queue time; `trace` is set internally by the engine
  // when `options.enable_tracing` is on.
  uint64_t session_id = 0;
  int64_t queue_wait_us = 0;
  obs::QueryTrace* trace = nullptr;

  // Wire trace context (docs/NETWORKING.md): the client-supplied
  // correlation id and the connection identity ("ip:port#connid"), both
  // copied onto the QueryTrace so server-side traces carry who asked.
  // Empty for embedded queries.
  std::string trace_id;
  std::string peer;

  // Overload resilience (docs/ROBUSTNESS.md). `admission_wait_us` is how
  // long the submission waited in bounded-wait admission (rate limit +
  // pending slot), recorded as its own trace span. When `has_deadline` is
  // set, the scheduler stamped an absolute deadline at submission;
  // RunSelect tightens the query guard to it so queue wait, measure
  // expansion and execution all charge one budget (kDeadlineExceeded).
  int64_t admission_wait_us = 0;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  // Plan-cache alias key (docs/NETWORKING.md): the trimmed raw statement
  // text, set by Engine::Query when the cache is enabled and the call is a
  // single SELECT, so the bound plan is indexed under the exact client
  // text as well as its canonical unparse. Internal plumbing; leave empty.
  std::string plan_cache_text;
};

// Engine-wide execution statistics, aggregated atomically across every
// query on every session/thread. `shared_*` mirrors the
// SharedMeasureCache's own counters for one-stop monitoring. Backed by the
// MetricsRegistry (Engine::metrics()); this struct remains as a convenient
// programmatic snapshot.
struct EngineStats {
  uint64_t queries = 0;
  uint64_t measure_evals = 0;
  uint64_t measure_cache_hits = 0;
  uint64_t measure_source_scans = 0;
  uint64_t measure_grouped_builds = 0;
  uint64_t measure_grouped_probes = 0;
  uint64_t measure_grouped_fallbacks = 0;
  uint64_t measure_parallel_tasks = 0;
  uint64_t subquery_execs = 0;
  uint64_t subquery_cache_hits = 0;
  uint64_t shared_cache_hits = 0;
  uint64_t shared_cache_misses = 0;
  uint64_t shared_cache_insertions = 0;
  uint64_t shared_cache_evictions = 0;
  uint64_t shared_cache_entries = 0;
  uint64_t shared_cache_bytes = 0;
  uint64_t breaker_short_circuits = 0;
  uint64_t exec_vectorized_batches = 0;
  uint64_t exec_row_fallbacks = 0;
};

// The public entry point: an in-memory SQL engine implementing the msql
// dialect — a practical SQL subset extended with the measure features of
// "Measures in SQL" (Hyde & Fremlin, SIGMOD-Companion 2024): AS MEASURE,
// AGGREGATE, AT (ALL / SET / VISIBLE / WHERE), CURRENT.
//
//   msql::Engine db;
//   db.Execute("CREATE TABLE Orders (prodName VARCHAR, revenue INT)");
//   db.Execute("INSERT INTO Orders VALUES ('Happy', 6), ('Acme', 5)");
//   db.Execute("CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r "
//              "FROM Orders");
//   auto rs = db.Query("SELECT prodName, AGGREGATE(r) FROM EO "
//                      "GROUP BY prodName");
//
// Concurrency (docs/CONCURRENCY.md): N threads may call Query/Execute —
// directly or through per-client Sessions (CreateSession) — while others
// run DDL/DML. Queries read catalog and table-data snapshots, so a scan
// never races an INSERT; measure and subquery results are shared across
// queries through a bounded, generation-invalidated SharedMeasureCache.
// The only single-threaded affordances are the mutable `options()` /
// `SetUser` engine-level defaults; per-query statistics travel with each
// result (ResultSet::stats()).
//
// Observability (docs/OBSERVABILITY.md): with options().enable_tracing set,
// every statement produces a QueryTrace of nested phase spans, retained in
// a ring buffer (RecentTraces()) and optionally appended to a JSON
// slow-query log. EXPLAIN ANALYZE <select> runs the statement and renders
// its plan annotated with per-operator rows/time/cache stats. MetricsText()
// exposes engine counters, gauges and histograms in Prometheus text format.
class Engine {
 public:
  Engine() { InitObs(); }
  explicit Engine(EngineOptions options) : options_(std::move(options)) {
    InitObs();
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Runs one or more ';'-separated statements, discarding row results.
  Status Execute(const std::string& sql);

  // Runs a single statement and returns its result set (empty for DDL/DML).
  Result<ResultSet> Query(const std::string& sql);

  // As Query, but the statement observes `cancel`: calling Cancel() on the
  // token from any thread makes the query unwind with kCancelled at its
  // next guard checkpoint. Tokens are single-use handles created with
  // NewCancelToken(); a null token behaves like plain Query.
  Result<ResultSet> Query(const std::string& sql, CancelTokenPtr cancel);

  // Fully-specified variants; the building blocks for Session.
  Result<ResultSet> QueryWith(const std::string& sql, const QueryContext& ctx);
  Status ExecuteWith(const std::string& sql, const QueryContext& ctx);

  // Prepared statements (docs/NETWORKING.md). PrepareSelect parses and
  // binds a single SELECT whose positional `?` parameters have the
  // declared `param_types` (ordinal order), returning an immutable bound,
  // measure-expanded plan. With enable_plan_cache set the plan is also
  // published to the engine's PlanCache (guard-charged against the
  // context's memory budget), keyed by (user, text, parameter types) plus
  // a canonical-unparse alias, so identical statements prepared on other
  // connections skip parse/bind entirely.
  Result<PreparedPlanPtr> PrepareSelect(const std::string& sql,
                                        std::vector<TypeKind> param_types,
                                        const QueryContext& ctx);
  Result<PreparedPlanPtr> PrepareSelect(const std::string& sql,
                                        std::vector<TypeKind> param_types) {
    return PrepareSelect(sql, std::move(param_types), DefaultContext(nullptr));
  }

  // Executes a prepared plan with `params` bound to its `?` placeholders
  // (values are coerced to the declared types; a mismatch is a typed
  // kInvalidArgument). Fails with kCatalog when the plan was bound against
  // an older catalog generation — the caller re-prepares; the server does
  // this transparently.
  Result<ResultSet> QueryPlanned(const PreparedPlanPtr& prepared,
                                 const Row& params, const QueryContext& ctx);
  Result<ResultSet> QueryPlanned(const PreparedPlanPtr& prepared,
                                 const Row& params) {
    return QueryPlanned(prepared, params, DefaultContext(nullptr));
  }

  // The prepared-plan cache (sized from EngineOptions plan_cache_* at
  // construction). Exposed for monitoring and tests.
  PlanCache& plan_cache() { return plan_cache_; }

  // Creates an independent client session: its own option snapshot, user,
  // and cancellation scope, sharing this engine's catalog and cross-query
  // cache. Sessions may issue queries concurrently with each other and
  // with engine-level calls. The engine must outlive its sessions.
  SessionPtr CreateSession();

  // As CreateSession, but authenticated as `user` instead of the engine's
  // default — one per accepted msqld connection. Sessions are counted per
  // user while alive (ActiveSessionsForUser), which the server uses for
  // per-user connection caps and operators for attribution.
  SessionPtr CreateSessionForUser(std::string user);

  // Live sessions currently authenticated as `user` (created by either
  // CreateSession or CreateSessionForUser).
  int ActiveSessionsForUser(const std::string& user) const;

  // Creates a cancellation token to pass to Query.
  static CancelTokenPtr NewCancelToken() {
    return std::make_shared<CancelToken>();
  }

  // Cancels every statement currently executing on this engine (from any
  // thread, across all sessions); each unwinds with kCancelled. Statements
  // started after the call are unaffected.
  void CancelAll() {
    cancel_generation_->fetch_add(1, std::memory_order_relaxed);
  }

  // Binds a SELECT and renders its logical plan, including per-node
  // measure-expansion notes (the same renderer EXPLAIN ANALYZE annotates).
  Result<std::string> Explain(const std::string& sql);

  // Expands every measure reference in a SELECT into plain SQL (correlated
  // scalar subqueries, paper section 4.2) and returns the rewritten text.
  Result<std::string> ExpandSql(const std::string& sql);

  // Bulk-appends rows to a base table, coercing values to column types.
  // Used by benchmarks and programmatic loaders to bypass SQL parsing.
  Status InsertRows(const std::string& table, std::vector<Row> rows);

  // CSV interop. LoadCsv appends to an existing table, coercing field
  // strings to the column types. ImportCsv creates the table first,
  // inferring column types from the data.
  Status LoadCsv(const std::string& table, const std::string& path,
                 bool header = true);
  Status ImportCsv(const std::string& table, const std::string& path);

  // Security (paper section 5.5): with a current user set, referencing an
  // object requires ownership or a grant; views run with definer's rights.
  void SetUser(std::string user) { user_ = std::move(user); }
  const std::string& user() const { return user_; }
  Status Grant(const std::string& object, const std::string& user);

  EngineOptions& options() { return options_; }
  const Catalog& catalog() const { return catalog_; }

  // Engine-wide counters, aggregated atomically across all sessions and
  // threads. Safe to read at any time.
  EngineStats stats() const;

  // The engine's metric registry: counters, gauges and histograms with
  // stable pointers for lock-free updates. Safe to use from any thread.
  obs::MetricsRegistry& metrics() { return metrics_; }

  // Prometheus-style text exposition of every registered metric, after
  // syncing the SharedMeasureCache counters/gauges into the registry.
  std::string MetricsText();

  // The last N traces (newest first) of queries run with tracing enabled;
  // N is EngineOptions::trace_ring_capacity at engine construction.
  std::vector<obs::TracePtr> RecentTraces() const;

  // Registers an additional trace sink (monitoring exporters, tests). The
  // collector already owns the ring buffer and, when configured, the
  // slow-query log. Sink failures never fail queries; they increment
  // msql_obs_sink_errors_total.
  void AddTraceSink(std::shared_ptr<obs::TraceSink> sink);

  // The cross-query measure/subquery cache (docs/CONCURRENCY.md). Exposed
  // for sizing (set_max_bytes) and monitoring.
  SharedMeasureCache& shared_cache() { return shared_cache_; }

  // The `msql_system.*` virtual-table registry. The engine pre-registers
  // msql_system.metrics and msql_system.queries; msqld adds
  // msql_system.connections. Binding only consults it when
  // EngineOptions::enable_system_tables is on.
  SystemTableRegistry& system_tables() { return system_tables_; }

  // Circuit breakers guarding the degradable fault points
  // (docs/ROBUSTNESS.md): grouped-index builds and cross-query cache
  // fills. Configured from EngineOptions breaker_* at construction;
  // exposed for monitoring and tests. Their states are published as the
  // msql_circuit_grouped_build_state / msql_circuit_cache_fill_state
  // gauges (0 = closed, 1 = open, 2 = half-open).
  CircuitBreaker& grouped_build_breaker() { return grouped_build_breaker_; }
  CircuitBreaker& cache_fill_breaker() { return cache_fill_breaker_; }

 private:
  friend class Session;
  friend class QueryScheduler;  // admission: cancel generation snapshots

  Status ExecuteStmt(const Stmt& stmt, ResultSet* out,
                     const QueryContext& ctx);
  Status ExecuteInsert(const Stmt& stmt, const QueryContext& ctx);
  Result<ResultSet> RunSelect(const SelectStmt& select, const QueryContext& ctx,
                              PlanPtr* plan_out = nullptr,
                              obs::PlanProfile* profile = nullptr);
  Result<ResultSet> RunSelectImpl(const SelectStmt& select,
                                  const QueryContext& ctx, ExecState* state,
                                  PlanPtr* plan_out);

  // The arm-guard + execute + render tail shared by the text and prepared
  // paths. `after_arm`, when set, runs inside the plan span right after the
  // guard is armed (the guard-charged plan-cache fill).
  Result<ResultSet> ExecutePlanImpl(const PlanPtr& plan,
                                    const QueryContext& ctx, ExecState* state,
                                    const std::function<Status()>& after_arm);

  // Stats/metrics wrapper shared by RunSelect and the prepared path:
  // snapshots `state` into QueryStats, attaches them to the result and
  // trace, and folds the counters into the registry.
  Result<ResultSet> FinishSelect(const QueryContext& ctx,
                                 const ExecState& state, int64_t total_us,
                                 Result<ResultSet> result);

  // Prepared execution body (QueryPlanned minus tracing dispatch).
  Result<ResultSet> RunPlanned(const PreparedPlanPtr& prepared,
                               const Row& params, const QueryContext& ctx);

  // Traced variants of QueryWith/ExecuteWith: wrap parsing and execution in
  // a QueryTrace and publish it to the sinks on completion.
  Result<ResultSet> QueryTraced(const std::string& sql,
                                const QueryContext& ctx);
  Status ExecuteTraced(const std::string& sql, const QueryContext& ctx);
  void FinishTrace(std::shared_ptr<obs::QueryTrace> trace, const Status& st,
                   uint64_t rows_returned);

  // Engine-level calls snapshot the mutable defaults into a context.
  QueryContext DefaultContext(CancelTokenPtr cancel) const {
    QueryContext ctx;
    ctx.options = options_;
    ctx.user = user_;
    ctx.cancel = std::move(cancel);
    return ctx;
  }

  // Registers the engine's metrics (caching the instrument pointers) and
  // installs the built-in trace sinks.
  void InitObs();

  // Registers the built-in msql_system.metrics / msql_system.queries
  // providers (called from InitObs).
  void RegisterBuiltinSystemTables();

  // The cache-counter folding shared by MetricsText() and the
  // msql_system.metrics provider.
  void SyncCacheMetrics();

  // The registry pointer handed to binders: null unless the context opted
  // into system tables, which is what keeps the disabled path free.
  const SystemTableRegistry* SystemTablesFor(const EngineOptions& o) const {
    return o.enable_system_tables ? &system_tables_ : nullptr;
  }

  // Folds a finished query's counters into the metrics registry.
  void AccumulateStats(const ExecState& state);

  // Worker pool for morsel-parallel grouped measure evaluation, created
  // lazily on the first query that has a parallel-eligible index build or
  // probe batch — small queries never pay for thread spawns. Sized once
  // from the hardware; per-query width is capped separately with
  // EngineOptions::measure_parallelism. Distinct from the sessions'
  // QueryScheduler pool: queries block on this pool's results, so sharing
  // would deadlock a fully-loaded scheduler.
  ThreadPool* MeasurePool();

  // Called after any DML/DDL: bumps the data generation and drops
  // cross-query cache entries computed against older data.
  void NoteCatalogMutation();

  // Session lifecycle accounting (msql_sessions_active + per-user counts).
  void NoteSessionDestroyed(const std::string& user);

  Catalog catalog_;
  EngineOptions options_;
  std::string user_;
  SystemTableRegistry system_tables_;
  SharedMeasureCache shared_cache_;
  PlanCache plan_cache_{options_.plan_cache_max_entries,
                        options_.plan_cache_max_bytes};
  CircuitBreaker grouped_build_breaker_;
  CircuitBreaker cache_fill_breaker_;

  std::mutex measure_pool_mu_;
  std::unique_ptr<ThreadPool> measure_pool_;

  // Observability. Cached instrument pointers make the per-query
  // accounting lock-free (registration happens once, in InitObs).
  obs::MetricsRegistry metrics_;
  struct Instruments {
    obs::Counter* queries = nullptr;
    obs::Counter* query_errors = nullptr;
    obs::Counter* measure_evals = nullptr;
    obs::Counter* measure_cache_hits = nullptr;
    obs::Counter* measure_source_scans = nullptr;
    obs::Counter* measure_inline_evals = nullptr;
    obs::Counter* measure_grouped_builds = nullptr;
    obs::Counter* measure_grouped_probes = nullptr;
    obs::Counter* measure_grouped_fallbacks = nullptr;
    obs::Counter* measure_parallel_tasks = nullptr;
    obs::Counter* subquery_execs = nullptr;
    obs::Counter* subquery_cache_hits = nullptr;
    obs::Counter* shared_cache_hits = nullptr;
    obs::Counter* shared_cache_misses = nullptr;
    obs::Counter* exec_vectorized_batches = nullptr;
    obs::Counter* exec_row_fallbacks = nullptr;
    obs::Counter* shared_cache_insertions = nullptr;
    obs::Counter* shared_cache_evictions = nullptr;
    obs::Counter* shared_cache_invalidations = nullptr;
    obs::Counter* sessions_created = nullptr;
    obs::Counter* breaker_short_circuits = nullptr;
    obs::Counter* slow_queries = nullptr;
    obs::Counter* obs_sink_errors = nullptr;
    obs::Counter* plan_cache_hits = nullptr;
    obs::Counter* plan_cache_misses = nullptr;
    obs::Counter* plan_cache_evictions = nullptr;
    obs::Counter* plan_cache_invalidations = nullptr;
    obs::Gauge* sessions_active = nullptr;
    obs::Gauge* shared_cache_entries = nullptr;
    obs::Gauge* shared_cache_bytes = nullptr;
    obs::Gauge* shared_cache_hit_ratio = nullptr;
    obs::Gauge* plan_cache_entries = nullptr;
    obs::Gauge* plan_cache_bytes = nullptr;
    obs::Histogram* query_duration_ms = nullptr;
  };
  Instruments ins_;

  obs::TraceCollector trace_collector_;
  std::shared_ptr<obs::RingBufferSink> ring_sink_;

  // MetricsText() folds SharedMeasureCache counter deltas into the
  // registry; `synced_cache_` remembers what was already folded.
  std::mutex metrics_sync_mu_;
  SharedMeasureCache::Stats synced_cache_;
  PlanCache::Stats synced_plan_cache_;

  // Snapshot of EngineOptions::slow_query_log_ms at construction, so the
  // msql_slow_queries_total counter agrees with the configured sink even if
  // options() is mutated later.
  int64_t slow_log_threshold_ms_ = -1;

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> next_query_id_{1};

  // Live-session count per authenticated user (CreateSessionForUser /
  // session destruction). A small map under its own mutex: sessions are
  // created at connection rate, not query rate.
  mutable std::mutex session_users_mu_;
  std::unordered_map<std::string, int> session_users_;

  // Cancellation plumbing: the engine-wide generation counter bumped by
  // CancelAll. Guards snapshot the generation when armed.
  std::shared_ptr<std::atomic<uint64_t>> cancel_generation_ =
      std::make_shared<std::atomic<uint64_t>>(0);
};

}  // namespace msql

#endif  // MSQL_ENGINE_ENGINE_H_

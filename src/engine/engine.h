#ifndef MSQL_ENGINE_ENGINE_H_
#define MSQL_ENGINE_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/query_guard.h"
#include "common/status.h"
#include "engine/result_set.h"
#include "exec/exec_state.h"

namespace msql {

// The public entry point: an in-memory SQL engine implementing the msql
// dialect — a practical SQL subset extended with the measure features of
// "Measures in SQL" (Hyde & Fremlin, SIGMOD-Companion 2024): AS MEASURE,
// AGGREGATE, AT (ALL / SET / VISIBLE / WHERE), CURRENT.
//
//   msql::Engine db;
//   db.Execute("CREATE TABLE Orders (prodName VARCHAR, revenue INT)");
//   db.Execute("INSERT INTO Orders VALUES ('Happy', 6), ('Acme', 5)");
//   db.Execute("CREATE VIEW EO AS SELECT *, SUM(revenue) AS MEASURE r "
//              "FROM Orders");
//   auto rs = db.Query("SELECT prodName, AGGREGATE(r) FROM EO "
//                      "GROUP BY prodName");
class Engine {
 public:
  Engine() = default;
  explicit Engine(EngineOptions options) : options_(options) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Runs one or more ';'-separated statements, discarding row results.
  Status Execute(const std::string& sql);

  // Runs a single statement and returns its result set (empty for DDL/DML).
  Result<ResultSet> Query(const std::string& sql);

  // As Query, but the statement observes `cancel`: calling Cancel() on the
  // token from any thread makes the query unwind with kCancelled at its
  // next guard checkpoint. Tokens are single-use handles created with
  // NewCancelToken(); a null token behaves like plain Query.
  Result<ResultSet> Query(const std::string& sql, CancelTokenPtr cancel);

  // Creates a cancellation token to pass to Query.
  static CancelTokenPtr NewCancelToken() {
    return std::make_shared<CancelToken>();
  }

  // Cancels every statement currently executing on this engine (from any
  // thread); each unwinds with kCancelled. Statements started after the
  // call are unaffected.
  void CancelAll() {
    cancel_generation_->fetch_add(1, std::memory_order_relaxed);
  }

  // Binds a SELECT and renders its logical plan.
  Result<std::string> Explain(const std::string& sql);

  // Expands every measure reference in a SELECT into plain SQL (correlated
  // scalar subqueries, paper section 4.2) and returns the rewritten text.
  Result<std::string> ExpandSql(const std::string& sql);

  // Bulk-appends rows to a base table, coercing values to column types.
  // Used by benchmarks and programmatic loaders to bypass SQL parsing.
  Status InsertRows(const std::string& table, std::vector<Row> rows);

  // CSV interop. LoadCsv appends to an existing table, coercing field
  // strings to the column types. ImportCsv creates the table first,
  // inferring column types from the data.
  Status LoadCsv(const std::string& table, const std::string& path,
                 bool header = true);
  Status ImportCsv(const std::string& table, const std::string& path);

  // Security (paper section 5.5): with a current user set, referencing an
  // object requires ownership or a grant; views run with definer's rights.
  void SetUser(std::string user) { user_ = std::move(user); }
  const std::string& user() const { return user_; }
  Status Grant(const std::string& object, const std::string& user);

  EngineOptions& options() { return options_; }
  const Catalog& catalog() const { return catalog_; }

  // Execution statistics of the most recent Query/Execute call: measure
  // cache hits, source scans, subquery executions. Used by the benchmark
  // harness.
  const ExecState& last_stats() const { return last_stats_; }

 private:
  Status ExecuteStmt(const Stmt& stmt, ResultSet* out);
  Status ExecuteInsert(const Stmt& stmt);
  Result<ResultSet> RunSelect(const SelectStmt& select);

  Catalog catalog_;
  EngineOptions options_;
  std::string user_;
  ExecState last_stats_;

  // Cancellation plumbing: the token installed by the Query overload for
  // the duration of that call, and the engine-wide generation counter
  // bumped by CancelAll. Guards snapshot the generation when armed.
  CancelTokenPtr active_cancel_;
  std::shared_ptr<std::atomic<uint64_t>> cancel_generation_ =
      std::make_shared<std::atomic<uint64_t>>(0);
};

}  // namespace msql

#endif  // MSQL_ENGINE_ENGINE_H_

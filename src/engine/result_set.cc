#include "engine/result_set.h"

#include <algorithm>

#include "common/string_util.h"

namespace msql {

int ResultSet::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (EqualsIgnoreCase(names_[i], name)) return static_cast<int>(i);
  }
  return -1;
}

const Value& ResultSet::Get(size_t row, const std::string& column) const {
  int idx = ColumnIndex(column);
  static const Value kNull = Value::Null();
  if (idx < 0 || row >= rows_.size()) return kNull;
  return rows_[row][idx];
}

std::string ResultSet::ToString() const {
  std::vector<size_t> widths(names_.size());
  std::vector<std::vector<std::string>> cells(rows_.size());
  for (size_t c = 0; c < names_.size(); ++c) widths[c] = names_[c].size();
  for (size_t r = 0; r < rows_.size(); ++r) {
    cells[r].resize(names_.size());
    for (size_t c = 0; c < names_.size(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += "\n";
  };
  append_row(names_);
  std::vector<std::string> rule(names_.size());
  for (size_t c = 0; c < names_.size(); ++c) {
    rule[c] = std::string(widths[c], '=');
  }
  append_row(rule);
  for (const auto& row : cells) append_row(row);
  return out;
}

std::string ResultSet::ToCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += "\"\"";
      else q += c;
    }
    q += "\"";
    return q;
  };
  std::string out;
  for (size_t c = 0; c < names_.size(); ++c) {
    if (c > 0) out += ",";
    out += quote(names_[c]);
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      out += row[c].is_null() ? "" : quote(row[c].ToString());
    }
    out += "\n";
  }
  return out;
}

}  // namespace msql

#ifndef MSQL_ENGINE_RESULT_SET_H_
#define MSQL_ENGINE_RESULT_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/query_stats.h"
#include "common/types.h"
#include "common/value.h"

namespace msql {

// A fully materialized query result: column metadata plus row data (visible
// columns only; measure columns appear with their `t MEASURE` type and NULL
// placeholder cells).
class ResultSet {
 public:
  ResultSet() = default;
  ResultSet(std::vector<std::string> names, std::vector<DataType> types,
            std::vector<Row> rows)
      : names_(std::move(names)),
        types_(std::move(types)),
        rows_(std::move(rows)) {}

  size_t num_columns() const { return names_.size(); }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& column_names() const { return names_; }
  const std::vector<DataType>& column_types() const { return types_; }
  const std::vector<Row>& rows() const { return rows_; }

  // Index of the column with this (case-insensitive) name; -1 if absent.
  int ColumnIndex(const std::string& name) const;

  // Bounds-checked access; out-of-range reads return NULL so failed-query
  // fallbacks in tests degrade gracefully.
  const Value& Get(size_t row, size_t col) const {
    static const Value kNullValue;
    if (row >= rows_.size() || col >= rows_[row].size()) return kNullValue;
    return rows_[row][col];
  }
  const Value& Get(size_t row, const std::string& column) const;

  // ASCII table rendering, like the listings in the paper.
  std::string ToString() const;

  // Comma-separated rendering with a header row.
  std::string ToCsv() const;

  // Execution statistics of the query that produced this result (null for
  // DDL/DML and default-constructed results). Per-query and immutable, so
  // safe to read from any thread; engine-wide aggregates live in
  // Engine::stats() and the metrics registry.
  const std::shared_ptr<const QueryStats>& stats() const { return stats_; }
  void set_stats(std::shared_ptr<const QueryStats> stats) {
    stats_ = std::move(stats);
  }

 private:
  std::vector<std::string> names_;
  std::vector<DataType> types_;
  std::vector<Row> rows_;
  std::shared_ptr<const QueryStats> stats_;
};

}  // namespace msql

#endif  // MSQL_ENGINE_RESULT_SET_H_

#include "exec/agg_eval.h"

#include <cmath>
#include <set>

#include "exec/vector_eval.h"

namespace msql {

namespace {

// Lexicographic ordering of value tuples for DISTINCT aggregation.
struct RowLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

inline double ColAsDouble(const ColumnVector& c, int64_t i) {
  return c.kind == TypeKind::kDouble ? c.doubles[i]
                                     : static_cast<double>(c.ints[i]);
}

// Columnar fast path for the plain-aggregate shape (no DISTINCT, no FILTER,
// no correlation): the single argument is a depth-0 column reference with a
// typed column available, or the call is COUNT(*). Accumulation mirrors
// AggAccumulator state-for-state — same row order, same double operations —
// so results are bit-identical to the row path. Returns true when handled.
bool TryVectorizedAgg(AggId agg, const std::vector<BoundExprPtr>& args,
                      const Relation& rel, const std::vector<int64_t>& rows,
                      ExecState* state, Result<Value>* out) {
  if (agg == AggId::kCountStar) {
    *out = Value::Int(static_cast<int64_t>(rows.size()));
    return true;
  }
  if (args.size() != 1) return false;
  const BoundExpr& a0 = *args[0];
  if (a0.kind != BoundExprKind::kColumnRef || a0.depth != 0 || a0.column < 0) {
    return false;
  }
  if (rel.columns == nullptr ||
      static_cast<size_t>(a0.column) >= rel.columns->cols.size() ||
      rel.columns->cols[a0.column] == nullptr) {
    return false;
  }
  const ColumnVector& c = *rel.columns->cols[a0.column];
  auto check_guard = [&](size_t i) -> bool {
    if ((i & (kRowsPerBatch - 1)) != 0) return true;
    Status st = state->guard.Check();
    if (st.ok()) return true;
    *out = st;
    return false;
  };

  switch (agg) {
    case AggId::kCount: {
      int64_t count = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (!check_guard(i)) return true;
        if (c.IsValid(rows[i])) ++count;
      }
      *out = Value::Int(count);
      return true;
    }
    case AggId::kSum: {
      if (c.kind == TypeKind::kNull) {
        *out = Value::Null();
        return true;
      }
      if (c.kind == TypeKind::kInt64) {
        uint64_t isum = 0;  // wrapping, like the row path's int64 +=
        bool has_value = false;
        for (size_t i = 0; i < rows.size(); ++i) {
          if (!check_guard(i)) return true;
          const int64_t idx = rows[i];
          if (!c.IsValid(idx)) continue;
          has_value = true;
          isum += static_cast<uint64_t>(c.ints[idx]);
        }
        *out = has_value ? Value::Int(static_cast<int64_t>(isum))
                         : Value::Null();
        return true;
      }
      if (c.kind == TypeKind::kDouble) {
        double sum = 0;
        bool has_value = false;
        for (size_t i = 0; i < rows.size(); ++i) {
          if (!check_guard(i)) return true;
          const int64_t idx = rows[i];
          if (!c.IsValid(idx)) continue;
          has_value = true;
          sum += c.doubles[idx];
        }
        *out = has_value ? Value::Double(sum) : Value::Null();
        return true;
      }
      // SUM over DATE/BOOL/STRING has row-path quirks (untouched isum_);
      // leave those to the row path.
      return false;
    }
    case AggId::kAvg:
    case AggId::kStddev:
    case AggId::kVariance: {
      if (c.kind == TypeKind::kNull) {
        *out = Value::Null();
        return true;
      }
      if (c.kind == TypeKind::kString) return false;
      int64_t count = 0;
      double sum = 0, sum_sq = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (!check_guard(i)) return true;
        const int64_t idx = rows[i];
        if (!c.IsValid(idx)) continue;
        ++count;
        sum += ColAsDouble(c, idx);
        sum_sq += ColAsDouble(c, idx) * ColAsDouble(c, idx);
      }
      if (agg == AggId::kAvg) {
        *out = count == 0 ? Value::Null()
                          : Value::Double(sum / static_cast<double>(count));
        return true;
      }
      if (count < 2) {
        *out = Value::Null();
        return true;
      }
      const double n = static_cast<double>(count);
      double var = (sum_sq - sum * sum / n) / (n - 1);
      if (var < 0) var = 0;  // numerical noise
      *out = Value::Double(agg == AggId::kStddev ? std::sqrt(var) : var);
      return true;
    }
    case AggId::kMin:
    case AggId::kMax: {
      if (c.kind == TypeKind::kNull) {
        *out = Value::Null();
        return true;
      }
      const bool want_min = agg == AggId::kMin;
      int64_t best = -1;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (!check_guard(i)) return true;
        const int64_t idx = rows[i];
        if (!c.IsValid(idx)) continue;
        if (best < 0) {
          best = idx;
          continue;
        }
        // Strict comparisons keep the first-seen value among equals (and,
        // for doubles, under NaN), exactly like Value::Compare.
        bool better;
        if (c.kind == TypeKind::kDouble) {
          better = want_min ? c.doubles[idx] < c.doubles[best]
                            : c.doubles[idx] > c.doubles[best];
        } else if (c.kind == TypeKind::kString) {
          const int cmp = (*c.dict)[static_cast<size_t>(c.ints[idx])].compare(
              (*c.dict)[static_cast<size_t>(c.ints[best])]);
          better = want_min ? cmp < 0 : cmp > 0;
        } else {
          better = want_min ? c.ints[idx] < c.ints[best]
                            : c.ints[idx] > c.ints[best];
        }
        if (better) best = idx;
      }
      *out = best < 0 ? Value::Null() : c.At(best);
      return true;
    }
    default:
      return false;  // MIN_BY/MAX_BY and window-only ids: row path
  }
}

}  // namespace

Result<Value> EvalAggCall(AggId agg, const std::vector<BoundExprPtr>& args,
                          bool distinct, const BoundExpr* filter,
                          const Relation& rel,
                          const std::vector<int64_t>& rows,
                          const RowStack& outer, ExecState* state) {
  if (outer.empty() && !distinct && filter == nullptr) {
    switch (VectorizedGate(state)) {
      case VectorGate::kOk: {
        Result<Value> fast = Value::Null();
        if (TryVectorizedAgg(agg, args, rel, rows, state, &fast)) {
          state->exec_vectorized_batches += static_cast<uint64_t>(
              NumBatches(static_cast<int64_t>(rows.size())));
          return fast;
        }
        ++state->exec_row_fallbacks;
        break;
      }
      case VectorGate::kFaulted:  // counted inside the gate
      case VectorGate::kRowMode:
        break;
    }
  }

  Evaluator ev(state);
  AggAccumulator acc(agg);
  std::set<std::vector<Value>, RowLess> seen;
  RowStack stack;
  stack.reserve(outer.size() + 1);
  stack.push_back(Frame{});
  for (const Frame& f : outer) stack.push_back(f);

  for (int64_t idx : rows) {
    MSQL_RETURN_IF_ERROR(state->guard.Check());
    stack[0] = Frame{&rel.rows[idx], idx, &rel};
    if (filter != nullptr) {
      MSQL_ASSIGN_OR_RETURN(bool keep, ev.EvalPredicate(*filter, stack));
      if (!keep) continue;
    }
    std::vector<Value> arg_values;
    arg_values.reserve(args.size());
    for (const auto& a : args) {
      MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*a, stack));
      arg_values.push_back(std::move(v));
    }
    if (distinct) {
      // NULLs are skipped by aggregates anyway; dedupe on the arg tuple.
      if (!seen.insert(arg_values).second) continue;
    }
    MSQL_RETURN_IF_ERROR(acc.Accumulate(arg_values));
  }
  return acc.Finish();
}

}  // namespace msql

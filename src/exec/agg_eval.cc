#include "exec/agg_eval.h"

#include <set>

namespace msql {

namespace {

// Lexicographic ordering of value tuples for DISTINCT aggregation.
struct RowLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

Result<Value> EvalAggCall(AggId agg, const std::vector<BoundExprPtr>& args,
                          bool distinct, const BoundExpr* filter,
                          const Relation& rel,
                          const std::vector<int64_t>& rows,
                          const RowStack& outer, ExecState* state) {
  Evaluator ev(state);
  AggAccumulator acc(agg);
  std::set<std::vector<Value>, RowLess> seen;
  RowStack stack;
  stack.reserve(outer.size() + 1);
  stack.push_back(Frame{});
  for (const Frame& f : outer) stack.push_back(f);

  for (int64_t idx : rows) {
    MSQL_RETURN_IF_ERROR(state->guard.Check());
    stack[0] = Frame{&rel.rows[idx], idx, &rel};
    if (filter != nullptr) {
      MSQL_ASSIGN_OR_RETURN(bool keep, ev.EvalPredicate(*filter, stack));
      if (!keep) continue;
    }
    std::vector<Value> arg_values;
    arg_values.reserve(args.size());
    for (const auto& a : args) {
      MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*a, stack));
      arg_values.push_back(std::move(v));
    }
    if (distinct) {
      // NULLs are skipped by aggregates anyway; dedupe on the arg tuple.
      if (!seen.insert(arg_values).second) continue;
    }
    MSQL_RETURN_IF_ERROR(acc.Accumulate(arg_values));
  }
  return acc.Finish();
}

}  // namespace msql

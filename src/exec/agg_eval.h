#ifndef MSQL_EXEC_AGG_EVAL_H_
#define MSQL_EXEC_AGG_EVAL_H_

#include <vector>

#include "binder/bound_expr.h"
#include "common/status.h"
#include "exec/eval.h"
#include "exec/relation.h"

namespace msql {

// Evaluates one aggregate call over the given rows (indices into rel.rows).
// `outer` supplies frames for correlated references (depth >= 1) inside the
// arguments; DISTINCT and FILTER are honored. Shared by the Aggregate
// executor, the window executor and the measure-formula evaluator.
Result<Value> EvalAggCall(AggId agg, const std::vector<BoundExprPtr>& args,
                          bool distinct, const BoundExpr* filter,
                          const Relation& rel,
                          const std::vector<int64_t>& rows,
                          const RowStack& outer, ExecState* state);

}  // namespace msql

#endif  // MSQL_EXEC_AGG_EVAL_H_

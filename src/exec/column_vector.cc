#include "exec/column_vector.h"

#include <cstring>

namespace msql {

std::vector<RowBatch> MakeBatches(int64_t rows) {
  std::vector<RowBatch> batches;
  batches.reserve(static_cast<size_t>(NumBatches(rows)));
  for (int64_t off = 0; off < rows; off += kRowsPerBatch) {
    batches.push_back(RowBatch{off, std::min(kRowsPerBatch, rows - off)});
  }
  return batches;
}

Value ColumnVector::At(int64_t i) const {
  if (!IsValid(i)) return Value::Null();
  switch (kind) {
    case TypeKind::kBool:
      return Value::Bool(ints[i] != 0);
    case TypeKind::kInt64:
      return Value::Int(ints[i]);
    case TypeKind::kDate:
      return Value::Date(ints[i]);
    case TypeKind::kDouble:
      return Value::Double(doubles[i]);
    case TypeKind::kString:
      return Value::String((*dict)[static_cast<size_t>(ints[i])]);
    case TypeKind::kNull:
      return Value::Null();
  }
  return Value::Null();
}

ColumnBuilder::ColumnBuilder(std::shared_ptr<Arena> arena, int64_t capacity)
    : arena_(std::move(arena)), capacity_(capacity) {}

bool ColumnBuilder::EnsurePayload(TypeKind kind) {
  kind_ = kind;
  const size_t n = static_cast<size_t>(capacity_);
  if (kind == TypeKind::kDouble) {
    doubles_ = arena_->AllocateArray<double>(n);
    if (doubles_ == nullptr) return false;
    std::memset(doubles_, 0, n * sizeof(double));
  } else {
    ints_ = arena_->AllocateArray<int64_t>(n);
    if (ints_ == nullptr) return false;
    std::memset(ints_, 0, n * sizeof(int64_t));
  }
  if (kind == TypeKind::kString) {
    dict_ = std::make_shared<std::vector<std::string>>();
  }
  return true;
}

bool ColumnBuilder::Append(const Value& v) {
  const int64_t i = length_;
  if (v.is_null()) {
    if (valid_ == nullptr) {
      const size_t words = static_cast<size_t>((capacity_ + 63) / 64);
      valid_ = arena_->AllocateArray<uint64_t>(words);
      if (valid_ == nullptr) return false;
      // All rows appended so far were non-NULL.
      std::memset(valid_, 0xff, words * sizeof(uint64_t));
      for (int64_t j = i; j < capacity_; ++j) {
        valid_[j >> 6] &= ~(uint64_t{1} << (j & 63));
      }
    }
    has_null_ = true;
    ++length_;
    return true;
  }
  if (kind_ == TypeKind::kNull) {
    if (!EnsurePayload(v.kind())) return false;
  } else if (v.kind() != kind_) {
    return false;  // mixed-kind column: stays row-major
  }
  if (valid_ != nullptr) valid_[i >> 6] |= uint64_t{1} << (i & 63);
  switch (kind_) {
    case TypeKind::kBool:
      ints_[i] = v.bool_val() ? 1 : 0;
      break;
    case TypeKind::kInt64:
      ints_[i] = v.int_val();
      break;
    case TypeKind::kDate:
      ints_[i] = v.date_days();
      break;
    case TypeKind::kDouble:
      doubles_[i] = v.double_val();
      break;
    case TypeKind::kString: {
      if (dict_unique_) {
        if (dict_->size() < kMaxDictCodes) {
          auto [it, inserted] = dict_codes_.emplace(
              v.str(), static_cast<int64_t>(dict_->size()));
          if (inserted) dict_->push_back(v.str());
          ints_[i] = it->second;
          break;
        }
        // High-cardinality column: degrade to inline entries (codes are no
        // longer pairwise comparable).
        dict_unique_ = false;
        dict_codes_.clear();
      }
      ints_[i] = static_cast<int64_t>(dict_->size());
      dict_->push_back(v.str());
      break;
    }
    default:
      return false;
  }
  ++length_;
  return true;
}

ColumnPtr ColumnBuilder::Finish() {
  if (!arena_->status().ok()) return nullptr;
  auto col = std::make_shared<ColumnVector>();
  col->kind = kind_;
  col->length = length_;
  col->ints = ints_;
  col->doubles = doubles_;
  col->dict_unique = dict_unique_;
  if (dict_ != nullptr) col->dict = dict_;
  col->arena = arena_;
  if (has_null_) col->valid = valid_;
  if (kind_ == TypeKind::kNull && length_ > 0) {
    // All-NULL column: represent with an all-zero bitmap so IsValid stays
    // uniform for kernels that only look at validity.
    const size_t words = static_cast<size_t>((length_ + 63) / 64);
    uint64_t* zeros = arena_->AllocateArray<uint64_t>(words);
    if (zeros == nullptr) return nullptr;
    std::memset(zeros, 0, words * sizeof(uint64_t));
    col->valid = zeros;
  }
  return col;
}

Result<std::shared_ptr<const ColumnarRelation>> ColumnarizeRows(
    size_t width, const std::vector<Row>& rows,
    const std::shared_ptr<Arena>& arena) {
  auto out = std::make_shared<ColumnarRelation>();
  out->num_rows = static_cast<int64_t>(rows.size());
  out->cols.resize(width);
  for (size_t c = 0; c < width; ++c) {
    ColumnBuilder builder(arena, out->num_rows);
    bool ok = true;
    for (const Row& row : rows) {
      if (c >= row.size() || !builder.Append(row[c])) {
        ok = false;
        break;
      }
    }
    if (!arena->status().ok()) return arena->status();
    if (!ok) continue;  // mixed-kind column: left row-major
    ColumnPtr col = builder.Finish();
    if (col == nullptr) return arena->status();
    out->cols[c] = std::move(col);
  }
  out->batches = MakeBatches(out->num_rows);
  return std::shared_ptr<const ColumnarRelation>(std::move(out));
}

Result<ColumnPtr> GatherColumn(const ColumnVector& c,
                               const std::vector<int64_t>& sel,
                               const std::shared_ptr<Arena>& arena) {
  auto col = std::make_shared<ColumnVector>();
  const int64_t n = static_cast<int64_t>(sel.size());
  col->kind = c.kind;
  col->length = n;
  col->dict = c.dict;
  col->dict_unique = c.dict_unique;
  col->arena = arena;
  const size_t words = static_cast<size_t>((n + 63) / 64);
  if (c.kind == TypeKind::kNull) {
    uint64_t* zeros = arena->AllocateArray<uint64_t>(words == 0 ? 1 : words);
    if (zeros == nullptr) return arena->status();
    std::memset(zeros, 0, (words == 0 ? 1 : words) * sizeof(uint64_t));
    col->valid = zeros;
    return ColumnPtr(col);
  }
  uint64_t* valid = nullptr;
  if (c.valid != nullptr) {
    valid = arena->AllocateArray<uint64_t>(words == 0 ? 1 : words);
    if (valid == nullptr) return arena->status();
    std::memset(valid, 0, (words == 0 ? 1 : words) * sizeof(uint64_t));
  }
  if (c.kind == TypeKind::kDouble) {
    double* out = arena->AllocateArray<double>(static_cast<size_t>(n));
    if (out == nullptr && n > 0) return arena->status();
    for (int64_t i = 0; i < n; ++i) out[i] = c.doubles[sel[i]];
    col->doubles = out;
  } else {
    int64_t* out = arena->AllocateArray<int64_t>(static_cast<size_t>(n));
    if (out == nullptr && n > 0) return arena->status();
    for (int64_t i = 0; i < n; ++i) out[i] = c.ints[sel[i]];
    col->ints = out;
  }
  if (valid != nullptr) {
    for (int64_t i = 0; i < n; ++i) {
      if (c.IsValid(sel[i])) valid[i >> 6] |= uint64_t{1} << (i & 63);
    }
    col->valid = valid;
  }
  return ColumnPtr(col);
}

std::vector<Row> MaterializeRowsDense(const ColumnarRelation& c) {
  std::vector<Row> rows;
  rows.resize(static_cast<size_t>(c.num_rows));
  const size_t width = c.cols.size();
  for (int64_t i = 0; i < c.num_rows; ++i) {
    Row& row = rows[static_cast<size_t>(i)];
    row.reserve(width);
    for (size_t col = 0; col < width; ++col) {
      row.push_back(c.cols[col]->At(i));
    }
  }
  return rows;
}

}  // namespace msql

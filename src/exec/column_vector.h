#ifndef MSQL_EXEC_COLUMN_VECTOR_H_
#define MSQL_EXEC_COLUMN_VECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "common/value.h"

namespace msql {

// Rows per vectorized batch: the unit kernels and accumulators chunk their
// loops (and guard checkpoints) by, and the granularity of the
// msql_exec_vectorized_batches_total counter. 1024 rows keeps a handful of
// int64/double payload columns resident in L1/L2 and divides the validity
// bitmap into whole 64-bit words (16 per batch). See docs/PERFORMANCE.md.
inline constexpr int64_t kRowsPerBatch = 1024;

inline int64_t NumBatches(int64_t rows) {
  return (rows + kRowsPerBatch - 1) / kRowsPerBatch;
}

// A half-open row span [offset, offset + length) of a columnar relation;
// the schema is shared by reference to the carrying relation.
struct RowBatch {
  int64_t offset = 0;
  int64_t length = 0;
};

// [0, rows) split into kRowsPerBatch-sized spans (last one ragged).
std::vector<RowBatch> MakeBatches(int64_t rows);

// One typed column of a materialized relation. The payload is a flat array
// carved from `arena`; NULLs live in a separate validity bitmap so kernels
// stream the payload and combine bitmaps word-at-a-time.
//
// Representation by kind:
//   kBool / kInt64 / kDate  payload in `ints` (bools 0/1, dates day numbers)
//   kDouble                 payload in `doubles`
//   kString                 `ints` holds codes into `*dict`
//                           ("dictionary-or-inline": the builder dedups
//                           through a hash map while the dictionary stays
//                           small, then degrades to appending one entry per
//                           row; `dict_unique` records whether dedup held,
//                           which is what makes codes comparable)
//   kNull                   every row NULL; no payload
//
// A column with `valid == nullptr` has no NULLs. Payload slots of NULL rows
// are zero-filled so full-width kernels never touch uninitialized memory.
struct ColumnVector {
  TypeKind kind = TypeKind::kNull;
  int64_t length = 0;
  const uint64_t* valid = nullptr;  // bit i set = row i non-NULL
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  std::shared_ptr<const std::vector<std::string>> dict;
  bool dict_unique = false;
  std::shared_ptr<Arena> arena;  // keeps payload storage alive

  bool IsValid(int64_t i) const {
    return valid == nullptr || ((valid[i >> 6] >> (i & 63)) & 1) != 0;
  }

  // Reconstructs the row-path Value of row i (Null when the bit is clear).
  Value At(int64_t i) const;
};

using ColumnPtr = std::shared_ptr<const ColumnVector>;

// Columnar image of a Relation: one ColumnVector per schema column, plus the
// batch spans kernels iterate by. Individual entries may be null when that
// column could not be columnarized (mixed value kinds under dynamic typing);
// kernels touching a missing column fall back to the row path.
struct ColumnarRelation {
  int64_t num_rows = 0;
  std::vector<ColumnPtr> cols;
  std::vector<RowBatch> batches;

  bool Complete() const {
    for (const ColumnPtr& c : cols) {
      if (c == nullptr) return false;
    }
    return true;
  }
};

// Append-style column builder with a fixed row capacity (callers always know
// an upper bound: the input row count). The payload kind is latched from the
// first non-NULL value appended; a later value of a different kind makes
// Append return false, which callers treat as "this column stays row-major"
// (dynamic typing allows ragged columns; freezing a wrong kind would break
// the bit-for-bit row round-trip). Arena exhaustion also returns false, with
// the difference visible in status().
class ColumnBuilder {
 public:
  // Dictionary dedup limit: past this many distinct strings the builder
  // stops deduping and appends inline, one dictionary entry per row.
  static constexpr size_t kMaxDictCodes = 1u << 14;

  ColumnBuilder(std::shared_ptr<Arena> arena, int64_t capacity);

  bool Append(const Value& v);

  // Finalizes into an immutable column of exactly the appended length.
  // Null only when the arena was poisoned (see status()).
  ColumnPtr Finish();

  const Status& status() const { return arena_->status(); }

 private:
  bool EnsurePayload(TypeKind kind);

  std::shared_ptr<Arena> arena_;
  int64_t capacity_ = 0;
  int64_t length_ = 0;
  TypeKind kind_ = TypeKind::kNull;
  uint64_t* valid_ = nullptr;
  int64_t* ints_ = nullptr;
  double* doubles_ = nullptr;
  bool has_null_ = false;
  std::shared_ptr<std::vector<std::string>> dict_;
  std::unordered_map<std::string, int64_t> dict_codes_;
  bool dict_unique_ = true;
};

// Builds the columnar image of `rows` (each at least `width` values wide).
// Columns whose values mix kinds get a null entry; an arena poisoned by its
// guard (memory budget) aborts the build with that error.
Result<std::shared_ptr<const ColumnarRelation>> ColumnarizeRows(
    size_t width, const std::vector<Row>& rows,
    const std::shared_ptr<Arena>& arena);

// Rebuilds row-path rows from a complete columnar relation (every column
// present). The inverse of ColumnarizeRows up to value identity.
std::vector<Row> MaterializeRowsDense(const ColumnarRelation& c);

// Gathers the rows listed in `sel` (indices into `c`) into a fresh column
// with payload storage in `arena`; a string column shares the source
// dictionary, so gathering is O(|sel|) regardless of dictionary size.
// Errors only when the arena's guard rejects the allocation.
Result<ColumnPtr> GatherColumn(const ColumnVector& c,
                               const std::vector<int64_t>& sel,
                               const std::shared_ptr<Arena>& arena);

}  // namespace msql

#endif  // MSQL_EXEC_COLUMN_VECTOR_H_

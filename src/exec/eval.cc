#include "exec/eval.h"

#include "common/string_util.h"
#include "exec/executor.h"
#include "measure/cse.h"

namespace msql {

bool SqlLike(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match: '%' = any sequence, '_' = any single char.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<bool> Evaluator::EvalPredicate(const BoundExpr& e,
                                      const RowStack& stack) {
  MSQL_ASSIGN_OR_RETURN(Value v, Eval(e, stack));
  return !v.is_null() && v.bool_val();
}

Result<Value> Evaluator::Eval(const BoundExpr& e, const RowStack& stack) {
  MSQL_RETURN_IF_ERROR(state_->guard.Check());
  switch (e.kind) {
    case BoundExprKind::kLiteral:
      return e.literal;
    case BoundExprKind::kColumnRef: {
      if (e.depth < 0 || static_cast<size_t>(e.depth) >= stack.size() ||
          stack[e.depth].row == nullptr) {
        return Status(ErrorCode::kExecution,
                      StrCat("column reference ", e.ToString(),
                             " out of scope (stack depth ", stack.size(), ")"));
      }
      const Row& row = *stack[e.depth].row;
      if (e.column < 0 || static_cast<size_t>(e.column) >= row.size()) {
        return Status(ErrorCode::kExecution,
                      StrCat("column index ", e.column, " out of range"));
      }
      return row[e.column];
    }
    case BoundExprKind::kRowIndex:
      if (stack.empty() || stack[0].row_index < 0) {
        return Status(ErrorCode::kExecution, "row index unavailable");
      }
      return Value::Int(stack[0].row_index);
    case BoundExprKind::kFunc: {
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        MSQL_ASSIGN_OR_RETURN(Value v, Eval(*a, stack));
        args.push_back(std::move(v));
      }
      return EvalScalarFunction(e.func, args);
    }
    case BoundExprKind::kCase: {
      for (const auto& [when, then] : e.when_clauses) {
        MSQL_ASSIGN_OR_RETURN(bool cond, EvalPredicate(*when, stack));
        if (cond) return Eval(*then, stack);
      }
      if (e.else_expr) return Eval(*e.else_expr, stack);
      return Value::Null();
    }
    case BoundExprKind::kCast: {
      MSQL_ASSIGN_OR_RETURN(Value v, Eval(*e.operand, stack));
      return v.CastTo(e.cast_to);
    }
    case BoundExprKind::kIsNull: {
      MSQL_ASSIGN_OR_RETURN(Value v, Eval(*e.operand, stack));
      return Value::Bool(v.is_null() != e.negated);
    }
    case BoundExprKind::kInList: {
      MSQL_ASSIGN_OR_RETURN(Value v, Eval(*e.operand, stack));
      if (v.is_null()) return Value::Null();
      bool saw_null = false;
      for (const auto& item : e.args) {
        MSQL_ASSIGN_OR_RETURN(Value iv, Eval(*item, stack));
        if (iv.is_null()) {
          saw_null = true;
          continue;
        }
        if (Value::NotDistinct(v, iv)) return Value::Bool(!e.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(e.negated);
    }
    case BoundExprKind::kLike: {
      MSQL_ASSIGN_OR_RETURN(Value text, Eval(*e.operand, stack));
      MSQL_ASSIGN_OR_RETURN(Value pattern, Eval(*e.args[0], stack));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      bool match = SqlLike(text.str(), pattern.str());
      return Value::Bool(match != e.negated);
    }
    case BoundExprKind::kSubquery:
    case BoundExprKind::kInSubquery:
    case BoundExprKind::kExists:
      return EvalSubqueryExpr(e, stack, this);
    case BoundExprKind::kMeasureEval:
      return EvalMeasureAtRow(e, stack, this);
    case BoundExprKind::kCurrent: {
      if (current_measure == nullptr) {
        return Status(ErrorCode::kExecution,
                      "CURRENT is only valid inside an AT modifier");
      }
      MSQL_ASSIGN_OR_RETURN(
          BoundExprPtr src,
          TranslateToSource(*e.current_dim, *current_measure, stack,
                            current_context, state_));
      if (current_context != nullptr) {
        if (auto v = current_context->CurrentValue(src->ToString())) {
          return *v;
        }
      }
      // Paper section 3.5: NULL when the dimension is not pinned to a single
      // value by the enclosing evaluation context.
      return Value::Null();
    }
    case BoundExprKind::kGroupingBit: {
      if (stack.empty() || stack[0].row == nullptr ||
          e.grouping_col < 0 ||
          static_cast<size_t>(e.grouping_col) >= stack[0].row->size()) {
        return Status(ErrorCode::kExecution, "GROUPING outside aggregation");
      }
      const Value& gid = (*stack[0].row)[e.grouping_col];
      if (gid.is_null()) return Value::Null();
      return Value::Int((gid.int_val() >> e.grouping_bit) & 1);
    }
    case BoundExprKind::kParam: {
      if (state_->params == nullptr || e.param_index < 0 ||
          static_cast<size_t>(e.param_index) >= state_->params->size()) {
        return Status(ErrorCode::kExecution,
                      StrCat("parameter $", e.param_index + 1,
                             " has no bound value"));
      }
      return (*state_->params)[e.param_index];
    }
    case BoundExprKind::kAgg:
      return Status(ErrorCode::kExecution,
                    "aggregate function evaluated outside aggregation");
  }
  return Status(ErrorCode::kExecution, "unhandled expression kind");
}

}  // namespace msql

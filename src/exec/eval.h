#ifndef MSQL_EXEC_EVAL_H_
#define MSQL_EXEC_EVAL_H_

#include <vector>

#include "binder/bound_expr.h"
#include "common/status.h"
#include "exec/exec_state.h"
#include "exec/relation.h"
#include "measure/context.h"

namespace msql {

// One scope frame during evaluation. `rel` (when set) gives access to the
// relation's measures and is required for kMeasureEval / kRowIndex; `row`
// may point at a synthetic row (e.g. a group key tuple) with rel == null.
struct Frame {
  const Row* row = nullptr;
  int64_t row_index = -1;
  const Relation* rel = nullptr;
};

// stack[depth] is the scope a kColumnRef with that depth resolves against;
// stack[0] is the innermost row.
using RowStack = std::vector<Frame>;

// Row-at-a-time expression evaluator. Aggregate calls never reach it (they
// live in Aggregate nodes, window defs and measure formulas); measure
// evaluations are delegated to the CSE evaluator in src/measure/.
class Evaluator {
 public:
  explicit Evaluator(ExecState* state) : state_(state) {}

  ExecState* state() const { return state_; }

  // Context for CURRENT-dim resolution while evaluating AT-modifier
  // sub-expressions; null elsewhere.
  const EvalContext* current_context = nullptr;
  const RtMeasure* current_measure = nullptr;

  Result<Value> Eval(const BoundExpr& e, const RowStack& stack);

  // Evaluates a predicate; NULL counts as false.
  Result<bool> EvalPredicate(const BoundExpr& e, const RowStack& stack);

 private:
  ExecState* state_;
};

// SQL LIKE with % and _ wildcards.
bool SqlLike(const std::string& text, const std::string& pattern);

}  // namespace msql

#endif  // MSQL_EXEC_EVAL_H_

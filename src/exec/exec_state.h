#ifndef MSQL_EXEC_EXEC_STATE_H_
#define MSQL_EXEC_EXEC_STATE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/query_guard.h"
#include "common/value.h"
#include "obs/op_profile.h"

namespace msql {

class CircuitBreaker;      // runtime/circuit_breaker.h
class SharedMeasureCache;  // runtime/shared_cache.h
class ThreadPool;          // runtime/thread_pool.h
struct GroupedIndex;       // measure/grouped.h
struct LogicalPlan;        // plan/plan.h

// How measure evaluations are executed. kNaive re-scans the measure source
// for every evaluation; kMemoized caches by evaluation-context signature —
// the paper's "localized self-join" strategy (section 5.1), where per-group
// results are probed from an in-memory cache instead of recomputed.
// kGrouped (the default) additionally partitions the source once per
// context *shape* with a dimension-tuple hash index, so a batch of G
// same-shaped contexts (what GROUP BY produces) costs O(R + G) instead of
// O(G x R); see docs/PERFORMANCE.md.
enum class MeasureStrategy { kNaive, kMemoized, kGrouped };

// How operators execute. kVectorized (the default) runs the hot operators
// (scan, project, filter, aggregation, measure accumulation) over typed
// column batches (exec/column_vector.h) with per-operator fallback to the
// row path when an expression has no kernel; kRow is the row-at-a-time
// interpreter, kept as the correctness baseline (the msqlcheck oracle runs
// every strategy under both modes). Fallbacks surface in EXPLAIN ANALYZE
// (exec=vectorized|row) and the msql_exec_row_fallbacks_total metric.
enum class ExecMode { kRow, kVectorized };

struct EngineOptions {
  MeasureStrategy measure_strategy = MeasureStrategy::kGrouped;
  ExecMode exec_mode = ExecMode::kVectorized;
  // Paper section 6.4's inline rewrite, as a runtime fast path: a context
  // consisting solely of row-id terms is evaluated directly over those rows
  // (no source scan), and VISIBLE-only call sites skip the redundant
  // group-key dimension terms. Off = ablation baseline.
  bool inline_visible_contexts = true;
  // Cache correlated scalar subquery results by their free-variable values
  // (the WinMagic-adjacent optimization discussed in section 5.1).
  bool memoize_subqueries = true;
  // Workers for morsel-parallel grouped index builds and probe batches.
  // 0 = one worker per hardware thread (capped by the engine's measure
  // pool); 1 = single-threaded.
  int measure_parallelism = 0;
  // Guard rails (see docs/ROBUSTNESS.md). Zero means unlimited. The depth
  // limit drives every recursion guard: plan execution, measure evaluation
  // and view expansion all trip kResourceExhausted at this depth.
  int max_recursion_depth = 64;
  // Wall-clock budget per statement; exceeding it returns
  // kDeadlineExceeded. Scheduler-submitted statements start this budget at
  // admission (docs/CONCURRENCY.md), so queue wait counts against it.
  int64_t timeout_ms = 0;
  // Admission rate limit for scheduler-submitted statements of one session
  // (token bucket; docs/ROBUSTNESS.md). 0 = unlimited.
  double admission_rate_limit_qps = 0.0;
  int64_t admission_rate_limit_burst = 8;
  // Circuit breakers guarding the degradable fault points (grouped-index
  // builds, shared-cache fills); see runtime/circuit_breaker.h. Read at
  // engine construction. A breaker opens when, of the last
  // `breaker_window` outcomes (at least `breaker_min_samples` of them),
  // the failing fraction reaches `breaker_failure_ratio`; it half-opens
  // after `breaker_open_cooldown_ms` and closes again after
  // `breaker_half_open_probes` consecutive successful probes.
  int breaker_window = 16;
  double breaker_failure_ratio = 0.5;
  int breaker_min_samples = 8;
  int64_t breaker_open_cooldown_ms = 100;
  int breaker_half_open_probes = 2;
  // Approximate bytes of materialized relations; exceeding returns
  // kResourceExhausted.
  uint64_t max_memory_bytes = 0;
  // Total rows materialized across all operators of a statement (a proxy
  // for total work and peak memory); exceeding returns kResourceExhausted.
  uint64_t max_result_rows = 0;
  // Prepared-statement plan cache (docs/NETWORKING.md): when enabled,
  // Engine::Query consults a fingerprint-keyed cache of bound,
  // measure-expanded plans before parsing, and Engine::PrepareSelect
  // publishes into it. Invalidated by catalog generation; LRU-bounded by
  // the plan_cache_* limits below.
  bool enable_plan_cache = false;
  size_t plan_cache_max_entries = 256;
  uint64_t plan_cache_max_bytes = 64ull << 20;
  // Observability (docs/OBSERVABILITY.md). Tracing is off by default and
  // zero-cost when disabled: the traced path is only entered when this is
  // set, so the hot path pays one branch.
  bool enable_tracing = false;
  // Traces retained for Engine::RecentTraces() (engine-level: the ring is
  // sized when the engine is constructed).
  size_t trace_ring_capacity = 64;
  // Queries with total wall time >= this threshold are appended to the
  // slow-query log as JSON lines (0 logs every traced query). Negative
  // disables the sink. Engine-level: read at engine construction.
  int64_t slow_query_log_ms = -1;
  // Slow-query log destination; empty means stderr.
  std::string slow_query_log_path;
  // Exposes the virtual `msql_system.*` introspection tables (connections,
  // queries, metrics — docs/OBSERVABILITY.md) to the binder. Off by default
  // so embedded engines pay nothing; msqld turns it on.
  bool enable_system_tables = false;
};

// Per-query mutable execution state: option snapshot, caches, counters. The
// counters feed the benchmark harness (cache hit rates, source scans).
struct ExecState {
  EngineOptions options;

  // Resource governor for this query; armed by Engine::RunSelect. Row
  // loops call guard.Check(), materialization points call
  // guard.ChargeRows(). Parallel measure workers run against forks of this
  // guard (QueryGuard::ForkWorker), merged after the join.
  QueryGuard guard;

  // Set when the bound plan scans an msql_system table: such plans embed a
  // data snapshot the catalog generation does not version, so the
  // statement must stay out of the cross-query shared cache (the engine
  // also suppresses its plan-cache publish).
  bool forbid_shared_cache = false;

  std::unordered_map<std::string, Value> measure_cache;
  std::unordered_map<std::string, Value> subquery_cache;

  // Per-query cache of grouped-strategy dimension indexes, keyed by
  // (source identity, context-shape signature); see measure/grouped.h.
  std::unordered_map<std::string, std::shared_ptr<const GroupedIndex>>
      grouped_index_cache;

  // Returns the engine's measure worker pool, creating it on first use
  // (null/unset => single-threaded evaluation). A provider rather than a
  // raw pool so the threads only ever exist once a query actually has a
  // parallel-eligible grouped build. Worker-side ExecState forks leave it
  // unset: workers must never re-enter the pool they run on.
  std::function<ThreadPool*()> measure_pool_provider;

  // Engine-wide cross-query result cache (may be null: uncached engine or
  // naive strategy). Consulted by the measure evaluator and the subquery
  // memoizer on a local-cache miss; fills are tagged with
  // `catalog_generation`, the catalog data version snapshotted when this
  // query started, so entries computed against concurrently mutated data
  // are rejected by the cache.
  SharedMeasureCache* shared_cache = nullptr;
  uint64_t catalog_generation = 0;

  // Engine-owned circuit breakers for the degradable fault points (null =
  // unguarded, e.g. worker forks and unit tests building ExecState by
  // hand). Consulted before grouped-index builds / shared-cache fills;
  // while open the optimization is skipped and breaker_short_circuits
  // counts the skips (surfaced by EXPLAIN ANALYZE as breaker=open).
  CircuitBreaker* grouped_build_breaker = nullptr;
  CircuitBreaker* cache_fill_breaker = nullptr;

  // Per-query memo of structural plan fingerprints (cross-query cache key
  // components); keyed by node identity, which is stable within one query.
  std::unordered_map<const LogicalPlan*, std::string> plan_fingerprints;

  // Per-operator runtime profile (EXPLAIN ANALYZE). Null — the default —
  // keeps the executor's profiling hook to a single branch per operator.
  obs::PlanProfile* profile = nullptr;

  int depth = 0;

  // Positional parameter values for prepared-statement execution (null =
  // no parameters). `param_sig` is the rendered value tuple; non-empty, it
  // is appended to every *cross-query* shared-cache key so results
  // computed under one parameter binding are never replayed under another
  // (structural fingerprints render `?` placeholders identically).
  const Row* params = nullptr;
  std::string param_sig;

  // How this statement interacted with the engine's prepared-plan cache
  // (0 = not consulted, 1 = miss, 2 = hit); copied into QueryStats.
  int plan_cache_outcome = 0;

  // Instrumentation.
  uint64_t measure_evals = 0;        // measure evaluations requested
  uint64_t measure_cache_hits = 0;
  uint64_t measure_source_scans = 0; // full passes over a measure source
  uint64_t measure_inline_evals = 0; // row-id-only fast path (section 6.4)
  uint64_t measure_grouped_builds = 0;     // dimension-index builds
  uint64_t measure_grouped_probes = 0;     // O(1) per-context index probes
  uint64_t measure_grouped_fallbacks = 0;  // degraded builds (fault inject)
  uint64_t measure_parallel_tasks = 0;     // morsel-parallel worker tasks
  uint64_t subquery_execs = 0;
  uint64_t subquery_cache_hits = 0;
  uint64_t shared_cache_hits = 0;    // cross-query cache hits (this query)
  uint64_t shared_cache_misses = 0;
  uint64_t breaker_short_circuits = 0;  // ops skipped by an open breaker
  uint64_t exec_vectorized_batches = 0;  // column batches run through kernels
  uint64_t exec_row_fallbacks = 0;  // vectorized ops degraded to the row path
};

}  // namespace msql

#endif  // MSQL_EXEC_EXEC_STATE_H_

#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "exec/agg_eval.h"
#include "exec/vector_eval.h"
#include "measure/cse.h"
#include "measure/grouped.h"
#include "runtime/circuit_breaker.h"
#include "runtime/fingerprint.h"
#include "runtime/shared_cache.h"

namespace msql {

namespace {

// Hashable group key (IS NOT DISTINCT FROM equality).
struct KeyHash {
  size_t operator()(const Row& r) const { return HashRow(r, r.size()); }
};
struct KeyEq {
  bool operator()(const Row& a, const Row& b) const {
    return RowsNotDistinct(a, b);
  }
};
using GroupMap = std::unordered_map<Row, std::vector<int64_t>, KeyHash, KeyEq>;

}  // namespace

Result<RelationPtr> Executor::Execute(const LogicalPlan& plan,
                                      const RowStack& outer) {
  MSQL_FAULT_POINT("exec.plan");
  MSQL_RETURN_IF_ERROR(state_->guard.Check());
  if (++state_->depth > state_->options.max_recursion_depth) {
    --state_->depth;
    return RecursionLimitExceeded("plan execution",
                                  state_->options.max_recursion_depth);
  }
  struct DepthGuard {
    ExecState* s;
    ~DepthGuard() { --s->depth; }
  } guard{state_};

  if (state_->profile == nullptr) return Dispatch(plan, outer);
  return DispatchProfiled(plan, outer);
}

// EXPLAIN ANALYZE accounting: wall time and the deltas of the ExecState
// instrumentation counters across this node's execution (inclusive of the
// subtree; the renderer subtracts children). Recorded after Dispatch so the
// map reference cannot be invalidated by recursive insertions.
Result<RelationPtr> Executor::DispatchProfiled(const LogicalPlan& plan,
                                               const RowStack& outer) {
  struct Snapshot {
    uint64_t measure_evals, measure_cache_hits, measure_source_scans,
        measure_inline_evals, measure_grouped_builds, measure_grouped_probes,
        subquery_execs, subquery_cache_hits, shared_cache_hits,
        shared_cache_misses, exec_vectorized_batches, exec_row_fallbacks;
  };
  const Snapshot snap{state_->measure_evals,
                      state_->measure_cache_hits,
                      state_->measure_source_scans,
                      state_->measure_inline_evals,
                      state_->measure_grouped_builds,
                      state_->measure_grouped_probes,
                      state_->subquery_execs,
                      state_->subquery_cache_hits,
                      state_->shared_cache_hits,
                      state_->shared_cache_misses,
                      state_->exec_vectorized_batches,
                      state_->exec_row_fallbacks};
  const auto t0 = std::chrono::steady_clock::now();
  Result<RelationPtr> result = Dispatch(plan, outer);
  const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  obs::OpStats& op = (*state_->profile)[&plan];
  op.invocations += 1;
  op.time_us += us;
  op.measure_evals += state_->measure_evals - snap.measure_evals;
  op.measure_cache_hits += state_->measure_cache_hits - snap.measure_cache_hits;
  op.measure_source_scans +=
      state_->measure_source_scans - snap.measure_source_scans;
  op.measure_inline_evals +=
      state_->measure_inline_evals - snap.measure_inline_evals;
  op.measure_grouped_builds +=
      state_->measure_grouped_builds - snap.measure_grouped_builds;
  op.measure_grouped_probes +=
      state_->measure_grouped_probes - snap.measure_grouped_probes;
  op.subquery_execs += state_->subquery_execs - snap.subquery_execs;
  op.subquery_cache_hits +=
      state_->subquery_cache_hits - snap.subquery_cache_hits;
  op.shared_cache_hits += state_->shared_cache_hits - snap.shared_cache_hits;
  op.shared_cache_misses +=
      state_->shared_cache_misses - snap.shared_cache_misses;
  op.exec_vectorized_batches +=
      state_->exec_vectorized_batches - snap.exec_vectorized_batches;
  op.exec_row_fallbacks +=
      state_->exec_row_fallbacks - snap.exec_row_fallbacks;
  if (result.ok()) op.rows_out += result.value()->rows.size();
  return result;
}

Result<RelationPtr> Executor::Dispatch(const LogicalPlan& plan,
                                       const RowStack& outer) {
  switch (plan.kind) {
    case PlanKind::kScanTable:
      return ExecScan(plan);
    case PlanKind::kValues:
      return ExecValues(plan, outer);
    case PlanKind::kProject:
      return ExecProject(plan, outer);
    case PlanKind::kFilter:
      return ExecFilter(plan, outer);
    case PlanKind::kJoin:
      return ExecJoin(plan, outer);
    case PlanKind::kAggregate:
      return ExecAggregate(plan, outer);
    case PlanKind::kSort:
      return ExecSort(plan, outer);
    case PlanKind::kLimit:
      return ExecLimit(plan, outer);
    case PlanKind::kDistinct:
      return ExecDistinct(plan, outer);
    case PlanKind::kSetOp:
      return ExecSetOp(plan, outer);
    case PlanKind::kWindow:
      return ExecWindow(plan, outer);
  }
  return Status(ErrorCode::kExecution, "unknown plan kind");
}

Status Executor::BuildMeasures(const LogicalPlan& plan,
                               const std::vector<RelationPtr>& children,
                               bool shareable, Relation* out) {
  for (const PlanMeasure& pm : plan.measures) {
    RtMeasure m;
    m.name = pm.name;
    m.value_type = pm.value_type;
    m.rowid_col = pm.rowid_col;
    m.column = pm.column;
    for (const auto& [col, expr] : pm.provenance) m.provenance[col] = expr;
    if (pm.define) {
      if (children.empty()) {
        return Status(ErrorCode::kExecution, "measure definition lacks input");
      }
      m.formula = pm.formula;
      m.source = children[0];
      // The source was just materialized from plan.children[0]; when that
      // happened without correlation frames its contents are a pure
      // function of (catalog generation, plan structure), so the measure
      // can participate in the cross-query cache under a structural key.
      if (shareable && state_->shared_cache != nullptr &&
          !plan.children.empty() && pm.formula != nullptr) {
        const LogicalPlan* src = plan.children[0].get();
        auto [it, inserted] =
            state_->plan_fingerprints.emplace(src, std::string());
        if (inserted) it->second = FingerprintPlan(*src);
        m.fingerprint = std::make_shared<const std::string>(
            StrCat(it->second, "|", FingerprintExpr(*pm.formula)));
      }
    } else {
      if (pm.child_index < 0 ||
          static_cast<size_t>(pm.child_index) >= children.size()) {
        return Status(ErrorCode::kExecution, "bad measure child index");
      }
      const Relation& child = *children[pm.child_index];
      if (pm.child_slot < 0 ||
          static_cast<size_t>(pm.child_slot) >= child.measures.size()) {
        return Status(ErrorCode::kExecution, "bad measure child slot");
      }
      const RtMeasure& cm = child.measures[pm.child_slot];
      m.formula = cm.formula;
      m.source = cm.source;
      m.fingerprint = cm.fingerprint;
    }
    out->measures.push_back(std::move(m));
  }
  return Status::Ok();
}

Result<RelationPtr> Executor::ExecScan(const LogicalPlan& plan) {
  MSQL_FAULT_POINT("catalog.snapshot");
  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  // Adopt the COW snapshot in O(1): concurrent INSERTs republish the row
  // vector, never mutate it, so sharing the segment is safe and a scan of R
  // rows no longer copies them.
  Table::RowsSnapshot snap = plan.table->snapshot();
  rel->rows.AdoptShared(snap);
  MSQL_RETURN_IF_ERROR(
      state_->guard.ChargeRows(rel->rows.size(), rel->schema.size()));
  if (VectorizedGate(state_) == VectorGate::kOk) {
    // Table-cached columnar image, keyed by snapshot identity; null (row
    // path) when a column could not be columnarized.
    rel->columns = plan.table->ColumnsFor(snap);
  }
  return RelationPtr(rel);
}

Result<RelationPtr> Executor::ExecValues(const LogicalPlan& plan,
                                         const RowStack& outer) {
  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  Evaluator ev(state_);
  RowStack stack;
  stack.push_back(Frame{});
  for (const Frame& f : outer) stack.push_back(f);
  for (const auto& row_exprs : plan.values_rows) {
    MSQL_RETURN_IF_ERROR(state_->guard.Check());
    Row row;
    row.reserve(row_exprs.size());
    for (const auto& e : row_exprs) {
      MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*e, stack));
      row.push_back(std::move(v));
    }
    MSQL_RETURN_IF_ERROR(state_->guard.ChargeRows(1, row.size()));
    rel->rows.push_back(std::move(row));
  }
  return RelationPtr(rel);
}

namespace {

// Vectorized projection: every output expression has a kernel. Produces a
// columnar relation (rows stay lazy) and charges exactly what the row path
// charges (n x ChargeRows(1, width) == ChargeRows(n, width) in bytes).
// Returns false — with nothing charged — when any expression lacks a kernel.
Result<bool> TryVectorProject(const LogicalPlan& plan, const Relation& child,
                              ExecState* state, Relation* rel) {
  if (child.columns == nullptr) return false;
  const int64_t n = static_cast<int64_t>(child.rows.size());
  auto arena = std::make_shared<Arena>();
  auto out = std::make_shared<ColumnarRelation>();
  out->num_rows = n;
  out->cols.reserve(plan.exprs.size());
  for (const auto& e : plan.exprs) {
    MSQL_ASSIGN_OR_RETURN(ColumnPtr col, EvalVector(*e, child, arena, state));
    if (col == nullptr) return false;
    out->cols.push_back(std::move(col));
  }
  MSQL_RETURN_IF_ERROR(state->guard.ChargeRows(n, plan.exprs.size()));
  out->batches = MakeBatches(n);
  rel->columns = out;
  rel->rows.AdoptLazy(std::move(out));
  state->exec_vectorized_batches += static_cast<uint64_t>(NumBatches(n));
  return true;
}

// Vectorized filter: the predicate has a kernel and every child column is
// columnar; kept rows are gathered by selection vector. Charges what the row
// path charges: one row of the child width per kept row.
Result<bool> TryVectorFilter(const LogicalPlan& plan, const Relation& child,
                             ExecState* state, Relation* rel) {
  if (child.columns == nullptr || !child.columns->Complete()) return false;
  const int64_t n = static_cast<int64_t>(child.rows.size());
  auto arena = std::make_shared<Arena>();
  MSQL_ASSIGN_OR_RETURN(ColumnPtr pred,
                        EvalVector(*plan.predicate, child, arena, state));
  if (pred == nullptr) return false;
  if (pred->kind != TypeKind::kBool && pred->kind != TypeKind::kNull) {
    return false;
  }
  std::vector<int64_t> sel;
  for (int64_t i = 0; i < n; ++i) {
    if (pred->IsValid(i) && pred->ints[i] != 0) sel.push_back(i);
  }
  MSQL_RETURN_IF_ERROR(
      state->guard.ChargeRows(sel.size(), child.schema.size()));
  auto out = std::make_shared<ColumnarRelation>();
  out->num_rows = static_cast<int64_t>(sel.size());
  out->cols.reserve(child.columns->cols.size());
  for (const ColumnPtr& c : child.columns->cols) {
    MSQL_ASSIGN_OR_RETURN(ColumnPtr g, GatherColumn(*c, sel, arena));
    out->cols.push_back(std::move(g));
  }
  out->batches = MakeBatches(out->num_rows);
  rel->columns = out;
  rel->rows.AdoptLazy(std::move(out));
  state->exec_vectorized_batches += static_cast<uint64_t>(NumBatches(n));
  return true;
}

}  // namespace

Result<RelationPtr> Executor::ExecProject(const LogicalPlan& plan,
                                          const RowStack& outer) {
  MSQL_ASSIGN_OR_RETURN(RelationPtr child, Execute(*plan.children[0], outer));
  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  if (outer.empty() && VectorizedGate(state_) == VectorGate::kOk) {
    MSQL_ASSIGN_OR_RETURN(bool done,
                          TryVectorProject(plan, *child, state_, rel.get()));
    if (done) {
      MSQL_RETURN_IF_ERROR(
          BuildMeasures(plan, {child}, outer.empty(), rel.get()));
      return RelationPtr(rel);
    }
    ++state_->exec_row_fallbacks;
  }
  rel->rows.reserve(child->rows.size());
  Evaluator ev(state_);
  RowStack stack;
  stack.push_back(Frame{});
  for (const Frame& f : outer) stack.push_back(f);
  for (int64_t i = 0; i < static_cast<int64_t>(child->rows.size()); ++i) {
    MSQL_RETURN_IF_ERROR(state_->guard.Check());
    stack[0] = Frame{&child->rows[i], i, child.get()};
    Row row;
    row.reserve(plan.exprs.size());
    for (const auto& e : plan.exprs) {
      MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*e, stack));
      row.push_back(std::move(v));
    }
    MSQL_RETURN_IF_ERROR(state_->guard.ChargeRows(1, row.size()));
    rel->rows.push_back(std::move(row));
  }
  MSQL_RETURN_IF_ERROR(BuildMeasures(plan, {child}, outer.empty(), rel.get()));
  return RelationPtr(rel);
}

Result<RelationPtr> Executor::ExecFilter(const LogicalPlan& plan,
                                         const RowStack& outer) {
  MSQL_ASSIGN_OR_RETURN(RelationPtr child, Execute(*plan.children[0], outer));
  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  if (outer.empty() && VectorizedGate(state_) == VectorGate::kOk) {
    MSQL_ASSIGN_OR_RETURN(bool done,
                          TryVectorFilter(plan, *child, state_, rel.get()));
    if (done) {
      MSQL_RETURN_IF_ERROR(
          BuildMeasures(plan, {child}, outer.empty(), rel.get()));
      return RelationPtr(rel);
    }
    ++state_->exec_row_fallbacks;
  }
  Evaluator ev(state_);
  RowStack stack;
  stack.push_back(Frame{});
  for (const Frame& f : outer) stack.push_back(f);
  for (int64_t i = 0; i < static_cast<int64_t>(child->rows.size()); ++i) {
    MSQL_RETURN_IF_ERROR(state_->guard.Check());
    stack[0] = Frame{&child->rows[i], i, child.get()};
    MSQL_ASSIGN_OR_RETURN(bool keep, ev.EvalPredicate(*plan.predicate, stack));
    if (keep) {
      MSQL_RETURN_IF_ERROR(
          state_->guard.ChargeRows(1, child->rows[i].size()));
      rel->rows.push_back(child->rows[i]);
    }
  }
  MSQL_RETURN_IF_ERROR(BuildMeasures(plan, {child}, outer.empty(), rel.get()));
  return RelationPtr(rel);
}

namespace {

// Extracts hash-join keys from a conjunction of equalities where one side
// references only left columns and the other only right columns (in the
// combined schema layout: left visible [0, lv), right visible [lv, lv+rv),
// left hidden [lv+rv, lv+rv+lh), right hidden after).
struct JoinKeys {
  std::vector<const BoundExpr*> left;   // evaluated against combined-left row
  std::vector<const BoundExpr*> right;
  std::vector<const BoundExpr*> residual;
};

enum class Side { kLeft, kRight, kBoth, kNeither };

Side SideOf(const BoundExpr& e, size_t lv, size_t rv, size_t lh) {
  Side side = Side::kNeither;
  bool poisoned = false;
  VisitNodes(e, [&](const BoundExpr& n) {
    if (n.kind == BoundExprKind::kSubquery ||
        n.kind == BoundExprKind::kInSubquery ||
        n.kind == BoundExprKind::kExists ||
        n.kind == BoundExprKind::kMeasureEval) {
      poisoned = true;
    }
    if (n.kind != BoundExprKind::kColumnRef || n.depth != 0) return;
    size_t c = static_cast<size_t>(n.column);
    Side s = (c < lv || (c >= lv + rv && c < lv + rv + lh)) ? Side::kLeft
                                                            : Side::kRight;
    if (side == Side::kNeither) {
      side = s;
    } else if (side != s) {
      side = Side::kBoth;
    }
  });
  if (poisoned) return Side::kBoth;
  return side;
}

void CollectConjuncts(const BoundExpr& e, std::vector<const BoundExpr*>* out) {
  if (e.kind == BoundExprKind::kFunc && e.func == FunctionId::kOpAnd) {
    CollectConjuncts(*e.args[0], out);
    CollectConjuncts(*e.args[1], out);
    return;
  }
  out->push_back(&e);
}

JoinKeys AnalyzeJoin(const BoundExpr* cond, size_t lv, size_t rv, size_t lh) {
  JoinKeys keys;
  if (cond == nullptr) return keys;
  std::vector<const BoundExpr*> conjuncts;
  CollectConjuncts(*cond, &conjuncts);
  for (const BoundExpr* c : conjuncts) {
    if (c->kind == BoundExprKind::kFunc && c->func == FunctionId::kOpEq &&
        c->args.size() == 2) {
      Side s0 = SideOf(*c->args[0], lv, rv, lh);
      Side s1 = SideOf(*c->args[1], lv, rv, lh);
      if ((s0 == Side::kLeft || s0 == Side::kNeither) &&
          (s1 == Side::kRight || s1 == Side::kNeither) &&
          !(s0 == Side::kNeither && s1 == Side::kNeither)) {
        keys.left.push_back(c->args[0].get());
        keys.right.push_back(c->args[1].get());
        continue;
      }
      if (s0 == Side::kRight && (s1 == Side::kLeft || s1 == Side::kNeither)) {
        keys.left.push_back(c->args[1].get());
        keys.right.push_back(c->args[0].get());
        continue;
      }
    }
    keys.residual.push_back(c);
  }
  return keys;
}

}  // namespace

Result<RelationPtr> Executor::ExecJoin(const LogicalPlan& plan,
                                       const RowStack& outer) {
  MSQL_ASSIGN_OR_RETURN(RelationPtr left, Execute(*plan.children[0], outer));
  MSQL_ASSIGN_OR_RETURN(RelationPtr right, Execute(*plan.children[1], outer));
  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  Evaluator ev(state_);

  const size_t lv = left->schema.num_visible();
  const size_t rv = right->schema.num_visible();
  const size_t lh = left->schema.size() - lv;
  const size_t rh = right->schema.size() - rv;

  auto combine = [&](const Row& l, const Row& r) {
    Row row;
    row.reserve(lv + rv + lh + rh);
    for (size_t i = 0; i < lv; ++i) row.push_back(l[i]);
    for (size_t i = 0; i < rv; ++i) row.push_back(r[i]);
    for (size_t i = 0; i < lh; ++i) row.push_back(l[lv + i]);
    for (size_t i = 0; i < rh; ++i) row.push_back(r[rv + i]);
    return row;
  };
  Row null_right(right->schema.size(), Value::Null());
  Row null_left(left->schema.size(), Value::Null());

  RowStack stack;
  stack.push_back(Frame{});
  for (const Frame& f : outer) stack.push_back(f);

  const bool keep_left = plan.join_type == JoinType::kLeft ||
                         plan.join_type == JoinType::kFull;
  const bool keep_right = plan.join_type == JoinType::kRight ||
                          plan.join_type == JoinType::kFull;
  std::vector<char> right_matched(keep_right ? right->rows.size() : 0, 0);
  JoinKeys keys = AnalyzeJoin(plan.join_condition.get(), lv, rv, lh);

  auto eval_residual = [&](const Row& combined) -> Result<bool> {
    stack[0] = Frame{&combined, -1, nullptr};
    if (keys.left.empty() && plan.join_condition != nullptr) {
      return ev.EvalPredicate(*plan.join_condition, stack);
    }
    for (const BoundExpr* r : keys.residual) {
      MSQL_ASSIGN_OR_RETURN(bool ok, ev.EvalPredicate(*r, stack));
      if (!ok) return false;
    }
    return true;
  };

  if (!keys.left.empty()) {
    // Hash join: build on the right side.
    GroupMap table;
    for (int64_t j = 0; j < static_cast<int64_t>(right->rows.size()); ++j) {
      MSQL_RETURN_IF_ERROR(state_->guard.Check());
      Row combined = combine(null_left, right->rows[j]);
      stack[0] = Frame{&combined, -1, nullptr};
      Row key;
      key.reserve(keys.right.size());
      bool has_null = false;
      for (const BoundExpr* k : keys.right) {
        MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*k, stack));
        if (v.is_null()) has_null = true;
        key.push_back(std::move(v));
      }
      if (has_null) continue;  // `=` never matches NULL
      table[std::move(key)].push_back(j);
    }
    for (const Row& l : left->rows) {
      MSQL_RETURN_IF_ERROR(state_->guard.Check());
      Row probe_combined = combine(l, null_right);
      stack[0] = Frame{&probe_combined, -1, nullptr};
      Row key;
      key.reserve(keys.left.size());
      bool has_null = false;
      for (const BoundExpr* k : keys.left) {
        MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*k, stack));
        if (v.is_null()) has_null = true;
        key.push_back(std::move(v));
      }
      bool matched = false;
      if (!has_null) {
        auto it = table.find(key);
        if (it != table.end()) {
          for (int64_t j : it->second) {
            MSQL_RETURN_IF_ERROR(state_->guard.Check());
            Row combined = combine(l, right->rows[j]);
            MSQL_ASSIGN_OR_RETURN(bool ok, eval_residual(combined));
            if (ok) {
              matched = true;
              if (keep_right) right_matched[j] = 1;
              MSQL_RETURN_IF_ERROR(
                  state_->guard.ChargeRows(1, combined.size()));
              rel->rows.push_back(std::move(combined));
            }
          }
        }
      }
      if (!matched && keep_left) {
        MSQL_RETURN_IF_ERROR(
            state_->guard.ChargeRows(1, rel->schema.size()));
        rel->rows.push_back(combine(l, null_right));
      }
    }
  } else {
    // Nested loop.
    for (const Row& l : left->rows) {
      bool matched = false;
      for (size_t j = 0; j < right->rows.size(); ++j) {
        MSQL_RETURN_IF_ERROR(state_->guard.Check());
        Row combined = combine(l, right->rows[j]);
        bool ok = true;
        if (plan.join_condition != nullptr) {
          stack[0] = Frame{&combined, -1, nullptr};
          MSQL_ASSIGN_OR_RETURN(ok,
                                ev.EvalPredicate(*plan.join_condition, stack));
        }
        if (ok) {
          matched = true;
          if (keep_right) right_matched[j] = 1;
          MSQL_RETURN_IF_ERROR(
              state_->guard.ChargeRows(1, combined.size()));
          rel->rows.push_back(std::move(combined));
        }
      }
      if (!matched && keep_left) {
        MSQL_RETURN_IF_ERROR(
            state_->guard.ChargeRows(1, rel->schema.size()));
        rel->rows.push_back(combine(l, null_right));
      }
    }
  }
  // RIGHT / FULL OUTER: emit right rows no left row matched.
  if (keep_right) {
    for (size_t j = 0; j < right->rows.size(); ++j) {
      MSQL_RETURN_IF_ERROR(state_->guard.Check());
      if (!right_matched[j]) {
        MSQL_RETURN_IF_ERROR(
            state_->guard.ChargeRows(1, rel->schema.size()));
        rel->rows.push_back(combine(null_left, right->rows[j]));
      }
    }
  }
  MSQL_RETURN_IF_ERROR(BuildMeasures(plan, {left, right}, outer.empty(), rel.get()));
  return RelationPtr(rel);
}

Result<RelationPtr> Executor::ExecAggregate(const LogicalPlan& plan,
                                            const RowStack& outer) {
  MSQL_ASSIGN_OR_RETURN(RelationPtr child, Execute(*plan.children[0], outer));
  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  Evaluator ev(state_);

  const size_t num_keys = plan.group_exprs.size();
  const int64_t n = static_cast<int64_t>(child->rows.size());

  // Evaluate all group expressions once per child row — as whole columns
  // when every group expression has a kernel, row-at-a-time otherwise.
  std::vector<ColumnPtr> key_cols;
  std::vector<Row> key_values;
  if (num_keys > 0 && outer.empty() &&
      VectorizedGate(state_) == VectorGate::kOk) {
    auto arena = std::make_shared<Arena>();
    for (const auto& g : plan.group_exprs) {
      MSQL_ASSIGN_OR_RETURN(ColumnPtr col,
                            EvalVector(*g, *child, arena, state_));
      if (col == nullptr) {
        key_cols.clear();
        break;
      }
      key_cols.push_back(std::move(col));
    }
    if (key_cols.size() == num_keys) {
      state_->exec_vectorized_batches += static_cast<uint64_t>(NumBatches(n));
    } else {
      ++state_->exec_row_fallbacks;
    }
  }
  const bool keys_columnar = key_cols.size() == num_keys && num_keys > 0;
  if (!keys_columnar && num_keys > 0) {
    key_values.resize(static_cast<size_t>(n));
    RowStack stack;
    stack.push_back(Frame{});
    for (const Frame& f : outer) stack.push_back(f);
    for (int64_t i = 0; i < n; ++i) {
      MSQL_RETURN_IF_ERROR(state_->guard.Check());
      stack[0] = Frame{&child->rows[i], i, child.get()};
      Row& kv = key_values[i];
      kv.reserve(num_keys);
      for (const auto& g : plan.group_exprs) {
        MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*g, stack));
        kv.push_back(std::move(v));
      }
    }
  }
  auto key_at = [&](int64_t i, int k) {
    return keys_columnar ? key_cols[static_cast<size_t>(k)]->At(i)
                         : key_values[static_cast<size_t>(i)][k];
  };

  for (const std::vector<int>& set : plan.grouping_sets) {
    // Group rows for this grouping set: parallel arrays in first-seen order
    // (identical to the row path's GroupMap + group_order, without the
    // repeated map lookups downstream).
    std::vector<Row> group_keys;
    std::vector<std::vector<int64_t>> group_rows;

    bool grouped = false;
    if (keys_columnar && set.size() == 1) {
      // Single-key fast path over comparable codes: for BOOL/INT64/DATE the
      // payload IS the value, and for a dedup'd dictionary the code equals
      // the string. Code equality then coincides with IS NOT DISTINCT FROM
      // (same-kind payload equality), so grouping hashes an int64 instead of
      // a Value. DOUBLE is excluded: -0.0 == 0.0 yet differs bitwise.
      const ColumnVector& c = *key_cols[static_cast<size_t>(set[0])];
      if (c.kind == TypeKind::kBool || c.kind == TypeKind::kInt64 ||
          c.kind == TypeKind::kDate || c.kind == TypeKind::kNull ||
          (c.kind == TypeKind::kString && c.dict_unique)) {
        grouped = true;
        std::unordered_map<int64_t, size_t> by_code;
        size_t null_group = SIZE_MAX;
        for (int64_t i = 0; i < n; ++i) {
          if ((i & (kRowsPerBatch - 1)) == 0) {
            MSQL_RETURN_IF_ERROR(state_->guard.Check());
          }
          size_t gi;
          if (!c.IsValid(i)) {
            if (null_group == SIZE_MAX) {
              null_group = group_keys.size();
              group_keys.push_back(Row{Value::Null()});
              group_rows.emplace_back();
            }
            gi = null_group;
          } else {
            auto [it, inserted] = by_code.emplace(c.ints[i],
                                                  group_keys.size());
            if (inserted) {
              group_keys.push_back(Row{c.At(i)});
              group_rows.emplace_back();
            }
            gi = it->second;
          }
          group_rows[gi].push_back(i);
        }
      }
    }
    if (!grouped) {
      std::unordered_map<Row, size_t, KeyHash, KeyEq> index;
      for (int64_t i = 0; i < n; ++i) {
        MSQL_RETURN_IF_ERROR(state_->guard.Check());
        Row key;
        key.reserve(set.size());
        for (int k : set) key.push_back(key_at(i, k));
        auto [it, inserted] = index.emplace(std::move(key),
                                            group_keys.size());
        if (inserted) {
          group_keys.push_back(it->first);
          group_rows.emplace_back();
        }
        group_rows[it->second].push_back(i);
      }
    }
    // The empty grouping set aggregates over all rows, producing one row
    // even for empty input (SQL scalar-aggregation semantics).
    if (set.empty() && group_keys.empty()) {
      group_keys.push_back(Row{});
      group_rows.emplace_back();
    }

    int64_t grouping_id = 0;
    for (size_t k = 0; k < num_keys; ++k) {
      if (std::find(set.begin(), set.end(), static_cast<int>(k)) ==
          set.end()) {
        grouping_id |= (int64_t{1} << k);
      }
    }

    // Key columns and aggregate calls, one output row per group.
    std::vector<Row> out_rows;
    out_rows.reserve(group_keys.size());
    for (size_t g = 0; g < group_keys.size(); ++g) {
      MSQL_RETURN_IF_ERROR(state_->guard.Check());
      const Row& key = group_keys[g];
      const std::vector<int64_t>& rows = group_rows[g];
      Row out;
      out.reserve(plan.schema.size());
      // Group key columns (NULL when aggregated away in this set).
      for (size_t k = 0; k < num_keys; ++k) {
        auto pos = std::find(set.begin(), set.end(), static_cast<int>(k));
        out.push_back(pos == set.end()
                          ? Value::Null()
                          : key[static_cast<size_t>(pos - set.begin())]);
      }
      // Aggregate calls.
      for (const AggCallDef& call : plan.agg_calls) {
        MSQL_ASSIGN_OR_RETURN(
            Value v, EvalAggCall(call.agg, call.args, call.distinct,
                                 call.filter.get(), *child, rows, outer,
                                 state_));
        out.push_back(std::move(v));
      }
      out_rows.push_back(std::move(out));
    }

    // Measure evaluations (context-sensitive expressions), batched one
    // column at a time: all groups of the set share the context *shape*
    // (same dimension expressions, different pinned key values), which is
    // exactly what the grouped strategy's batch evaluator exploits — one
    // index build, G probes, morsel-parallel (measure/grouped.h).
    for (const MeasureEvalDef& me : plan.measure_evals) {
      if (me.measure_slot < 0 ||
          static_cast<size_t>(me.measure_slot) >= child->measures.size()) {
        return Status(ErrorCode::kExecution, "bad measure slot");
      }
      const RtMeasure& m = child->measures[me.measure_slot];

      // VISIBLE-only call sites (AGGREGATE, the common case): the
      // visible row-id set already implies the group-key terms, since
      // every reachable source row satisfies its own group's keys via
      // provenance. Skipping them enables the row-id-only fast path.
      const bool visible_only =
          state_->options.inline_visible_contexts &&
          me.modifiers.size() == 1 &&
          me.modifiers[0].kind == AtModifier::Kind::kVisible;

      std::vector<EvalContext> contexts;
      contexts.reserve(group_keys.size());
      for (size_t g = 0; g < group_keys.size(); ++g) {
        MSQL_RETURN_IF_ERROR(state_->guard.Check());
        const Row& key = group_keys[g];
        const std::vector<int64_t>& rows = group_rows[g];

        // Default group context: one dimension term per group key of this
        // grouping set that has provenance onto the measure's source.
        EvalContext ctx;
        RowStack call_stack;
        // Representative row: group keys may be closed over by modifiers.
        // Only needed when dimension terms are built — the VISIBLE-only
        // path never dereferences it, and touching child->rows here would
        // force a lazy columnar child to materialize its row vector.
        Frame rep;
        if (!visible_only && !rows.empty()) {
          rep = Frame{&child->rows[rows[0]], rows[0], child.get()};
        }
        call_stack.push_back(rep);
        for (const Frame& f : outer) call_stack.push_back(f);

        if (!visible_only) {
          for (size_t si = 0; si < set.size(); ++si) {
            int k = set[si];
            auto translated = TranslateToSource(*plan.group_exprs[k], m,
                                                /*close_over=*/
                                                RowStack(call_stack.begin() + 1,
                                                         call_stack.end()),
                                                nullptr, state_);
            if (!translated.ok()) continue;  // key is not a dimension of m
            std::shared_ptr<const BoundExpr> src(
                std::move(translated.value()));
            ctx.SetDim(src->ToString(), src, key[si]);
          }
        }

        // VISIBLE: the distinct source rows reachable from this group.
        std::shared_ptr<const std::vector<int64_t>> visible;
        if (m.rowid_col >= 0) {
          MSQL_ASSIGN_OR_RETURN(visible, CollectRowIds(m, *child, rows));
        }
        MSQL_RETURN_IF_ERROR(ApplyModifiers(m, me.modifiers, call_stack,
                                            visible, state_, &ctx));
        contexts.push_back(std::move(ctx));
      }
      MSQL_ASSIGN_OR_RETURN(std::vector<Value> vals,
                            EvaluateMeasureBatch(m, contexts, state_));
      for (size_t gi = 0; gi < out_rows.size(); ++gi) {
        out_rows[gi].push_back(std::move(vals[gi]));
      }
    }

    for (Row& out : out_rows) {
      // Hidden grouping id.
      out.push_back(Value::Int(grouping_id));
      MSQL_RETURN_IF_ERROR(state_->guard.ChargeRows(1, out.size()));
      rel->rows.push_back(std::move(out));
    }
  }
  return RelationPtr(rel);
}

Result<RelationPtr> Executor::ExecSort(const LogicalPlan& plan,
                                       const RowStack& outer) {
  MSQL_ASSIGN_OR_RETURN(RelationPtr child, Execute(*plan.children[0], outer));
  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  MSQL_RETURN_IF_ERROR(
      state_->guard.ChargeRows(child->rows.size(), plan.schema.size()));
  const std::vector<Row>& in = child->rows.vec();

  // Evaluate sort keys per row.
  Evaluator ev(state_);
  RowStack stack;
  stack.push_back(Frame{});
  for (const Frame& f : outer) stack.push_back(f);
  std::vector<Row> keys(in.size());
  std::vector<size_t> order(in.size());
  for (int64_t i = 0; i < static_cast<int64_t>(in.size()); ++i) {
    MSQL_RETURN_IF_ERROR(state_->guard.Check());
    order[i] = i;
    stack[0] = Frame{&in[i], i, child.get()};
    for (const SortKeyDef& k : plan.sort_keys) {
      MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*k.expr, stack));
      keys[i].push_back(std::move(v));
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < plan.sort_keys.size(); ++k) {
      const Value& va = keys[a][k];
      const Value& vb = keys[b][k];
      const SortKeyDef& def = plan.sort_keys[k];
      if (va.is_null() != vb.is_null()) {
        return va.is_null() ? def.nulls_first : !def.nulls_first;
      }
      int c = Value::Compare(va, vb);
      if (c != 0) return def.desc ? c > 0 : c < 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(in.size());
  for (size_t i : order) sorted.push_back(in[i]);
  rel->rows = std::move(sorted);
  MSQL_RETURN_IF_ERROR(BuildMeasures(plan, {child}, outer.empty(), rel.get()));
  return RelationPtr(rel);
}

Result<RelationPtr> Executor::ExecLimit(const LogicalPlan& plan,
                                        const RowStack& outer) {
  MSQL_ASSIGN_OR_RETURN(RelationPtr child, Execute(*plan.children[0], outer));
  Evaluator ev(state_);
  RowStack stack;
  stack.push_back(Frame{});
  for (const Frame& f : outer) stack.push_back(f);
  int64_t limit = -1, offset = 0;
  if (plan.limit_expr) {
    MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*plan.limit_expr, stack));
    if (!v.is_null()) {
      MSQL_ASSIGN_OR_RETURN(Value iv, v.CastTo(TypeKind::kInt64));
      limit = iv.int_val();
    }
  }
  if (plan.offset_expr) {
    MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*plan.offset_expr, stack));
    if (!v.is_null()) {
      MSQL_ASSIGN_OR_RETURN(Value iv, v.CastTo(TypeKind::kInt64));
      offset = iv.int_val();
    }
  }
  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  for (int64_t i = offset; i < static_cast<int64_t>(child->rows.size()); ++i) {
    if (limit >= 0 && static_cast<int64_t>(rel->rows.size()) >= limit) break;
    MSQL_RETURN_IF_ERROR(state_->guard.Check());
    MSQL_RETURN_IF_ERROR(
        state_->guard.ChargeRows(1, child->rows[i].size()));
    rel->rows.push_back(child->rows[i]);
  }
  MSQL_RETURN_IF_ERROR(BuildMeasures(plan, {child}, outer.empty(), rel.get()));
  return RelationPtr(rel);
}

Result<RelationPtr> Executor::ExecDistinct(const LogicalPlan& plan,
                                           const RowStack& outer) {
  MSQL_ASSIGN_OR_RETURN(RelationPtr child, Execute(*plan.children[0], outer));
  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  const size_t width = plan.schema.size();  // visible only
  GroupMap seen;
  for (const Row& r : child->rows) {
    MSQL_RETURN_IF_ERROR(state_->guard.Check());
    Row key(r.begin(), r.begin() + width);
    auto [it, inserted] = seen.emplace(std::move(key), std::vector<int64_t>{});
    if (inserted) {
      MSQL_RETURN_IF_ERROR(state_->guard.ChargeRows(1, width));
      rel->rows.push_back(Row(r.begin(), r.begin() + width));
    }
    (void)it;
  }
  return RelationPtr(rel);
}

Result<RelationPtr> Executor::ExecSetOp(const LogicalPlan& plan,
                                        const RowStack& outer) {
  MSQL_ASSIGN_OR_RETURN(RelationPtr left, Execute(*plan.children[0], outer));
  MSQL_ASSIGN_OR_RETURN(RelationPtr right, Execute(*plan.children[1], outer));
  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  const size_t width = plan.schema.size();
  auto truncate = [&](const Row& r) {
    return Row(r.begin(), r.begin() + std::min(width, r.size()));
  };
  switch (plan.set_op) {
    case SetOpKind::kUnionAll:
      MSQL_RETURN_IF_ERROR(state_->guard.ChargeRows(
          left->rows.size() + right->rows.size(), width));
      for (const Row& r : left->rows) rel->rows.push_back(truncate(r));
      for (const Row& r : right->rows) rel->rows.push_back(truncate(r));
      break;
    case SetOpKind::kUnion: {
      GroupMap seen;
      for (const auto* side : {&left->rows, &right->rows}) {
        for (const Row& r : *side) {
          MSQL_RETURN_IF_ERROR(state_->guard.Check());
          Row key = truncate(r);
          auto [it, inserted] = seen.emplace(key, std::vector<int64_t>{});
          (void)it;
          if (inserted) {
            MSQL_RETURN_IF_ERROR(state_->guard.ChargeRows(1, width));
            rel->rows.push_back(std::move(key));
          }
        }
      }
      break;
    }
    case SetOpKind::kExcept: {
      GroupMap right_set;
      for (const Row& r : right->rows) {
        MSQL_RETURN_IF_ERROR(state_->guard.Check());
        right_set.emplace(truncate(r), std::vector<int64_t>{});
      }
      GroupMap emitted;
      for (const Row& r : left->rows) {
        MSQL_RETURN_IF_ERROR(state_->guard.Check());
        Row key = truncate(r);
        if (right_set.count(key)) continue;
        auto [it, inserted] = emitted.emplace(key, std::vector<int64_t>{});
        (void)it;
        if (inserted) {
          MSQL_RETURN_IF_ERROR(state_->guard.ChargeRows(1, width));
          rel->rows.push_back(std::move(key));
        }
      }
      break;
    }
    case SetOpKind::kIntersect: {
      GroupMap right_set;
      for (const Row& r : right->rows) {
        MSQL_RETURN_IF_ERROR(state_->guard.Check());
        right_set.emplace(truncate(r), std::vector<int64_t>{});
      }
      GroupMap emitted;
      for (const Row& r : left->rows) {
        MSQL_RETURN_IF_ERROR(state_->guard.Check());
        Row key = truncate(r);
        if (!right_set.count(key)) continue;
        auto [it, inserted] = emitted.emplace(key, std::vector<int64_t>{});
        (void)it;
        if (inserted) {
          MSQL_RETURN_IF_ERROR(state_->guard.ChargeRows(1, width));
          rel->rows.push_back(std::move(key));
        }
      }
      break;
    }
    case SetOpKind::kNone:
      return Status(ErrorCode::kExecution, "SetOp node without operator");
  }
  return RelationPtr(rel);
}

Result<RelationPtr> Executor::ExecWindow(const LogicalPlan& plan,
                                         const RowStack& outer) {
  MSQL_ASSIGN_OR_RETURN(RelationPtr child, Execute(*plan.children[0], outer));
  const size_t cv = child->schema.num_visible();
  const size_t ch = child->schema.size() - cv;
  const size_t n = child->rows.size();
  const size_t num_windows = plan.windows.size();

  Evaluator ev(state_);
  RowStack stack;
  stack.push_back(Frame{});
  for (const Frame& f : outer) stack.push_back(f);

  // Window results per row.
  std::vector<std::vector<Value>> results(n,
                                          std::vector<Value>(num_windows));

  for (size_t w = 0; w < num_windows; ++w) {
    const WindowDef& def = plan.windows[w];
    // Partition rows.
    GroupMap partitions;
    std::vector<Row> order_seen;
    for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
      MSQL_RETURN_IF_ERROR(state_->guard.Check());
      stack[0] = Frame{&child->rows[i], i, child.get()};
      Row key;
      key.reserve(def.partition_by.size());
      for (const auto& p : def.partition_by) {
        MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*p, stack));
        key.push_back(std::move(v));
      }
      partitions[std::move(key)].push_back(i);
    }
    for (auto& [key, rows] : partitions) {
      if (def.order_by.empty()) {
        if (def.agg == AggId::kRowNumber || def.agg == AggId::kRank) {
          return Status(ErrorCode::kExecution,
                        StrCat(AggIdName(def.agg),
                               " requires ORDER BY in its OVER clause"));
        }
        MSQL_ASSIGN_OR_RETURN(
            Value v, EvalAggCall(def.agg, def.args, /*distinct=*/false,
                                 /*filter=*/nullptr, *child, rows, outer,
                                 state_));
        for (int64_t i : rows) results[i][w] = v;
        continue;
      }
      // Sort the partition by the ORDER BY keys.
      std::vector<Row> okeys(rows.size());
      for (size_t r = 0; r < rows.size(); ++r) {
        MSQL_RETURN_IF_ERROR(state_->guard.Check());
        stack[0] = Frame{&child->rows[rows[r]], rows[r], child.get()};
        for (const auto& [e, desc] : def.order_by) {
          MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*e, stack));
          okeys[r].push_back(std::move(v));
        }
      }
      std::vector<size_t> order(rows.size());
      for (size_t r = 0; r < rows.size(); ++r) order[r] = r;
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < def.order_by.size(); ++k) {
          int c = Value::Compare(okeys[a][k], okeys[b][k]);
          if (c != 0) return def.order_by[k].second ? c > 0 : c < 0;
        }
        return false;
      });
      // Walk peer groups; the frame is the running prefix including peers.
      AggAccumulator acc(def.agg);
      int64_t row_number = 0;
      size_t idx = 0;
      while (idx < order.size()) {
        size_t peer_end = idx + 1;
        while (peer_end < order.size() &&
               RowsNotDistinct(okeys[order[peer_end]], okeys[order[idx]])) {
          ++peer_end;
        }
        int64_t rank = static_cast<int64_t>(idx) + 1;
        for (size_t r = idx; r < peer_end; ++r) {
          int64_t child_row = rows[order[r]];
          ++row_number;
          if (def.agg == AggId::kRowNumber) {
            results[child_row][w] = Value::Int(row_number);
            continue;
          }
          if (def.agg == AggId::kRank) {
            results[child_row][w] = Value::Int(rank);
            continue;
          }
          // Accumulate this row into the running aggregate.
          stack[0] = Frame{&child->rows[child_row], child_row, child.get()};
          std::vector<Value> argv;
          argv.reserve(def.args.size());
          for (const auto& a : def.args) {
            MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*a, stack));
            argv.push_back(std::move(v));
          }
          MSQL_RETURN_IF_ERROR(acc.Accumulate(argv));
        }
        if (def.agg != AggId::kRowNumber && def.agg != AggId::kRank) {
          Value v = acc.Finish();
          for (size_t r = idx; r < peer_end; ++r) {
            results[rows[order[r]]][w] = v;
          }
        }
        idx = peer_end;
      }
    }
  }

  auto rel = std::make_shared<Relation>();
  rel->schema = plan.schema;
  rel->rows.reserve(n);
  MSQL_RETURN_IF_ERROR(
      state_->guard.ChargeRows(n, cv + num_windows + ch));
  for (size_t i = 0; i < n; ++i) {
    MSQL_RETURN_IF_ERROR(state_->guard.Check());
    Row row;
    row.reserve(cv + num_windows + ch);
    const Row& src = child->rows[i];
    for (size_t c = 0; c < cv; ++c) row.push_back(src[c]);
    for (size_t w = 0; w < num_windows; ++w) {
      row.push_back(results[i][w]);
    }
    for (size_t c = 0; c < ch; ++c) row.push_back(src[cv + c]);
    rel->rows.push_back(std::move(row));
  }
  MSQL_RETURN_IF_ERROR(BuildMeasures(plan, {child}, outer.empty(), rel.get()));
  return RelationPtr(rel);
}

Result<Value> EvalSubqueryExpr(const BoundExpr& e, const RowStack& stack,
                               Evaluator* ev) {
  ExecState* state = ev->state();
  MSQL_FAULT_POINT("exec.subquery");
  MSQL_RETURN_IF_ERROR(state->guard.Check());
  ++state->subquery_execs;

  std::string cache_key;
  const bool memoize = state->options.memoize_subqueries;
  const bool scalar_like = e.kind == BoundExprKind::kSubquery ||
                           e.kind == BoundExprKind::kExists;
  std::string shared_key;
  if (memoize) {
    cache_key = StrCat(reinterpret_cast<uintptr_t>(e.subplan.get()), "|");
    std::string literals;
    for (const auto& fv : e.free_vars) {
      MSQL_ASSIGN_OR_RETURN(Value v, ev->Eval(*fv, stack));
      literals += v.ToSqlLiteral();
      literals += ",";
    }
    cache_key += literals;
    auto it = state->subquery_cache.find(cache_key);
    if (it != state->subquery_cache.end()) {
      ++state->subquery_cache_hits;
      if (scalar_like) return it->second;
      // IN-subquery results depend on the probe value too; skip caching.
    }
    // Cross-query layer: free-variable *values* are part of the key, so
    // even correlated subqueries share safely under a structural plan
    // fingerprint (pointer keys above are meaningless across binds).
    if (scalar_like && state->shared_cache != nullptr) {
      auto [fp, inserted] =
          state->plan_fingerprints.emplace(e.subplan.get(), std::string());
      if (inserted) fp->second = FingerprintPlan(*e.subplan);
      shared_key = StrCat("q|", state->catalog_generation, "|",
                          state->param_sig, "|",
                          e.kind == BoundExprKind::kExists ? "e" : "s",
                          e.negated ? "!" : "", "|", fp->second, "|", literals);
      Value v;
      if (state->shared_cache->Lookup(shared_key, &v)) {
        ++state->shared_cache_hits;
        state->subquery_cache.emplace(cache_key, v);
        return v;
      }
      ++state->shared_cache_misses;
    }
  }

  auto publish = [&](const Value& v) -> Status {
    state->subquery_cache.emplace(cache_key, v);
    if (!shared_key.empty() && AdmitSharedCacheFill(state)) {
      MSQL_RETURN_IF_ERROR(state->guard.ChargeBytes(
          SharedMeasureCache::ApproxEntryBytes(shared_key, v)));
      state->shared_cache->Insert(shared_key, v, state->catalog_generation);
    }
    return Status::Ok();
  };

  Executor exec(state);
  MSQL_ASSIGN_OR_RETURN(RelationPtr result, exec.Execute(*e.subplan, stack));

  switch (e.kind) {
    case BoundExprKind::kSubquery: {
      if (result->rows.size() > 1) {
        return Status(ErrorCode::kExecution,
                      "scalar subquery returned more than one row");
      }
      Value v = result->rows.empty() ? Value::Null() : result->rows[0][0];
      if (memoize) MSQL_RETURN_IF_ERROR(publish(v));
      return v;
    }
    case BoundExprKind::kExists: {
      Value v = Value::Bool(result->rows.empty() == e.negated);
      if (memoize) MSQL_RETURN_IF_ERROR(publish(v));
      return v;
    }
    case BoundExprKind::kInSubquery: {
      MSQL_ASSIGN_OR_RETURN(Value probe, ev->Eval(*e.operand, stack));
      if (probe.is_null()) return Value::Null();
      bool saw_null = false;
      for (const Row& r : result->rows) {
        if (r[0].is_null()) {
          saw_null = true;
          continue;
        }
        if (Value::NotDistinct(probe, r[0])) return Value::Bool(!e.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(e.negated);
    }
    default:
      return Status(ErrorCode::kExecution, "not a subquery expression");
  }
}

}  // namespace msql

#ifndef MSQL_EXEC_EXECUTOR_H_
#define MSQL_EXEC_EXECUTOR_H_

#include <memory>

#include "common/status.h"
#include "exec/eval.h"
#include "exec/exec_state.h"
#include "exec/relation.h"
#include "plan/plan.h"

namespace msql {

// Materializing interpreter for logical plans. Each operator consumes fully
// materialized child relations and produces a new one; measures ride on
// relations as RtMeasure bindings (see exec/relation.h).
class Executor {
 public:
  explicit Executor(ExecState* state) : state_(state) {}

  // Executes a plan. `outer` supplies scope frames for correlated column
  // references (depth counted from the plan's own row scope upward).
  Result<RelationPtr> Execute(const LogicalPlan& plan, const RowStack& outer);

 private:
  // The operator switch. Execute() wraps it with the guard/depth checks
  // and, when ExecState::profile is set, per-node runtime accounting.
  Result<RelationPtr> Dispatch(const LogicalPlan& plan, const RowStack& outer);
  Result<RelationPtr> DispatchProfiled(const LogicalPlan& plan,
                                       const RowStack& outer);

  Result<RelationPtr> ExecScan(const LogicalPlan& plan);
  Result<RelationPtr> ExecValues(const LogicalPlan& plan,
                                 const RowStack& outer);
  Result<RelationPtr> ExecProject(const LogicalPlan& plan,
                                  const RowStack& outer);
  Result<RelationPtr> ExecFilter(const LogicalPlan& plan,
                                 const RowStack& outer);
  Result<RelationPtr> ExecJoin(const LogicalPlan& plan, const RowStack& outer);
  Result<RelationPtr> ExecAggregate(const LogicalPlan& plan,
                                    const RowStack& outer);
  Result<RelationPtr> ExecSort(const LogicalPlan& plan, const RowStack& outer);
  Result<RelationPtr> ExecLimit(const LogicalPlan& plan,
                                const RowStack& outer);
  Result<RelationPtr> ExecDistinct(const LogicalPlan& plan,
                                   const RowStack& outer);
  Result<RelationPtr> ExecSetOp(const LogicalPlan& plan, const RowStack& outer);
  Result<RelationPtr> ExecWindow(const LogicalPlan& plan,
                                 const RowStack& outer);

  // Builds the runtime measure bindings of a node's output from its
  // PlanMeasure descriptors and already-built child relations. `shareable`
  // is true when the node materialized without outer correlation frames, in
  // which case newly defined measures get a structural fingerprint making
  // them eligible for the cross-query SharedMeasureCache.
  Status BuildMeasures(const LogicalPlan& plan,
                       const std::vector<RelationPtr>& children,
                       bool shareable, Relation* out);

  ExecState* state_;
};

// Evaluates kSubquery / kInSubquery / kExists expressions; declared here so
// the row evaluator can recurse into plans without a header cycle.
Result<Value> EvalSubqueryExpr(const BoundExpr& e, const RowStack& stack,
                               Evaluator* ev);

}  // namespace msql

#endif  // MSQL_EXEC_EXECUTOR_H_

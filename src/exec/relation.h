#ifndef MSQL_EXEC_RELATION_H_
#define MSQL_EXEC_RELATION_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "binder/bound_expr.h"
#include "catalog/schema.h"
#include "common/value.h"
#include "exec/column_vector.h"

namespace msql {

struct Relation;

// A measure bound into a materialized relation at runtime. The formula is
// evaluated over `source` rows selected by an evaluation context; the
// provenance map translates this relation's visible columns into expressions
// over the source schema (the measure's dimensions); `rowid_col` is the
// hidden column of this relation holding the source row index, which powers
// the VISIBLE modifier and grain preservation under joins.
struct RtMeasure {
  std::string name;
  DataType value_type;
  std::shared_ptr<const BoundExpr> formula;   // over source schema
  std::shared_ptr<const Relation> source;
  std::unordered_map<int, std::shared_ptr<BoundExpr>> provenance;
  int rowid_col = -1;
  int column = -1;  // the measure's own column in the carrying relation
  // Stable structural identity "sourcePlanFP|formulaFP" for the cross-query
  // SharedMeasureCache. Null when the measure is not shareable (correlated
  // source, sharing disabled); shared between a measure and its
  // join/filter/projection propagated copies.
  std::shared_ptr<const std::string> fingerprint;
};

// Row storage of a materialized relation. Three backings, one read API:
//
//   owned    a plain std::vector<Row> the producing operator appended to
//            (the classic row path);
//   shared   an immutable segment adopted by shared_ptr — table scans adopt
//            the catalog's COW snapshot in O(1) instead of copying R rows;
//   lazy     a columnar image (exec/column_vector.h) whose rows materialize
//            on first row-path access, so fully vectorized pipelines never
//            pay for rows nobody reads.
//
// Readers see a const std::vector<Row> regardless of backing. Mutators only
// touch owned storage; they detach (copy) from a shared or lazy backing
// first, which in practice never happens — relations are frozen behind
// RelationPtr once built. Lazy materialization is serialized by call_once so
// morsel-parallel measure workers may race on first access.
class RowStore {
 public:
  RowStore() = default;

  size_t size() const {
    if (shared_ != nullptr) return shared_->size();
    if (lazy_ != nullptr) return static_cast<size_t>(lazy_->cols->num_rows);
    return owned_.size();
  }
  bool empty() const { return size() == 0; }
  const Row& operator[](size_t i) const { return vec()[i]; }
  std::vector<Row>::const_iterator begin() const { return vec().begin(); }
  std::vector<Row>::const_iterator end() const { return vec().end(); }

  // The materialized row vector (forces a lazy columnar backing to
  // materialize; O(1) afterwards).
  const std::vector<Row>& vec() const {
    if (shared_ != nullptr) return *shared_;
    if (lazy_ != nullptr) {
      Lazy* lazy = lazy_.get();
      std::call_once(lazy->once, [lazy] {
        lazy->rows = MaterializeRowsDense(*lazy->cols);
      });
      return lazy->rows;
    }
    return owned_;
  }

  void reserve(size_t n) { Own().reserve(n); }
  void push_back(Row r) { Own().push_back(std::move(r)); }
  RowStore& operator=(std::vector<Row>&& rows) {
    shared_.reset();
    lazy_.reset();
    owned_ = std::move(rows);
    return *this;
  }

  // Adopts an immutable shared segment in O(1) (table snapshots: the COW
  // catalog republishes the vector on mutation, so sharing is safe).
  void AdoptShared(std::shared_ptr<const std::vector<Row>> rows) {
    shared_ = std::move(rows);
    lazy_.reset();
    owned_.clear();
  }

  // Adopts a complete columnar image (every column present); rows
  // materialize on first access through vec().
  void AdoptLazy(std::shared_ptr<const ColumnarRelation> cols) {
    lazy_ = std::make_shared<Lazy>();
    lazy_->cols = std::move(cols);
    shared_.reset();
    owned_.clear();
  }

 private:
  struct Lazy {
    std::once_flag once;
    std::shared_ptr<const ColumnarRelation> cols;
    std::vector<Row> rows;
  };

  std::vector<Row>& Own() {
    if (shared_ != nullptr || lazy_ != nullptr) {
      owned_ = vec();
      shared_.reset();
      lazy_.reset();
    }
    return owned_;
  }

  std::vector<Row> owned_;
  std::shared_ptr<const std::vector<Row>> shared_;
  std::shared_ptr<Lazy> lazy_;
};

// A fully materialized intermediate or final result: schema (visible columns
// first, hidden after), row data, and the measures riding on it. `columns`
// is the columnar sidecar the vectorized kernels run on — null when the
// relation was produced by the row path; per-column entries may be null for
// columns dynamic typing left row-major.
struct Relation {
  Schema schema;
  RowStore rows;
  std::vector<RtMeasure> measures;
  std::shared_ptr<const ColumnarRelation> columns;
};

using RelationPtr = std::shared_ptr<const Relation>;

}  // namespace msql

#endif  // MSQL_EXEC_RELATION_H_

#ifndef MSQL_EXEC_RELATION_H_
#define MSQL_EXEC_RELATION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "binder/bound_expr.h"
#include "catalog/schema.h"
#include "common/value.h"

namespace msql {

struct Relation;

// A measure bound into a materialized relation at runtime. The formula is
// evaluated over `source` rows selected by an evaluation context; the
// provenance map translates this relation's visible columns into expressions
// over the source schema (the measure's dimensions); `rowid_col` is the
// hidden column of this relation holding the source row index, which powers
// the VISIBLE modifier and grain preservation under joins.
struct RtMeasure {
  std::string name;
  DataType value_type;
  std::shared_ptr<const BoundExpr> formula;   // over source schema
  std::shared_ptr<const Relation> source;
  std::unordered_map<int, std::shared_ptr<BoundExpr>> provenance;
  int rowid_col = -1;
  int column = -1;  // the measure's own column in the carrying relation
  // Stable structural identity "sourcePlanFP|formulaFP" for the cross-query
  // SharedMeasureCache. Null when the measure is not shareable (correlated
  // source, sharing disabled); shared between a measure and its
  // join/filter/projection propagated copies.
  std::shared_ptr<const std::string> fingerprint;
};

// A fully materialized intermediate or final result: schema (visible columns
// first, hidden after), row data, and the measures riding on it.
struct Relation {
  Schema schema;
  std::vector<Row> rows;
  std::vector<RtMeasure> measures;
};

using RelationPtr = std::shared_ptr<const Relation>;

}  // namespace msql

#endif  // MSQL_EXEC_RELATION_H_

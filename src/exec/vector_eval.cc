#include "exec/vector_eval.h"

#include <cstring>
#include <string>

#include "common/date.h"
#include "common/fault_injection.h"
#include "exec/exec_state.h"

namespace msql {

VectorGate VectorizedGate(ExecState* state) {
  if (state->options.exec_mode != ExecMode::kVectorized) {
    return VectorGate::kRowMode;
  }
  if (FaultInjector::Instance().active()) {
    // Degradable checkpoint (same contract as measure.grouped_index_build):
    // an injected fault here forces the row path, never an error.
    if (!FaultInjector::Instance().Checkpoint("exec.vectorized_kernel").ok()) {
      ++state->exec_row_fallbacks;
      return VectorGate::kFaulted;
    }
  }
  return VectorGate::kOk;
}

namespace {

// Mutable column under construction; frozen into a ColumnPtr by Freeze().
struct ColOut {
  std::shared_ptr<ColumnVector> col;
  int64_t* ints = nullptr;
  double* doubles = nullptr;
  uint64_t* valid = nullptr;  // always allocated; dropped if fully set
};

Result<ColOut> NewCol(TypeKind kind, int64_t n,
                      const std::shared_ptr<Arena>& arena) {
  ColOut out;
  out.col = std::make_shared<ColumnVector>();
  out.col->kind = kind;
  out.col->length = n;
  out.col->arena = arena;
  const size_t words = static_cast<size_t>((n + 63) / 64);
  out.valid = arena->AllocateArray<uint64_t>(words == 0 ? 1 : words);
  if (out.valid == nullptr) return arena->status();
  std::memset(out.valid, 0, (words == 0 ? 1 : words) * sizeof(uint64_t));
  if (kind == TypeKind::kDouble) {
    out.doubles = arena->AllocateArray<double>(static_cast<size_t>(n));
    if (out.doubles == nullptr && n > 0) return arena->status();
    if (n > 0) std::memset(out.doubles, 0, static_cast<size_t>(n) * 8);
  } else if (kind != TypeKind::kNull) {
    out.ints = arena->AllocateArray<int64_t>(static_cast<size_t>(n));
    if (out.ints == nullptr && n > 0) return arena->status();
    if (n > 0) std::memset(out.ints, 0, static_cast<size_t>(n) * 8);
  }
  return out;
}

ColumnPtr Freeze(ColOut& out) {
  out.col->ints = out.ints;
  out.col->doubles = out.doubles;
  int64_t n = out.col->length;
  bool all_valid = out.col->kind != TypeKind::kNull;
  for (int64_t i = 0; all_valid && i < n; ++i) {
    if (((out.valid[i >> 6] >> (i & 63)) & 1) == 0) all_valid = false;
  }
  out.col->valid = all_valid ? nullptr : out.valid;
  return out.col;
}

inline void SetValid(uint64_t* valid, int64_t i) {
  valid[i >> 6] |= uint64_t{1} << (i & 63);
}

// Payload accessors mirroring Value::AsDouble / Value::int_val over a
// columnar layout (int_val of a DOUBLE value reads the zero int payload,
// exactly like Value's untouched i_ field).
inline double AsDoubleAt(const ColumnVector& c, int64_t i) {
  switch (c.kind) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return static_cast<double>(c.ints[i]);
    case TypeKind::kDouble:
      return c.doubles[i];
    default:
      return 0;  // strings: AsDouble() reads the untouched numeric payload
  }
}
inline int64_t IntValAt(const ColumnVector& c, int64_t i) {
  switch (c.kind) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return c.ints[i];
    default:
      return 0;  // doubles/strings: int_val() reads the untouched i_ field
  }
}

bool IsIntPayload(TypeKind k) {
  return k == TypeKind::kBool || k == TypeKind::kInt64 || k == TypeKind::kDate;
}
bool IsNumericish(TypeKind k) {
  return IsIntPayload(k) || k == TypeKind::kDouble;
}

Result<ColumnPtr> AllNullColumn(int64_t n,
                                const std::shared_ptr<Arena>& arena) {
  MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(TypeKind::kNull, n, arena));
  return Freeze(out);
}

Result<ColumnPtr> BroadcastLiteral(const Value& v, int64_t n,
                                   const std::shared_ptr<Arena>& arena) {
  if (v.is_null()) return AllNullColumn(n, arena);
  MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(v.kind(), n, arena));
  for (int64_t i = 0; i < n; ++i) SetValid(out.valid, i);
  switch (v.kind()) {
    case TypeKind::kBool:
      for (int64_t i = 0; i < n; ++i) out.ints[i] = v.bool_val() ? 1 : 0;
      break;
    case TypeKind::kInt64:
    case TypeKind::kDate:
      for (int64_t i = 0; i < n; ++i) out.ints[i] = v.int_val();
      break;
    case TypeKind::kDouble:
      for (int64_t i = 0; i < n; ++i) out.doubles[i] = v.double_val();
      break;
    case TypeKind::kString: {
      out.col->dict =
          std::make_shared<std::vector<std::string>>(1, v.str());
      out.col->dict_unique = true;
      break;  // codes already zero-filled
    }
    default:
      return Result<ColumnPtr>(nullptr);
  }
  return Freeze(out);
}

// Builds a single column from the row representation (used when `rel` has
// no columnar sidecar, or that column stayed row-major). Null on mixed
// kinds, an error only on arena/guard exhaustion.
Result<ColumnPtr> ColumnFromRows(const Relation& rel, int column,
                                 const std::shared_ptr<Arena>& arena,
                                 ExecState* state) {
  const std::vector<Row>& rows = rel.rows.vec();
  ColumnBuilder builder(arena, static_cast<int64_t>(rows.size()));
  int64_t i = 0;
  for (const Row& row : rows) {
    if ((i++ & (kRowsPerBatch - 1)) == 0) {
      MSQL_RETURN_IF_ERROR(state->guard.Check());
    }
    if (static_cast<size_t>(column) >= row.size() ||
        !builder.Append(row[column])) {
      MSQL_RETURN_IF_ERROR(builder.status());
      return Result<ColumnPtr>(nullptr);
    }
  }
  ColumnPtr col = builder.Finish();
  if (col == nullptr) return builder.status();
  return col;
}

// The string payload of row i; only valid rows of string columns.
inline const std::string& StrAt(const ColumnVector& c, int64_t i) {
  return (*c.dict)[static_cast<size_t>(c.ints[i])];
}

// Pairwise payload equality for valid rows, mirroring Value::NotDistinct's
// non-NULL arm. Returns false via `supported` when the kind combination has
// no kernel.
struct EqKernel {
  const ColumnVector& a;
  const ColumnVector& b;
  bool supported = false;
  bool same_int = false, same_double = false, same_string = false,
       numeric = false;

  EqKernel(const ColumnVector& a_in, const ColumnVector& b_in)
      : a(a_in), b(b_in) {
    if (a.kind == b.kind) {
      same_int = IsIntPayload(a.kind);
      same_double = a.kind == TypeKind::kDouble;
      same_string = a.kind == TypeKind::kString;
      supported = same_int || same_double || same_string;
    } else if ((a.kind == TypeKind::kInt64 || a.kind == TypeKind::kDouble) &&
               (b.kind == TypeKind::kInt64 || b.kind == TypeKind::kDouble)) {
      numeric = true;
      supported = true;
    } else {
      // Different non-numeric kinds: NotDistinct is constant false.
      supported = true;
    }
  }

  bool Equal(int64_t i) const {
    if (same_int) return a.ints[i] == b.ints[i];
    if (same_double) return a.doubles[i] == b.doubles[i];
    if (same_string) return StrAt(a, i) == StrAt(b, i);
    if (numeric) return AsDoubleAt(a, i) == AsDoubleAt(b, i);
    return false;
  }
};

// Value::Compare for valid rows (NULLs were handled by propagation).
struct CmpKernel {
  const ColumnVector& a;
  const ColumnVector& b;
  bool supported = false;
  bool strings = false, same_int = false;

  CmpKernel(const ColumnVector& a_in, const ColumnVector& b_in)
      : a(a_in), b(b_in) {
    strings = a.kind == TypeKind::kString && b.kind == TypeKind::kString;
    same_int = a.kind == b.kind && IsIntPayload(a.kind);
    // Everything else funnels through AsDouble, exactly like
    // Value::Compare (strings mixed with numerics read AsDouble() == 0).
    supported = true;
  }

  int Compare(int64_t i) const {
    if (strings) return StrAt(a, i).compare(StrAt(b, i));
    if (same_int) {
      return a.ints[i] < b.ints[i] ? -1 : a.ints[i] > b.ints[i] ? 1 : 0;
    }
    double x = AsDoubleAt(a, i), y = AsDoubleAt(b, i);
    return x < y ? -1 : x > y ? 1 : 0;
  }
};

Result<ColumnPtr> EvalVec(const BoundExpr& e, const Relation& rel,
                          const std::shared_ptr<Arena>& arena,
                          ExecState* state);

// Kleene AND/OR over (validity, truth): with t = valid & true and
// f = valid & ~true per side, AND gives t = ta&tb, f = fa|fb and OR gives
// t = ta|tb, f = fa&fb; the result is valid where either bit is set. This
// is EvalScalarFunction's three-valued logic in bitmap form.
Result<ColumnPtr> EvalBoolPair(bool is_and, const ColumnVector& a,
                               const ColumnVector& b, int64_t n,
                               const std::shared_ptr<Arena>& arena,
                               ExecState* state) {
  MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(TypeKind::kBool, n, arena));
  for (int64_t i = 0; i < n; ++i) {
    if ((i & (kRowsPerBatch - 1)) == 0) {
      MSQL_RETURN_IF_ERROR(state->guard.Check());
    }
    const bool av = a.IsValid(i), bv = b.IsValid(i);
    const bool at = av && IntValAt(a, i) != 0;
    const bool bt = bv && IntValAt(b, i) != 0;
    const bool af = av && !at, bf = bv && !bt;
    bool t, f;
    if (is_and) {
      t = at && bt;
      f = af || bf;
    } else {
      t = at || bt;
      f = af && bf;
    }
    if (t || f) {
      SetValid(out.valid, i);
      out.ints[i] = t ? 1 : 0;
    }
  }
  return Freeze(out);
}

bool BoolishKind(TypeKind k) {
  return k == TypeKind::kBool || k == TypeKind::kNull;
}

Result<ColumnPtr> EvalFuncVec(const BoundExpr& e, const Relation& rel,
                              const std::shared_ptr<Arena>& arena,
                              ExecState* state) {
  const int64_t n = rel.rows.size();
  // Evaluate argument columns first (the row path also evaluates every
  // argument before applying the function, so error behavior matches).
  std::vector<ColumnPtr> args;
  args.reserve(e.args.size());
  for (const auto& a : e.args) {
    MSQL_ASSIGN_OR_RETURN(ColumnPtr col, EvalVec(*a, rel, arena, state));
    if (col == nullptr) return Result<ColumnPtr>(nullptr);
    args.push_back(std::move(col));
  }

  switch (e.func) {
    case FunctionId::kOpAnd:
    case FunctionId::kOpOr: {
      if (!BoolishKind(args[0]->kind) || !BoolishKind(args[1]->kind)) {
        return Result<ColumnPtr>(nullptr);
      }
      return EvalBoolPair(e.func == FunctionId::kOpAnd, *args[0], *args[1], n,
                          arena, state);
    }
    case FunctionId::kOpNot: {
      const ColumnVector& a = *args[0];
      if (!BoolishKind(a.kind)) return Result<ColumnPtr>(nullptr);
      if (a.kind == TypeKind::kNull) return AllNullColumn(n, arena);
      MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(TypeKind::kBool, n, arena));
      for (int64_t i = 0; i < n; ++i) {
        if (a.IsValid(i)) {
          SetValid(out.valid, i);
          out.ints[i] = a.ints[i] != 0 ? 0 : 1;
        }
      }
      return Freeze(out);
    }
    case FunctionId::kOpIsDistinctFrom:
    case FunctionId::kOpIsNotDistinctFrom: {
      const ColumnVector& a = *args[0];
      const ColumnVector& b = *args[1];
      const bool want_equal = e.func == FunctionId::kOpIsNotDistinctFrom;
      MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(TypeKind::kBool, n, arena));
      if (a.kind == TypeKind::kNull || b.kind == TypeKind::kNull) {
        for (int64_t i = 0; i < n; ++i) {
          const bool eq = a.IsValid(i) == b.IsValid(i) &&
                          !a.IsValid(i);  // equal only when both NULL
          SetValid(out.valid, i);
          out.ints[i] = (eq == want_equal) ? 1 : 0;
        }
        return Freeze(out);
      }
      EqKernel eq(a, b);
      if (!eq.supported) return Result<ColumnPtr>(nullptr);
      for (int64_t i = 0; i < n; ++i) {
        if ((i & (kRowsPerBatch - 1)) == 0) {
          MSQL_RETURN_IF_ERROR(state->guard.Check());
        }
        const bool av = a.IsValid(i), bv = b.IsValid(i);
        const bool same = (av == bv) && (!av || eq.Equal(i));
        SetValid(out.valid, i);
        out.ints[i] = (same == want_equal) ? 1 : 0;
      }
      return Freeze(out);
    }
    case FunctionId::kOpEq:
    case FunctionId::kOpNe: {
      const ColumnVector& a = *args[0];
      const ColumnVector& b = *args[1];
      if (a.kind == TypeKind::kNull || b.kind == TypeKind::kNull) {
        return AllNullColumn(n, arena);
      }
      EqKernel eq(a, b);
      if (!eq.supported) return Result<ColumnPtr>(nullptr);
      const bool want_equal = e.func == FunctionId::kOpEq;
      MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(TypeKind::kBool, n, arena));
      for (int64_t i = 0; i < n; ++i) {
        if ((i & (kRowsPerBatch - 1)) == 0) {
          MSQL_RETURN_IF_ERROR(state->guard.Check());
        }
        if (a.IsValid(i) && b.IsValid(i)) {
          SetValid(out.valid, i);
          out.ints[i] = (eq.Equal(i) == want_equal) ? 1 : 0;
        }
      }
      return Freeze(out);
    }
    case FunctionId::kOpLt:
    case FunctionId::kOpLe:
    case FunctionId::kOpGt:
    case FunctionId::kOpGe: {
      const ColumnVector& a = *args[0];
      const ColumnVector& b = *args[1];
      if (a.kind == TypeKind::kNull || b.kind == TypeKind::kNull) {
        return AllNullColumn(n, arena);
      }
      CmpKernel cmp(a, b);
      if (!cmp.supported) return Result<ColumnPtr>(nullptr);
      MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(TypeKind::kBool, n, arena));
      for (int64_t i = 0; i < n; ++i) {
        if ((i & (kRowsPerBatch - 1)) == 0) {
          MSQL_RETURN_IF_ERROR(state->guard.Check());
        }
        if (!a.IsValid(i) || !b.IsValid(i)) continue;
        const int c = cmp.Compare(i);
        bool v = false;
        switch (e.func) {
          case FunctionId::kOpLt: v = c < 0; break;
          case FunctionId::kOpLe: v = c <= 0; break;
          case FunctionId::kOpGt: v = c > 0; break;
          default: v = c >= 0; break;
        }
        SetValid(out.valid, i);
        out.ints[i] = v ? 1 : 0;
      }
      return Freeze(out);
    }
    case FunctionId::kOpAdd:
    case FunctionId::kOpSub:
    case FunctionId::kOpMul: {
      const ColumnVector& a = *args[0];
      const ColumnVector& b = *args[1];
      if (a.kind == TypeKind::kNull || b.kind == TypeKind::kNull) {
        return AllNullColumn(n, arena);
      }
      if (!IsNumericish(a.kind) || !IsNumericish(b.kind)) {
        return Result<ColumnPtr>(nullptr);
      }
      // Result-kind dispatch mirroring EvalScalarFunction's promotion.
      TypeKind out_kind;
      enum class Op { kDateInt, kIntDate, kDateDate, kIntInt, kDouble };
      Op op;
      const bool ad = a.kind == TypeKind::kDate, bd = b.kind == TypeKind::kDate;
      const bool ai = a.kind == TypeKind::kInt64, bi = b.kind == TypeKind::kInt64;
      if (e.func == FunctionId::kOpAdd && ad) {
        op = Op::kDateInt; out_kind = TypeKind::kDate;
      } else if (e.func == FunctionId::kOpAdd && bd) {
        op = Op::kIntDate; out_kind = TypeKind::kDate;
      } else if (e.func == FunctionId::kOpSub && ad && bd) {
        op = Op::kDateDate; out_kind = TypeKind::kInt64;
      } else if (e.func == FunctionId::kOpSub && ad) {
        op = Op::kDateInt; out_kind = TypeKind::kDate;
      } else if (e.func != FunctionId::kOpAdd && bd && !ad) {
        // DATE on the right of - or *: the row path falls through to the
        // AsDouble arm (AsDouble of a DATE is its day count).
        op = Op::kDouble; out_kind = TypeKind::kDouble;
      } else if (ai && bi) {
        op = Op::kIntInt; out_kind = TypeKind::kInt64;
      } else {
        op = Op::kDouble; out_kind = TypeKind::kDouble;
      }
      MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(out_kind, n, arena));
      for (int64_t i = 0; i < n; ++i) {
        if ((i & (kRowsPerBatch - 1)) == 0) {
          MSQL_RETURN_IF_ERROR(state->guard.Check());
        }
        if (!a.IsValid(i) || !b.IsValid(i)) continue;
        SetValid(out.valid, i);
        switch (op) {
          case Op::kDateInt:
            out.ints[i] = e.func == FunctionId::kOpAdd
                              ? a.ints[i] + IntValAt(b, i)
                              : a.ints[i] - IntValAt(b, i);
            break;
          case Op::kIntDate:
            out.ints[i] = b.ints[i] + IntValAt(a, i);
            break;
          case Op::kDateDate:
            out.ints[i] = a.ints[i] - b.ints[i];
            break;
          case Op::kIntInt: {
            // Wrapping arithmetic: the row path's int64 + / - / * compile
            // to the same two's-complement result; unsigned math keeps
            // UBSan quiet on adversarial inputs.
            const uint64_t x = static_cast<uint64_t>(a.ints[i]);
            const uint64_t y = static_cast<uint64_t>(b.ints[i]);
            uint64_t r = 0;
            if (e.func == FunctionId::kOpAdd) r = x + y;
            else if (e.func == FunctionId::kOpSub) r = x - y;
            else r = x * y;
            out.ints[i] = static_cast<int64_t>(r);
            break;
          }
          case Op::kDouble: {
            const double x = AsDoubleAt(a, i), y = AsDoubleAt(b, i);
            if (e.func == FunctionId::kOpAdd) out.doubles[i] = x + y;
            else if (e.func == FunctionId::kOpSub) out.doubles[i] = x - y;
            else out.doubles[i] = x * y;
            break;
          }
        }
      }
      return Freeze(out);
    }
    case FunctionId::kOpDiv: {
      const ColumnVector& a = *args[0];
      const ColumnVector& b = *args[1];
      if (a.kind == TypeKind::kNull || b.kind == TypeKind::kNull) {
        return AllNullColumn(n, arena);
      }
      if (!IsNumericish(a.kind) || !IsNumericish(b.kind)) {
        return Result<ColumnPtr>(nullptr);
      }
      MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(TypeKind::kDouble, n, arena));
      for (int64_t i = 0; i < n; ++i) {
        if ((i & (kRowsPerBatch - 1)) == 0) {
          MSQL_RETURN_IF_ERROR(state->guard.Check());
        }
        if (!a.IsValid(i) || !b.IsValid(i)) continue;
        const double divisor = AsDoubleAt(b, i);
        if (divisor == 0) {
          return Status(ErrorCode::kExecution, "division by zero");
        }
        SetValid(out.valid, i);
        out.doubles[i] = AsDoubleAt(a, i) / divisor;
      }
      return Freeze(out);
    }
    case FunctionId::kOpNeg: {
      const ColumnVector& a = *args[0];
      if (a.kind == TypeKind::kNull) return AllNullColumn(n, arena);
      if (!IsNumericish(a.kind)) return Result<ColumnPtr>(nullptr);
      const TypeKind out_kind =
          a.kind == TypeKind::kInt64 ? TypeKind::kInt64 : TypeKind::kDouble;
      MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(out_kind, n, arena));
      for (int64_t i = 0; i < n; ++i) {
        if (!a.IsValid(i)) continue;
        SetValid(out.valid, i);
        if (out_kind == TypeKind::kInt64) {
          out.ints[i] = static_cast<int64_t>(-static_cast<uint64_t>(a.ints[i]));
        } else {
          out.doubles[i] = -AsDoubleAt(a, i);
        }
      }
      return Freeze(out);
    }
    case FunctionId::kYear:
    case FunctionId::kMonth:
    case FunctionId::kDay:
    case FunctionId::kQuarter:
    case FunctionId::kDayOfWeek: {
      const ColumnVector& a = *args[0];
      if (a.kind == TypeKind::kNull) return AllNullColumn(n, arena);
      if (a.kind != TypeKind::kDate) return Result<ColumnPtr>(nullptr);
      MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(TypeKind::kInt64, n, arena));
      for (int64_t i = 0; i < n; ++i) {
        if ((i & (kRowsPerBatch - 1)) == 0) {
          MSQL_RETURN_IF_ERROR(state->guard.Check());
        }
        if (!a.IsValid(i)) continue;
        SetValid(out.valid, i);
        switch (e.func) {
          case FunctionId::kYear: out.ints[i] = YearOfDate(a.ints[i]); break;
          case FunctionId::kMonth: out.ints[i] = MonthOfDate(a.ints[i]); break;
          case FunctionId::kDay: out.ints[i] = DayOfDate(a.ints[i]); break;
          case FunctionId::kQuarter:
            out.ints[i] = QuarterOfDate(a.ints[i]);
            break;
          default: out.ints[i] = DayOfWeek(a.ints[i]); break;
        }
      }
      return Freeze(out);
    }
    default:
      return Result<ColumnPtr>(nullptr);
  }
}

Result<ColumnPtr> EvalVec(const BoundExpr& e, const Relation& rel,
                          const std::shared_ptr<Arena>& arena,
                          ExecState* state) {
  const int64_t n = rel.rows.size();
  switch (e.kind) {
    case BoundExprKind::kLiteral:
      return BroadcastLiteral(e.literal, n, arena);
    case BoundExprKind::kParam: {
      if (state->params == nullptr || e.param_index < 0 ||
          static_cast<size_t>(e.param_index) >= state->params->size()) {
        return Result<ColumnPtr>(nullptr);
      }
      return BroadcastLiteral((*state->params)[e.param_index], n, arena);
    }
    case BoundExprKind::kColumnRef: {
      if (e.depth != 0 || e.column < 0) return Result<ColumnPtr>(nullptr);
      if (rel.columns != nullptr &&
          static_cast<size_t>(e.column) < rel.columns->cols.size() &&
          rel.columns->cols[e.column] != nullptr) {
        return rel.columns->cols[e.column];  // zero-copy
      }
      return ColumnFromRows(rel, e.column, arena, state);
    }
    case BoundExprKind::kRowIndex: {
      MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(TypeKind::kInt64, n, arena));
      for (int64_t i = 0; i < n; ++i) {
        SetValid(out.valid, i);
        out.ints[i] = i;
      }
      return Freeze(out);
    }
    case BoundExprKind::kIsNull: {
      MSQL_ASSIGN_OR_RETURN(ColumnPtr operand,
                            EvalVec(*e.operand, rel, arena, state));
      if (operand == nullptr) return Result<ColumnPtr>(nullptr);
      MSQL_ASSIGN_OR_RETURN(ColOut out, NewCol(TypeKind::kBool, n, arena));
      for (int64_t i = 0; i < n; ++i) {
        SetValid(out.valid, i);
        out.ints[i] = (!operand->IsValid(i) != e.negated) ? 1 : 0;
      }
      return Freeze(out);
    }
    case BoundExprKind::kFunc:
      return EvalFuncVec(e, rel, arena, state);
    default:
      // CASE, CAST, LIKE, IN, subqueries, measures, GROUPING: row path.
      return Result<ColumnPtr>(nullptr);
  }
}

}  // namespace

Result<ColumnPtr> EvalVector(const BoundExpr& e, const Relation& rel,
                             const std::shared_ptr<Arena>& arena,
                             ExecState* state) {
  return EvalVec(e, rel, arena, state);
}

}  // namespace msql

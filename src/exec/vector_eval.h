#ifndef MSQL_EXEC_VECTOR_EVAL_H_
#define MSQL_EXEC_VECTOR_EVAL_H_

#include <memory>

#include "binder/bound_expr.h"
#include "common/arena.h"
#include "common/status.h"
#include "exec/column_vector.h"
#include "exec/relation.h"

namespace msql {

struct ExecState;

// Whether a vectorized code path may run right now. kRowMode: the engine is
// configured for row-at-a-time execution (not a fallback, not counted).
// kFaulted: the `exec.vectorized_kernel` fault point fired — a *degradable*
// checkpoint, mirroring measure.grouped_index_build: the op silently takes
// the row path (exec_row_fallbacks is incremented here) and must produce
// identical results. kOk: go vectorized.
enum class VectorGate { kRowMode, kFaulted, kOk };

VectorGate VectorizedGate(ExecState* state);

// Evaluates `e` over every row of `rel`, producing one typed column with
// payload storage in `arena`. Returns a null ColumnPtr (with an OK status)
// when no kernel covers the expression — the caller falls back to the row
// path; a non-OK status is a real evaluation error (division by zero,
// guard trip), exactly the error the row path would have produced.
//
// Kernels mirror Evaluator/EvalScalarFunction bit for bit: Kleene
// three-valued AND/OR/NOT over validity+truth bitmaps, IS [NOT] DISTINCT
// FROM and `=` via Value::NotDistinct, ordering via Value::Compare, arith-
// metic with the same INT64/DOUBLE/DATE promotion rules. Column references
// are zero-copy when `rel` carries a columnar sidecar.
Result<ColumnPtr> EvalVector(const BoundExpr& e, const Relation& rel,
                             const std::shared_ptr<Arena>& arena,
                             ExecState* state);

}  // namespace msql

#endif  // MSQL_EXEC_VECTOR_EVAL_H_

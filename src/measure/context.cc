#include "measure/context.h"

#include <algorithm>

#include "common/string_util.h"

namespace msql {

void EvalContext::SetDim(std::string key,
                         std::shared_ptr<const BoundExpr> src_expr,
                         Value value) {
  RemoveDim(key);
  ContextTerm term;
  term.kind = ContextTerm::Kind::kDimEq;
  term.key = std::move(key);
  term.src_expr = std::move(src_expr);
  term.value = std::move(value);
  terms_.push_back(std::move(term));
}

void EvalContext::RemoveDim(const std::string& key) {
  terms_.erase(std::remove_if(terms_.begin(), terms_.end(),
                              [&](const ContextTerm& t) {
                                return t.kind == ContextTerm::Kind::kDimEq &&
                                       EqualsIgnoreCase(t.key, key);
                              }),
               terms_.end());
}

void EvalContext::AddPredicate(std::shared_ptr<const BoundExpr> src_expr) {
  ContextTerm term;
  term.kind = ContextTerm::Kind::kPred;
  term.key = src_expr->ToString();
  term.src_expr = std::move(src_expr);
  terms_.push_back(std::move(term));
}

void EvalContext::AddRowIds(
    std::shared_ptr<const std::vector<int64_t>> rowids) {
  ContextTerm term;
  term.kind = ContextTerm::Kind::kRowIds;
  term.rowids = std::move(rowids);
  terms_.push_back(std::move(term));
}

std::optional<Value> EvalContext::CurrentValue(const std::string& key) const {
  for (const ContextTerm& t : terms_) {
    if (t.kind == ContextTerm::Kind::kDimEq && EqualsIgnoreCase(t.key, key)) {
      return t.value;
    }
  }
  return std::nullopt;
}

std::string EvalContext::Signature() const {
  std::vector<std::string> parts;
  parts.reserve(terms_.size());
  for (const ContextTerm& t : terms_) {
    switch (t.kind) {
      case ContextTerm::Kind::kDimEq:
        parts.push_back(StrCat("d:", t.key, "=", t.value.ToSqlLiteral()));
        break;
      case ContextTerm::Kind::kPred:
        parts.push_back(StrCat("p:", t.key));
        break;
      case ContextTerm::Kind::kRowIds: {
        // Row-id sets are potentially large; hash them.
        size_t h = 0xcbf29ce484222325ULL;
        for (int64_t id : *t.rowids) {
          h ^= static_cast<size_t>(id);
          h *= 0x100000001b3ULL;
        }
        parts.push_back(StrCat("r:", t.rowids->size(), ":", h));
        break;
      }
    }
  }
  std::sort(parts.begin(), parts.end());
  return Join(parts, "&");
}

}  // namespace msql

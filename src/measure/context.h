#ifndef MSQL_MEASURE_CONTEXT_H_
#define MSQL_MEASURE_CONTEXT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "binder/bound_expr.h"
#include "common/value.h"

namespace msql {

// One term of an evaluation context (paper section 3.4). The context is the
// conjunction of its terms; a measure's value is determined solely by the
// set of source rows the predicate admits.
struct ContextTerm {
  enum class Kind {
    kDimEq,   // src_expr IS NOT DISTINCT FROM value (a dimension term)
    kPred,    // src_expr evaluates to TRUE (WHERE-modifier / visible filters)
    kRowIds,  // the source row index is in `rowids` (VISIBLE under joins)
  };
  Kind kind = Kind::kDimEq;
  // Canonical key for dimension matching ("prodName", "YEAR(orderDate)").
  std::string key;
  std::shared_ptr<const BoundExpr> src_expr;  // over the measure source schema
  Value value;                                 // kDimEq
  std::shared_ptr<const std::vector<int64_t>> rowids;  // kRowIds, sorted
};

// An evaluation context: the predicate over a measure's dimension columns
// that determines which source rows enter the calculation. Modifier
// operations implement paper table 3.
class EvalContext {
 public:
  EvalContext() = default;

  const std::vector<ContextTerm>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }

  // Adds a dimension term, replacing any existing term with the same key.
  void SetDim(std::string key, std::shared_ptr<const BoundExpr> src_expr,
              Value value);

  // Removes dimension terms with the given key (modifier `ALL dim`).
  void RemoveDim(const std::string& key);

  // Removes every term (modifier `ALL`).
  void Clear() { terms_.clear(); }

  // Adds a predicate term.
  void AddPredicate(std::shared_ptr<const BoundExpr> src_expr);

  // Adds a row-id restriction term.
  void AddRowIds(std::shared_ptr<const std::vector<int64_t>> rowids);

  // Value of the dimension `key` if the context pins it to a single value
  // via a kDimEq term; nullopt otherwise (CURRENT returns SQL NULL then).
  std::optional<Value> CurrentValue(const std::string& key) const;

  // Deterministic cache key: terms sorted by kind/key/value rendering.
  std::string Signature() const;

 private:
  std::vector<ContextTerm> terms_;
};

}  // namespace msql

#endif  // MSQL_MEASURE_CONTEXT_H_

#include "measure/cse.h"

#include <algorithm>
#include <map>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "exec/agg_eval.h"
#include "measure/grouped.h"
#include "runtime/circuit_breaker.h"
#include "runtime/shared_cache.h"

namespace msql {

namespace {

// Clones `e`, rewriting nodes per TranslateToSource's contract.
Result<BoundExprPtr> TranslateRec(const BoundExpr& e, const RtMeasure& m,
                                  const RowStack& close_over,
                                  const EvalContext* incoming,
                                  ExecState* state) {
  switch (e.kind) {
    case BoundExprKind::kColumnRef: {
      if (e.depth == 0) {
        auto it = m.provenance.find(e.column);
        if (it == m.provenance.end()) {
          return Status(
              ErrorCode::kExecution,
              StrCat("column '", e.name, "' is not a dimension of measure '",
                     m.name, "'"));
        }
        return it->second->Clone();
      }
      // Correlated reference: close over the call-site value.
      size_t frame_idx = static_cast<size_t>(e.depth - 1);
      if (frame_idx >= close_over.size() ||
          close_over[frame_idx].row == nullptr) {
        return Status(ErrorCode::kExecution,
                      StrCat("correlated reference ", e.ToString(),
                             " out of scope in AT modifier"));
      }
      const Row& row = *close_over[frame_idx].row;
      if (e.column < 0 || static_cast<size_t>(e.column) >= row.size()) {
        return Status(ErrorCode::kExecution, "correlated column out of range");
      }
      return BLiteral(row[e.column]);
    }
    case BoundExprKind::kCurrent: {
      MSQL_ASSIGN_OR_RETURN(
          BoundExprPtr dim,
          TranslateRec(*e.current_dim, m, close_over, incoming, state));
      if (incoming != nullptr) {
        if (auto v = incoming->CurrentValue(dim->ToString())) {
          return BLiteral(*v);
        }
      }
      return BLiteral(Value::Null());
    }
    case BoundExprKind::kAgg:
    case BoundExprKind::kMeasureEval:
    case BoundExprKind::kSubquery:
    case BoundExprKind::kInSubquery:
    case BoundExprKind::kExists:
      return Status(ErrorCode::kExecution,
                    StrCat("expression ", e.ToString(),
                           " cannot appear in a dimension predicate"));
    default:
      break;
  }
  // Structural clone with translated children.
  BoundExprPtr c = e.Clone();
  // Re-translate children of the clone in place.
  Status status = Status::Ok();
  auto translate_child = [&](BoundExprPtr& child) {
    if (!status.ok() || child == nullptr) return;
    auto r = TranslateRec(*child, m, close_over, incoming, state);
    if (!r.ok()) {
      status = r.status();
      return;
    }
    child = std::move(r.value());
  };
  for (auto& a : c->args) translate_child(a);
  if (c->filter) translate_child(c->filter);
  for (auto& [w, t] : c->when_clauses) {
    translate_child(w);
    translate_child(t);
  }
  if (c->else_expr) translate_child(c->else_expr);
  if (c->operand) translate_child(c->operand);
  MSQL_RETURN_IF_ERROR(status);
  return c;
}

}  // namespace

Result<BoundExprPtr> TranslateToSource(const BoundExpr& e, const RtMeasure& m,
                                       const RowStack& close_over,
                                       const EvalContext* incoming,
                                       ExecState* state) {
  return TranslateRec(e, m, close_over, incoming, state);
}

Result<EvalContext> BuildRowContext(const RtMeasure& m, const Frame& frame,
                                    ExecState* state) {
  (void)state;
  EvalContext ctx;
  // Deterministic order: by column index.
  std::map<int, const std::shared_ptr<BoundExpr>*> ordered;
  for (const auto& [col, expr] : m.provenance) ordered[col] = &expr;
  for (const auto& [col, expr] : ordered) {
    if (frame.row == nullptr || static_cast<size_t>(col) >= frame.row->size()) {
      continue;
    }
    ctx.SetDim((*expr)->ToString(), *expr, (*frame.row)[col]);
  }
  return ctx;
}

Status ApplyModifiers(const RtMeasure& m,
                      const std::vector<BoundAtModifier>& mods,
                      const RowStack& call_stack,
                      const std::shared_ptr<const std::vector<int64_t>>&
                          visible_rowids,
                      ExecState* state, EvalContext* ctx) {
  // CURRENT resolves against the context the AT clause was entered with —
  // the cell's own context — not the partially-modified one. Otherwise
  // `AT (ALL d SET d = CURRENT d)` would read CURRENT d after ALL d erased
  // its term, and the paper's round-trip identity (§3.5) would not hold.
  const EvalContext entry = *ctx;
  for (const BoundAtModifier& mod : mods) {
    switch (mod.kind) {
      case AtModifier::Kind::kAll:
        ctx->Clear();
        break;
      case AtModifier::Kind::kAllDims:
        for (const auto& dim : mod.dims) {
          // A dimension with no provenance onto this measure's source (e.g.
          // a column of the other join side) can never have a term in the
          // context, so removing it is a no-op rather than an error.
          auto src = TranslateToSource(*dim, m, call_stack, ctx, state);
          if (!src.ok()) continue;
          ctx->RemoveDim(src.value()->ToString());
        }
        break;
      case AtModifier::Kind::kSet: {
        MSQL_ASSIGN_OR_RETURN(
            BoundExprPtr dim_src,
            TranslateToSource(*mod.set_dim, m, call_stack, ctx, state));
        // Evaluate the value at the call site.
        Evaluator ev(state);
        ev.current_context = &entry;
        ev.current_measure = &m;
        MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*mod.set_value, call_stack));
        std::string key = dim_src->ToString();
        ctx->SetDim(std::move(key),
                    std::shared_ptr<const BoundExpr>(std::move(dim_src)), v);
        break;
      }
      case AtModifier::Kind::kVisible:
        if (visible_rowids == nullptr) {
          return Status(ErrorCode::kExecution,
                        "VISIBLE is not available at this call site");
        }
        ctx->AddRowIds(visible_rowids);
        break;
      case AtModifier::Kind::kWhere: {
        // Paper table 3: WHERE sets the evaluation context to the predicate.
        MSQL_ASSIGN_OR_RETURN(
            BoundExprPtr pred,
            TranslateToSource(*mod.predicate, m, call_stack, &entry, state));
        ctx->Clear();
        ctx->AddPredicate(std::shared_ptr<const BoundExpr>(std::move(pred)));
        break;
      }
    }
  }
  return Status::Ok();
}

std::string MeasureMemoKey(const RtMeasure& m, const std::string& signature) {
  return StrCat(reinterpret_cast<uintptr_t>(m.source.get()), "|",
                reinterpret_cast<uintptr_t>(m.formula.get()), "|", signature);
}

std::string MeasureSharedKey(const RtMeasure& m, const ExecState& state,
                             const std::string& signature) {
  // Cross-query layer (docs/CONCURRENCY.md): the fingerprint replaces the
  // per-bind pointers with a structural identity stable across queries, and
  // the catalog generation pins the data version. Signatures that render an
  // embedded subquery are skipped — that rendering is not injective, so two
  // different predicates could alias one key.
  if (state.shared_cache == nullptr || m.fingerprint == nullptr ||
      signature.find("<subquery>") != std::string::npos) {
    return std::string();
  }
  // Parameter values are invisible to the structural fingerprint, so a
  // parameterized query keys its entries by its bound value tuple too.
  return StrCat("m|", state.catalog_generation, "|", state.param_sig, "|",
                *m.fingerprint, "|", signature);
}

Status PublishSharedMeasure(const std::string& shared_key, const Value& result,
                            ExecState* state) {
  if (shared_key.empty() || !AdmitSharedCacheFill(state)) return Status::Ok();
  MSQL_RETURN_IF_ERROR(state->guard.ChargeBytes(
      SharedMeasureCache::ApproxEntryBytes(shared_key, result)));
  state->shared_cache->Insert(shared_key, result, state->catalog_generation);
  return Status::Ok();
}

Result<Value> EvaluateMeasure(const RtMeasure& m, const EvalContext& ctx,
                              ExecState* state) {
  MSQL_FAULT_POINT("measure.eval");
  MSQL_RETURN_IF_ERROR(state->guard.Check());
  ++state->measure_evals;
  if (++state->depth > state->options.max_recursion_depth) {
    --state->depth;
    return RecursionLimitExceeded("measure evaluation",
                                  state->options.max_recursion_depth);
  }
  struct DepthGuard {
    ExecState* s;
    ~DepthGuard() { --s->depth; }
  } guard{state};

  // Grouped probes memoize too: a probe answers one context, and later
  // evaluations of the same context (e.g. across grouping sets) should hit
  // the memo rather than re-aggregate the group.
  const bool memoize =
      state->options.measure_strategy == MeasureStrategy::kMemoized ||
      state->options.measure_strategy == MeasureStrategy::kGrouped;
  std::string key;
  std::string shared_key;
  if (memoize) {
    const std::string signature = ctx.Signature();
    key = MeasureMemoKey(m, signature);
    auto it = state->measure_cache.find(key);
    if (it != state->measure_cache.end()) {
      ++state->measure_cache_hits;
      return it->second;
    }
    shared_key = MeasureSharedKey(m, *state, signature);
    if (!shared_key.empty()) {
      Value v;
      if (state->shared_cache->Lookup(shared_key, &v)) {
        ++state->shared_cache_hits;
        state->measure_cache.emplace(std::move(key), v);
        return v;
      }
      ++state->shared_cache_misses;
    }
  }

  const Relation& src = *m.source;

  // Fast path (paper section 6.4, "inline the measure definition"): when
  // every term is a row-id restriction, the admitted rows are just the
  // intersection of the id sets — no scan of the source required.
  bool rowids_only = state->options.inline_visible_contexts;
  for (const ContextTerm& term : ctx.terms()) {
    if (term.kind != ContextTerm::Kind::kRowIds) rowids_only = false;
  }
  if (rowids_only && !ctx.terms().empty()) {
    ++state->measure_inline_evals;
    std::vector<int64_t> selected = *ctx.terms()[0].rowids;
    for (size_t t = 1; t < ctx.terms().size(); ++t) {
      const auto& other = *ctx.terms()[t].rowids;
      std::vector<int64_t> merged;
      std::set_intersection(selected.begin(), selected.end(), other.begin(),
                            other.end(), std::back_inserter(merged));
      selected = std::move(merged);
    }
    MSQL_ASSIGN_OR_RETURN(Value result,
                          EvalFormulaOverRows(*m.formula, src, selected,
                                              state));
    if (memoize) {
      MSQL_RETURN_IF_ERROR(PublishSharedMeasure(shared_key, result, state));
      state->measure_cache.emplace(std::move(key), result);
    }
    return result;
  }

  // Grouped strategy: an all-dimension context is one probe into a hash
  // partition of the source, built once per context shape and reused by
  // every same-shaped context in the query (and, via the shared cache,
  // across queries). A null index means the build was degraded by fault
  // injection — fall through to the scan.
  if (state->options.measure_strategy == MeasureStrategy::kGrouped) {
    const ContextShape shape = ShapeOf(ctx);
    if (shape.groupable()) {
      MSQL_ASSIGN_OR_RETURN(std::shared_ptr<const GroupedIndex> index,
                            GetOrBuildGroupedIndex(m, shape, state));
      if (index != nullptr) {
        MSQL_ASSIGN_OR_RETURN(Value result,
                              EvalGroupedProbe(*index, m, shape, state));
        MSQL_RETURN_IF_ERROR(PublishSharedMeasure(shared_key, result, state));
        state->measure_cache.emplace(std::move(key), result);
        return result;
      }
    }
  }

  // Select the admitted source rows.
  ++state->measure_source_scans;
  Evaluator ev(state);
  std::vector<int64_t> selected;
  RowStack stack(1);
  for (int64_t i = 0; i < static_cast<int64_t>(src.rows.size()); ++i) {
    MSQL_RETURN_IF_ERROR(state->guard.Check());
    bool admit = true;
    for (const ContextTerm& term : ctx.terms()) {
      switch (term.kind) {
        case ContextTerm::Kind::kDimEq: {
          stack[0] = Frame{&src.rows[i], i, &src};
          MSQL_ASSIGN_OR_RETURN(Value v, ev.Eval(*term.src_expr, stack));
          // IS NOT DISTINCT FROM per paper footnote 1 (NULL handling).
          admit = Value::NotDistinct(v, term.value);
          break;
        }
        case ContextTerm::Kind::kPred: {
          stack[0] = Frame{&src.rows[i], i, &src};
          MSQL_ASSIGN_OR_RETURN(bool ok, ev.EvalPredicate(*term.src_expr,
                                                          stack));
          admit = ok;
          break;
        }
        case ContextTerm::Kind::kRowIds:
          admit = std::binary_search(term.rowids->begin(), term.rowids->end(),
                                     i);
          break;
      }
      if (!admit) break;
    }
    if (admit) selected.push_back(i);
  }

  MSQL_ASSIGN_OR_RETURN(Value result,
                        EvalFormulaOverRows(*m.formula, src, selected, state));
  if (memoize) {
    MSQL_RETURN_IF_ERROR(PublishSharedMeasure(shared_key, result, state));
    state->measure_cache.emplace(std::move(key), result);
  }
  return result;
}

Result<Value> EvalFormulaOverRows(const BoundExpr& formula,
                                  const Relation& source,
                                  const std::vector<int64_t>& rows,
                                  ExecState* state) {
  switch (formula.kind) {
    case BoundExprKind::kLiteral:
      return formula.literal;
    case BoundExprKind::kAgg:
      return EvalAggCall(formula.agg, formula.args, formula.distinct,
                         formula.filter.get(), source, rows, /*outer=*/{},
                         state);
    case BoundExprKind::kMeasureEval: {
      // Reference to a measure of the formula's input table (paper section
      // 5.4, composition "one step at a time"): evaluate the inner measure
      // over the inner rows reachable from the current row set, then apply
      // this reference's own modifiers.
      if (formula.depth != 0 || formula.measure_slot < 0 ||
          static_cast<size_t>(formula.measure_slot) >=
              source.measures.size()) {
        return Status(ErrorCode::kExecution,
                      "unresolvable measure reference in formula");
      }
      const RtMeasure& inner = source.measures[formula.measure_slot];
      MSQL_ASSIGN_OR_RETURN(auto reachable,
                            CollectRowIds(inner, source, rows));
      EvalContext ctx;
      ctx.AddRowIds(reachable);
      MSQL_RETURN_IF_ERROR(ApplyModifiers(inner, formula.modifiers,
                                          /*call_stack=*/{}, reachable, state,
                                          &ctx));
      return EvaluateMeasure(inner, ctx, state);
    }
    case BoundExprKind::kColumnRef:
      return Status(ErrorCode::kExecution,
                    StrCat("measure formula references column '", formula.name,
                           "' outside an aggregate"));
    case BoundExprKind::kFunc: {
      std::vector<Value> args;
      args.reserve(formula.args.size());
      for (const auto& a : formula.args) {
        MSQL_ASSIGN_OR_RETURN(Value v,
                              EvalFormulaOverRows(*a, source, rows, state));
        args.push_back(std::move(v));
      }
      return EvalScalarFunction(formula.func, args);
    }
    case BoundExprKind::kCase: {
      for (const auto& [when, then] : formula.when_clauses) {
        MSQL_ASSIGN_OR_RETURN(Value c,
                              EvalFormulaOverRows(*when, source, rows, state));
        if (!c.is_null() && c.bool_val()) {
          return EvalFormulaOverRows(*then, source, rows, state);
        }
      }
      if (formula.else_expr) {
        return EvalFormulaOverRows(*formula.else_expr, source, rows, state);
      }
      return Value::Null();
    }
    case BoundExprKind::kCast: {
      MSQL_ASSIGN_OR_RETURN(
          Value v, EvalFormulaOverRows(*formula.operand, source, rows, state));
      return v.CastTo(formula.cast_to);
    }
    case BoundExprKind::kIsNull: {
      MSQL_ASSIGN_OR_RETURN(
          Value v, EvalFormulaOverRows(*formula.operand, source, rows, state));
      return Value::Bool(v.is_null() != formula.negated);
    }
    default:
      return Status(ErrorCode::kExecution,
                    StrCat("unsupported construct in measure formula: ",
                           formula.ToString()));
  }
}

Result<std::shared_ptr<const std::vector<int64_t>>> CollectRowIds(
    const RtMeasure& m, const Relation& rel,
    const std::vector<int64_t>& rows) {
  auto ids = std::make_shared<std::vector<int64_t>>();
  ids->reserve(rows.size());
  if (m.rowid_col < 0) {
    return Status(ErrorCode::kExecution,
                  StrCat("measure '", m.name, "' has no row-id column"));
  }
  // Columnar fast path: read the hidden row-id column directly (self-gating
  // — only vectorized operators attach a columnar sidecar). Avoids forcing
  // a lazy relation to materialize its row vector just for one column.
  if (rel.columns != nullptr &&
      static_cast<size_t>(m.rowid_col) < rel.columns->cols.size() &&
      rel.columns->cols[m.rowid_col] != nullptr &&
      rel.columns->cols[m.rowid_col]->kind == TypeKind::kInt64) {
    const ColumnVector& c = *rel.columns->cols[m.rowid_col];
    for (int64_t idx : rows) {
      if (c.IsValid(idx)) ids->push_back(c.ints[idx]);
    }
    std::sort(ids->begin(), ids->end());
    ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
    return std::shared_ptr<const std::vector<int64_t>>(std::move(ids));
  }
  for (int64_t idx : rows) {
    const Row& row = rel.rows[idx];
    if (static_cast<size_t>(m.rowid_col) >= row.size()) {
      return Status(ErrorCode::kExecution, "row-id column out of range");
    }
    const Value& v = row[m.rowid_col];
    if (!v.is_null()) ids->push_back(v.int_val());
  }
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
  return std::shared_ptr<const std::vector<int64_t>>(std::move(ids));
}

Result<Value> EvalMeasureAtRow(const BoundExpr& e, const RowStack& stack,
                               Evaluator* ev) {
  if (e.depth < 0 || static_cast<size_t>(e.depth) >= stack.size() ||
      stack[e.depth].rel == nullptr) {
    return Status(ErrorCode::kExecution,
                  StrCat("measure ", e.name, " referenced out of scope"));
  }
  const Frame& frame = stack[e.depth];
  const Relation& rel = *frame.rel;
  if (e.measure_slot < 0 ||
      static_cast<size_t>(e.measure_slot) >= rel.measures.size()) {
    return Status(ErrorCode::kExecution,
                  StrCat("measure slot ", e.measure_slot, " out of range"));
  }
  const RtMeasure& m = rel.measures[e.measure_slot];

  // Default per-row context: every dimension pinned to this row's value.
  MSQL_ASSIGN_OR_RETURN(EvalContext ctx,
                        BuildRowContext(m, frame, ev->state()));

  // VISIBLE at a row call site restricts to this row's source row.
  std::shared_ptr<const std::vector<int64_t>> visible;
  if (m.rowid_col >= 0 && frame.row != nullptr &&
      static_cast<size_t>(m.rowid_col) < frame.row->size() &&
      !(*frame.row)[m.rowid_col].is_null()) {
    auto ids = std::make_shared<std::vector<int64_t>>();
    ids->push_back((*frame.row)[m.rowid_col].int_val());
    visible = std::move(ids);
  }

  // The call-site stack for modifier evaluation starts at the measure's own
  // scope.
  RowStack call_stack(stack.begin() + e.depth, stack.end());
  MSQL_RETURN_IF_ERROR(ApplyModifiers(m, e.modifiers, call_stack, visible,
                                      ev->state(), &ctx));
  return EvaluateMeasure(m, ctx, ev->state());
}

}  // namespace msql

#ifndef MSQL_MEASURE_CSE_H_
#define MSQL_MEASURE_CSE_H_

#include <memory>
#include <vector>

#include "binder/bound_expr.h"
#include "common/status.h"
#include "exec/eval.h"
#include "exec/relation.h"
#include "measure/context.h"

namespace msql {

// Context-sensitive expression evaluation (paper section 4): building
// evaluation contexts at call sites, applying AT modifiers, and evaluating a
// measure's formula over the source rows its context admits.

// Translates an expression bound over a relation's schema into one over the
// measure's source schema using the measure's provenance map:
//  * depth-0 column refs map through `m.provenance` (error if the column has
//    no provenance — it is not a dimension of the measure);
//  * depth>=1 refs are closed over: evaluated against `close_over[depth-1]`
//    and replaced by literals;
//  * kCurrent nodes resolve against `incoming` (SQL NULL when unset).
Result<BoundExprPtr> TranslateToSource(const BoundExpr& e, const RtMeasure& m,
                                       const RowStack& close_over,
                                       const EvalContext* incoming,
                                       ExecState* state);

// Builds the default per-row evaluation context: one dimension term per
// visible column with provenance, pinned to the current row's value.
Result<EvalContext> BuildRowContext(const RtMeasure& m, const Frame& frame,
                                    ExecState* state);

// Applies AT modifiers (paper table 3) in order. `call_stack` is the call
// site's scope stack (frame 0 = current row or group representative);
// `visible_rowids` supplies the source row ids for the VISIBLE modifier.
Status ApplyModifiers(const RtMeasure& m,
                      const std::vector<BoundAtModifier>& mods,
                      const RowStack& call_stack,
                      const std::shared_ptr<const std::vector<int64_t>>&
                          visible_rowids,
                      ExecState* state, EvalContext* ctx);

// Evaluates the measure in a context: selects the admitted source rows and
// evaluates the formula over them, memoizing by context signature when the
// engine strategy allows. Under MeasureStrategy::kGrouped, all-dimension
// contexts are answered by a probe into a per-shape hash index of the
// source (measure/grouped.h) instead of a scan.
Result<Value> EvaluateMeasure(const RtMeasure& m, const EvalContext& ctx,
                              ExecState* state);

// Cache-key builders shared between the per-context evaluator above and the
// batch evaluator in measure/grouped.cc, so both layers stay key-compatible.
// MeasureMemoKey: per-query memo key (pointer identities, stable within one
// bind). MeasureSharedKey: cross-query SharedMeasureCache key; empty when
// the evaluation is not shareable (no shared cache, no fingerprint, or a
// non-injective subquery rendering in the signature). PublishSharedMeasure:
// publishes a computed value under a MeasureSharedKey (no-op on empty key),
// charging the entry against the query's byte budget.
std::string MeasureMemoKey(const RtMeasure& m, const std::string& signature);
std::string MeasureSharedKey(const RtMeasure& m, const ExecState& state,
                             const std::string& signature);
Status PublishSharedMeasure(const std::string& shared_key, const Value& result,
                            ExecState* state);

// Evaluates a measure formula (aggregates, nested measure refs, scalar
// combinators) over an explicit set of source rows.
Result<Value> EvalFormulaOverRows(const BoundExpr& formula,
                                  const Relation& source,
                                  const std::vector<int64_t>& rows,
                                  ExecState* state);

// Full per-row call-site evaluation of a kMeasureEval expression (used for
// measures referenced outside GROUP BY contexts, e.g. in WHERE clauses).
Result<Value> EvalMeasureAtRow(const BoundExpr& e, const RowStack& stack,
                               Evaluator* ev);

// Collects the distinct, sorted source row-ids of `rows` (indices into
// `rel.rows`) through the measure's hidden row-id column.
Result<std::shared_ptr<const std::vector<int64_t>>> CollectRowIds(
    const RtMeasure& m, const Relation& rel, const std::vector<int64_t>& rows);

}  // namespace msql

#endif  // MSQL_MEASURE_CSE_H_

#include "measure/expand.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace msql {

namespace {

Status NotImpl(const std::string& what) {
  return Status(ErrorCode::kNotImplemented,
                "measure expansion does not support " + what +
                    " (the engine executes it natively)");
}

// The measure-defining query backing the outer query's FROM item.
struct ProviderInfo {
  TableRefPtr source_from;                    // the defining FROM (clone)
  ExprPtr source_where;                       // baked-in filter, may be null
  std::map<std::string, ExprPtr> measures;    // lower(name) -> formula
  std::map<std::string, ExprPtr> dims;        // lower(name) -> source expr
  bool star_identity = false;                 // SELECT * passthrough
};

Status ResolveProvider(const TableRef& from, const Catalog& catalog,
                       const std::string& user, int depth, ProviderInfo* out,
                       bool* no_measures);

Status ResolveProviderSelect(const SelectStmt& select, const Catalog& catalog,
                             const std::string& user, int depth,
                             ProviderInfo* out, bool* no_measures) {
  (void)depth;
  if (!select.group_by.empty() || select.set_op != SetOpKind::kNone ||
      !select.ctes.empty() || select.distinct) {
    *no_measures = true;
    return Status::Ok();
  }
  bool any_measure = false;
  for (const SelectItem& item : select.select_list) {
    if (item.is_measure) any_measure = true;
  }
  if (!any_measure) {
    *no_measures = true;
    return Status::Ok();
  }
  if (select.from == nullptr) {
    return NotImpl("measures without a FROM clause");
  }
  if (select.from->kind == TableRefKind::kJoin) {
    return NotImpl("measures defined over joins");
  }
  // The defining FROM must bottom out at a base table; a chain of measure
  // views is composition, which the textual expansion does not cover.
  if (select.from->kind == TableRefKind::kBaseTable) {
    const auto entry = catalog.Find(select.from->table_name);
    if (entry == nullptr) {
      return Status(ErrorCode::kCatalog, "table or view '" +
                                             select.from->table_name +
                                             "' does not exist");
    }
    MSQL_RETURN_IF_ERROR(catalog.CheckAccess(*entry, user));
    if (entry->kind == CatalogEntry::Kind::kView) {
      return NotImpl("measures defined over views");
    }
  }
  out->source_from = select.from->Clone();
  out->source_from->alias.clear();
  if (select.where != nullptr) out->source_where = select.where->Clone();
  for (const SelectItem& item : select.select_list) {
    if (item.is_star) {
      out->star_identity = true;
      continue;
    }
    std::string name =
        item.alias.empty()
            ? (item.expr->kind == ExprKind::kColumnRef ? item.expr->parts.back()
                                                       : "")
            : item.alias;
    if (name.empty()) continue;
    if (item.is_measure) {
      out->measures[ToLower(name)] = item.expr->Clone();
    } else {
      out->dims[ToLower(name)] = item.expr->Clone();
    }
  }
  return Status::Ok();
}

Status ResolveProvider(const TableRef& from, const Catalog& catalog,
                       const std::string& user, int depth, ProviderInfo* out,
                       bool* no_measures) {
  if (depth > 8) return NotImpl("deeply nested providers");
  switch (from.kind) {
    case TableRefKind::kBaseTable: {
      const auto entry = catalog.Find(from.table_name);
      if (entry == nullptr) {
        return Status(ErrorCode::kCatalog,
                      "table or view '" + from.table_name +
                          "' does not exist");
      }
      MSQL_RETURN_IF_ERROR(catalog.CheckAccess(*entry, user));
      if (entry->kind == CatalogEntry::Kind::kTable) {
        *no_measures = true;
        return Status::Ok();
      }
      return ResolveProviderSelect(*entry->view_ast, catalog, user, depth + 1,
                                   out, no_measures);
    }
    case TableRefKind::kSubquery:
      return ResolveProviderSelect(*from.subquery, catalog, user, depth + 1,
                                   out, no_measures);
    case TableRefKind::kJoin:
      return NotImpl("joins in the outer query");
  }
  return NotImpl("this FROM shape");
}

// Clones `e`, re-qualifying every column reference with `alias`.
ExprPtr Requalify(const Expr& e, const std::string& alias) {
  ExprPtr c = e.Clone();
  std::function<void(Expr*)> walk = [&](Expr* n) {
    if (n->kind == ExprKind::kColumnRef) {
      n->parts = {alias, n->parts.back()};
    }
    for (auto& a : n->args) walk(a.get());
    if (n->filter) walk(n->filter.get());
    if (n->left) walk(n->left.get());
    if (n->right) walk(n->right.get());
    if (n->case_operand) walk(n->case_operand.get());
    for (auto& [w, t] : n->when_clauses) {
      walk(w.get());
      walk(t.get());
    }
    if (n->else_expr) walk(n->else_expr.get());
    for (auto& i : n->in_list) walk(i.get());
    if (n->between_low) walk(n->between_low.get());
    if (n->between_high) walk(n->between_high.get());
    // Subqueries inside expansion fragments are left untouched.
  };
  walk(c.get());
  return c;
}

// Expansion context for one outer query.
struct ExpansionCtx {
  const ProviderInfo* provider;
  const Catalog* catalog;
  std::string outer_alias;     // o
  std::string inner_alias;     // i
  const SelectStmt* query;
  std::vector<const Expr*> group_keys;  // resolved group-key ASTs
  // Outer select aliases usable as ad-hoc dimensions (listing 10's
  // orderYear = YEAR(orderDate)).
  std::map<std::string, const Expr*> select_aliases;
  // Ungrouped (detail-grain) queries only. A top-level bare measure item
  // renders at the result's grain: its context pins the dimensions that
  // survive in the select list (`result_keys`). A measure nested in an
  // expression or carrying AT modifiers evaluates at row grain: every
  // dimension of the provider is pinned (`row_keys`), matching the
  // engine's per-row default context.
  std::vector<const Expr*> result_keys;
  std::vector<const Expr*> row_keys;
  std::vector<ExprPtr> key_storage;  // owns synthesized column refs
};

// Maps an outer-query expression onto the measure source with qualifier
// `alias`: references to provider output columns become the provider's
// defining expressions; outer select aliases act as ad-hoc dimensions.
Result<ExprPtr> MapThroughDims(const Expr& e, const ExpansionCtx& cx,
                               const std::string& alias) {
  if (e.kind == ExprKind::kColumnRef) {
    const std::string& name = e.parts.back();
    if (e.parts.size() == 2 &&
        !EqualsIgnoreCase(e.parts[0], cx.outer_alias)) {
      return NotImpl("references to other tables inside measure contexts");
    }
    auto it = cx.provider->dims.find(ToLower(name));
    if (it != cx.provider->dims.end()) {
      return Requalify(*it->second, alias);
    }
    auto alias_it = cx.select_aliases.find(ToLower(name));
    if (alias_it != cx.select_aliases.end()) {
      return MapThroughDims(*alias_it->second, cx, alias);
    }
    if (cx.provider->star_identity) {
      return MakeColumnRef({alias, name});
    }
    return Status(ErrorCode::kBind,
                  "column '" + name + "' is not a dimension of the provider");
  }
  ExprPtr c = e.Clone();
  Status status = Status::Ok();
  std::function<void(ExprPtr&)> walk = [&](ExprPtr& n) {
    if (n == nullptr || !status.ok()) return;
    if (n->kind == ExprKind::kColumnRef) {
      auto r = MapThroughDims(*n, cx, alias);
      if (!r.ok()) {
        status = r.status();
        return;
      }
      n = std::move(r.value());
      return;
    }
    if (n->kind == ExprKind::kSubquery || n->kind == ExprKind::kExists ||
        n->kind == ExprKind::kInSubquery) {
      status = NotImpl("subqueries inside measure contexts");
      return;
    }
    for (auto& a : n->args) walk(a);
    if (n->filter) walk(n->filter);
    if (n->left) walk(n->left);
    if (n->right) walk(n->right);
    if (n->case_operand) walk(n->case_operand);
    for (auto& [w, t] : n->when_clauses) {
      walk(w);
      walk(t);
    }
    if (n->else_expr) walk(n->else_expr);
    for (auto& i : n->in_list) walk(i);
    if (n->between_low) walk(n->between_low);
    if (n->between_high) walk(n->between_high);
  };
  walk(c);
  MSQL_RETURN_IF_ERROR(status);
  return c;
}

ExprPtr Conjoin(std::vector<ExprPtr> preds) {
  ExprPtr result;
  for (ExprPtr& p : preds) {
    if (p == nullptr) continue;
    if (result == nullptr) {
      result = std::move(p);
    } else {
      result = MakeBinary(BinaryOp::kAnd, std::move(result), std::move(p));
    }
  }
  return result;
}

// If `e` (possibly inside AGGREGATE(...) or ... AT (...)) denotes a measure
// of the provider, returns its lowercase name.
const Expr* AsMeasureRef(const Expr& e, const ExpansionCtx& cx,
                         std::string* name) {
  if (e.kind == ExprKind::kColumnRef) {
    const std::string& n = e.parts.back();
    if (e.parts.size() == 2 &&
        !EqualsIgnoreCase(e.parts[0], cx.outer_alias)) {
      return nullptr;
    }
    auto it = cx.provider->measures.find(ToLower(n));
    if (it == cx.provider->measures.end()) return nullptr;
    *name = ToLower(n);
    return &e;
  }
  return nullptr;
}

// Builds the correlated scalar subquery replacing one measure reference.
// `visible` adds the outer WHERE clause terms; `keys` are the dimensions
// seeding the default context (group keys, or the grain-appropriate key
// set for ungrouped queries).
Result<ExprPtr> BuildSubquery(const std::string& measure_name,
                              const std::vector<AtModifier>* modifiers,
                              bool visible,
                              const std::vector<const Expr*>& keys,
                              const ExpansionCtx& cx) {
  const ExprPtr& formula = cx.provider->measures.at(measure_name);

  // Context terms keyed by the printed source expression.
  std::vector<std::pair<std::string, ExprPtr>> dim_terms;
  std::vector<ExprPtr> extra_preds;

  auto key_of = [&](const Expr& dim) -> Result<std::string> {
    MSQL_ASSIGN_OR_RETURN(ExprPtr src, MapThroughDims(dim, cx,
                                                      cx.inner_alias));
    return src->ToString();
  };
  auto set_dim_term = [&](const Expr& dim, ExprPtr pred) -> Status {
    MSQL_ASSIGN_OR_RETURN(std::string key, key_of(dim));
    for (auto& [k, p] : dim_terms) {
      if (k == key) {
        p = std::move(pred);
        return Status::Ok();
      }
    }
    dim_terms.emplace_back(std::move(key), std::move(pred));
    return Status::Ok();
  };

  // Default context: one term per key dimension, inner side matching the
  // outer side. IS NOT DISTINCT FROM, not `=`: the engine's native context
  // admits rows via Value::NotDistinct, so a NULL-valued dimension (NULL
  // group keys exist) must still match its own rows.
  std::set<std::string> entry_keys;  // mapped key strings of `keys`
  std::set<std::string> pristine;    // keys whose default term is intact
  // Keys whose VISIBLE row-set restriction is currently represented by
  // their intact default dim term. The native row-id set survives ALL d /
  // SET d (only kDimEq terms are removed), so when one of these terms is
  // later dropped, the restriction must be re-emitted as a frozen
  // predicate.
  std::set<std::string> visible_covered;
  for (const Expr* g : keys) {
    MSQL_ASSIGN_OR_RETURN(std::string key, key_of(*g));
    MSQL_ASSIGN_OR_RETURN(ExprPtr inner,
                          MapThroughDims(*g, cx, cx.inner_alias));
    MSQL_ASSIGN_OR_RETURN(ExprPtr outer,
                          MapThroughDims(*g, cx, cx.outer_alias));
    MSQL_RETURN_IF_ERROR(set_dim_term(
        *g, MakeBinary(BinaryOp::kIsNotDistinctFrom, std::move(inner),
                       std::move(outer))));
    entry_keys.insert(key);
    pristine.insert(std::move(key));
  }
  auto add_visible = [&]() -> Status {
    // VISIBLE restricts to the source rows reachable from the call site's
    // cell: its key terms — re-added when a prior modifier cleared or
    // overrode them, the way the engine's row-id set survives a context
    // Clear() — plus the query's WHERE clause.
    for (const Expr* g : keys) {
      MSQL_ASSIGN_OR_RETURN(std::string key, key_of(*g));
      if (pristine.count(key) > 0) {
        // The intact default term already restricts; remember that it now
        // also carries the row-set restriction in case it is removed later.
        visible_covered.insert(key);
        continue;
      }
      MSQL_ASSIGN_OR_RETURN(ExprPtr inner,
                            MapThroughDims(*g, cx, cx.inner_alias));
      MSQL_ASSIGN_OR_RETURN(ExprPtr outer,
                            MapThroughDims(*g, cx, cx.outer_alias));
      extra_preds.push_back(MakeBinary(BinaryOp::kIsNotDistinctFrom,
                                       std::move(inner), std::move(outer)));
    }
    if (cx.query->where != nullptr) {
      MSQL_ASSIGN_OR_RETURN(
          ExprPtr mapped,
          MapThroughDims(*cx.query->where, cx, cx.inner_alias));
      extra_preds.push_back(std::move(mapped));
    }
    return Status::Ok();
  };
  // Re-emits the row-set restriction for `key` as a frozen predicate when
  // its covering default term is about to be removed or overridden.
  auto freeze_if_covered = [&](const std::string& key) -> Status {
    auto it = visible_covered.find(key);
    if (it == visible_covered.end()) return Status::Ok();
    visible_covered.erase(it);
    for (const Expr* g : keys) {
      MSQL_ASSIGN_OR_RETURN(std::string k, key_of(*g));
      if (k != key) continue;
      MSQL_ASSIGN_OR_RETURN(ExprPtr inner,
                            MapThroughDims(*g, cx, cx.inner_alias));
      MSQL_ASSIGN_OR_RETURN(ExprPtr outer,
                            MapThroughDims(*g, cx, cx.outer_alias));
      extra_preds.push_back(MakeBinary(BinaryOp::kIsNotDistinctFrom,
                                       std::move(inner), std::move(outer)));
      break;
    }
    return Status::Ok();
  };
  // Substitutes CURRENT d: the outer-side expression when d is pinned by
  // the entry context, NULL otherwise (unpinned CURRENT is NULL, §3.5).
  auto subst_current = [&](ExprPtr& value) -> Status {
    Status status = Status::Ok();
    std::function<void(ExprPtr&)> subst = [&](ExprPtr& n) {
      if (n == nullptr || !status.ok()) return;
      if (n->kind == ExprKind::kCurrent) {
        Expr dim_ref;
        dim_ref.kind = ExprKind::kColumnRef;
        dim_ref.parts = {n->current_dim};
        auto key = key_of(dim_ref);
        if (!key.ok() || entry_keys.count(key.value()) == 0) {
          n = MakeLiteral(Value::Null());
          return;
        }
        auto r = MapThroughDims(dim_ref, cx, cx.outer_alias);
        if (!r.ok()) {
          status = r.status();
          return;
        }
        n = std::move(r.value());
        return;
      }
      for (auto& a : n->args) subst(a);
      if (n->left) subst(n->left);
      if (n->right) subst(n->right);
      if (n->case_operand) subst(n->case_operand);
      for (auto& [w, t] : n->when_clauses) {
        subst(w);
        subst(t);
      }
      if (n->else_expr) subst(n->else_expr);
      for (auto& i : n->in_list) subst(i);
      if (n->between_low) subst(n->between_low);
      if (n->between_high) subst(n->between_high);
    };
    subst(value);
    return status;
  };
  if (visible) MSQL_RETURN_IF_ERROR(add_visible());

  // Apply AT modifiers in order.
  if (modifiers != nullptr) {
    for (const AtModifier& mod : *modifiers) {
      switch (mod.kind) {
        case AtModifier::Kind::kAll:
          dim_terms.clear();
          extra_preds.clear();
          pristine.clear();
          visible_covered.clear();
          break;
        case AtModifier::Kind::kAllDims:
          for (const ExprPtr& dim : mod.dims) {
            MSQL_ASSIGN_OR_RETURN(std::string key, key_of(*dim));
            MSQL_RETURN_IF_ERROR(freeze_if_covered(key));
            dim_terms.erase(
                std::remove_if(dim_terms.begin(), dim_terms.end(),
                               [&](const auto& kv) { return kv.first == key; }),
                dim_terms.end());
            pristine.erase(key);
          }
          break;
        case AtModifier::Kind::kSet: {
          ExprPtr value = mod.value->Clone();
          MSQL_RETURN_IF_ERROR(subst_current(value));
          MSQL_ASSIGN_OR_RETURN(
              ExprPtr inner, MapThroughDims(*mod.set_dim, cx, cx.inner_alias));
          MSQL_RETURN_IF_ERROR(set_dim_term(
              *mod.set_dim, MakeBinary(BinaryOp::kIsNotDistinctFrom,
                                       std::move(inner), std::move(value))));
          MSQL_ASSIGN_OR_RETURN(std::string set_key, key_of(*mod.set_dim));
          // The default term for this dimension is overridden now, which a
          // later VISIBLE must compensate for.
          MSQL_RETURN_IF_ERROR(freeze_if_covered(set_key));
          pristine.erase(set_key);
          break;
        }
        case AtModifier::Kind::kVisible:
          MSQL_RETURN_IF_ERROR(add_visible());
          break;
        case AtModifier::Kind::kWhere: {
          dim_terms.clear();
          extra_preds.clear();
          pristine.clear();
          visible_covered.clear();
          // Unqualified references denote source dimensions (inner side);
          // qualified references to the outer alias stay as correlations.
          // CURRENT resolves against the entry context first.
          ExprPtr pred = mod.predicate->Clone();
          MSQL_RETURN_IF_ERROR(subst_current(pred));
          Status status = Status::Ok();
          std::function<void(ExprPtr&)> walk = [&](ExprPtr& n) {
            if (n == nullptr || !status.ok()) return;
            if (n->kind == ExprKind::kColumnRef) {
              if (n->parts.size() == 1) {
                Expr ref;
                ref.kind = ExprKind::kColumnRef;
                ref.parts = n->parts;
                auto r = MapThroughDims(ref, cx, cx.inner_alias);
                if (!r.ok()) {
                  status = r.status();
                  return;
                }
                n = std::move(r.value());
              }
              return;
            }
            for (auto& a : n->args) walk(a);
            if (n->left) walk(n->left);
            if (n->right) walk(n->right);
            if (n->case_operand) walk(n->case_operand);
            for (auto& [w, t] : n->when_clauses) {
              walk(w);
              walk(t);
            }
            if (n->else_expr) walk(n->else_expr);
            for (auto& i : n->in_list) walk(i);
            if (n->between_low) walk(n->between_low);
            if (n->between_high) walk(n->between_high);
          };
          walk(pred);
          MSQL_RETURN_IF_ERROR(status);
          extra_preds.push_back(std::move(pred));
          break;
        }
      }
    }
  }

  // Assemble the subquery.
  auto sub = std::make_unique<SelectStmt>();
  SelectItem item;
  item.expr = Requalify(*formula, cx.inner_alias);
  sub->select_list.push_back(std::move(item));
  sub->from = cx.provider->source_from->Clone();
  sub->from->alias = cx.inner_alias;

  std::vector<ExprPtr> preds;
  for (auto& [k, p] : dim_terms) preds.push_back(std::move(p));
  for (auto& p : extra_preds) preds.push_back(std::move(p));
  if (cx.provider->source_where != nullptr) {
    preds.push_back(Requalify(*cx.provider->source_where, cx.inner_alias));
  }
  sub->where = Conjoin(std::move(preds));

  auto wrapper = std::make_unique<Expr>();
  wrapper->kind = ExprKind::kSubquery;
  wrapper->subquery = std::move(sub);
  return wrapper;
}

// Rewrites an outer expression: measure references become subqueries, other
// column references are mapped through the provider's dimensions (so the
// rewritten query can run directly over the source table).
//
// `top_level` is true only for the direct expression of a select item: a
// bare measure there renders at the result's grain, whereas a measure
// nested in an expression (or carrying AT modifiers) evaluates at row
// grain. For grouped queries both grains are the group keys.
Result<ExprPtr> RewriteOuterExpr(const Expr& e, const ExpansionCtx& cx,
                                 bool top_level) {
  const bool grouped = !cx.query->group_by.empty();
  const std::vector<const Expr*>& bare_keys =
      grouped ? cx.group_keys : (top_level ? cx.result_keys : cx.row_keys);
  const std::vector<const Expr*>& at_keys =
      grouped ? cx.group_keys : cx.row_keys;

  std::string mname;
  // AGGREGATE(m) and bare m.
  if (e.kind == ExprKind::kFuncCall && EqualsIgnoreCase(e.func_name,
                                                        "AGGREGATE")) {
    if (e.args.size() == 1 &&
        AsMeasureRef(*e.args[0], cx, &mname) != nullptr) {
      return BuildSubquery(mname, nullptr, /*visible=*/true, cx.group_keys,
                           cx);
    }
    if (e.args.size() == 1 && e.args[0]->kind == ExprKind::kAt &&
        AsMeasureRef(*e.args[0]->left, cx, &mname) != nullptr) {
      // AGGREGATE(m AT (...)): VISIBLE first, then the inner modifiers.
      return BuildSubquery(mname, &e.args[0]->at_modifiers, /*visible=*/true,
                           cx.group_keys, cx);
    }
    return NotImpl("this AGGREGATE argument");
  }
  if (AsMeasureRef(e, cx, &mname) != nullptr) {
    return BuildSubquery(mname, nullptr, /*visible=*/false, bare_keys, cx);
  }
  if (e.kind == ExprKind::kAt) {
    if (AsMeasureRef(*e.left, cx, &mname) != nullptr) {
      // At row grain (ungrouped, non-aggregate query) VISIBLE restricts to
      // the single source row behind the cell. A predicate over column
      // values cannot tell duplicate rows apart, so that row-id set has no
      // plain-SQL rendering. (Grouped and aggregate grains are fine: there
      // the visible set is characterized by the group keys / the WHERE.)
      if (!grouped && !cx.row_keys.empty()) {
        for (const AtModifier& mod : e.at_modifiers) {
          if (mod.kind == AtModifier::Kind::kVisible) {
            return NotImpl("VISIBLE at row grain");
          }
        }
      }
      return BuildSubquery(mname, &e.at_modifiers, /*visible=*/false, at_keys,
                           cx);
    }
    return NotImpl("AT over compound expressions");
  }
  if (e.kind == ExprKind::kColumnRef) {
    return MapThroughDims(e, cx, cx.outer_alias);
  }
  if (e.kind == ExprKind::kSubquery || e.kind == ExprKind::kExists ||
      e.kind == ExprKind::kInSubquery) {
    return e.Clone();  // untouched
  }
  ExprPtr c = e.Clone();
  Status status = Status::Ok();
  auto rewrite = [&](ExprPtr& n) {
    if (n == nullptr || !status.ok()) return;
    auto r = RewriteOuterExpr(*n, cx, /*top_level=*/false);
    if (!r.ok()) {
      status = r.status();
      return;
    }
    n = std::move(r.value());
  };
  for (auto& a : c->args) rewrite(a);
  if (c->filter) rewrite(c->filter);
  if (c->left) rewrite(c->left);
  if (c->right) rewrite(c->right);
  if (c->case_operand) rewrite(c->case_operand);
  for (auto& [w, t] : c->when_clauses) {
    rewrite(w);
    rewrite(t);
  }
  if (c->else_expr) rewrite(c->else_expr);
  for (auto& i : c->in_list) rewrite(i);
  if (c->between_low) rewrite(c->between_low);
  if (c->between_high) rewrite(c->between_high);
  MSQL_RETURN_IF_ERROR(status);
  return c;
}

}  // namespace

Result<std::string> ExpandMeasures(const SelectStmt& query,
                                   const Catalog& catalog,
                                   const std::string& user) {
  MSQL_FAULT_POINT("measure.expand");
  if (query.set_op != SetOpKind::kNone || !query.ctes.empty()) {
    return NotImpl("set operations or WITH clauses");
  }
  if (query.from == nullptr) return query.ToString();

  ProviderInfo provider;
  bool no_measures = false;
  MSQL_RETURN_IF_ERROR(
      ResolveProvider(*query.from, catalog, user, 0, &provider, &no_measures));
  if (no_measures) return query.ToString();

  ExpansionCtx cx;
  cx.provider = &provider;
  cx.catalog = &catalog;
  cx.outer_alias = query.from->alias.empty() ? "o" : query.from->alias;
  cx.inner_alias = cx.outer_alias == "i" ? "i2" : "i";
  cx.query = &query;
  for (const SelectItem& item : query.select_list) {
    if (!item.is_star && !item.is_measure && !item.alias.empty()) {
      cx.select_aliases[ToLower(item.alias)] = item.expr.get();
    }
  }

  // Resolve group keys (plain expressions only; grouping sets cannot be
  // expressed as a single static expansion).
  for (const GroupItem& g : query.group_by) {
    if (g.kind != GroupItem::Kind::kExpr) {
      return NotImpl("ROLLUP/CUBE/GROUPING SETS");
    }
    const Expr* key = g.expr.get();
    // Substitute select aliases.
    if (key->kind == ExprKind::kColumnRef && key->parts.size() == 1) {
      for (const SelectItem& item : query.select_list) {
        if (!item.is_star && EqualsIgnoreCase(item.alias, key->parts[0]) &&
            !item.is_measure) {
          key = item.expr.get();
        }
      }
    }
    cx.group_keys.push_back(key);
  }

  // Ungrouped queries: classify the grain (see RewriteOuterExpr).
  bool aggregate_grain = false;
  if (query.group_by.empty()) {
    // Is any measure consumed through AGGREGATE(...)? Then the query
    // collapses to a single row, like a plain aggregate query would.
    std::function<bool(const Expr&)> has_aggregate = [&](const Expr& e) {
      if (e.kind == ExprKind::kFuncCall &&
          EqualsIgnoreCase(e.func_name, "AGGREGATE")) {
        return true;
      }
      bool found = false;
      auto visit = [&](const ExprPtr& c) {
        if (c != nullptr && !found) found = has_aggregate(*c);
      };
      for (const auto& a : e.args) visit(a);
      visit(e.filter);
      visit(e.left);
      visit(e.right);
      visit(e.case_operand);
      for (const auto& [w, t] : e.when_clauses) {
        visit(w);
        visit(t);
      }
      visit(e.else_expr);
      for (const auto& i : e.in_list) visit(i);
      visit(e.between_low);
      visit(e.between_high);
      return found;
    };
    for (const SelectItem& item : query.select_list) {
      if (!item.is_star && item.expr != nullptr &&
          has_aggregate(*item.expr)) {
        aggregate_grain = true;
      }
    }

    if (!aggregate_grain) {
      // Result grain: the plain dimension columns surviving in the select
      // list. Row grain: every dimension of the provider.
      for (const SelectItem& item : query.select_list) {
        if (item.is_star || item.expr == nullptr) continue;
        if (item.expr->kind != ExprKind::kColumnRef) continue;
        const std::string& name = item.expr->parts.back();
        if (cx.provider->measures.count(ToLower(name)) > 0) continue;
        if (!MapThroughDims(*item.expr, cx, cx.inner_alias).ok()) continue;
        cx.result_keys.push_back(item.expr.get());
      }
      std::vector<std::string> dim_names;
      if (provider.star_identity &&
          provider.source_from->kind == TableRefKind::kBaseTable) {
        const auto entry = catalog.Find(provider.source_from->table_name);
        if (entry != nullptr && entry->table != nullptr) {
          for (const Column& col : entry->table->schema().columns()) {
            dim_names.push_back(col.name);
          }
        }
      }
      for (const auto& [name, expr] : provider.dims) {
        (void)expr;
        dim_names.push_back(name);
      }
      for (const std::string& name : dim_names) {
        cx.key_storage.push_back(MakeColumnRef({name}));
        cx.row_keys.push_back(cx.key_storage.back().get());
      }
    }
  }

  auto rewritten = std::make_unique<SelectStmt>();
  rewritten->distinct = query.distinct;

  for (const SelectItem& item : query.select_list) {
    if (item.is_star) {
      return NotImpl("'*' in queries over measure providers");
    }
    if (item.is_measure) {
      return NotImpl("defining new measures while expanding");
    }
    SelectItem out;
    MSQL_ASSIGN_OR_RETURN(out.expr,
                          RewriteOuterExpr(*item.expr, cx, /*top_level=*/true));
    out.alias = item.alias;
    rewritten->select_list.push_back(std::move(out));
  }

  if (aggregate_grain) {
    // Single-row query: every measure context already folds in the visible
    // predicate, so the outer scan (and its WHERE) would only multiply the
    // row out per source row. ORDER BY over one row is dropped.
    if (query.having != nullptr) {
      return NotImpl("HAVING without GROUP BY");
    }
    if (query.limit != nullptr) rewritten->limit = query.limit->Clone();
    if (query.offset != nullptr) rewritten->offset = query.offset->Clone();
    return rewritten->ToString();
  }

  rewritten->from = provider.source_from->Clone();
  rewritten->from->alias = cx.outer_alias;

  std::vector<ExprPtr> where_parts;
  if (query.where != nullptr) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr mapped,
                          MapThroughDims(*query.where, cx, cx.outer_alias));
    where_parts.push_back(std::move(mapped));
  }
  if (provider.source_where != nullptr) {
    where_parts.push_back(Requalify(*provider.source_where, cx.outer_alias));
  }
  rewritten->where = Conjoin(std::move(where_parts));

  for (const Expr* key : cx.group_keys) {
    GroupItem gi;
    gi.kind = GroupItem::Kind::kExpr;
    MSQL_ASSIGN_OR_RETURN(gi.expr, MapThroughDims(*key, cx, cx.outer_alias));
    rewritten->group_by.push_back(std::move(gi));
  }
  if (query.having != nullptr) {
    MSQL_ASSIGN_OR_RETURN(
        rewritten->having,
        RewriteOuterExpr(*query.having, cx, /*top_level=*/false));
  }
  for (const OrderItem& o : query.order_by) {
    OrderItem oi;
    // Ordinals and aliases survive unchanged; expressions are rewritten.
    if ((o.expr->kind == ExprKind::kLiteral &&
         o.expr->literal.kind() == TypeKind::kInt64)) {
      oi.expr = o.expr->Clone();
    } else if (o.expr->kind == ExprKind::kColumnRef &&
               o.expr->parts.size() == 1) {
      bool is_alias = false;
      for (const SelectItem& item : query.select_list) {
        if (EqualsIgnoreCase(item.alias, o.expr->parts[0])) is_alias = true;
      }
      if (is_alias) {
        oi.expr = o.expr->Clone();
      } else {
        MSQL_ASSIGN_OR_RETURN(
            oi.expr, RewriteOuterExpr(*o.expr, cx, /*top_level=*/false));
      }
    } else {
      MSQL_ASSIGN_OR_RETURN(
          oi.expr, RewriteOuterExpr(*o.expr, cx, /*top_level=*/false));
    }
    oi.desc = o.desc;
    oi.nulls_first = o.nulls_first;
    rewritten->order_by.push_back(std::move(oi));
  }
  if (query.limit != nullptr) rewritten->limit = query.limit->Clone();
  if (query.offset != nullptr) rewritten->offset = query.offset->Clone();

  return rewritten->ToString();
}

}  // namespace msql

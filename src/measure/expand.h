#ifndef MSQL_MEASURE_EXPAND_H_
#define MSQL_MEASURE_EXPAND_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"

namespace msql {

// The paper's section 4.2 rewrite: expands every measure reference in a
// SELECT into a correlated scalar subquery over the measure's source table,
// producing plain SQL (no measures) with the evaluation context spelled out
// as WHERE predicates — exactly the transformation of paper listings 5 and
// 11.
//
// Supported query shape: a SELECT over a single measure-defining provider
// (a view or inline subquery of the form
//   SELECT [*,] cols..., expr AS MEASURE m, ... FROM <source> [WHERE ...]
// possibly through a chain of such views), with optional WHERE / GROUP BY /
// HAVING / ORDER BY / LIMIT. Joins and measure-on-measure composition fall
// back to kNotImplemented — the engine executes those natively; the textual
// expansion mirrors the paper's worked examples.
//
// A query without measure references is returned unchanged.
Result<std::string> ExpandMeasures(const SelectStmt& query,
                                   const Catalog& catalog,
                                   const std::string& user);

}  // namespace msql

#endif  // MSQL_MEASURE_EXPAND_H_

#include "measure/grouped.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "exec/eval.h"
#include "exec/vector_eval.h"
#include "measure/cse.h"
#include "runtime/circuit_breaker.h"
#include "runtime/parallel.h"
#include "runtime/shared_cache.h"
#include "runtime/thread_pool.h"

namespace msql {

namespace {

// Private ExecState for one parallel worker: option snapshot, a guard fork
// (shared deadline/cancellation, zero charges) and the catalog generation.
// Caches, the shared cache, the profile hook and the pool provider stay
// unset — workers touch no cross-thread state and must never re-enter the
// pool they run on.
ExecState ForkWorkerState(const ExecState& s) {
  ExecState w;
  w.options = s.options;
  w.guard = s.guard.ForkWorker();
  w.catalog_generation = s.catalog_generation;
  w.depth = s.depth;
  return w;
}

// Folds a joined worker's guard charges and measure counters back into the
// query state. The guard merge can itself trip the merged budget.
Status JoinWorkerState(ExecState* state, const ExecState& w) {
  state->measure_evals += w.measure_evals;
  state->measure_cache_hits += w.measure_cache_hits;
  state->measure_source_scans += w.measure_source_scans;
  state->measure_inline_evals += w.measure_inline_evals;
  state->measure_grouped_builds += w.measure_grouped_builds;
  state->measure_grouped_probes += w.measure_grouped_probes;
  state->measure_grouped_fallbacks += w.measure_grouped_fallbacks;
  state->measure_parallel_tasks += w.measure_parallel_tasks;
  state->exec_vectorized_batches += w.exec_vectorized_batches;
  state->exec_row_fallbacks += w.exec_row_fallbacks;
  return state->guard.MergeWorker(w.guard);
}

// The measure pool, or null when parallel evaluation is unavailable here:
// single-threaded by option, or running on a worker (no provider).
ThreadPool* MeasurePoolOrNull(ExecState* state) {
  if (state->options.measure_parallelism == 1) return nullptr;
  if (!state->measure_pool_provider) return nullptr;
  return state->measure_pool_provider();
}

// Evaluates the index's dimension tuple for source row `i` into *key.
Status EvalKeyRow(const GroupedIndex& index, const Relation& src, int64_t i,
                  Evaluator* ev, RowStack* stack, Row* key) {
  (*stack)[0] = Frame{&src.rows[i], i, &src};
  key->resize(index.dim_exprs.size());
  for (size_t d = 0; d < index.dim_exprs.size(); ++d) {
    MSQL_ASSIGN_OR_RETURN((*key)[d], ev->Eval(*index.dim_exprs[d], *stack));
  }
  return Status::Ok();
}

// Phase 1 of the build: one dimension tuple per source row, evaluated
// morsel-parallel when a pool is available and the expressions allow it.
// Output is position-indexed (keys[i]), so scheduling cannot affect it.
Status EvalAllKeyRows(const GroupedIndex& index, const Relation& src,
                      std::vector<Row>* keys, ExecState* state) {
  const int64_t n = static_cast<int64_t>(src.rows.size());

  // Columnar fast path: when every dimension expression has a vector
  // kernel, evaluate each once over the whole source and transpose into the
  // position-indexed key rows. Same values in the same positions as the
  // scalar loop, no per-row stack churn.
  if (VectorizedGate(state) == VectorGate::kOk) {
    auto arena = std::make_shared<Arena>();
    std::vector<ColumnPtr> dim_cols;
    dim_cols.reserve(index.dim_exprs.size());
    bool all = true;
    for (const auto& e : index.dim_exprs) {
      auto col = EvalVector(*e, src, arena, state);
      MSQL_RETURN_IF_ERROR(col.status());
      if (col.value() == nullptr) {
        all = false;
        break;
      }
      dim_cols.push_back(col.take());
    }
    if (all) {
      state->exec_vectorized_batches += static_cast<uint64_t>(NumBatches(n));
      for (int64_t i = 0; i < n; ++i) {
        if ((i & (kRowsPerBatch - 1)) == 0) {
          MSQL_RETURN_IF_ERROR(state->guard.Check());
        }
        Row& key = (*keys)[i];
        key.resize(dim_cols.size());
        for (size_t d = 0; d < dim_cols.size(); ++d) {
          key[d] = dim_cols[d]->At(i);
        }
      }
      return Status::Ok();
    }
    ++state->exec_row_fallbacks;
  }

  ThreadPool* pool = MeasurePoolOrNull(state);
  if (pool != nullptr) {
    for (const auto& e : index.dim_exprs) {
      if (!IsParallelSafe(*e)) {
        pool = nullptr;
        break;
      }
    }
  }
  ParallelForOptions popts;
  popts.max_workers = state->options.measure_parallelism;
  const int workers = PlanParallelWorkers(pool, n, popts);
  if (workers <= 1) {
    Evaluator ev(state);
    RowStack stack(1);
    for (int64_t i = 0; i < n; ++i) {
      MSQL_RETURN_IF_ERROR(state->guard.Check());
      MSQL_RETURN_IF_ERROR(EvalKeyRow(index, src, i, &ev, &stack, &(*keys)[i]));
    }
    return Status::Ok();
  }

  std::vector<ExecState> ws;
  ws.reserve(workers);
  for (int w = 0; w < workers; ++w) ws.push_back(ForkWorkerState(*state));
  Status st = ParallelFor(
      pool, n, workers, popts,
      [&](int w, int64_t begin, int64_t end) -> Status {
        ExecState& wstate = ws[w];
        Evaluator ev(&wstate);
        RowStack stack(1);
        for (int64_t i = begin; i < end; ++i) {
          MSQL_RETURN_IF_ERROR(wstate.guard.Check());
          MSQL_RETURN_IF_ERROR(
              EvalKeyRow(index, src, i, &ev, &stack, &(*keys)[i]));
        }
        return Status::Ok();
      });
  state->measure_parallel_tasks += workers;
  for (const ExecState& w : ws) {
    Status merged = JoinWorkerState(state, w);
    if (st.ok() && !merged.ok()) st = merged;
  }
  return st;
}

// Rough residency of a built index, for guard charging and the shared
// cache's byte budget: row-id payload plus per-group key and node costs.
uint64_t ApproxIndexBytes(const GroupedIndex& index, int64_t rows) {
  uint64_t bytes = sizeof(GroupedIndex) + rows * sizeof(int64_t);
  for (const auto& [key, ids] : index.groups) {
    bytes += sizeof(void*) * 8;  // node, bucket and vector bookkeeping
    for (const Value& v : key) bytes += sizeof(Value) + v.str().size();
    (void)ids;
  }
  return bytes;
}

}  // namespace

ContextShape ShapeOf(const EvalContext& ctx) {
  ContextShape shape;
  if (ctx.empty()) return shape;
  for (const ContextTerm& t : ctx.terms()) {
    if (t.kind != ContextTerm::Kind::kDimEq) return ContextShape{};
    shape.dims.push_back(&t);
  }
  std::sort(shape.dims.begin(), shape.dims.end(),
            [](const ContextTerm* a, const ContextTerm* b) {
              return a->key < b->key;
            });
  std::vector<std::string> keys;
  keys.reserve(shape.dims.size());
  for (const ContextTerm* t : shape.dims) keys.push_back(t->key);
  shape.signature = StrCat("g:", Join(keys, "&"));
  return shape;
}

Result<std::shared_ptr<const GroupedIndex>> GetOrBuildGroupedIndex(
    const RtMeasure& m, const ContextShape& shape, ExecState* state) {
  // Per-query layer: source pointer identity is stable within one bind. A
  // cached null marks a degraded build — stay on the scan path for the rest
  // of the query instead of re-tripping the checkpoint per context.
  const std::string local_key =
      StrCat("gi|", reinterpret_cast<uintptr_t>(m.source.get()), "|",
             shape.signature);
  auto it = state->grouped_index_cache.find(local_key);
  if (it != state->grouped_index_cache.end()) return it->second;

  // Cross-query layer: same keying discipline as scalar measure values
  // (generation + structural fingerprint), under a "gi|" prefix. Shape
  // signatures never embed subquery renderings — TranslateToSource rejects
  // subqueries in dimension predicates — so the key is injective.
  std::string shared_key;
  if (state->shared_cache != nullptr && m.fingerprint != nullptr) {
    shared_key = StrCat("gi|", state->catalog_generation, "|",
                        state->param_sig, "|", *m.fingerprint, "|",
                        shape.signature);
    std::shared_ptr<const void> obj;
    if (state->shared_cache->LookupObject(shared_key, &obj)) {
      ++state->shared_cache_hits;
      auto index = std::static_pointer_cast<const GroupedIndex>(obj);
      state->grouped_index_cache.emplace(local_key, index);
      return index;
    }
    ++state->shared_cache_misses;
  }

  // Degradable checkpoint, guarded by the grouped-build circuit breaker: an
  // injected fault here abandons the index (the fallback counter records
  // it) and the caller scans instead — grouped evaluation is an
  // optimization, so its build must never fail a query. While the breaker
  // is open (builds failing persistently) the build is skipped outright,
  // trading probe speed for not paying the failure on every query.
  CircuitBreaker* breaker = state->grouped_build_breaker;
  if (breaker != nullptr && !breaker->Allow()) {
    ++state->measure_grouped_fallbacks;
    ++state->breaker_short_circuits;
    state->grouped_index_cache.emplace(local_key, nullptr);
    return std::shared_ptr<const GroupedIndex>();
  }
  if (FaultInjector::Instance().active()) {
    Status st =
        FaultInjector::Instance().Checkpoint("measure.grouped_index_build");
    if (!st.ok()) {
      if (breaker != nullptr) breaker->RecordFailure();
      ++state->measure_grouped_fallbacks;
      state->grouped_index_cache.emplace(local_key, nullptr);
      return std::shared_ptr<const GroupedIndex>();
    }
  }

  const Relation& src = *m.source;
  const int64_t n = static_cast<int64_t>(src.rows.size());
  auto index = std::make_shared<GroupedIndex>();
  index->dim_exprs.reserve(shape.dims.size());
  for (const ContextTerm* t : shape.dims) {
    index->dim_exprs.push_back(t->src_expr);
  }

  // Phase 1 (parallel): dimension tuples, position-indexed. Phase 2
  // (serial, row order): the hash partition — group discovery order and the
  // ascending row-id lists are therefore scheduling-independent.
  std::vector<Row> keys(n);
  MSQL_RETURN_IF_ERROR(EvalAllKeyRows(*index, src, &keys, state));
  index->groups.reserve(static_cast<size_t>(n / 4 + 1));
  for (int64_t i = 0; i < n; ++i) {
    index->groups.try_emplace(std::move(keys[i])).first->second.push_back(i);
  }
  index->approx_bytes = ApproxIndexBytes(*index, n);
  ++state->measure_grouped_builds;
  if (breaker != nullptr) breaker->RecordSuccess();

  std::shared_ptr<const GroupedIndex> result = std::move(index);
  state->grouped_index_cache.emplace(local_key, result);
  if (!shared_key.empty() && AdmitSharedCacheFill(state)) {
    MSQL_RETURN_IF_ERROR(state->guard.ChargeBytes(result->approx_bytes));
    state->shared_cache->InsertObject(shared_key, result, result->approx_bytes,
                                      state->catalog_generation);
  }
  return result;
}

Result<Value> EvalGroupedProbe(const GroupedIndex& index, const RtMeasure& m,
                               const ContextShape& shape, ExecState* state) {
  ++state->measure_grouped_probes;
  Row key;
  key.reserve(shape.dims.size());
  for (const ContextTerm* t : shape.dims) key.push_back(t->value);
  static const std::vector<int64_t> kNoRows;
  auto it = index.groups.find(key);
  const std::vector<int64_t>& rows =
      it == index.groups.end() ? kNoRows : it->second;
  return EvalFormulaOverRows(*m.formula, *m.source, rows, state);
}

bool IsParallelSafe(const BoundExpr& e) {
  switch (e.kind) {
    case BoundExprKind::kSubquery:
    case BoundExprKind::kInSubquery:
    case BoundExprKind::kExists:
    case BoundExprKind::kMeasureEval:
    case BoundExprKind::kCurrent:
      return false;
    default:
      break;
  }
  for (const auto& a : e.args) {
    if (a != nullptr && !IsParallelSafe(*a)) return false;
  }
  if (e.filter != nullptr && !IsParallelSafe(*e.filter)) return false;
  for (const auto& [when, then] : e.when_clauses) {
    if (when != nullptr && !IsParallelSafe(*when)) return false;
    if (then != nullptr && !IsParallelSafe(*then)) return false;
  }
  if (e.else_expr != nullptr && !IsParallelSafe(*e.else_expr)) return false;
  if (e.operand != nullptr && !IsParallelSafe(*e.operand)) return false;
  if (e.current_dim != nullptr && !IsParallelSafe(*e.current_dim)) {
    return false;
  }
  return true;
}

Result<std::vector<Value>> EvaluateMeasureBatch(
    const RtMeasure& m, const std::vector<EvalContext>& contexts,
    ExecState* state) {
  std::vector<Value> out(contexts.size());
  const size_t n = contexts.size();
  auto serial = [&](const std::vector<int64_t>& positions) -> Status {
    for (int64_t i : positions) {
      MSQL_ASSIGN_OR_RETURN(out[i], EvaluateMeasure(m, contexts[i], state));
    }
    return Status::Ok();
  };
  std::vector<int64_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<int64_t>(i);

  // The batch fast path exists for parallel probes; everything else goes
  // through EvaluateMeasure one context at a time (which still builds and
  // probes the shared index under kGrouped — just on the calling thread).
  constexpr size_t kMinParallelProbes = 8;
  const bool eligible =
      state->options.measure_strategy == MeasureStrategy::kGrouped &&
      n >= kMinParallelProbes && MeasurePoolOrNull(state) != nullptr &&
      IsParallelSafe(*m.formula);
  if (!eligible) {
    MSQL_RETURN_IF_ERROR(serial(all));
    return out;
  }

  // One shape per batch or bust: mixed shapes mean mixed indexes, which the
  // per-context path already handles.
  std::vector<ContextShape> shapes;
  shapes.reserve(n);
  for (const EvalContext& ctx : contexts) {
    shapes.push_back(ShapeOf(ctx));
    if (!shapes.back().groupable() ||
        shapes.back().signature != shapes[0].signature) {
      MSQL_RETURN_IF_ERROR(serial(all));
      return out;
    }
  }

  MSQL_ASSIGN_OR_RETURN(std::shared_ptr<const GroupedIndex> index,
                        GetOrBuildGroupedIndex(m, shapes[0], state));
  if (index == nullptr) {  // degraded build: scan per context
    MSQL_RETURN_IF_ERROR(serial(all));
    return out;
  }

  // Serve memo hits serially (the per-query cache is not thread-safe),
  // mirroring EvaluateMeasure's counting for each.
  std::vector<std::string> memo_keys(n);
  std::vector<std::string> shared_keys(n);
  std::vector<int64_t> pending;
  pending.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    MSQL_RETURN_IF_ERROR(state->guard.Check());
    ++state->measure_evals;
    const std::string signature = contexts[i].Signature();
    memo_keys[i] = MeasureMemoKey(m, signature);
    auto hit = state->measure_cache.find(memo_keys[i]);
    if (hit != state->measure_cache.end()) {
      ++state->measure_cache_hits;
      out[i] = hit->second;
      continue;
    }
    shared_keys[i] = MeasureSharedKey(m, *state, signature);
    if (!shared_keys[i].empty()) {
      Value v;
      if (state->shared_cache->Lookup(shared_keys[i], &v)) {
        ++state->shared_cache_hits;
        state->measure_cache.emplace(memo_keys[i], v);
        out[i] = std::move(v);
        continue;
      }
      ++state->shared_cache_misses;
    }
    pending.push_back(static_cast<int64_t>(i));
  }
  if (pending.size() < kMinParallelProbes) {
    // Too few probes to pay the fork/join; counters for these contexts were
    // already recorded, so probe directly instead of via EvaluateMeasure.
    for (int64_t i : pending) {
      MSQL_ASSIGN_OR_RETURN(out[i],
                            EvalGroupedProbe(*index, m, shapes[i], state));
      MSQL_RETURN_IF_ERROR(
          PublishSharedMeasure(shared_keys[i], out[i], state));
      state->measure_cache.emplace(memo_keys[i], out[i]);
    }
    return out;
  }

  // Morsel-parallel probes: one context per morsel (a probe aggregates a
  // whole group, so per-element scheduling is the right granularity).
  // Results land position-indexed; memo and shared-cache publication happen
  // serially after the join.
  ThreadPool* pool = MeasurePoolOrNull(state);
  ParallelForOptions popts;
  popts.morsel_rows = 1;
  popts.max_workers = state->options.measure_parallelism;
  const int workers =
      PlanParallelWorkers(pool, static_cast<int64_t>(pending.size()), popts);
  std::vector<ExecState> ws;
  ws.reserve(workers);
  for (int w = 0; w < workers; ++w) ws.push_back(ForkWorkerState(*state));
  Status st = ParallelFor(
      pool, static_cast<int64_t>(pending.size()), workers, popts,
      [&](int w, int64_t begin, int64_t end) -> Status {
        ExecState& wstate = ws[w];
        for (int64_t j = begin; j < end; ++j) {
          MSQL_RETURN_IF_ERROR(wstate.guard.Check());
          const int64_t i = pending[j];
          MSQL_ASSIGN_OR_RETURN(
              out[i], EvalGroupedProbe(*index, m, shapes[i], &wstate));
        }
        return Status::Ok();
      });
  state->measure_parallel_tasks += workers;
  for (const ExecState& w : ws) {
    Status merged = JoinWorkerState(state, w);
    if (st.ok() && !merged.ok()) st = merged;
  }
  MSQL_RETURN_IF_ERROR(st);
  for (int64_t i : pending) {
    MSQL_RETURN_IF_ERROR(PublishSharedMeasure(shared_keys[i], out[i], state));
    state->measure_cache.emplace(memo_keys[i], out[i]);
  }
  return out;
}

}  // namespace msql

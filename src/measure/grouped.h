#ifndef MSQL_MEASURE_GROUPED_H_
#define MSQL_MEASURE_GROUPED_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/exec_state.h"
#include "exec/relation.h"
#include "measure/context.h"

namespace msql {

// Grouped measure evaluation (MeasureStrategy::kGrouped, the default; see
// docs/PERFORMANCE.md).
//
// Every GROUP BY — and every per-row call site — produces a batch of
// evaluation contexts with the same *shape*: identical dimension-term
// expressions, differing only in the pinned values. Instead of scanning
// the measure source once per context (O(G x R)), the grouped strategy
// partitions the source ONCE with a hash index keyed on the dimension
// tuple (IS NOT DISTINCT FROM equality, matching the paper's footnote-1
// NULL semantics) and answers each context with an O(1) probe — O(R + G).
// The index build and the probe batches run morsel-parallel on the
// runtime's ThreadPool (runtime/parallel.h) with per-worker guard forks,
// and the index is shared across concurrent sessions through the
// SharedMeasureCache, keyed by (generation, source fingerprint, shape).
//
// Contexts containing predicate terms (AT (WHERE ...), whose translated
// predicates close over per-row values and so never repeat) or row-id
// terms (VISIBLE, already served by the section 6.4 inline fast path) are
// not groupable and take the existing scan/inline paths.

// IS NOT DISTINCT FROM hashing/equality for dimension tuples, matching the
// executor's GROUP BY key semantics.
struct GroupKeyHash {
  size_t operator()(const Row& r) const { return HashRow(r, r.size()); }
};
struct GroupKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    return RowsNotDistinct(a, b);
  }
};

// The batchable skeleton of an evaluation context: its dimension terms in
// canonical (key-sorted) order, and a signature that keeps the dimension
// keys while stripping the pinned values. Two contexts share an index iff
// their signatures match.
struct ContextShape {
  std::vector<const ContextTerm*> dims;  // borrowed from the EvalContext
  std::string signature;                 // "g:k1&k2&..."; empty = ungroupable
  bool groupable() const { return !signature.empty(); }
};

// Shape of `ctx`: groupable iff it is non-empty and every term is a
// dimension equality. The returned term pointers borrow from `ctx`.
ContextShape ShapeOf(const EvalContext& ctx);

// Immutable dimension-tuple partition of a measure source: each distinct
// tuple of dimension-expression values maps to the ascending row indexes
// that produced it (deterministic: the map is filled in row order from a
// position-indexed key array, however the key evaluation was scheduled).
struct GroupedIndex {
  std::vector<std::shared_ptr<const BoundExpr>> dim_exprs;  // shape order
  std::unordered_map<Row, std::vector<int64_t>, GroupKeyHash, GroupKeyEq>
      groups;
  uint64_t approx_bytes = 0;
};

// Returns the index for (m.source, shape), from the per-query cache, the
// cross-query SharedMeasureCache, or a fresh (possibly parallel) build.
// Returns null — after bumping measure_grouped_fallbacks — when the build
// was degraded at the `measure.grouped_index_build` fault checkpoint;
// callers then fall back to the scan path, never failing the query.
Result<std::shared_ptr<const GroupedIndex>> GetOrBuildGroupedIndex(
    const RtMeasure& m, const ContextShape& shape, ExecState* state);

// O(1) probe: evaluates the formula over the rows admitted by the context
// that produced `shape` (an absent tuple aggregates over zero rows).
Result<Value> EvalGroupedProbe(const GroupedIndex& index, const RtMeasure& m,
                               const ContextShape& shape, ExecState* state);

// True when `e` can be evaluated on a worker thread against a private
// ExecState: no subqueries, nested measure references or CURRENT nodes
// (those reach through shared per-query state). Dimension expressions are
// safe by construction — TranslateToSource rejects all of these — so this
// gate matters for measure formulas in parallel probe batches.
bool IsParallelSafe(const BoundExpr& e);

// Batch call-site API, used by the executor's Aggregate operator and the
// engine's top-level render loop: evaluates `m` once per context, routing
// same-shaped dimension contexts through one shared index with the probe
// evaluations morsel-parallel across the pool, and everything else through
// EvaluateMeasure one at a time. Results are positionally aligned with
// `contexts`, and identical to the per-context serial path under every
// strategy.
Result<std::vector<Value>> EvaluateMeasureBatch(
    const RtMeasure& m, const std::vector<EvalContext>& contexts,
    ExecState* state);

}  // namespace msql

#endif  // MSQL_MEASURE_GROUPED_H_

#include "net/admin.h"

#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace msql::net {

namespace {

// Poll slice for the accept loop: bounds how long Stop() can lag.
constexpr int kPollTimeoutMs = 50;
// Per-request socket budget; an admin client slower than this is dropped.
constexpr int64_t kIoTimeoutMs = 2000;
// Request lines beyond this are rejected (no admin request is this long).
constexpr size_t kMaxRequestBytes = 4096;

Status FaultAt(const char* site) {
  if (FaultInjector::Instance().active()) {
    return FaultInjector::Instance().Checkpoint(site);
  }
  return Status::Ok();
}

// Reads from `fd` until a blank line terminates the request head.
Status ReadRequestHead(int fd, std::string* head) {
  char buf[1024];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(kIoTimeoutMs);
  while (head->find("\r\n\r\n") == std::string::npos &&
         head->find("\n\n") == std::string::npos) {
    if (head->size() > kMaxRequestBytes) {
      return Status(ErrorCode::kInvalidArgument, "admin request too large");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status(ErrorCode::kDeadlineExceeded, "admin request timed out");
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc =
        poll(&pfd, 1,
             static_cast<int>(std::chrono::duration_cast<
                                  std::chrono::milliseconds>(deadline - now)
                                  .count()));
    if (rc <= 0) continue;
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got == 0) {
      return Status(ErrorCode::kIo, "connection closed mid-request");
    }
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status(ErrorCode::kIo, StrCat("recv: ", strerror(errno)));
    }
    head->append(buf, static_cast<size_t>(got));
  }
  return Status::Ok();
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  return StrCat("HTTP/1.1 ", code, " ", reason,
                "\r\nContent-Type: ", content_type,
                "\r\nContent-Length: ", body.size(),
                "\r\nConnection: close\r\n\r\n", body);
}

}  // namespace

AdminServer::AdminServer(std::string host, uint16_t port, AdminHooks hooks,
                         obs::MetricsRegistry* registry)
    : host_(std::move(host)), port_(port), hooks_(std::move(hooks)) {
  requests_ = registry->GetCounter("msql_net_admin_requests_total",
                                   "HTTP requests served by the admin "
                                   "endpoint");
  errors_ = registry->GetCounter(
      "msql_net_admin_errors_total",
      "Admin endpoint requests that failed (accept, parse or write; the "
      "query path is unaffected)");
}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  if (running_.exchange(true)) {
    return Status(ErrorCode::kInvalidArgument, "admin server already started");
  }
  stopping_.store(false);
  MSQL_ASSIGN_OR_RETURN(listener_,
                        ListenOn(host_, port_, /*backlog=*/16, &port_));
  MSQL_RETURN_IF_ERROR(SetNonBlocking(listener_.fd(), true));
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void AdminServer::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
  listener_.Close();
  running_.store(false);
}

void AdminServer::Loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int rc = poll(&pfd, 1, kPollTimeoutMs);
    if (rc <= 0) continue;
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    if (Status fault = FaultAt("net.admin_http"); !fault.ok()) {
      // Injected accept-path failure: the scrape is dropped and counted;
      // nothing else in the server notices.
      errors_->Increment();
      ::close(fd);
      continue;
    }
    // Requests are served inline on the admin thread: one small response
    // at a time, bounded by the I/O timeout. A slow scraper delays other
    // scrapers, never queries.
    ServeOne(fd);
    ::close(fd);
  }
}

void AdminServer::ServeOne(int fd) {
  std::string head;
  if (Status st = ReadRequestHead(fd, &head); !st.ok()) {
    errors_->Increment();
    return;
  }
  // Request line: METHOD SP PATH[?query] SP VERSION.
  const size_t line_end = head.find_first_of("\r\n");
  const std::string line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    errors_->Increment();
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query;
  if (const size_t qpos = target.find('?'); qpos != std::string::npos) {
    query = target.substr(qpos + 1);
    target = target.substr(0, qpos);
  }

  std::string response;
  if (method != "GET") {
    response = HttpResponse(405, "Method Not Allowed", "text/plain",
                            "only GET is supported\n");
  } else if (target == "/metrics") {
    response = HttpResponse(
        200, "OK", "text/plain; version=0.0.4",
        hooks_.metrics_text ? hooks_.metrics_text() : std::string());
  } else if (target == "/healthz") {
    const bool ok = hooks_.healthy ? hooks_.healthy() : false;
    response = ok ? HttpResponse(200, "OK", "text/plain", "ok\n")
                  : HttpResponse(503, "Service Unavailable", "text/plain",
                                 "draining\n");
  } else if (target == "/statusz") {
    response = HttpResponse(
        200, "OK", "application/json",
        hooks_.statusz_json ? hooks_.statusz_json() : std::string("{}"));
  } else if (target == "/tracez") {
    int64_t min_ms = 0;
    // Single recognized parameter: min_ms=<n> filters out fast queries.
    if (const size_t pos = query.find("min_ms="); pos != std::string::npos) {
      min_ms = std::strtoll(query.c_str() + pos + 7, nullptr, 10);
    }
    response = HttpResponse(200, "OK", "application/json",
                            hooks_.tracez_json ? hooks_.tracez_json(min_ms)
                                               : std::string("[]"));
  } else {
    response = HttpResponse(404, "Not Found", "text/plain",
                            "unknown admin path\n");
  }

  if (Status fault = FaultAt("net.admin_http"); !fault.ok()) {
    // Injected write-path failure: the response is dropped and counted.
    errors_->Increment();
    return;
  }
  if (Status st = WriteAll(fd, response.data(), response.size(), kIoTimeoutMs);
      !st.ok()) {
    errors_->Increment();
    return;
  }
  requests_->Increment();
}

}  // namespace msql::net

#ifndef MSQL_NET_ADMIN_H_
#define MSQL_NET_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/socket.h"
#include "obs/metrics.h"

// The msqld admin plane (docs/OBSERVABILITY.md, "Operating msqld"): a tiny
// HTTP/1.1 listener, completely separate from the wire-protocol data path,
// serving
//
//   GET /metrics          Prometheus text exposition
//   GET /healthz          200 "ok" while serving, 503 once draining
//   GET /statusz          JSON: per-connection state
//   GET /tracez[?min_ms=] JSON: recent query traces
//
// One thread, one request per connection, bounded request size, short
// socket timeouts: an admin scrape can never occupy a query handler, and
// admin failures (including those injected at the `net.admin_http` fault
// point) degrade to the msql_net_admin_errors_total counter — they are
// invisible to the query path.
namespace msql::net {

// Content sources for the endpoints; every hook must be thread-safe (they
// run on the admin thread while queries execute elsewhere).
struct AdminHooks {
  std::function<std::string()> metrics_text;              // /metrics
  std::function<bool()> healthy;                          // /healthz
  std::function<std::string()> statusz_json;              // /statusz
  std::function<std::string(int64_t min_ms)> tracez_json;  // /tracez
};

class AdminServer {
 public:
  // `registry` is borrowed for the admin request/error counters and must
  // outlive the server.
  AdminServer(std::string host, uint16_t port, AdminHooks hooks,
              obs::MetricsRegistry* registry);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Binds and starts the serving thread. port 0 picks an ephemeral port.
  Status Start();

  // Stops the serving thread and closes the listener. Idempotent.
  void Stop();

  // The bound port (after Start).
  uint16_t port() const { return port_; }

 private:
  void Loop();
  // Reads one request from `fd`, routes it, writes the response. Any
  // failure just counts on the error counter and closes the socket.
  void ServeOne(int fd);

  std::string host_;
  uint16_t port_;
  AdminHooks hooks_;
  obs::Counter* requests_ = nullptr;
  obs::Counter* errors_ = nullptr;

  Socket listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace msql::net

#endif  // MSQL_NET_ADMIN_H_

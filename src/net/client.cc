#include "net/client.h"

#include <utility>

#include "common/query_stats.h"
#include "common/string_util.h"

namespace msql::net {

Status Client::Connect(const std::string& host, uint16_t port,
                       ClientOptions options) {
  if (sock_.valid()) {
    return Status(ErrorCode::kInvalidArgument, "client already connected");
  }
  options_ = std::move(options);
  MSQL_ASSIGN_OR_RETURN(sock_,
                        ConnectTo(host, port, options_.connect_timeout_ms));
  HelloMsg hello;
  hello.version = kProtocolVersion;
  hello.user = options_.user;
  Status sent = SendFrame(FrameType::kHello, EncodeHello(hello));
  if (!sent.ok()) {
    sock_.Close();
    return sent;
  }
  Result<Frame> reply = ReadFrame();
  if (!reply.ok()) {
    sock_.Close();
    return reply.status();
  }
  if (reply.value().type == FrameType::kError) {
    sock_.Close();
    MSQL_ASSIGN_OR_RETURN(ErrorMsg err, DecodeError(reply.value().payload));
    return StatusFromError(err);
  }
  if (reply.value().type != FrameType::kHello) {
    sock_.Close();
    return Status(ErrorCode::kIo,
                  StrCat("handshake expected Hello, got ",
                         FrameTypeName(reply.value().type)));
  }
  Result<HelloMsg> ack = DecodeHello(reply.value().payload);
  if (!ack.ok()) {
    sock_.Close();
    return ack.status();
  }
  server_banner_ = ack.value().user;
  return Status::Ok();
}

void Client::Disconnect() {
  if (!sock_.valid()) return;
  CloseMsg close;
  close.stmt_id = 0;
  if (SendFrame(FrameType::kClose, EncodeClose(close)).ok()) {
    ReadAck().status();  // best effort: wait for the server's ack
  }
  sock_.Close();
}

Result<ResultSet> Client::Query(const std::string& sql, uint32_t timeout_ms) {
  if (!sock_.valid()) {
    return Status(ErrorCode::kInvalidArgument, "client is not connected");
  }
  QueryMsg msg;
  msg.sql = sql;
  msg.timeout_ms = timeout_ms;
  if (trace_enabled_) {
    msg.trace_flags = kTraceFlagEnabled;
    msg.trace_id = trace_id_;
  }
  MSQL_RETURN_IF_ERROR(SendFrame(FrameType::kQuery, EncodeQuery(msg)));
  return ReadResponse();
}

Result<ClientStatement> Client::Prepare(
    const std::string& sql, const std::vector<TypeKind>& param_types) {
  if (!sock_.valid()) {
    return Status(ErrorCode::kInvalidArgument, "client is not connected");
  }
  PrepareMsg msg;
  msg.sql = sql;
  msg.param_types = param_types;
  MSQL_RETURN_IF_ERROR(SendFrame(FrameType::kPrepare, EncodePrepare(msg)));
  MSQL_ASSIGN_OR_RETURN(ResultBatchMsg ack, ReadAck());
  ClientStatement stmt;
  stmt.stmt_id = ack.stmt_id;
  stmt.param_count = ack.param_count;
  return stmt;
}

Status Client::Bind(const ClientStatement& stmt, const Row& params) {
  if (!sock_.valid()) {
    return Status(ErrorCode::kInvalidArgument, "client is not connected");
  }
  BindMsg msg;
  msg.stmt_id = stmt.stmt_id;
  msg.params = params;
  MSQL_RETURN_IF_ERROR(SendFrame(FrameType::kBind, EncodeBind(msg)));
  return ReadAck().status();
}

Result<ResultSet> Client::Execute(const ClientStatement& stmt,
                                  uint32_t timeout_ms) {
  if (!sock_.valid()) {
    return Status(ErrorCode::kInvalidArgument, "client is not connected");
  }
  ExecuteMsg msg;
  msg.stmt_id = stmt.stmt_id;
  msg.timeout_ms = timeout_ms;
  if (trace_enabled_) {
    msg.trace_flags = kTraceFlagEnabled;
    msg.trace_id = trace_id_;
  }
  MSQL_RETURN_IF_ERROR(SendFrame(FrameType::kExecute, EncodeExecute(msg)));
  return ReadResponse();
}

Status Client::CloseStatement(const ClientStatement& stmt) {
  if (!sock_.valid()) {
    return Status(ErrorCode::kInvalidArgument, "client is not connected");
  }
  CloseMsg msg;
  msg.stmt_id = stmt.stmt_id;
  MSQL_RETURN_IF_ERROR(SendFrame(FrameType::kClose, EncodeClose(msg)));
  return ReadAck().status();
}

Status Client::Cancel() {
  if (!sock_.valid()) {
    return Status(ErrorCode::kInvalidArgument, "client is not connected");
  }
  return SendFrame(FrameType::kCancel, std::string());
}

Status Client::SendFrame(FrameType type, const std::string& payload) {
  std::string frame;
  AppendFrame(&frame, type, payload);
  return WriteAll(sock_.fd(), frame.data(), frame.size(),
                  options_.io_timeout_ms);
}

Result<Frame> Client::ReadFrame() {
  uint8_t header[kFrameHeaderBytes];
  MSQL_RETURN_IF_ERROR(
      ReadExact(sock_.fd(), header, sizeof(header), options_.io_timeout_ms));
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  if (len > kMaxFramePayload) {
    return Status(ErrorCode::kIo,
                  StrCat("frame payload of ", len, " bytes exceeds the ",
                         kMaxFramePayload, "-byte cap"));
  }
  const uint8_t type = header[4];
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    return Status(ErrorCode::kIo,
                  StrCat("unknown frame type ", static_cast<int>(type)));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(len);
  if (len > 0) {
    MSQL_RETURN_IF_ERROR(ReadExact(sock_.fd(), frame.payload.data(), len,
                                   options_.io_timeout_ms));
  }
  return frame;
}

Result<ResultBatchMsg> Client::ReadAck() {
  MSQL_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type == FrameType::kError) {
    MSQL_ASSIGN_OR_RETURN(ErrorMsg err, DecodeError(frame.payload));
    return StatusFromError(err);
  }
  if (frame.type != FrameType::kResultBatch) {
    return Status(ErrorCode::kIo, StrCat("expected ResultBatch ack, got ",
                                         FrameTypeName(frame.type)));
  }
  return DecodeResultBatch(frame.payload);
}

Result<ResultSet> Client::ReadResponse() {
  std::vector<std::string> columns;
  std::vector<DataType> types;
  std::vector<Row> rows;
  bool have_schema = false;
  while (true) {
    MSQL_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == FrameType::kError) {
      MSQL_ASSIGN_OR_RETURN(ErrorMsg err, DecodeError(frame.payload));
      return StatusFromError(err);
    }
    if (frame.type != FrameType::kResultBatch) {
      return Status(ErrorCode::kIo, StrCat("expected ResultBatch, got ",
                                           FrameTypeName(frame.type)));
    }
    MSQL_ASSIGN_OR_RETURN(ResultBatchMsg batch,
                          DecodeResultBatch(frame.payload));
    if (!have_schema) {
      columns = batch.columns;
      types.reserve(batch.types.size());
      for (TypeKind kind : batch.types) {
        DataType t;
        t.kind = kind;
        types.push_back(t);
      }
      have_schema = true;
    }
    for (Row& row : batch.rows) rows.push_back(std::move(row));
    if (batch.last) {
      ResultSet result(std::move(columns), std::move(types), std::move(rows));
      auto stats = std::make_shared<QueryStats>();
      stats->total_us = static_cast<int64_t>(batch.total_us);
      stats->plan_cache =
          static_cast<QueryStats::PlanCacheOutcome>(batch.plan_cache);
      if (batch.has_footer != 0) {
        stats->admission_wait_us = batch.admission_wait_us;
        stats->queue_wait_us = batch.queue_wait_us;
        stats->parse_us = batch.parse_us;
        stats->bind_us = batch.bind_us;
        stats->measure_expand_us = batch.measure_expand_us;
        stats->plan_us = batch.plan_us;
        stats->execute_us = batch.execute_us;
        stats->render_us = batch.render_us;
        stats->bytes_charged = batch.guard_bytes;
      }
      result.set_stats(std::move(stats));
      return result;
    }
  }
}

}  // namespace msql::net

#ifndef MSQL_NET_CLIENT_H_
#define MSQL_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/result_set.h"
#include "net/socket.h"
#include "net/wire.h"

// Blocking msqld client (docs/NETWORKING.md). One Client is one
// connection; it is strictly request/response and not thread-safe — use
// one Client per thread. Server Error frames come back as the embedded
// Status; transport failures surface as kIo/kDeadlineExceeded.
namespace msql::net {

struct ClientOptions {
  std::string user = "default";
  // Connect timeout; <= 0 waits indefinitely.
  int64_t connect_timeout_ms = 5000;
  // Per-call socket I/O budget (each read/write); <= 0 waits indefinitely.
  // Distinct from the statement-level timeout_ms fields, which the server
  // enforces.
  int64_t io_timeout_ms = 0;
};

// A prepared statement handle; valid while its Client is connected.
struct ClientStatement {
  uint32_t stmt_id = 0;
  int param_count = 0;
};

class Client {
 public:
  Client() = default;
  ~Client() { Disconnect(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and completes the Hello handshake.
  Status Connect(const std::string& host, uint16_t port,
                 ClientOptions options = {});

  // Sends a graceful Close (stmt_id 0) when possible, then closes.
  void Disconnect();

  bool connected() const { return sock_.valid(); }
  const std::string& server_banner() const { return server_banner_; }

  // One-shot text query. timeout_ms is the server-side statement budget
  // (0 = server default). The returned ResultSet carries QueryStats with
  // the server's total_us and plan-cache outcome attached.
  Result<ResultSet> Query(const std::string& sql, uint32_t timeout_ms = 0);

  // Prepared-statement flow: Prepare once, Bind/Execute many times.
  Result<ClientStatement> Prepare(const std::string& sql,
                                  const std::vector<TypeKind>& param_types);
  Status Bind(const ClientStatement& stmt, const Row& params);
  Result<ResultSet> Execute(const ClientStatement& stmt,
                            uint32_t timeout_ms = 0);
  Status CloseStatement(const ClientStatement& stmt);

  // Wire trace context for subsequent Query/Execute calls: when enabled,
  // statements carry kTraceFlagEnabled (+ the optional correlation id) and
  // the ResultSet's QueryStats gains the server's per-phase footer
  // (parse_us .. render_us, bytes_charged). The id is validated server-side
  // (kMaxTraceIdBytes printable ASCII); it is sent as given.
  void SetTrace(bool enabled, std::string trace_id = "") {
    trace_enabled_ = enabled;
    trace_id_ = std::move(trace_id);
  }
  bool trace_enabled() const { return trace_enabled_; }

  // Fire-and-forget cancel of the connection's in-flight statement. Safe
  // to call from another thread than the one blocked in Query/Execute
  // ONLY via a second Client is NOT possible — Cancel writes on this
  // connection's socket, so call it between requests or accept the race.
  Status Cancel();

 private:
  Status SendFrame(FrameType type, const std::string& payload);
  // Reads frames until an Error (returned as its Status) or a final
  // ResultBatch; rows accumulate across batches into *out.
  Result<ResultSet> ReadResponse();
  // Reads exactly one response frame (ack or Error) for Prepare/Bind/Close.
  Result<ResultBatchMsg> ReadAck();
  Result<Frame> ReadFrame();

  Socket sock_;
  ClientOptions options_;
  std::string server_banner_;
  bool trace_enabled_ = false;
  std::string trace_id_;
};

}  // namespace msql::net

#endif  // MSQL_NET_CLIENT_H_

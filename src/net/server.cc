#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <thread>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace msql::net {

namespace {

// Poll slice: short enough that write timeouts and Stop() are observed
// promptly even with no socket activity.
constexpr int kPollTimeoutMs = 50;

// Injected faults at the named site, callable from void-returning handler
// paths (MSQL_FAULT_POINT assumes a Status-returning scope).
Status FaultAt(const char* site) {
  if (FaultInjector::Instance().active()) {
    return FaultInjector::Instance().Checkpoint(site);
  }
  return Status::Ok();
}

}  // namespace

MsqldServer::MsqldServer(Engine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  obs::MetricsRegistry& reg = engine_->metrics();
  metrics_.connections = reg.GetCounter(
      "msql_net_connections_total", "Connections accepted by msqld");
  metrics_.frames_read = reg.GetCounter("msql_net_frames_read_total",
                                        "Wire frames parsed from clients");
  metrics_.frames_written = reg.GetCounter(
      "msql_net_frames_written_total", "Wire frames enqueued to clients");
  metrics_.bytes_read =
      reg.GetCounter("msql_net_bytes_read_total", "Bytes read from clients");
  metrics_.bytes_written = reg.GetCounter("msql_net_bytes_written_total",
                                          "Bytes written to clients");
  metrics_.queries = reg.GetCounter(
      "msql_net_queries_total", "Query/Execute statements dispatched");
  metrics_.errors_sent =
      reg.GetCounter("msql_net_errors_total", "Error frames sent to clients");
  metrics_.protocol_errors = reg.GetCounter(
      "msql_net_protocol_errors_total",
      "Connections dropped for malformed or out-of-order frames");
  metrics_.rate_limited = reg.GetCounter(
      "msql_net_rate_limited_total",
      "Statements shed by the per-user admission rate limit");
  metrics_.write_timeouts = reg.GetCounter(
      "msql_net_write_timeouts_total",
      "Connections dropped after pending output stalled for "
      "write_timeout_ms");
  metrics_.slow_client_sheds = reg.GetCounter(
      "msql_net_slow_client_sheds_total",
      "Responses shed with kResourceExhausted because a client's bounded "
      "output buffer overflowed");
  metrics_.connections_active =
      reg.GetGauge("msql_net_connections_active", "Open msqld connections");
}

MsqldServer::~MsqldServer() { Stop(); }

Status MsqldServer::Start() {
  if (running_.exchange(true)) {
    return Status(ErrorCode::kInvalidArgument, "server already started");
  }
  stopping_.store(false);
  MSQL_ASSIGN_OR_RETURN(
      listener_, ListenOn(options_.host, options_.port,
                          options_.listen_backlog, &port_));
  MSQL_RETURN_IF_ERROR(SetNonBlocking(listener_.fd(), true));

  user_limiters_ = std::make_unique<RateLimiterRegistry>(
      options_.per_user_rate_limit_qps, options_.per_user_rate_limit_burst);
  workers_ =
      std::make_unique<ThreadPool>(std::max(1, options_.num_worker_threads));

  const int nhandlers = std::max(1, options_.num_handler_threads);
  handlers_.clear();
  for (int i = 0; i < nhandlers; ++i) {
    auto handler = std::make_unique<Handler>();
    int fds[2];
    if (pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
      return Status(ErrorCode::kIo,
                    StrCat("pipe2: ", strerror(errno)));
    }
    handler->wake_read = fds[0];
    handler->wake_write = fds[1];
    handler->epfd = epoll_create1(EPOLL_CLOEXEC);
    if (handler->epfd < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return Status(ErrorCode::kIo,
                    StrCat("epoll_create1: ", strerror(errno)));
    }
    // The wake pipe lives in the epoll set with a null cookie so the loop
    // can tell it apart from connection events.
    epoll_event wake_ev{};
    wake_ev.events = EPOLLIN;
    wake_ev.data.ptr = nullptr;
    epoll_ctl(handler->epfd, EPOLL_CTL_ADD, handler->wake_read, &wake_ev);
    handlers_.push_back(std::move(handler));
  }
  for (auto& handler : handlers_) {
    Handler* h = handler.get();
    h->thread = std::thread([this, h] { HandlerLoop(h); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void MsqldServer::Stop() {
  if (!running_.load() || stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (size_t i = 0; i < handlers_.size(); ++i) WakeHandler(i);
  for (auto& handler : handlers_) {
    if (handler->thread.joinable()) handler->thread.join();
  }
  // Handler loops closed their connections (cancelling in-flight
  // statements); drain the worker pool so no task outlives the server.
  if (workers_ != nullptr) workers_->Shutdown();
  for (auto& handler : handlers_) {
    if (handler->epfd >= 0) ::close(handler->epfd);
    if (handler->wake_read >= 0) ::close(handler->wake_read);
    if (handler->wake_write >= 0) ::close(handler->wake_write);
  }
  handlers_.clear();
  listener_.Close();
  running_.store(false);
}

void MsqldServer::WakeHandler(size_t index) {
  if (index >= handlers_.size()) return;
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n =
      ::write(handlers_[index]->wake_write, &byte, 1);
}

void MsqldServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int rc = poll(&pfd, 1, kPollTimeoutMs);
    if (rc <= 0) continue;
    sockaddr_in peer;
    socklen_t len = sizeof(peer);
    int fd = accept4(listener_.fd(), reinterpret_cast<sockaddr*>(&peer),
                     &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) continue;
    if (Status fault = FaultAt("net.accept"); !fault.ok()) {
      // Injected accept failure: the connection is refused outright; the
      // client observes a clean close, the server keeps serving.
      ::close(fd);
      continue;
    }
    if (active_conns_.load(std::memory_order_acquire) >=
        static_cast<int>(options_.max_connections)) {
      // Over the connection cap we still answer with a typed error so the
      // client can distinguish shed from crash.
      std::string frames;
      AppendFrame(&frames, FrameType::kError,
                  EncodeError(ErrorFromStatus(Status(
                      ErrorCode::kResourceExhausted,
                      StrCat("connection limit reached (max_connections=",
                             options_.max_connections, ")")))));
      ::send(fd, frames.data(), frames.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    SetNoDelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->sock = Socket(fd);
    char ip[INET_ADDRSTRLEN] = {0};
    inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    conn->peer = StrCat(ip, ":", ntohs(peer.sin_port));
    const size_t index =
        next_handler_.fetch_add(1, std::memory_order_relaxed) %
        handlers_.size();
    conn->handler_index = index;
    metrics_.connections->Increment();
    metrics_.connections_active->Add(1.0);
    active_conns_.fetch_add(1, std::memory_order_acq_rel);
    {
      Handler* h = handlers_[index].get();
      std::lock_guard<std::mutex> lock(h->adopt_mu);
      h->adopting.push_back(std::move(conn));
    }
    WakeHandler(index);
  }
}

void MsqldServer::HandlerLoop(Handler* handler) {
  std::vector<ConnPtr> conns;
  std::vector<epoll_event> events(256);
  char scratch[64 * 1024];
  auto last_scan = std::chrono::steady_clock::now();

  while (true) {
    // Adopt newly accepted connections into the epoll set.
    {
      std::lock_guard<std::mutex> lock(handler->adopt_mu);
      for (ConnPtr& conn : handler->adopting) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.ptr = conn.get();
        if (epoll_ctl(handler->epfd, EPOLL_CTL_ADD, conn->sock.fd(), &ev) ==
            0) {
          conn->epoll_registered = true;
        }
        conns.push_back(std::move(conn));
      }
      handler->adopting.clear();
    }

    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping) {
      for (const ConnPtr& conn : conns) {
        if (!conn->dead.load()) {
          if (conn->session != nullptr) conn->session->Cancel();
          CloseConn(conn);
        }
      }
      // Keep conns alive until their in-flight workers finish enqueueing
      // (enqueue into a dead conn is a no-op); the pool Shutdown in Stop()
      // joins those workers before the server object dies.
      return;
    }

    const int nev =
        epoll_wait(handler->epfd, events.data(),
                   static_cast<int>(events.size()), kPollTimeoutMs);
    const auto now = std::chrono::steady_clock::now();

    // Event-driven servicing is O(ready connections). A periodic full scan
    // (on wakeups and at least every poll interval) covers everything the
    // epoll set can't see: deferred input after a statement finished,
    // connections awaiting close, write-stall timeouts, and reaping.
    bool full_scan =
        nev <= 0 || now - last_scan > std::chrono::milliseconds(kPollTimeoutMs);
    for (int i = 0; i < nev; ++i) {
      if (events[i].data.ptr == nullptr) {
        char drain[256];
        while (::read(handler->wake_read, drain, sizeof(drain)) > 0) {
        }
        full_scan = true;
        continue;
      }
      Conn* raw = static_cast<Conn*>(events[i].data.ptr);
      ServiceConn(handler, raw->shared_from_this(), events[i].events,
                  scratch, now);
    }
    if (!full_scan) continue;
    last_scan = now;
    for (const ConnPtr& conn : conns) {
      ServiceConn(handler, conn, 0, scratch, now);
    }

    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const ConnPtr& c) {
                                 return c->dead.load() &&
                                        !c->busy.load();
                               }),
                conns.end());
  }
}

void MsqldServer::ServiceConn(Handler* handler, const ConnPtr& conn,
                              uint32_t revents, char* scratch,
                              std::chrono::steady_clock::time_point now) {
  if (conn->dead.load(std::memory_order_acquire)) return;

  if (revents & EPOLLERR) {
    if (conn->session != nullptr) conn->session->Cancel();
    CloseConn(conn);
    return;
  }

  // Read side. EPOLLHUP without EPOLLIN also lands here so a half-close
  // is observed as read() == 0.
  if (!conn->saw_eof && (revents & (EPOLLIN | EPOLLHUP))) {
        bool fatal = false;
        while (true) {
          const ssize_t got =
              ::read(conn->sock.fd(), scratch, sizeof(scratch));
          if (got > 0) {
            metrics_.bytes_read->Increment(static_cast<uint64_t>(got));
            conn->inbuf.append(scratch, static_cast<size_t>(got));
            if (conn->inbuf.size() > options_.max_inbuf_bytes) {
              SendError(conn,
                        Status(ErrorCode::kResourceExhausted,
                               StrCat("input buffer overflow (cap ",
                                      options_.max_inbuf_bytes, " bytes)")));
              metrics_.protocol_errors->Increment();
              conn->close_after_flush.store(true);
              fatal = true;
              break;
            }
            continue;
          }
          if (got == 0) {
            // Half-close: no more requests. An in-flight statement is
            // cancelled (its kCancelled Error still flushes — the client
            // may have shut down only its write side); pending output is
            // flushed, then the connection closes.
            conn->saw_eof = true;
            if (conn->busy.load(std::memory_order_acquire) &&
                conn->session != nullptr) {
              conn->session->Cancel();
            }
            conn->close_after_flush.store(true);
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          if (conn->session != nullptr) conn->session->Cancel();
          CloseConn(conn);
          fatal = true;
          break;
        }
        if (fatal && conn->dead.load()) return;
      }

      ProcessInput(conn);
      if (conn->dead.load()) return;

      // Write side: flush as much pending output as the socket accepts.
      {
        std::unique_lock<std::mutex> lock(conn->out_mu);
        bool progressed = false;
        while (conn->out_off < conn->outbuf.size()) {
          if (Status fault = FaultAt("net.write_frame"); !fault.ok()) {
            // Injected write failure: never leave a half-written frame on
            // the wire — drop the connection at once.
            lock.unlock();
            if (conn->session != nullptr) conn->session->Cancel();
            CloseConn(conn);
            break;
          }
          const ssize_t put = ::send(
              conn->sock.fd(), conn->outbuf.data() + conn->out_off,
              conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
          if (put > 0) {
            conn->out_off += static_cast<size_t>(put);
            metrics_.bytes_written->Increment(static_cast<uint64_t>(put));
            progressed = true;
            continue;
          }
          if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (put < 0 && errno == EINTR) continue;
          lock.unlock();
          if (conn->session != nullptr) conn->session->Cancel();
          CloseConn(conn);
          break;
        }
        if (conn->dead.load()) return;
        if (conn->out_off >= conn->outbuf.size()) {
          conn->outbuf.clear();
          conn->out_off = 0;
          conn->write_stalled = false;
        } else if (progressed) {
          conn->write_stalled = false;
        } else if (!conn->write_stalled) {
          conn->write_stalled = true;
          conn->write_stall_since = now;
        } else if (options_.write_timeout_ms > 0 &&
                   now - conn->write_stall_since >
                       std::chrono::milliseconds(options_.write_timeout_ms)) {
          // Slow client: pending bytes made no progress for the whole
          // write budget. Drop it; healthy clients are unaffected.
          lock.unlock();
          metrics_.write_timeouts->Increment();
          if (conn->session != nullptr) conn->session->Cancel();
          CloseConn(conn);
          return;
        }
      }

      // Close once all output is flushed and nothing is in flight.
      if (conn->close_after_flush.load(std::memory_order_acquire) &&
          !conn->busy.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (conn->outbuf.size() <= conn->out_off) CloseConn(conn);
      }
      if (conn->dead.load(std::memory_order_acquire)) return;

      // Epoll interest maintenance. A closing or half-closed connection
      // leaves the set: level-triggered EPOLLHUP/EPOLLIN would otherwise
      // spin the loop; its remaining flush/close work rides the periodic
      // scans and FinishStatement wakeups instead.
      if (conn->saw_eof ||
          conn->close_after_flush.load(std::memory_order_acquire)) {
        if (conn->epoll_registered) {
          epoll_ctl(handler->epfd, EPOLL_CTL_DEL, conn->sock.fd(), nullptr);
          conn->epoll_registered = false;
        }
        return;
      }
      bool want_out;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        want_out = conn->outbuf.size() > conn->out_off;
      }
      if (conn->epoll_registered && want_out != conn->epoll_out) {
        epoll_event ev{};
        ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0);
        ev.data.ptr = conn.get();
        if (epoll_ctl(handler->epfd, EPOLL_CTL_MOD, conn->sock.fd(), &ev) ==
            0) {
          conn->epoll_out = want_out;
        }
      }
}

void MsqldServer::ProcessInput(const ConnPtr& conn) {
  while (!conn->dead.load(std::memory_order_acquire)) {
    size_t off = 0;
    Frame frame;
    Result<bool> parsed = TryParseFrame(conn->inbuf, &off, &frame);
    if (!parsed.ok()) {
      metrics_.protocol_errors->Increment();
      SendError(conn, parsed.status());
      conn->close_after_flush.store(true);
      return;
    }
    if (!parsed.value()) return;  // need more bytes

    // Publish "input is waiting" before checking busy: either the worker
    // (clearing busy) sees the flag and wakes us, or we see busy already
    // cleared and process the frame now.
    conn->deferred_input.store(true);
    if (conn->busy.load()) {
      // One statement in flight per connection: queued frames wait in the
      // input buffer, except Cancel, which must reach a running statement.
      if (frame.type != FrameType::kCancel) return;
    } else {
      conn->deferred_input.store(false);
    }
    conn->inbuf.erase(0, off);
    metrics_.frames_read->Increment();

    if (Status fault = FaultAt("net.read_frame"); !fault.ok()) {
      // Injected read-path failure: answer with a clean Error frame and
      // close after flush — never a hung or half-written connection.
      SendError(conn, fault);
      conn->close_after_flush.store(true);
      return;
    }

    DispatchFrame(conn, frame);
  }
}

void MsqldServer::DispatchFrame(const ConnPtr& conn, const Frame& frame) {
  if (frame.type == FrameType::kCancel) {
    if (conn->session != nullptr) conn->session->Cancel();
    return;  // fire-and-forget: the cancelled statement answers
  }
  if (!conn->authenticated) {
    if (frame.type != FrameType::kHello) {
      metrics_.protocol_errors->Increment();
      SendError(conn, Status(ErrorCode::kPermission,
                             StrCat("expected Hello before ",
                                    FrameTypeName(frame.type))));
      conn->close_after_flush.store(true);
      return;
    }
    HandleHello(conn, frame);
    return;
  }
  switch (frame.type) {
    case FrameType::kHello:
      metrics_.protocol_errors->Increment();
      SendError(conn, Status(ErrorCode::kInvalidArgument,
                             "connection already authenticated"));
      conn->close_after_flush.store(true);
      return;
    case FrameType::kQuery:
      DispatchQuery(conn, frame);
      return;
    case FrameType::kPrepare:
      DispatchPrepare(conn, frame);
      return;
    case FrameType::kBind:
      HandleBind(conn, frame);
      return;
    case FrameType::kExecute:
      DispatchExecute(conn, frame);
      return;
    case FrameType::kClose:
      HandleClose(conn, frame);
      return;
    case FrameType::kCancel:
    case FrameType::kResultBatch:
    case FrameType::kError:
      break;
  }
  metrics_.protocol_errors->Increment();
  SendError(conn, Status(ErrorCode::kInvalidArgument,
                         StrCat("unexpected ", FrameTypeName(frame.type),
                                " frame from client")));
  conn->close_after_flush.store(true);
}

void MsqldServer::HandleHello(const ConnPtr& conn, const Frame& frame) {
  Result<HelloMsg> msg = DecodeHello(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  if (msg.value().version != kProtocolVersion) {
    SendError(conn, Status(ErrorCode::kInvalidArgument,
                           StrCat("protocol version mismatch: server speaks ",
                                  kProtocolVersion, ", client sent ",
                                  msg.value().version)));
    conn->close_after_flush.store(true);
    return;
  }
  if (msg.value().user.empty()) {
    SendError(conn, Status(ErrorCode::kPermission,
                           "Hello must name a non-empty user"));
    conn->close_after_flush.store(true);
    return;
  }
  if (options_.max_connections_per_user > 0 &&
      engine_->ActiveSessionsForUser(msg.value().user) >=
          options_.max_connections_per_user) {
    SendError(conn,
              Status(ErrorCode::kResourceExhausted,
                     StrCat("user '", msg.value().user, "' is at its ",
                            options_.max_connections_per_user,
                            "-connection limit")));
    conn->close_after_flush.store(true);
    return;
  }
  conn->user = msg.value().user;
  conn->session = engine_->CreateSessionForUser(conn->user);
  conn->authenticated = true;
  HelloMsg reply;
  reply.version = kProtocolVersion;
  reply.user = "msqld";
  std::string frames;
  AppendFrame(&frames, FrameType::kHello, EncodeHello(reply));
  EnqueueFrames(conn, std::move(frames), 1);
}

void MsqldServer::HandleBind(const ConnPtr& conn, const Frame& frame) {
  Result<BindMsg> msg = DecodeBind(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  BindMsg& bind = msg.value();
  std::lock_guard<std::mutex> lock(conn->stmts_mu);
  auto it = conn->stmts.find(bind.stmt_id);
  if (it == conn->stmts.end()) {
    SendError(conn, Status(ErrorCode::kInvalidArgument,
                           StrCat("Bind for unknown statement id ",
                                  bind.stmt_id)));
    return;
  }
  const std::vector<TypeKind>& declared = it->second.plan->param_types;
  if (bind.params.size() != declared.size()) {
    SendError(conn,
              Status(ErrorCode::kInvalidArgument,
                     StrCat("statement ", bind.stmt_id, " declares ",
                            declared.size(), " parameter(s), Bind carried ",
                            bind.params.size())));
    return;
  }
  Row coerced;
  coerced.reserve(bind.params.size());
  for (size_t i = 0; i < bind.params.size(); ++i) {
    Result<Value> cast = bind.params[i].CastTo(declared[i]);
    if (!cast.ok()) {
      SendError(conn,
                Status(ErrorCode::kInvalidArgument,
                       StrCat("parameter $", i + 1, " type mismatch: "
                              "expected ", TypeKindName(declared[i]),
                              ", got ", TypeKindName(bind.params[i].kind()))));
      return;
    }
    coerced.push_back(cast.take());
  }
  it->second.params = std::move(coerced);
  it->second.bound = true;
  ResultBatchMsg ack;
  ack.stmt_id = bind.stmt_id;
  SendBatch(conn, ack);
}

void MsqldServer::HandleClose(const ConnPtr& conn, const Frame& frame) {
  Result<CloseMsg> msg = DecodeClose(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  ResultBatchMsg ack;
  ack.stmt_id = msg.value().stmt_id;
  if (msg.value().stmt_id == 0) {
    // Graceful connection close: ack, flush, close.
    SendBatch(conn, ack);
    conn->close_after_flush.store(true);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->stmts_mu);
    conn->stmts.erase(msg.value().stmt_id);
  }
  SendBatch(conn, ack);
}

void MsqldServer::DispatchQuery(const ConnPtr& conn, const Frame& frame) {
  Result<QueryMsg> msg = DecodeQuery(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  metrics_.queries->Increment();
  conn->busy.store(true, std::memory_order_release);
  if (!workers_->Submit([this, conn, m = msg.take()]() mutable {
        RunQuery(conn, std::move(m));
      })) {
    conn->busy.store(false, std::memory_order_release);
    SendError(conn, Status(ErrorCode::kCancelled, "server shutting down"));
    conn->close_after_flush.store(true);
  }
}

void MsqldServer::DispatchPrepare(const ConnPtr& conn, const Frame& frame) {
  Result<PrepareMsg> msg = DecodePrepare(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  const uint32_t stmt_id = conn->next_stmt_id++;
  conn->busy.store(true, std::memory_order_release);
  if (!workers_->Submit([this, conn, stmt_id, m = msg.take()]() mutable {
        RunPrepare(conn, stmt_id, std::move(m));
      })) {
    conn->busy.store(false, std::memory_order_release);
    SendError(conn, Status(ErrorCode::kCancelled, "server shutting down"));
    conn->close_after_flush.store(true);
  }
}

void MsqldServer::DispatchExecute(const ConnPtr& conn, const Frame& frame) {
  Result<ExecuteMsg> msg = DecodeExecute(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  metrics_.queries->Increment();
  conn->busy.store(true, std::memory_order_release);
  if (!workers_->Submit([this, conn, m = msg.value()] {
        RunExecute(conn, m);
      })) {
    conn->busy.store(false, std::memory_order_release);
    SendError(conn, Status(ErrorCode::kCancelled, "server shutting down"));
    conn->close_after_flush.store(true);
  }
}

Status MsqldServer::AdmitStatement(const ConnPtr& conn,
                                   uint32_t frame_timeout_ms,
                                   int64_t* remaining_timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  const int64_t timeout_ms = frame_timeout_ms > 0
                                 ? static_cast<int64_t>(frame_timeout_ms)
                                 : options_.default_timeout_ms;
  const bool has_deadline = timeout_ms > 0;
  const auto deadline = start + std::chrono::milliseconds(timeout_ms);

  if (user_limiters_->enabled()) {
    RateLimiter& limiter = user_limiters_->ForKey(conn->user);
    auto wait_deadline =
        start + std::chrono::milliseconds(options_.max_admission_wait_ms);
    if (has_deadline && deadline < wait_deadline) wait_deadline = deadline;
    while (true) {
      if (conn->dead.load(std::memory_order_acquire)) {
        return Status(ErrorCode::kCancelled,
                      "connection closed during admission");
      }
      const int64_t defer_us = limiter.TryAcquire();
      if (defer_us == 0) break;
      const auto now = std::chrono::steady_clock::now();
      if (has_deadline && now >= deadline) {
        return Status(ErrorCode::kDeadlineExceeded,
                      "deadline exceeded while rate-limit gated");
      }
      if (now + std::chrono::microseconds(defer_us) > wait_deadline) {
        metrics_.rate_limited->Increment();
        return Status(ErrorCode::kResourceExhausted,
                      StrCat("user '", conn->user,
                             "' admission rate limited (next token in ",
                             defer_us, "us, beyond the wait budget)"));
      }
      std::this_thread::sleep_for(
          std::min(std::chrono::microseconds(defer_us),
                   std::chrono::microseconds(1000)));
    }
  }

  if (!has_deadline) {
    *remaining_timeout_ms = 0;
    return Status::Ok();
  }
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) {
    return Status(ErrorCode::kDeadlineExceeded,
                  "deadline exceeded during admission");
  }
  // The budget given to the engine is net of admission wait, so wire
  // timeout_ms bounds the whole server-side round trip.
  *remaining_timeout_ms = std::max<int64_t>(
      1, std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
             .count());
  return Status::Ok();
}

void MsqldServer::RunQuery(const ConnPtr& conn, QueryMsg msg) {
  int64_t budget_ms = 0;
  Status admitted = AdmitStatement(conn, msg.timeout_ms, &budget_ms);
  Result<ResultSet> result = admitted.ok()
                                 ? [&] {
                                     conn->session->options().timeout_ms =
                                         budget_ms;
                                     return conn->session->Query(msg.sql);
                                   }()
                                 : Result<ResultSet>(admitted);
  if (result.ok()) {
    SendResult(conn, 0, result.value());
  } else {
    SendError(conn, result.status());
  }
  FinishStatement(conn);
}

void MsqldServer::RunPrepare(const ConnPtr& conn, uint32_t stmt_id,
                             PrepareMsg msg) {
  Result<PreparedPlanPtr> prepared =
      conn->session->Prepare(msg.sql, msg.param_types);
  if (!prepared.ok()) {
    SendError(conn, prepared.status());
  } else {
    {
      std::lock_guard<std::mutex> lock(conn->stmts_mu);
      StmtEntry entry;
      entry.plan = prepared.value();
      entry.bound = prepared.value()->param_types.empty();
      conn->stmts[stmt_id] = std::move(entry);
    }
    ResultBatchMsg ack;
    ack.stmt_id = stmt_id;
    ack.param_count = static_cast<uint16_t>(prepared.value()->param_count);
    SendBatch(conn, ack);
  }
  FinishStatement(conn);
}

void MsqldServer::RunExecute(const ConnPtr& conn, ExecuteMsg msg) {
  PreparedPlanPtr plan;
  Row params;
  Status setup = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(conn->stmts_mu);
    auto it = conn->stmts.find(msg.stmt_id);
    if (it == conn->stmts.end()) {
      setup = Status(ErrorCode::kInvalidArgument,
                     StrCat("Execute for unknown statement id ",
                            msg.stmt_id));
    } else if (!it->second.bound) {
      setup = Status(ErrorCode::kInvalidArgument,
                     StrCat("statement ", msg.stmt_id,
                            " has unbound parameters (send Bind first)"));
    } else {
      plan = it->second.plan;
      params = it->second.params;
    }
  }
  Result<ResultSet> result = setup.ok() ? Result<ResultSet>(ResultSet())
                                        : Result<ResultSet>(setup);
  if (setup.ok()) {
    int64_t budget_ms = 0;
    Status admitted = AdmitStatement(conn, msg.timeout_ms, &budget_ms);
    if (admitted.ok()) {
      conn->session->options().timeout_ms = budget_ms;
      result = conn->session->QueryPrepared(plan, params);
      if (!result.ok() && result.status().code() == ErrorCode::kCatalog) {
        // The catalog moved under the prepared plan. Re-prepare
        // transparently from the stored statement text and retry once;
        // the client never sees the generation bump.
        Result<PreparedPlanPtr> fresh =
            conn->session->Prepare(plan->sql, plan->param_types);
        if (fresh.ok()) {
          {
            std::lock_guard<std::mutex> lock(conn->stmts_mu);
            auto it = conn->stmts.find(msg.stmt_id);
            if (it != conn->stmts.end()) it->second.plan = fresh.value();
          }
          result = conn->session->QueryPrepared(fresh.value(), params);
        } else {
          result = fresh.status();
        }
      }
    } else {
      result = admitted;
    }
  }
  if (result.ok()) {
    SendResult(conn, msg.stmt_id, result.value());
  } else {
    SendError(conn, result.status());
  }
  FinishStatement(conn);
}

void MsqldServer::FinishStatement(const ConnPtr& conn) {
  conn->busy.store(false);  // seq_cst: pairs with the handler's defer check
  if (conn->deferred_input.load() ||
      conn->close_after_flush.load(std::memory_order_acquire) ||
      conn->dead.load(std::memory_order_acquire)) {
    WakeHandler(conn->handler_index);
  }
}

void MsqldServer::EnqueueFrames(const ConnPtr& conn, std::string frames,
                                size_t nframes) {
  if (conn->dead.load(std::memory_order_acquire)) return;
  bool overflow = false;
  bool flushed = false;
  bool fault_drop = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    const size_t pending = conn->outbuf.size() - conn->out_off;
    if (pending + frames.size() > options_.max_outbuf_bytes) {
      overflow = true;
    } else {
      conn->outbuf.append(frames);
      metrics_.frames_written->Increment(nframes);
      // Opportunistic inline flush: push the bytes out right here so the
      // common request/response cycle costs one handler wakeup (the read),
      // not two. EAGAIN or a socket error leaves the remainder for the
      // handler's poll-driven write path.
      while (conn->out_off < conn->outbuf.size() &&
             !conn->dead.load(std::memory_order_acquire)) {
        if (Status fault = FaultAt("net.write_frame"); !fault.ok()) {
          // Injected write failure: discard pending output (never leave a
          // half-written frame) and let the handler drop the connection.
          conn->outbuf.clear();
          conn->out_off = 0;
          conn->close_after_flush.store(true);
          fault_drop = true;
          break;
        }
        const ssize_t put =
            ::send(conn->sock.fd(), conn->outbuf.data() + conn->out_off,
                   conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
        if (put > 0) {
          conn->out_off += static_cast<size_t>(put);
          metrics_.bytes_written->Increment(static_cast<uint64_t>(put));
          continue;
        }
        if (put < 0 && errno == EINTR) continue;
        break;  // EAGAIN or a real error: the handler flush takes over
      }
      if (conn->out_off >= conn->outbuf.size()) {
        conn->outbuf.clear();
        conn->out_off = 0;
        conn->write_stalled = false;
        flushed = true;
      }
    }
  }
  if (fault_drop && conn->session != nullptr) conn->session->Cancel();
  if (flushed && !fault_drop &&
      !conn->close_after_flush.load(std::memory_order_acquire)) {
    return;  // everything is on the wire; the handler has nothing to do
  }
  if (overflow) {
    // Slow client: its bounded output buffer is full. Shed the response
    // with a typed error (small, always permitted on top of the cap) and
    // close once — never block a handler or grow without bound.
    metrics_.slow_client_sheds->Increment();
    if (!conn->close_after_flush.exchange(true)) {
      std::string err;
      AppendFrame(&err, FrameType::kError,
                  EncodeError(ErrorFromStatus(Status(
                      ErrorCode::kResourceExhausted,
                      StrCat("response shed: output buffer over ",
                             options_.max_outbuf_bytes,
                             " bytes (slow client)")))));
      std::lock_guard<std::mutex> lock(conn->out_mu);
      conn->outbuf.append(err);
      metrics_.frames_written->Increment();
      metrics_.errors_sent->Increment();
    }
  }
  WakeHandler(conn->handler_index);
}

void MsqldServer::SendError(const ConnPtr& conn, const Status& status) {
  metrics_.errors_sent->Increment();
  std::string frames;
  AppendFrame(&frames, FrameType::kError,
              EncodeError(ErrorFromStatus(status)));
  EnqueueFrames(conn, std::move(frames), 1);
}

void MsqldServer::SendBatch(const ConnPtr& conn, const ResultBatchMsg& msg) {
  std::string frames;
  AppendFrame(&frames, FrameType::kResultBatch, EncodeResultBatch(msg));
  EnqueueFrames(conn, std::move(frames), 1);
}

void MsqldServer::SendResult(const ConnPtr& conn, uint32_t stmt_id,
                             const ResultSet& result) {
  const size_t batch_rows = std::max<size_t>(1, options_.result_batch_rows);
  const std::vector<Row>& rows = result.rows();

  ResultBatchMsg msg;
  msg.stmt_id = stmt_id;
  msg.kind = 1;
  msg.columns = result.column_names();
  msg.types.reserve(result.column_types().size());
  for (const DataType& t : result.column_types()) {
    msg.types.push_back(t.kind);
  }

  std::string frames;
  size_t nframes = 0;
  size_t start = 0;
  do {
    const size_t end = std::min(rows.size(), start + batch_rows);
    msg.rows.assign(rows.begin() + start, rows.begin() + end);
    msg.last = end >= rows.size();
    if (msg.last) {
      msg.total_rows = rows.size();
      if (result.stats() != nullptr) {
        msg.total_us = static_cast<uint64_t>(result.stats()->total_us);
        msg.plan_cache = static_cast<uint8_t>(result.stats()->plan_cache);
      }
    }
    AppendFrame(&frames, FrameType::kResultBatch, EncodeResultBatch(msg));
    ++nframes;
    start = end;
  } while (start < rows.size());
  EnqueueFrames(conn, std::move(frames), nframes);
}

void MsqldServer::CloseConn(const ConnPtr& conn) {
  if (conn->dead.exchange(true)) return;
  conn->sock.Close();
  metrics_.connections_active->Add(-1.0);
  active_conns_.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace msql::net

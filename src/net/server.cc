#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <thread>

#include "bench/json_writer.h"
#include "common/fault_injection.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace msql::net {

namespace {

// Poll slice: short enough that write timeouts and Stop() are observed
// promptly even with no socket activity.
constexpr int kPollTimeoutMs = 50;

// Injected faults at the named site, callable from void-returning handler
// paths (MSQL_FAULT_POINT assumes a Status-returning scope).
Status FaultAt(const char* site) {
  if (FaultInjector::Instance().active()) {
    return FaultInjector::Instance().Checkpoint(site);
  }
  return Status::Ok();
}

}  // namespace

MsqldServer::MsqldServer(Engine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  obs::MetricsRegistry& reg = engine_->metrics();
  metrics_.connections = reg.GetCounter(
      "msql_net_connections_total", "Connections accepted by msqld");
  metrics_.frames_read = reg.GetCounter("msql_net_frames_read_total",
                                        "Wire frames parsed from clients");
  metrics_.frames_written = reg.GetCounter(
      "msql_net_frames_written_total", "Wire frames enqueued to clients");
  metrics_.bytes_read =
      reg.GetCounter("msql_net_bytes_read_total", "Bytes read from clients");
  metrics_.bytes_written = reg.GetCounter("msql_net_bytes_written_total",
                                          "Bytes written to clients");
  metrics_.queries = reg.GetCounter(
      "msql_net_queries_total", "Query/Execute statements dispatched");
  metrics_.errors_sent =
      reg.GetCounter("msql_net_errors_total", "Error frames sent to clients");
  metrics_.protocol_errors = reg.GetCounter(
      "msql_net_protocol_errors_total",
      "Connections dropped for malformed or out-of-order frames");
  metrics_.rate_limited = reg.GetCounter(
      "msql_net_rate_limited_total",
      "Statements shed by the per-user admission rate limit");
  metrics_.write_timeouts = reg.GetCounter(
      "msql_net_write_timeouts_total",
      "Connections dropped after pending output stalled for "
      "write_timeout_ms");
  metrics_.slow_client_sheds = reg.GetCounter(
      "msql_net_slow_client_sheds_total",
      "Responses shed with kResourceExhausted because a client's bounded "
      "output buffer overflowed");
  metrics_.connections_active =
      reg.GetGauge("msql_net_connections_active", "Open msqld connections");
  metrics_.conn_busy = reg.GetGauge(
      "msql_net_conn_busy_active",
      "Connections with a statement in flight (refreshed at scrape)");
  metrics_.conn_idle = reg.GetGauge(
      "msql_net_conn_idle_active",
      "Authenticated connections awaiting a request (refreshed at scrape)");
  metrics_.conn_outbuf_bytes = reg.GetGauge(
      "msql_net_conn_outbuf_bytes",
      "Response bytes buffered across all connections (refreshed at "
      "scrape)");
}

MsqldServer::~MsqldServer() { Stop(); }

Status MsqldServer::Start() {
  if (running_.exchange(true)) {
    return Status(ErrorCode::kInvalidArgument, "server already started");
  }
  stopping_.store(false);
  MSQL_ASSIGN_OR_RETURN(
      listener_, ListenOn(options_.host, options_.port,
                          options_.listen_backlog, &port_));
  MSQL_RETURN_IF_ERROR(SetNonBlocking(listener_.fd(), true));

  user_limiters_ = std::make_unique<RateLimiterRegistry>(
      options_.per_user_rate_limit_qps, options_.per_user_rate_limit_burst);
  workers_ =
      std::make_unique<ThreadPool>(std::max(1, options_.num_worker_threads));

  const int nhandlers = std::max(1, options_.num_handler_threads);
  handlers_.clear();
  for (int i = 0; i < nhandlers; ++i) {
    auto handler = std::make_unique<Handler>();
    int fds[2];
    if (pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
      return Status(ErrorCode::kIo,
                    StrCat("pipe2: ", strerror(errno)));
    }
    handler->wake_read = fds[0];
    handler->wake_write = fds[1];
    handler->epfd = epoll_create1(EPOLL_CLOEXEC);
    if (handler->epfd < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return Status(ErrorCode::kIo,
                    StrCat("epoll_create1: ", strerror(errno)));
    }
    // The wake pipe lives in the epoll set with a null cookie so the loop
    // can tell it apart from connection events.
    epoll_event wake_ev{};
    wake_ev.events = EPOLLIN;
    wake_ev.data.ptr = nullptr;
    epoll_ctl(handler->epfd, EPOLL_CTL_ADD, handler->wake_read, &wake_ev);
    handlers_.push_back(std::move(handler));
  }
  for (auto& handler : handlers_) {
    Handler* h = handler.get();
    h->thread = std::thread([this, h] { HandlerLoop(h); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });

  // msql_system.connections: a live snapshot of this server's connection
  // registry (visible to SQL when the engine enables system tables).
  engine_->system_tables().Register(
      "msql_system.connections", [this] {
        Schema schema;
        schema.AddColumn(Column("id", DataType::Int64()));
        schema.AddColumn(Column("peer", DataType::String()));
        schema.AddColumn(Column("user", DataType::String()));
        schema.AddColumn(Column("state", DataType::String()));
        schema.AddColumn(Column("statement", DataType::String()));
        schema.AddColumn(Column("inflight_stmt", DataType::Int64()));
        schema.AddColumn(Column("bytes_in", DataType::Int64()));
        schema.AddColumn(Column("bytes_out", DataType::Int64()));
        schema.AddColumn(Column("outbuf_bytes", DataType::Int64()));
        schema.AddColumn(Column("statements", DataType::Int64()));
        schema.AddColumn(Column("errors", DataType::Int64()));
        schema.AddColumn(Column("rate_limited", DataType::Int64()));
        auto table = std::make_shared<Table>("msql_system.connections",
                                             std::move(schema));
        std::vector<Row> rows;
        for (const ConnInfo& c : SnapshotConnections()) {
          rows.push_back({Value::Int(static_cast<int64_t>(c.id)),
                          Value::String(c.peer), Value::String(c.user),
                          Value::String(c.state), Value::String(c.statement),
                          Value::Int(static_cast<int64_t>(c.inflight_stmt)),
                          Value::Int(static_cast<int64_t>(c.bytes_in)),
                          Value::Int(static_cast<int64_t>(c.bytes_out)),
                          Value::Int(static_cast<int64_t>(c.outbuf_bytes)),
                          Value::Int(static_cast<int64_t>(c.statements)),
                          Value::Int(static_cast<int64_t>(c.errors)),
                          Value::Int(static_cast<int64_t>(c.rate_limited))});
        }
        (void)table->AppendRows(std::move(rows));
        return table;
      });

  if (options_.admin_port >= 0) {
    if (Status st = StartAdmin(); !st.ok()) {
      Stop();
      return st;
    }
  }
  return Status::Ok();
}

Status MsqldServer::StartAdmin() {
  AdminHooks hooks;
  hooks.metrics_text = [this] {
    // The msql_net_conn_* gauges are registry-derived; refresh them at
    // scrape time so one pass over the connections serves both /metrics
    // and /statusz identically.
    size_t busy = 0;
    size_t idle = 0;
    uint64_t outbuf = 0;
    for (const ConnInfo& c : SnapshotConnections()) {
      if (c.state == "busy") ++busy;
      if (c.state == "idle") ++idle;
      outbuf += c.outbuf_bytes;
    }
    metrics_.conn_busy->Set(static_cast<double>(busy));
    metrics_.conn_idle->Set(static_cast<double>(idle));
    metrics_.conn_outbuf_bytes->Set(static_cast<double>(outbuf));
    return engine_->MetricsText();
  };
  hooks.healthy = [this] {
    return running_.load(std::memory_order_acquire) &&
           !stopping_.load(std::memory_order_acquire);
  };
  hooks.statusz_json = [this] { return StatuszJson(); };
  hooks.tracez_json = [this](int64_t min_ms) { return TracezJson(min_ms); };
  admin_ = std::make_unique<AdminServer>(
      options_.host, static_cast<uint16_t>(options_.admin_port),
      std::move(hooks), &engine_->metrics());
  return admin_->Start();
}

std::string MsqldServer::StatuszJson() const {
  std::ostringstream out;
  bench::JsonWriter w(out);
  w.BeginObject();
  w.Key("active_connections");
  w.Int(active_conns_.load(std::memory_order_acquire));
  w.Key("connections");
  w.BeginArray();
  for (const ConnInfo& c : SnapshotConnections()) {
    w.BeginObject();
    w.Key("id"); w.Int(static_cast<int64_t>(c.id));
    w.Key("peer"); w.String(c.peer);
    w.Key("user"); w.String(c.user);
    w.Key("state"); w.String(c.state);
    w.Key("statement"); w.String(c.statement);
    w.Key("inflight_stmt"); w.Int(static_cast<int64_t>(c.inflight_stmt));
    w.Key("bytes_in"); w.Int(static_cast<int64_t>(c.bytes_in));
    w.Key("bytes_out"); w.Int(static_cast<int64_t>(c.bytes_out));
    w.Key("outbuf_bytes"); w.Int(static_cast<int64_t>(c.outbuf_bytes));
    w.Key("statements"); w.Int(static_cast<int64_t>(c.statements));
    w.Key("errors"); w.Int(static_cast<int64_t>(c.errors));
    w.Key("rate_limited"); w.Int(static_cast<int64_t>(c.rate_limited));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return out.str();
}

std::string MsqldServer::TracezJson(int64_t min_ms) const {
  std::ostringstream out;
  out << '[';
  bool first = true;
  for (const obs::TracePtr& t : engine_->RecentTraces()) {
    if (t->total_us() < min_ms * 1000) continue;
    if (!first) out << ",\n";
    first = false;
    t->ToJson(out);
  }
  out << ']';
  return out.str();
}

std::vector<MsqldServer::ConnInfo> MsqldServer::SnapshotConnections() const {
  std::vector<ConnPtr> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.reserve(conns_by_id_.size());
    for (const auto& [id, conn] : conns_by_id_) conns.push_back(conn);
  }
  std::vector<ConnInfo> out;
  out.reserve(conns.size());
  for (const ConnPtr& conn : conns) {
    ConnInfo info;
    info.id = conn->stats.id;
    info.peer = conn->stats.peer;
    switch (conn->stats.state.load(std::memory_order_relaxed)) {
      case 1: info.state = "idle"; break;
      case 2: info.state = "busy"; break;
      case 3: info.state = "closing"; break;
      default: info.state = "handshake"; break;
    }
    info.inflight_stmt =
        conn->stats.inflight_stmt.load(std::memory_order_relaxed);
    info.bytes_in = conn->stats.bytes_in.load(std::memory_order_relaxed);
    info.bytes_out = conn->stats.bytes_out.load(std::memory_order_relaxed);
    info.statements = conn->stats.statements.load(std::memory_order_relaxed);
    info.errors = conn->stats.errors.load(std::memory_order_relaxed);
    info.rate_limited =
        conn->stats.rate_limited.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(conn->stats.mu);
      info.user = conn->stats.user;
      info.statement = conn->stats.statement;
    }
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      info.outbuf_bytes = conn->outbuf.size() - conn->out_off;
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const ConnInfo& a, const ConnInfo& b) { return a.id < b.id; });
  return out;
}

void MsqldServer::Stop() {
  if (!running_.load() || stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // From here /healthz answers 503 (the admin server itself stays up until
  // the drain below finishes, so monitors see "draining", not a dead
  // endpoint, while connections unwind).
  if (acceptor_.joinable()) acceptor_.join();
  for (size_t i = 0; i < handlers_.size(); ++i) WakeHandler(i);
  for (auto& handler : handlers_) {
    if (handler->thread.joinable()) handler->thread.join();
  }
  // Handler loops closed their connections (cancelling in-flight
  // statements); drain the worker pool so no task outlives the server.
  if (workers_ != nullptr) workers_->Shutdown();
  for (auto& handler : handlers_) {
    if (handler->epfd >= 0) ::close(handler->epfd);
    if (handler->wake_read >= 0) ::close(handler->wake_read);
    if (handler->wake_write >= 0) ::close(handler->wake_write);
  }
  handlers_.clear();
  listener_.Close();
  if (admin_ != nullptr) {
    admin_->Stop();
    admin_.reset();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_by_id_.clear();
  }
  // The engine outlives this server; replace the live connections provider
  // with an empty-table one so a later SELECT cannot reach a dead `this`.
  engine_->system_tables().Register("msql_system.connections", [] {
    Schema schema;
    schema.AddColumn(Column("id", DataType::Int64()));
    schema.AddColumn(Column("peer", DataType::String()));
    schema.AddColumn(Column("user", DataType::String()));
    schema.AddColumn(Column("state", DataType::String()));
    schema.AddColumn(Column("statement", DataType::String()));
    schema.AddColumn(Column("inflight_stmt", DataType::Int64()));
    schema.AddColumn(Column("bytes_in", DataType::Int64()));
    schema.AddColumn(Column("bytes_out", DataType::Int64()));
    schema.AddColumn(Column("outbuf_bytes", DataType::Int64()));
    schema.AddColumn(Column("statements", DataType::Int64()));
    schema.AddColumn(Column("errors", DataType::Int64()));
    schema.AddColumn(Column("rate_limited", DataType::Int64()));
    return std::make_shared<Table>("msql_system.connections",
                                   std::move(schema));
  });
  running_.store(false);
}

void MsqldServer::WakeHandler(size_t index) {
  if (index >= handlers_.size()) return;
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n =
      ::write(handlers_[index]->wake_write, &byte, 1);
}

void MsqldServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int rc = poll(&pfd, 1, kPollTimeoutMs);
    if (rc <= 0) continue;
    sockaddr_in peer;
    socklen_t len = sizeof(peer);
    int fd = accept4(listener_.fd(), reinterpret_cast<sockaddr*>(&peer),
                     &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) continue;
    if (Status fault = FaultAt("net.accept"); !fault.ok()) {
      // Injected accept failure: the connection is refused outright; the
      // client observes a clean close, the server keeps serving.
      ::close(fd);
      continue;
    }
    if (active_conns_.load(std::memory_order_acquire) >=
        static_cast<int>(options_.max_connections)) {
      // Over the connection cap we still answer with a typed error so the
      // client can distinguish shed from crash.
      std::string frames;
      AppendFrame(&frames, FrameType::kError,
                  EncodeError(ErrorFromStatus(Status(
                      ErrorCode::kResourceExhausted,
                      StrCat("connection limit reached (max_connections=",
                             options_.max_connections, ")")))));
      ::send(fd, frames.data(), frames.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    SetNoDelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->sock = Socket(fd);
    char ip[INET_ADDRSTRLEN] = {0};
    inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    conn->peer = StrCat(ip, ":", ntohs(peer.sin_port));
    conn->stats.id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->stats.peer = conn->peer;
    const size_t index =
        next_handler_.fetch_add(1, std::memory_order_relaxed) %
        handlers_.size();
    conn->handler_index = index;
    metrics_.connections->Increment();
    metrics_.connections_active->Add(1.0);
    active_conns_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_by_id_[conn->stats.id] = conn;
    }
    {
      Handler* h = handlers_[index].get();
      std::lock_guard<std::mutex> lock(h->adopt_mu);
      h->adopting.push_back(std::move(conn));
    }
    WakeHandler(index);
  }
}

void MsqldServer::HandlerLoop(Handler* handler) {
  std::vector<ConnPtr> conns;
  std::vector<epoll_event> events(256);
  char scratch[64 * 1024];
  auto last_scan = std::chrono::steady_clock::now();

  while (true) {
    // Adopt newly accepted connections into the epoll set.
    {
      std::lock_guard<std::mutex> lock(handler->adopt_mu);
      for (ConnPtr& conn : handler->adopting) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.ptr = conn.get();
        if (epoll_ctl(handler->epfd, EPOLL_CTL_ADD, conn->sock.fd(), &ev) ==
            0) {
          conn->epoll_registered = true;
        }
        conns.push_back(std::move(conn));
      }
      handler->adopting.clear();
    }

    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping) {
      for (const ConnPtr& conn : conns) {
        if (!conn->dead.load()) {
          if (conn->session != nullptr) conn->session->Cancel();
          CloseConn(conn);
        }
      }
      // Keep conns alive until their in-flight workers finish enqueueing
      // (enqueue into a dead conn is a no-op); the pool Shutdown in Stop()
      // joins those workers before the server object dies.
      return;
    }

    const int nev =
        epoll_wait(handler->epfd, events.data(),
                   static_cast<int>(events.size()), kPollTimeoutMs);
    const auto now = std::chrono::steady_clock::now();

    // Event-driven servicing is O(ready connections). A periodic full scan
    // (on wakeups and at least every poll interval) covers everything the
    // epoll set can't see: deferred input after a statement finished,
    // connections awaiting close, write-stall timeouts, and reaping.
    bool full_scan =
        nev <= 0 || now - last_scan > std::chrono::milliseconds(kPollTimeoutMs);
    for (int i = 0; i < nev; ++i) {
      if (events[i].data.ptr == nullptr) {
        char drain[256];
        while (::read(handler->wake_read, drain, sizeof(drain)) > 0) {
        }
        full_scan = true;
        continue;
      }
      Conn* raw = static_cast<Conn*>(events[i].data.ptr);
      ServiceConn(handler, raw->shared_from_this(), events[i].events,
                  scratch, now);
    }
    if (!full_scan) continue;
    last_scan = now;
    for (const ConnPtr& conn : conns) {
      ServiceConn(handler, conn, 0, scratch, now);
    }

    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const ConnPtr& c) {
                                 return c->dead.load() &&
                                        !c->busy.load();
                               }),
                conns.end());
  }
}

void MsqldServer::ServiceConn(Handler* handler, const ConnPtr& conn,
                              uint32_t revents, char* scratch,
                              std::chrono::steady_clock::time_point now) {
  if (conn->dead.load(std::memory_order_acquire)) return;

  if (revents & EPOLLERR) {
    if (conn->session != nullptr) conn->session->Cancel();
    CloseConn(conn);
    return;
  }

  // Read side. EPOLLHUP without EPOLLIN also lands here so a half-close
  // is observed as read() == 0.
  if (!conn->saw_eof && (revents & (EPOLLIN | EPOLLHUP))) {
        bool fatal = false;
        while (true) {
          const ssize_t got =
              ::read(conn->sock.fd(), scratch, sizeof(scratch));
          if (got > 0) {
            metrics_.bytes_read->Increment(static_cast<uint64_t>(got));
            conn->stats.bytes_in.fetch_add(static_cast<uint64_t>(got),
                                           std::memory_order_relaxed);
            conn->inbuf.append(scratch, static_cast<size_t>(got));
            if (conn->inbuf.size() > options_.max_inbuf_bytes) {
              SendError(conn,
                        Status(ErrorCode::kResourceExhausted,
                               StrCat("input buffer overflow (cap ",
                                      options_.max_inbuf_bytes, " bytes)")));
              metrics_.protocol_errors->Increment();
              conn->close_after_flush.store(true);
              fatal = true;
              break;
            }
            continue;
          }
          if (got == 0) {
            // Half-close: no more requests. An in-flight statement is
            // cancelled (its kCancelled Error still flushes — the client
            // may have shut down only its write side); pending output is
            // flushed, then the connection closes.
            conn->saw_eof = true;
            if (conn->busy.load(std::memory_order_acquire) &&
                conn->session != nullptr) {
              conn->session->Cancel();
            }
            conn->close_after_flush.store(true);
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          if (conn->session != nullptr) conn->session->Cancel();
          CloseConn(conn);
          fatal = true;
          break;
        }
        if (fatal && conn->dead.load()) return;
      }

      ProcessInput(conn);
      if (conn->dead.load()) return;

      // Write side: flush as much pending output as the socket accepts.
      {
        std::unique_lock<std::mutex> lock(conn->out_mu);
        bool progressed = false;
        while (conn->out_off < conn->outbuf.size()) {
          if (Status fault = FaultAt("net.write_frame"); !fault.ok()) {
            // Injected write failure: never leave a half-written frame on
            // the wire — drop the connection at once.
            lock.unlock();
            if (conn->session != nullptr) conn->session->Cancel();
            CloseConn(conn);
            break;
          }
          const ssize_t put = ::send(
              conn->sock.fd(), conn->outbuf.data() + conn->out_off,
              conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
          if (put > 0) {
            conn->out_off += static_cast<size_t>(put);
            metrics_.bytes_written->Increment(static_cast<uint64_t>(put));
            conn->stats.bytes_out.fetch_add(static_cast<uint64_t>(put),
                                            std::memory_order_relaxed);
            progressed = true;
            continue;
          }
          if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (put < 0 && errno == EINTR) continue;
          lock.unlock();
          if (conn->session != nullptr) conn->session->Cancel();
          CloseConn(conn);
          break;
        }
        if (conn->dead.load()) return;
        if (conn->out_off >= conn->outbuf.size()) {
          conn->outbuf.clear();
          conn->out_off = 0;
          conn->write_stalled = false;
        } else if (progressed) {
          conn->write_stalled = false;
        } else if (!conn->write_stalled) {
          conn->write_stalled = true;
          conn->write_stall_since = now;
        } else if (options_.write_timeout_ms > 0 &&
                   now - conn->write_stall_since >
                       std::chrono::milliseconds(options_.write_timeout_ms)) {
          // Slow client: pending bytes made no progress for the whole
          // write budget. Drop it; healthy clients are unaffected.
          lock.unlock();
          metrics_.write_timeouts->Increment();
          if (conn->session != nullptr) conn->session->Cancel();
          CloseConn(conn);
          return;
        }
      }

      // Close once all output is flushed and nothing is in flight.
      if (conn->close_after_flush.load(std::memory_order_acquire) &&
          !conn->busy.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        if (conn->outbuf.size() <= conn->out_off) CloseConn(conn);
      }
      if (conn->dead.load(std::memory_order_acquire)) return;

      // Epoll interest maintenance. A closing or half-closed connection
      // leaves the set: level-triggered EPOLLHUP/EPOLLIN would otherwise
      // spin the loop; its remaining flush/close work rides the periodic
      // scans and FinishStatement wakeups instead.
      if (conn->saw_eof ||
          conn->close_after_flush.load(std::memory_order_acquire)) {
        if (conn->epoll_registered) {
          epoll_ctl(handler->epfd, EPOLL_CTL_DEL, conn->sock.fd(), nullptr);
          conn->epoll_registered = false;
        }
        return;
      }
      bool want_out;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        want_out = conn->outbuf.size() > conn->out_off;
      }
      if (conn->epoll_registered && want_out != conn->epoll_out) {
        epoll_event ev{};
        ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0);
        ev.data.ptr = conn.get();
        if (epoll_ctl(handler->epfd, EPOLL_CTL_MOD, conn->sock.fd(), &ev) ==
            0) {
          conn->epoll_out = want_out;
        }
      }
}

void MsqldServer::ProcessInput(const ConnPtr& conn) {
  while (!conn->dead.load(std::memory_order_acquire)) {
    size_t off = 0;
    Frame frame;
    Result<bool> parsed = TryParseFrame(conn->inbuf, &off, &frame);
    if (!parsed.ok()) {
      metrics_.protocol_errors->Increment();
      SendError(conn, parsed.status());
      conn->close_after_flush.store(true);
      return;
    }
    if (!parsed.value()) return;  // need more bytes

    // Publish "input is waiting" before checking busy: either the worker
    // (clearing busy) sees the flag and wakes us, or we see busy already
    // cleared and process the frame now.
    conn->deferred_input.store(true);
    if (conn->busy.load()) {
      // One statement in flight per connection: queued frames wait in the
      // input buffer, except Cancel, which must reach a running statement.
      if (frame.type != FrameType::kCancel) return;
    } else {
      conn->deferred_input.store(false);
    }
    conn->inbuf.erase(0, off);
    metrics_.frames_read->Increment();

    if (Status fault = FaultAt("net.read_frame"); !fault.ok()) {
      // Injected read-path failure: answer with a clean Error frame and
      // close after flush — never a hung or half-written connection.
      SendError(conn, fault);
      conn->close_after_flush.store(true);
      return;
    }

    DispatchFrame(conn, frame);
  }
}

void MsqldServer::DispatchFrame(const ConnPtr& conn, const Frame& frame) {
  if (frame.type == FrameType::kCancel) {
    if (conn->session != nullptr) conn->session->Cancel();
    return;  // fire-and-forget: the cancelled statement answers
  }
  if (!conn->authenticated) {
    if (frame.type != FrameType::kHello) {
      metrics_.protocol_errors->Increment();
      SendError(conn, Status(ErrorCode::kPermission,
                             StrCat("expected Hello before ",
                                    FrameTypeName(frame.type))));
      conn->close_after_flush.store(true);
      return;
    }
    HandleHello(conn, frame);
    return;
  }
  switch (frame.type) {
    case FrameType::kHello:
      metrics_.protocol_errors->Increment();
      SendError(conn, Status(ErrorCode::kInvalidArgument,
                             "connection already authenticated"));
      conn->close_after_flush.store(true);
      return;
    case FrameType::kQuery:
      DispatchQuery(conn, frame);
      return;
    case FrameType::kPrepare:
      DispatchPrepare(conn, frame);
      return;
    case FrameType::kBind:
      HandleBind(conn, frame);
      return;
    case FrameType::kExecute:
      DispatchExecute(conn, frame);
      return;
    case FrameType::kClose:
      HandleClose(conn, frame);
      return;
    case FrameType::kCancel:
    case FrameType::kResultBatch:
    case FrameType::kError:
      break;
  }
  metrics_.protocol_errors->Increment();
  SendError(conn, Status(ErrorCode::kInvalidArgument,
                         StrCat("unexpected ", FrameTypeName(frame.type),
                                " frame from client")));
  conn->close_after_flush.store(true);
}

void MsqldServer::HandleHello(const ConnPtr& conn, const Frame& frame) {
  Result<HelloMsg> msg = DecodeHello(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  if (msg.value().version != kProtocolVersion) {
    SendError(conn, Status(ErrorCode::kInvalidArgument,
                           StrCat("protocol version mismatch: server speaks ",
                                  kProtocolVersion, ", client sent ",
                                  msg.value().version)));
    conn->close_after_flush.store(true);
    return;
  }
  if (msg.value().user.empty()) {
    SendError(conn, Status(ErrorCode::kPermission,
                           "Hello must name a non-empty user"));
    conn->close_after_flush.store(true);
    return;
  }
  if (options_.max_connections_per_user > 0 &&
      engine_->ActiveSessionsForUser(msg.value().user) >=
          options_.max_connections_per_user) {
    SendError(conn,
              Status(ErrorCode::kResourceExhausted,
                     StrCat("user '", msg.value().user, "' is at its ",
                            options_.max_connections_per_user,
                            "-connection limit")));
    conn->close_after_flush.store(true);
    return;
  }
  conn->user = msg.value().user;
  conn->session = engine_->CreateSessionForUser(conn->user);
  // Stamp the connection identity onto the session so every trace this
  // connection produces carries who asked ("ip:port#connid").
  conn->session->SetPeer(StrCat(conn->peer, "#", conn->stats.id));
  conn->authenticated = true;
  {
    std::lock_guard<std::mutex> lock(conn->stats.mu);
    conn->stats.user = conn->user;
  }
  conn->stats.state.store(1, std::memory_order_relaxed);
  HelloMsg reply;
  reply.version = kProtocolVersion;
  reply.user = "msqld";
  std::string frames;
  AppendFrame(&frames, FrameType::kHello, EncodeHello(reply));
  EnqueueFrames(conn, std::move(frames), 1);
}

void MsqldServer::HandleBind(const ConnPtr& conn, const Frame& frame) {
  Result<BindMsg> msg = DecodeBind(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  BindMsg& bind = msg.value();
  std::lock_guard<std::mutex> lock(conn->stmts_mu);
  auto it = conn->stmts.find(bind.stmt_id);
  if (it == conn->stmts.end()) {
    SendError(conn, Status(ErrorCode::kInvalidArgument,
                           StrCat("Bind for unknown statement id ",
                                  bind.stmt_id)));
    return;
  }
  const std::vector<TypeKind>& declared = it->second.plan->param_types;
  if (bind.params.size() != declared.size()) {
    SendError(conn,
              Status(ErrorCode::kInvalidArgument,
                     StrCat("statement ", bind.stmt_id, " declares ",
                            declared.size(), " parameter(s), Bind carried ",
                            bind.params.size())));
    return;
  }
  Row coerced;
  coerced.reserve(bind.params.size());
  for (size_t i = 0; i < bind.params.size(); ++i) {
    Result<Value> cast = bind.params[i].CastTo(declared[i]);
    if (!cast.ok()) {
      SendError(conn,
                Status(ErrorCode::kInvalidArgument,
                       StrCat("parameter $", i + 1, " type mismatch: "
                              "expected ", TypeKindName(declared[i]),
                              ", got ", TypeKindName(bind.params[i].kind()))));
      return;
    }
    coerced.push_back(cast.take());
  }
  it->second.params = std::move(coerced);
  it->second.bound = true;
  ResultBatchMsg ack;
  ack.stmt_id = bind.stmt_id;
  SendBatch(conn, ack);
}

void MsqldServer::HandleClose(const ConnPtr& conn, const Frame& frame) {
  Result<CloseMsg> msg = DecodeClose(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  ResultBatchMsg ack;
  ack.stmt_id = msg.value().stmt_id;
  if (msg.value().stmt_id == 0) {
    // Graceful connection close: ack, flush, close.
    SendBatch(conn, ack);
    conn->close_after_flush.store(true);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->stmts_mu);
    conn->stmts.erase(msg.value().stmt_id);
  }
  SendBatch(conn, ack);
}

void MsqldServer::DispatchQuery(const ConnPtr& conn, const Frame& frame) {
  Result<QueryMsg> msg = DecodeQuery(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  metrics_.queries->Increment();
  NoteStatementStart(conn, msg.value().sql);
  conn->busy.store(true, std::memory_order_release);
  if (!workers_->Submit([this, conn, m = msg.take()]() mutable {
        RunQuery(conn, std::move(m));
      })) {
    conn->busy.store(false, std::memory_order_release);
    SendError(conn, Status(ErrorCode::kCancelled, "server shutting down"));
    conn->close_after_flush.store(true);
  }
}

void MsqldServer::DispatchPrepare(const ConnPtr& conn, const Frame& frame) {
  Result<PrepareMsg> msg = DecodePrepare(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  const uint32_t stmt_id = conn->next_stmt_id++;
  NoteStatementStart(conn, msg.value().sql);
  conn->busy.store(true, std::memory_order_release);
  if (!workers_->Submit([this, conn, stmt_id, m = msg.take()]() mutable {
        RunPrepare(conn, stmt_id, std::move(m));
      })) {
    conn->busy.store(false, std::memory_order_release);
    SendError(conn, Status(ErrorCode::kCancelled, "server shutting down"));
    conn->close_after_flush.store(true);
  }
}

void MsqldServer::DispatchExecute(const ConnPtr& conn, const Frame& frame) {
  Result<ExecuteMsg> msg = DecodeExecute(frame.payload);
  if (!msg.ok()) {
    metrics_.protocol_errors->Increment();
    SendError(conn, msg.status());
    conn->close_after_flush.store(true);
    return;
  }
  metrics_.queries->Increment();
  NoteStatementStart(conn, StrCat("<execute #", msg.value().stmt_id, ">"));
  conn->busy.store(true, std::memory_order_release);
  if (!workers_->Submit([this, conn, m = msg.value()] {
        RunExecute(conn, m);
      })) {
    conn->busy.store(false, std::memory_order_release);
    SendError(conn, Status(ErrorCode::kCancelled, "server shutting down"));
    conn->close_after_flush.store(true);
  }
}

Status MsqldServer::AdmitStatement(const ConnPtr& conn,
                                   uint32_t frame_timeout_ms,
                                   int64_t* remaining_timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  const int64_t timeout_ms = frame_timeout_ms > 0
                                 ? static_cast<int64_t>(frame_timeout_ms)
                                 : options_.default_timeout_ms;
  const bool has_deadline = timeout_ms > 0;
  const auto deadline = start + std::chrono::milliseconds(timeout_ms);

  if (user_limiters_->enabled()) {
    RateLimiter& limiter = user_limiters_->ForKey(conn->user);
    auto wait_deadline =
        start + std::chrono::milliseconds(options_.max_admission_wait_ms);
    if (has_deadline && deadline < wait_deadline) wait_deadline = deadline;
    while (true) {
      if (conn->dead.load(std::memory_order_acquire)) {
        return Status(ErrorCode::kCancelled,
                      "connection closed during admission");
      }
      const int64_t defer_us = limiter.TryAcquire();
      if (defer_us == 0) break;
      const auto now = std::chrono::steady_clock::now();
      if (has_deadline && now >= deadline) {
        return Status(ErrorCode::kDeadlineExceeded,
                      "deadline exceeded while rate-limit gated");
      }
      if (now + std::chrono::microseconds(defer_us) > wait_deadline) {
        metrics_.rate_limited->Increment();
        conn->stats.rate_limited.fetch_add(1, std::memory_order_relaxed);
        return Status(ErrorCode::kResourceExhausted,
                      StrCat("user '", conn->user,
                             "' admission rate limited (next token in ",
                             defer_us, "us, beyond the wait budget)"));
      }
      std::this_thread::sleep_for(
          std::min(std::chrono::microseconds(defer_us),
                   std::chrono::microseconds(1000)));
    }
  }

  if (!has_deadline) {
    *remaining_timeout_ms = 0;
    return Status::Ok();
  }
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) {
    return Status(ErrorCode::kDeadlineExceeded,
                  "deadline exceeded during admission");
  }
  // The budget given to the engine is net of admission wait, so wire
  // timeout_ms bounds the whole server-side round trip.
  *remaining_timeout_ms = std::max<int64_t>(
      1, std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
             .count());
  return Status::Ok();
}

void MsqldServer::RunQuery(const ConnPtr& conn, QueryMsg msg) {
  const bool want_trace = (msg.trace_flags & kTraceFlagEnabled) != 0;
  int64_t budget_ms = 0;
  Status admitted = AdmitStatement(conn, msg.timeout_ms, &budget_ms);
  Result<ResultSet> result = admitted.ok()
                                 ? [&] {
                                     // Per-statement option mutation is safe
                                     // here: one statement in flight per
                                     // connection, same as timeout_ms.
                                     conn->session->options().timeout_ms =
                                         budget_ms;
                                     const bool saved_tracing =
                                         conn->session->options()
                                             .enable_tracing;
                                     if (want_trace) {
                                       conn->session->options()
                                           .enable_tracing = true;
                                       conn->session->SetTraceId(msg.trace_id);
                                     }
                                     Result<ResultSet> r =
                                         conn->session->Query(msg.sql);
                                     if (want_trace) {
                                       conn->session->options()
                                           .enable_tracing = saved_tracing;
                                       conn->session->SetTraceId("");
                                     }
                                     return r;
                                   }()
                                 : Result<ResultSet>(admitted);
  if (result.ok()) {
    SendResult(conn, 0, result.value(), want_trace);
  } else {
    SendError(conn, result.status());
  }
  FinishStatement(conn);
}

void MsqldServer::RunPrepare(const ConnPtr& conn, uint32_t stmt_id,
                             PrepareMsg msg) {
  Result<PreparedPlanPtr> prepared =
      conn->session->Prepare(msg.sql, msg.param_types);
  if (!prepared.ok()) {
    SendError(conn, prepared.status());
  } else {
    {
      std::lock_guard<std::mutex> lock(conn->stmts_mu);
      StmtEntry entry;
      entry.plan = prepared.value();
      entry.bound = prepared.value()->param_types.empty();
      conn->stmts[stmt_id] = std::move(entry);
    }
    ResultBatchMsg ack;
    ack.stmt_id = stmt_id;
    ack.param_count = static_cast<uint16_t>(prepared.value()->param_count);
    SendBatch(conn, ack);
  }
  FinishStatement(conn);
}

void MsqldServer::RunExecute(const ConnPtr& conn, ExecuteMsg msg) {
  const bool want_trace = (msg.trace_flags & kTraceFlagEnabled) != 0;
  PreparedPlanPtr plan;
  Row params;
  Status setup = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(conn->stmts_mu);
    auto it = conn->stmts.find(msg.stmt_id);
    if (it == conn->stmts.end()) {
      setup = Status(ErrorCode::kInvalidArgument,
                     StrCat("Execute for unknown statement id ",
                            msg.stmt_id));
    } else if (!it->second.bound) {
      setup = Status(ErrorCode::kInvalidArgument,
                     StrCat("statement ", msg.stmt_id,
                            " has unbound parameters (send Bind first)"));
    } else {
      plan = it->second.plan;
      params = it->second.params;
    }
  }
  if (setup.ok()) {
    // /statusz showed "<execute #N>" from dispatch; upgrade it to the
    // prepared statement's actual text now that we have the plan.
    std::lock_guard<std::mutex> lock(conn->stats.mu);
    conn->stats.statement = plan->sql;
  }
  Result<ResultSet> result = setup.ok() ? Result<ResultSet>(ResultSet())
                                        : Result<ResultSet>(setup);
  if (setup.ok()) {
    int64_t budget_ms = 0;
    Status admitted = AdmitStatement(conn, msg.timeout_ms, &budget_ms);
    if (admitted.ok()) {
      conn->session->options().timeout_ms = budget_ms;
      const bool saved_tracing = conn->session->options().enable_tracing;
      if (want_trace) {
        conn->session->options().enable_tracing = true;
        conn->session->SetTraceId(msg.trace_id);
      }
      result = conn->session->QueryPrepared(plan, params);
      if (!result.ok() && result.status().code() == ErrorCode::kCatalog) {
        // The catalog moved under the prepared plan. Re-prepare
        // transparently from the stored statement text and retry once;
        // the client never sees the generation bump.
        Result<PreparedPlanPtr> fresh =
            conn->session->Prepare(plan->sql, plan->param_types);
        if (fresh.ok()) {
          {
            std::lock_guard<std::mutex> lock(conn->stmts_mu);
            auto it = conn->stmts.find(msg.stmt_id);
            if (it != conn->stmts.end()) it->second.plan = fresh.value();
          }
          result = conn->session->QueryPrepared(fresh.value(), params);
        } else {
          result = fresh.status();
        }
      }
      if (want_trace) {
        conn->session->options().enable_tracing = saved_tracing;
        conn->session->SetTraceId("");
      }
    } else {
      result = admitted;
    }
  }
  if (result.ok()) {
    SendResult(conn, msg.stmt_id, result.value(), want_trace);
  } else {
    SendError(conn, result.status());
  }
  FinishStatement(conn);
}

void MsqldServer::NoteStatementStart(const ConnPtr& conn,
                                     const std::string& sql) {
  const uint64_t ordinal =
      conn->stats.statements.fetch_add(1, std::memory_order_relaxed) + 1;
  conn->stats.inflight_stmt.store(ordinal, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn->stats.mu);
    conn->stats.statement = sql;
  }
  conn->stats.state.store(2, std::memory_order_relaxed);
}

void MsqldServer::FinishStatement(const ConnPtr& conn) {
  conn->stats.inflight_stmt.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn->stats.mu);
    conn->stats.statement.clear();
  }
  if (!conn->dead.load(std::memory_order_acquire)) {
    conn->stats.state.store(1, std::memory_order_relaxed);
  }
  conn->busy.store(false);  // seq_cst: pairs with the handler's defer check
  if (conn->deferred_input.load() ||
      conn->close_after_flush.load(std::memory_order_acquire) ||
      conn->dead.load(std::memory_order_acquire)) {
    WakeHandler(conn->handler_index);
  }
}

void MsqldServer::EnqueueFrames(const ConnPtr& conn, std::string frames,
                                size_t nframes) {
  if (conn->dead.load(std::memory_order_acquire)) return;
  bool overflow = false;
  bool flushed = false;
  bool fault_drop = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    const size_t pending = conn->outbuf.size() - conn->out_off;
    if (pending + frames.size() > options_.max_outbuf_bytes) {
      overflow = true;
    } else {
      conn->outbuf.append(frames);
      metrics_.frames_written->Increment(nframes);
      // Opportunistic inline flush: push the bytes out right here so the
      // common request/response cycle costs one handler wakeup (the read),
      // not two. EAGAIN or a socket error leaves the remainder for the
      // handler's poll-driven write path.
      while (conn->out_off < conn->outbuf.size() &&
             !conn->dead.load(std::memory_order_acquire)) {
        if (Status fault = FaultAt("net.write_frame"); !fault.ok()) {
          // Injected write failure: discard pending output (never leave a
          // half-written frame) and let the handler drop the connection.
          conn->outbuf.clear();
          conn->out_off = 0;
          conn->close_after_flush.store(true);
          fault_drop = true;
          break;
        }
        const ssize_t put =
            ::send(conn->sock.fd(), conn->outbuf.data() + conn->out_off,
                   conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
        if (put > 0) {
          conn->out_off += static_cast<size_t>(put);
          metrics_.bytes_written->Increment(static_cast<uint64_t>(put));
          conn->stats.bytes_out.fetch_add(static_cast<uint64_t>(put),
                                          std::memory_order_relaxed);
          continue;
        }
        if (put < 0 && errno == EINTR) continue;
        break;  // EAGAIN or a real error: the handler flush takes over
      }
      if (conn->out_off >= conn->outbuf.size()) {
        conn->outbuf.clear();
        conn->out_off = 0;
        conn->write_stalled = false;
        flushed = true;
      }
    }
  }
  if (fault_drop && conn->session != nullptr) conn->session->Cancel();
  if (flushed && !fault_drop &&
      !conn->close_after_flush.load(std::memory_order_acquire)) {
    return;  // everything is on the wire; the handler has nothing to do
  }
  if (overflow) {
    // Slow client: its bounded output buffer is full. Shed the response
    // with a typed error (small, always permitted on top of the cap) and
    // close once — never block a handler or grow without bound.
    metrics_.slow_client_sheds->Increment();
    if (!conn->close_after_flush.exchange(true)) {
      std::string err;
      AppendFrame(&err, FrameType::kError,
                  EncodeError(ErrorFromStatus(Status(
                      ErrorCode::kResourceExhausted,
                      StrCat("response shed: output buffer over ",
                             options_.max_outbuf_bytes,
                             " bytes (slow client)")))));
      std::lock_guard<std::mutex> lock(conn->out_mu);
      conn->outbuf.append(err);
      metrics_.frames_written->Increment();
      metrics_.errors_sent->Increment();
    }
  }
  WakeHandler(conn->handler_index);
}

void MsqldServer::SendError(const ConnPtr& conn, const Status& status) {
  metrics_.errors_sent->Increment();
  conn->stats.errors.fetch_add(1, std::memory_order_relaxed);
  std::string frames;
  AppendFrame(&frames, FrameType::kError,
              EncodeError(ErrorFromStatus(status)));
  EnqueueFrames(conn, std::move(frames), 1);
}

void MsqldServer::SendBatch(const ConnPtr& conn, const ResultBatchMsg& msg) {
  std::string frames;
  AppendFrame(&frames, FrameType::kResultBatch, EncodeResultBatch(msg));
  EnqueueFrames(conn, std::move(frames), 1);
}

void MsqldServer::SendResult(const ConnPtr& conn, uint32_t stmt_id,
                             const ResultSet& result, bool with_footer) {
  const size_t batch_rows = std::max<size_t>(1, options_.result_batch_rows);
  const std::vector<Row>& rows = result.rows();

  ResultBatchMsg msg;
  msg.stmt_id = stmt_id;
  msg.kind = 1;
  msg.columns = result.column_names();
  msg.types.reserve(result.column_types().size());
  for (const DataType& t : result.column_types()) {
    msg.types.push_back(t.kind);
  }

  std::string frames;
  size_t nframes = 0;
  size_t start = 0;
  do {
    const size_t end = std::min(rows.size(), start + batch_rows);
    msg.rows.assign(rows.begin() + start, rows.begin() + end);
    msg.last = end >= rows.size();
    if (msg.last) {
      msg.total_rows = rows.size();
      if (result.stats() != nullptr) {
        const QueryStats& stats = *result.stats();
        msg.total_us = static_cast<uint64_t>(stats.total_us);
        msg.plan_cache = static_cast<uint8_t>(stats.plan_cache);
        if (with_footer) {
          msg.has_footer = 1;
          msg.admission_wait_us =
              static_cast<uint32_t>(stats.admission_wait_us);
          msg.queue_wait_us = static_cast<uint32_t>(stats.queue_wait_us);
          msg.parse_us = static_cast<uint32_t>(stats.parse_us);
          msg.bind_us = static_cast<uint32_t>(stats.bind_us);
          msg.measure_expand_us =
              static_cast<uint32_t>(stats.measure_expand_us);
          msg.plan_us = static_cast<uint32_t>(stats.plan_us);
          msg.execute_us = static_cast<uint32_t>(stats.execute_us);
          msg.render_us = static_cast<uint32_t>(stats.render_us);
          msg.guard_bytes = static_cast<uint64_t>(stats.bytes_charged);
        }
      }
    }
    AppendFrame(&frames, FrameType::kResultBatch, EncodeResultBatch(msg));
    ++nframes;
    start = end;
  } while (start < rows.size());
  EnqueueFrames(conn, std::move(frames), nframes);
}

void MsqldServer::CloseConn(const ConnPtr& conn) {
  if (conn->dead.exchange(true)) return;
  conn->stats.state.store(3, std::memory_order_relaxed);
  conn->sock.Close();
  metrics_.connections_active->Add(-1.0);
  active_conns_.fetch_sub(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_by_id_.erase(conn->stats.id);
}

}  // namespace msql::net

#ifndef MSQL_NET_SERVER_H_
#define MSQL_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "net/admin.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "runtime/rate_limiter.h"
#include "runtime/session.h"
#include "runtime/thread_pool.h"

// The msqld network front end (docs/NETWORKING.md): a TCP server speaking
// the length-prefixed frame protocol of net/wire.h. One acceptor thread
// distributes connections round-robin over N handler threads, each running
// a poll() event loop over its connections with non-blocking sockets and
// bounded input/output buffers; statement execution happens on a separate
// worker pool so a long query never wedges an event loop. Each
// authenticated connection owns one Engine session
// (Engine::CreateSessionForUser), giving it the engine's full per-session
// machinery: cancellation scope, option snapshot, definer security.
//
// Robustness posture:
//  - Admission reuses the GCRA RateLimiter per authenticated user
//    (RateLimiterRegistry): a flooding user exhausts only its own bucket,
//    waits bounded, then is shed with kResourceExhausted.
//  - Deadlines propagate from the wire: Query/Execute carry timeout_ms;
//    the budget starts at frame dispatch, so admission wait charges
//    against it (kDeadlineExceeded once elapsed).
//  - Slow or half-closed clients cannot wedge a handler: output buffers
//    are size-capped (overflow => kResourceExhausted Error + close), and a
//    connection whose pending output makes no progress for
//    write_timeout_ms is dropped.
//  - Cancel frames bypass the per-connection request queue, so an
//    in-flight statement can be cancelled mid-execution.
namespace msql::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = pick an ephemeral port (see MsqldServer::port)
  int num_handler_threads = 2;
  int num_worker_threads = 4;  // statement-execution pool
  int listen_backlog = 512;
  size_t max_connections = 4096;
  int max_connections_per_user = 0;  // 0 = unlimited
  size_t max_inbuf_bytes = 1u << 20;
  size_t max_outbuf_bytes = 8u << 20;
  // Pending output making no progress for this long drops the connection
  // (slow-client shed). <= 0 disables.
  int64_t write_timeout_ms = 10000;
  size_t result_batch_rows = 1024;  // rows per ResultBatch frame
  // Per-user admission token bucket; 0 qps = unlimited.
  double per_user_rate_limit_qps = 0.0;
  int64_t per_user_rate_limit_burst = 16;
  int64_t max_admission_wait_ms = 100;
  // Applied when a Query/Execute frame carries timeout_ms == 0.
  int64_t default_timeout_ms = 0;
  // Admin HTTP endpoint (/metrics, /healthz, /statusz, /tracez) on the
  // same host; < 0 disables it, 0 picks an ephemeral port
  // (MsqldServer::admin_port after Start).
  int admin_port = -1;
};

class MsqldServer {
 public:
  MsqldServer(Engine* engine, ServerOptions options);
  ~MsqldServer();

  MsqldServer(const MsqldServer&) = delete;
  MsqldServer& operator=(const MsqldServer&) = delete;

  // Binds, listens and starts the acceptor + handler threads.
  Status Start();

  // Stops accepting, cancels in-flight statements, closes every
  // connection and joins all threads. Idempotent.
  void Stop();

  // The bound port (after Start); useful with options.port == 0.
  uint16_t port() const { return port_; }
  // The admin endpoint's bound port (after Start); 0 when disabled.
  uint16_t admin_port() const {
    return admin_ != nullptr ? admin_->port() : 0;
  }
  const ServerOptions& options() const { return options_; }
  int active_connections() const {
    return active_conns_.load(std::memory_order_acquire);
  }

  // One connection's live state as read by /statusz and
  // msql_system.connections.
  struct ConnInfo {
    uint64_t id = 0;
    std::string peer;
    std::string user;
    std::string state;  // "handshake" | "idle" | "busy" | "closing"
    std::string statement;  // SQL in flight, empty when idle
    uint64_t inflight_stmt = 0;  // per-conn ordinal of the busy statement
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    uint64_t outbuf_bytes = 0;  // response bytes awaiting the socket
    uint64_t statements = 0;
    uint64_t errors = 0;
    uint64_t rate_limited = 0;
  };

  // Snapshot of every open connection, without stopping handler or worker
  // threads (counters are relaxed atomics; strings take a short per-conn
  // lock).
  std::vector<ConnInfo> SnapshotConnections() const;

 private:
  struct StmtEntry {
    PreparedPlanPtr plan;
    Row params;
    bool bound = false;
  };

  // Live per-connection statistics behind ConnInfo. Its own cache line so
  // the hot-path relaxed increments (handler read loop, worker enqueue)
  // never false-share with the connection's buffers; snapshots read the
  // atomics without coordination and take `mu` only for the strings.
  struct alignas(64) ConnStats {
    uint64_t id = 0;    // immutable after accept
    std::string peer;   // immutable after accept
    // 0=handshake 1=idle 2=busy 3=closing
    std::atomic<int> state{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> statements{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> rate_limited{0};
    // Ordinal (== statements at dispatch) of the statement in flight;
    // 0 when idle.
    std::atomic<uint64_t> inflight_stmt{0};

    std::mutex mu;  // guards the mutable strings below
    std::string user;
    std::string statement;  // SQL in flight
  };

  // One client connection. The handler thread owns parsing and fd I/O;
  // worker threads only append to the (locked) output buffer and flip
  // `busy` back off.
  struct Conn : std::enable_shared_from_this<Conn> {
    Socket sock;
    size_t handler_index = 0;
    std::string peer;  // "ip:port" for diagnostics

    // Handler-thread state (no lock needed).
    std::string inbuf;
    bool authenticated = false;
    bool saw_eof = false;
    uint32_t next_stmt_id = 1;
    std::chrono::steady_clock::time_point write_stall_since{};
    bool write_stalled = false;
    bool epoll_registered = false;  // fd present in the handler's epoll set
    bool epoll_out = false;         // EPOLLOUT currently requested

    // Prepared statements; guarded: workers insert Prepare results while
    // the handler serves Bind/Execute/Close lookups.
    std::mutex stmts_mu;
    std::unordered_map<uint32_t, StmtEntry> stmts;

    // Output buffer; guarded (workers enqueue result frames).
    std::mutex out_mu;
    std::string outbuf;
    size_t out_off = 0;

    std::atomic<bool> busy{false};
    std::atomic<bool> close_after_flush{false};
    std::atomic<bool> dead{false};
    // Set by the handler when it defers a complete frame because a
    // statement is in flight; tells FinishStatement the handler must be
    // woken to drain the input buffer. Both sides use seq_cst so one of
    // them always observes the other's store (no missed wakeup).
    std::atomic<bool> deferred_input{false};

    SessionPtr session;
    std::string user;

    ConnStats stats;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  struct Handler {
    std::thread thread;
    int epfd = -1;        // epoll set: O(ready) wakeups however many conns
    int wake_read = -1;   // self-pipe: workers & acceptor wake the loop
    int wake_write = -1;
    std::mutex adopt_mu;
    std::vector<ConnPtr> adopting;
  };

  struct NetMetrics {
    obs::Counter* connections = nullptr;
    obs::Counter* frames_read = nullptr;
    obs::Counter* frames_written = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* queries = nullptr;
    obs::Counter* errors_sent = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* rate_limited = nullptr;
    obs::Counter* write_timeouts = nullptr;
    obs::Counter* slow_client_sheds = nullptr;
    obs::Gauge* connections_active = nullptr;
    // Refreshed at scrape time from the connection registry.
    obs::Gauge* conn_busy = nullptr;
    obs::Gauge* conn_idle = nullptr;
    obs::Gauge* conn_outbuf_bytes = nullptr;
  };

  void AcceptLoop();
  void HandlerLoop(Handler* handler);
  // One servicing pass over a connection: read newly arrived bytes (when
  // `revents` says there are any), parse/dispatch frames, flush pending
  // output, enforce the write-stall timeout, and maintain the conn's epoll
  // registration. Called with revents=0 from periodic maintenance scans.
  void ServiceConn(Handler* handler, const ConnPtr& conn, uint32_t revents,
                   char* scratch,
                   std::chrono::steady_clock::time_point now);
  void WakeHandler(size_t index);

  // Frame handling (handler thread).
  void ProcessInput(const ConnPtr& conn);
  void DispatchFrame(const ConnPtr& conn, const Frame& frame);
  void HandleHello(const ConnPtr& conn, const Frame& frame);
  void HandleBind(const ConnPtr& conn, const Frame& frame);
  void HandleClose(const ConnPtr& conn, const Frame& frame);
  void DispatchQuery(const ConnPtr& conn, const Frame& frame);
  void DispatchPrepare(const ConnPtr& conn, const Frame& frame);
  void DispatchExecute(const ConnPtr& conn, const Frame& frame);

  // Worker-side statement execution.
  void RunQuery(const ConnPtr& conn, QueryMsg msg);
  void RunPrepare(const ConnPtr& conn, uint32_t stmt_id, PrepareMsg msg);
  void RunExecute(const ConnPtr& conn, ExecuteMsg msg);
  // Bounded-wait per-user admission + deadline bookkeeping shared by
  // RunQuery/RunExecute. On success *remaining_timeout_ms holds the
  // statement budget net of admission wait.
  Status AdmitStatement(const ConnPtr& conn, uint32_t frame_timeout_ms,
                        int64_t* remaining_timeout_ms);
  // Connection-stats bookkeeping around one statement: dispatch marks the
  // connection busy with the statement's text, FinishStatement returns it
  // to idle.
  void NoteStatementStart(const ConnPtr& conn, const std::string& sql);

  // Clears `busy` and wakes the handler only if it has work left to do
  // (deferred input, a pending close, or a dead conn to reap). The common
  // request/response cycle finishes without touching the handler: the
  // worker flushed the response inline from EnqueueFrames.
  void FinishStatement(const ConnPtr& conn);

  // Output path. EnqueueFrames appends whole pre-encoded frames to the
  // connection's bounded output buffer and wakes its handler; overflow
  // sheds the client with kResourceExhausted. SendError/SendBatch are
  // convenience encoders on top of it.
  void EnqueueFrames(const ConnPtr& conn, std::string frames, size_t nframes);
  void SendError(const ConnPtr& conn, const Status& status);
  void SendBatch(const ConnPtr& conn, const ResultBatchMsg& msg);
  // `with_footer` appends the server-side span summary (per-phase µs,
  // plan-cache outcome, guard bytes) to the final batch — only when the
  // client requested tracing for this statement.
  void SendResult(const ConnPtr& conn, uint32_t stmt_id,
                  const ResultSet& result, bool with_footer = false);

  void CloseConn(const ConnPtr& conn);

  // Admin endpoint plumbing: starts/stops the AdminServer and registers
  // the msql_system.connections provider with the engine.
  Status StartAdmin();
  std::string StatuszJson() const;
  std::string TracezJson(int64_t min_ms) const;

  Engine* engine_;
  ServerOptions options_;
  NetMetrics metrics_;
  uint16_t port_ = 0;

  Socket listener_;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Handler>> handlers_;
  std::unique_ptr<ThreadPool> workers_;
  std::unique_ptr<RateLimiterRegistry> user_limiters_;

  std::unique_ptr<AdminServer> admin_;

  // Connection registry for /statusz, the msql_net_conn_* gauges and
  // msql_system.connections. Mutated at connection rate (accept/close),
  // read at scrape rate — a plain locked map is plenty.
  mutable std::mutex conns_mu_;
  std::unordered_map<uint64_t, ConnPtr> conns_by_id_;
  std::atomic<uint64_t> next_conn_id_{1};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_conns_{0};
  std::atomic<size_t> next_handler_{0};
};

}  // namespace msql::net

#endif  // MSQL_NET_SERVER_H_

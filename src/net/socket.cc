#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "common/string_util.h"

namespace msql::net {

namespace {

Status Errno(const char* what) {
  return Status(ErrorCode::kIo, StrCat(what, ": ", strerror(errno)));
}

// Remaining milliseconds until `deadline`, clamped to >= 0. A negative
// `timeout_ms` input means "no deadline" and is threaded through as -1
// (poll's infinite timeout).
int RemainingMs(bool has_deadline,
                std::chrono::steady_clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - now)
                      .count();
  return static_cast<int>(ms) + 1;
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* node = host.empty() ? "127.0.0.1" : host.c_str();
  if (host == "localhost") node = "127.0.0.1";
  if (inet_pton(AF_INET, node, &addr.sin_addr) != 1) {
    return Status(ErrorCode::kInvalidArgument,
                  StrCat("cannot parse IPv4 address '", host,
                         "' (msqld accepts dotted-quad or 'localhost')"));
  }
  return addr;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (fcntl(fd, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Result<Socket> ListenOn(const std::string& host, uint16_t port, int backlog,
                        uint16_t* bound_port) {
  MSQL_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Errno("socket");
  int one = 1;
  setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (listen(sock.fd(), backlog) < 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return sock;
}

Result<Socket> ConnectTo(const std::string& host, uint16_t port,
                         int64_t timeout_ms) {
  MSQL_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) return Errno("socket");
  // Connect non-blocking so the timeout is enforceable, then flip back.
  MSQL_RETURN_IF_ERROR(SetNonBlocking(sock.fd(), true));
  int rc = connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) return Errno("connect");
  if (rc < 0) {
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int timeout =
        timeout_ms <= 0 ? -1 : static_cast<int>(timeout_ms);
    const int n = poll(&pfd, 1, timeout);
    if (n < 0) return Errno("poll(connect)");
    if (n == 0) {
      return Status(ErrorCode::kDeadlineExceeded,
                    StrCat("connect to ", host, ":", port, " timed out after ",
                           timeout_ms, "ms"));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status(ErrorCode::kIo, StrCat("connect to ", host, ":", port,
                                           " failed: ", strerror(err)));
    }
  }
  MSQL_RETURN_IF_ERROR(SetNonBlocking(sock.fd(), false));
  SetNoDelay(sock.fd());
  return sock;
}

Status ReadExact(int fd, void* buf, size_t n, int64_t timeout_ms) {
  const bool has_deadline = timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char* p = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    pollfd pfd{fd, POLLIN, 0};
    const int remaining = RemainingMs(has_deadline, deadline);
    if (has_deadline && remaining == 0) {
      return Status(ErrorCode::kDeadlineExceeded, "socket read timed out");
    }
    const int rc = poll(&pfd, 1, remaining);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll(read)");
    }
    if (rc == 0) {
      return Status(ErrorCode::kDeadlineExceeded, "socket read timed out");
    }
    const ssize_t got = ::read(fd, p + done, n - done);
    if (got == 0) {
      return Status(ErrorCode::kIo, "connection closed by peer");
    }
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("read");
    }
    done += static_cast<size_t>(got);
  }
  return Status::Ok();
}

Status WriteAll(int fd, const void* buf, size_t n, int64_t timeout_ms) {
  const bool has_deadline = timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const char* p = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    pollfd pfd{fd, POLLOUT, 0};
    const int remaining = RemainingMs(has_deadline, deadline);
    if (has_deadline && remaining == 0) {
      return Status(ErrorCode::kDeadlineExceeded, "socket write timed out");
    }
    const int rc = poll(&pfd, 1, remaining);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll(write)");
    }
    if (rc == 0) {
      return Status(ErrorCode::kDeadlineExceeded, "socket write timed out");
    }
    const ssize_t put = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("write");
    }
    done += static_cast<size_t>(put);
  }
  return Status::Ok();
}

}  // namespace msql::net

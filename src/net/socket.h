#ifndef MSQL_NET_SOCKET_H_
#define MSQL_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/status.h"

// Thin POSIX socket helpers for the msqld server and client: RAII fd
// ownership plus the handful of blocking-with-deadline operations the
// blocking client needs. The server side uses non-blocking fds driven by
// poll() directly (net/server.cc).
namespace msql::net {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  // Releases ownership of the fd to the caller.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

// Binds and listens on host:port (TCP). port 0 picks an ephemeral port;
// the actual port is written to *bound_port when non-null.
Result<Socket> ListenOn(const std::string& host, uint16_t port, int backlog,
                        uint16_t* bound_port);

// Connects to host:port with a connect timeout; the returned socket is
// blocking with TCP_NODELAY set.
Result<Socket> ConnectTo(const std::string& host, uint16_t port,
                         int64_t timeout_ms);

Status SetNonBlocking(int fd, bool nonblocking);
void SetNoDelay(int fd);

// Blocking-with-deadline exact I/O for the client. timeout_ms <= 0 waits
// indefinitely. A peer close during ReadExact returns kIo ("connection
// closed"); a timeout returns kDeadlineExceeded.
Status ReadExact(int fd, void* buf, size_t n, int64_t timeout_ms);
Status WriteAll(int fd, const void* buf, size_t n, int64_t timeout_ms);

}  // namespace msql::net

#endif  // MSQL_NET_SOCKET_H_

#include "net/wire.h"

#include <cstring>

#include "common/string_util.h"

namespace msql::net {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "Hello";
    case FrameType::kQuery:
      return "Query";
    case FrameType::kPrepare:
      return "Prepare";
    case FrameType::kBind:
      return "Bind";
    case FrameType::kExecute:
      return "Execute";
    case FrameType::kClose:
      return "Close";
    case FrameType::kCancel:
      return "Cancel";
    case FrameType::kResultBatch:
      return "ResultBatch";
    case FrameType::kError:
      return "Error";
  }
  return "Unknown";
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v & 0xff));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case TypeKind::kNull:
      break;
    case TypeKind::kBool:
      PutU8(out, v.bool_val() ? 1 : 0);
      break;
    case TypeKind::kInt64:
      PutI64(out, v.int_val());
      break;
    case TypeKind::kDouble:
      PutDouble(out, v.double_val());
      break;
    case TypeKind::kString:
      PutString(out, v.str());
      break;
    case TypeKind::kDate:
      PutI64(out, v.date_days());
      break;
  }
}

Status WireReader::Need(size_t n) {
  if (buf_.size() - off_ < n) {
    return Status(ErrorCode::kIo,
                  StrCat("truncated frame payload: need ", n, " byte(s), ",
                         buf_.size() - off_, " available"));
  }
  return Status::Ok();
}

Result<uint8_t> WireReader::GetU8() {
  MSQL_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(buf_[off_++]);
}

Result<uint16_t> WireReader::GetU16() {
  MSQL_RETURN_IF_ERROR(Need(2));
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(buf_[off_ + i])) << (8 * i);
  }
  off_ += 2;
  return v;
}

Result<uint32_t> WireReader::GetU32() {
  MSQL_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[off_ + i])) << (8 * i);
  }
  off_ += 4;
  return v;
}

Result<uint64_t> WireReader::GetU64() {
  MSQL_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(buf_[off_ + i])) << (8 * i);
  }
  off_ += 8;
  return v;
}

Result<int64_t> WireReader::GetI64() {
  MSQL_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> WireReader::GetDouble() {
  MSQL_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string> WireReader::GetString() {
  MSQL_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (len > kMaxFramePayload) {
    return Status(ErrorCode::kIo,
                  StrCat("string length ", len, " exceeds frame cap"));
  }
  MSQL_RETURN_IF_ERROR(Need(len));
  std::string s = buf_.substr(off_, len);
  off_ += len;
  return s;
}

Result<Value> WireReader::GetValue() {
  MSQL_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (static_cast<TypeKind>(tag)) {
    case TypeKind::kNull:
      return Value::Null();
    case TypeKind::kBool: {
      MSQL_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value::Bool(b != 0);
    }
    case TypeKind::kInt64: {
      MSQL_ASSIGN_OR_RETURN(int64_t i, GetI64());
      return Value::Int(i);
    }
    case TypeKind::kDouble: {
      MSQL_ASSIGN_OR_RETURN(double d, GetDouble());
      return Value::Double(d);
    }
    case TypeKind::kString: {
      MSQL_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::String(std::move(s));
    }
    case TypeKind::kDate: {
      MSQL_ASSIGN_OR_RETURN(int64_t days, GetI64());
      return Value::Date(days);
    }
  }
  return Status(ErrorCode::kIo,
                StrCat("unknown value type tag ", static_cast<int>(tag)));
}

void AppendFrame(std::string* out, FrameType type,
                 const std::string& payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU8(out, static_cast<uint8_t>(type));
  out->append(payload);
}

Result<bool> TryParseFrame(const std::string& buf, size_t* off, Frame* out) {
  if (buf.size() - *off < kFrameHeaderBytes) return false;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buf[*off + i]))
           << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Status(ErrorCode::kIo,
                  StrCat("frame payload of ", len, " bytes exceeds the ",
                         kMaxFramePayload, "-byte cap"));
  }
  const uint8_t type = static_cast<uint8_t>(buf[*off + 4]);
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    return Status(ErrorCode::kIo,
                  StrCat("unknown frame type ", static_cast<int>(type)));
  }
  if (buf.size() - *off < kFrameHeaderBytes + len) return false;
  out->type = static_cast<FrameType>(type);
  out->payload = buf.substr(*off + kFrameHeaderBytes, len);
  *off += kFrameHeaderBytes + len;
  return true;
}

std::string EncodeHello(const HelloMsg& msg) {
  std::string p;
  PutU16(&p, msg.version);
  PutString(&p, msg.user);
  return p;
}

Result<HelloMsg> DecodeHello(const std::string& payload) {
  WireReader r(payload);
  HelloMsg msg;
  MSQL_ASSIGN_OR_RETURN(msg.version, r.GetU16());
  MSQL_ASSIGN_OR_RETURN(msg.user, r.GetString());
  return msg;
}

Status ValidateTraceId(const std::string& trace_id) {
  if (trace_id.size() > kMaxTraceIdBytes) {
    return Status(ErrorCode::kInvalidArgument,
                  StrCat("trace id of ", trace_id.size(),
                         " bytes exceeds the ", kMaxTraceIdBytes,
                         "-byte cap"));
  }
  for (char c : trace_id) {
    if (c < 0x21 || c > 0x7e) {
      return Status(ErrorCode::kInvalidArgument,
                    "trace id must be printable ASCII without spaces");
    }
  }
  return Status::Ok();
}

namespace {

// Trace context is appended only when set, so untraced statements stay
// byte-identical to protocol peers that predate the fields; decoders treat
// the absence as flags 0.
void PutTraceContext(std::string* p, uint8_t trace_flags,
                     const std::string& trace_id) {
  if (trace_flags == 0 && trace_id.empty()) return;
  PutU8(p, trace_flags);
  PutString(p, trace_id);
}

Status GetTraceContext(WireReader* r, uint8_t* trace_flags,
                       std::string* trace_id) {
  if (r->AtEnd()) return Status::Ok();
  MSQL_ASSIGN_OR_RETURN(*trace_flags, r->GetU8());
  MSQL_ASSIGN_OR_RETURN(*trace_id, r->GetString());
  return ValidateTraceId(*trace_id);
}

}  // namespace

std::string EncodeQuery(const QueryMsg& msg) {
  std::string p;
  PutString(&p, msg.sql);
  PutU32(&p, msg.timeout_ms);
  PutTraceContext(&p, msg.trace_flags, msg.trace_id);
  return p;
}

Result<QueryMsg> DecodeQuery(const std::string& payload) {
  WireReader r(payload);
  QueryMsg msg;
  MSQL_ASSIGN_OR_RETURN(msg.sql, r.GetString());
  MSQL_ASSIGN_OR_RETURN(msg.timeout_ms, r.GetU32());
  MSQL_RETURN_IF_ERROR(GetTraceContext(&r, &msg.trace_flags, &msg.trace_id));
  return msg;
}

std::string EncodePrepare(const PrepareMsg& msg) {
  std::string p;
  PutString(&p, msg.sql);
  PutU16(&p, static_cast<uint16_t>(msg.param_types.size()));
  for (TypeKind t : msg.param_types) PutU8(&p, static_cast<uint8_t>(t));
  return p;
}

Result<PrepareMsg> DecodePrepare(const std::string& payload) {
  WireReader r(payload);
  PrepareMsg msg;
  MSQL_ASSIGN_OR_RETURN(msg.sql, r.GetString());
  MSQL_ASSIGN_OR_RETURN(uint16_t n, r.GetU16());
  msg.param_types.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    MSQL_ASSIGN_OR_RETURN(uint8_t t, r.GetU8());
    if (t > static_cast<uint8_t>(TypeKind::kDate)) {
      return Status(ErrorCode::kIo,
                    StrCat("unknown parameter type tag ",
                           static_cast<int>(t)));
    }
    msg.param_types.push_back(static_cast<TypeKind>(t));
  }
  return msg;
}

std::string EncodeBind(const BindMsg& msg) {
  std::string p;
  PutU32(&p, msg.stmt_id);
  PutU16(&p, static_cast<uint16_t>(msg.params.size()));
  for (const Value& v : msg.params) PutValue(&p, v);
  return p;
}

Result<BindMsg> DecodeBind(const std::string& payload) {
  WireReader r(payload);
  BindMsg msg;
  MSQL_ASSIGN_OR_RETURN(msg.stmt_id, r.GetU32());
  MSQL_ASSIGN_OR_RETURN(uint16_t n, r.GetU16());
  msg.params.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    MSQL_ASSIGN_OR_RETURN(Value v, r.GetValue());
    msg.params.push_back(std::move(v));
  }
  return msg;
}

std::string EncodeExecute(const ExecuteMsg& msg) {
  std::string p;
  PutU32(&p, msg.stmt_id);
  PutU32(&p, msg.timeout_ms);
  PutTraceContext(&p, msg.trace_flags, msg.trace_id);
  return p;
}

Result<ExecuteMsg> DecodeExecute(const std::string& payload) {
  WireReader r(payload);
  ExecuteMsg msg;
  MSQL_ASSIGN_OR_RETURN(msg.stmt_id, r.GetU32());
  MSQL_ASSIGN_OR_RETURN(msg.timeout_ms, r.GetU32());
  MSQL_RETURN_IF_ERROR(GetTraceContext(&r, &msg.trace_flags, &msg.trace_id));
  return msg;
}

std::string EncodeClose(const CloseMsg& msg) {
  std::string p;
  PutU32(&p, msg.stmt_id);
  return p;
}

Result<CloseMsg> DecodeClose(const std::string& payload) {
  WireReader r(payload);
  CloseMsg msg;
  MSQL_ASSIGN_OR_RETURN(msg.stmt_id, r.GetU32());
  return msg;
}

std::string EncodeError(const ErrorMsg& msg) {
  std::string p;
  PutU8(&p, msg.code);
  PutString(&p, msg.message);
  return p;
}

Result<ErrorMsg> DecodeError(const std::string& payload) {
  WireReader r(payload);
  ErrorMsg msg;
  MSQL_ASSIGN_OR_RETURN(msg.code, r.GetU8());
  MSQL_ASSIGN_OR_RETURN(msg.message, r.GetString());
  return msg;
}

std::string EncodeResultBatch(const ResultBatchMsg& msg) {
  std::string p;
  PutU32(&p, msg.stmt_id);
  PutU8(&p, msg.kind);
  PutU8(&p, msg.last ? 1 : 0);
  PutU16(&p, msg.param_count);
  PutU16(&p, static_cast<uint16_t>(msg.columns.size()));
  for (size_t i = 0; i < msg.columns.size(); ++i) {
    PutString(&p, msg.columns[i]);
    PutU8(&p, static_cast<uint8_t>(msg.types[i]));
  }
  PutU32(&p, static_cast<uint32_t>(msg.rows.size()));
  for (const Row& row : msg.rows) {
    for (const Value& v : row) PutValue(&p, v);
  }
  PutU64(&p, msg.total_rows);
  PutU64(&p, msg.total_us);
  PutU8(&p, msg.plan_cache);
  // The trace footer is appended only when present, keeping untraced
  // responses byte-identical to the pre-footer protocol.
  if (msg.has_footer != 0) {
    PutU8(&p, 1);
    PutU32(&p, msg.admission_wait_us);
    PutU32(&p, msg.queue_wait_us);
    PutU32(&p, msg.parse_us);
    PutU32(&p, msg.bind_us);
    PutU32(&p, msg.measure_expand_us);
    PutU32(&p, msg.plan_us);
    PutU32(&p, msg.execute_us);
    PutU32(&p, msg.render_us);
    PutU64(&p, msg.guard_bytes);
  }
  return p;
}

Result<ResultBatchMsg> DecodeResultBatch(const std::string& payload) {
  WireReader r(payload);
  ResultBatchMsg msg;
  MSQL_ASSIGN_OR_RETURN(msg.stmt_id, r.GetU32());
  MSQL_ASSIGN_OR_RETURN(msg.kind, r.GetU8());
  MSQL_ASSIGN_OR_RETURN(uint8_t last, r.GetU8());
  msg.last = last != 0;
  MSQL_ASSIGN_OR_RETURN(msg.param_count, r.GetU16());
  MSQL_ASSIGN_OR_RETURN(uint16_t ncols, r.GetU16());
  msg.columns.reserve(ncols);
  msg.types.reserve(ncols);
  for (uint16_t i = 0; i < ncols; ++i) {
    MSQL_ASSIGN_OR_RETURN(std::string name, r.GetString());
    MSQL_ASSIGN_OR_RETURN(uint8_t t, r.GetU8());
    msg.columns.push_back(std::move(name));
    msg.types.push_back(static_cast<TypeKind>(t));
  }
  MSQL_ASSIGN_OR_RETURN(uint32_t nrows, r.GetU32());
  msg.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    Row row;
    row.reserve(ncols);
    for (uint16_t c = 0; c < ncols; ++c) {
      MSQL_ASSIGN_OR_RETURN(Value v, r.GetValue());
      row.push_back(std::move(v));
    }
    msg.rows.push_back(std::move(row));
  }
  MSQL_ASSIGN_OR_RETURN(msg.total_rows, r.GetU64());
  MSQL_ASSIGN_OR_RETURN(msg.total_us, r.GetU64());
  MSQL_ASSIGN_OR_RETURN(msg.plan_cache, r.GetU8());
  if (!r.AtEnd()) {
    MSQL_ASSIGN_OR_RETURN(msg.has_footer, r.GetU8());
    if (msg.has_footer != 0) {
      MSQL_ASSIGN_OR_RETURN(msg.admission_wait_us, r.GetU32());
      MSQL_ASSIGN_OR_RETURN(msg.queue_wait_us, r.GetU32());
      MSQL_ASSIGN_OR_RETURN(msg.parse_us, r.GetU32());
      MSQL_ASSIGN_OR_RETURN(msg.bind_us, r.GetU32());
      MSQL_ASSIGN_OR_RETURN(msg.measure_expand_us, r.GetU32());
      MSQL_ASSIGN_OR_RETURN(msg.plan_us, r.GetU32());
      MSQL_ASSIGN_OR_RETURN(msg.execute_us, r.GetU32());
      MSQL_ASSIGN_OR_RETURN(msg.render_us, r.GetU32());
      MSQL_ASSIGN_OR_RETURN(msg.guard_bytes, r.GetU64());
    }
  }
  return msg;
}

ErrorMsg ErrorFromStatus(const Status& status) {
  ErrorMsg msg;
  msg.code = static_cast<uint8_t>(status.code());
  msg.message = status.message();
  return msg;
}

Status StatusFromError(const ErrorMsg& msg) {
  ErrorCode code = ErrorCode::kIo;
  if (msg.code >= static_cast<uint8_t>(ErrorCode::kOk) &&
      msg.code <= static_cast<uint8_t>(ErrorCode::kDeadlineExceeded)) {
    code = static_cast<ErrorCode>(msg.code);
  }
  if (code == ErrorCode::kOk) code = ErrorCode::kIo;
  return Status(code, msg.message);
}

}  // namespace msql::net

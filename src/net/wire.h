#ifndef MSQL_NET_WIRE_H_
#define MSQL_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/value.h"

// The msqld wire protocol (docs/NETWORKING.md): a stream of length-prefixed
// binary frames in each direction. Frame layout:
//
//   u32  payload length (little-endian; excludes this header)
//   u8   frame type (FrameType)
//   ...  payload (type-specific, see the *Msg structs below)
//
// Integers are little-endian. Strings are u32 length + raw bytes. Values
// are a u8 TypeKind tag followed by the kind's payload (nothing for NULL,
// u8 for BOOL, i64 for INT64/DATE, 8 raw bytes for DOUBLE, string for
// STRING). The protocol is strictly request/response per connection: the
// client sends Hello/Query/Prepare/Bind/Execute/Close frames, the server
// answers each with one Error frame or one or more ResultBatch frames (the
// last carrying the trailer). Cancel is the one fire-and-forget frame: it
// has no response of its own — the statement it reaches unwinds with a
// kCancelled Error response.
namespace msql::net {

inline constexpr uint16_t kProtocolVersion = 1;

// Hard cap on a single frame's payload; a peer declaring more is treated
// as a protocol error (it would otherwise dictate our allocation).
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

// Frame header: u32 length + u8 type.
inline constexpr size_t kFrameHeaderBytes = 5;

enum class FrameType : uint8_t {
  kHello = 1,
  kQuery = 2,
  kPrepare = 3,
  kBind = 4,
  kExecute = 5,
  kClose = 6,
  kCancel = 7,
  kResultBatch = 8,
  kError = 9,
};

const char* FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// --- primitive append helpers (little-endian) ---

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutDouble(std::string* out, double v);
void PutString(std::string* out, const std::string& s);
void PutValue(std::string* out, const Value& v);

// Cursor-based payload reader; every getter fails with kIo on underflow
// instead of reading past the end, so a truncated or malicious payload
// surfaces as a clean error.
class WireReader {
 public:
  explicit WireReader(const std::string& buf) : buf_(buf) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Value> GetValue();

  bool AtEnd() const { return off_ >= buf_.size(); }
  size_t remaining() const { return buf_.size() - off_; }

 private:
  Status Need(size_t n);

  const std::string& buf_;
  size_t off_ = 0;
};

// Appends one complete frame (header + payload) to `out`.
void AppendFrame(std::string* out, FrameType type, const std::string& payload);

// Attempts to parse one complete frame starting at buf[*off]. Returns true
// and advances *off past the frame when one is fully buffered; false when
// more bytes are needed; an error Status for malformed input (oversized
// payload, unknown frame type).
Result<bool> TryParseFrame(const std::string& buf, size_t* off, Frame* out);

// --- typed payloads ---

// Hello is symmetric: the client introduces itself (version + user), the
// server confirms (version + banner in `user`).
struct HelloMsg {
  uint16_t version = kProtocolVersion;
  std::string user;
};

// Wire trace context (Query / Execute): bit 0 of `trace_flags` asks the
// server to trace the statement and return the per-phase footer on the
// final ResultBatch. `trace_id` is an optional client-chosen correlation
// id that lands in the server's QueryTrace (slow-query log, /tracez,
// msql_system.queries); it is capped at kMaxTraceIdBytes printable ASCII
// characters — anything else is a protocol error.
inline constexpr uint8_t kTraceFlagEnabled = 0x1;
inline constexpr size_t kMaxTraceIdBytes = 64;

// Validates a decoded trace id (length + printable ASCII, no spaces).
Status ValidateTraceId(const std::string& trace_id);

struct QueryMsg {
  std::string sql;
  uint32_t timeout_ms = 0;  // 0 = server default
  uint8_t trace_flags = 0;  // kTraceFlag*
  std::string trace_id;     // optional; only sent when trace_flags != 0
};

struct PrepareMsg {
  std::string sql;
  std::vector<TypeKind> param_types;
};

struct BindMsg {
  uint32_t stmt_id = 0;
  Row params;
};

struct ExecuteMsg {
  uint32_t stmt_id = 0;
  uint32_t timeout_ms = 0;
  uint8_t trace_flags = 0;  // kTraceFlag*
  std::string trace_id;
};

// stmt_id 0 requests a graceful connection close (the server acks, flushes
// and closes); nonzero closes one prepared statement.
struct CloseMsg {
  uint32_t stmt_id = 0;
};

struct ErrorMsg {
  uint8_t code = 0;  // ErrorCode, truncated to u8
  std::string message;
};

// One server response frame. `kind` 0 is a row-less ack (Prepare / Bind /
// Close); kind 1 carries rows. Schema travels in every batch so decoding
// is stateless; `last` marks the final batch of a response and validates
// the trailer fields.
struct ResultBatchMsg {
  uint32_t stmt_id = 0;      // echoes the statement; 0 for text queries
  uint8_t kind = 0;          // 0 = ack, 1 = rows
  bool last = true;
  uint16_t param_count = 0;  // Prepare ack: '?' ordinals in the statement
  std::vector<std::string> columns;
  std::vector<TypeKind> types;
  std::vector<Row> rows;
  // Trailer (meaningful when last): execution stats for the client.
  uint64_t total_rows = 0;
  uint64_t total_us = 0;
  uint8_t plan_cache = 0;  // QueryStats::PlanCacheOutcome

  // Optional trace footer, present when the statement was sent with
  // kTraceFlagEnabled: the server-side span summary (per-phase µs and
  // guard-charged bytes). Decoders treat an absent footer (older peers)
  // as has_footer = 0.
  uint8_t has_footer = 0;
  uint32_t admission_wait_us = 0;
  uint32_t queue_wait_us = 0;
  uint32_t parse_us = 0;
  uint32_t bind_us = 0;
  uint32_t measure_expand_us = 0;
  uint32_t plan_us = 0;
  uint32_t execute_us = 0;
  uint32_t render_us = 0;
  uint64_t guard_bytes = 0;
};

std::string EncodeHello(const HelloMsg& msg);
std::string EncodeQuery(const QueryMsg& msg);
std::string EncodePrepare(const PrepareMsg& msg);
std::string EncodeBind(const BindMsg& msg);
std::string EncodeExecute(const ExecuteMsg& msg);
std::string EncodeClose(const CloseMsg& msg);
std::string EncodeError(const ErrorMsg& msg);
std::string EncodeResultBatch(const ResultBatchMsg& msg);

Result<HelloMsg> DecodeHello(const std::string& payload);
Result<QueryMsg> DecodeQuery(const std::string& payload);
Result<PrepareMsg> DecodePrepare(const std::string& payload);
Result<BindMsg> DecodeBind(const std::string& payload);
Result<ExecuteMsg> DecodeExecute(const std::string& payload);
Result<CloseMsg> DecodeClose(const std::string& payload);
Result<ErrorMsg> DecodeError(const std::string& payload);
Result<ResultBatchMsg> DecodeResultBatch(const std::string& payload);

// Status <-> Error frame. Unknown u8 codes decode as kIo.
ErrorMsg ErrorFromStatus(const Status& status);
Status StatusFromError(const ErrorMsg& msg);

}  // namespace msql::net

#endif  // MSQL_NET_WIRE_H_

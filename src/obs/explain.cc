#include "obs/explain.h"

#include <cstdio>
#include <vector>

#include "common/string_util.h"

namespace msql::obs {

namespace {

std::string FormatMs(int64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(us) / 1000.0);
  return buf;
}

std::string StrategyNote(const ExplainOptions& opts) {
  std::string s;
  switch (opts.strategy) {
    case MeasureStrategy::kNaive:
      s = "naive";
      break;
    case MeasureStrategy::kMemoized:
      s = "memoized";
      break;
    case MeasureStrategy::kGrouped:
      s = "grouped";
      break;
  }
  if (opts.inline_visible_contexts) s += "+inline";
  return s;
}

// Which measure-expansion strategy actually fired at this node, from the
// observed counter deltas.
const char* FiredLabel(const OpStats& s) {
  const bool grouped = s.measure_grouped_probes > 0;
  const bool inlined = s.measure_inline_evals > 0;
  const bool scanned = s.measure_source_scans > 0;
  if (grouped + inlined + scanned > 1) return "mixed";
  if (grouped) return "grouped";
  if (inlined) return "inline";
  if (scanned) return "scan";
  return "cached";
}

void RenderNode(const LogicalPlan& plan, const ExplainOptions& opts,
                int indent, std::string* out) {
  std::string line(static_cast<size_t>(indent) * 2, ' ');
  line += plan.NodeLabel();

  // Measure-expansion notes, shared by EXPLAIN and EXPLAIN ANALYZE: which
  // measures this node defines (with their formulas) and how measure
  // references inside an Aggregate will be evaluated.
  std::vector<std::string> defs;
  for (const PlanMeasure& pm : plan.measures) {
    if (pm.define && pm.formula != nullptr) {
      defs.push_back(pm.name + " := " + pm.formula->ToString());
    }
  }
  if (!defs.empty()) line += " expands=[" + Join(defs, ", ") + "]";
  if (plan.kind == PlanKind::kAggregate && !plan.measure_evals.empty()) {
    line += " measure_eval=" + StrategyNote(opts);
  }

  if (opts.profile != nullptr) {
    auto it = opts.profile->find(&plan);
    if (it == opts.profile->end()) {
      line += " (never executed)";
    } else {
      // Time is inclusive of the subtree (children run inside the parent's
      // window, as in Postgres). Cache counters are attributed per node:
      // the recorded deltas are inclusive, so subtract the children's.
      OpStats self = it->second;
      for (const auto& child : plan.children) {
        auto cit = opts.profile->find(child.get());
        if (cit == opts.profile->end()) continue;
        const OpStats& c = cit->second;
        auto sub = [](uint64_t& a, uint64_t b) { a -= a < b ? a : b; };
        sub(self.measure_evals, c.measure_evals);
        sub(self.measure_cache_hits, c.measure_cache_hits);
        sub(self.measure_source_scans, c.measure_source_scans);
        sub(self.measure_inline_evals, c.measure_inline_evals);
        sub(self.measure_grouped_builds, c.measure_grouped_builds);
        sub(self.measure_grouped_probes, c.measure_grouped_probes);
        sub(self.subquery_execs, c.subquery_execs);
        sub(self.subquery_cache_hits, c.subquery_cache_hits);
        sub(self.shared_cache_hits, c.shared_cache_hits);
        sub(self.shared_cache_misses, c.shared_cache_misses);
        sub(self.exec_vectorized_batches, c.exec_vectorized_batches);
        sub(self.exec_row_fallbacks, c.exec_row_fallbacks);
      }
      line += StrCat(" (actual time=", FormatMs(it->second.time_us),
                     "ms rows=", it->second.rows_out,
                     " loops=", it->second.invocations, ")");
      if (self.exec_vectorized_batches > 0 || self.exec_row_fallbacks > 0) {
        const char* mode =
            self.exec_vectorized_batches == 0  ? "row"
            : self.exec_row_fallbacks == 0     ? "vectorized"
                                               : "mixed";
        line += StrCat(" exec=", mode,
                       " batches=", self.exec_vectorized_batches,
                       " fallbacks=", self.exec_row_fallbacks);
      }
      if (self.measure_evals > 0) {
        line += StrCat(" [measures: evals=", self.measure_evals,
                       " cache_hits=", self.measure_cache_hits,
                       " scans=", self.measure_source_scans,
                       " inline=", self.measure_inline_evals,
                       " grouped_builds=", self.measure_grouped_builds,
                       " grouped_probes=", self.measure_grouped_probes,
                       " shared_hits=", self.shared_cache_hits,
                       " shared_misses=", self.shared_cache_misses,
                       " fired=", FiredLabel(self), "]");
      }
      if (self.subquery_execs > 0 || self.subquery_cache_hits > 0) {
        line += StrCat(" [subqueries: execs=", self.subquery_execs,
                       " cache_hits=", self.subquery_cache_hits, "]");
      }
    }
  }

  *out += line;
  *out += "\n";
  for (const auto& child : plan.children) {
    RenderNode(*child, opts, indent + 1, out);
  }
}

}  // namespace

std::string RenderPlanTree(const LogicalPlan& plan,
                           const ExplainOptions& opts) {
  std::string out;
  RenderNode(plan, opts, 0, &out);
  return out;
}

std::string RenderAnalyzeSummary(const QueryStats& stats,
                                 const ExplainOptions& opts) {
  std::string out;
  out += StrCat("Execution: total=", FormatMs(stats.total_us),
                "ms rows_charged=", stats.rows_charged,
                " bytes_charged=", stats.bytes_charged, "\n");
  out += StrCat("Measures: evals=", stats.measure_evals,
                " cache_hits=", stats.measure_cache_hits,
                " source_scans=", stats.measure_source_scans,
                " inline_evals=", stats.measure_inline_evals,
                " grouped_builds=", stats.measure_grouped_builds,
                " grouped_probes=", stats.measure_grouped_probes,
                " parallel_tasks=", stats.measure_parallel_tasks,
                " shared_hits=", stats.shared_cache_hits,
                " shared_misses=", stats.shared_cache_misses,
                " strategy=", StrategyNote(opts), "\n");
  out += StrCat("Subqueries: execs=", stats.subquery_execs,
                " cache_hits=", stats.subquery_cache_hits, "\n");
  out += StrCat("Exec: vectorized_batches=", stats.exec_vectorized_batches,
                " row_fallbacks=", stats.exec_row_fallbacks, "\n");
  out += StrCat(
      "PlanCache: ",
      stats.plan_cache == QueryStats::PlanCacheOutcome::kHit    ? "hit"
      : stats.plan_cache == QueryStats::PlanCacheOutcome::kMiss ? "miss"
                                                                : "off",
      stats.plan_cache == QueryStats::PlanCacheOutcome::kHit
          ? " (bound plan reused; parse/bind/measure-expand skipped)"
          : "",
      "\n");
  if (stats.breaker_short_circuits > 0) {
    out += StrCat("Breakers: short_circuits=", stats.breaker_short_circuits,
                  " (breaker=open: degradable ops skipped)\n");
  }
  return out;
}

namespace {

// snake_case label for the Outcome: line, stable for tests/dashboards.
const char* OutcomeLabel(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    default:
      return "error";
  }
}

}  // namespace

std::string RenderAnalyzeOutcome(const Status& status) {
  return StrCat("Outcome: ", OutcomeLabel(status.code()), " (",
                status.message(), ")\n");
}

}  // namespace msql::obs

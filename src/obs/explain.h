#ifndef MSQL_OBS_EXPLAIN_H_
#define MSQL_OBS_EXPLAIN_H_

#include <string>

#include "common/query_stats.h"
#include "exec/exec_state.h"
#include "obs/op_profile.h"
#include "plan/plan.h"

namespace msql::obs {

// Shared plan-tree renderer behind both `EXPLAIN` and `EXPLAIN ANALYZE`
// (and Engine::Explain). Both modes print each node's LogicalPlan label
// plus measure-expansion notes; with a profile attached, each node also
// gets its actual row count, wall time, and cache hit/miss deltas.
struct ExplainOptions {
  // Null renders plain EXPLAIN; set by EXPLAIN ANALYZE after execution.
  const PlanProfile* profile = nullptr;
  // The option snapshot the query (would) run with, for the strategy note.
  MeasureStrategy strategy = MeasureStrategy::kMemoized;
  bool inline_visible_contexts = true;
};

std::string RenderPlanTree(const LogicalPlan& plan,
                           const ExplainOptions& opts);

// The trailing query-wide summary of EXPLAIN ANALYZE output.
std::string RenderAnalyzeSummary(const QueryStats& stats,
                                 const ExplainOptions& opts);

// Terminal-status line for an EXPLAIN ANALYZE whose statement did not
// complete ("Outcome: deadline_exceeded (...)"): the plan tree is still
// rendered, annotated with why execution stopped.
std::string RenderAnalyzeOutcome(const Status& status);

}  // namespace msql::obs

#endif  // MSQL_OBS_EXPLAIN_H_

#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace msql::obs {

namespace {

// Prometheus sample values: shortest representation that round-trips the
// integral cases cleanly ("42", not "42.000000").
std::string FormatSample(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it != families_.end()) {
    return it->second.kind == Kind::kCounter ? it->second.counter.get()
                                             : nullptr;
  }
  Family f;
  f.kind = Kind::kCounter;
  f.help = help;
  f.counter = std::make_unique<Counter>();
  Counter* out = f.counter.get();
  families_.emplace(name, std::move(f));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it != families_.end()) {
    return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
  }
  Family f;
  f.kind = Kind::kGauge;
  f.help = help;
  f.gauge = std::make_unique<Gauge>();
  Gauge* out = f.gauge.get();
  families_.emplace(name, std::move(f));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it != families_.end()) {
    return it->second.kind == Kind::kHistogram ? it->second.histogram.get()
                                               : nullptr;
  }
  Family f;
  f.kind = Kind::kHistogram;
  f.help = help;
  f.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = f.histogram.get();
  families_.emplace(name, std::move(f));
  return out;
}

std::string MetricsRegistry::Text() const {
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, f] : families_) {
    if (!f.help.empty()) os << "# HELP " << name << " " << f.help << "\n";
    switch (f.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << f.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << FormatSample(f.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        const std::vector<uint64_t> counts = f.histogram->bucket_counts();
        const std::vector<double>& bounds = f.histogram->bounds();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < bounds.size(); ++i) {
          cumulative += counts[i];
          os << name << "_bucket{le=\"" << FormatSample(bounds[i]) << "\"} "
             << cumulative << "\n";
        }
        cumulative += counts[bounds.size()];
        os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        os << name << "_sum " << FormatSample(f.histogram->sum()) << "\n";
        os << name << "_count " << f.histogram->count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Samples() const {
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(families_.size());
  for (const auto& [name, f] : families_) {
    switch (f.kind) {
      case Kind::kCounter:
        out.push_back({name, "counter", f.help,
                       static_cast<double>(f.counter->value())});
        break;
      case Kind::kGauge:
        out.push_back({name, "gauge", f.help, f.gauge->value()});
        break;
      case Kind::kHistogram:
        out.push_back({name + "_count", "histogram", f.help,
                       static_cast<double>(f.histogram->count())});
        out.push_back({name + "_sum", "histogram", f.help,
                       f.histogram->sum()});
        break;
    }
  }
  return out;
}

std::vector<double> MetricsRegistry::LatencyBucketsMs() {
  return {0.05, 0.1, 0.25, 0.5, 1,    2.5,  5,    10,
          25,   50,  100,  250, 500,  1000, 2500, 10000};
}

std::vector<double> MetricsRegistry::LatencyBucketsSeconds() {
  return {0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
          0.025,   0.05,   0.1,     0.25,   0.5,   1,      2.5,   10};
}

std::vector<double> MetricsRegistry::DepthBuckets() {
  return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
}

}  // namespace msql::obs

#ifndef MSQL_OBS_METRICS_H_
#define MSQL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace msql::obs {

// Lock-light metrics primitives. Registration (GetCounter / GetGauge /
// GetHistogram) takes the registry mutex once and returns a stable pointer;
// callers cache the pointer and every subsequent update is a relaxed atomic
// on the hot path — no lock, no lookup.
//
// Naming conventions (enforced by scripts/lint_metric_names.sh):
//   * snake_case with the `msql_` prefix,
//   * counters end in `_total`,
//   * histograms end in a unit suffix (`_ms`, `_bytes`, `_rows`, `_depth`).

// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Point-in-time value (may go down; fractional values allowed, e.g. hit
// ratios).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
// with an implicit +Inf overflow bucket. Observe() is one binary search plus
// three relaxed atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket counts (not cumulative); last element is the +Inf bucket.
  std::vector<uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

// Engine-wide metric registry with Prometheus-style text exposition. A name
// registers exactly one kind; re-registering an existing name returns the
// existing instrument (help/bounds of the first registration win), and a
// kind mismatch returns nullptr.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  // Prometheus text exposition: `# HELP` / `# TYPE` headers followed by the
  // samples; histograms render cumulative `_bucket{le="..."}` series plus
  // `_sum` / `_count`.
  std::string Text() const;

  // One flattened sample per exported series, for programmatic consumers
  // (the msql_system.metrics introspection table). Counters and gauges
  // yield one sample; a histogram yields `<name>_count` and `<name>_sum`
  // (the per-bucket series are a rendering concern, not a table row).
  struct Sample {
    std::string name;
    std::string kind;  // "counter" | "gauge" | "histogram"
    std::string help;
    double value = 0;
  };
  std::vector<Sample> Samples() const;

  // Default latency buckets, in milliseconds (0.05ms .. 10s).
  static std::vector<double> LatencyBucketsMs();
  // Wait-time buckets, in seconds (50us .. 10s) — for admission waits and
  // other durations conventionally exported in seconds.
  static std::vector<double> LatencyBucketsSeconds();
  // Default small-integer buckets for queue depths and similar.
  static std::vector<double> DepthBuckets();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;  // ordered => stable exposition
};

}  // namespace msql::obs

#endif  // MSQL_OBS_METRICS_H_

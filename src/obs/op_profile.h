#ifndef MSQL_OBS_OP_PROFILE_H_
#define MSQL_OBS_OP_PROFILE_H_

#include <cstdint>
#include <unordered_map>

namespace msql {
struct LogicalPlan;  // plan/plan.h
}  // namespace msql

namespace msql::obs {

// Runtime statistics of one plan node, accumulated by the executor when a
// query runs under EXPLAIN ANALYZE. All values are *inclusive* of the
// node's subtree (children execute inside the parent's window); the
// renderer subtracts child totals to attribute per-node ("self") work.
// Cache counters are deltas of the ExecState instrumentation across the
// node's execution, so measure/subquery work done by an operator (e.g. the
// Aggregate measure-eval loop) lands on that operator.
struct OpStats {
  uint64_t invocations = 0;  // "loops": >1 when re-executed (e.g. subplans)
  uint64_t rows_out = 0;     // total rows produced across invocations
  int64_t time_us = 0;

  uint64_t measure_evals = 0;
  uint64_t measure_cache_hits = 0;
  uint64_t measure_source_scans = 0;
  uint64_t measure_inline_evals = 0;
  uint64_t measure_grouped_builds = 0;
  uint64_t measure_grouped_probes = 0;
  uint64_t subquery_execs = 0;
  uint64_t subquery_cache_hits = 0;
  uint64_t shared_cache_hits = 0;
  uint64_t shared_cache_misses = 0;
  uint64_t exec_vectorized_batches = 0;
  uint64_t exec_row_fallbacks = 0;
};

// Per-query profile, keyed by plan-node identity (stable within a query).
// Owned by the EXPLAIN ANALYZE driver; ExecState carries a pointer (null =>
// profiling off, the executor's default).
using PlanProfile = std::unordered_map<const LogicalPlan*, OpStats>;

}  // namespace msql::obs

#endif  // MSQL_OBS_OP_PROFILE_H_

#include "obs/trace.h"

#include <fstream>

#include "bench/json_writer.h"
#include "common/fault_injection.h"
#include "common/query_guard.h"

namespace msql::obs {

namespace {

int64_t ElapsedUsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void SpanToJson(const TraceSpan& span, bench::JsonWriter* w) {
  w->BeginObject();
  w->Key("name");
  w->String(span.name);
  w->Key("start_us");
  w->Int(span.start_us);
  w->Key("duration_us");
  w->Int(span.duration_us);
  if (span.guard_bytes != 0) {
    w->Key("guard_bytes");
    w->Int(static_cast<int64_t>(span.guard_bytes));
  }
  if (!span.outcome.empty()) {
    w->Key("outcome");
    w->String(span.outcome);
  }
  if (!span.children.empty()) {
    w->Key("spans");
    w->BeginArray();
    for (const auto& child : span.children) SpanToJson(*child, w);
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

QueryTrace::QueryTrace(uint64_t id, std::string sql, uint64_t session_id,
                       std::string user)
    : id_(id),
      sql_(std::move(sql)),
      session_id_(session_id),
      user_(std::move(user)),
      start_(std::chrono::steady_clock::now()) {
  root_.name = "query";
  open_.push_back(&root_);
}

int64_t QueryTrace::ElapsedUs() const { return ElapsedUsSince(start_); }

TraceSpan* QueryTrace::OpenSpan(const char* name) {
  auto span = std::make_unique<TraceSpan>();
  span->name = name;
  span->start_us = ElapsedUs();
  TraceSpan* raw = span.get();
  open_.back()->children.push_back(std::move(span));
  open_.push_back(raw);
  return raw;
}

void QueryTrace::CloseSpan(TraceSpan* span, uint64_t guard_bytes,
                           const Status& status) {
  span->duration_us = ElapsedUs() - span->start_us;
  span->guard_bytes = guard_bytes;
  if (!status.ok()) span->outcome = ErrorCodeName(status.code());
  // Tolerate out-of-order closes (early returns): pop back to this span.
  while (open_.size() > 1 && open_.back() != span) open_.pop_back();
  if (open_.size() > 1) open_.pop_back();
}

void QueryTrace::AddCompletedSpan(const char* name, int64_t start_us,
                                  int64_t duration_us) {
  auto span = std::make_unique<TraceSpan>();
  span->name = name;
  span->start_us = start_us;
  span->duration_us = duration_us;
  open_.back()->children.push_back(std::move(span));
}

void QueryTrace::Finish(const Status& status, uint64_t rows_returned) {
  total_us_ = ElapsedUs();
  root_.duration_us = total_us_;
  code_ = status.code();
  error_ = status.message();
  if (!status.ok()) root_.outcome = ErrorCodeName(status.code());
  rows_returned_ = rows_returned;
  open_.clear();
}

void QueryTrace::ToJson(std::ostream& out) const {
  bench::JsonWriter w(out);
  w.BeginObject();
  w.Key("id");
  w.Int(static_cast<int64_t>(id_));
  w.Key("sql");
  w.String(sql_);
  if (session_id_ != 0) {
    w.Key("session");
    w.Int(static_cast<int64_t>(session_id_));
  }
  if (!user_.empty()) {
    w.Key("user");
    w.String(user_);
  }
  if (!trace_id_.empty()) {
    w.Key("trace_id");
    w.String(trace_id_);
  }
  if (!peer_.empty()) {
    w.Key("peer");
    w.String(peer_);
  }
  w.Key("total_us");
  w.Int(total_us_);
  if (queue_wait_us_ > 0) {
    w.Key("queue_wait_us");
    w.Int(queue_wait_us_);
  }
  w.Key("status");
  w.String(ok() ? "ok" : ErrorCodeName(code_));
  if (!ok()) {
    w.Key("error");
    w.String(error_);
  }
  w.Key("rows");
  w.Int(static_cast<int64_t>(rows_returned_));
  w.Key("stats");
  w.BeginObject();
  w.Key("measure_evals");
  w.Int(static_cast<int64_t>(stats_.measure_evals));
  w.Key("measure_cache_hits");
  w.Int(static_cast<int64_t>(stats_.measure_cache_hits));
  w.Key("measure_source_scans");
  w.Int(static_cast<int64_t>(stats_.measure_source_scans));
  w.Key("measure_inline_evals");
  w.Int(static_cast<int64_t>(stats_.measure_inline_evals));
  w.Key("subquery_execs");
  w.Int(static_cast<int64_t>(stats_.subquery_execs));
  w.Key("subquery_cache_hits");
  w.Int(static_cast<int64_t>(stats_.subquery_cache_hits));
  w.Key("shared_cache_hits");
  w.Int(static_cast<int64_t>(stats_.shared_cache_hits));
  w.Key("shared_cache_misses");
  w.Int(static_cast<int64_t>(stats_.shared_cache_misses));
  w.Key("rows_charged");
  w.Int(static_cast<int64_t>(stats_.rows_charged));
  w.Key("bytes_charged");
  w.Int(static_cast<int64_t>(stats_.bytes_charged));
  w.EndObject();
  w.Key("spans");
  w.BeginArray();
  for (const auto& child : root_.children) SpanToJson(*child, &w);
  w.EndArray();
  w.EndObject();
}

ScopedSpan::ScopedSpan(QueryTrace* trace, const char* name,
                       const QueryGuard* guard)
    : trace_(trace), guard_(guard) {
  if (trace_ == nullptr) return;
  span_ = trace_->OpenSpan(name);
  if (guard_ != nullptr) bytes_at_open_ = guard_->bytes_charged();
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr) return;
  const uint64_t bytes =
      guard_ != nullptr ? guard_->bytes_charged() - bytes_at_open_ : 0;
  trace_->CloseSpan(span_, bytes, status_);
}

RingBufferSink::RingBufferSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Status RingBufferSink::Emit(const TracePtr& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_front(trace);
  while (traces_.size() > capacity_) traces_.pop_back();
  return Status::Ok();
}

std::vector<TracePtr> RingBufferSink::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TracePtr>(traces_.begin(), traces_.end());
}

SlowQueryLogSink::SlowQueryLogSink(int64_t threshold_ms, std::ostream* out)
    : threshold_ms_(threshold_ms), out_(out) {}

std::shared_ptr<SlowQueryLogSink> SlowQueryLogSink::OpenFile(
    int64_t threshold_ms, const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  auto sink = std::make_shared<SlowQueryLogSink>(threshold_ms, file.get());
  sink->owned_ = std::move(file);
  return sink;
}

Status SlowQueryLogSink::Emit(const TracePtr& trace) {
  if (trace->total_us() < threshold_ms_ * 1000) return Status::Ok();
  MSQL_FAULT_POINT("obs.slow_log_write");
  std::lock_guard<std::mutex> lock(mu_);
  trace->ToJson(*out_);
  *out_ << "\n";
  out_->flush();
  if (!*out_) {
    return Status(ErrorCode::kIo, "slow-query log write failed");
  }
  return Status::Ok();
}

void TraceCollector::AddSink(std::shared_ptr<TraceSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

bool TraceCollector::HasSinks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !sinks_.empty();
}

void TraceCollector::Publish(const TracePtr& trace, Counter* err_counter) {
  std::vector<std::shared_ptr<TraceSink>> sinks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sinks = sinks_;
  }
  for (const auto& sink : sinks) {
    Status st = Status::Ok();
    // Inline MSQL_FAULT_POINT: Publish returns void, and an injected or
    // real sink failure must degrade to a counter bump, not an error.
    if (FaultInjector::Instance().active()) {
      st = FaultInjector::Instance().Checkpoint("obs.trace_sink");
    }
    if (st.ok()) st = sink->Emit(trace);
    if (!st.ok() && err_counter != nullptr) err_counter->Increment();
  }
}

}  // namespace msql::obs

#ifndef MSQL_OBS_TRACE_H_
#define MSQL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/query_stats.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace msql {
class QueryGuard;  // common/query_guard.h
}  // namespace msql

namespace msql::obs {

// One timed phase of a query (parse, bind, measure-expand, plan,
// queue-wait, execute, render), nested: children are sub-phases opened
// while this span was the innermost open one. Offsets are relative to the
// trace start; `guard_bytes` is the query-guard memory charged while the
// span was open (0 for spans without a guard, e.g. parse).
struct TraceSpan {
  std::string name;
  int64_t start_us = 0;
  int64_t duration_us = 0;
  uint64_t guard_bytes = 0;
  // Empty while the span completed cleanly; otherwise the error-code label
  // of the Status it unwound with ("cancelled", "resource exhausted", ...).
  std::string outcome;
  std::vector<std::unique_ptr<TraceSpan>> children;
};

// The full record of one query: identity, span tree, outcome, per-query
// execution stats. Built single-threaded by the executing query, sealed by
// Finish(), then published to sinks as shared_ptr<const QueryTrace>.
class QueryTrace {
 public:
  QueryTrace(uint64_t id, std::string sql, uint64_t session_id,
             std::string user);

  // Span stack used by ScopedSpan: opens a child of the innermost open
  // span. The returned pointer stays valid until CloseSpan (children are
  // heap-allocated, so sibling growth never moves them).
  TraceSpan* OpenSpan(const char* name);
  void CloseSpan(TraceSpan* span, uint64_t guard_bytes, const Status& status);

  // Records an interval measured elsewhere (queue wait, binder's
  // measure-expand accumulator) as a child of the innermost open span.
  void AddCompletedSpan(const char* name, int64_t start_us,
                        int64_t duration_us);

  // Seals the trace with the statement's outcome.
  void Finish(const Status& status, uint64_t rows_returned);

  uint64_t id() const { return id_; }
  const std::string& sql() const { return sql_; }
  uint64_t session_id() const { return session_id_; }
  const std::string& user() const { return user_; }
  // Client-supplied correlation id (wire trace context); empty in-process.
  const std::string& trace_id() const { return trace_id_; }
  void set_trace_id(std::string id) { trace_id_ = std::move(id); }
  // Connection identity ("ip:port#connid") for server-side statements;
  // empty for embedded queries.
  const std::string& peer() const { return peer_; }
  void set_peer(std::string peer) { peer_ = std::move(peer); }
  const TraceSpan& root() const { return root_; }
  int64_t total_us() const { return total_us_; }
  int64_t queue_wait_us() const { return queue_wait_us_; }
  void set_queue_wait_us(int64_t us) { queue_wait_us_ = us; }
  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode error_code() const { return code_; }
  const std::string& error_message() const { return error_; }
  uint64_t rows_returned() const { return rows_returned_; }
  const QueryStats& stats() const { return stats_; }
  void set_stats(const QueryStats& s) { stats_ = s; }

  // Microseconds since this trace started.
  int64_t ElapsedUs() const;

  // One JSON object (no trailing newline): the slow-query log line format
  // documented in docs/OBSERVABILITY.md.
  void ToJson(std::ostream& out) const;

 private:
  uint64_t id_;
  std::string sql_;
  uint64_t session_id_;
  std::string user_;
  std::string trace_id_;
  std::string peer_;
  std::chrono::steady_clock::time_point start_;
  TraceSpan root_;
  std::vector<TraceSpan*> open_;  // innermost open span last
  int64_t total_us_ = 0;
  int64_t queue_wait_us_ = 0;
  ErrorCode code_ = ErrorCode::kOk;
  std::string error_;
  uint64_t rows_returned_ = 0;
  QueryStats stats_;
};

using TracePtr = std::shared_ptr<const QueryTrace>;

// RAII span: opens on construction, closes on destruction. Null-safe — a
// null trace makes every operation a no-op, which is what keeps disabled
// tracing one branch per phase. With a guard, records the guard-charged
// byte delta over the span's lifetime.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, const char* name,
             const QueryGuard* guard = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Marks the span's outcome; unset means it completed cleanly.
  void set_status(const Status& st) {
    if (trace_ != nullptr && !st.ok()) status_ = st;
  }

 private:
  QueryTrace* trace_;
  TraceSpan* span_ = nullptr;
  const QueryGuard* guard_;
  uint64_t bytes_at_open_ = 0;
  Status status_;
};

// Destination for finished traces. Emit() may fail (I/O, injected fault);
// failures never fail the query — the collector counts them.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual Status Emit(const TracePtr& trace) = 0;
};

// Keeps the last `capacity` traces in memory for Engine::RecentTraces().
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(size_t capacity);

  Status Emit(const TracePtr& trace) override;

  // Newest first.
  std::vector<TracePtr> Recent() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TracePtr> traces_;  // front = newest
};

// Appends traces at or above a total-time threshold as JSON lines
// (one object per line). threshold_ms 0 logs every trace.
class SlowQueryLogSink : public TraceSink {
 public:
  // `out` is borrowed and must outlive the sink.
  SlowQueryLogSink(int64_t threshold_ms, std::ostream* out);

  // Opens `path` for appending; if the file cannot be opened, Emit()
  // reports the failure (degrading gracefully via the collector).
  static std::shared_ptr<SlowQueryLogSink> OpenFile(int64_t threshold_ms,
                                                    const std::string& path);

  Status Emit(const TracePtr& trace) override;

  int64_t threshold_ms() const { return threshold_ms_; }

 private:
  int64_t threshold_ms_;
  std::unique_ptr<std::ostream> owned_;  // set by OpenFile
  std::ostream* out_;
  std::mutex mu_;
};

// Fans finished traces out to the registered sinks. Sink failures — real or
// injected at the `obs.trace_sink` checkpoint — are swallowed and counted
// on `err_counter` (metric msql_obs_sink_errors_total): a broken sink must
// never fail a healthy query.
class TraceCollector {
 public:
  void AddSink(std::shared_ptr<TraceSink> sink);
  bool HasSinks() const;
  void Publish(const TracePtr& trace, Counter* err_counter);

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<TraceSink>> sinks_;
};

}  // namespace msql::obs

#endif  // MSQL_OBS_TRACE_H_

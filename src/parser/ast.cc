#include "parser/ast.h"

#include "common/string_util.h"

namespace msql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kConcat: return "||";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kIsDistinctFrom: return "IS DISTINCT FROM";
    case BinaryOp::kIsNotDistinctFrom: return "IS NOT DISTINCT FROM";
  }
  return "?";
}

namespace {

std::string QuoteIdent(const std::string& name) {
  // Emit bare identifiers; quoting is only needed for round-tripping odd
  // names, which the engine does not generate.
  return name;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kColumnRef: {
      std::vector<std::string> quoted;
      for (const auto& p : parts) quoted.push_back(QuoteIdent(p));
      return Join(quoted, ".");
    }
    case ExprKind::kStar:
      return star_table.empty() ? "*" : star_table + ".*";
    case ExprKind::kFuncCall: {
      std::string s = func_name + "(";
      if (star_arg) {
        s += "*";
      } else {
        if (distinct) s += "DISTINCT ";
        std::vector<std::string> parts_s;
        for (const auto& a : args) parts_s.push_back(a->ToString());
        s += Join(parts_s, ", ");
      }
      s += ")";
      if (filter) s += " FILTER (WHERE " + filter->ToString() + ")";
      if (over) {
        s += " OVER (";
        if (!over->partition_by.empty()) {
          s += "PARTITION BY ";
          std::vector<std::string> ps;
          for (const auto& p : over->partition_by) ps.push_back(p->ToString());
          s += Join(ps, ", ");
        }
        if (!over->order_by.empty()) {
          if (!over->partition_by.empty()) s += " ";
          s += "ORDER BY ";
          std::vector<std::string> os;
          for (const auto& [e, desc] : over->order_by) {
            os.push_back(e->ToString() + (desc ? " DESC" : ""));
          }
          s += Join(os, ", ");
        }
        s += ")";
      }
      return s;
    }
    case ExprKind::kUnary:
      return unary_op == UnaryOp::kNeg ? "(-" + left->ToString() + ")"
                                       : "(NOT " + left->ToString() + ")";
    case ExprKind::kBinary:
      return StrCat("(", left->ToString(), " ", BinaryOpName(binary_op), " ",
                    right->ToString(), ")");
    case ExprKind::kCase: {
      std::string s = "CASE";
      if (case_operand) s += " " + case_operand->ToString();
      for (const auto& [w, t] : when_clauses) {
        s += " WHEN " + w->ToString() + " THEN " + t->ToString();
      }
      if (else_expr) s += " ELSE " + else_expr->ToString();
      return s + " END";
    }
    case ExprKind::kCast:
      return "CAST(" + left->ToString() + " AS " + cast_type + ")";
    case ExprKind::kIsNull:
      return "(" + left->ToString() + (negated ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::kInList: {
      std::vector<std::string> items;
      for (const auto& e : in_list) items.push_back(e->ToString());
      return StrCat("(", left->ToString(), negated ? " NOT IN (" : " IN (",
                    Join(items, ", "), "))");
    }
    case ExprKind::kInSubquery:
      return StrCat("(", left->ToString(), negated ? " NOT IN (" : " IN (",
                    subquery->ToString(), "))");
    case ExprKind::kBetween:
      return StrCat("(", left->ToString(), negated ? " NOT BETWEEN " : " BETWEEN ",
                    between_low->ToString(), " AND ", between_high->ToString(),
                    ")");
    case ExprKind::kLike:
      return StrCat("(", left->ToString(), negated ? " NOT LIKE " : " LIKE ",
                    right->ToString(), ")");
    case ExprKind::kExists:
      return StrCat(negated ? "NOT EXISTS (" : "EXISTS (",
                    subquery->ToString(), ")");
    case ExprKind::kSubquery:
      return "(" + subquery->ToString() + ")";
    case ExprKind::kAt: {
      std::string s = left->ToString() + " AT (";
      std::vector<std::string> mods;
      for (const auto& m : at_modifiers) {
        switch (m.kind) {
          case AtModifier::Kind::kAll:
            mods.push_back("ALL");
            break;
          case AtModifier::Kind::kAllDims: {
            std::string d = "ALL";
            for (const auto& e : m.dims) d += " " + e->ToString();
            mods.push_back(d);
            break;
          }
          case AtModifier::Kind::kSet:
            mods.push_back("SET " + m.set_dim->ToString() + " = " +
                           m.value->ToString());
            break;
          case AtModifier::Kind::kVisible:
            mods.push_back("VISIBLE");
            break;
          case AtModifier::Kind::kWhere:
            mods.push_back("WHERE " + m.predicate->ToString());
            break;
        }
      }
      return s + Join(mods, " ") + ")";
    }
    case ExprKind::kCurrent:
      return "CURRENT " + current_dim;
    case ExprKind::kParam:
      return "?";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->parts = parts;
  e->star_table = star_table;
  e->func_name = func_name;
  for (const auto& a : args) e->args.push_back(a->Clone());
  e->distinct = distinct;
  e->star_arg = star_arg;
  if (filter) e->filter = filter->Clone();
  if (over) {
    e->over = std::make_unique<WindowSpec>();
    for (const auto& p : over->partition_by) {
      e->over->partition_by.push_back(p->Clone());
    }
    for (const auto& [expr, desc] : over->order_by) {
      e->over->order_by.emplace_back(expr->Clone(), desc);
    }
  }
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  if (case_operand) e->case_operand = case_operand->Clone();
  for (const auto& [w, t] : when_clauses) {
    e->when_clauses.emplace_back(w->Clone(), t->Clone());
  }
  if (else_expr) e->else_expr = else_expr->Clone();
  e->cast_type = cast_type;
  e->negated = negated;
  for (const auto& i : in_list) e->in_list.push_back(i->Clone());
  if (between_low) e->between_low = between_low->Clone();
  if (between_high) e->between_high = between_high->Clone();
  if (subquery) e->subquery = subquery->Clone();
  for (const auto& m : at_modifiers) {
    AtModifier mc;
    mc.kind = m.kind;
    for (const auto& d : m.dims) mc.dims.push_back(d->Clone());
    if (m.set_dim) mc.set_dim = m.set_dim->Clone();
    if (m.value) mc.value = m.value->Clone();
    if (m.predicate) mc.predicate = m.predicate->Clone();
    e->at_modifiers.push_back(std::move(mc));
  }
  e->current_dim = current_dim;
  e->param_index = param_index;
  return e;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::vector<std::string> parts) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->parts = std::move(parts);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

std::string TableRef::ToString() const {
  switch (kind) {
    case TableRefKind::kBaseTable:
      return table_name + (alias.empty() ? "" : " AS " + alias);
    case TableRefKind::kSubquery:
      return "(" + subquery->ToString() + ")" +
             (alias.empty() ? "" : " AS " + alias);
    case TableRefKind::kJoin: {
      std::string jt;
      switch (join_type) {
        case JoinType::kInner: jt = " JOIN "; break;
        case JoinType::kLeft: jt = " LEFT JOIN "; break;
        case JoinType::kRight: jt = " RIGHT JOIN "; break;
        case JoinType::kFull: jt = " FULL JOIN "; break;
        case JoinType::kCross: jt = " CROSS JOIN "; break;
      }
      std::string s = left->ToString() + jt + right->ToString();
      if (on_condition) s += " ON " + on_condition->ToString();
      if (!using_cols.empty()) s += " USING (" + Join(using_cols, ", ") + ")";
      return s;
    }
  }
  return "?";
}

TableRefPtr TableRef::Clone() const {
  auto t = std::make_unique<TableRef>();
  t->kind = kind;
  t->table_name = table_name;
  t->alias = alias;
  if (subquery) t->subquery = subquery->Clone();
  t->join_type = join_type;
  if (left) t->left = left->Clone();
  if (right) t->right = right->Clone();
  if (on_condition) t->on_condition = on_condition->Clone();
  t->using_cols = using_cols;
  return t;
}

std::string SelectStmt::ToString() const {
  std::string s;
  if (!ctes.empty()) {
    s += "WITH ";
    std::vector<std::string> cs;
    for (const auto& c : ctes) {
      cs.push_back(c.name + " AS (" + c.select->ToString() + ")");
    }
    s += Join(cs, ", ") + " ";
  }
  s += "SELECT ";
  if (distinct) s += "DISTINCT ";
  std::vector<std::string> items;
  for (const auto& item : select_list) {
    if (item.is_star) {
      items.push_back(item.star_table.empty() ? "*" : item.star_table + ".*");
      continue;
    }
    std::string t = item.expr->ToString();
    if (!item.alias.empty()) {
      t += item.is_measure ? " AS MEASURE " + item.alias : " AS " + item.alias;
    }
    items.push_back(t);
  }
  s += Join(items, ", ");
  if (from) s += " FROM " + from->ToString();
  if (where) s += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    s += " GROUP BY ";
    std::vector<std::string> gs;
    for (const auto& g : group_by) {
      switch (g.kind) {
        case GroupItem::Kind::kExpr:
          gs.push_back(g.expr->ToString());
          break;
        case GroupItem::Kind::kRollup:
        case GroupItem::Kind::kCube: {
          std::vector<std::string> es;
          for (const auto& e : g.exprs) es.push_back(e->ToString());
          gs.push_back(
              StrCat(g.kind == GroupItem::Kind::kRollup ? "ROLLUP" : "CUBE",
                     "(", Join(es, ", "), ")"));
          break;
        }
        case GroupItem::Kind::kGroupingSets: {
          std::vector<std::string> sets_s;
          for (const auto& set : g.sets) {
            std::vector<std::string> es;
            for (const auto& e : set) es.push_back(e->ToString());
            sets_s.push_back("(" + Join(es, ", ") + ")");
          }
          gs.push_back("GROUPING SETS (" + Join(sets_s, ", ") + ")");
          break;
        }
      }
    }
    s += Join(gs, ", ");
  }
  if (having) s += " HAVING " + having->ToString();
  if (set_op != SetOpKind::kNone) {
    switch (set_op) {
      case SetOpKind::kUnionAll: s += " UNION ALL "; break;
      case SetOpKind::kUnion: s += " UNION "; break;
      case SetOpKind::kExcept: s += " EXCEPT "; break;
      case SetOpKind::kIntersect: s += " INTERSECT "; break;
      default: break;
    }
    s += set_rhs->ToString();
  }
  if (!order_by.empty()) {
    s += " ORDER BY ";
    std::vector<std::string> os;
    for (const auto& o : order_by) {
      std::string t = o.expr->ToString() + (o.desc ? " DESC" : "");
      if (o.nulls_first.has_value()) {
        t += *o.nulls_first ? " NULLS FIRST" : " NULLS LAST";
      }
      os.push_back(t);
    }
    s += Join(os, ", ");
  }
  if (limit) s += " LIMIT " + limit->ToString();
  if (offset) s += " OFFSET " + offset->ToString();
  return s;
}

SelectStmtPtr SelectStmt::Clone() const {
  auto s = std::make_unique<SelectStmt>();
  for (const auto& c : ctes) {
    s->ctes.push_back(CteDef{c.name, c.select->Clone()});
  }
  s->distinct = distinct;
  for (const auto& item : select_list) {
    SelectItem i;
    if (item.expr) i.expr = item.expr->Clone();
    i.alias = item.alias;
    i.is_measure = item.is_measure;
    i.is_star = item.is_star;
    i.star_table = item.star_table;
    s->select_list.push_back(std::move(i));
  }
  if (from) s->from = from->Clone();
  if (where) s->where = where->Clone();
  for (const auto& g : group_by) {
    GroupItem gi;
    gi.kind = g.kind;
    if (g.expr) gi.expr = g.expr->Clone();
    for (const auto& e : g.exprs) gi.exprs.push_back(e->Clone());
    for (const auto& set : g.sets) {
      std::vector<ExprPtr> es;
      for (const auto& e : set) es.push_back(e->Clone());
      gi.sets.push_back(std::move(es));
    }
    s->group_by.push_back(std::move(gi));
  }
  if (having) s->having = having->Clone();
  for (const auto& o : order_by) {
    OrderItem oi;
    oi.expr = o.expr->Clone();
    oi.desc = o.desc;
    oi.nulls_first = o.nulls_first;
    s->order_by.push_back(std::move(oi));
  }
  if (limit) s->limit = limit->Clone();
  if (offset) s->offset = offset->Clone();
  s->set_op = set_op;
  if (set_rhs) s->set_rhs = set_rhs->Clone();
  return s;
}

std::string Stmt::ToString() const {
  switch (kind) {
    case StmtKind::kSelect:
      return select->ToString();
    case StmtKind::kCreateTable: {
      std::string s = "CREATE TABLE ";
      if (if_not_exists) s += "IF NOT EXISTS ";
      s += name + " (";
      std::vector<std::string> cols;
      for (const auto& c : columns) cols.push_back(c.name + " " + c.type_name);
      return s + Join(cols, ", ") + ")";
    }
    case StmtKind::kCreateView:
      return StrCat("CREATE ", or_replace ? "OR REPLACE " : "", "VIEW ", name,
                    " AS ", view_select->ToString());
    case StmtKind::kDrop:
      return StrCat("DROP ", drop_is_view ? "VIEW " : "TABLE ",
                    if_exists ? "IF EXISTS " : "", name);
    case StmtKind::kInsert: {
      std::string s = "INSERT INTO " + insert_table;
      if (!insert_columns.empty()) {
        s += " (" + Join(insert_columns, ", ") + ")";
      }
      if (insert_select) return s + " " + insert_select->ToString();
      s += " VALUES ";
      std::vector<std::string> rows_s;
      for (const auto& row : insert_rows) {
        std::vector<std::string> vals;
        for (const auto& v : row) vals.push_back(v->ToString());
        rows_s.push_back("(" + Join(vals, ", ") + ")");
      }
      return s + Join(rows_s, ", ");
    }
    case StmtKind::kExplain:
      return (explain_analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ") +
             select->ToString();
    case StmtKind::kDescribe:
      return "DESCRIBE " + name;
    case StmtKind::kCopy:
      return StrCat("COPY ", name, copy_from ? " FROM " : " TO ",
                    QuoteSqlString(copy_path));
  }
  return "?";
}

}  // namespace msql

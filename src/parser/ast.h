#ifndef MSQL_PARSER_AST_H_
#define MSQL_PARSER_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace msql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct SelectStmt;
using SelectStmtPtr = std::unique_ptr<SelectStmt>;

enum class ExprKind {
  kLiteral,
  kColumnRef,   // possibly qualified: a.b
  kStar,        // `*` or `t.*` (select list / COUNT(*))
  kFuncCall,    // scalar, aggregate or window call, incl. AGGREGATE(m)
  kUnary,
  kBinary,
  kCase,
  kCast,
  kIsNull,      // x IS [NOT] NULL
  kInList,      // x [NOT] IN (e1, e2, ...)
  kInSubquery,  // x [NOT] IN (SELECT ...)
  kBetween,
  kLike,
  kExists,
  kSubquery,    // scalar subquery
  kAt,          // cse AT (modifiers)     [paper section 3.5]
  kCurrent,     // CURRENT dim            [paper section 3.5]
  kParam,       // `?` positional parameter (prepared statements)
};

enum class UnaryOp { kNeg, kNot };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod, kConcat,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kIsDistinctFrom, kIsNotDistinctFrom,
};

const char* BinaryOpName(BinaryOp op);  // "+", "=", "AND", ...

// One modifier inside `AT (...)`; see paper table 3.
struct AtModifier {
  enum class Kind {
    kAll,      // ALL            — context becomes TRUE
    kAllDims,  // ALL d1 d2 ...  — remove the dimension terms for d1, d2, ...
    kSet,      // SET d = expr   — replace the term for d
    kVisible,  // VISIBLE        — restrict to rows visible in the query
    kWhere,    // WHERE pred     — context becomes pred
  };
  Kind kind;
  std::vector<ExprPtr> dims;  // kAllDims: dimension names / expressions
  ExprPtr set_dim;            // kSet: left-hand side (a dimension)
  ExprPtr value;              // kSet: right-hand side
  ExprPtr predicate;          // kWhere
};

struct WindowSpec {
  std::vector<ExprPtr> partition_by;
  // Ordering inside the partition; empty means whole-partition frame.
  std::vector<std::pair<ExprPtr, bool /*desc*/>> order_by;
};

struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef: parts, e.g. {"o", "prodName"} or {"prodName"}.
  std::vector<std::string> parts;

  // kStar: optional qualifier table name.
  std::string star_table;

  // kFuncCall
  std::string func_name;
  std::vector<ExprPtr> args;
  bool distinct = false;      // COUNT(DISTINCT x)
  bool star_arg = false;      // COUNT(*)
  ExprPtr filter;             // FILTER (WHERE ...) clause
  std::unique_ptr<WindowSpec> over;  // OVER (...) makes this a window call

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr left;    // also: operand of unary/cast/isnull/like/at/between/in
  ExprPtr right;

  // kCase
  ExprPtr case_operand;  // optional
  std::vector<std::pair<ExprPtr, ExprPtr>> when_clauses;
  ExprPtr else_expr;

  // kCast
  std::string cast_type;

  // kIsNull / kInList / kInSubquery / kBetween / kLike / kExists
  bool negated = false;
  std::vector<ExprPtr> in_list;
  ExprPtr between_low;
  ExprPtr between_high;

  // kSubquery / kInSubquery / kExists
  SelectStmtPtr subquery;

  // kAt
  std::vector<AtModifier> at_modifiers;

  // kCurrent
  std::string current_dim;

  // kParam: zero-based ordinal in lexical appearance order. ToString
  // renders every parameter as a bare `?`, so a re-parse reassigns the
  // same ordinals and the round-trip is exact.
  int param_index = -1;

  // Round-trippable SQL rendering (used by EXPLAIN, error messages, and the
  // measure-expansion printer).
  std::string ToString() const;

  // Deep copy (views store ASTs; each use binds a fresh copy).
  ExprPtr Clone() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::vector<std::string> parts);
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args);

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

struct TableRef;
using TableRefPtr = std::unique_ptr<TableRef>;

enum class TableRefKind { kBaseTable, kSubquery, kJoin };
enum class JoinType { kInner, kLeft, kRight, kFull, kCross };

struct TableRef {
  TableRefKind kind;

  // kBaseTable
  std::string table_name;

  // kBaseTable / kSubquery
  std::string alias;

  // kSubquery
  SelectStmtPtr subquery;

  // kJoin
  JoinType join_type = JoinType::kInner;
  TableRefPtr left;
  TableRefPtr right;
  ExprPtr on_condition;                  // JOIN ... ON expr
  std::vector<std::string> using_cols;   // JOIN ... USING (a, b)

  std::string ToString() const;
  TableRefPtr Clone() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;          // null for `*`
  std::string alias;
  bool is_measure = false;  // `AS MEASURE name` (paper section 3.2)
  bool is_star = false;
  std::string star_table;
};

// GROUP BY supports plain expressions plus ROLLUP / CUBE / GROUPING SETS.
struct GroupItem {
  enum class Kind { kExpr, kRollup, kCube, kGroupingSets };
  Kind kind = Kind::kExpr;
  ExprPtr expr;                                  // kExpr
  std::vector<ExprPtr> exprs;                    // kRollup / kCube
  std::vector<std::vector<ExprPtr>> sets;        // kGroupingSets
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
  // SQL default: NULLS FIRST when ascending, NULLS LAST when descending.
  std::optional<bool> nulls_first;
};

struct CteDef {
  std::string name;
  SelectStmtPtr select;
};

enum class SetOpKind { kNone, kUnionAll, kUnion, kExcept, kIntersect };

struct SelectStmt {
  std::vector<CteDef> ctes;
  bool distinct = false;
  std::vector<SelectItem> select_list;
  TableRefPtr from;        // may be null (SELECT 1 + 1)
  ExprPtr where;
  std::vector<GroupItem> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  ExprPtr limit;
  ExprPtr offset;

  // Set operation chaining: `this` is the left input.
  SetOpKind set_op = SetOpKind::kNone;
  SelectStmtPtr set_rhs;

  std::string ToString() const;
  SelectStmtPtr Clone() const;
};

enum class StmtKind {
  kSelect,
  kCreateTable,
  kCreateView,
  kDrop,
  kInsert,
  kExplain,
  kDescribe,
  kCopy,  // COPY table FROM 'file.csv' | COPY table TO 'file.csv'
};

struct ColumnDef {
  std::string name;
  std::string type_name;
};

struct Stmt {
  StmtKind kind;

  SelectStmtPtr select;  // kSelect / kExplain payload

  // kExplain: EXPLAIN ANALYZE runs the query and annotates the plan with
  // per-operator runtime statistics (src/obs/explain.cc).
  bool explain_analyze = false;

  // kCreateTable
  std::string name;
  std::vector<ColumnDef> columns;
  bool if_not_exists = false;

  // kCreateView
  bool or_replace = false;
  SelectStmtPtr view_select;

  // kDrop
  bool drop_is_view = false;
  bool if_exists = false;

  // kCopy
  std::string copy_path;
  bool copy_from = false;  // FROM = load, TO = export

  // kInsert
  std::string insert_table;
  std::vector<std::string> insert_columns;
  std::vector<std::vector<ExprPtr>> insert_rows;
  SelectStmtPtr insert_select;

  std::string ToString() const;
};
using StmtPtr = std::unique_ptr<Stmt>;

}  // namespace msql

#endif  // MSQL_PARSER_AST_H_

#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "common/string_util.h"

namespace msql {

namespace {

const std::unordered_map<std::string, TokenType>& KeywordMap() {
  static const auto* kMap = new std::unordered_map<std::string, TokenType>{
      {"SELECT", TokenType::kSelect},   {"FROM", TokenType::kFrom},
      {"WHERE", TokenType::kWhere},     {"GROUP", TokenType::kGroup},
      {"BY", TokenType::kBy},           {"HAVING", TokenType::kHaving},
      {"ORDER", TokenType::kOrder},     {"LIMIT", TokenType::kLimit},
      {"OFFSET", TokenType::kOffset},   {"AS", TokenType::kAs},
      {"MEASURE", TokenType::kMeasure}, {"AT", TokenType::kAt},
      {"ALL", TokenType::kAll},         {"SET", TokenType::kSet},
      {"VISIBLE", TokenType::kVisible}, {"CURRENT", TokenType::kCurrent},
      {"AND", TokenType::kAnd},         {"OR", TokenType::kOr},
      {"NOT", TokenType::kNot},         {"NULL", TokenType::kNull},
      {"TRUE", TokenType::kTrue},       {"FALSE", TokenType::kFalse},
      {"IS", TokenType::kIs},           {"DISTINCT", TokenType::kDistinct},
      {"IN", TokenType::kIn},           {"EXISTS", TokenType::kExists},
      {"BETWEEN", TokenType::kBetween}, {"LIKE", TokenType::kLike},
      {"CASE", TokenType::kCase},       {"WHEN", TokenType::kWhen},
      {"THEN", TokenType::kThen},       {"ELSE", TokenType::kElse},
      {"END", TokenType::kEnd},         {"CAST", TokenType::kCast},
      {"CREATE", TokenType::kCreate},   {"REPLACE", TokenType::kReplace},
      {"VIEW", TokenType::kView},       {"TABLE", TokenType::kTable},
      {"DROP", TokenType::kDrop},       {"INSERT", TokenType::kInsert},
      {"INTO", TokenType::kInto},       {"VALUES", TokenType::kValues},
      {"WITH", TokenType::kWith},       {"JOIN", TokenType::kJoin},
      {"INNER", TokenType::kInner},     {"LEFT", TokenType::kLeft},
      {"RIGHT", TokenType::kRight},     {"FULL", TokenType::kFull},
      {"OUTER", TokenType::kOuter},     {"CROSS", TokenType::kCross},
      {"ON", TokenType::kOn},           {"USING", TokenType::kUsing},
      {"UNION", TokenType::kUnion},     {"EXCEPT", TokenType::kExcept},
      {"INTERSECT", TokenType::kIntersect},
      {"ROLLUP", TokenType::kRollup},   {"CUBE", TokenType::kCube},
      {"GROUPING", TokenType::kGrouping}, {"SETS", TokenType::kSets},
      {"ASC", TokenType::kAsc},         {"DESC", TokenType::kDesc},
      {"NULLS", TokenType::kNulls},     {"FIRST", TokenType::kFirst},
      {"LAST", TokenType::kLast},       {"DATE", TokenType::kDate},
      {"EXPLAIN", TokenType::kExplain}, {"OVER", TokenType::kOver},
      {"PARTITION", TokenType::kPartition}, {"FILTER", TokenType::kFilter},
      {"IF", TokenType::kIf},           {"DESCRIBE", TokenType::kDescribe},
      {"COPY", TokenType::kCopy},       {"TO", TokenType::kTo},
  };
  return *kMap;
}

}  // namespace

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEof: return "end of input";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kStringLiteral: return "string literal";
    case TokenType::kIntegerLiteral: return "integer literal";
    case TokenType::kDoubleLiteral: return "double literal";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kComma: return "','";
    case TokenType::kDot: return "'.'";
    case TokenType::kSemicolon: return "';'";
    case TokenType::kStar: return "'*'";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kPercent: return "'%'";
    case TokenType::kConcatOp: return "'||'";
    case TokenType::kQuestion: return "'?'";
    case TokenType::kEq: return "'='";
    case TokenType::kNe: return "'<>'";
    case TokenType::kLt: return "'<'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGe: return "'>='";
    default: return "keyword";
  }
}

Status Lexer::Error(const std::string& message) const {
  return Status(ErrorCode::kParse,
                StrCat(message, " at line ", line_, ", column ", column_));
}

char Lexer::Peek(int ahead) const {
  size_t p = pos_ + ahead;
  return p < input_.size() ? input_[p] : '\0';
}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
      if (!AtEnd()) {
        Advance();
        Advance();
      }
    } else {
      break;
    }
  }
}

Token Lexer::MakeToken(TokenType type) const {
  Token t;
  t.type = type;
  t.offset = start_offset_;
  t.line = start_line_;
  t.column = start_column_;
  return t;
}

Result<Token> Lexer::LexNumber() {
  std::string text;
  bool is_double = false;
  while (std::isdigit(static_cast<unsigned char>(Peek()))) text += Advance();
  if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
    is_double = true;
    text += Advance();
    while (std::isdigit(static_cast<unsigned char>(Peek()))) text += Advance();
  }
  if (Peek() == 'e' || Peek() == 'E') {
    size_t save = pos_;
    std::string exp;
    exp += Advance();
    if (Peek() == '+' || Peek() == '-') exp += Advance();
    if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) exp += Advance();
      text += exp;
      is_double = true;
    } else {
      pos_ = save;  // not an exponent; leave for the next token
    }
  }
  Token t = MakeToken(is_double ? TokenType::kDoubleLiteral
                                : TokenType::kIntegerLiteral);
  t.text = text;
  if (is_double) {
    t.double_value = std::strtod(text.c_str(), nullptr);
  } else {
    t.int_value = std::strtoll(text.c_str(), nullptr, 10);
  }
  return t;
}

Result<Token> Lexer::LexString() {
  Advance();  // opening quote
  std::string text;
  while (true) {
    if (AtEnd()) return Error("unterminated string literal");
    char c = Advance();
    if (c == '\'') {
      if (Peek() == '\'') {
        text += '\'';
        Advance();
      } else {
        break;
      }
    } else {
      text += c;
    }
  }
  Token t = MakeToken(TokenType::kStringLiteral);
  t.text = text;
  return t;
}

Result<Token> Lexer::LexQuotedIdentifier() {
  char quote = Advance();  // '"' or '`'
  std::string text;
  while (true) {
    if (AtEnd()) return Error("unterminated quoted identifier");
    char c = Advance();
    if (c == quote) {
      if (Peek() == quote) {
        text += quote;
        Advance();
      } else {
        break;
      }
    } else {
      text += c;
    }
  }
  Token t = MakeToken(TokenType::kIdentifier);
  t.text = text;
  return t;
}

Token Lexer::LexWord() {
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_' ||
         Peek() == '$') {
    text += Advance();
  }
  auto it = KeywordMap().find(ToUpper(text));
  if (it != KeywordMap().end()) {
    Token t = MakeToken(it->second);
    t.text = text;
    return t;
  }
  Token t = MakeToken(TokenType::kIdentifier);
  t.text = text;
  return t;
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    SkipWhitespaceAndComments();
    start_offset_ = static_cast<int>(pos_);
    start_line_ = line_;
    start_column_ = column_;
    if (AtEnd()) {
      tokens.push_back(MakeToken(TokenType::kEof));
      return tokens;
    }
    char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      MSQL_ASSIGN_OR_RETURN(Token t, LexNumber());
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tokens.push_back(LexWord());
      continue;
    }
    if (c == '\'') {
      MSQL_ASSIGN_OR_RETURN(Token t, LexString());
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"' || c == '`') {
      MSQL_ASSIGN_OR_RETURN(Token t, LexQuotedIdentifier());
      tokens.push_back(std::move(t));
      continue;
    }
    Advance();
    switch (c) {
      case '(': tokens.push_back(MakeToken(TokenType::kLParen)); break;
      case ')': tokens.push_back(MakeToken(TokenType::kRParen)); break;
      case '?': tokens.push_back(MakeToken(TokenType::kQuestion)); break;
      case ',': tokens.push_back(MakeToken(TokenType::kComma)); break;
      case '.': tokens.push_back(MakeToken(TokenType::kDot)); break;
      case ';': tokens.push_back(MakeToken(TokenType::kSemicolon)); break;
      case '*': tokens.push_back(MakeToken(TokenType::kStar)); break;
      case '+': tokens.push_back(MakeToken(TokenType::kPlus)); break;
      case '-': tokens.push_back(MakeToken(TokenType::kMinus)); break;
      case '/': tokens.push_back(MakeToken(TokenType::kSlash)); break;
      case '%': tokens.push_back(MakeToken(TokenType::kPercent)); break;
      case '=': tokens.push_back(MakeToken(TokenType::kEq)); break;
      case '|':
        if (Peek() == '|') {
          Advance();
          tokens.push_back(MakeToken(TokenType::kConcatOp));
        } else {
          return Error("unexpected character '|'");
        }
        break;
      case '<':
        if (Peek() == '=') {
          Advance();
          tokens.push_back(MakeToken(TokenType::kLe));
        } else if (Peek() == '>') {
          Advance();
          tokens.push_back(MakeToken(TokenType::kNe));
        } else {
          tokens.push_back(MakeToken(TokenType::kLt));
        }
        break;
      case '>':
        if (Peek() == '=') {
          Advance();
          tokens.push_back(MakeToken(TokenType::kGe));
        } else {
          tokens.push_back(MakeToken(TokenType::kGt));
        }
        break;
      case '!':
        if (Peek() == '=') {
          Advance();
          tokens.push_back(MakeToken(TokenType::kNe));
        } else {
          return Error("unexpected character '!'");
        }
        break;
      default:
        return Error(StrCat("unexpected character '", std::string(1, c), "'"));
    }
  }
}

}  // namespace msql

#ifndef MSQL_PARSER_LEXER_H_
#define MSQL_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/token.h"

namespace msql {

// Tokenizes a SQL string. Comments (`-- ...` and `/* ... */`) and whitespace
// are skipped. Identifiers may be double-quoted to preserve case / reserved
// words. Keywords are case-insensitive.
class Lexer {
 public:
  explicit Lexer(std::string input) : input_(std::move(input)) {}

  // Tokenizes the whole input; the final token is kEof.
  Result<std::vector<Token>> Tokenize();

 private:
  Status Error(const std::string& message) const;
  char Peek(int ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= input_.size(); }
  void SkipWhitespaceAndComments();
  Token MakeToken(TokenType type) const;

  Result<Token> LexNumber();
  Result<Token> LexString();
  Result<Token> LexQuotedIdentifier();
  Token LexWord();

  std::string input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  // Start of the token currently being lexed.
  int start_offset_ = 0;
  int start_line_ = 1;
  int start_column_ = 1;
};

}  // namespace msql

#endif  // MSQL_PARSER_LEXER_H_

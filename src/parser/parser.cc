#include "parser/parser.h"

#include "common/date.h"
#include "common/string_util.h"
#include "parser/lexer.h"

namespace msql {

Status Parser::EnsureTokenized() {
  if (tokenized_) return Status::Ok();
  Lexer lexer(sql_);
  MSQL_ASSIGN_OR_RETURN(tokens_, lexer.Tokenize());
  tokenized_ = true;
  pos_ = 0;
  return Status::Ok();
}

const Token& Parser::Peek(int ahead) const {
  size_t p = pos_ + ahead;
  if (p >= tokens_.size()) p = tokens_.size() - 1;  // EOF token
  return tokens_[p];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenType t) {
  if (Check(t)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType t, const char* context) {
  if (Match(t)) return Status::Ok();
  return ErrorAtCurrent(StrCat("expected ", TokenTypeName(t), " in ", context,
                               ", found ",
                               Peek().text.empty() ? TokenTypeName(Peek().type)
                                                   : "'" + Peek().text + "'"));
}

Status Parser::ErrorAtCurrent(const std::string& message) const {
  const Token& t = Peek();
  return Status(ErrorCode::kParse,
                StrCat(message, " (line ", t.line, ", column ", t.column, ")"));
}

Result<std::vector<StmtPtr>> Parser::ParseStatements() {
  MSQL_RETURN_IF_ERROR(EnsureTokenized());
  std::vector<StmtPtr> stmts;
  while (!Check(TokenType::kEof)) {
    if (Match(TokenType::kSemicolon)) continue;
    MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
    stmts.push_back(std::move(stmt));
    if (!Check(TokenType::kEof)) {
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "statement list"));
    }
  }
  return stmts;
}

Result<StmtPtr> Parser::ParseSingleStatement() {
  MSQL_RETURN_IF_ERROR(EnsureTokenized());
  MSQL_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
  while (Match(TokenType::kSemicolon)) {
  }
  if (!Check(TokenType::kEof)) {
    return ErrorAtCurrent("unexpected trailing input");
  }
  return stmt;
}

Result<StmtPtr> Parser::Parse(const std::string& sql) {
  Parser parser(sql);
  return parser.ParseSingleStatement();
}

Result<ExprPtr> Parser::ParseExpression(const std::string& sql) {
  Parser parser(sql);
  MSQL_RETURN_IF_ERROR(parser.EnsureTokenized());
  MSQL_ASSIGN_OR_RETURN(ExprPtr e, parser.ParseExpr());
  if (!parser.Check(TokenType::kEof)) {
    return parser.ErrorAtCurrent("unexpected trailing input after expression");
  }
  return e;
}

Result<StmtPtr> Parser::ParseStatement() {
  switch (Peek().type) {
    case TokenType::kSelect:
    case TokenType::kWith: {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kSelect;
      MSQL_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
      return stmt;
    }
    case TokenType::kCreate:
      return ParseCreate();
    case TokenType::kDrop:
      return ParseDrop();
    case TokenType::kInsert:
      return ParseInsert();
    case TokenType::kExplain: {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kExplain;
      // ANALYZE is not reserved; accept it as a modifier identifier.
      if (Check(TokenType::kIdentifier) &&
          EqualsIgnoreCase(Peek().text, "ANALYZE")) {
        Advance();
        stmt->explain_analyze = true;
      }
      MSQL_ASSIGN_OR_RETURN(stmt->select, ParseSelectStmt());
      return stmt;
    }
    case TokenType::kDescribe: {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kDescribe;
      MSQL_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("DESCRIBE"));
      return stmt;
    }
    case TokenType::kCopy: {
      Advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kCopy;
      MSQL_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("COPY"));
      if (Match(TokenType::kFrom)) {
        stmt->copy_from = true;
      } else if (!Match(TokenType::kTo)) {
        return ErrorAtCurrent("expected FROM or TO after COPY <table>");
      }
      if (!Check(TokenType::kStringLiteral)) {
        return ErrorAtCurrent("expected a quoted file path in COPY");
      }
      stmt->copy_path = Advance().text;
      return stmt;
    }
    default:
      return ErrorAtCurrent("expected a statement");
  }
}

Result<std::string> Parser::ParseIdentifier(const char* context) {
  if (Check(TokenType::kIdentifier)) {
    return Advance().text;
  }
  return ErrorAtCurrent(StrCat("expected identifier in ", context));
}

Result<StmtPtr> Parser::ParseCreate() {
  Advance();  // CREATE
  auto stmt = std::make_unique<Stmt>();
  if (Match(TokenType::kOr)) {
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kReplace, "CREATE OR REPLACE"));
    stmt->or_replace = true;
  }
  if (Match(TokenType::kView)) {
    stmt->kind = StmtKind::kCreateView;
    MSQL_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("CREATE VIEW"));
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kAs, "CREATE VIEW"));
    MSQL_ASSIGN_OR_RETURN(stmt->view_select, ParseSelectStmt());
    return stmt;
  }
  if (Match(TokenType::kTable)) {
    stmt->kind = StmtKind::kCreateTable;
    if (Match(TokenType::kIf)) {
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kNot, "IF NOT EXISTS"));
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kExists, "IF NOT EXISTS"));
      stmt->if_not_exists = true;
    }
    MSQL_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("CREATE TABLE"));
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "CREATE TABLE"));
    do {
      ColumnDef col;
      MSQL_ASSIGN_OR_RETURN(col.name, ParseIdentifier("column definition"));
      if (Check(TokenType::kIdentifier)) {
        col.type_name = Advance().text;
      } else if (Check(TokenType::kDate)) {
        Advance();
        col.type_name = "DATE";
      } else {
        return ErrorAtCurrent("expected column type");
      }
      // Swallow optional length like VARCHAR(20).
      if (Match(TokenType::kLParen)) {
        while (!Check(TokenType::kRParen) && !Check(TokenType::kEof)) Advance();
        MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "type arguments"));
      }
      stmt->columns.push_back(std::move(col));
    } while (Match(TokenType::kComma));
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "CREATE TABLE"));
    return stmt;
  }
  return ErrorAtCurrent("expected TABLE or VIEW after CREATE");
}

Result<StmtPtr> Parser::ParseDrop() {
  Advance();  // DROP
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kDrop;
  if (Match(TokenType::kView)) {
    stmt->drop_is_view = true;
  } else if (!Match(TokenType::kTable)) {
    return ErrorAtCurrent("expected TABLE or VIEW after DROP");
  }
  if (Match(TokenType::kIf)) {
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kExists, "IF EXISTS"));
    stmt->if_exists = true;
  }
  MSQL_ASSIGN_OR_RETURN(stmt->name, ParseIdentifier("DROP"));
  return stmt;
}

Result<StmtPtr> Parser::ParseInsert() {
  Advance();  // INSERT
  MSQL_RETURN_IF_ERROR(Expect(TokenType::kInto, "INSERT"));
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kInsert;
  MSQL_ASSIGN_OR_RETURN(stmt->insert_table, ParseIdentifier("INSERT"));
  if (Match(TokenType::kLParen)) {
    do {
      MSQL_ASSIGN_OR_RETURN(std::string col,
                            ParseIdentifier("INSERT column list"));
      stmt->insert_columns.push_back(std::move(col));
    } while (Match(TokenType::kComma));
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "INSERT column list"));
  }
  if (Check(TokenType::kSelect) || Check(TokenType::kWith)) {
    MSQL_ASSIGN_OR_RETURN(stmt->insert_select, ParseSelectStmt());
    return stmt;
  }
  MSQL_RETURN_IF_ERROR(Expect(TokenType::kValues, "INSERT"));
  do {
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "VALUES row"));
    std::vector<ExprPtr> row;
    do {
      MSQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (Match(TokenType::kComma));
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "VALUES row"));
    stmt->insert_rows.push_back(std::move(row));
  } while (Match(TokenType::kComma));
  return stmt;
}

Result<SelectStmtPtr> Parser::ParseSelectStmt() {
  std::vector<CteDef> ctes;
  if (Match(TokenType::kWith)) {
    do {
      CteDef cte;
      MSQL_ASSIGN_OR_RETURN(cte.name, ParseIdentifier("WITH clause"));
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kAs, "WITH clause"));
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "WITH clause"));
      MSQL_ASSIGN_OR_RETURN(cte.select, ParseSelectStmt());
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "WITH clause"));
      ctes.push_back(std::move(cte));
    } while (Match(TokenType::kComma));
  }

  MSQL_ASSIGN_OR_RETURN(SelectStmtPtr select, ParseSelectCore());

  // Set operations, left-associatively: once the statement already carries a
  // set operation, wrap the chain in a derived table so that
  // `A EXCEPT B EXCEPT C` means `(A EXCEPT B) EXCEPT C`.
  while (Check(TokenType::kUnion) || Check(TokenType::kExcept) ||
         Check(TokenType::kIntersect)) {
    SetOpKind op;
    if (Match(TokenType::kUnion)) {
      op = Match(TokenType::kAll) ? SetOpKind::kUnionAll : SetOpKind::kUnion;
    } else if (Match(TokenType::kExcept)) {
      op = SetOpKind::kExcept;
    } else {
      Advance();
      op = SetOpKind::kIntersect;
    }
    MSQL_ASSIGN_OR_RETURN(SelectStmtPtr rhs, ParseSelectCore());
    if (select->set_op == SetOpKind::kNone) {
      select->set_op = op;
      select->set_rhs = std::move(rhs);
    } else {
      auto wrapper = std::make_unique<SelectStmt>();
      SelectItem star;
      star.is_star = true;
      wrapper->select_list.push_back(std::move(star));
      wrapper->from = std::make_unique<TableRef>();
      wrapper->from->kind = TableRefKind::kSubquery;
      wrapper->from->subquery = std::move(select);
      wrapper->set_op = op;
      wrapper->set_rhs = std::move(rhs);
      select = std::move(wrapper);
    }
  }
  select->ctes = std::move(ctes);

  if (Match(TokenType::kOrder)) {
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kBy, "ORDER BY"));
    MSQL_RETURN_IF_ERROR(ParseOrderBy(select.get()));
  }
  if (Match(TokenType::kLimit)) {
    MSQL_ASSIGN_OR_RETURN(select->limit, ParseExpr());
  }
  if (Match(TokenType::kOffset)) {
    MSQL_ASSIGN_OR_RETURN(select->offset, ParseExpr());
  }
  return select;
}

Result<SelectStmtPtr> Parser::ParseSelectCore() {
  MSQL_RETURN_IF_ERROR(Expect(TokenType::kSelect, "query"));
  auto select = std::make_unique<SelectStmt>();
  if (Match(TokenType::kDistinct)) select->distinct = true;
  else Match(TokenType::kAll);  // SELECT ALL is the default

  // Select list.
  do {
    SelectItem item;
    if (Match(TokenType::kStar)) {
      item.is_star = true;
      select->select_list.push_back(std::move(item));
      continue;
    }
    if (Check(TokenType::kIdentifier) && Peek(1).is(TokenType::kDot) &&
        Peek(2).is(TokenType::kStar)) {
      item.is_star = true;
      item.star_table = Advance().text;
      Advance();  // .
      Advance();  // *
      select->select_list.push_back(std::move(item));
      continue;
    }
    MSQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (Match(TokenType::kAs)) {
      if (Match(TokenType::kMeasure)) item.is_measure = true;
      MSQL_ASSIGN_OR_RETURN(item.alias, ParseIdentifier("column alias"));
    } else if (Check(TokenType::kIdentifier)) {
      item.alias = Advance().text;
    }
    select->select_list.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  if (Match(TokenType::kFrom)) {
    MSQL_ASSIGN_OR_RETURN(select->from, ParseTableRef());
  }
  if (Match(TokenType::kWhere)) {
    MSQL_ASSIGN_OR_RETURN(select->where, ParseExpr());
  }
  if (Match(TokenType::kGroup)) {
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kBy, "GROUP BY"));
    MSQL_RETURN_IF_ERROR(ParseGroupBy(select.get()));
  }
  if (Match(TokenType::kHaving)) {
    MSQL_ASSIGN_OR_RETURN(select->having, ParseExpr());
  }
  return select;
}

Status Parser::ParseGroupBy(SelectStmt* select) {
  do {
    GroupItem item;
    if (Match(TokenType::kRollup) || (Check(TokenType::kCube) && [&] {
          Advance();
          item.kind = GroupItem::Kind::kCube;
          return true;
        }())) {
      if (item.kind != GroupItem::Kind::kCube) {
        item.kind = GroupItem::Kind::kRollup;
      }
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "ROLLUP/CUBE"));
      do {
        MSQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        item.exprs.push_back(std::move(e));
      } while (Match(TokenType::kComma));
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "ROLLUP/CUBE"));
    } else if (Check(TokenType::kGrouping) && Peek(1).is(TokenType::kSets)) {
      Advance();
      Advance();
      item.kind = GroupItem::Kind::kGroupingSets;
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "GROUPING SETS"));
      do {
        std::vector<ExprPtr> set;
        MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "grouping set"));
        if (!Check(TokenType::kRParen)) {
          do {
            MSQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            set.push_back(std::move(e));
          } while (Match(TokenType::kComma));
        }
        MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "grouping set"));
        item.sets.push_back(std::move(set));
      } while (Match(TokenType::kComma));
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "GROUPING SETS"));
    } else {
      item.kind = GroupItem::Kind::kExpr;
      MSQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    select->group_by.push_back(std::move(item));
  } while (Match(TokenType::kComma));
  return Status::Ok();
}

Status Parser::ParseOrderBy(SelectStmt* select) {
  do {
    OrderItem item;
    MSQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (Match(TokenType::kDesc)) {
      item.desc = true;
    } else {
      Match(TokenType::kAsc);
    }
    if (Match(TokenType::kNulls)) {
      if (Match(TokenType::kFirst)) {
        item.nulls_first = true;
      } else {
        MSQL_RETURN_IF_ERROR(Expect(TokenType::kLast, "NULLS ordering"));
        item.nulls_first = false;
      }
    }
    select->order_by.push_back(std::move(item));
  } while (Match(TokenType::kComma));
  return Status::Ok();
}

Result<TableRefPtr> Parser::ParseTableRef() {
  MSQL_ASSIGN_OR_RETURN(TableRefPtr left, ParseTablePrimary());
  while (true) {
    JoinType jt;
    bool has_condition = true;
    if (Match(TokenType::kComma)) {
      jt = JoinType::kCross;
      has_condition = false;
    } else if (Match(TokenType::kCross)) {
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kJoin, "CROSS JOIN"));
      jt = JoinType::kCross;
      has_condition = false;
    } else if (Match(TokenType::kInner)) {
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kJoin, "INNER JOIN"));
      jt = JoinType::kInner;
    } else if (Match(TokenType::kLeft)) {
      Match(TokenType::kOuter);
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kJoin, "LEFT JOIN"));
      jt = JoinType::kLeft;
    } else if (Check(TokenType::kRight) && (Peek(1).is(TokenType::kJoin) ||
                                            Peek(1).is(TokenType::kOuter))) {
      Advance();
      Match(TokenType::kOuter);
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kJoin, "RIGHT JOIN"));
      jt = JoinType::kRight;
    } else if (Match(TokenType::kFull)) {
      Match(TokenType::kOuter);
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kJoin, "FULL JOIN"));
      jt = JoinType::kFull;
    } else if (Match(TokenType::kJoin)) {
      jt = JoinType::kInner;
    } else {
      break;
    }
    auto join = std::make_unique<TableRef>();
    join->kind = TableRefKind::kJoin;
    join->join_type = jt;
    join->left = std::move(left);
    MSQL_ASSIGN_OR_RETURN(join->right, ParseTablePrimary());
    if (has_condition) {
      if (Match(TokenType::kOn)) {
        MSQL_ASSIGN_OR_RETURN(join->on_condition, ParseExpr());
      } else if (Match(TokenType::kUsing)) {
        MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "USING"));
        do {
          MSQL_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("USING"));
          join->using_cols.push_back(std::move(col));
        } while (Match(TokenType::kComma));
        MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "USING"));
      } else {
        return ErrorAtCurrent("expected ON or USING after JOIN");
      }
    }
    left = std::move(join);
  }
  return left;
}

Result<TableRefPtr> Parser::ParseTablePrimary() {
  auto t = std::make_unique<TableRef>();
  if (Match(TokenType::kLParen)) {
    t->kind = TableRefKind::kSubquery;
    MSQL_ASSIGN_OR_RETURN(t->subquery, ParseSelectStmt());
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "subquery"));
  } else {
    t->kind = TableRefKind::kBaseTable;
    MSQL_ASSIGN_OR_RETURN(t->table_name, ParseIdentifier("FROM clause"));
    // Qualified table names (`msql_system.connections`): the dotted pair is
    // kept as one catalog name — the binder resolves the namespace.
    if (Match(TokenType::kDot)) {
      MSQL_ASSIGN_OR_RETURN(std::string rest,
                            ParseIdentifier("qualified table name"));
      t->table_name += "." + rest;
    }
  }
  if (Match(TokenType::kAs)) {
    MSQL_ASSIGN_OR_RETURN(t->alias, ParseIdentifier("table alias"));
  } else if (Check(TokenType::kIdentifier)) {
    t->alias = Advance().text;
  }
  return t;
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() {
  MSQL_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (Match(TokenType::kOr)) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  MSQL_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (Match(TokenType::kAnd)) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (Match(TokenType::kNot)) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  MSQL_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  while (true) {
    // x NOT IN / NOT BETWEEN / NOT LIKE.
    bool negated = false;
    if (Check(TokenType::kNot) &&
        (Peek(1).is(TokenType::kIn) || Peek(1).is(TokenType::kBetween) ||
         Peek(1).is(TokenType::kLike))) {
      Advance();
      negated = true;
    }
    if (Match(TokenType::kIn)) {
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "IN"));
      auto e = std::make_unique<Expr>();
      e->left = std::move(left);
      e->negated = negated;
      if (Check(TokenType::kSelect) || Check(TokenType::kWith)) {
        e->kind = ExprKind::kInSubquery;
        MSQL_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
      } else {
        e->kind = ExprKind::kInList;
        do {
          MSQL_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
          e->in_list.push_back(std::move(item));
        } while (Match(TokenType::kComma));
      }
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "IN"));
      left = std::move(e);
      continue;
    }
    if (Match(TokenType::kBetween)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->left = std::move(left);
      MSQL_ASSIGN_OR_RETURN(e->between_low, ParseAdditive());
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kAnd, "BETWEEN"));
      MSQL_ASSIGN_OR_RETURN(e->between_high, ParseAdditive());
      left = std::move(e);
      continue;
    }
    if (Match(TokenType::kLike)) {
      MSQL_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLike;
      e->negated = negated;
      e->left = std::move(left);
      e->right = std::move(pattern);
      left = std::move(e);
      continue;
    }
    if (Check(TokenType::kIs)) {
      Advance();
      bool is_not = Match(TokenType::kNot);
      if (Match(TokenType::kNull)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIsNull;
        e->negated = is_not;
        e->left = std::move(left);
        left = std::move(e);
        continue;
      }
      if (Match(TokenType::kDistinct)) {
        MSQL_RETURN_IF_ERROR(Expect(TokenType::kFrom, "IS DISTINCT FROM"));
        MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        left = MakeBinary(is_not ? BinaryOp::kIsNotDistinctFrom
                                 : BinaryOp::kIsDistinctFrom,
                          std::move(left), std::move(right));
        continue;
      }
      if (Match(TokenType::kTrue)) {
        left = MakeBinary(is_not ? BinaryOp::kIsDistinctFrom
                                 : BinaryOp::kIsNotDistinctFrom,
                          std::move(left), MakeLiteral(Value::Bool(true)));
        continue;
      }
      if (Match(TokenType::kFalse)) {
        left = MakeBinary(is_not ? BinaryOp::kIsDistinctFrom
                                 : BinaryOp::kIsNotDistinctFrom,
                          std::move(left), MakeLiteral(Value::Bool(false)));
        continue;
      }
      return ErrorAtCurrent("expected NULL, TRUE, FALSE or DISTINCT after IS");
    }
    BinaryOp op;
    if (Match(TokenType::kEq)) {
      op = BinaryOp::kEq;
    } else if (Match(TokenType::kNe)) {
      op = BinaryOp::kNe;
    } else if (Match(TokenType::kLt)) {
      op = BinaryOp::kLt;
    } else if (Match(TokenType::kLe)) {
      op = BinaryOp::kLe;
    } else if (Match(TokenType::kGt)) {
      op = BinaryOp::kGt;
    } else if (Match(TokenType::kGe)) {
      op = BinaryOp::kGe;
    } else {
      break;
    }
    MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  MSQL_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Match(TokenType::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Match(TokenType::kMinus)) {
      op = BinaryOp::kSub;
    } else if (Match(TokenType::kConcatOp)) {
      op = BinaryOp::kConcat;
    } else {
      break;
    }
    MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  MSQL_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Match(TokenType::kStar)) {
      op = BinaryOp::kMul;
    } else if (Match(TokenType::kSlash)) {
      op = BinaryOp::kDiv;
    } else if (Match(TokenType::kPercent)) {
      op = BinaryOp::kMod;
    } else {
      break;
    }
    MSQL_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return MakeUnary(UnaryOp::kNeg, std::move(operand));
  }
  if (Match(TokenType::kPlus)) {
    return ParseUnary();
  }
  MSQL_ASSIGN_OR_RETURN(ExprPtr primary, ParsePrimary());
  return ParsePostfixAt(std::move(primary));
}

Result<ExprPtr> Parser::ParsePostfixAt(ExprPtr operand) {
  while (Check(TokenType::kAt)) {
    Advance();
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "AT"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kAt;
    e->left = std::move(operand);
    MSQL_ASSIGN_OR_RETURN(e->at_modifiers, ParseAtModifiers());
    if (e->at_modifiers.empty()) {
      return ErrorAtCurrent("AT requires at least one context modifier");
    }
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "AT"));
    operand = std::move(e);
  }
  return operand;
}

Result<std::vector<AtModifier>> Parser::ParseAtModifiers() {
  std::vector<AtModifier> modifiers;
  while (!Check(TokenType::kRParen) && !Check(TokenType::kEof)) {
    AtModifier mod;
    if (Match(TokenType::kAll)) {
      // ALL with no dimension arguments clears the whole context. Dimension
      // arguments are expressions; stop at the next modifier keyword or ')'.
      mod.kind = AtModifier::Kind::kAll;
      while (!Check(TokenType::kRParen) && !Check(TokenType::kAll) &&
             !Check(TokenType::kSet) && !Check(TokenType::kVisible) &&
             !Check(TokenType::kWhere) && !Check(TokenType::kEof)) {
        mod.kind = AtModifier::Kind::kAllDims;
        MSQL_ASSIGN_OR_RETURN(ExprPtr dim, ParseAdditive());
        mod.dims.push_back(std::move(dim));
        Match(TokenType::kComma);
      }
    } else if (Match(TokenType::kSet)) {
      mod.kind = AtModifier::Kind::kSet;
      // The left-hand side is a dimension (name or expression); parse at
      // additive level so '=' terminates it.
      MSQL_ASSIGN_OR_RETURN(mod.set_dim, ParseAdditive());
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kEq, "SET modifier"));
      MSQL_ASSIGN_OR_RETURN(mod.value, ParseAdditive());
    } else if (Match(TokenType::kVisible)) {
      mod.kind = AtModifier::Kind::kVisible;
    } else if (Match(TokenType::kWhere)) {
      mod.kind = AtModifier::Kind::kWhere;
      MSQL_ASSIGN_OR_RETURN(mod.predicate, ParseExpr());
    } else {
      return ErrorAtCurrent(
          "expected ALL, SET, VISIBLE or WHERE inside AT (...)");
    }
    modifiers.push_back(std::move(mod));
  }
  return modifiers;
}

Result<ExprPtr> Parser::ParseCase() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  if (!Check(TokenType::kWhen)) {
    MSQL_ASSIGN_OR_RETURN(e->case_operand, ParseExpr());
  }
  while (Match(TokenType::kWhen)) {
    MSQL_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kThen, "CASE"));
    MSQL_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
    e->when_clauses.emplace_back(std::move(when), std::move(then));
  }
  if (e->when_clauses.empty()) {
    return ErrorAtCurrent("CASE requires at least one WHEN clause");
  }
  if (Match(TokenType::kElse)) {
    MSQL_ASSIGN_OR_RETURN(e->else_expr, ParseExpr());
  }
  MSQL_RETURN_IF_ERROR(Expect(TokenType::kEnd, "CASE"));
  return e;
}

Result<ExprPtr> Parser::ParseFunctionCall(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = std::move(name);
  if (Match(TokenType::kStar)) {
    e->star_arg = true;  // COUNT(*)
  } else if (!Check(TokenType::kRParen)) {
    if (Match(TokenType::kDistinct)) e->distinct = true;
    do {
      MSQL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      e->args.push_back(std::move(arg));
    } while (Match(TokenType::kComma));
  }
  MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "function call"));
  if (Match(TokenType::kFilter)) {
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "FILTER"));
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kWhere, "FILTER"));
    MSQL_ASSIGN_OR_RETURN(e->filter, ParseExpr());
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "FILTER"));
  }
  if (Match(TokenType::kOver)) {
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "OVER"));
    e->over = std::make_unique<WindowSpec>();
    if (Match(TokenType::kPartition)) {
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kBy, "PARTITION BY"));
      do {
        MSQL_ASSIGN_OR_RETURN(ExprPtr p, ParseExpr());
        e->over->partition_by.push_back(std::move(p));
      } while (Match(TokenType::kComma));
    }
    if (Match(TokenType::kOrder)) {
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kBy, "OVER ORDER BY"));
      do {
        MSQL_ASSIGN_OR_RETURN(ExprPtr o, ParseExpr());
        bool desc = Match(TokenType::kDesc);
        if (!desc) Match(TokenType::kAsc);
        e->over->order_by.emplace_back(std::move(o), desc);
      } while (Match(TokenType::kComma));
    }
    MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "OVER"));
  }
  return e;
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntegerLiteral:
      Advance();
      return MakeLiteral(Value::Int(t.int_value));
    case TokenType::kDoubleLiteral:
      Advance();
      return MakeLiteral(Value::Double(t.double_value));
    case TokenType::kStringLiteral:
      Advance();
      return MakeLiteral(Value::String(t.text));
    case TokenType::kTrue:
      Advance();
      return MakeLiteral(Value::Bool(true));
    case TokenType::kFalse:
      Advance();
      return MakeLiteral(Value::Bool(false));
    case TokenType::kNull:
      Advance();
      return MakeLiteral(Value::Null());
    case TokenType::kDate: {
      Advance();
      if (!Check(TokenType::kStringLiteral)) {
        return ErrorAtCurrent("expected string literal after DATE");
      }
      const std::string text = Advance().text;
      MSQL_ASSIGN_OR_RETURN(int64_t days, ParseDate(text));
      return MakeLiteral(Value::Date(days));
    }
    case TokenType::kCurrent: {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCurrent;
      MSQL_ASSIGN_OR_RETURN(e->current_dim, ParseIdentifier("CURRENT"));
      return e;
    }
    case TokenType::kQuestion: {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kParam;
      e->param_index = next_param_index_++;
      return e;
    }
    case TokenType::kCase:
      Advance();
      return ParseCase();
    case TokenType::kCast: {
      Advance();
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "CAST"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCast;
      MSQL_ASSIGN_OR_RETURN(e->left, ParseExpr());
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kAs, "CAST"));
      if (Check(TokenType::kIdentifier)) {
        e->cast_type = Advance().text;
      } else if (Check(TokenType::kDate)) {
        Advance();
        e->cast_type = "DATE";
      } else {
        return ErrorAtCurrent("expected type name in CAST");
      }
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "CAST"));
      return e;
    }
    case TokenType::kExists: {
      Advance();
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "EXISTS"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kExists;
      MSQL_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "EXISTS"));
      return e;
    }
    case TokenType::kNot: {
      // NOT EXISTS reaches here via ParseNot; nothing else expected.
      Advance();
      if (Match(TokenType::kExists)) {
        MSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "NOT EXISTS"));
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kExists;
        e->negated = true;
        MSQL_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
        MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "NOT EXISTS"));
        return e;
      }
      return ErrorAtCurrent("unexpected NOT");
    }
    case TokenType::kLParen: {
      Advance();
      if (Check(TokenType::kSelect) || Check(TokenType::kWith)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kSubquery;
        MSQL_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
        MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "subquery"));
        return e;
      }
      MSQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      MSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "parenthesized expression"));
      return e;
    }
    case TokenType::kIdentifier: {
      std::string first = Advance().text;
      if (Match(TokenType::kLParen)) {
        return ParseFunctionCall(std::move(first));
      }
      std::vector<std::string> parts = {std::move(first)};
      while (Check(TokenType::kDot) && Peek(1).is(TokenType::kIdentifier)) {
        Advance();
        parts.push_back(Advance().text);
      }
      return MakeColumnRef(std::move(parts));
    }
    // A few keywords double as function names.
    case TokenType::kIf:
    case TokenType::kLeft:
    case TokenType::kRight:
    case TokenType::kReplace:
    case TokenType::kGrouping:
    case TokenType::kFilter:
    case TokenType::kFirst:
    case TokenType::kLast:
    case TokenType::kValues: {
      if (Peek(1).is(TokenType::kLParen)) {
        std::string name = Advance().text;
        Advance();  // (
        return ParseFunctionCall(std::move(name));
      }
      return ErrorAtCurrent(StrCat("unexpected keyword '", t.text, "'"));
    }
    default:
      return ErrorAtCurrent(
          StrCat("unexpected token ",
                 t.text.empty() ? TokenTypeName(t.type) : "'" + t.text + "'",
                 " in expression"));
  }
}

}  // namespace msql

#ifndef MSQL_PARSER_PARSER_H_
#define MSQL_PARSER_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "parser/token.h"

namespace msql {

// Recursive-descent parser for the msql dialect: a practical SQL subset plus
// the paper's extensions (AS MEASURE, AGGREGATE, AT-modifiers, CURRENT).
//
// Operator precedence, loosest to tightest:
//   OR < AND < NOT < comparison / IS / IN / BETWEEN / LIKE
//      < additive (+ - ||) < multiplicative (* / %) < unary minus
//      < postfix AT < primary.
// AT binds tighter than arithmetic so that
// `sumRevenue / sumRevenue AT (ALL prodName)` parses as the paper intends
// (listing 6).
class Parser {
 public:
  explicit Parser(std::string sql) : sql_(std::move(sql)) {}

  // Parses a script of one or more ';'-separated statements.
  Result<std::vector<StmtPtr>> ParseStatements();

  // Parses exactly one statement (trailing ';' allowed).
  Result<StmtPtr> ParseSingleStatement();

  // Convenience helpers.
  static Result<StmtPtr> Parse(const std::string& sql);
  static Result<ExprPtr> ParseExpression(const std::string& sql);

 private:
  // Token stream access.
  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Check(TokenType t) const { return Peek().is(t); }
  bool Match(TokenType t);
  Status Expect(TokenType t, const char* context);
  Status ErrorAtCurrent(const std::string& message) const;

  // Statements.
  Result<StmtPtr> ParseStatement();
  Result<StmtPtr> ParseCreate();
  Result<StmtPtr> ParseDrop();
  Result<StmtPtr> ParseInsert();
  Result<SelectStmtPtr> ParseSelectStmt();   // handles WITH and set ops
  Result<SelectStmtPtr> ParseSelectCore();   // one SELECT block

  // Clause helpers.
  Result<TableRefPtr> ParseTableRef();
  Result<TableRefPtr> ParseTablePrimary();
  Status ParseGroupBy(SelectStmt* select);
  Status ParseOrderBy(SelectStmt* select);
  Result<std::string> ParseIdentifier(const char* context);

  // Expressions, by precedence level.
  Result<ExprPtr> ParseExpr();          // OR level
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePostfixAt(ExprPtr operand);
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseFunctionCall(std::string name);
  Result<ExprPtr> ParseCase();
  Result<std::vector<AtModifier>> ParseAtModifiers();

  Status EnsureTokenized();

  std::string sql_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool tokenized_ = false;
  // Positional `?` parameters get ordinals in lexical appearance order,
  // numbered across the whole statement (subqueries included).
  int next_param_index_ = 0;
};

}  // namespace msql

#endif  // MSQL_PARSER_PARSER_H_

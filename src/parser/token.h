#ifndef MSQL_PARSER_TOKEN_H_
#define MSQL_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace msql {

// Token types. Keywords each get their own type so the parser can switch on
// them; non-reserved words (function names such as AGGREGATE or YEAR) are
// plain identifiers resolved by the binder.
enum class TokenType {
  kEof = 0,
  kIdentifier,
  kStringLiteral,
  kIntegerLiteral,
  kDoubleLiteral,

  // Punctuation.
  kLParen, kRParen, kComma, kDot, kSemicolon, kStar,
  kPlus, kMinus, kSlash, kPercent, kConcatOp,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kQuestion,  // `?` — positional parameter placeholder

  // Reserved keywords.
  kSelect, kFrom, kWhere, kGroup, kBy, kHaving, kOrder, kLimit, kOffset,
  kAs, kMeasure, kAt, kAll, kSet, kVisible, kCurrent,
  kAnd, kOr, kNot, kNull, kTrue, kFalse,
  kIs, kDistinct, kIn, kExists, kBetween, kLike,
  kCase, kWhen, kThen, kElse, kEnd, kCast,
  kCreate, kReplace, kView, kTable, kDrop, kInsert, kInto, kValues, kWith,
  kJoin, kInner, kLeft, kRight, kFull, kOuter, kCross, kOn, kUsing,
  kUnion, kExcept, kIntersect,
  kRollup, kCube, kGrouping, kSets,
  kAsc, kDesc, kNulls, kFirst, kLast,
  kDate, kExplain, kOver, kPartition, kFilter,
  kIf, kDescribe, kCopy, kTo,
};

const char* TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;      // identifier / string literal text (unquoted)
  int64_t int_value = 0;
  double double_value = 0;
  int offset = 0;        // byte offset in the source, for error messages
  int line = 1;
  int column = 1;

  bool is(TokenType t) const { return type == t; }
};

}  // namespace msql

#endif  // MSQL_PARSER_TOKEN_H_

#include "parser/unparser.h"

#include <cmath>

namespace msql {

std::string Unparse(const Stmt& stmt) { return stmt.ToString(); }
std::string Unparse(const SelectStmt& select) { return select.ToString(); }
std::string Unparse(const Expr& expr) { return expr.ToString(); }

namespace {

bool LiteralEquals(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case TypeKind::kNull:
      return true;
    case TypeKind::kBool:
      return a.bool_val() == b.bool_val();
    case TypeKind::kInt64:
      return a.int_val() == b.int_val();
    case TypeKind::kDate:
      return a.date_days() == b.date_days();
    case TypeKind::kDouble:
      return a.double_val() == b.double_val() ||
             (std::isnan(a.double_val()) && std::isnan(b.double_val()));
    case TypeKind::kString:
      return a.str() == b.str();
  }
  return false;
}

bool SelectPtrEquals(const SelectStmtPtr& a, const SelectStmtPtr& b) {
  if (!a || !b) return !a && !b;
  return SelectEquals(*a, *b);
}

bool TableRefPtrEquals(const TableRefPtr& a, const TableRefPtr& b) {
  if (!a || !b) return !a && !b;
  return TableRefEquals(*a, *b);
}

bool ExprListEquals(const std::vector<ExprPtr>& a,
                    const std::vector<ExprPtr>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ExprEquals(a[i], b[i])) return false;
  }
  return true;
}

bool AtModifierEquals(const AtModifier& a, const AtModifier& b) {
  return a.kind == b.kind && ExprListEquals(a.dims, b.dims) &&
         ExprEquals(a.set_dim, b.set_dim) && ExprEquals(a.value, b.value) &&
         ExprEquals(a.predicate, b.predicate);
}

bool WindowSpecEquals(const std::unique_ptr<WindowSpec>& a,
                      const std::unique_ptr<WindowSpec>& b) {
  if (!a || !b) return !a && !b;
  if (!ExprListEquals(a->partition_by, b->partition_by)) return false;
  if (a->order_by.size() != b->order_by.size()) return false;
  for (size_t i = 0; i < a->order_by.size(); ++i) {
    if (a->order_by[i].second != b->order_by[i].second) return false;
    if (!ExprEquals(a->order_by[i].first, b->order_by[i].first)) return false;
  }
  return true;
}

}  // namespace

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (!a || !b) return !a && !b;
  return ExprEquals(*a, *b);
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kLiteral:
      return LiteralEquals(a.literal, b.literal);
    case ExprKind::kColumnRef:
      return a.parts == b.parts;
    case ExprKind::kStar:
      return a.star_table == b.star_table;
    case ExprKind::kFuncCall:
      return a.func_name == b.func_name && a.distinct == b.distinct &&
             a.star_arg == b.star_arg && ExprListEquals(a.args, b.args) &&
             ExprEquals(a.filter, b.filter) && WindowSpecEquals(a.over, b.over);
    case ExprKind::kUnary:
      return a.unary_op == b.unary_op && ExprEquals(a.left, b.left);
    case ExprKind::kBinary:
      return a.binary_op == b.binary_op && ExprEquals(a.left, b.left) &&
             ExprEquals(a.right, b.right);
    case ExprKind::kCase: {
      if (!ExprEquals(a.case_operand, b.case_operand)) return false;
      if (a.when_clauses.size() != b.when_clauses.size()) return false;
      for (size_t i = 0; i < a.when_clauses.size(); ++i) {
        if (!ExprEquals(a.when_clauses[i].first, b.when_clauses[i].first) ||
            !ExprEquals(a.when_clauses[i].second, b.when_clauses[i].second)) {
          return false;
        }
      }
      return ExprEquals(a.else_expr, b.else_expr);
    }
    case ExprKind::kCast:
      return a.cast_type == b.cast_type && ExprEquals(a.left, b.left);
    case ExprKind::kIsNull:
      return a.negated == b.negated && ExprEquals(a.left, b.left);
    case ExprKind::kInList:
      return a.negated == b.negated && ExprEquals(a.left, b.left) &&
             ExprListEquals(a.in_list, b.in_list);
    case ExprKind::kInSubquery:
      return a.negated == b.negated && ExprEquals(a.left, b.left) &&
             SelectPtrEquals(a.subquery, b.subquery);
    case ExprKind::kBetween:
      return a.negated == b.negated && ExprEquals(a.left, b.left) &&
             ExprEquals(a.between_low, b.between_low) &&
             ExprEquals(a.between_high, b.between_high);
    case ExprKind::kLike:
      return a.negated == b.negated && ExprEquals(a.left, b.left) &&
             ExprEquals(a.right, b.right);
    case ExprKind::kExists:
      return a.negated == b.negated && SelectPtrEquals(a.subquery, b.subquery);
    case ExprKind::kSubquery:
      return SelectPtrEquals(a.subquery, b.subquery);
    case ExprKind::kAt: {
      if (!ExprEquals(a.left, b.left)) return false;
      if (a.at_modifiers.size() != b.at_modifiers.size()) return false;
      for (size_t i = 0; i < a.at_modifiers.size(); ++i) {
        if (!AtModifierEquals(a.at_modifiers[i], b.at_modifiers[i])) {
          return false;
        }
      }
      return true;
    }
    case ExprKind::kCurrent:
      return a.current_dim == b.current_dim;
    case ExprKind::kParam:
      return a.param_index == b.param_index;
  }
  return false;
}

bool TableRefEquals(const TableRef& a, const TableRef& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case TableRefKind::kBaseTable:
      return a.table_name == b.table_name && a.alias == b.alias;
    case TableRefKind::kSubquery:
      return a.alias == b.alias && SelectPtrEquals(a.subquery, b.subquery);
    case TableRefKind::kJoin:
      return a.join_type == b.join_type && TableRefPtrEquals(a.left, b.left) &&
             TableRefPtrEquals(a.right, b.right) &&
             ExprEquals(a.on_condition, b.on_condition) &&
             a.using_cols == b.using_cols;
  }
  return false;
}

bool SelectEquals(const SelectStmt& a, const SelectStmt& b) {
  if (a.ctes.size() != b.ctes.size()) return false;
  for (size_t i = 0; i < a.ctes.size(); ++i) {
    if (a.ctes[i].name != b.ctes[i].name ||
        !SelectPtrEquals(a.ctes[i].select, b.ctes[i].select)) {
      return false;
    }
  }
  if (a.distinct != b.distinct) return false;
  if (a.select_list.size() != b.select_list.size()) return false;
  for (size_t i = 0; i < a.select_list.size(); ++i) {
    const SelectItem& x = a.select_list[i];
    const SelectItem& y = b.select_list[i];
    if (x.alias != y.alias || x.is_measure != y.is_measure ||
        x.is_star != y.is_star || x.star_table != y.star_table ||
        !ExprEquals(x.expr, y.expr)) {
      return false;
    }
  }
  if (!TableRefPtrEquals(a.from, b.from)) return false;
  if (!ExprEquals(a.where, b.where)) return false;
  if (a.group_by.size() != b.group_by.size()) return false;
  for (size_t i = 0; i < a.group_by.size(); ++i) {
    const GroupItem& x = a.group_by[i];
    const GroupItem& y = b.group_by[i];
    if (x.kind != y.kind || !ExprEquals(x.expr, y.expr) ||
        !ExprListEquals(x.exprs, y.exprs)) {
      return false;
    }
    if (x.sets.size() != y.sets.size()) return false;
    for (size_t j = 0; j < x.sets.size(); ++j) {
      if (!ExprListEquals(x.sets[j], y.sets[j])) return false;
    }
  }
  if (!ExprEquals(a.having, b.having)) return false;
  if (a.order_by.size() != b.order_by.size()) return false;
  for (size_t i = 0; i < a.order_by.size(); ++i) {
    if (a.order_by[i].desc != b.order_by[i].desc ||
        a.order_by[i].nulls_first != b.order_by[i].nulls_first ||
        !ExprEquals(a.order_by[i].expr, b.order_by[i].expr)) {
      return false;
    }
  }
  if (!ExprEquals(a.limit, b.limit)) return false;
  if (!ExprEquals(a.offset, b.offset)) return false;
  if (a.set_op != b.set_op) return false;
  return SelectPtrEquals(a.set_rhs, b.set_rhs);
}

bool StmtEquals(const Stmt& a, const Stmt& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case StmtKind::kSelect:
      return SelectPtrEquals(a.select, b.select);
    case StmtKind::kExplain:
      return a.explain_analyze == b.explain_analyze &&
             SelectPtrEquals(a.select, b.select);
    case StmtKind::kCreateTable: {
      if (a.name != b.name || a.if_not_exists != b.if_not_exists) return false;
      if (a.columns.size() != b.columns.size()) return false;
      for (size_t i = 0; i < a.columns.size(); ++i) {
        if (a.columns[i].name != b.columns[i].name ||
            a.columns[i].type_name != b.columns[i].type_name) {
          return false;
        }
      }
      return true;
    }
    case StmtKind::kCreateView:
      return a.name == b.name && a.or_replace == b.or_replace &&
             SelectPtrEquals(a.view_select, b.view_select);
    case StmtKind::kDrop:
      return a.name == b.name && a.drop_is_view == b.drop_is_view &&
             a.if_exists == b.if_exists;
    case StmtKind::kDescribe:
      return a.name == b.name;
    case StmtKind::kCopy:
      return a.name == b.name && a.copy_path == b.copy_path &&
             a.copy_from == b.copy_from;
    case StmtKind::kInsert: {
      if (a.insert_table != b.insert_table ||
          a.insert_columns != b.insert_columns) {
        return false;
      }
      if (!SelectPtrEquals(a.insert_select, b.insert_select)) return false;
      if (a.insert_rows.size() != b.insert_rows.size()) return false;
      for (size_t i = 0; i < a.insert_rows.size(); ++i) {
        if (!ExprListEquals(a.insert_rows[i], b.insert_rows[i])) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace msql

#ifndef MSQL_PARSER_UNPARSER_H_
#define MSQL_PARSER_UNPARSER_H_

#include <string>

#include "parser/ast.h"

namespace msql {

// Statement unparser: renders an AST back to msql SQL text such that
// re-parsing the output yields a structurally identical AST
// (`StmtEquals(parse(Unparse(s)), s)`). This is the contract the testing
// subsystem depends on: the delta-debugging shrinker (src/testing/shrinker)
// mutates parsed statements and re-unparses them, and parser_fuzz_test
// checks the unparse -> reparse -> AST-equality round-trip property.
//
// The rendering is the canonical one produced by the AST ToString methods
// (fully parenthesized expressions, keywords upper-case); these entry
// points name the round-trip guarantee and are the ones non-parser code
// should call.
std::string Unparse(const Stmt& stmt);
std::string Unparse(const SelectStmt& select);
std::string Unparse(const Expr& expr);

// Deep structural AST equality. Literals compare strictly (same type kind
// and same value; 1 and 1.0 are NOT equal), so a round-trip that changes a
// literal's type is caught.
bool ExprEquals(const Expr& a, const Expr& b);
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);  // null-tolerant
bool TableRefEquals(const TableRef& a, const TableRef& b);
bool SelectEquals(const SelectStmt& a, const SelectStmt& b);
bool StmtEquals(const Stmt& a, const Stmt& b);

}  // namespace msql

#endif  // MSQL_PARSER_UNPARSER_H_

#include "plan/plan.h"

#include "common/string_util.h"

namespace msql {

namespace {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScanTable: return "Scan";
    case PlanKind::kValues: return "Values";
    case PlanKind::kProject: return "Project";
    case PlanKind::kFilter: return "Filter";
    case PlanKind::kAggregate: return "Aggregate";
    case PlanKind::kJoin: return "Join";
    case PlanKind::kSort: return "Sort";
    case PlanKind::kLimit: return "Limit";
    case PlanKind::kDistinct: return "Distinct";
    case PlanKind::kSetOp: return "SetOp";
    case PlanKind::kWindow: return "Window";
  }
  return "?";
}

}  // namespace

std::string LogicalPlan::NodeLabel() const {
  std::string s = PlanKindName(kind);
  switch (kind) {
    case PlanKind::kScanTable:
      s += " " + table->name();
      break;
    case PlanKind::kValues:
      s += StrCat(" rows=", values_rows.size());
      break;
    case PlanKind::kProject: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (schema.column(i).hidden) continue;
        parts.push_back(exprs[i]->ToString());
      }
      s += " [" + Join(parts, ", ") + "]";
      break;
    }
    case PlanKind::kFilter:
      s += " " + predicate->ToString();
      break;
    case PlanKind::kJoin:
      switch (join_type) {
        case JoinType::kInner: s += " INNER"; break;
        case JoinType::kLeft: s += " LEFT"; break;
        case JoinType::kRight: s += " RIGHT"; break;
        case JoinType::kFull: s += " FULL"; break;
        case JoinType::kCross: s += " CROSS"; break;
      }
      if (join_condition) s += " ON " + join_condition->ToString();
      break;
    case PlanKind::kAggregate: {
      std::vector<std::string> keys;
      for (const auto& g : group_exprs) keys.push_back(g->ToString());
      std::vector<std::string> aggs;
      for (const auto& a : agg_calls) {
        std::string t = AggIdName(a.agg);
        t += "(";
        std::vector<std::string> as;
        for (const auto& arg : a.args) as.push_back(arg->ToString());
        t += a.agg == AggId::kCountStar ? "*" : Join(as, ", ");
        t += ")";
        aggs.push_back(std::move(t));
      }
      for (const auto& m : measure_evals) aggs.push_back(m.display);
      s += " keys=[" + Join(keys, ", ") + "] outs=[" + Join(aggs, ", ") + "]";
      if (grouping_sets.size() > 1) {
        s += StrCat(" sets=", grouping_sets.size());
      }
      break;
    }
    case PlanKind::kSort: {
      std::vector<std::string> keys;
      for (const auto& k : sort_keys) {
        keys.push_back(k.expr->ToString() + (k.desc ? " DESC" : ""));
      }
      s += " [" + Join(keys, ", ") + "]";
      break;
    }
    case PlanKind::kLimit:
      if (limit_expr) s += " limit=" + limit_expr->ToString();
      if (offset_expr) s += " offset=" + offset_expr->ToString();
      break;
    case PlanKind::kSetOp:
      switch (set_op) {
        case SetOpKind::kUnionAll: s += " UNION ALL"; break;
        case SetOpKind::kUnion: s += " UNION"; break;
        case SetOpKind::kExcept: s += " EXCEPT"; break;
        case SetOpKind::kIntersect: s += " INTERSECT"; break;
        default: break;
      }
      break;
    case PlanKind::kWindow: {
      std::vector<std::string> ws;
      for (const auto& w : windows) {
        std::string t = AggIdName(w.agg);
        t += "(...) OVER (";
        std::vector<std::string> ps;
        for (const auto& p : w.partition_by) ps.push_back(p->ToString());
        t += "PARTITION BY " + Join(ps, ", ") + ")";
        ws.push_back(std::move(t));
      }
      s += " [" + Join(ws, ", ") + "]";
      break;
    }
    default:
      break;
  }
  if (!measures.empty()) {
    std::vector<std::string> ms;
    for (const auto& m : measures) ms.push_back(m.name);
    s += " measures=[" + Join(ms, ", ") + "]";
  }
  return s;
}

std::string LogicalPlan::ToString(int indent) const {
  std::string s(static_cast<size_t>(indent) * 2, ' ');
  s += NodeLabel();
  s += "\n";
  for (const auto& child : children) {
    s += child->ToString(indent + 1);
  }
  return s;
}

}  // namespace msql

#ifndef MSQL_PLAN_PLAN_H_
#define MSQL_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "binder/bound_expr.h"
#include "catalog/schema.h"
#include "catalog/table.h"
#include "parser/ast.h"

namespace msql {

enum class PlanKind {
  kScanTable,
  kValues,
  kProject,
  kFilter,
  kAggregate,
  kJoin,
  kSort,
  kLimit,
  kDistinct,
  kSetOp,
  kWindow,
};

// Bind-time description of a measure carried by a plan node's output
// (paper section 3.4: a measure column of a table). Two flavors:
//  * define:    a new measure created by `expr AS MEASURE name`; its source
//               is this node's (only) child, and `formula` is bound against
//               the child schema.
//  * propagate: a measure inherited from child `child_index`, slot
//               `child_slot`; the provenance map and row-id column are
//               re-expressed for this node's output schema.
struct PlanMeasure {
  bool define = false;
  std::string name;
  DataType value_type;

  // define
  std::shared_ptr<BoundExpr> formula;  // over the source (child) schema

  // propagate
  int child_index = 0;
  int child_slot = -1;

  // both
  int column = -1;    // measure column in this node's schema
  int rowid_col = -1; // hidden row-id column in this node's schema
  // Provenance: this node's visible column index -> expression over the
  // measure's *source* schema, when derivable. Group keys with provenance
  // become dimension terms of the evaluation context.
  std::unordered_map<int, std::shared_ptr<BoundExpr>> provenance;
};

// Sort key over the child schema.
struct SortKeyDef {
  BoundExprPtr expr;
  bool desc = false;
  bool nulls_first = true;  // SQL default: NULLS FIRST asc, NULLS LAST desc
};

// One aggregate call inside an Aggregate node, bound over the child schema.
struct AggCallDef {
  AggId agg = AggId::kInvalid;
  std::vector<BoundExprPtr> args;
  bool distinct = false;
  BoundExprPtr filter;
  DataType type;
};

// One measure evaluation inside an Aggregate node: measure `measure_slot`
// of the child relation, with AT modifiers, evaluated once per output group
// in the group's context.
struct MeasureEvalDef {
  int measure_slot = -1;
  std::vector<BoundAtModifier> modifiers;
  DataType type;
  std::string display;
};

// One window function over the child: evaluated per row within its
// partition; with ORDER BY the frame is the running prefix, without it the
// whole partition.
struct WindowDef {
  AggId agg = AggId::kInvalid;
  std::vector<BoundExprPtr> args;
  std::vector<BoundExprPtr> partition_by;
  std::vector<std::pair<BoundExprPtr, bool /*desc*/>> order_by;
  DataType type;
};

// An immutable logical plan node. The executor interprets the tree directly;
// `schema` lists visible columns first, then hidden (row-id / grouping-id)
// columns.
struct LogicalPlan {
  PlanKind kind = PlanKind::kScanTable;
  Schema schema;
  std::vector<std::shared_ptr<LogicalPlan>> children;
  std::vector<PlanMeasure> measures;

  // kScanTable
  std::shared_ptr<Table> table;

  // kValues: rows of constant expressions.
  std::vector<std::vector<BoundExprPtr>> values_rows;

  // kProject: one expression per output column (visible and hidden).
  std::vector<BoundExprPtr> exprs;

  // kFilter (also HAVING)
  BoundExprPtr predicate;

  // kJoin
  JoinType join_type = JoinType::kInner;
  BoundExprPtr join_condition;  // over the combined schema; null = cross

  // kAggregate. Output schema:
  //   [group_exprs...] [agg_calls...] [measure_evals...] [__grouping_id]
  // where __grouping_id is hidden (bit i set = group_exprs[i] aggregated
  // away in this grouping set).
  std::vector<BoundExprPtr> group_exprs;          // over child
  std::vector<std::vector<int>> grouping_sets;    // indices into group_exprs
  std::vector<AggCallDef> agg_calls;
  std::vector<MeasureEvalDef> measure_evals;

  // kSort
  std::vector<SortKeyDef> sort_keys;

  // kLimit
  BoundExprPtr limit_expr;   // may be null
  BoundExprPtr offset_expr;  // may be null

  // kSetOp
  SetOpKind set_op = SetOpKind::kNone;

  // kWindow. Output schema: child visible ++ window cols ++ child hidden.
  std::vector<WindowDef> windows;

  // One-line operator label, without indentation, children or newline.
  // Shared by ToString and the obs EXPLAIN / EXPLAIN ANALYZE renderer
  // (src/obs/explain.cc), so both outputs agree on the node text.
  std::string NodeLabel() const;

  // EXPLAIN rendering.
  std::string ToString(int indent = 0) const;
};

using PlanPtr = std::shared_ptr<LogicalPlan>;

}  // namespace msql

#endif  // MSQL_PLAN_PLAN_H_

#include "runtime/circuit_breaker.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "exec/exec_state.h"
#include "obs/metrics.h"

namespace msql {

void CircuitBreaker::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  options_.window = std::max(1, options_.window);
  options_.min_samples = std::max(1, options_.min_samples);
  options_.half_open_probes = std::max(1, options_.half_open_probes);
  window_.assign(static_cast<size_t>(options_.window), false);
  window_pos_ = 0;
  window_count_ = 0;
  window_failures_ = 0;
  half_open_inflight_ = 0;
  half_open_successes_ = 0;
  opens_ = 0;
  short_circuits_ = 0;
  TransitionLocked(State::kClosed);
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      auto now = std::chrono::steady_clock::now();
      if (now - opened_at_ <
          std::chrono::milliseconds(options_.open_cooldown_ms)) {
        ++short_circuits_;
        return false;
      }
      TransitionLocked(State::kHalfOpen);
      half_open_inflight_ = 1;  // this caller takes the first probe slot
      return true;
    }
    case State::kHalfOpen:
      if (half_open_inflight_ >= options_.half_open_probes) {
        ++short_circuits_;
        return false;
      }
      ++half_open_inflight_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    ++half_open_successes_;
    if (half_open_successes_ >= options_.half_open_probes) {
      // Recovered: close with a clean window so stale failures from the
      // outage don't immediately re-open.
      window_.assign(window_.size(), false);
      window_pos_ = 0;
      window_count_ = 0;
      window_failures_ = 0;
      TransitionLocked(State::kClosed);
    }
    return;
  }
  if (state_ != State::kClosed) return;
  if (window_[static_cast<size_t>(window_pos_)]) --window_failures_;
  window_[static_cast<size_t>(window_pos_)] = false;
  window_pos_ = (window_pos_ + 1) % options_.window;
  window_count_ = std::min(window_count_ + 1, options_.window);
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // Probe failed: the fault is still there, back to open and restart the
    // cooldown.
    ++opens_;
    opened_at_ = std::chrono::steady_clock::now();
    TransitionLocked(State::kOpen);
    return;
  }
  if (state_ != State::kClosed) return;
  if (!window_[static_cast<size_t>(window_pos_)]) ++window_failures_;
  window_[static_cast<size_t>(window_pos_)] = true;
  window_pos_ = (window_pos_ + 1) % options_.window;
  window_count_ = std::min(window_count_ + 1, options_.window);
  if (window_count_ >= options_.min_samples &&
      static_cast<double>(window_failures_) >=
          options_.failure_ratio * static_cast<double>(window_count_)) {
    ++opens_;
    opened_at_ = std::chrono::steady_clock::now();
    TransitionLocked(State::kOpen);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

int64_t CircuitBreaker::short_circuits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return short_circuits_;
}

void CircuitBreaker::set_state_gauge(obs::Gauge* gauge) {
  std::lock_guard<std::mutex> lock(mu_);
  state_gauge_ = gauge;
  if (state_gauge_ != nullptr) {
    state_gauge_->Set(static_cast<double>(static_cast<int>(state_)));
  }
}

bool AdmitSharedCacheFill(ExecState* state) {
  CircuitBreaker* breaker = state->cache_fill_breaker;
  if (breaker != nullptr && !breaker->Allow()) {
    ++state->breaker_short_circuits;
    return false;
  }
  if (FaultInjector::Instance().active()) {
    Status st =
        FaultInjector::Instance().Checkpoint("runtime.shared_cache_fill");
    if (!st.ok()) {
      if (breaker != nullptr) breaker->RecordFailure();
      return false;
    }
  }
  if (breaker != nullptr) breaker->RecordSuccess();
  return true;
}

void CircuitBreaker::TransitionLocked(State next) {
  if (next == State::kHalfOpen) {
    half_open_inflight_ = 0;
    half_open_successes_ = 0;
  }
  state_ = next;
  if (state_gauge_ != nullptr) {
    state_gauge_->Set(static_cast<double>(static_cast<int>(next)));
  }
}

}  // namespace msql

#ifndef MSQL_RUNTIME_CIRCUIT_BREAKER_H_
#define MSQL_RUNTIME_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace msql::obs {
class Gauge;
}  // namespace msql::obs

namespace msql {

// Generic circuit breaker guarding a degradable fault point (grouped-index
// builds, shared-cache fills). The protected operation is an optimization:
// when it fails, the query can fall back to an unoptimized path, but under
// a persistent fault (memory pressure on every fill, a corrupted shared
// index) paying the failure latency on every query is worse than skipping
// the attempt outright. The breaker watches a rolling window of outcomes
// and short-circuits callers while the failure rate is high.
//
// States (docs/ROBUSTNESS.md):
//   kClosed   — normal operation; outcomes recorded into the window. Opens
//               when the window holds >= min_samples outcomes and the
//               failure ratio reaches failure_ratio.
//   kOpen     — Allow() returns false (callers degrade immediately) until
//               open_cooldown has elapsed, then transitions to half-open.
//   kHalfOpen — admits up to half_open_probes trial calls; any failure
//               reopens (cooldown restarts), half_open_probes consecutive
//               successes close and clear the window.
//
// All methods are thread-safe (one small mutex; the protected operations
// are orders of magnitude more expensive than the lock). The numeric state
// values are published to an optional gauge for dashboards and tests.
class CircuitBreaker {
 public:
  enum class State : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Options {
    int window = 16;            // rolling outcome window size
    double failure_ratio = 0.5; // open when failures/window >= ratio
    int min_samples = 8;        // don't open before this many outcomes
    int64_t open_cooldown_ms = 100;
    int half_open_probes = 2;   // consecutive successes needed to close
  };

  CircuitBreaker() { Configure(Options{}); }
  explicit CircuitBreaker(const Options& options) { Configure(options); }

  // Reconfigures and resets to closed with an empty window.
  void Configure(const Options& options);

  // True if the caller may attempt the protected operation. In the open
  // state this flips to half-open (admitting a probe) once the cooldown
  // has elapsed; in half-open it admits only while probe slots remain.
  bool Allow();

  // Outcome of an attempted (admitted) operation.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  // Number of closed->open (or half-open->open) transitions since
  // Configure; the chaos test uses this to assert the breaker tripped.
  int64_t opens() const;
  // Calls short-circuited by Allow() returning false.
  int64_t short_circuits() const;

  // Optional gauge that mirrors the numeric state (0/1/2) on every
  // transition. Not owned. Set once at engine construction.
  void set_state_gauge(obs::Gauge* gauge);

 private:
  void TransitionLocked(State next);

  mutable std::mutex mu_;
  Options options_;
  State state_ = State::kClosed;
  std::vector<bool> window_;  // ring buffer of outcomes, true = failure
  int window_pos_ = 0;
  int window_count_ = 0;
  int window_failures_ = 0;
  int half_open_inflight_ = 0;
  int half_open_successes_ = 0;
  int64_t opens_ = 0;
  int64_t short_circuits_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
  obs::Gauge* state_gauge_ = nullptr;
};

struct ExecState;  // exec/exec_state.h

// Gate shared by every cross-query cache fill site (measure values, grouped
// indexes, subquery memos). Returns true if the fill should proceed. A
// false return — breaker open, or an injected fault at the
// `runtime.shared_cache_fill` checkpoint — means "skip the fill and move
// on": the query still returns correct (uncached) results, so fill
// failures degrade instead of failing statements.
bool AdmitSharedCacheFill(ExecState* state);

}  // namespace msql

#endif  // MSQL_RUNTIME_CIRCUIT_BREAKER_H_

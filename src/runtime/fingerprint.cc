#include "runtime/fingerprint.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace msql {

namespace {

void AppendExpr(const BoundExpr& e, std::string* out);
void AppendPlan(const LogicalPlan& p, std::string* out);

void AppendOptExpr(const BoundExprPtr& e, std::string* out) {
  if (e == nullptr) {
    *out += "~";
  } else {
    AppendExpr(*e, out);
  }
}

void AppendModifier(const BoundAtModifier& m, std::string* out) {
  *out += StrCat("@", static_cast<int>(m.kind), "{");
  for (const auto& d : m.dims) AppendExpr(*d, out);
  AppendOptExpr(m.set_dim, out);
  AppendOptExpr(m.set_value, out);
  AppendOptExpr(m.predicate, out);
  *out += "}";
}

void AppendExpr(const BoundExpr& e, std::string* out) {
  *out += StrCat("(", static_cast<int>(e.kind), ":");
  switch (e.kind) {
    case BoundExprKind::kLiteral:
      *out += e.literal.ToSqlLiteral();
      break;
    case BoundExprKind::kColumnRef:
      *out += StrCat(e.depth, ".", e.column);
      break;
    case BoundExprKind::kRowIndex:
      break;
    case BoundExprKind::kFunc:
      *out += StrCat(static_cast<int>(e.func), "/", e.func_name);
      for (const auto& a : e.args) AppendExpr(*a, out);
      break;
    case BoundExprKind::kAgg:
      *out += StrCat(static_cast<int>(e.agg), e.distinct ? "D" : "");
      for (const auto& a : e.args) AppendExpr(*a, out);
      if (e.filter) {
        *out += "F";
        AppendExpr(*e.filter, out);
      }
      break;
    case BoundExprKind::kCase:
      for (const auto& [w, t] : e.when_clauses) {
        AppendExpr(*w, out);
        AppendExpr(*t, out);
      }
      AppendOptExpr(e.else_expr, out);
      break;
    case BoundExprKind::kCast:
      *out += TypeKindName(e.cast_to);
      AppendExpr(*e.operand, out);
      break;
    case BoundExprKind::kIsNull:
    case BoundExprKind::kLike:
    case BoundExprKind::kInList:
      *out += e.negated ? "!" : "";
      AppendOptExpr(e.operand, out);
      for (const auto& a : e.args) AppendExpr(*a, out);
      break;
    case BoundExprKind::kSubquery:
    case BoundExprKind::kInSubquery:
    case BoundExprKind::kExists:
      *out += e.negated ? "!" : "";
      AppendOptExpr(e.operand, out);
      if (e.subplan) AppendPlan(*e.subplan, out);
      for (const auto& fv : e.free_vars) AppendExpr(*fv, out);
      break;
    case BoundExprKind::kMeasureEval:
      *out += StrCat(e.depth, ".", e.measure_slot);
      for (const auto& m : e.modifiers) AppendModifier(m, out);
      break;
    case BoundExprKind::kCurrent:
      AppendOptExpr(e.current_dim, out);
      break;
    case BoundExprKind::kGroupingBit:
      *out += StrCat(e.grouping_bit, ".", e.grouping_col);
      break;
    case BoundExprKind::kParam:
      // Structural only: two plans differing solely in parameter *values*
      // fingerprint identically. Cross-query shared-cache keys therefore
      // append ExecState::param_sig alongside the fingerprint.
      *out += StrCat("$", e.param_index);
      break;
  }
  *out += ")";
}

void AppendSchema(const Schema& s, std::string* out) {
  *out += "[";
  for (const Column& c : s.columns()) {
    *out += StrCat(c.name, ":", static_cast<int>(c.type.kind),
                   c.hidden ? "h" : "", ";");
  }
  *out += "]";
}

void AppendPlan(const LogicalPlan& p, std::string* out) {
  *out += StrCat("<", static_cast<int>(p.kind), " ");
  AppendSchema(p.schema, out);
  switch (p.kind) {
    case PlanKind::kScanTable:
      *out += p.table->name();
      break;
    case PlanKind::kValues:
      for (const auto& row : p.values_rows) {
        *out += "r";
        for (const auto& e : row) AppendExpr(*e, out);
      }
      break;
    case PlanKind::kProject:
      for (const auto& e : p.exprs) AppendExpr(*e, out);
      break;
    case PlanKind::kFilter:
      AppendOptExpr(p.predicate, out);
      break;
    case PlanKind::kJoin:
      *out += StrCat("j", static_cast<int>(p.join_type));
      AppendOptExpr(p.join_condition, out);
      break;
    case PlanKind::kAggregate:
      for (const auto& g : p.group_exprs) AppendExpr(*g, out);
      *out += "|";
      for (const auto& set : p.grouping_sets) {
        *out += "s";
        for (int i : set) *out += StrCat(i, ",");
      }
      for (const auto& a : p.agg_calls) {
        *out += StrCat("a", static_cast<int>(a.agg), a.distinct ? "D" : "");
        for (const auto& arg : a.args) AppendExpr(*arg, out);
        AppendOptExpr(a.filter, out);
      }
      for (const auto& m : p.measure_evals) {
        *out += StrCat("m", m.measure_slot);
        for (const auto& mod : m.modifiers) AppendModifier(mod, out);
      }
      break;
    case PlanKind::kSort:
      for (const auto& k : p.sort_keys) {
        AppendExpr(*k.expr, out);
        *out += StrCat(k.desc ? "D" : "A", k.nulls_first ? "F" : "L");
      }
      break;
    case PlanKind::kLimit:
      AppendOptExpr(p.limit_expr, out);
      AppendOptExpr(p.offset_expr, out);
      break;
    case PlanKind::kSetOp:
      *out += StrCat("o", static_cast<int>(p.set_op));
      break;
    case PlanKind::kDistinct:
      break;
    case PlanKind::kWindow:
      for (const auto& w : p.windows) {
        *out += StrCat("w", static_cast<int>(w.agg));
        for (const auto& a : w.args) AppendExpr(*a, out);
        *out += "P";
        for (const auto& pb : w.partition_by) AppendExpr(*pb, out);
        *out += "O";
        for (const auto& [e, desc] : w.order_by) {
          AppendExpr(*e, out);
          *out += desc ? "D" : "A";
        }
      }
      break;
  }
  // Measures riding on this node: definitions contribute their formula,
  // propagations their wiring; provenance is rendered sorted for
  // determinism (it is stored in an unordered_map).
  for (const PlanMeasure& m : p.measures) {
    *out += StrCat("M", m.define ? "d" : "p", m.name, ":", m.column, ":",
                   m.rowid_col, ":", m.child_index, ":", m.child_slot);
    if (m.formula) AppendExpr(*m.formula, out);
    std::map<int, const BoundExpr*> sorted;
    for (const auto& [col, expr] : m.provenance) sorted[col] = expr.get();
    for (const auto& [col, expr] : sorted) {
      *out += StrCat("v", col);
      AppendExpr(*expr, out);
    }
  }
  for (const auto& child : p.children) AppendPlan(*child, out);
  *out += ">";
}

}  // namespace

std::string FingerprintPlan(const LogicalPlan& plan) {
  std::string out;
  out.reserve(256);
  AppendPlan(plan, &out);
  return out;
}

std::string FingerprintExpr(const BoundExpr& expr) {
  std::string out;
  out.reserve(64);
  AppendExpr(expr, &out);
  return out;
}

}  // namespace msql

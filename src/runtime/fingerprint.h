#ifndef MSQL_RUNTIME_FINGERPRINT_H_
#define MSQL_RUNTIME_FINGERPRINT_H_

#include <string>

#include "binder/bound_expr.h"
#include "plan/plan.h"

namespace msql {

// Deterministic structural renderings of bound plans and expressions, used
// as the cross-query identity component of SharedMeasureCache keys.
//
// The per-query caches key on pointer identity (`m.source.get()`), which is
// free within one query but meaningless across queries: every bind produces
// fresh objects. These fingerprints instead render the full structure —
// every expression (including subquery subplans, which BoundExpr::ToString
// elides as "(<subquery>)"), schema, join/set-op/sort details and the
// measures riding on each node — so two independently bound queries over
// the same catalog state produce byte-identical fingerprints exactly when
// their subtrees compute the same relation.
//
// Fingerprints deliberately exclude volatile identities (pointers, table
// data); data versioning is carried separately by the catalog generation in
// the cache key.
std::string FingerprintPlan(const LogicalPlan& plan);
std::string FingerprintExpr(const BoundExpr& expr);

}  // namespace msql

#endif  // MSQL_RUNTIME_FINGERPRINT_H_

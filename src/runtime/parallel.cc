#include "runtime/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <limits>
#include <mutex>

#include "runtime/thread_pool.h"

namespace msql {

int PlanParallelWorkers(const ThreadPool* pool, int64_t n,
                        const ParallelForOptions& opts) {
  if (pool == nullptr || n <= 0) return 1;
  const int64_t morsel = std::max<int64_t>(1, opts.morsel_rows);
  const int64_t morsels = (n + morsel - 1) / morsel;
  int64_t workers = pool->num_threads() + 1;  // pool + calling thread
  if (opts.max_workers > 0) workers = std::min<int64_t>(workers, opts.max_workers);
  workers = std::min(workers, morsels);
  return static_cast<int>(std::max<int64_t>(1, workers));
}

Status ParallelFor(ThreadPool* pool, int64_t n, int workers,
                   const ParallelForOptions& opts,
                   const std::function<Status(int, int64_t, int64_t)>& body) {
  if (n <= 0) return Status::Ok();
  if (workers <= 1 || pool == nullptr) return body(0, 0, n);
  const int64_t morsel = std::max<int64_t>(1, opts.morsel_rows);

  struct Shared {
    std::atomic<int64_t> cursor{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable cv;
    int pending = 0;
    int64_t first_error_pos = std::numeric_limits<int64_t>::max();
    Status first_error;
  } shared;

  auto run_worker = [&](int w) {
    for (;;) {
      if (shared.failed.load(std::memory_order_relaxed)) return;
      const int64_t begin =
          shared.cursor.fetch_add(morsel, std::memory_order_relaxed);
      if (begin >= n) return;
      Status st = body(w, begin, std::min(n, begin + morsel));
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(shared.mu);
        if (begin < shared.first_error_pos) {
          shared.first_error_pos = begin;
          shared.first_error = std::move(st);
        }
        shared.failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  shared.pending = workers - 1;
  for (int w = 1; w < workers; ++w) {
    const bool queued = pool->Submit([&shared, &run_worker, w]() {
      run_worker(w);
      std::lock_guard<std::mutex> lock(shared.mu);
      --shared.pending;
      shared.cv.notify_all();
    });
    if (!queued) {
      // Pool shut down under us: absorb this worker's share inline. The
      // worker states stay distinct, so running them serially is safe.
      run_worker(w);
      std::lock_guard<std::mutex> lock(shared.mu);
      --shared.pending;
    }
  }
  run_worker(0);

  std::unique_lock<std::mutex> lock(shared.mu);
  shared.cv.wait(lock, [&shared] { return shared.pending == 0; });
  if (shared.failed.load(std::memory_order_relaxed)) return shared.first_error;
  return Status::Ok();
}

}  // namespace msql

#ifndef MSQL_RUNTIME_PARALLEL_H_
#define MSQL_RUNTIME_PARALLEL_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace msql {

class ThreadPool;  // runtime/thread_pool.h

// Morsel-driven parallel-for (the HyPer execution model, see PAPERS.md):
// the index range [0, n) is split into contiguous morsels that idle
// workers pull from a shared cursor, so a skewed morsel cannot stall the
// whole batch the way static range splitting would.
//
// Determinism contract: workers only share the cursor; everything a body
// writes must be indexed by the element position (results[i], keys[i]),
// never by worker or arrival order. Under that discipline the output is
// bit-identical to the serial run regardless of scheduling.
struct ParallelForOptions {
  int64_t morsel_rows = 1024;  // elements per scheduling unit
  int max_workers = 0;         // 0 = pool width + the calling thread
};

// Number of workers ParallelFor would use for `n` elements: the pool's
// threads plus the calling thread, capped by opts.max_workers and by the
// morsel count (never more workers than morsels). 1 means "run inline" —
// callers use this to size per-worker state before dispatching.
int PlanParallelWorkers(const ThreadPool* pool, int64_t n,
                        const ParallelForOptions& opts);

// Runs body(worker, begin, end) over [0, n) with `workers` workers (from
// PlanParallelWorkers; worker 0 is the calling thread). `worker` indexes
// the per-worker scratch state the caller prepared. workers <= 1 (or a
// null pool) degenerates to one inline body(0, 0, n) call. On failure the
// remaining morsels are abandoned (cooperative early exit) and the error
// of the earliest-positioned failing morsel that ran is returned.
Status ParallelFor(ThreadPool* pool, int64_t n, int workers,
                   const ParallelForOptions& opts,
                   const std::function<Status(int, int64_t, int64_t)>& body);

}  // namespace msql

#endif  // MSQL_RUNTIME_PARALLEL_H_

#include "runtime/plan_cache.h"

#include "common/string_util.h"

namespace msql {

namespace {

size_t CountPlanNodes(const LogicalPlan& plan) {
  size_t n = 1;
  for (const auto& child : plan.children) {
    if (child != nullptr) n += CountPlanNodes(*child);
  }
  return n;
}

}  // namespace

std::string PlanCacheKey(const std::string& user, const std::string& sql,
                         const std::vector<TypeKind>& param_types) {
  // '\x1f' (unit separator) cannot appear in identifiers or SQL text the
  // lexer accepts, so the concatenation is injective.
  std::string key = StrCat(user, "\x1f", sql, "\x1f");
  for (TypeKind t : param_types) {
    key.push_back(static_cast<char>('0' + static_cast<int>(t)));
  }
  return key;
}

uint64_t PlanCache::ApproxPlanBytes(const PreparedPlan& plan) {
  uint64_t bytes = sizeof(PreparedPlan) + plan.sql.size() +
                   plan.canonical.size() + plan.user.size() +
                   plan.fingerprint.size();
  if (plan.plan != nullptr) {
    // Bound plans are expression-tree heavy; 1 KiB per operator is a
    // deliberately generous stand-in so the byte budget errs toward
    // evicting, never toward unbounded growth.
    bytes += 1024ull * CountPlanNodes(*plan.plan);
  }
  return bytes;
}

PreparedPlanPtr PlanCache::Lookup(const std::string& key,
                                  uint64_t current_generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  if (it->second->plan->generation != current_generation) {
    // Bound against older data: the plan pins pre-mutation table
    // snapshots, so replaying it would read stale rows. Drop eagerly and
    // let the caller re-prepare.
    bytes_ -= it->second->plan->approx_bytes;
    lru_.erase(it->second);
    index_.erase(it);
    ++counters_.invalidations;
    ++counters_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++counters_.hits;
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key, PreparedPlanPtr plan) {
  if (plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (plan->approx_bytes > max_bytes_) return;  // would evict everything
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->plan->approx_bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  bytes_ += lru_.front().plan->approx_bytes;
  ++counters_.insertions;
  EvictToBudgetLocked();
}

void PlanCache::EvictToBudgetLocked() {
  while (!lru_.empty() &&
         (index_.size() > max_entries_ || bytes_ > max_bytes_)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.plan->approx_bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.evictions += index_.size();
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.entries = index_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace msql

#ifndef MSQL_RUNTIME_PLAN_CACHE_H_
#define MSQL_RUNTIME_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "plan/plan.h"

namespace msql {

// A statement prepared once and executed many times: the bound,
// measure-expanded logical plan plus everything needed to validate later
// parameter bindings against it. Immutable after construction; shared
// between the plan cache, server-side prepared-statement registries and
// in-flight executions, so eviction never invalidates a running query.
struct PreparedPlan {
  std::string sql;        // statement text as prepared (trimmed)
  std::string canonical;  // canonical unparse of the parsed statement
  std::string user;       // binding user (definer security was applied)
  PlanPtr plan;           // bound + measure-expanded logical plan
  std::vector<TypeKind> param_types;  // declared positional parameter types
  int param_count = 0;    // `?` ordinals actually present in the statement
  uint64_t generation = 0;  // catalog data generation at bind time
  std::string fingerprint;  // structural identity (runtime/fingerprint.h)
  uint64_t approx_bytes = 0;
};
using PreparedPlanPtr = std::shared_ptr<const PreparedPlan>;

// Cache key for one (user, statement text, parameter-type signature)
// triple. The same bound plan is typically indexed twice: under the raw
// text a client sent and under the canonical unparse, so Engine::Query
// (raw text, pre-parse probe) and EXPLAIN ANALYZE (AST in hand, canonical
// probe) hit the same entry.
std::string PlanCacheKey(const std::string& user, const std::string& sql,
                         const std::vector<TypeKind>& param_types);

// Engine-wide, thread-safe LRU cache of prepared plans keyed by statement
// text (docs/NETWORKING.md). A hit skips parse, bind and measure expansion
// entirely — the dominant cost of the repeated-dashboard workload the
// paper's semantic layer serves. Freshness follows the same discipline as
// SharedMeasureCache: every entry records the catalog generation it was
// bound at, and Lookup() takes the *current* generation — a stale entry is
// dropped on probe (counted as an invalidation) and the caller re-prepares.
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      // LRU removals
    uint64_t invalidations = 0;  // stale-generation drops on probe
    uint64_t entries = 0;        // current keys (aliases count separately)
    uint64_t bytes = 0;
  };

  PlanCache(size_t max_entries, uint64_t max_bytes)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}
  PlanCache() : PlanCache(256, 64ull << 20) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Returns the cached plan for `key` if present and bound at exactly
  // `current_generation`; refreshes LRU recency. A generation mismatch
  // erases the entry and counts as invalidation + miss.
  PreparedPlanPtr Lookup(const std::string& key, uint64_t current_generation);

  // Indexes `plan` under `key` (replacing any previous entry). Aliases —
  // several keys sharing one PreparedPlanPtr — are independent LRU
  // entries; the shared plan dies with its last key.
  void Insert(const std::string& key, PreparedPlanPtr plan);

  // Drops everything (counters survive). Used by tests and explicit
  // administrative flushes; normal invalidation is lazy, on probe.
  void Clear();

  Stats stats() const;
  size_t max_entries() const { return max_entries_; }
  uint64_t max_bytes() const { return max_bytes_; }

  // Heuristic footprint of one cached plan: texts, fingerprint, and a
  // fixed charge per plan node standing in for the bound tree (plans are
  // pointer-rich; exact accounting is not worth the traversal).
  static uint64_t ApproxPlanBytes(const PreparedPlan& plan);

 private:
  struct Entry {
    std::string key;
    PreparedPlanPtr plan;
  };
  using LruList = std::list<Entry>;

  void EvictToBudgetLocked();

  const size_t max_entries_;
  const uint64_t max_bytes_;

  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  uint64_t bytes_ = 0;
  Stats counters_;
};

}  // namespace msql

#endif  // MSQL_RUNTIME_PLAN_CACHE_H_

#include "runtime/rate_limiter.h"

#include <algorithm>

namespace msql {

void RateLimiter::Configure(double rate_per_sec, int64_t burst) {
  rate_per_sec_ = rate_per_sec;
  burst_ = std::max<int64_t>(1, burst);
  if (rate_per_sec <= 0.0) {
    interval_us_ = 0;
    tau_us_ = 0;
    tat_us_.store(0, std::memory_order_relaxed);
    return;
  }
  interval_us_ = std::max<int64_t>(1, static_cast<int64_t>(1e6 / rate_per_sec));
  tau_us_ = (burst_ - 1) * interval_us_;
  epoch_ = std::chrono::steady_clock::now();
  tat_us_.store(0, std::memory_order_relaxed);
}

int64_t RateLimiter::TryAcquire() {
  if (interval_us_ == 0) return 0;
  int64_t now = NowUs();
  int64_t tat = tat_us_.load(std::memory_order_relaxed);
  while (true) {
    // Conforming if the theoretical arrival time, less the burst allowance,
    // has already passed.
    if (tat - tau_us_ > now) return tat - tau_us_ - now;
    int64_t next_tat = std::max(tat, now) + interval_us_;
    if (tat_us_.compare_exchange_weak(tat, next_tat,
                                      std::memory_order_relaxed)) {
      return 0;
    }
    // CAS failure reloaded `tat`; re-evaluate against the same `now` (the
    // error is nanoseconds and only ever makes admission slightly stricter).
  }
}

RateLimiter& RateLimiterRegistry::ForKey(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<RateLimiter>& slot = limiters_[key];
  if (slot == nullptr) {
    slot = std::make_unique<RateLimiter>(rate_per_sec_, burst_);
  }
  return *slot;
}

size_t RateLimiterRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limiters_.size();
}

}  // namespace msql

#ifndef MSQL_RUNTIME_RATE_LIMITER_H_
#define MSQL_RUNTIME_RATE_LIMITER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace msql {

// Lock-free token-bucket rate limiter (GCRA formulation: the bucket is a
// single "theoretical arrival time" timestamp, advanced by CAS, instead of
// a token count plus a refill thread). Admission control consults one of
// these per session and one global instance per scheduler; a query that
// cannot acquire immediately learns how long until a token frees up and
// waits out that hint against its deadline (docs/CONCURRENCY.md).
//
// rate_per_sec <= 0 disables the limiter (TryAcquire always admits), so
// "no rate limit" costs one predictable branch.
class RateLimiter {
 public:
  RateLimiter() = default;
  RateLimiter(double rate_per_sec, int64_t burst) {
    Configure(rate_per_sec, burst);
  }

  // (Re)configures the limiter with a full bucket. Not safe to call
  // concurrently with TryAcquire; the engine configures limiters at
  // session / scheduler construction.
  void Configure(double rate_per_sec, int64_t burst);

  // Attempts to take one token. Returns 0 on success, otherwise the number
  // of microseconds until a token will be available (callers sleep or
  // bounded-wait on that hint and try again).
  int64_t TryAcquire();

  bool enabled() const { return interval_us_ > 0; }
  double rate_per_sec() const { return rate_per_sec_; }
  int64_t burst() const { return burst_; }

 private:
  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  double rate_per_sec_ = 0.0;
  int64_t burst_ = 0;
  int64_t interval_us_ = 0;  // microseconds per token; 0 = unlimited
  int64_t tau_us_ = 0;       // burst allowance: (burst - 1) * interval
  std::chrono::steady_clock::time_point epoch_{
      std::chrono::steady_clock::now()};
  // GCRA theoretical arrival time, microseconds since epoch_.
  std::atomic<int64_t> tat_us_{0};
};

}  // namespace msql

#endif  // MSQL_RUNTIME_RATE_LIMITER_H_

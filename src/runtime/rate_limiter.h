#ifndef MSQL_RUNTIME_RATE_LIMITER_H_
#define MSQL_RUNTIME_RATE_LIMITER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace msql {

// Lock-free token-bucket rate limiter (GCRA formulation: the bucket is a
// single "theoretical arrival time" timestamp, advanced by CAS, instead of
// a token count plus a refill thread). Admission control consults one of
// these per session and one global instance per scheduler; a query that
// cannot acquire immediately learns how long until a token frees up and
// waits out that hint against its deadline (docs/CONCURRENCY.md).
//
// rate_per_sec <= 0 disables the limiter (TryAcquire always admits), so
// "no rate limit" costs one predictable branch.
class RateLimiter {
 public:
  RateLimiter() = default;
  RateLimiter(double rate_per_sec, int64_t burst) {
    Configure(rate_per_sec, burst);
  }

  // (Re)configures the limiter with a full bucket. Not safe to call
  // concurrently with TryAcquire; the engine configures limiters at
  // session / scheduler construction.
  void Configure(double rate_per_sec, int64_t burst);

  // Attempts to take one token. Returns 0 on success, otherwise the number
  // of microseconds until a token will be available (callers sleep or
  // bounded-wait on that hint and try again).
  int64_t TryAcquire();

  bool enabled() const { return interval_us_ > 0; }
  double rate_per_sec() const { return rate_per_sec_; }
  int64_t burst() const { return burst_; }

 private:
  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  double rate_per_sec_ = 0.0;
  int64_t burst_ = 0;
  int64_t interval_us_ = 0;  // microseconds per token; 0 = unlimited
  int64_t tau_us_ = 0;       // burst allowance: (burst - 1) * interval
  std::chrono::steady_clock::time_point epoch_{
      std::chrono::steady_clock::now()};
  // GCRA theoretical arrival time, microseconds since epoch_.
  std::atomic<int64_t> tat_us_{0};
};

// A lazily-populated map of independent RateLimiters sharing one
// configuration, keyed by an arbitrary string — the msqld server keys by
// authenticated user so one client flooding Query frames exhausts only its
// own token bucket (docs/NETWORKING.md). ForKey returns a stable reference
// (limiters are heap-allocated and never removed); TryAcquire on the result
// is lock-free as usual, the registry lock covers only map lookup/insert.
class RateLimiterRegistry {
 public:
  RateLimiterRegistry(double rate_per_sec, int64_t burst)
      : rate_per_sec_(rate_per_sec), burst_(burst) {}

  RateLimiterRegistry(const RateLimiterRegistry&) = delete;
  RateLimiterRegistry& operator=(const RateLimiterRegistry&) = delete;

  // Returns the limiter for `key`, creating it (full bucket) on first use.
  RateLimiter& ForKey(const std::string& key);

  bool enabled() const { return rate_per_sec_ > 0.0; }
  size_t size() const;

 private:
  const double rate_per_sec_;
  const int64_t burst_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<RateLimiter>> limiters_;
};

}  // namespace msql

#endif  // MSQL_RUNTIME_RATE_LIMITER_H_

#include "runtime/retry.h"

#include <algorithm>

namespace msql {
namespace {

// splitmix64: tiny, high-quality 64-bit mixer; good enough to decorrelate
// jitter across (seed, attempt) pairs and fully deterministic.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int64_t RetryBackoffUs(const RetryPolicy& policy, int attempt) {
  if (policy.initial_backoff_ms <= 0) return 0;
  double backoff_ms = static_cast<double>(policy.initial_backoff_ms);
  for (int i = 0; i < attempt; ++i) {
    backoff_ms *= policy.multiplier;
    if (backoff_ms >= static_cast<double>(policy.max_backoff_ms)) break;
  }
  backoff_ms =
      std::min(backoff_ms, static_cast<double>(policy.max_backoff_ms));
  uint64_t mixed =
      SplitMix64(policy.jitter_seed ^ (0xa5a5a5a5ULL + uint64_t(attempt)));
  // Jitter factor in [0.5, 1.0): full-jitter halves the floor so synced
  // retriers spread out, while the deterministic seed keeps tests exact.
  double jitter = 0.5 + 0.5 * (static_cast<double>(mixed >> 11) /
                               static_cast<double>(1ULL << 53));
  return static_cast<int64_t>(backoff_ms * jitter * 1000.0);
}

}  // namespace msql

#ifndef MSQL_RUNTIME_RETRY_H_
#define MSQL_RUNTIME_RETRY_H_

#include <cstdint>

namespace msql {

// Retry policy for overload-shed queries (docs/ROBUSTNESS.md). Only
// statuses with Status::IsRetryable() — transient pressure, i.e.
// kResourceExhausted from admission sheds and rate limits — are retried;
// deterministic failures and cancellations surface immediately.
//
// Backoff is capped exponential with deterministic jitter: attempt k
// (0-based) sleeps initial_backoff_ms * multiplier^k, capped at
// max_backoff_ms, then scaled by a jitter factor in [0.5, 1.0) derived
// from splitmix64(jitter_seed ^ k). Seeded jitter keeps chaos tests and
// benchmarks reproducible while still decorrelating real concurrent
// retriers (each session seeds with its own id).
struct RetryPolicy {
  int max_attempts = 3;  // total tries, including the first
  int64_t initial_backoff_ms = 2;
  int64_t max_backoff_ms = 100;
  double multiplier = 2.0;
  uint64_t jitter_seed = 0;
};

// Microseconds to sleep before retry `attempt` (0-based: the sleep between
// try attempt and try attempt+1). Deterministic for a given (policy,
// attempt) pair.
int64_t RetryBackoffUs(const RetryPolicy& policy, int attempt);

}  // namespace msql

#endif  // MSQL_RUNTIME_RETRY_H_

#include "runtime/scheduler.h"

#include <chrono>

#include "common/string_util.h"

namespace msql {

QueryScheduler::QueryScheduler(SchedulerOptions options)
    : options_(options), pool_(options.num_threads) {}

QueryScheduler::~QueryScheduler() {
  Drain();
  pool_.Shutdown();
}

QueryScheduler::SchedMetrics QueryScheduler::MetricsFor(Engine& engine) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  if (metrics_engine_ != &engine) {
    obs::MetricsRegistry& reg = engine.metrics();
    cached_metrics_.rejections = reg.GetCounter(
        "msql_scheduler_admission_rejections_total",
        "Submissions rejected by the global or per-session admission caps");
    cached_metrics_.queue_wait_ms = reg.GetHistogram(
        "msql_scheduler_queue_wait_ms",
        "Time admitted statements waited for a worker",
        obs::MetricsRegistry::LatencyBucketsMs());
    cached_metrics_.queue_depth = reg.GetHistogram(
        "msql_scheduler_queue_depth",
        "Admitted-but-unfinished statements observed at each admission",
        obs::MetricsRegistry::DepthBuckets());
    metrics_engine_ = &engine;
  }
  return cached_metrics_;
}

Result<QueryScheduler::QueryFuture> QueryScheduler::Submit(
    const SessionPtr& session, std::string sql) {
  const SchedMetrics metrics = MetricsFor(session->engine());
  // Optimistically reserve the global and per-session slots; undo on
  // rejection. fetch_add-then-check keeps both caps exact under races.
  const size_t pending = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (pending >= options_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    metrics.rejections->Increment();
    return Status(ErrorCode::kResourceExhausted,
                  StrCat("scheduler admission queue full (max_pending=",
                         options_.max_pending, ")"));
  }
  const int inflight =
      session->inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (inflight >= options_.max_inflight_per_session) {
    session->inflight_.fetch_sub(1, std::memory_order_acq_rel);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    metrics.rejections->Increment();
    return Status(
        ErrorCode::kResourceExhausted,
        StrCat("session ", session->id(), " at its in-flight limit (",
               options_.max_inflight_per_session, ")"));
  }
  metrics.queue_depth->Observe(static_cast<double>(pending + 1));

  const auto enqueued = std::chrono::steady_clock::now();
  obs::Histogram* queue_wait_ms = metrics.queue_wait_ms;
  auto task = std::make_shared<std::packaged_task<Result<ResultSet>()>>(
      [session, sql = std::move(sql), enqueued, queue_wait_ms] {
        const int64_t wait_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - enqueued)
                .count();
        queue_wait_ms->Observe(static_cast<double>(wait_us) / 1000.0);
        return session->QueryScheduled(sql, wait_us);
      });
  QueryFuture future = task->get_future();

  const bool submitted = pool_.Submit([this, session, task] {
    (*task)();
    session->inflight_.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
    drain_cv_.notify_all();
  });
  if (!submitted) {
    session->inflight_.fetch_sub(1, std::memory_order_acq_rel);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    return Status(ErrorCode::kCancelled, "scheduler is shut down");
  }
  return future;
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace msql

#include "runtime/scheduler.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace msql {

namespace {

// Admission waits poll in short slices rather than blocking until
// notified: a waiter must observe Session::Cancel / Engine::CancelAll and
// its own deadline promptly even when no completion wakes it.
constexpr auto kWaitSlice = std::chrono::milliseconds(1);

}  // namespace

QueryScheduler::QueryScheduler(SchedulerOptions options)
    : options_(options), pool_(options.num_threads) {
  global_limiter_.Configure(options_.global_rate_limit_qps,
                            options_.global_rate_limit_burst);
}

QueryScheduler::~QueryScheduler() {
  Drain();
  pool_.Shutdown();
}

QueryScheduler::SchedMetrics QueryScheduler::MetricsFor(Engine& engine) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  if (metrics_engine_ != &engine) {
    obs::MetricsRegistry& reg = engine.metrics();
    cached_metrics_.rejections = reg.GetCounter(
        "msql_scheduler_admission_rejections_total",
        "Submissions shed by admission (caps or rate limit) after their "
        "bounded wait");
    cached_metrics_.rate_limited = reg.GetCounter(
        "msql_rate_limited_total",
        "Submissions shed because a rate-limit token was not available "
        "within the wait budget");
    cached_metrics_.retries = reg.GetCounter(
        "msql_retries_total",
        "Retry attempts made by SubmitWithRetry after retryable failures");
    cached_metrics_.queue_wait_ms = reg.GetHistogram(
        "msql_scheduler_queue_wait_ms",
        "Time admitted statements waited for a worker",
        obs::MetricsRegistry::LatencyBucketsMs());
    cached_metrics_.queue_depth = reg.GetHistogram(
        "msql_scheduler_queue_depth",
        "Admitted-but-unfinished statements observed at each admission",
        obs::MetricsRegistry::DepthBuckets());
    cached_metrics_.admission_wait_seconds = reg.GetHistogram(
        "msql_admission_wait_seconds",
        "Time submissions spent in bounded-wait admission (rate-limit gate "
        "plus slot wait), successful or shed",
        obs::MetricsRegistry::LatencyBucketsSeconds());
    metrics_engine_ = &engine;
  }
  return cached_metrics_;
}

Status QueryScheduler::WaitForRateTokens(
    const SessionPtr& session, const CancelTokenPtr& token,
    uint64_t generation, std::chrono::steady_clock::time_point wait_deadline,
    bool has_deadline, std::chrono::steady_clock::time_point deadline,
    const SchedMetrics& metrics) {
  const auto& generation_counter = session->engine().cancel_generation_;
  while (true) {
    if (token->cancelled()) {
      return Status(ErrorCode::kCancelled,
                    "submission cancelled while rate-limit gated");
    }
    if (generation_counter->load(std::memory_order_relaxed) != generation) {
      return Status(ErrorCode::kCancelled,
                    "submission flushed by Engine::CancelAll while "
                    "rate-limit gated");
    }
    // Global bucket first (the broad gate), then the session's. Under
    // overload a token burnt on a submission the narrower gate then defers
    // only makes admission stricter, which is the safe direction.
    int64_t defer_us = global_limiter_.TryAcquire();
    if (defer_us == 0) defer_us = session->rate_limiter_.TryAcquire();
    if (defer_us == 0) return Status::Ok();
    const auto now = std::chrono::steady_clock::now();
    if (has_deadline && now >= deadline) {
      return Status(ErrorCode::kDeadlineExceeded,
                    "query deadline exceeded while rate-limit gated");
    }
    if (now + std::chrono::microseconds(defer_us) > wait_deadline) {
      metrics.rate_limited->Increment();
      metrics.rejections->Increment();
      return Status(ErrorCode::kResourceExhausted,
                    StrCat("admission rate limited (next token in ",
                           defer_us, "us, beyond the wait budget)"));
    }
    std::this_thread::sleep_for(std::min<std::chrono::steady_clock::duration>(
        std::chrono::microseconds(defer_us), kWaitSlice));
  }
}

Status QueryScheduler::WaitForSlots(
    const SessionPtr& session, const CancelTokenPtr& token,
    uint64_t generation, std::chrono::steady_clock::time_point wait_deadline,
    bool has_deadline, std::chrono::steady_clock::time_point deadline,
    const SchedMetrics& metrics) {
  const auto& generation_counter = session->engine().cancel_generation_;
  std::unique_lock<std::mutex> lock(admit_mu_);
  while (true) {
    if (token->cancelled()) {
      return Status(ErrorCode::kCancelled,
                    "submission cancelled while waiting for admission");
    }
    if (generation_counter->load(std::memory_order_relaxed) != generation) {
      return Status(ErrorCode::kCancelled,
                    "submission flushed by Engine::CancelAll while waiting "
                    "for admission");
    }
    const size_t pending = pending_.load(std::memory_order_acquire);
    const int inflight = session->inflight_.load(std::memory_order_acquire);
    if (pending < options_.max_pending &&
        inflight < options_.max_inflight_per_session) {
      pending_.fetch_add(1, std::memory_order_acq_rel);
      session->inflight_.fetch_add(1, std::memory_order_acq_rel);
      metrics.queue_depth->Observe(static_cast<double>(pending + 1));
      return Status::Ok();
    }
    const auto now = std::chrono::steady_clock::now();
    if (has_deadline && now >= deadline) {
      metrics.rejections->Increment();
      return Status(ErrorCode::kDeadlineExceeded,
                    "query deadline exceeded while waiting for admission");
    }
    if (now >= wait_deadline) {
      metrics.rejections->Increment();
      if (pending >= options_.max_pending) {
        return Status(ErrorCode::kResourceExhausted,
                      StrCat("scheduler admission queue full (max_pending=",
                             options_.max_pending, ")"));
      }
      return Status(
          ErrorCode::kResourceExhausted,
          StrCat("session ", session->id(), " at its in-flight limit (",
                 options_.max_inflight_per_session, ")"));
    }
    admit_cv_.wait_for(lock, kWaitSlice);
  }
}

Result<QueryScheduler::QueryFuture> QueryScheduler::Submit(
    const SessionPtr& session, std::string sql) {
  return SubmitRunner(session,
                      [session, sql = std::move(sql)](const ScheduledRun& run) {
                        return session->QueryScheduled(sql, run);
                      });
}

Result<QueryScheduler::QueryFuture> QueryScheduler::SubmitPrepared(
    const SessionPtr& session, PreparedPlanPtr prepared, Row params) {
  return SubmitRunner(session, [session, prepared = std::move(prepared),
                                params = std::move(params)](
                                   const ScheduledRun& run) {
    return session->QueryPreparedScheduled(prepared, params, run);
  });
}

Result<QueryScheduler::QueryFuture> QueryScheduler::SubmitRunner(
    const SessionPtr& session, Runner runner) {
  const SchedMetrics metrics = MetricsFor(session->engine());
  MSQL_FAULT_POINT("runtime.admission_wait");

  const auto submit_time = std::chrono::steady_clock::now();
  // The query's absolute deadline is stamped now, before any waiting, so
  // queue time charges against the statement's own timeout budget.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  if (session->options_.timeout_ms > 0) {
    has_deadline = true;
    deadline =
        submit_time + std::chrono::milliseconds(session->options_.timeout_ms);
  }
  auto wait_deadline = submit_time;  // max_admission_wait_ms == 0: no wait
  if (options_.max_admission_wait_ms > 0) {
    wait_deadline =
        submit_time + std::chrono::milliseconds(options_.max_admission_wait_ms);
  }
  if (has_deadline && deadline < wait_deadline) wait_deadline = deadline;

  // Register the cancel token before waiting: Session::Cancel() and
  // Engine::CancelAll() must reach submissions still in admission.
  CancelTokenPtr token = session->AcquireToken();
  const uint64_t generation =
      session->engine().cancel_generation_->load(std::memory_order_relaxed);

  Status admitted = WaitForRateTokens(session, token, generation,
                                      wait_deadline, has_deadline, deadline,
                                      metrics);
  if (admitted.ok()) {
    admitted = WaitForSlots(session, token, generation, wait_deadline,
                            has_deadline, deadline, metrics);
  }
  const int64_t admission_wait_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - submit_time)
          .count();
  metrics.admission_wait_seconds->Observe(
      static_cast<double>(admission_wait_us) / 1e6);
  if (!admitted.ok()) {
    session->ReleaseToken(token);
    return admitted;
  }

  ScheduledRun run;
  run.admission_wait_us = admission_wait_us;
  run.token = token;
  run.has_deadline = has_deadline;
  run.deadline = deadline;

  const auto enqueued = std::chrono::steady_clock::now();
  obs::Histogram* queue_wait_ms = metrics.queue_wait_ms;
  auto generation_counter = session->engine().cancel_generation_;
  auto task = std::make_shared<std::packaged_task<Result<ResultSet>()>>(
      [session, runner = std::move(runner), run, enqueued, queue_wait_ms,
       generation, generation_counter]() mutable -> Result<ResultSet> {
        const auto started = std::chrono::steady_clock::now();
        const int64_t wait_us =
            std::chrono::duration_cast<std::chrono::microseconds>(started -
                                                                  enqueued)
                .count();
        queue_wait_ms->Observe(static_cast<double>(wait_us) / 1000.0);
        // Queued-but-unstarted flush: a token fired or a CancelAll issued
        // while this statement sat in the worker queue cancels it without
        // executing a single operator.
        if (run.token->cancelled() ||
            generation_counter->load(std::memory_order_relaxed) !=
                generation) {
          session->ReleaseToken(run.token);
          return Status(ErrorCode::kCancelled,
                        "query cancelled while queued (never started)");
        }
        if (run.has_deadline && started >= run.deadline) {
          session->ReleaseToken(run.token);
          return Status(ErrorCode::kDeadlineExceeded,
                        "query deadline exceeded while queued");
        }
        run.queue_wait_us = wait_us;
        return runner(run);
      });
  QueryFuture future = task->get_future();

  const bool submitted = pool_.Submit([this, session, task] {
    (*task)();
    {
      std::lock_guard<std::mutex> lock(admit_mu_);
      session->inflight_.fetch_sub(1, std::memory_order_acq_rel);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
    admit_cv_.notify_all();
    drain_cv_.notify_all();
  });
  if (!submitted) {
    session->ReleaseToken(token);
    {
      std::lock_guard<std::mutex> lock(admit_mu_);
      session->inflight_.fetch_sub(1, std::memory_order_acq_rel);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
    return Status(ErrorCode::kCancelled, "scheduler is shut down");
  }
  return future;
}

Result<ResultSet> QueryScheduler::SubmitWithRetry(const SessionPtr& session,
                                                  std::string sql,
                                                  const RetryPolicy& policy) {
  const SchedMetrics metrics = MetricsFor(session->engine());
  const int attempts = std::max(1, policy.max_attempts);
  Status last = Status::Ok();
  for (int attempt = 0;; ++attempt) {
    Result<QueryFuture> submitted = Submit(session, sql);
    if (submitted.ok()) {
      Result<ResultSet> result = submitted.value().get();
      if (result.ok()) return result;
      last = result.status();
    } else {
      last = submitted.status();
    }
    if (!last.IsRetryable() || attempt + 1 >= attempts) return last;
    MSQL_FAULT_POINT("runtime.retry_backoff");
    metrics.retries->Increment();
    const int64_t backoff_us = RetryBackoffUs(policy, attempt);
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(admit_mu_);
  drain_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace msql
